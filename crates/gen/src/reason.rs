//! Gamora-style functional labeling of AIG nodes.
//!
//! Gamora (Wu et al., DAC 2023) formulates adder extraction on Boolean
//! networks as 4-way node classification; HOGA adopts the same setting
//! (§IV-C). The classes, in this reproduction:
//!
//! | class | meaning |
//! |-------|---------|
//! | [`NodeClass::Maj`]    | root of a MAJ3 function (a full-adder *carry-out*) |
//! | [`NodeClass::Xor`]    | root of an XOR2/XOR3 function (an adder *sum*) |
//! | [`NodeClass::Shared`] | interior node lying in both a MAJ cone and an XOR cone |
//! | [`NodeClass::Plain`]  | everything else (PIs, plain AND logic) |
//!
//! Labels are produced by **exhaustive cut-function detection**: for every
//! node we enumerate its k-feasible cuts, compute each cut's truth table,
//! and test NPN-equivalence against XOR2/XOR3/MAJ3. This mirrors the exact
//! symbolic procedure Gamora distills into a GNN, and works on *any* AIG —
//! including the technology-mapped ones where constructive traces are no
//! longer available.

use hoga_circuit::{Aig, NodeId, NodeKind};
use hoga_synth::cuts::{cone_nodes, cut_truth_table, enumerate_cuts};
use serde::{Deserialize, Serialize};

/// Functional class of a node (the prediction target of the reasoning task).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeClass {
    /// Root of a majority-of-three function (full-adder carry).
    Maj,
    /// Root of an exclusive-or function (adder sum).
    Xor,
    /// Node shared between a MAJ cone and an XOR cone.
    Shared,
    /// Any other node.
    Plain,
}

impl NodeClass {
    /// Class index used as the classification label (0..4).
    pub fn index(self) -> usize {
        match self {
            NodeClass::Maj => 0,
            NodeClass::Xor => 1,
            NodeClass::Shared => 2,
            NodeClass::Plain => 3,
        }
    }

    /// Inverse of [`NodeClass::index`].
    ///
    /// # Panics
    ///
    /// Panics if `idx >= 4`. Use the [`TryFrom<usize>`] impl for a
    /// fallible variant.
    pub fn from_index(idx: usize) -> Self {
        Self::try_from(idx).expect("class index out of range")
    }

    /// Number of classes.
    pub const COUNT: usize = 4;
}

/// Error returned when converting an out-of-range index to a [`NodeClass`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassIndexError {
    /// The rejected index (valid indices are `0..NodeClass::COUNT`).
    pub index: usize,
}

impl std::fmt::Display for ClassIndexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "class index {} out of range (expected 0..{})", self.index, NodeClass::COUNT)
    }
}

impl std::error::Error for ClassIndexError {}

impl TryFrom<usize> for NodeClass {
    type Error = ClassIndexError;

    fn try_from(idx: usize) -> Result<Self, ClassIndexError> {
        match idx {
            0 => Ok(NodeClass::Maj),
            1 => Ok(NodeClass::Xor),
            2 => Ok(NodeClass::Shared),
            3 => Ok(NodeClass::Plain),
            _ => Err(ClassIndexError { index: idx }),
        }
    }
}

impl std::fmt::Display for NodeClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            NodeClass::Maj => "MAJ",
            NodeClass::Xor => "XOR",
            NodeClass::Shared => "shared",
            NodeClass::Plain => "plain",
        };
        write!(f, "{name}")
    }
}

/// XOR2 truth table over 2 vars.
const TT_XOR2: u64 = 0x6;
/// XOR3 truth table over 3 vars.
const TT_XOR3: u64 = 0x96;
/// MAJ3 truth table over 3 vars.
const TT_MAJ3: u64 = 0xE8;

/// Checks whether `tt` over `n` vars equals the target function up to
/// input and output complementation (an NP-class check; permutations are
/// unnecessary because XOR3 and MAJ3 are symmetric functions). Input-phase
/// matching is essential: adder operands arrive as complemented AIG
/// literals, and `MAJ(!a, b, c)` has a different raw truth table than
/// `MAJ(a, b, c)`.
fn matches_function(tt: u64, n: usize, target: u64) -> bool {
    let mask = (1u64 << (1 << n)) - 1;
    let tt = tt & mask;
    for phase in 0..(1u64 << n) {
        let variant = flip_inputs(target, n, phase) & mask;
        if tt == variant || tt == !variant & mask {
            return true;
        }
    }
    false
}

/// Complements the inputs selected by `phase`: bit `p` of the result is bit
/// `p ^ phase` of `tt`.
fn flip_inputs(tt: u64, n: usize, phase: u64) -> u64 {
    let bits = 1u64 << n;
    let mut out = 0u64;
    for p in 0..bits {
        if tt >> (p ^ phase) & 1 == 1 {
            out |= 1 << p;
        }
    }
    out
}

/// Labels every node of `aig` by exhaustive cut-function detection.
///
/// Returns one [`NodeClass`] per node. `k` is the cut size used for
/// detection; 3 suffices for XOR3/MAJ3 and larger values only add cost
/// (4 is a good default after technology mapping, where a sum root's
/// minimal cut can have an extra leaf).
pub fn label_nodes(aig: &Aig, k: usize) -> Vec<NodeClass> {
    let cuts = enumerate_cuts(aig, k.max(3));
    let n = aig.num_nodes();
    let mut is_maj_root = vec![false; n];
    let mut is_xor_root = vec![false; n];
    let mut in_maj_cone = vec![false; n];
    let mut in_xor_cone = vec![false; n];

    for id in 0..n as NodeId {
        if !matches!(aig.node(id), NodeKind::And(_, _)) {
            continue;
        }
        for cut in cuts.cuts_of(id) {
            if cut.size() > 3 || cut.leaves().contains(&id) {
                continue;
            }
            let tt = cut_truth_table(aig, id, cut);
            let (xor_hit, maj_hit) = match cut.size() {
                2 => (matches_function(tt, 2, TT_XOR2), false),
                3 => (matches_function(tt, 3, TT_XOR3), matches_function(tt, 3, TT_MAJ3)),
                _ => (false, false),
            };
            if xor_hit || maj_hit {
                if xor_hit {
                    is_xor_root[id as usize] = true;
                }
                if maj_hit {
                    is_maj_root[id as usize] = true;
                }
                for inner in cone_nodes(aig, id, cut) {
                    if inner != id {
                        if xor_hit {
                            in_xor_cone[inner as usize] = true;
                        }
                        if maj_hit {
                            in_maj_cone[inner as usize] = true;
                        }
                    }
                }
            }
        }
    }

    (0..n)
        .map(|i| {
            if is_maj_root[i] && is_xor_root[i] {
                NodeClass::Shared
            } else if is_maj_root[i] {
                NodeClass::Maj
            } else if is_xor_root[i] {
                NodeClass::Xor
            } else if in_maj_cone[i] && in_xor_cone[i] {
                NodeClass::Shared
            } else {
                NodeClass::Plain
            }
        })
        .collect()
}

/// Per-class node counts (diagnostic and class-balance reporting).
pub fn class_histogram(labels: &[NodeClass]) -> [usize; NodeClass::COUNT] {
    let mut h = [0usize; NodeClass::COUNT];
    for &l in labels {
        h[l.index()] += 1;
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multiplier::{booth_multiplier, csa_multiplier};
    use crate::techmap::lut_map;
    use hoga_circuit::Aig;

    #[test]
    fn full_adder_roots_are_detected() {
        let mut g = Aig::new(3);
        let (a, b, c) = (g.pi_lit(0), g.pi_lit(1), g.pi_lit(2));
        let x = g.xor(a, b);
        let s = g.xor(x, c);
        let carry = g.maj(a, b, c);
        g.add_po(s);
        g.add_po(carry);
        let labels = label_nodes(&g, 3);
        assert_eq!(labels[s.node() as usize], NodeClass::Xor);
        assert_eq!(labels[carry.node() as usize], NodeClass::Maj);
        // The inner xor(a, b) is itself an XOR root.
        assert_eq!(labels[x.node() as usize], NodeClass::Xor);
        // PIs are plain.
        assert_eq!(labels[g.pi_lit(0).node() as usize], NodeClass::Plain);
    }

    #[test]
    fn detection_agrees_with_constructive_traces_on_csa() {
        // Construction traces are *mostly* XOR/MAJ roots, but boundary adder
        // cells with correlated operands (e.g. carry-in equal to the AND of
        // the other two inputs) functionally degenerate — e.g.
        // MAJ(x, y, x·y) = x·y — and the truth-table detector rightly calls
        // those plain. Agreement is therefore asserted statistically, on a
        // width where interior (non-boundary) cells dominate.
        let tc = csa_multiplier(6);
        let labels = label_nodes(&tc.aig, 3);
        let (mut sum_hits, mut sum_total) = (0usize, 0usize);
        let (mut carry_hits, mut carry_total) = (0usize, 0usize);
        for t in &tc.adders {
            sum_total += 1;
            if matches!(labels[t.sum.node() as usize], NodeClass::Xor | NodeClass::Shared) {
                sum_hits += 1;
            }
            if t.kind == crate::adders::AdderKind::Full {
                carry_total += 1;
                if matches!(labels[t.carry.node() as usize], NodeClass::Maj | NodeClass::Shared) {
                    carry_hits += 1;
                }
            }
        }
        assert!(
            sum_hits * 10 >= sum_total * 8,
            "only {sum_hits}/{sum_total} sum roots detected as XOR"
        );
        assert!(
            carry_hits * 10 >= carry_total * 8,
            "only {carry_hits}/{carry_total} carry roots detected as MAJ"
        );
    }

    #[test]
    fn plain_conjunction_has_no_adder_labels() {
        let mut g = Aig::new(4);
        let mut acc = g.pi_lit(0);
        for i in 1..4 {
            let p = g.pi_lit(i);
            acc = g.and(acc, p);
        }
        g.add_po(acc);
        let labels = label_nodes(&g, 3);
        assert!(labels.iter().all(|&l| l == NodeClass::Plain));
    }

    #[test]
    fn labels_survive_technology_mapping() {
        // After LUT mapping + re-decomposition, the detector must still find
        // a healthy population of XOR/MAJ roots in a multiplier (this is the
        // core premise of evaluating reasoning on mapped netlists).
        let tc = csa_multiplier(6);
        let mapped = lut_map(&tc.aig, 4);
        let labels = label_nodes(&mapped.aig, 4);
        let h = class_histogram(&labels);
        assert!(h[NodeClass::Maj.index()] > 0, "no MAJ roots after mapping: {h:?}");
        assert!(h[NodeClass::Xor.index()] > 0, "no XOR roots after mapping: {h:?}");
        assert!(h[NodeClass::Plain.index()] > 0);
    }

    #[test]
    fn booth_multiplier_has_all_plain_and_adder_classes() {
        let tc = booth_multiplier(6);
        let labels = label_nodes(&tc.aig, 3);
        let h = class_histogram(&labels);
        assert!(h[NodeClass::Maj.index()] > 0, "{h:?}");
        assert!(h[NodeClass::Xor.index()] > 0, "{h:?}");
        assert!(h[NodeClass::Plain.index()] > 0, "{h:?}");
    }

    #[test]
    fn histogram_sums_to_node_count() {
        let tc = csa_multiplier(4);
        let labels = label_nodes(&tc.aig, 3);
        let h = class_histogram(&labels);
        assert_eq!(h.iter().sum::<usize>(), tc.aig.num_nodes());
    }

    #[test]
    fn phase_matching_detects_complemented_maj() {
        // MAJ(!a, b, c): flip var 0 of 0xE8.
        let maj_na = super::flip_inputs(0xE8, 3, 0b001);
        assert_ne!(maj_na & 0xFF, 0xE8, "flip must change the raw table");
        assert!(super::matches_function(maj_na, 3, 0xE8));
        assert!(super::matches_function(!maj_na, 3, 0xE8));
        // AND3 is not in MAJ3's NP class.
        assert!(!super::matches_function(0x80, 3, 0xE8));
    }

    #[test]
    fn class_index_roundtrips() {
        for idx in 0..NodeClass::COUNT {
            assert_eq!(NodeClass::from_index(idx).index(), idx);
            assert_eq!(NodeClass::try_from(idx).unwrap().index(), idx);
        }
    }

    #[test]
    fn class_index_out_of_range_is_typed_error() {
        let err = NodeClass::try_from(NodeClass::COUNT).unwrap_err();
        assert_eq!(err, ClassIndexError { index: 4 });
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn class_display_is_stable() {
        assert_eq!(NodeClass::Maj.to_string(), "MAJ");
        assert_eq!(NodeClass::Xor.to_string(), "XOR");
        assert_eq!(NodeClass::Shared.to_string(), "shared");
        assert_eq!(NodeClass::Plain.to_string(), "plain");
    }
}
