//! Circuit generators, technology mapping and functional labeling.
//!
//! This crate produces every circuit the HOGA experiments need:
//!
//! * [`adders`] — ripple-carry and carry-save building blocks with *traced*
//!   full/half adders (each trace records the sum and carry root literals,
//!   the constructive ground truth for functional reasoning).
//! * [`multiplier`] — carry-save-array (CSA) and radix-4 Booth multipliers,
//!   the evaluation circuits of Figure 6, verified bit-exactly against
//!   native integer multiplication.
//! * [`ipgen`] — synthetic "IP designs" reproducing the five OpenABC-D
//!   categories (communication / control / crypto / DSP / processor) at the
//!   node counts of Table 1 (scaled), each category with a distinct
//!   structural style.
//! * [`techmap`] — a k-LUT cut-based technology mapper that re-decomposes
//!   the network into a fresh AIG. It preserves functionality (verified by
//!   simulation) while obfuscating adder boundaries, standing in for the
//!   paper's ASAP 7nm mapping, which is used for exactly that purpose.
//! * [`reason`] — the Gamora-style labeler assigning each node one of four
//!   classes (MAJ / XOR / shared / plain) by exhaustive cut-function
//!   detection of XOR2/XOR3/MAJ3 roots.
//!
//! # Examples
//!
//! ```
//! use hoga_gen::multiplier::csa_multiplier;
//!
//! let mult = csa_multiplier(4);
//! assert_eq!(mult.aig.num_pis(), 8);
//! assert_eq!(mult.aig.num_pos(), 8);
//! assert!(!mult.adders.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adders;
pub mod ipgen;
pub mod multiplier;
pub mod reason;
pub mod techmap;
