//! Synthetic OpenABC-D-style IP designs.
//!
//! OpenABC-D draws its 870k AIGs from 29 proprietary-toolchain-processed
//! open-source IPs (Table 1 of the paper). The RTL-to-AIG flow is not
//! reproducible here, so this module generates *synthetic* designs that
//! preserve what the QoR-prediction learning problem actually depends on:
//!
//! * the node/edge counts of each Table-1 design (scaled by a configurable
//!   factor to stay CPU-friendly),
//! * per-category structural styles (communication designs are mux/shift
//!   heavy, control designs are sum-of-products state machines, crypto
//!   designs are wide XOR/nonlinear round functions, DSP designs are
//!   MAC-like multiplier/adder arrays, processor designs mix ALU slices),
//! * deterministic generation from a per-design seed, so the 20-train /
//!   9-test split is exactly reproducible.

use crate::adders::ripple_adder;
use hoga_circuit::{Aig, Lit};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// OpenABC-D design category.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Category {
    /// Bus/interface logic (SPI, I2C, PCI, Ethernet, ...).
    Communication,
    /// Controllers and state machines.
    Control,
    /// Ciphers and hashes.
    Crypto,
    /// Filters and transforms.
    Dsp,
    /// CPU-like designs.
    Processor,
}

/// Static description of one Table-1 design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IpSpec {
    /// Design name as printed in Table 1.
    pub name: &'static str,
    /// Unscaled node count from Table 1.
    pub nodes: usize,
    /// Unscaled edge count from Table 1.
    pub edges: usize,
    /// Design category.
    pub category: Category,
    /// Whether the design is in the training split (upper 20 rows).
    pub train: bool,
}

/// The 29 designs of Table 1, in paper order (first 20 train, last 9 test).
pub const OPENABCD_DESIGNS: [IpSpec; 29] = [
    IpSpec {
        name: "spi",
        nodes: 4219,
        edges: 8676,
        category: Category::Communication,
        train: true,
    },
    IpSpec {
        name: "i2c",
        nodes: 1169,
        edges: 2466,
        category: Category::Communication,
        train: true,
    },
    IpSpec {
        name: "ss_pcm",
        nodes: 462,
        edges: 896,
        category: Category::Communication,
        train: true,
    },
    IpSpec {
        name: "usb_phy",
        nodes: 487,
        edges: 1064,
        category: Category::Communication,
        train: true,
    },
    IpSpec {
        name: "sasc",
        nodes: 613,
        edges: 1351,
        category: Category::Communication,
        train: true,
    },
    IpSpec {
        name: "wb_dma",
        nodes: 4587,
        edges: 9876,
        category: Category::Communication,
        train: true,
    },
    IpSpec {
        name: "simple_spi",
        nodes: 930,
        edges: 1992,
        category: Category::Communication,
        train: true,
    },
    IpSpec {
        name: "pci",
        nodes: 19547,
        edges: 42251,
        category: Category::Communication,
        train: true,
    },
    IpSpec {
        name: "dynamic_node",
        nodes: 18094,
        edges: 38763,
        category: Category::Control,
        train: true,
    },
    IpSpec {
        name: "ac97_ctrl",
        nodes: 11464,
        edges: 25065,
        category: Category::Control,
        train: true,
    },
    IpSpec {
        name: "mem_ctrl",
        nodes: 16307,
        edges: 37146,
        category: Category::Control,
        train: true,
    },
    IpSpec {
        name: "des3_area",
        nodes: 4971,
        edges: 10006,
        category: Category::Crypto,
        train: true,
    },
    IpSpec { name: "aes", nodes: 28925, edges: 58379, category: Category::Crypto, train: true },
    IpSpec { name: "sha256", nodes: 15816, edges: 32674, category: Category::Crypto, train: true },
    IpSpec { name: "fir", nodes: 4558, edges: 9467, category: Category::Dsp, train: true },
    IpSpec { name: "iir", nodes: 6978, edges: 14397, category: Category::Dsp, train: true },
    IpSpec { name: "idft", nodes: 241552, edges: 520523, category: Category::Dsp, train: true },
    IpSpec { name: "dft", nodes: 245046, edges: 527509, category: Category::Dsp, train: true },
    IpSpec { name: "tv80", nodes: 11328, edges: 23017, category: Category::Processor, train: true },
    IpSpec { name: "fpu", nodes: 29623, edges: 59655, category: Category::Processor, train: true },
    IpSpec {
        name: "wb_conmax",
        nodes: 47840,
        edges: 97755,
        category: Category::Communication,
        train: false,
    },
    IpSpec {
        name: "ethernet",
        nodes: 67164,
        edges: 144750,
        category: Category::Communication,
        train: false,
    },
    IpSpec {
        name: "bp_be",
        nodes: 82514,
        edges: 173441,
        category: Category::Control,
        train: false,
    },
    IpSpec {
        name: "vga_lcd",
        nodes: 105334,
        edges: 227731,
        category: Category::Control,
        train: false,
    },
    IpSpec {
        name: "aes_xcrypt",
        nodes: 45840,
        edges: 93485,
        category: Category::Crypto,
        train: false,
    },
    IpSpec {
        name: "aes_secworks",
        nodes: 40778,
        edges: 84160,
        category: Category::Crypto,
        train: false,
    },
    IpSpec { name: "jpeg", nodes: 114771, edges: 234331, category: Category::Dsp, train: false },
    IpSpec {
        name: "tiny_rocket",
        nodes: 52315,
        edges: 108811,
        category: Category::Processor,
        train: false,
    },
    IpSpec {
        name: "picosoc",
        nodes: 82945,
        edges: 176687,
        category: Category::Processor,
        train: false,
    },
];

/// Generates the AIG for a Table-1 design at `1/scale_divisor` of its
/// original node count.
///
/// Deterministic: the design name seeds the RNG. The result is compacted
/// and its node count lands within ~15% of the scaled target.
///
/// # Panics
///
/// Panics if `scale_divisor` is zero.
pub fn generate_ip(spec: &IpSpec, scale_divisor: usize) -> Aig {
    assert!(scale_divisor > 0, "scale divisor must be positive");
    let target_nodes = (spec.nodes / scale_divisor).max(64);
    // Dead-logic calibration: block outputs that are never tapped or
    // re-consumed are swept by the final compaction, so the post-compact
    // size undershoots the raw construction goal (by ~2x for the
    // XOR-heavy crypto style). Generation is microseconds, so simply
    // regenerate with an inflated goal until the compacted size lands.
    let mut goal = target_nodes;
    for _ in 0..4 {
        let aig = generate_with_goal(spec, goal);
        let got = aig.num_nodes();
        if got * 10 >= target_nodes * 9 {
            return aig;
        }
        goal = (goal * target_nodes / got.max(1)).max(goal + 32);
    }
    generate_with_goal(spec, goal)
}

fn generate_with_goal(spec: &IpSpec, target_nodes: usize) -> Aig {
    let seed = name_seed(spec.name);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);

    // Datapath width of the synthetic blocks, scaled down for small targets
    // so a single block cannot badly overshoot the node budget.
    let word = (target_nodes / 16).clamp(4, 16);
    let n_pis = (target_nodes / 24).clamp(word + 4, 256);
    let mut aig = Aig::new(n_pis);
    let pis: Vec<Lit> = (0..n_pis).map(|i| aig.pi_lit(i)).collect();

    // The working set starts as a window of PIs and accumulates block
    // outputs; blocks draw operands from it at random.
    let mut live: Vec<Lit> = pis.clone();
    let mut outputs: Vec<Lit> = Vec::new();
    // Defensive stall bound: a block whose gates all fold away adds no
    // nodes; if that happens repeatedly the working set has degenerated
    // (e.g. to constants) and we stop rather than spin.
    let mut stalled = 0u32;
    while aig.num_nodes() < target_nodes && stalled < 32 {
        let nodes_before = aig.num_nodes();
        let mut produced = match spec.category {
            Category::Communication => comm_block(&mut aig, &mut rng, &live, word),
            Category::Control => control_block(&mut aig, &mut rng, &live, word),
            Category::Crypto => crypto_block(&mut aig, &mut rng, &live, word),
            Category::Dsp => dsp_block(&mut aig, &mut rng, &live, word),
            Category::Processor => processor_block(&mut aig, &mut rng, &live, word),
        };
        // Redundancy injection: circuits straight out of an RTL flow carry
        // optimization headroom that ABC recipes then reclaim; structural
        // hashing at construction time would otherwise leave our synthetic
        // designs near-optimal and make all QoR labels identical.
        for l in produced.iter_mut() {
            if rng.gen_bool(0.35) {
                *l = redundant_buffer(&mut aig, &mut rng, &live, *l);
            }
        }
        if rng.gen_bool(0.5) {
            produced.push(redundant_sop3(&mut aig, &mut rng, &live));
        }
        // Constants must never enter the working set: a window full of
        // folded-away FALSE literals is an absorbing state in which no
        // block can ever create a gate again (the DSP accumulator's unused
        // high bits are constant, for example).
        produced.retain(|l| !l.is_const());
        // Tap an occasional output so intermediate logic stays live.
        if let Some(&tap) = produced.first() {
            if rng.gen_bool(0.3) {
                outputs.push(tap);
            }
        }
        live.extend(produced);
        // Bound the working set so operand selection stays local-ish.
        if live.len() > 4 * n_pis {
            let start = live.len() - 2 * n_pis;
            live.drain(..start);
        }
        stalled = if aig.num_nodes() == nodes_before { stalled + 1 } else { 0 };
    }
    // Emit the last word as primary outputs plus any taps.
    for &l in live.iter().rev().take(word) {
        aig.add_po(l);
    }
    for &l in &outputs {
        aig.add_po(l);
    }
    aig.compact();
    aig
}

/// Stable seed derived from the design name (FNV-1a).
fn name_seed(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn pick(rng: &mut ChaCha8Rng, live: &[Lit]) -> Lit {
    let l = live[rng.gen_range(0..live.len())];
    if rng.gen() {
        !l
    } else {
        l
    }
}

fn pick_word(rng: &mut ChaCha8Rng, live: &[Lit], w: usize) -> Vec<Lit> {
    (0..w).map(|_| pick(rng, live)).collect()
}

/// Re-expresses `lit` through a redundant Shannon expansion
/// `f = (s·f) | (!s·f)` over a random control signal — three gates of pure
/// redundancy that structural hashing cannot see but `rewrite` can remove.
fn redundant_buffer(aig: &mut Aig, rng: &mut ChaCha8Rng, live: &[Lit], lit: Lit) -> Lit {
    let s = pick(rng, live);
    let t = aig.and(s, lit);
    let e = aig.and(!s, lit);
    // Build the OR without the smart constructor so the redundancy survives
    // generation (plain strash sees three distinct gates).
    aig.or(t, e)
}

/// A random 3-input function in full sum-of-minterms form — the kind of
/// flattened two-level logic `refactor` collapses into factored form.
fn redundant_sop3(aig: &mut Aig, rng: &mut ChaCha8Rng, live: &[Lit]) -> Lit {
    let vars = [pick(rng, live), pick(rng, live), pick(rng, live)];
    let tt: u8 = rng.gen_range(1..255);
    let mut acc = Lit::FALSE;
    for p in 0..8u8 {
        if tt >> p & 1 == 1 {
            let mut term = Lit::TRUE;
            for (i, &v) in vars.iter().enumerate() {
                let lit = if p >> i & 1 == 1 { v } else { !v };
                term = aig.and(term, lit);
            }
            acc = aig.or(acc, term);
        }
    }
    acc
}

/// Communication style: mux-selected barrel shifts and parity (CRC-ish)
/// feedback.
fn comm_block(aig: &mut Aig, rng: &mut ChaCha8Rng, live: &[Lit], w: usize) -> Vec<Lit> {
    let data = pick_word(rng, live, w);
    let sel = pick(rng, live);
    let shift = rng.gen_range(1..w);
    let mut out = Vec::with_capacity(w);
    for i in 0..w {
        let shifted = data[(i + shift) % w];
        out.push(aig.mux(sel, shifted, data[i]));
    }
    // Parity feedback bit folded into the LSB.
    let mut parity = out[0];
    for &o in &out[1..] {
        parity = aig.xor(parity, o);
    }
    out[0] = aig.xor(out[0], parity);
    out
}

/// Control style: sum-of-products next-state terms and a priority chain.
fn control_block(aig: &mut Aig, rng: &mut ChaCha8Rng, live: &[Lit], w: usize) -> Vec<Lit> {
    let mut out = Vec::with_capacity(w / 2);
    for _ in 0..w / 2 {
        // OR of 3 product terms over 2-4 literals each.
        let mut acc = Lit::FALSE;
        for _ in 0..3 {
            let mut term = pick(rng, live);
            for _ in 0..rng.gen_range(1..4) {
                let l = pick(rng, live);
                term = aig.and(term, l);
            }
            acc = aig.or(acc, term);
        }
        out.push(acc);
    }
    // Priority chain: grant_i = req_i & !grant_{i-1}.
    let mut prev = Lit::FALSE;
    for o in out.iter_mut() {
        let g = aig.and(*o, !prev);
        prev = g;
        *o = g;
    }
    out
}

/// Crypto style: XOR mixing layer + nonlinear (chi-like) layer + rotation.
fn crypto_block(aig: &mut Aig, rng: &mut ChaCha8Rng, live: &[Lit], w: usize) -> Vec<Lit> {
    let a = pick_word(rng, live, w);
    let b = pick_word(rng, live, w);
    let rot = rng.gen_range(1..w);
    let mut out = Vec::with_capacity(w);
    for i in 0..w {
        // chi: a_i ^ (!a_{i+1} & a_{i+2}) ^ b_{i+rot}
        let chi = {
            let t = aig.and(!a[(i + 1) % w], a[(i + 2) % w]);
            aig.xor(a[i], t)
        };
        out.push(aig.xor(chi, b[(i + rot) % w]));
    }
    out
}

/// DSP style: a small multiplier feeding an accumulator (MAC slice).
fn dsp_block(aig: &mut Aig, rng: &mut ChaCha8Rng, live: &[Lit], w: usize) -> Vec<Lit> {
    let half = (w / 4).max(2);
    let x = pick_word(rng, live, half);
    let y = pick_word(rng, live, half);
    // Partial-product accumulation (unsigned, truncated to w bits).
    let mut acc: Vec<Lit> = vec![Lit::FALSE; w];
    let mut traces = Vec::new();
    for (j, &yj) in y.iter().enumerate() {
        let row: Vec<Lit> = (0..w)
            .map(|i| if i >= j && i - j < x.len() { aig.and(x[i - j], yj) } else { Lit::FALSE })
            .collect();
        let summed = ripple_adder(aig, &acc, &row, &mut traces);
        acc = summed[..w].to_vec();
    }
    acc
}

/// Processor style: an ALU slice — add, and, xor, pass — selected by two
/// opcode bits, plus a comparator flag.
fn processor_block(aig: &mut Aig, rng: &mut ChaCha8Rng, live: &[Lit], w: usize) -> Vec<Lit> {
    let a = pick_word(rng, live, w);
    let b = pick_word(rng, live, w);
    let op0 = pick(rng, live);
    let op1 = pick(rng, live);
    let mut traces = Vec::new();
    let sum = ripple_adder(aig, &a, &b, &mut traces);
    let mut out = Vec::with_capacity(w + 1);
    for i in 0..w {
        let and_i = aig.and(a[i], b[i]);
        let xor_i = aig.xor(a[i], b[i]);
        let lo = aig.mux(op0, and_i, sum[i]);
        let hi = aig.mux(op0, a[i], xor_i);
        out.push(aig.mux(op1, hi, lo));
    }
    // Equality flag.
    let mut eq = Lit::TRUE;
    for i in 0..w {
        let x = aig.xor(a[i], b[i]);
        eq = aig.and(eq, !x);
    }
    out.push(eq);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_20_train_and_9_test_designs() {
        let train = OPENABCD_DESIGNS.iter().filter(|d| d.train).count();
        assert_eq!(train, 20);
        assert_eq!(OPENABCD_DESIGNS.len() - train, 9);
    }

    #[test]
    fn edges_to_nodes_ratio_matches_paper() {
        // Table 1 AIGs have ~2.1 edges per node (AND-dominated graphs).
        for d in &OPENABCD_DESIGNS {
            let ratio = d.edges as f64 / d.nodes as f64;
            assert!((1.8..2.3).contains(&ratio), "{}: ratio {ratio}", d.name);
        }
    }

    #[test]
    fn generated_size_tracks_target() {
        for d in OPENABCD_DESIGNS.iter().filter(|d| d.nodes < 20_000) {
            let aig = generate_ip(d, 8);
            let target = (d.nodes / 8).max(64);
            let got = aig.num_nodes();
            assert!(
                got as f64 >= target as f64 * 0.5 && got as f64 <= target as f64 * 1.6,
                "{}: got {got}, target {target}",
                d.name
            );
        }
    }

    #[test]
    fn generation_is_deterministic_per_design() {
        let spec = &OPENABCD_DESIGNS[0];
        assert_eq!(generate_ip(spec, 8), generate_ip(spec, 8));
    }

    #[test]
    fn different_designs_differ() {
        let a = generate_ip(&OPENABCD_DESIGNS[0], 8);
        let b = generate_ip(&OPENABCD_DESIGNS[1], 8);
        assert_ne!(a, b);
    }

    #[test]
    fn categories_produce_structurally_distinct_circuits() {
        // Same size target, different category → different depth/gate mix.
        let mut by_cat = std::collections::HashMap::new();
        for d in OPENABCD_DESIGNS.iter().filter(|d| d.train) {
            let aig = generate_ip(d, 16);
            let depth = hoga_circuit::depth(&aig);
            let density = aig.num_ands() as f64 / aig.num_nodes() as f64;
            by_cat
                .entry(format!("{:?}", d.category))
                .or_insert_with(Vec::new)
                .push((depth, density));
        }
        assert!(by_cat.len() == 5, "all five categories generated");
    }

    /// Regression: DSP blocks emit constant-FALSE high accumulator bits;
    /// before constants were filtered from the working set, `fir` at scale
    /// 16 entered an absorbing all-constant state and the sizing loop never
    /// terminated.
    #[test]
    fn dsp_designs_terminate_at_every_scale() {
        let fir = OPENABCD_DESIGNS.iter().find(|d| d.name == "fir").expect("fir");
        let iir = OPENABCD_DESIGNS.iter().find(|d| d.name == "iir").expect("iir");
        for scale in [8, 16, 32, 64] {
            for spec in [fir, iir] {
                let aig = generate_ip(spec, scale);
                assert!(aig.num_ands() > 0, "{} /{scale} degenerated", spec.name);
                assert!(aig.check().is_ok());
            }
        }
    }

    #[test]
    fn generated_circuits_are_valid() {
        for d in OPENABCD_DESIGNS.iter().filter(|d| d.nodes < 5_000) {
            let aig = generate_ip(d, 8);
            assert!(aig.check().is_ok(), "{} invalid", d.name);
            assert!(aig.num_pos() > 0, "{} has no outputs", d.name);
        }
    }
}
