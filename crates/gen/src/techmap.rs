//! K-LUT technology mapping with AIG re-decomposition.
//!
//! The paper evaluates functional reasoning on AIGs produced "by ABC with
//! complex ASAP 7nm technology mapping", whose role is to *restructure* the
//! network so that adder boundaries are no longer syntactically obvious.
//! This module reproduces that effect end-to-end:
//!
//! 1. enumerate k-feasible cuts ([`hoga_synth::cuts`]),
//! 2. select a LUT cover greedily from the POs (fewest-leaves cut first),
//! 3. compute each LUT's truth table, and
//! 4. rebuild a fresh AIG from the LUT network via Shannon decomposition
//!    ([`hoga_synth::build_from_tt`]).
//!
//! The mapped AIG computes the same function (verified by simulation in the
//! tests) but its local structure — and therefore the naive structural
//! signature of every adder — is rewritten, exactly the obfuscation the
//! Gamora setting needs.

use hoga_circuit::{Aig, Lit, NodeId, NodeKind};
use hoga_synth::build_from_tt;
use hoga_synth::cuts::{cut_truth_table, enumerate_cuts, Cut};
use std::collections::HashMap;

/// Result of technology mapping.
#[derive(Debug, Clone)]
pub struct MappedCircuit {
    /// The re-decomposed AIG.
    pub aig: Aig,
    /// Old LUT-root node → literal in the new AIG. Only covered roots (plus
    /// PIs and the constant) appear; interior nodes of LUTs are dissolved.
    pub root_map: HashMap<NodeId, Lit>,
    /// Number of LUTs in the cover (the "mapped cell count").
    pub num_luts: usize,
}

/// Maps `aig` onto `k`-input LUTs and re-decomposes the result into a fresh
/// AIG.
///
/// # Panics
///
/// Panics if `k` is not in `2..=6`.
pub fn lut_map(aig: &Aig, k: usize) -> MappedCircuit {
    assert!((2..=6).contains(&k), "LUT size must be in 2..=6");
    let cuts = enumerate_cuts(aig, k);

    // Phase 1: choose the cover. A node is "needed" if it drives a PO or is
    // a leaf of a chosen LUT. Process in reverse topological order so every
    // needed node sees its final status before being covered.
    let mut needed = vec![false; aig.num_nodes()];
    for po in aig.pos() {
        needed[po.node() as usize] = true;
    }
    let mut chosen: Vec<Option<Cut>> = vec![None; aig.num_nodes()];
    for id in (0..aig.num_nodes() as NodeId).rev() {
        if !needed[id as usize] || !matches!(aig.node(id), NodeKind::And(_, _)) {
            continue;
        }
        // A LUT wants to swallow as much logic as possible: choose the cut
        // covering the largest cone, breaking ties toward fewer leaves
        // (deterministic). This is what makes larger k give coarser covers.
        let cut = cuts
            .cuts_of(id)
            .iter()
            .filter(|c| !c.leaves().contains(&id))
            .max_by_key(|c| {
                (hoga_synth::cuts::cone_size_capped(aig, id, c, 64), usize::MAX - c.size())
            })
            .cloned()
            .unwrap_or_else(|| {
                // Fall back to the fanin cut.
                let NodeKind::And(a, b) = aig.node(id) else { unreachable!() };
                let mut leaves = vec![a.node(), b.node()];
                leaves.sort_unstable();
                leaves.dedup();
                Cut::from_leaves(leaves)
            });
        for &leaf in cut.leaves() {
            needed[leaf as usize] = true;
        }
        chosen[id as usize] = Some(cut);
    }

    // Phase 2: rebuild bottom-up.
    let mut out = Aig::new(aig.num_pis());
    let mut root_map: HashMap<NodeId, Lit> = HashMap::new();
    root_map.insert(0, Lit::FALSE);
    for i in 0..aig.num_pis() {
        root_map.insert(aig.pi_lit(i).node(), out.pi_lit(i));
    }
    let mut memo: HashMap<(u64, Vec<Lit>), Lit> = HashMap::new();
    let mut num_luts = 0;
    for id in 0..aig.num_nodes() as NodeId {
        let Some(cut) = &chosen[id as usize] else { continue };
        let leaf_lits: Vec<Lit> = cut
            .leaves()
            .iter()
            .map(|&l| *root_map.get(&l).expect("leaf is a covered root or PI"))
            .collect();
        let tt = cut_truth_table(aig, id, cut);
        let lit = build_from_tt(&mut out, tt, &leaf_lits, &mut memo);
        root_map.insert(id, lit);
        num_luts += 1;
    }
    for &po in aig.pos() {
        let base = *root_map.get(&po.node()).expect("PO driver covered");
        out.add_po(if po.is_complemented() { !base } else { base });
    }
    // Compaction renumbers nodes; translate the root map through the remap,
    // dropping roots whose logic turned out to be dead in the new AIG.
    let remap = out.compact();
    let root_map = root_map
        .into_iter()
        .filter_map(|(old, lit)| {
            remap[lit.node() as usize].map(|new| (old, Lit::from_node(new, lit.is_complemented())))
        })
        .collect();
    MappedCircuit { aig: out, root_map, num_luts }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multiplier::csa_multiplier;
    use hoga_circuit::simulate::probably_equivalent;

    fn full_adder_aig() -> Aig {
        let mut g = Aig::new(3);
        let (a, b, c) = (g.pi_lit(0), g.pi_lit(1), g.pi_lit(2));
        let x = g.xor(a, b);
        let s = g.xor(x, c);
        let carry = g.maj(a, b, c);
        g.add_po(s);
        g.add_po(carry);
        g
    }

    #[test]
    fn mapping_preserves_function() {
        let g = full_adder_aig();
        for k in [2, 3, 4, 6] {
            let mapped = lut_map(&g, k);
            assert!(probably_equivalent(&g, &mapped.aig, 4, k as u64), "k={k} broke function");
        }
    }

    #[test]
    fn mapping_restructures_multiplier() {
        let tc = csa_multiplier(4);
        let mapped = lut_map(&tc.aig, 4);
        assert!(probably_equivalent(&tc.aig, &mapped.aig, 4, 0));
        // Structure must actually change for the obfuscation to be real.
        assert_ne!(tc.aig, mapped.aig);
        assert!(mapped.num_luts > 0);
        assert!(mapped.num_luts < tc.aig.num_ands(), "LUT cover must be coarser than gates");
    }

    #[test]
    fn trivial_circuits_map_cleanly() {
        let mut g = Aig::new(2);
        let (a, b) = (g.pi_lit(0), g.pi_lit(1));
        let x = g.and(a, !b);
        g.add_po(x);
        g.add_po(!a);
        let mapped = lut_map(&g, 4);
        assert!(probably_equivalent(&g, &mapped.aig, 4, 9));
    }

    #[test]
    fn mapping_is_deterministic() {
        let tc = csa_multiplier(4);
        let m1 = lut_map(&tc.aig, 4);
        let m2 = lut_map(&tc.aig, 4);
        assert_eq!(m1.aig, m2.aig);
        assert_eq!(m1.num_luts, m2.num_luts);
    }

    #[test]
    fn larger_k_gives_coarser_cover() {
        let tc = csa_multiplier(6);
        let m2 = lut_map(&tc.aig, 2);
        let m6 = lut_map(&tc.aig, 6);
        assert!(m6.num_luts < m2.num_luts, "{} !< {}", m6.num_luts, m2.num_luts);
    }
}
