//! Traced adder building blocks.
//!
//! Every full/half adder built here records its sum and carry root literals
//! in an [`AdderTrace`]; the traces are the constructive ground-truth labels
//! for the Gamora-style functional-reasoning task (sum roots are XOR
//! functions, full-adder carry roots are MAJ3 functions).

use hoga_circuit::{Aig, Lit};
use serde::{Deserialize, Serialize};

/// Which adder cell produced a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AdderKind {
    /// A two-input half adder (`sum = a⊕b`, `carry = a·b`).
    Half,
    /// A three-input full adder (`sum = a⊕b⊕c`, `carry = MAJ(a,b,c)`).
    Full,
}

/// The root literals of one adder cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdderTrace {
    /// Half or full adder.
    pub kind: AdderKind,
    /// Root literal of the sum output (an XOR2/XOR3 function of the inputs).
    pub sum: Lit,
    /// Root literal of the carry output (AND2 for half, MAJ3 for full).
    pub carry: Lit,
}

/// Whether `lit` is the output of an actual AND gate (constant folding may
/// reduce a degenerate adder to a wire or constant, which must not be
/// recorded as an adder root).
fn is_gate(aig: &Aig, lit: Lit) -> bool {
    matches!(aig.node(lit.node()), hoga_circuit::NodeKind::And(_, _))
}

/// Builds a half adder, returning `(sum, carry)`; records a trace unless
/// constant folding degenerated the cell to wires.
pub(crate) fn half_adder(
    aig: &mut Aig,
    a: Lit,
    b: Lit,
    traces: &mut Vec<AdderTrace>,
) -> (Lit, Lit) {
    let sum = aig.xor(a, b);
    let carry = aig.and(a, b);
    if is_gate(aig, sum) && is_gate(aig, carry) {
        traces.push(AdderTrace { kind: AdderKind::Half, sum, carry });
    }
    (sum, carry)
}

/// Builds a full adder, returning `(sum, carry)`; records a trace unless
/// constant folding degenerated the cell to wires.
pub fn full_adder(
    aig: &mut Aig,
    a: Lit,
    b: Lit,
    c: Lit,
    traces: &mut Vec<AdderTrace>,
) -> (Lit, Lit) {
    let ab = aig.xor(a, b);
    let sum = aig.xor(ab, c);
    let carry = aig.maj(a, b, c);
    if is_gate(aig, sum) && is_gate(aig, carry) {
        traces.push(AdderTrace { kind: AdderKind::Full, sum, carry });
    }
    (sum, carry)
}

/// Adds two `n`-bit vectors with a ripple-carry chain, returning `n + 1`
/// result bits (LSB first) and recording the adder traces.
///
/// # Panics
///
/// Panics if the operand widths differ.
pub(crate) fn ripple_adder(
    aig: &mut Aig,
    a: &[Lit],
    b: &[Lit],
    traces: &mut Vec<AdderTrace>,
) -> Vec<Lit> {
    assert_eq!(a.len(), b.len(), "operand width mismatch");
    let mut out = Vec::with_capacity(a.len() + 1);
    let mut carry = Lit::FALSE;
    for (i, (&x, &y)) in a.iter().zip(b).enumerate() {
        let (s, c) = if i == 0 {
            half_adder(aig, x, y, traces)
        } else {
            full_adder(aig, x, y, carry, traces)
        };
        out.push(s);
        carry = c;
    }
    out.push(carry);
    out
}

/// One carry-save reduction step: compresses three addend vectors into two
/// (a sum vector and a carry vector shifted left by one), recording traces.
///
/// All vectors are LSB-first and may differ in length; missing bits are
/// treated as constant false.
pub(crate) fn carry_save_step(
    aig: &mut Aig,
    x: &[Lit],
    y: &[Lit],
    z: &[Lit],
    traces: &mut Vec<AdderTrace>,
) -> (Vec<Lit>, Vec<Lit>) {
    let width = x.len().max(y.len()).max(z.len());
    let get = |v: &[Lit], i: usize| v.get(i).copied().unwrap_or(Lit::FALSE);
    let mut sums = Vec::with_capacity(width);
    let mut carries = vec![Lit::FALSE]; // carry vector is shifted left by 1
    for i in 0..width {
        let (a, b, c) = (get(x, i), get(y, i), get(z, i));
        // Degenerate positions fold inside the AIG (xor/maj with FALSE), but
        // we only record a trace when a real 3-input adder is formed.
        if c == Lit::FALSE {
            let (s, co) = half_adder(aig, a, b, traces);
            sums.push(s);
            carries.push(co);
        } else {
            let (s, co) = full_adder(aig, a, b, c, traces);
            sums.push(s);
            carries.push(co);
        }
    }
    (sums, carries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hoga_circuit::simulate::simulate_pos;
    use rand::{Rng, SeedableRng};

    /// Simulates an adder circuit and checks `a + b` for 64 random patterns.
    #[test]
    fn ripple_adder_computes_integer_sum() {
        let width = 8;
        let mut aig = Aig::new(2 * width);
        let a: Vec<Lit> = (0..width).map(|i| aig.pi_lit(i)).collect();
        let b: Vec<Lit> = (0..width).map(|i| aig.pi_lit(width + i)).collect();
        let mut traces = Vec::new();
        let out = ripple_adder(&mut aig, &a, &b, &mut traces);
        for &o in &out {
            aig.add_po(o);
        }
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
        let pi_words: Vec<u64> = (0..2 * width).map(|_| rng.gen()).collect();
        let pos = simulate_pos(&aig, &pi_words);
        for pattern in 0..64 {
            let bit = |w: &u64| (w >> pattern) & 1;
            let av: u64 = (0..width).map(|i| bit(&pi_words[i]) << i).sum();
            let bv: u64 = (0..width).map(|i| bit(&pi_words[width + i]) << i).sum();
            let got: u64 = (0..=width).map(|i| bit(&pos[i]) << i).sum();
            assert_eq!(got, av + bv, "pattern {pattern}: {av} + {bv}");
        }
        assert_eq!(traces.len(), width);
    }

    #[test]
    fn traces_record_one_cell_per_bit() {
        let mut aig = Aig::new(6);
        let a: Vec<Lit> = (0..3).map(|i| aig.pi_lit(i)).collect();
        let b: Vec<Lit> = (0..3).map(|i| aig.pi_lit(3 + i)).collect();
        let mut traces = Vec::new();
        let _ = ripple_adder(&mut aig, &a, &b, &mut traces);
        assert_eq!(traces.len(), 3);
        assert_eq!(traces[0].kind, AdderKind::Half);
        assert!(traces[1..].iter().all(|t| t.kind == AdderKind::Full));
    }

    #[test]
    fn carry_save_step_preserves_weighted_sum() {
        // x + y + z == sums + 2*carries, checked by simulation as integers.
        let width = 6;
        let mut aig = Aig::new(3 * width);
        let vecs: Vec<Vec<Lit>> =
            (0..3).map(|k| (0..width).map(|i| aig.pi_lit(k * width + i)).collect()).collect();
        let mut traces = Vec::new();
        let (sums, carries) = carry_save_step(&mut aig, &vecs[0], &vecs[1], &vecs[2], &mut traces);
        for &s in sums.iter().chain(&carries) {
            aig.add_po(s);
        }
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(2);
        let pi_words: Vec<u64> = (0..3 * width).map(|_| rng.gen()).collect();
        let pos = simulate_pos(&aig, &pi_words);
        for pattern in 0..64 {
            let bit = |w: u64| (w >> pattern) & 1;
            let val =
                |offset: usize| -> u64 { (0..width).map(|i| bit(pi_words[offset + i]) << i).sum() };
            let expect = val(0) + val(width) + val(2 * width);
            let s_val: u64 = sums.iter().enumerate().map(|(i, _)| bit(pos[i]) << i).sum();
            let c_val: u64 =
                carries.iter().enumerate().map(|(i, _)| bit(pos[sums.len() + i]) << i).sum();
            assert_eq!(s_val + c_val, expect, "pattern {pattern}");
        }
    }
}
