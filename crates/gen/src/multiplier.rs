//! CSA-array and radix-4 Booth multipliers (the Figure 6 circuits).
//!
//! Both generators return a [`TracedCircuit`]: the AIG plus the
//! [`AdderTrace`]s of every full/half adder, which constitute the
//! constructive ground truth for functional reasoning. Multipliers are
//! verified bit-exactly against native integer multiplication in the tests.

use crate::adders::{carry_save_step, ripple_adder, AdderTrace};
use hoga_circuit::{Aig, Lit};
use serde::{Deserialize, Serialize};

/// A generated circuit together with its adder ground truth.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TracedCircuit {
    /// The circuit.
    pub aig: Aig,
    /// One trace per materialized adder cell.
    pub adders: Vec<AdderTrace>,
}

/// Builds an unsigned `width × width → 2·width` carry-save array multiplier.
///
/// PIs `0..width` are the multiplicand `a` (LSB first), PIs
/// `width..2·width` the multiplier `b`; POs are the product bits LSB first.
///
/// # Panics
///
/// Panics if `width < 2`.
pub fn csa_multiplier(width: usize) -> TracedCircuit {
    assert!(width >= 2, "width must be at least 2");
    let mut aig = Aig::new(2 * width);
    let a: Vec<Lit> = (0..width).map(|i| aig.pi_lit(i)).collect();
    let b: Vec<Lit> = (0..width).map(|i| aig.pi_lit(width + i)).collect();
    let mut traces = Vec::new();

    // Partial-product rows: row j = (a & b[j]) << j, as a 2w-bit vector.
    let mut rows: Vec<Vec<Lit>> = Vec::with_capacity(width);
    for (j, &bj) in b.iter().enumerate() {
        let mut row = vec![Lit::FALSE; 2 * width];
        for (i, &ai) in a.iter().enumerate() {
            row[i + j] = aig.and(ai, bj);
        }
        rows.push(row);
    }

    // Array (row-by-row carry-save) reduction: acc_{sum,carry} absorbs one
    // partial-product row per step, exactly like the classic CSA array.
    let mut sum_vec = rows[0].clone();
    let mut carry_vec = vec![Lit::FALSE; 2 * width];
    for row in &rows[1..] {
        let (s, c) = carry_save_step(&mut aig, &sum_vec, &carry_vec, row, &mut traces);
        sum_vec = fit(s, 2 * width);
        carry_vec = fit(c, 2 * width);
    }
    // Final carry-propagate addition.
    let product = ripple_adder(&mut aig, &sum_vec, &carry_vec, &mut traces);
    for &p in product.iter().take(2 * width) {
        aig.add_po(p);
    }
    TracedCircuit { aig, adders: traces }
}

/// Builds a signed (two's-complement) `width × width → 2·width` radix-4
/// Booth multiplier.
///
/// PIs and POs are laid out like [`csa_multiplier`]; the product is the
/// signed product modulo `2^(2·width)`, which coincides with the unsigned
/// product on the low `2·width` bits for sign-extended operands.
///
/// # Panics
///
/// Panics if `width < 2`.
pub fn booth_multiplier(width: usize) -> TracedCircuit {
    assert!(width >= 2, "width must be at least 2");
    let out_w = 2 * width;
    let mut aig = Aig::new(2 * width);
    let a: Vec<Lit> = (0..width).map(|i| aig.pi_lit(i)).collect();
    let b: Vec<Lit> = (0..width).map(|i| aig.pi_lit(width + i)).collect();
    let mut traces = Vec::new();

    // Sign-extended multiplicand bit accessor (two's complement).
    let abit = |i: isize| -> Lit {
        if i < 0 {
            Lit::FALSE
        } else if (i as usize) < width {
            a[i as usize]
        } else {
            a[width - 1] // sign extension
        }
    };
    let bbit = |i: isize, aig: &Aig| -> Lit {
        let _ = aig;
        if i < 0 {
            Lit::FALSE
        } else if (i as usize) < width {
            b[i as usize]
        } else {
            b[width - 1]
        }
    };

    // Booth digits: d_k = b[2k-1] + b[2k] - 2*b[2k+1], k = 0..ceil(w/2).
    let digits = width.div_ceil(2);
    let mut addends: Vec<Vec<Lit>> = Vec::with_capacity(digits);
    for k in 0..digits {
        let b_m1 = bbit(2 * k as isize - 1, &aig);
        let b_0 = bbit(2 * k as isize, &aig);
        let b_p1 = bbit(2 * k as isize + 1, &aig);
        let one = aig.xor(b_m1, b_0); // |d| == 1
        let x01 = aig.xor(b_0, b_p1);
        let two = aig.and(x01, !one); // |d| == 2
        let neg = b_p1; // sign of the digit

        // pp_k = ((one ? a : 0) | (two ? a<<1 : 0)) ^ neg, aligned at 2k,
        // plus the two's-complement correction bit `neg` at position 2k.
        let mut row = vec![Lit::FALSE; out_w];
        for (pos, slot) in row.iter_mut().enumerate().skip(2 * k) {
            let i = pos as isize - 2 * k as isize;
            let a1 = abit(i); // contribution of ±1·a
            let a2 = abit(i - 1); // contribution of ±2·a
            let m1 = aig.and(one, a1);
            let m2 = aig.and(two, a2);
            let mag = aig.or(m1, m2);
            *slot = aig.xor(mag, neg);
        }
        addends.push(row);
        // Correction row: single `neg` bit at weight 2^(2k).
        let mut corr = vec![Lit::FALSE; out_w];
        corr[2 * k] = neg;
        addends.push(corr);
    }

    // Wallace-style reduction: repeatedly compress triples of addends.
    while addends.len() > 2 {
        let mut next = Vec::with_capacity(addends.len().div_ceil(3) * 2);
        let mut it = addends.chunks(3);
        for chunk in &mut it {
            match chunk {
                [x, y, z] => {
                    let (s, c) = carry_save_step(&mut aig, x, y, z, &mut traces);
                    next.push(fit(s, out_w));
                    next.push(fit(c, out_w));
                }
                rest => next.extend_from_slice(rest),
            }
        }
        addends = next;
    }
    let product = if addends.len() == 2 {
        ripple_adder(&mut aig, &addends[0].clone(), &addends[1].clone(), &mut traces)
    } else {
        addends.pop().unwrap_or_else(|| vec![Lit::FALSE; out_w])
    };
    for i in 0..out_w {
        aig.add_po(product.get(i).copied().unwrap_or(Lit::FALSE));
    }
    TracedCircuit { aig, adders: traces }
}

/// Truncates/pads a bit vector to `w` (discarding overflow weights beyond
/// the product width, which are congruent to 0 modulo `2^w`).
fn fit(mut v: Vec<Lit>, w: usize) -> Vec<Lit> {
    v.resize(w, Lit::FALSE);
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use hoga_circuit::simulate::simulate_pos;
    use rand::{Rng, SeedableRng};

    /// Checks `product == a * b (mod 2^2w)` over 64 random patterns.
    fn check_multiplier(tc: &TracedCircuit, width: usize, signed: bool, seed: u64) {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let pi_words: Vec<u64> = (0..2 * width).map(|_| rng.gen()).collect();
        let pos = simulate_pos(&tc.aig, &pi_words);
        assert_eq!(pos.len(), 2 * width);
        for pattern in 0..64 {
            let bit = |w: u64| (w >> pattern) & 1;
            let mut av: u64 = (0..width).map(|i| bit(pi_words[i]) << i).sum();
            let mut bv: u64 = (0..width).map(|i| bit(pi_words[width + i]) << i).sum();
            if signed {
                // Sign-extend within u64 (wrapping product is identical, but
                // make the intent explicit).
                if av >> (width - 1) & 1 == 1 {
                    av |= u64::MAX << width;
                }
                if bv >> (width - 1) & 1 == 1 {
                    bv |= u64::MAX << width;
                }
            }
            let expect = av.wrapping_mul(bv) & mask(2 * width);
            let got: u64 = (0..2 * width).map(|i| bit(pos[i]) << i).sum();
            assert_eq!(got, expect, "pattern {pattern}: {av} * {bv}");
        }
    }

    fn mask(bits: usize) -> u64 {
        if bits >= 64 {
            u64::MAX
        } else {
            (1 << bits) - 1
        }
    }

    #[test]
    fn csa_multiplier_correct_for_small_widths() {
        for width in [2, 3, 4, 6, 8] {
            let tc = csa_multiplier(width);
            check_multiplier(&tc, width, false, width as u64);
        }
    }

    #[test]
    fn booth_multiplier_correct_for_small_widths() {
        for width in [2, 3, 4, 6, 8, 10] {
            let tc = booth_multiplier(width);
            check_multiplier(&tc, width, true, width as u64);
        }
    }

    #[test]
    fn csa_has_quadratic_adder_count() {
        let t8 = csa_multiplier(8);
        let t16 = csa_multiplier(16);
        let ratio = t16.adders.len() as f64 / t8.adders.len() as f64;
        assert!((3.0..5.0).contains(&ratio), "adder growth ratio {ratio} not roughly quadratic");
    }

    #[test]
    fn traces_point_at_gates() {
        let tc = csa_multiplier(4);
        for t in &tc.adders {
            assert!(matches!(tc.aig.node(t.sum.node()), hoga_circuit::NodeKind::And(_, _)));
            assert!(matches!(tc.aig.node(t.carry.node()), hoga_circuit::NodeKind::And(_, _)));
        }
    }

    #[test]
    fn booth_structure_differs_from_csa() {
        // Figure 6 relies on the two multipliers having genuinely different
        // architectures: Booth's mux-encoded partial products and Wallace
        // reduction vs the plain AND-matrix array. Same function, different
        // structure and different adder inventory.
        let csa = csa_multiplier(8);
        let booth = booth_multiplier(8);
        assert_ne!(csa.aig, booth.aig);
        assert_ne!(csa.adders.len(), booth.adders.len());
        // Booth encodes partial products through muxes, so it has gates that
        // are not part of any adder cell in a much higher proportion.
        let csa_ratio = csa.adders.len() as f64 / csa.aig.num_ands() as f64;
        let booth_ratio = booth.adders.len() as f64 / booth.aig.num_ands() as f64;
        assert!(
            booth_ratio != csa_ratio,
            "adder density should differ: {booth_ratio} vs {csa_ratio}"
        );
    }

    #[test]
    fn multipliers_are_deterministic() {
        assert_eq!(csa_multiplier(6).aig, csa_multiplier(6).aig);
        assert_eq!(booth_multiplier(6).aig, booth_multiplier(6).aig);
    }
}
