//! Criterion benchmark harness regenerating every table and figure of the
//! HOGA paper.
//!
//! Each bench target wraps one experiment driver from
//! [`hoga_eval::experiments`]; running a bench both times the experiment
//! and **prints the reproduced table/series** to stdout, so
//! `cargo bench -p hoga-bench` regenerates the paper's artifacts end to
//! end:
//!
//! | bench target | artifact |
//! |---|---|
//! | `table2_qor` | Table 2 (QoR MAPE + training time) |
//! | `fig4_scatter` | Figure 4 (prediction-vs-truth series, CSV) |
//! | `fig5_scaling` | Figure 5 (multi-worker scaling) |
//! | `fig6_reasoning` | Figure 6 (accuracy vs bitwidth, CSA & Booth) |
//! | `fig7_attention` | Figure 7 (per-class hop attention) |
//! | `ablation_aggregation` | §III-B aggregator ablation |
//! | `kernels` | microbenchmarks (hop features, attention, synthesis) |
//!
//! Experiment sizes default to CPU-friendly presets; set
//! `HOGA_BENCH_SCALE=full` for larger runs.

#![forbid(unsafe_code)]

/// Returns `true` when the environment requests full-scale benchmarks.
pub fn full_scale() -> bool {
    std::env::var("HOGA_BENCH_SCALE").map(|v| v == "full").unwrap_or(false)
}
