//! Figure 4 — prediction-vs-truth scatter benchmark.
//!
//! Regenerates the scatter series (CSV on stdout) and times the evaluation
//! pass that produces them.

use criterion::{criterion_group, criterion_main, Criterion};
use hoga_eval::experiments::fig4::from_table2;
use hoga_eval::experiments::table2::{run as run_table2, Table2Config};
use hoga_eval::trainer::{eval_qor, TrainConfig};
use std::hint::black_box;

fn config() -> Table2Config {
    let mut cfg = Table2Config::default();
    if !hoga_bench::full_scale() {
        cfg.dataset.scale_divisor = 32;
        cfg.dataset.recipes_per_design = 8;
        cfg.dataset.max_scaled_nodes = 1500;
        cfg.train = TrainConfig { hidden_dim: 32, epochs: 60, lr: 3e-3, ..TrainConfig::default() };
    }
    cfg
}

fn bench_fig4(c: &mut Criterion) {
    let cfg = config();
    let table2 = run_table2(&cfg);
    let fig = from_table2(&table2);
    println!("\n===== Reproduced Figure 4 (CSV) =====\n{}", fig.render_csv());
    for s in &fig.series {
        if let Some(r) = fig.correlation(&s.model) {
            println!("correlation({}) = {r:.3}", s.model);
        }
    }

    let mut group = c.benchmark_group("fig4");
    group.sample_size(10);
    // Time the inference pass over all test designs for the best model.
    let model = table2.models.last().expect("models trained");
    group.bench_function("qor_inference_all_test_designs", |b| {
        b.iter(|| black_box(eval_qor(&table2.dataset, model, false).len()));
    });
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
