//! Figure 6 — functional-reasoning generalization benchmark.
//!
//! Regenerates both panels (CSA and Booth multipliers): accuracy vs
//! bitwidth for HOGA, GraphSAGE, GraphSAINT and SIGN, trained on the small
//! multiplier only. Criterion times one HOGA train+eval cycle.

use criterion::{criterion_group, criterion_main, Criterion};
use hoga_core::model::Aggregator;
use hoga_datasets::gamora::{build_reasoning_benchmark, MultiplierKind, ReasoningConfig};
use hoga_eval::experiments::fig6::{run, Fig6Config};
use hoga_eval::trainer::{eval_reasoning, train_reasoning, ReasonModelKind, TrainConfig};
use std::hint::black_box;

fn config() -> Fig6Config {
    if hoga_bench::full_scale() {
        Fig6Config::default()
    } else {
        Fig6Config {
            train_width: 8,
            eval_widths: vec![12, 16, 24],
            graph: ReasoningConfig { tech_map: true, lut_k: 4, num_hops: 8, label_k: 4 },
            train: TrainConfig { hidden_dim: 32, epochs: 100, lr: 3e-3, ..TrainConfig::default() },
        }
    }
}

fn bench_fig6(c: &mut Criterion) {
    let cfg = config();
    let result = run(&cfg);
    println!("\n===== Reproduced Figure 6 =====\n{}", result.render());

    let (train_graph, eval_graphs) = build_reasoning_benchmark(
        MultiplierKind::Csa,
        cfg.train_width,
        &cfg.eval_widths[..1],
        &cfg.graph,
    );
    // Time a light kernel: a short HOGA training run plus inference on the
    // first evaluation width.
    let mut short = cfg.train.clone();
    short.epochs = 2;
    let mut group = c.benchmark_group("fig6");
    group.sample_size(10);
    group.bench_function("hoga_short_train_and_eval_csa", |b| {
        b.iter(|| {
            let (model, _) = train_reasoning(
                &train_graph,
                ReasonModelKind::Hoga(Aggregator::GatedSelfAttention),
                &short,
            );
            black_box(eval_reasoning(&model, &eval_graphs[0]))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
