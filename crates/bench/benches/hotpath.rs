//! Microbenchmarks of the performance-critical kernels:
//! hop-feature generation (Eq. 3), the gated self-attention forward pass,
//! SpMM, and the synthesis passes that label the QoR dataset.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hoga_circuit::{adjacency, features};
use hoga_core::hopfeat::{hop_features, hop_stack};
use hoga_core::model::{HogaConfig, HogaModel};
use hoga_gen::multiplier::booth_multiplier;
use hoga_synth::{balance, resub, rewrite, Recipe};
use std::hint::black_box;

fn bench_hop_features(c: &mut Criterion) {
    let mut group = c.benchmark_group("hop_features");
    for width in [16usize, 32] {
        let tc = booth_multiplier(width);
        let adj = adjacency::normalized_symmetric(&tc.aig);
        let x = features::node_features(&tc.aig);
        group.bench_with_input(BenchmarkId::new("k8_booth", width), &width, |b, _| {
            b.iter(|| black_box(hop_features(&adj, &x, 8).len()));
        });
    }
    group.finish();
}

fn bench_attention_forward(c: &mut Criterion) {
    let tc = booth_multiplier(16);
    let adj = adjacency::normalized_symmetric(&tc.aig);
    let x = features::node_features(&tc.aig);
    let hops = hop_features(&adj, &x, 8);
    let cfg = HogaConfig::new(x.cols(), 64, 8);
    let model = HogaModel::new(&cfg, 0);
    let mut group = c.benchmark_group("attention");
    for batch in [256usize, 1024] {
        let nodes: Vec<usize> = (0..batch.min(tc.aig.num_nodes())).collect();
        let stack = hop_stack(&hops, &nodes);
        group.bench_with_input(BenchmarkId::new("forward", batch), &batch, |b, _| {
            b.iter(|| {
                let mut tape = hoga_autograd::Tape::new();
                let out = model.forward(&mut tape, &stack, nodes.len());
                black_box(tape.value(out.representations).sum())
            });
        });
    }
    group.finish();
}

fn bench_synthesis_passes(c: &mut Criterion) {
    let tc = booth_multiplier(12);
    let mut aig = tc.aig;
    aig.compact();
    let mut group = c.benchmark_group("synthesis");
    group.sample_size(10);
    group.bench_function("balance", |b| b.iter(|| black_box(balance(&aig).num_ands())));
    group.bench_function("rewrite", |b| b.iter(|| black_box(rewrite(&aig, false).num_ands())));
    group.bench_function("resub", |b| b.iter(|| black_box(resub(&aig, 1).num_ands())));
    group.bench_function("resyn2", |b| {
        b.iter(|| black_box(hoga_synth::run_recipe(&aig, &Recipe::resyn2()).final_ands))
    });
    group.finish();
}

/// The paper's scalability argument, measured directly: a GCN training step
/// is full-graph (cost grows with circuit size), a HOGA step is a fixed
/// node minibatch (cost independent of circuit size once hop features are
/// precomputed). The crossover in favor of HOGA appears as circuits grow.
fn bench_step_scaling(c: &mut Criterion) {
    use hoga_autograd::{ParamSet, Tape};
    use hoga_baselines::gcn::Gcn;
    use hoga_core::heads::NodeClassifier;
    use hoga_core::model::HogaConfig;
    use hoga_core::model::HogaModel;
    use std::sync::Arc;

    let mut group = c.benchmark_group("step_scaling");
    group.sample_size(10);
    for width in [8usize, 16, 32] {
        let tc = booth_multiplier(width);
        let mut aig = tc.aig;
        aig.compact();
        let n = aig.num_nodes();
        let adj = Arc::new(adjacency::normalized_symmetric(&aig));
        let x = features::node_features(&aig);
        let labels: Vec<usize> = (0..n).map(|i| i % 4).collect();

        // GCN full-graph step.
        let gcn = Gcn::new(x.cols(), 64, 5, 0);
        let mut gcn_params = gcn.params.clone();
        let gcn_head = NodeClassifier::new(&mut gcn_params, 64, 4, 1);
        group.bench_with_input(
            BenchmarkId::new(format!("gcn_full_graph_n{n}"), width),
            &width,
            |b, _| {
                b.iter(|| {
                    let mut tape = Tape::new();
                    let reps = gcn.forward(&mut tape, &adj, &x);
                    let logits = gcn_head.logits(&mut tape, &gcn_params, reps);
                    let loss = tape.cross_entropy_mean(logits, &labels);
                    black_box(tape.backward(loss).global_norm())
                });
            },
        );

        // HOGA fixed-512-node minibatch step (hop features precomputed).
        let hops = hop_features(&adj, &x, 8);
        let hcfg = HogaConfig::new(x.cols(), 64, 8);
        let mut hoga = HogaModel::new(&hcfg, 0);
        let hoga_head = {
            let mut p = ParamSet::new();
            std::mem::swap(&mut p, &mut hoga.params);
            let head = NodeClassifier::new(&mut p, 64, 4, 1);
            hoga.params = p;
            head
        };
        let nodes: Vec<usize> = (0..512.min(n)).collect();
        let stack = hop_stack(&hops, &nodes);
        let batch_labels: Vec<usize> = nodes.iter().map(|&i| labels[i]).collect();
        group.bench_with_input(
            BenchmarkId::new(format!("hoga_512_batch_n{n}"), width),
            &width,
            |b, _| {
                b.iter(|| {
                    let mut tape = Tape::new();
                    let out = hoga.forward(&mut tape, &stack, nodes.len());
                    let logits = hoga_head.logits(&mut tape, &hoga.params, out.representations);
                    let loss = tape.cross_entropy_mean(logits, &batch_labels);
                    black_box(tape.backward(loss).global_norm())
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_hop_features,
    bench_attention_forward,
    bench_synthesis_passes,
    bench_step_scaling
);
criterion_main!(benches);
