//! §III-B ablation benchmark — gated self-attention vs gate-only vs sum.
//!
//! Regenerates the aggregator-ablation table (the design-choice DESIGN.md
//! calls out) and times one full ablation sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use hoga_datasets::gamora::ReasoningConfig;
use hoga_eval::experiments::ablation::{run, AblationConfig};
use hoga_eval::trainer::TrainConfig;
use std::hint::black_box;

fn config() -> AblationConfig {
    if hoga_bench::full_scale() {
        AblationConfig::default()
    } else {
        AblationConfig {
            train_width: 8,
            eval_widths: vec![12, 16],
            graph: ReasoningConfig { tech_map: true, lut_k: 4, num_hops: 8, label_k: 4 },
            train: TrainConfig { hidden_dim: 32, epochs: 100, lr: 3e-3, ..TrainConfig::default() },
        }
    }
}

fn bench_ablation(c: &mut Criterion) {
    let cfg = config();
    let result = run(&cfg);
    println!("\n===== Reproduced aggregator ablation =====\n{}", result.render());

    // Time one short gate-only training (the cheapest variant) as the
    // repeatable kernel.
    use hoga_core::model::Aggregator;
    use hoga_datasets::gamora::{build_reasoning_graph, MultiplierKind};
    use hoga_eval::trainer::{train_reasoning, ReasonModelKind};
    let graph = build_reasoning_graph(MultiplierKind::Csa, cfg.train_width, &cfg.graph);
    let mut short = cfg.train.clone();
    short.epochs = 2;
    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);
    group.bench_function("gate_only_short_train", |b| {
        b.iter(|| {
            let (_, stats) =
                train_reasoning(&graph, ReasonModelKind::Hoga(Aggregator::GateOnly), &short);
            black_box(stats.final_loss)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
