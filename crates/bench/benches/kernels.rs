//! Benchmarks the dense-kernel hot path at the trainer's real shapes and
//! writes `BENCH_kernels.json` to the workspace root so CI can archive
//! kernel throughput next to the linter report.
//!
//! A plain `harness = false` main (no Criterion): each kernel runs at 1 and
//! at 8 threads, min-of-N wall clock, and the JSON records MACs/s plus the
//! parallel speedup and a bitwise-equality flag — the determinism contract
//! (`docs/PERFORMANCE.md`) says thread count must never change a single bit.
//!
//! Shapes follow the HOGA trainer: a hop stack of `batch * (K+1)` rows
//! (batch 512, K+1 = 5) at hidden widths d = 64 and d = 256. Pass `--smoke`
//! for a reduced-size run suitable for CI gating.

use std::path::Path;
use std::time::Instant;

use hoga_tensor::{set_threads, CsrMatrix, Matrix};

/// Deterministic, RNG-free fill in roughly [-1, 1] (the stub `rand` in some
/// validation environments panics at seed time, so benches avoid it).
fn dense(rows: usize, cols: usize, salt: usize) -> Matrix {
    Matrix::from_fn(rows, cols, |r, c| {
        let h = r.wrapping_mul(2654435761).wrapping_add(c.wrapping_mul(40503)).wrapping_add(salt);
        ((h % 2003) as f32 / 1001.5) - 1.0
    })
}

fn bits(m: &Matrix) -> Vec<u32> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

/// Times `op` at `threads` kernel threads, best of `runs`, returning the
/// wall seconds and the output bits of the last run.
fn time_at(threads: usize, runs: usize, op: &dyn Fn() -> Matrix) -> (f64, Vec<u32>) {
    set_threads(threads);
    let mut best = f64::INFINITY;
    let mut out_bits = Vec::new();
    for _ in 0..runs {
        let t0 = Instant::now();
        let out = op();
        best = best.min(t0.elapsed().as_secs_f64());
        out_bits = bits(&out);
    }
    set_threads(0);
    (best, out_bits)
}

struct KernelRow {
    name: String,
    macs: u64,
    wall_1t: f64,
    wall_8t: f64,
    bitwise_equal: bool,
}

impl KernelRow {
    fn measure(name: String, macs: u64, runs: usize, op: &dyn Fn() -> Matrix) -> Self {
        let (wall_1t, bits_1t) = time_at(1, runs, op);
        let (wall_8t, bits_8t) = time_at(8, runs, op);
        Self { name, macs, wall_1t, wall_8t, bitwise_equal: bits_1t == bits_8t }
    }

    fn json(&self) -> String {
        format!(
            "    {{\n      \"kernel\": \"{}\",\n      \"macs\": {},\n      \
             \"wall_1t_s\": {:.6},\n      \"wall_8t_s\": {:.6},\n      \
             \"macs_per_sec_1t\": {:.0},\n      \"macs_per_sec_8t\": {:.0},\n      \
             \"speedup_8t\": {:.3},\n      \"bitwise_equal\": {}\n    }}",
            self.name,
            self.macs,
            self.wall_1t,
            self.wall_8t,
            self.macs as f64 / self.wall_1t.max(1e-12),
            self.macs as f64 / self.wall_8t.max(1e-12),
            self.wall_1t / self.wall_8t.max(1e-12),
            self.bitwise_equal
        )
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (batch, runs) = if smoke { (64usize, 2usize) } else { (512usize, 5usize) };
    let hops = 5usize; // K+1 hop rows per node
    let rows = batch * hops;

    let mut kernels: Vec<KernelRow> = Vec::new();
    for &d in &[64usize, 256] {
        let a = dense(rows, d, 11);
        let b = dense(d, d, 22);
        let q = dense(rows, d, 33);
        let k = dense(rows, d, 44);
        let s = dense(rows, hops, 55);

        let mm = (rows * d * d) as u64;
        kernels
            .push(KernelRow::measure(format!("matmul_{rows}x{d}x{d}"), mm, runs, &|| a.matmul(&b)));
        kernels.push(KernelRow::measure(format!("matmul_nt_{rows}x{d}x{d}"), mm, runs, &|| {
            a.matmul_nt(&b)
        }));
        // Backward-pass shape: Xᵀ·dY with the long axis contracted.
        kernels.push(KernelRow::measure(format!("matmul_tn_{d}x{rows}x{d}"), mm, runs, &|| {
            a.matmul_tn(&k)
        }));
        // Eq. 7 attention logits: per-node (K+1)×d · d×(K+1) blocks.
        let bmm_nt = (batch * hops * d * hops) as u64;
        kernels.push(KernelRow::measure(
            format!("batched_matmul_nt_b{batch}_{hops}x{d}x{hops}"),
            bmm_nt,
            runs,
            &|| q.batched_matmul_nt(&k, batch),
        ));
        // Eq. 7 weighted sum: per-node (K+1)×(K+1) · (K+1)×d blocks.
        let bmm = (batch * hops * hops * d) as u64;
        kernels.push(KernelRow::measure(
            format!("batched_matmul_b{batch}_{hops}x{hops}x{d}"),
            bmm,
            runs,
            &|| s.batched_matmul(&a, batch),
        ));
        let bmm_tn = (batch * hops * hops * d) as u64;
        kernels.push(KernelRow::measure(
            format!("batched_matmul_tn_b{batch}_{hops}x{hops}x{d}"),
            bmm_tn,
            runs,
            &|| s.batched_matmul_tn(&a, batch),
        ));
    }

    // COO → CSR build throughput (triplets/s reported in the macs field) on
    // an adjacency-sized input, plus SpMM at hop-propagation shape.
    let n = if smoke { 512usize } else { 4096usize };
    let nnz = n * 8;
    let triplets: Vec<(usize, usize, f32)> = (0..nnz)
        .map(|i| {
            let r = i.wrapping_mul(2654435761) % n;
            let c = i.wrapping_mul(40503) % n;
            (r, c, ((i % 7) as f32) * 0.5 - 1.5)
        })
        .collect();
    set_threads(1);
    let mut best_coo_1t = f64::INFINITY;
    for _ in 0..runs {
        let t0 = Instant::now();
        let m = CsrMatrix::from_coo(n, n, &triplets);
        best_coo_1t = best_coo_1t.min(t0.elapsed().as_secs_f64());
        assert!(m.nnz() <= nnz);
    }
    set_threads(8);
    let mut best_coo_8t = f64::INFINITY;
    for _ in 0..runs {
        let t0 = Instant::now();
        let m = CsrMatrix::from_coo(n, n, &triplets);
        best_coo_8t = best_coo_8t.min(t0.elapsed().as_secs_f64());
        assert!(m.nnz() <= nnz);
    }
    set_threads(0);
    kernels.push(KernelRow {
        name: format!("from_coo_{n}x{n}_nnz{nnz}"),
        macs: nnz as u64,
        wall_1t: best_coo_1t,
        wall_8t: best_coo_8t,
        bitwise_equal: {
            set_threads(1);
            let m1 = CsrMatrix::from_coo(n, n, &triplets);
            set_threads(8);
            let m8 = CsrMatrix::from_coo(n, n, &triplets);
            set_threads(0);
            m1 == m8
        },
    });

    let adj = CsrMatrix::from_coo(n, n, &triplets);
    let x = dense(n, 64, 66);
    let spmm_macs = (adj.nnz() * 64) as u64;
    kernels
        .push(KernelRow::measure(format!("spmm_{n}x{n}_d64"), spmm_macs, runs, &|| adj.spmm(&x)));

    let rows_json: Vec<String> = kernels.iter().map(KernelRow::json).collect();
    let json = format!(
        "{{\n  \"bench\": \"kernels\",\n  \"smoke\": {},\n  \"batch\": {},\n  \
         \"hop_blocks\": {},\n  \"runs\": {},\n  \"kernels\": [\n{}\n  ]\n}}\n",
        smoke,
        batch,
        hops,
        runs,
        rows_json.join(",\n")
    );
    print!("{json}");
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
    let out = root.join("BENCH_kernels.json");
    std::fs::write(&out, json).expect("write BENCH_kernels.json");
    eprintln!("wrote {}", out.display());

    for row in &kernels {
        assert!(row.bitwise_equal, "{} output differs between 1 and 8 threads", row.name);
    }
}
