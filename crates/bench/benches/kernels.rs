//! Benchmarks the dense-kernel hot path at the trainer's real shapes and
//! writes `BENCH_kernels.json` to the workspace root so CI can archive
//! kernel throughput next to the linter report.
//!
//! A plain `harness = false` main (no Criterion): each kernel runs at 1 and
//! at 8 threads, min-of-N wall clock, and the JSON records MACs/s plus the
//! parallel speedup and a bitwise-equality flag — the determinism contract
//! (`docs/PERFORMANCE.md`) says thread count must never change a single bit.
//!
//! Shapes follow the HOGA trainer: a hop stack of `batch * (K+1)` rows
//! (batch 512, K+1 = 5) at hidden widths d = 64 and d = 256. Pass `--smoke`
//! for a reduced-size run suitable for CI gating.
//!
//! Three further sections cover the kernel-backend work: `backends`
//! (scalar vs SIMD training matmul at one thread, with the bitwise flag),
//! `fast_path` (inference `matmul_fast` throughput and its max ULP
//! distance from the training oracle), and `int8` (row-quantized
//! `qmatmul` on both backends — bitwise-pinned against each other — plus
//! accuracy deltas against the f32 product and against the
//! dequantized-operand product). Schema in `docs/PERFORMANCE.md`.

use std::path::Path;
use std::time::Instant;

use hoga_tensor::{
    active_backend, qmatmul, set_backend, set_threads, Backend, CsrMatrix, Matrix, QuantizedMatrix,
    QuantizedWeights,
};

/// Deterministic, RNG-free fill in roughly [-1, 1] (the stub `rand` in some
/// validation environments panics at seed time, so benches avoid it).
fn dense(rows: usize, cols: usize, salt: usize) -> Matrix {
    Matrix::from_fn(rows, cols, |r, c| {
        let h = r.wrapping_mul(2654435761).wrapping_add(c.wrapping_mul(40503)).wrapping_add(salt);
        ((h % 2003) as f32 / 1001.5) - 1.0
    })
}

fn bits(m: &Matrix) -> Vec<u32> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

/// Times `op` at `threads` kernel threads, best of `runs`, returning the
/// wall seconds and the output bits of the last run.
fn time_at(threads: usize, runs: usize, op: &dyn Fn() -> Matrix) -> (f64, Vec<u32>) {
    set_threads(threads);
    let mut best = f64::INFINITY;
    let mut out_bits = Vec::new();
    for _ in 0..runs {
        let t0 = Instant::now();
        let out = op();
        best = best.min(t0.elapsed().as_secs_f64());
        out_bits = bits(&out);
    }
    set_threads(0);
    (best, out_bits)
}

/// ULP distance on the same monotonic integer line `approx_eq_ulps` uses;
/// saturates at `u64::MAX` for NaN so a poisoned lane can never pass.
fn ulp_dist(a: f32, b: f32) -> u64 {
    if a.is_nan() || b.is_nan() {
        return u64::MAX;
    }
    fn order(x: f32) -> i64 {
        let bits = x.to_bits() as i32;
        i64::from(if bits < 0 { i32::MIN.wrapping_sub(bits) } else { bits })
    }
    order(a).abs_diff(order(b))
}

fn max_ulp_dist(a: &Matrix, b: &Matrix) -> u64 {
    a.as_slice().iter().zip(b.as_slice()).map(|(&x, &y)| ulp_dist(x, y)).max().unwrap_or(0)
}

struct KernelRow {
    name: String,
    macs: u64,
    wall_1t: f64,
    wall_8t: f64,
    bitwise_equal: bool,
}

impl KernelRow {
    fn measure(name: String, macs: u64, runs: usize, op: &dyn Fn() -> Matrix) -> Self {
        let (wall_1t, bits_1t) = time_at(1, runs, op);
        let (wall_8t, bits_8t) = time_at(8, runs, op);
        Self { name, macs, wall_1t, wall_8t, bitwise_equal: bits_1t == bits_8t }
    }

    fn json(&self) -> String {
        format!(
            "    {{\n      \"kernel\": \"{}\",\n      \"macs\": {},\n      \
             \"wall_1t_s\": {:.6},\n      \"wall_8t_s\": {:.6},\n      \
             \"macs_per_sec_1t\": {:.0},\n      \"macs_per_sec_8t\": {:.0},\n      \
             \"speedup_8t\": {:.3},\n      \"bitwise_equal\": {}\n    }}",
            self.name,
            self.macs,
            self.wall_1t,
            self.wall_8t,
            self.macs as f64 / self.wall_1t.max(1e-12),
            self.macs as f64 / self.wall_8t.max(1e-12),
            self.wall_1t / self.wall_8t.max(1e-12),
            self.bitwise_equal
        )
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (batch, runs) = if smoke { (64usize, 2usize) } else { (512usize, 5usize) };
    let hops = 5usize; // K+1 hop rows per node
    let rows = batch * hops;

    let mut kernels: Vec<KernelRow> = Vec::new();
    for &d in &[64usize, 256] {
        let a = dense(rows, d, 11);
        let b = dense(d, d, 22);
        let q = dense(rows, d, 33);
        let k = dense(rows, d, 44);
        let s = dense(rows, hops, 55);

        let mm = (rows * d * d) as u64;
        kernels
            .push(KernelRow::measure(format!("matmul_{rows}x{d}x{d}"), mm, runs, &|| a.matmul(&b)));
        kernels.push(KernelRow::measure(format!("matmul_nt_{rows}x{d}x{d}"), mm, runs, &|| {
            a.matmul_nt(&b)
        }));
        // Backward-pass shape: Xᵀ·dY with the long axis contracted.
        kernels.push(KernelRow::measure(format!("matmul_tn_{d}x{rows}x{d}"), mm, runs, &|| {
            a.matmul_tn(&k)
        }));
        // Eq. 7 attention logits: per-node (K+1)×d · d×(K+1) blocks.
        let bmm_nt = (batch * hops * d * hops) as u64;
        kernels.push(KernelRow::measure(
            format!("batched_matmul_nt_b{batch}_{hops}x{d}x{hops}"),
            bmm_nt,
            runs,
            &|| q.batched_matmul_nt(&k, batch),
        ));
        // Eq. 7 weighted sum: per-node (K+1)×(K+1) · (K+1)×d blocks.
        let bmm = (batch * hops * hops * d) as u64;
        kernels.push(KernelRow::measure(
            format!("batched_matmul_b{batch}_{hops}x{hops}x{d}"),
            bmm,
            runs,
            &|| s.batched_matmul(&a, batch),
        ));
        let bmm_tn = (batch * hops * hops * d) as u64;
        kernels.push(KernelRow::measure(
            format!("batched_matmul_tn_b{batch}_{hops}x{hops}x{d}"),
            bmm_tn,
            runs,
            &|| s.batched_matmul_tn(&a, batch),
        ));
    }

    // COO → CSR build throughput (triplets/s reported in the macs field) on
    // an adjacency-sized input, plus SpMM at hop-propagation shape.
    let n = if smoke { 512usize } else { 4096usize };
    let nnz = n * 8;
    let triplets: Vec<(usize, usize, f32)> = (0..nnz)
        .map(|i| {
            let r = i.wrapping_mul(2654435761) % n;
            let c = i.wrapping_mul(40503) % n;
            (r, c, ((i % 7) as f32) * 0.5 - 1.5)
        })
        .collect();
    set_threads(1);
    let mut best_coo_1t = f64::INFINITY;
    for _ in 0..runs {
        let t0 = Instant::now();
        let m = CsrMatrix::from_coo(n, n, &triplets);
        best_coo_1t = best_coo_1t.min(t0.elapsed().as_secs_f64());
        assert!(m.nnz() <= nnz);
    }
    set_threads(8);
    let mut best_coo_8t = f64::INFINITY;
    for _ in 0..runs {
        let t0 = Instant::now();
        let m = CsrMatrix::from_coo(n, n, &triplets);
        best_coo_8t = best_coo_8t.min(t0.elapsed().as_secs_f64());
        assert!(m.nnz() <= nnz);
    }
    set_threads(0);
    kernels.push(KernelRow {
        name: format!("from_coo_{n}x{n}_nnz{nnz}"),
        macs: nnz as u64,
        wall_1t: best_coo_1t,
        wall_8t: best_coo_8t,
        bitwise_equal: {
            set_threads(1);
            let m1 = CsrMatrix::from_coo(n, n, &triplets);
            set_threads(8);
            let m8 = CsrMatrix::from_coo(n, n, &triplets);
            set_threads(0);
            m1 == m8
        },
    });

    let adj = CsrMatrix::from_coo(n, n, &triplets);
    let x = dense(n, 64, 66);
    let spmm_macs = (adj.nnz() * 64) as u64;
    kernels
        .push(KernelRow::measure(format!("spmm_{n}x{n}_d64"), spmm_macs, runs, &|| adj.spmm(&x)));

    // ---- Backend curve: scalar vs SIMD inner loops, single thread ----
    //
    // The training path must stay bitwise identical across backends, so
    // this section is a pure throughput curve plus the equality flag the
    // differential suite also pins. `simd_backend` records what the
    // `Backend::Simd` request resolved to ("simd-avx2" or the portable
    // fallback) so a curve is never attributed to hardware it did not run
    // on.
    set_backend(Backend::Simd);
    let simd_backend = active_backend();
    set_backend(Backend::Scalar);
    let mut backend_rows: Vec<String> = Vec::new();
    let mut fast_rows: Vec<String> = Vec::new();
    for &d in &[64usize, 256] {
        let a = dense(rows, d, 77);
        let b = dense(d, d, 88);
        let macs = (rows * d * d) as u64;

        // Interleave the backends run-by-run so frequency drift on shared
        // hardware hits both timings equally instead of skewing the ratio.
        set_threads(1);
        let mut scalar_1t = f64::INFINITY;
        let mut simd_1t = f64::INFINITY;
        let mut scalar_bits = Vec::new();
        let mut simd_bits = Vec::new();
        for _ in 0..runs.max(3) {
            set_backend(Backend::Scalar);
            let t0 = Instant::now();
            let out = a.matmul(&b);
            scalar_1t = scalar_1t.min(t0.elapsed().as_secs_f64());
            scalar_bits = bits(&out);
            set_backend(Backend::Simd);
            let t0 = Instant::now();
            let out = a.matmul(&b);
            simd_1t = simd_1t.min(t0.elapsed().as_secs_f64());
            simd_bits = bits(&out);
        }
        set_threads(0);
        set_backend(Backend::Simd);

        // Inference fast path on the SIMD backend, ULP-checked against the
        // training kernel (the reference oracle for `matmul_fast`).
        let reference = a.matmul(&b);
        let (fast_1t, _) = time_at(1, runs, &|| a.matmul_fast(&b));
        let fast_out = a.matmul_fast(&b);
        let max_ulps = max_ulp_dist(&fast_out, &reference);
        // Raw ULP distance explodes for near-zero elements produced by
        // cancellation (a few 1e-7s of absolute error spans millions of
        // denormal ULPs), so record the absolute ceiling alongside it.
        let max_abs = fast_out
            .as_slice()
            .iter()
            .zip(reference.as_slice())
            .fold(0.0f32, |m, (&g, &w)| m.max((g - w).abs()));
        set_backend(Backend::Scalar);

        assert_eq!(
            scalar_bits, simd_bits,
            "training matmul at d={d} differs between scalar and {simd_backend} backends"
        );
        backend_rows.push(format!(
            "    {{\n      \"kernel\": \"matmul_{rows}x{d}x{d}\",\n      \"macs\": {macs},\n      \
             \"scalar_wall_1t_s\": {scalar_1t:.6},\n      \"simd_wall_1t_s\": {simd_1t:.6},\n      \
             \"scalar_macs_per_sec_1t\": {:.0},\n      \"simd_macs_per_sec_1t\": {:.0},\n      \
             \"speedup_vs_scalar_1t\": {:.3},\n      \"bitwise_equal\": {}\n    }}",
            macs as f64 / scalar_1t.max(1e-12),
            macs as f64 / simd_1t.max(1e-12),
            scalar_1t / simd_1t.max(1e-12),
            scalar_bits == simd_bits
        ));
        fast_rows.push(format!(
            "    {{\n      \"kernel\": \"matmul_fast_{rows}x{d}x{d}\",\n      \
             \"backend\": \"{simd_backend}\",\n      \"macs\": {macs},\n      \
             \"wall_1t_s\": {fast_1t:.6},\n      \"macs_per_sec_1t\": {:.0},\n      \
             \"speedup_vs_training_simd_1t\": {:.3},\n      \
             \"speedup_vs_scalar_1t\": {:.3},\n      \"max_ulps_vs_reference\": {max_ulps},\n      \
             \"max_abs_err_vs_reference\": {max_abs:e}\n    }}",
            macs as f64 / fast_1t.max(1e-12),
            simd_1t / fast_1t.max(1e-12),
            scalar_1t / fast_1t.max(1e-12)
        ));
    }

    // ---- int8 row-quantized inference matmul vs the f32 oracle ----
    //
    // `err_vs_f32` is quantization + kernel error against the exact f32
    // product; `err_vs_dequant` re-runs the product on the dequantized
    // operands, isolating the integer kernel itself (it should be near
    // float rounding noise). Errors are normalized by max|oracle|.
    let mut int8_rows: Vec<String> = Vec::new();
    for &d in &[64usize, 256] {
        let a = dense(rows, d, 99);
        let w = dense(d, d, 111);
        let macs = (rows * d * d) as u64;

        set_backend(Backend::Scalar);
        let qw = QuantizedWeights::quantize(&w);
        let (quant_wall, _) = time_at(1, runs, &|| QuantizedMatrix::quantize(&a).dequantize());
        let qa = QuantizedMatrix::quantize(&a);
        // Interleave the f32 oracle and both int8 backends run-by-run, as
        // in the backends section, so the recorded ratios share frequency
        // conditions. Exact integer accumulation makes the two int8 paths
        // bitwise comparable — pinned here like the training assert above.
        set_threads(1);
        let mut f32_1t = f64::INFINITY;
        let mut int8_1t = f64::INFINITY;
        let mut int8_simd_1t = f64::INFINITY;
        let mut y8 = Matrix::zeros(0, 0);
        let mut scalar8_bits = Vec::new();
        let mut simd8_bits = Vec::new();
        for _ in 0..runs.max(3) {
            set_backend(Backend::Scalar);
            let t0 = Instant::now();
            let _ = a.matmul(&w);
            f32_1t = f32_1t.min(t0.elapsed().as_secs_f64());
            let t0 = Instant::now();
            let out = qmatmul(&qa, &qw);
            int8_1t = int8_1t.min(t0.elapsed().as_secs_f64());
            scalar8_bits = bits(&out);
            set_backend(Backend::Simd);
            let t0 = Instant::now();
            y8 = qmatmul(&qa, &qw);
            int8_simd_1t = int8_simd_1t.min(t0.elapsed().as_secs_f64());
            simd8_bits = bits(&y8);
        }
        set_threads(0);
        set_backend(Backend::Scalar);
        assert_eq!(
            scalar8_bits, simd8_bits,
            "int8 qmatmul at d={d} differs between scalar and {simd_backend} backends"
        );

        let oracle = a.matmul(&w);
        let scale = oracle.as_slice().iter().fold(0.0f32, |m, &v| m.max(v.abs())).max(1e-12);
        let dequant_oracle = qa.dequantize().matmul(&qw.dequantize());
        let mut max_err = 0.0f32;
        let mut sum_err = 0.0f64;
        for (&got, &want) in y8.as_slice().iter().zip(oracle.as_slice()) {
            let e = (got - want).abs() / scale;
            max_err = max_err.max(e);
            sum_err += f64::from(e);
        }
        let mean_err = sum_err / y8.as_slice().len().max(1) as f64;
        let kernel_err = y8
            .as_slice()
            .iter()
            .zip(dequant_oracle.as_slice())
            .fold(0.0f32, |m, (&g, &o)| m.max((g - o).abs() / scale));

        int8_rows.push(format!(
            "    {{\n      \"kernel\": \"qmatmul_{rows}x{d}x{d}\",\n      \"macs\": {macs},\n      \
             \"scalar_wall_1t_s\": {int8_1t:.6},\n      \"scalar_macs_per_sec_1t\": {:.0},\n      \
             \"simd_wall_1t_s\": {int8_simd_1t:.6},\n      \"simd_macs_per_sec_1t\": {:.0},\n      \
             \"simd_speedup_vs_int8_scalar_1t\": {:.3},\n      \
             \"simd_speedup_vs_f32_scalar_matmul_1t\": {:.3},\n      \
             \"bitwise_equal\": {},\n      \
             \"activation_quantize_roundtrip_s\": {quant_wall:.6},\n      \
             \"max_rel_err_vs_f32\": {max_err:.6},\n      \"mean_rel_err_vs_f32\": {mean_err:.6},\n      \
             \"max_rel_err_vs_dequant_oracle\": {kernel_err:.6}\n    }}",
            macs as f64 / int8_1t.max(1e-12),
            macs as f64 / int8_simd_1t.max(1e-12),
            int8_1t / int8_simd_1t.max(1e-12),
            f32_1t / int8_simd_1t.max(1e-12),
            scalar8_bits == simd8_bits
        ));
    }
    set_backend(Backend::Scalar);

    let rows_json: Vec<String> = kernels.iter().map(KernelRow::json).collect();
    let json = format!(
        "{{\n  \"bench\": \"kernels\",\n  \"smoke\": {},\n  \"batch\": {},\n  \
         \"hop_blocks\": {},\n  \"runs\": {},\n  \"simd_backend\": \"{}\",\n  \
         \"kernels\": [\n{}\n  ],\n  \"backends\": [\n{}\n  ],\n  \
         \"fast_path\": [\n{}\n  ],\n  \"int8\": [\n{}\n  ]\n}}\n",
        smoke,
        batch,
        hops,
        runs,
        simd_backend,
        rows_json.join(",\n"),
        backend_rows.join(",\n"),
        fast_rows.join(",\n"),
        int8_rows.join(",\n")
    );
    print!("{json}");
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
    let out = root.join("BENCH_kernels.json");
    std::fs::write(&out, json).expect("write BENCH_kernels.json");
    eprintln!("wrote {}", out.display());

    for row in &kernels {
        assert!(row.bitwise_equal, "{} output differs between 1 and 8 threads", row.name);
    }
}
