//! Figure 7 — hop-wise attention-score benchmark.
//!
//! Regenerates the per-class attention summary (and a CSV of the raw
//! heatmap rows), then times the score-extraction pass.

use criterion::{criterion_group, criterion_main, Criterion};
use hoga_datasets::gamora::ReasoningConfig;
use hoga_eval::experiments::fig7::{run, Fig7Config};
use hoga_eval::trainer::TrainConfig;
use std::hint::black_box;

fn config() -> Fig7Config {
    if hoga_bench::full_scale() {
        Fig7Config::default()
    } else {
        Fig7Config {
            train_width: 8,
            vis_width: 16,
            nodes_per_class: 100,
            graph: ReasoningConfig { tech_map: true, lut_k: 4, num_hops: 8, label_k: 4 },
            train: TrainConfig { hidden_dim: 32, epochs: 100, lr: 3e-3, ..TrainConfig::default() },
        }
    }
}

fn bench_fig7(c: &mut Criterion) {
    let cfg = config();
    let result = run(&cfg);
    println!("\n===== Reproduced Figure 7 =====\n{}", result.render());

    // Time the attention-score extraction alone on a prebuilt model/graph.
    use hoga_core::hopfeat::hop_stack;
    use hoga_core::model::{Aggregator, HogaConfig, HogaModel};
    use hoga_datasets::gamora::{build_reasoning_graph, MultiplierKind};
    let graph = build_reasoning_graph(MultiplierKind::Booth, cfg.vis_width, &cfg.graph);
    let hcfg = HogaConfig::new(graph.features.cols(), cfg.train.hidden_dim, cfg.graph.num_hops)
        .with_aggregator(Aggregator::GatedSelfAttention);
    let model = HogaModel::new(&hcfg, 0);
    let nodes: Vec<usize> = (0..graph.aig.num_nodes().min(400)).collect();
    let stack = hop_stack(&graph.hops, &nodes);
    let mut group = c.benchmark_group("fig7");
    group.sample_size(10);
    group.bench_function("extract_attention_scores_400_nodes", |b| {
        b.iter(|| black_box(model.attention_scores(&stack, nodes.len()).sum()));
    });
    group.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
