//! Benchmarks the workspace linter itself: full `analyze_workspace` wall
//! time plus lexer throughput, written to `BENCH_analyze.json` at the
//! workspace root so CI can archive linter performance next to its report.
//!
//! A plain `harness = false` main (no Criterion): the workload is one
//! deterministic pass over the repository, so min-of-N wall clock is the
//! honest statistic and the JSON stays trivially machine-readable.

use std::path::Path;
use std::time::Instant;

use hoga_analyze::lexer::lex;
use hoga_analyze::workspace::{read_workspace_sources, workspace_rs_files};
use hoga_analyze::{analyze_workspace, SymbolGraph};

const RUNS: usize = 5;

fn main() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
    let files = workspace_rs_files(&root).expect("workspace walk");
    let sources = read_workspace_sources(&root).expect("workspace read");
    let total_bytes: usize = sources.iter().map(|(_, s)| s.len()).sum();

    // Lexer throughput: tokens/sec over the whole corpus, best of RUNS.
    let mut total_tokens = 0usize;
    let mut best_lex = f64::INFINITY;
    for _ in 0..RUNS {
        let t0 = Instant::now();
        total_tokens = sources.iter().map(|(_, s)| lex(s).len()).sum();
        best_lex = best_lex.min(t0.elapsed().as_secs_f64());
    }
    let tokens_per_sec = total_tokens as f64 / best_lex.max(1e-12);

    // Symbol graph construction on pre-read sources.
    let mut best_graph = f64::INFINITY;
    let mut edges = 0usize;
    let (mut defs, mut live_defs, mut ref_entries) = (0usize, 0usize, 0usize);
    for _ in 0..RUNS {
        let t0 = Instant::now();
        let graph = SymbolGraph::build(&sources);
        edges = graph.edge_count();
        best_graph = best_graph.min(t0.elapsed().as_secs_f64());
        defs = graph.defs().len();
        live_defs = (0..defs).filter(|&i| graph.is_live(i)).count();
        ref_entries = graph.ref_entries();
    }

    // End-to-end: walk + lex + parse + graph + every rule.
    let mut best_full = f64::INFINITY;
    let mut findings = 0usize;
    for _ in 0..RUNS {
        let t0 = Instant::now();
        findings = analyze_workspace(&root).expect("analyze").len();
        best_full = best_full.min(t0.elapsed().as_secs_f64());
    }

    let json = format!(
        "{{\n  \"bench\": \"analyze_workspace\",\n  \"files\": {},\n  \"bytes\": {},\n  \
         \"tokens\": {},\n  \"tokens_per_sec\": {:.0},\n  \"lex_wall_s\": {:.6},\n  \
         \"symbol_graph_wall_s\": {:.6},\n  \"symbol_graph_edges\": {},\n  \
         \"symbol_defs\": {},\n  \"symbol_defs_live\": {},\n  \"symbol_ref_entries\": {},\n  \
         \"full_analyze_wall_s\": {:.6},\n  \"findings\": {}\n}}\n",
        files.len(),
        total_bytes,
        total_tokens,
        tokens_per_sec,
        best_lex,
        best_graph,
        edges,
        defs,
        live_defs,
        ref_entries,
        best_full,
        findings
    );
    print!("{json}");
    let out = root.join("BENCH_analyze.json");
    std::fs::write(&out, json).expect("write BENCH_analyze.json");
    eprintln!("wrote {}", out.display());
}
