//! Benchmarks the workspace linter itself: full `analyze_workspace` wall
//! time plus lexer throughput, CFG/dataflow cost, and incremental-cache
//! speedup, written to `BENCH_analyze.json` at the workspace root so CI
//! can archive linter performance next to its report.
//!
//! A plain `harness = false` main (no Criterion): the workload is one
//! deterministic pass over the repository, so min-of-N wall clock is the
//! honest statistic and the JSON stays trivially machine-readable.

use std::path::Path;
use std::time::Instant;

use hoga_analyze::callgraph::{build_graph, file_defs, file_input, CgDef, CgFileInput};
use hoga_analyze::cfg::{function_cfgs, Cfg};
use hoga_analyze::dataflow::{forward_fixpoint, Analysis};
use hoga_analyze::lexer::{lex, TokKind, Token};
use hoga_analyze::workspace::{read_workspace_sources, workspace_rs_files};
use hoga_analyze::{analyze_workspace_with, AnalyzeOptions, FileProfile, SymbolGraph};

const RUNS: usize = 5;

/// Reachability — the cheapest possible forward may-analysis. Timing it
/// isolates the worklist engine's own overhead from the taint transfer.
struct Reach;

impl Analysis for Reach {
    type Fact = bool;
    fn bottom(&self) -> bool {
        false
    }
    fn entry(&self) -> bool {
        true
    }
    fn join(&self, into: &mut bool, other: &bool) {
        *into = *into || *other;
    }
    fn transfer(&mut self, _cfg: &Cfg, _id: usize, _fact: &mut bool) {}
}

fn main() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
    let files = workspace_rs_files(&root).expect("workspace walk");
    let sources = read_workspace_sources(&root).expect("workspace read");
    let total_bytes: usize = sources.iter().map(|(_, s)| s.len()).sum();

    // Lexer throughput: tokens/sec over the whole corpus, best of RUNS.
    let mut total_tokens = 0usize;
    let mut best_lex = f64::INFINITY;
    for _ in 0..RUNS {
        let t0 = Instant::now();
        total_tokens = sources.iter().map(|(_, s)| lex(s).len()).sum();
        best_lex = best_lex.min(t0.elapsed().as_secs_f64());
    }
    let tokens_per_sec = total_tokens as f64 / best_lex.max(1e-12);

    // Symbol graph construction on pre-read sources.
    let mut best_graph = f64::INFINITY;
    let mut edges = 0usize;
    let (mut defs, mut live_defs, mut ref_entries) = (0usize, 0usize, 0usize);
    for _ in 0..RUNS {
        let t0 = Instant::now();
        let graph = SymbolGraph::build(&sources);
        edges = graph.edge_count();
        best_graph = best_graph.min(t0.elapsed().as_secs_f64());
        defs = graph.defs().len();
        live_defs = (0..defs).filter(|&i| graph.is_live(i)).count();
        ref_entries = graph.ref_entries();
    }

    // CFG lowering: tokens are pre-lexed so this times the builder alone.
    let token_streams: Vec<(&str, Vec<Token>)> =
        sources.iter().map(|(_, s)| (s.as_str(), lex(s))).collect();
    let mut best_cfg = f64::INFINITY;
    let mut cfg_count = 0usize;
    let mut block_count = 0usize;
    let mut all_cfgs: Vec<(usize, Vec<Cfg>)> = Vec::new();
    for _ in 0..RUNS {
        let t0 = Instant::now();
        all_cfgs.clear();
        cfg_count = 0;
        block_count = 0;
        for (i, (src, tokens)) in token_streams.iter().enumerate() {
            let code: Vec<&Token> = tokens
                .iter()
                .filter(|t| {
                    !matches!(t.kind, TokKind::LineComment { .. } | TokKind::BlockComment { .. })
                })
                .collect();
            let cfgs = function_cfgs(&code, src);
            cfg_count += cfgs.len();
            block_count += cfgs.iter().map(|c| c.blocks.len()).sum::<usize>();
            all_cfgs.push((i, cfgs));
        }
        best_cfg = best_cfg.min(t0.elapsed().as_secs_f64());
    }

    // Fixpoint engine throughput over every CFG in the workspace, using
    // the trivial reachability analysis: transfers/sec with no taint cost.
    let mut best_fix = f64::INFINITY;
    let mut transfers = 0u64;
    for _ in 0..RUNS {
        let t0 = Instant::now();
        transfers = 0;
        for (_, cfgs) in &all_cfgs {
            for cfg in cfgs {
                transfers += forward_fixpoint(cfg, &mut Reach).iterations;
            }
        }
        best_fix = best_fix.min(t0.elapsed().as_secs_f64());
    }
    let transfers_per_sec = transfers as f64 / best_fix.max(1e-12);

    // Call graph: per-file fact extraction once, then graph construction
    // and may-panic/may-block propagation throughput. The default profile
    // (nothing hardened, nothing test) maximizes harvested facts, which is
    // the honest worst case for the builder.
    let inputs: Vec<CgFileInput> =
        sources.iter().map(|(rel, s)| file_input(rel, s, FileProfile::default())).collect();
    let def_count: usize = sources.iter().map(|(_, s)| file_defs(s).len()).sum();
    let public_defs: usize =
        inputs.iter().flat_map(|i| &i.defs).filter(|d: &&CgDef| d.public).count();
    let mut best_cg_build = f64::INFINITY;
    let (mut cg_nodes, mut cg_edges, mut cg_sccs) = (0u64, 0u64, 0u64);
    for _ in 0..RUNS {
        let t0 = Instant::now();
        let g = build_graph(&inputs);
        cg_nodes = g.nodes();
        cg_edges = g.edges();
        cg_sccs = g.sccs();
        best_cg_build = best_cg_build.min(t0.elapsed().as_secs_f64());
    }
    let mut graph = build_graph(&inputs);
    let mut best_prop = f64::INFINITY;
    let mut edge_visits = 0u64;
    for _ in 0..RUNS {
        let t0 = Instant::now();
        edge_visits = graph.propagate();
        best_prop = best_prop.min(t0.elapsed().as_secs_f64());
    }
    let edge_visits_per_sec = edge_visits as f64 / best_prop.max(1e-12);

    // End-to-end: walk + lex + parse + CFG + dataflow + graph + every rule.
    let cold_opts = AnalyzeOptions::default();
    let mut best_full = f64::INFINITY;
    let mut findings = 0usize;
    let mut full_stats = hoga_analyze::AnalysisStats::default();
    for _ in 0..RUNS {
        let t0 = Instant::now();
        let (f, stats) = analyze_workspace_with(&root, &cold_opts).expect("analyze");
        findings = f.len();
        full_stats = stats;
        best_full = best_full.min(t0.elapsed().as_secs_f64());
    }

    // Incremental cache: one cold populating run, then best-of-RUNS warm
    // runs that replay every artifact.
    let cache_dir = std::env::temp_dir().join(format!("hoga-analyze-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let warm_opts = AnalyzeOptions { cache_dir: Some(cache_dir.clone()) };
    let t0 = Instant::now();
    analyze_workspace_with(&root, &warm_opts).expect("cold cache run");
    let cold_cache_wall = t0.elapsed().as_secs_f64();
    let mut best_warm = f64::INFINITY;
    let mut warm_hits = 0usize;
    for _ in 0..RUNS {
        let t0 = Instant::now();
        let (_, stats) = analyze_workspace_with(&root, &warm_opts).expect("warm cache run");
        warm_hits = stats.cache_hits;
        best_warm = best_warm.min(t0.elapsed().as_secs_f64());
    }
    let _ = std::fs::remove_dir_all(&cache_dir);

    let json = format!(
        "{{\n  \"bench\": \"analyze_workspace\",\n  \"files\": {},\n  \"bytes\": {},\n  \
         \"tokens\": {},\n  \"tokens_per_sec\": {:.0},\n  \"lex_wall_s\": {:.6},\n  \
         \"symbol_graph_wall_s\": {:.6},\n  \"symbol_graph_edges\": {},\n  \
         \"symbol_defs\": {},\n  \"symbol_defs_live\": {},\n  \"symbol_ref_entries\": {},\n  \
         \"cfg_build_wall_s\": {:.6},\n  \"cfgs\": {},\n  \"cfg_blocks\": {},\n  \
         \"cfg_edges\": {},\n  \"fixpoint_wall_s\": {:.6},\n  \"fixpoint_transfers\": {},\n  \
         \"fixpoint_transfers_per_sec\": {:.0},\n  \"taint_fixpoint_transfers\": {},\n  \
         \"callgraph_defs\": {},\n  \"callgraph_public_defs\": {},\n  \
         \"callgraph_nodes\": {},\n  \"callgraph_edges\": {},\n  \"callgraph_sccs\": {},\n  \
         \"callgraph_build_wall_s\": {:.6},\n  \"callgraph_propagate_wall_s\": {:.6},\n  \
         \"callgraph_edge_visits\": {},\n  \"callgraph_edge_visits_per_sec\": {:.0},\n  \
         \"full_analyze_wall_s\": {:.6},\n  \"cache_cold_wall_s\": {:.6},\n  \
         \"cache_warm_wall_s\": {:.6},\n  \"cache_warm_hits\": {},\n  \"findings\": {}\n}}\n",
        files.len(),
        total_bytes,
        total_tokens,
        tokens_per_sec,
        best_lex,
        best_graph,
        edges,
        defs,
        live_defs,
        ref_entries,
        best_cfg,
        cfg_count,
        block_count,
        full_stats.edges,
        best_fix,
        transfers,
        transfers_per_sec,
        full_stats.fixpoint_iterations,
        def_count,
        public_defs,
        cg_nodes,
        cg_edges,
        cg_sccs,
        best_cg_build,
        best_prop,
        edge_visits,
        edge_visits_per_sec,
        best_full,
        cold_cache_wall,
        best_warm,
        warm_hits,
        findings
    );
    print!("{json}");
    let out = root.join("BENCH_analyze.json");
    std::fs::write(&out, json).expect("write BENCH_analyze.json");
    eprintln!("wrote {}", out.display());
}
