//! End-to-end training throughput at 1 vs 8 kernel threads, written to
//! `BENCH_train.json` at the workspace root.
//!
//! A plain `harness = false` main (no Criterion): trains the HOGA reasoning
//! model on a small multiplier for a few epochs at each thread count and
//! records the mean per-epoch wall clock ([`TrainStats::epoch_time`]), the
//! end-to-end speedup, and the final losses — which must match bitwise,
//! because the kernel determinism contract (`docs/PERFORMANCE.md`) makes the
//! whole trajectory thread-count invariant. Pass `--smoke` for a reduced
//! run suitable for CI gating.

use std::path::Path;

use hoga_core::model::Aggregator;
use hoga_datasets::gamora::{
    build_reasoning_benchmark, MultiplierKind, ReasoningConfig, ReasoningGraph,
};
use hoga_eval::trainer::{train_reasoning, ReasonModelKind, TrainConfig, TrainStats};
use hoga_tensor::set_threads;

fn run_at(threads: usize, graph: &ReasoningGraph, cfg: &TrainConfig) -> TrainStats {
    set_threads(threads);
    let (_, stats) =
        train_reasoning(graph, ReasonModelKind::Hoga(Aggregator::GatedSelfAttention), cfg);
    set_threads(0);
    stats
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (width, hidden, epochs) =
        if smoke { (6usize, 32usize, 2usize) } else { (8usize, 64usize, 5usize) };
    let gcfg = ReasoningConfig { tech_map: true, lut_k: 4, num_hops: 4, label_k: 4 };
    let (graph, _) = build_reasoning_benchmark(MultiplierKind::Csa, width, &[], &gcfg);
    let cfg = TrainConfig { hidden_dim: hidden, epochs, lr: 3e-3, ..TrainConfig::default() };

    let s1 = run_at(1, &graph, &cfg);
    let s8 = run_at(8, &graph, &cfg);

    let e1 = s1.epoch_time().as_secs_f64();
    let e8 = s8.epoch_time().as_secs_f64();
    let json = format!(
        "{{\n  \"bench\": \"train\",\n  \"smoke\": {},\n  \"model\": \"hoga_gated_self_attention\",\n  \
         \"multiplier_width\": {},\n  \"hidden_dim\": {},\n  \"epochs\": {},\n  \"steps\": {},\n  \
         \"epoch_wall_1t_s\": {:.6},\n  \"epoch_wall_8t_s\": {:.6},\n  \"speedup_8t\": {:.3},\n  \
         \"final_loss_1t\": {:.6},\n  \"final_loss_8t\": {:.6},\n  \"loss_bitwise_equal\": {}\n}}\n",
        smoke,
        width,
        hidden,
        epochs,
        s1.steps,
        e1,
        e8,
        e1 / e8.max(1e-12),
        s1.final_loss,
        s8.final_loss,
        s1.final_loss.to_bits() == s8.final_loss.to_bits()
    );
    print!("{json}");
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
    let out = root.join("BENCH_train.json");
    std::fs::write(&out, json).expect("write BENCH_train.json");
    eprintln!("wrote {}", out.display());

    assert_eq!(
        s1.final_loss.to_bits(),
        s8.final_loss.to_bits(),
        "training loss diverged between 1 and 8 kernel threads"
    );
}
