//! QoR serving latency under concurrency, written to `BENCH_serve.json`
//! at the workspace root.
//!
//! A plain `harness = false` main (no Criterion): starts the real
//! `hoga-serve` server in-process on a loopback port with a freshly
//! written checkpoint, then drives it with 1, 8, and 64 concurrent
//! closed-loop clients posting `/v1/predict` for a mix of circuits. For
//! each concurrency level it records p50/p95/p99 request latency and the
//! shed rate — the fraction of requests answered 503 by admission control
//! rather than queued unboundedly. Pass `--smoke` for a reduced run
//! suitable for CI gating.

use std::path::Path;
use std::time::{Duration, Instant};

use hoga_core::heads::GraphRegressor;
use hoga_core::model::{HogaConfig, HogaModel};
use hoga_datasets::io::{encode_aig, save_checkpoint, Checkpoint};
use hoga_datasets::openabcd::RECIPE_ENCODING_WIDTH;
use hoga_serve::{HttpClient, Server, ServerConfig};

const HOPS: usize = 4;
const HIDDEN: usize = 16;

fn write_checkpoint(path: &Path) {
    let mut model = HogaModel::new(&HogaConfig::new(7, HIDDEN, HOPS), 0xBE_7C);
    let _head =
        GraphRegressor::new(&mut model.params, HIDDEN + RECIPE_ENCODING_WIDTH, HIDDEN, 0xBE_7C);
    let ck = Checkpoint {
        epoch: 1,
        seed: 0xBE_7C,
        lr_scale: 1.0,
        params: model.params.clone(),
        opt_state: Vec::new(),
    };
    save_checkpoint(path, &ck).expect("write bench checkpoint");
}

/// A few structurally distinct circuits so the workload mixes hop-cache
/// hits and misses (sized index `i` varies the structure).
fn circuit(i: usize) -> Vec<u8> {
    let pis = 4 + (i % 4);
    let mut g = hoga_circuit::Aig::new(pis);
    let mut acc = g.pi_lit(0);
    for p in 1..pis {
        let x = g.pi_lit(p);
        acc = if p % 2 == 0 { g.xor(acc, x) } else { g.and(acc, !x) };
    }
    let extra = g.maj(g.pi_lit(0), g.pi_lit(1), acc);
    g.add_po(acc);
    g.add_po(!extra);
    encode_aig(&g).to_vec()
}

struct LevelResult {
    concurrency: usize,
    requests: usize,
    ok: usize,
    shed: usize,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p / 100.0).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn drive(client: HttpClient, concurrency: usize, per_client: usize) -> LevelResult {
    let mut threads = Vec::with_capacity(concurrency);
    for c in 0..concurrency {
        threads.push(std::thread::spawn(move || {
            let mut lat = Vec::with_capacity(per_client);
            let (mut ok, mut shed) = (0usize, 0usize);
            for i in 0..per_client {
                let body = circuit(c + i);
                let t0 = Instant::now();
                match client.post(
                    "/v1/predict",
                    &[("X-Recipe", "b; rw; rf; b; rw -z; rf -z")],
                    &body,
                ) {
                    Ok(r) if r.status == 200 => {
                        ok += 1;
                        lat.push(t0.elapsed().as_secs_f64() * 1e3);
                    }
                    Ok(r) if r.status == 503 => shed += 1,
                    Ok(_) | Err(_) => {}
                }
            }
            (lat, ok, shed)
        }));
    }
    let mut lat = Vec::new();
    let (mut ok, mut shed) = (0, 0);
    for t in threads {
        let (l, o, s) = t.join().expect("client thread");
        lat.extend(l);
        ok += o;
        shed += s;
    }
    lat.sort_by(|a, b| a.total_cmp(b));
    LevelResult {
        concurrency,
        requests: concurrency * per_client,
        ok,
        shed,
        p50_ms: percentile(&lat, 50.0),
        p95_ms: percentile(&lat, 95.0),
        p99_ms: percentile(&lat, 99.0),
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let levels: &[usize] = if smoke { &[1, 8] } else { &[1, 8, 64] };
    let per_client = if smoke { 6 } else { 20 };

    let checkpoint =
        std::env::temp_dir().join(format!("hoga-bench-serve-{}.bin", std::process::id()));
    write_checkpoint(&checkpoint);
    let handle = Server::start(ServerConfig {
        checkpoint: checkpoint.clone(),
        num_hops: HOPS,
        workers: 4,
        queue_capacity: 16,
        max_connections: 128,
        ..ServerConfig::default()
    })
    .expect("bench server starts");
    let client = HttpClient::new(handle.addr(), Duration::from_secs(30));

    // Warm the hop cache and the worker pool before timing.
    for i in 0..4 {
        let _ = client.post("/v1/predict", &[("X-Recipe", "b; rw")], &circuit(i));
    }

    let results: Vec<LevelResult> = levels.iter().map(|&c| drive(client, c, per_client)).collect();

    let mut entries = String::new();
    for (i, r) in results.iter().enumerate() {
        let shed_rate = r.shed as f64 / (r.requests as f64).max(1.0);
        entries.push_str(&format!(
            "    {{\"concurrency\": {}, \"requests\": {}, \"ok\": {}, \"shed\": {}, \
             \"shed_rate\": {:.4}, \"p50_ms\": {:.3}, \"p95_ms\": {:.3}, \"p99_ms\": {:.3}}}{}\n",
            r.concurrency,
            r.requests,
            r.ok,
            r.shed,
            shed_rate,
            r.p50_ms,
            r.p95_ms,
            r.p99_ms,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"serve\",\n  \"smoke\": {smoke},\n  \"hops\": {HOPS},\n  \
         \"hidden_dim\": {HIDDEN},\n  \"workers\": 4,\n  \"queue_capacity\": 16,\n  \
         \"levels\": [\n{entries}  ]\n}}\n"
    );
    print!("{json}");
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
    let out = root.join("BENCH_serve.json");
    std::fs::write(&out, json).expect("write BENCH_serve.json");
    eprintln!("wrote {}", out.display());

    handle.shutdown();
    let _ = std::fs::remove_file(&checkpoint);

    // Robustness floor: every request was answered — served or typed-shed.
    for r in &results {
        assert_eq!(r.ok + r.shed, r.requests, "requests lost at concurrency {}", r.concurrency);
    }
}
