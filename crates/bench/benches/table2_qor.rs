//! Table 2 — QoR prediction benchmark.
//!
//! Regenerates the paper's Table 2: per-test-design MAPE and training time
//! for GCN, HOGA-2 and HOGA-5. Criterion times one full
//! train-all-three-models cycle; the reproduced table is printed once up
//! front.

use criterion::{criterion_group, criterion_main, Criterion};
use hoga_eval::experiments::table2::{run, Table2Config};
use hoga_eval::trainer::TrainConfig;
use std::hint::black_box;

fn config() -> Table2Config {
    if hoga_bench::full_scale() {
        Table2Config::default()
    } else {
        let mut cfg = Table2Config::default();
        cfg.dataset.scale_divisor = 32;
        cfg.dataset.recipes_per_design = 8;
        cfg.dataset.max_scaled_nodes = 1500;
        cfg.train = TrainConfig { hidden_dim: 32, epochs: 60, lr: 3e-3, ..TrainConfig::default() };
        cfg
    }
}

fn bench_table2(c: &mut Criterion) {
    let cfg = config();
    // Print the reproduced artifact once (the full experiment).
    let result = run(&cfg);
    println!("\n===== Reproduced Table 2 =====\n{}", result.render());

    // Criterion then times a light inner kernel: one HOGA-2 training epoch
    // on the prebuilt dataset (the quantity behind the table's
    // training-time column).
    let dataset = result.dataset;
    let mut group = c.benchmark_group("table2");
    group.sample_size(10);
    let mut one_epoch = cfg.train.clone();
    one_epoch.epochs = 1;
    group.bench_function("hoga2_training_epoch", |b| {
        b.iter(|| {
            let (_, stats) = hoga_eval::trainer::train_qor(
                &dataset,
                hoga_eval::trainer::QorModelKind::Hoga { num_hops: 2 },
                &one_epoch,
            );
            black_box(stats.final_loss)
        });
    });
    group.bench_function("gcn_training_epoch", |b| {
        b.iter(|| {
            let (_, stats) = hoga_eval::trainer::train_qor(
                &dataset,
                hoga_eval::trainer::QorModelKind::Gcn { layers: cfg.gcn_layers },
                &one_epoch,
            );
            black_box(stats.final_loss)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
