//! Figure 5 — multi-worker training-time scaling benchmark.
//!
//! Regenerates the scaling series (training time vs worker count) and the
//! paper's "hop features ≪ training time" claim, then times single steps
//! at each worker count so Criterion can report the speedup distribution.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hoga_datasets::gamora::{build_reasoning_graph, MultiplierKind, ReasoningConfig};
use hoga_eval::experiments::fig5::{run, Fig5Config};
use hoga_eval::parallel_train::train_reasoning_parallel;
use hoga_eval::trainer::TrainConfig;
use std::hint::black_box;

fn config() -> Fig5Config {
    if hoga_bench::full_scale() {
        Fig5Config::default()
    } else {
        Fig5Config {
            width: 12,
            graph: ReasoningConfig { tech_map: true, lut_k: 4, num_hops: 8, label_k: 4 },
            train: TrainConfig { hidden_dim: 32, epochs: 2, ..TrainConfig::default() },
            worker_counts: [1, 2, 4],
        }
    }
}

fn bench_fig5(c: &mut Criterion) {
    let cfg = config();
    let result = run(&cfg);
    println!("\n===== Reproduced Figure 5 =====\n{}", result.render());

    let graph = build_reasoning_graph(MultiplierKind::Booth, cfg.width, &cfg.graph);
    let mut group = c.benchmark_group("fig5");
    group.sample_size(10);
    for workers in cfg.worker_counts {
        let mut tcfg = cfg.train.clone();
        tcfg.epochs = 1;
        group.bench_with_input(BenchmarkId::new("one_epoch", workers), &workers, |b, &w| {
            b.iter(|| {
                let (_, _, stats) =
                    train_reasoning_parallel(&graph, &tcfg, w).expect("worker count is positive");
                black_box(stats.final_loss)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
