//! Deterministic weight initializers.
//!
//! All randomness in the repository flows through explicit `u64` seeds so
//! every experiment is reproducible bit-for-bit.

use crate::Matrix;
use rand::distributions::Distribution;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// The seeded RNG used across the workspace (ChaCha8: fast, portable,
/// reproducible across platforms).
pub(crate) type SeedRng = ChaCha8Rng;

/// Weight-initialization schemes.
///
/// # Examples
///
/// ```
/// use hoga_tensor::Init;
///
/// let w = Init::XavierUniform.matrix(4, 8, 42);
/// assert_eq!(w.shape(), (4, 8));
/// // Same seed, same weights.
/// assert_eq!(w, Init::XavierUniform.matrix(4, 8, 42));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Init {
    /// All zeros (biases).
    Zeros,
    /// All ones (LayerNorm gains).
    Ones,
    /// Glorot/Xavier uniform: `U(-a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
    XavierUniform,
    /// Kaiming/He normal: `N(0, sqrt(2 / fan_in))`, suited to ReLU stacks.
    KaimingNormal,
    /// Uniform in `[-0.1, 0.1]`, used for attention vectors.
    SmallUniform,
}

impl Init {
    /// Materializes a `rows × cols` matrix using this scheme and `seed`.
    ///
    /// `rows` is treated as `fan_in` and `cols` as `fan_out`.
    pub fn matrix(self, rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = SeedRng::seed_from_u64(seed);
        let data: Vec<f32> = match self {
            Init::Zeros => vec![0.0; rows * cols],
            Init::Ones => vec![1.0; rows * cols],
            Init::XavierUniform => {
                let a = (6.0 / (rows + cols) as f32).sqrt();
                (0..rows * cols).map(|_| rng.gen_range(-a..=a)).collect()
            }
            Init::KaimingNormal => {
                let std = (2.0 / rows as f32).sqrt();
                let normal = StandardNormal;
                (0..rows * cols).map(|_| normal.sample(&mut rng) * std).collect()
            }
            Init::SmallUniform => (0..rows * cols).map(|_| rng.gen_range(-0.1..=0.1)).collect(),
        };
        Matrix::from_vec(rows, cols, data)
    }

    /// Materializes a length-`n` vector using this scheme and `seed`.
    // analyze: allow(dead-public-api) — vector-shaped companion of Init::matrix in the public init API; covered by tests
    pub fn vector(self, n: usize, seed: u64) -> Vec<f32> {
        self.matrix(1, n, seed).into_vec()
    }
}

/// Box–Muller standard normal sampler (avoids pulling in `rand_distr`).
struct StandardNormal;

impl Distribution<f32> for StandardNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        loop {
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            let z = (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos();
            if z.is_finite() {
                return z;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = Init::KaimingNormal.matrix(8, 8, 7);
        let b = Init::KaimingNormal.matrix(8, 8, 7);
        let c = Init::KaimingNormal.matrix(8, 8, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn xavier_within_bound() {
        let w = Init::XavierUniform.matrix(16, 16, 1);
        let a = (6.0f32 / 32.0).sqrt();
        assert!(w.max_abs() <= a + 1e-6);
        assert!(w.max_abs() > 0.0);
    }

    #[test]
    fn kaiming_roughly_right_scale() {
        let w = Init::KaimingNormal.matrix(256, 64, 3);
        let var = w.as_slice().iter().map(|&x| x * x).sum::<f32>() / w.len() as f32;
        let expected = 2.0 / 256.0;
        assert!((var - expected).abs() < expected, "variance {var} far from {expected}");
    }

    #[test]
    fn zeros_ones_vectors() {
        assert!(Init::Zeros.vector(5, 0).iter().all(|&x| x == 0.0));
        assert!(Init::Ones.vector(5, 0).iter().all(|&x| x == 1.0));
    }
}
