//! Row-wise neural-network kernels: softmax and LayerNorm, with exact
//! backward passes for the autograd layer.
//!
//! Inner loops dispatch through [`crate::backend::KernelBackend`]; the
//! training entry points are bitwise identical across backends, while the
//! `*_fast` inference variants trade the ascending reduction order for
//! lane-parallel reductions within a documented ULP bound (see
//! `docs/PERFORMANCE.md`).
//!
//! # NaN contract
//!
//! A NaN logit is a *caller* bug (a diverged model or a corrupt feature),
//! but the kernels still define what happens: the affected row comes back
//! **entirely NaN** on every backend — mirroring how fully-masked rows get
//! a deterministic uniform fallback — and a `debug_assert` trips in debug
//! builds so the bug surfaces at the kernel boundary instead of three
//! layers downstream. Before this contract, `softmax_rows` scanned the max
//! with `f32::max` (which drops NaN), so a single NaN logit slipped past
//! the masked-row check and poisoned the row *silently* — and, worse, the
//! poisoning pattern depended on where the NaN sat in the row.

use crate::backend::{dispatch, KernelBackend};
use crate::Matrix;

const LN_EPS: f32 = 1e-5;

/// What a single scan of a logit row found (the shared classifier behind
/// the softmax kernels' masked-row and NaN contracts; backend-independent
/// by construction, so every backend honors the same edge cases).
#[derive(Debug, Clone, Copy, PartialEq)]
enum RowScan {
    /// At least one finite logit; carries the row maximum.
    Finite(f32),
    /// Every logit is `-inf` (a fully masked attention row).
    AllMasked,
    /// At least one NaN logit.
    HasNan,
}

/// Classifies a non-empty logit row in one pass. Unlike a `f32::max`
/// fold, NaN is detected rather than dropped.
fn scan_logits(row: &[f32]) -> RowScan {
    let mut max = f32::NEG_INFINITY;
    let mut has_nan = false;
    for &x in row {
        if x.is_nan() {
            has_nan = true;
        } else if x > max {
            max = x;
        }
    }
    if has_nan {
        RowScan::HasNan
    } else if max.is_infinite() && max.is_sign_negative() {
        RowScan::AllMasked
    } else {
        RowScan::Finite(max)
    }
}

/// Row-wise numerically stable softmax.
///
/// Each row of the result sums to 1. Used for the attention matrix
/// `S = softmax(QKᵀ)` (Eq. 7 of the paper) and the readout scores `c_k`
/// (Eq. 10).
///
/// # Examples
///
/// ```
/// use hoga_tensor::{softmax_rows, Matrix};
///
/// let s = softmax_rows(&Matrix::from_rows(&[&[0.0, 0.0], &[100.0, 0.0]]));
/// assert!((s[(0, 0)] - 0.5).abs() < 1e-6);
/// assert!(s[(1, 0)] > 0.999);
/// ```
pub fn softmax_rows(logits: &Matrix) -> Matrix {
    dispatch!(B => softmax_rows_impl::<B, false>(logits))
}

/// Inference-only softmax: identical edge-case contract to
/// [`softmax_rows`], but the normalizing sum runs through the backend's
/// lane-parallel fast reduction. Output is within a documented ULP bound
/// of [`softmax_rows`] (see `docs/PERFORMANCE.md`); for a fixed backend
/// it is still a pure function of its inputs.
pub fn softmax_rows_fast(logits: &Matrix) -> Matrix {
    dispatch!(B => softmax_rows_impl::<B, true>(logits))
}

fn softmax_rows_impl<B: KernelBackend, const FAST: bool>(logits: &Matrix) -> Matrix {
    let mut out = logits.clone();
    let width = out.cols();
    for r in 0..out.rows() {
        let row = out.row_mut(r);
        if row.is_empty() {
            continue;
        }
        match scan_logits(row) {
            RowScan::HasNan => {
                // A NaN logit means the *inputs* are already broken; make
                // the whole row deterministically NaN (position-independent)
                // and trip loudly in debug builds. See the module docs.
                debug_assert!(
                    row.iter().all(|x| !x.is_nan()),
                    "NaN logit reached softmax_rows (row {r}); \
                     release builds propagate a whole-NaN row"
                );
                row.fill(f32::NAN);
            }
            RowScan::AllMasked => {
                // Fully masked row (every logit is -inf): `x - max` would be
                // NaN for each entry. Fall back to the uniform distribution,
                // matching the limit of softmax as all logits go to -inf
                // together.
                row.fill(1.0 / width as f32);
            }
            RowScan::Finite(max) => {
                for x in row.iter_mut() {
                    *x = (*x - max).exp();
                }
                let sum = if FAST { B::sum_fast(row) } else { B::sum(row) };
                B::scale(row, 1.0 / sum);
            }
        }
    }
    out
}

/// Row-wise numerically stable log-softmax, used by the cross-entropy loss.
// analyze: allow(dead-public-api) — numerically-stable companion of softmax_rows in the public kernel API; covered by tests
pub fn log_softmax_rows(logits: &Matrix) -> Matrix {
    let mut out = logits.clone();
    let width = out.cols();
    for r in 0..out.rows() {
        let row = out.row_mut(r);
        if row.is_empty() {
            continue;
        }
        match scan_logits(row) {
            RowScan::HasNan => {
                // Same contract as softmax_rows: deterministic whole-NaN
                // row, loud in debug builds (module docs).
                debug_assert!(
                    row.iter().all(|x| !x.is_nan()),
                    "NaN logit reached log_softmax_rows (row {r}); \
                     release builds propagate a whole-NaN row"
                );
                row.fill(f32::NAN);
            }
            RowScan::AllMasked => {
                // Fully masked row: return the log of the uniform
                // distribution instead of `-inf - (-inf) = NaN` per entry.
                row.fill(-(width as f32).ln());
            }
            RowScan::Finite(max) => {
                let log_sum = row.iter().map(|&x| (x - max).exp()).sum::<f32>().ln() + max;
                for x in row.iter_mut() {
                    *x -= log_sum;
                }
            }
        }
    }
    out
}

/// Backward pass of [`softmax_rows`].
///
/// Given the forward output `y` and the upstream gradient `dy`, returns the
/// gradient with respect to the logits:
/// `dx_i = y_i * (dy_i - Σ_j dy_j y_j)` per row.
///
/// # Panics
///
/// Panics if the shapes of `y` and `dy` differ.
pub fn softmax_backward_rows(y: &Matrix, dy: &Matrix) -> Matrix {
    assert_eq!(y.shape(), dy.shape(), "softmax backward shape mismatch");
    let mut out = Matrix::zeros(y.rows(), y.cols());
    for r in 0..y.rows() {
        let yr = y.row(r);
        let dyr = dy.row(r);
        let dot: f32 = yr.iter().zip(dyr).map(|(&a, &b)| a * b).sum();
        let orow = out.row_mut(r);
        for ((o, &yv), &dyv) in orow.iter_mut().zip(yr).zip(dyr) {
            *o = yv * (dyv - dot);
        }
    }
    out
}

/// Saved statistics from [`layernorm_forward`] needed by the backward pass.
#[derive(Debug, Clone)]
pub struct LayerNormCache {
    /// Per-row inverse standard deviation `1 / sqrt(var + eps)`.
    pub inv_std: Vec<f32>,
    /// The normalized activations `x̂ = (x - mean) * inv_std`.
    pub normalized: Matrix,
}

/// Row-wise LayerNorm with learnable `gamma` (scale) and `beta` (shift).
///
/// Normalizes each row to zero mean / unit variance, then applies the affine
/// transform. Returns the output and a [`LayerNormCache`] for the backward
/// pass. This implements the `LayerNorm` of Eq. 9 in the paper.
///
/// # Panics
///
/// Panics if `gamma` or `beta` length differs from `x.cols()`.
pub fn layernorm_forward(x: &Matrix, gamma: &[f32], beta: &[f32]) -> (Matrix, LayerNormCache) {
    dispatch!(B => layernorm_forward_impl::<B, false>(x, gamma, beta))
}

/// Inference-only LayerNorm: identical contract to [`layernorm_forward`]
/// but with lane-parallel mean/variance reductions and no backward cache.
/// Output is within a documented ULP bound of the training kernel.
pub fn layernorm_rows_fast(x: &Matrix, gamma: &[f32], beta: &[f32]) -> Matrix {
    dispatch!(B => layernorm_forward_impl::<B, true>(x, gamma, beta).0)
}

fn layernorm_forward_impl<B: KernelBackend, const FAST: bool>(
    x: &Matrix,
    gamma: &[f32],
    beta: &[f32],
) -> (Matrix, LayerNormCache) {
    let d = x.cols();
    assert_eq!(gamma.len(), d, "gamma length mismatch");
    assert_eq!(beta.len(), d, "beta length mismatch");
    let mut out = Matrix::zeros(x.rows(), d);
    let mut normalized = Matrix::zeros(x.rows(), d);
    if d == 0 {
        // Width-0 rows have no features to normalize; `sum / d` would make
        // mean (and then inv_std) NaN. Mirror the softmax kernels and make
        // this a well-defined no-op: empty rows out, a finite placeholder
        // inv_std so the backward pass stays NaN-free.
        return (out, LayerNormCache { inv_std: vec![1.0; x.rows()], normalized });
    }
    let mut inv_std = Vec::with_capacity(x.rows());
    for r in 0..x.rows() {
        let row = x.row(r);
        let sum = if FAST { B::sum_fast(row) } else { B::sum(row) };
        let mean = sum / d as f32;
        let sq = if FAST { B::sq_diff_sum_fast(row, mean) } else { B::sq_diff_sum(row, mean) };
        let var = sq / d as f32;
        let is = 1.0 / (var + LN_EPS).sqrt();
        inv_std.push(is);
        B::normalize_row(normalized.row_mut(r), row, mean, is);
        B::affine_row(out.row_mut(r), normalized.row(r), gamma, beta);
    }
    (out, LayerNormCache { inv_std, normalized })
}

/// Backward pass of [`layernorm_forward`].
///
/// Returns `(dx, dgamma, dbeta)` given the upstream gradient `dy` and the
/// forward cache.
///
/// # Panics
///
/// Panics if shapes disagree with the cached forward pass.
pub fn layernorm_backward(
    dy: &Matrix,
    gamma: &[f32],
    cache: &LayerNormCache,
) -> (Matrix, Vec<f32>, Vec<f32>) {
    let d = dy.cols();
    assert_eq!(gamma.len(), d, "gamma length mismatch");
    assert_eq!(cache.normalized.shape(), dy.shape(), "cache shape mismatch");
    let n_rows = dy.rows();
    if d == 0 {
        // Width-0 forward was a no-op; the backward has no feature axis to
        // reduce over either (and `1.0 / d` below would be inf).
        return (Matrix::zeros(n_rows, 0), Vec::new(), Vec::new());
    }
    let mut dx = Matrix::zeros(n_rows, d);
    let mut dgamma = vec![0.0f32; d];
    let mut dbeta = vec![0.0f32; d];
    for r in 0..n_rows {
        let dyr = dy.row(r);
        let xhat = cache.normalized.row(r);
        let is = cache.inv_std[r];
        // dL/dxhat_c = dy_c * gamma_c
        // dx = (1/D) * inv_std * (D*dxhat - sum(dxhat) - xhat * sum(dxhat*xhat))
        let mut sum_dxhat = 0.0f32;
        let mut sum_dxhat_xhat = 0.0f32;
        for c in 0..d {
            let dxhat = dyr[c] * gamma[c];
            sum_dxhat += dxhat;
            sum_dxhat_xhat += dxhat * xhat[c];
            dgamma[c] += dyr[c] * xhat[c];
            dbeta[c] += dyr[c];
        }
        let drow = dx.row_mut(r);
        let inv_d = 1.0 / d as f32;
        for c in 0..d {
            let dxhat = dyr[c] * gamma[c];
            drow[c] = is * (dxhat - inv_d * sum_dxhat - inv_d * xhat[c] * sum_dxhat_xhat);
        }
    }
    (dx, dgamma, dbeta)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = Matrix::from_fn(4, 6, |r, c| ((r * 6 + c) as f32).sin() * 3.0);
        let y = softmax_rows(&x);
        for r in 0..4 {
            let s: f32 = y.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-5, "row {r} sums to {s}");
            assert!(y.row(r).iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn softmax_handles_extreme_logits() {
        let x = Matrix::from_rows(&[&[1000.0, -1000.0], &[-1000.0, -1000.0]]);
        let y = softmax_rows(&x);
        assert!(y.is_finite());
        assert!((y[(0, 0)] - 1.0).abs() < 1e-6);
        assert!((y[(1, 0)] - 0.5).abs() < 1e-6);
    }

    /// Regression: a fully masked row (all `-inf`, as produced by attention
    /// masks) used to come back all-NaN because `x - max` was `-inf - -inf`.
    #[test]
    fn softmax_fully_masked_row_is_uniform() {
        let x = Matrix::from_rows(&[
            &[f32::NEG_INFINITY, f32::NEG_INFINITY, f32::NEG_INFINITY],
            &[0.0, f32::NEG_INFINITY, 0.0],
        ]);
        let y = softmax_rows(&x);
        assert!(y.is_finite(), "masked softmax produced non-finite output: {y:?}");
        for &v in y.row(0) {
            assert!((v - 1.0 / 3.0).abs() < 1e-6, "masked row not uniform: {:?}", y.row(0));
        }
        // Partially masked rows keep the usual semantics: -inf entries get
        // zero mass and the rest renormalizes.
        assert!((y[(1, 0)] - 0.5).abs() < 1e-6);
        assert!(y[(1, 1)].abs() < 1e-9);
        assert!((y[(1, 2)] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn scan_classifies_rows() {
        assert_eq!(scan_logits(&[1.0, -2.0]), RowScan::Finite(1.0));
        assert_eq!(scan_logits(&[f32::NEG_INFINITY, 3.0]), RowScan::Finite(3.0));
        assert_eq!(scan_logits(&[f32::NEG_INFINITY, f32::NEG_INFINITY]), RowScan::AllMasked);
        // The old `f32::max` fold dropped NaN, so `[NaN, 0.0]` looked like a
        // normal row with max 0.0 and the NaN slipped through undetected.
        assert_eq!(scan_logits(&[f32::NAN, 0.0]), RowScan::HasNan);
        assert_eq!(scan_logits(&[0.0, f32::NAN]), RowScan::HasNan);
        assert_eq!(scan_logits(&[f32::NAN, f32::NEG_INFINITY]), RowScan::HasNan);
        assert_eq!(scan_logits(&[f32::INFINITY, f32::NAN]), RowScan::HasNan);
    }

    /// Regression: a single NaN logit must not slip past the masked-row
    /// check. In debug builds the kernels trip a `debug_assert` right at the
    /// kernel boundary; in release they return a deterministic whole-NaN
    /// row (pinned by `scan_classifies_rows` + the release-only test below).
    #[test]
    #[cfg(debug_assertions)]
    fn nan_logit_trips_debug_assert() {
        for kernel in [softmax_rows, log_softmax_rows, softmax_rows_fast] {
            let x = Matrix::from_rows(&[&[0.0, f32::NAN, 1.0]]);
            let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| kernel(&x)))
                .expect_err("NaN logit must panic in debug builds");
            let msg = err
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_default();
            assert!(msg.contains("NaN logit"), "unexpected panic message: {msg}");
        }
    }

    /// The release half of the NaN contract: the whole row is NaN no matter
    /// where the NaN sat, and clean rows are untouched.
    #[test]
    #[cfg(not(debug_assertions))]
    fn nan_logit_poisons_whole_row_deterministically() {
        for kernel in [softmax_rows, log_softmax_rows, softmax_rows_fast] {
            let x = Matrix::from_rows(&[&[0.0, f32::NAN, 1.0], &[0.5, 0.25, -1.0]]);
            let y = kernel(&x);
            assert!(y.row(0).iter().all(|v| v.is_nan()), "row 0 not fully NaN: {y:?}");
            assert!(y.row(1).iter().all(|v| v.is_finite()), "clean row corrupted: {y:?}");
            // Position independence: NaN elsewhere gives the same row 0.
            let x2 = Matrix::from_rows(&[&[f32::NAN, 0.0, 1.0], &[0.5, 0.25, -1.0]]);
            let y2 = kernel(&x2);
            assert!(y2.row(0).iter().all(|v| v.is_nan()));
            assert_eq!(y.row(1), y2.row(1));
        }
    }

    /// Regression: log-softmax on a fully masked row used to be all-NaN; it
    /// now returns the log of the uniform distribution.
    #[test]
    fn log_softmax_fully_masked_row_is_log_uniform() {
        let x = Matrix::from_rows(&[&[f32::NEG_INFINITY, f32::NEG_INFINITY]]);
        let y = log_softmax_rows(&x);
        assert!(y.is_finite(), "masked log-softmax produced non-finite output: {y:?}");
        for &v in y.row(0) {
            assert!((v - (-(2.0f32).ln())).abs() < 1e-6);
        }
    }

    /// Regression: width-0 rows used to hit `1.0 / 0.0` (softmax) and
    /// `0.0.ln()` (log-softmax); both must now be well-defined no-ops.
    #[test]
    fn softmax_width_zero_rows_are_noops() {
        let x = Matrix::zeros(3, 0);
        let y = softmax_rows(&x);
        assert_eq!(y.shape(), (3, 0));
        assert!(y.is_finite());
        let ly = log_softmax_rows(&x);
        assert_eq!(ly.shape(), (3, 0));
        assert!(ly.is_finite());
    }

    #[test]
    fn log_softmax_consistent_with_softmax() {
        let x = Matrix::from_fn(3, 5, |r, c| (r as f32 - c as f32) * 0.7);
        let y = softmax_rows(&x);
        let ly = log_softmax_rows(&x);
        assert!(y.map(|v| v.ln()).max_abs_diff(&ly) < 1e-5);
    }

    /// Finite-difference check of the softmax Jacobian.
    #[test]
    fn softmax_backward_matches_finite_difference() {
        let x = Matrix::from_fn(2, 4, |r, c| (r as f32 + c as f32 * 0.3).cos());
        let dy = Matrix::from_fn(2, 4, |r, c| ((r + 2 * c) as f32 * 0.17).sin());
        let y = softmax_rows(&x);
        let dx = softmax_backward_rows(&y, &dy);
        let eps = 1e-3;
        for r in 0..2 {
            for c in 0..4 {
                let mut xp = x.clone();
                xp[(r, c)] += eps;
                let mut xm = x.clone();
                xm[(r, c)] -= eps;
                let lp: f32 = softmax_rows(&xp)
                    .as_slice()
                    .iter()
                    .zip(dy.as_slice())
                    .map(|(&a, &b)| a * b)
                    .sum();
                let lm: f32 = softmax_rows(&xm)
                    .as_slice()
                    .iter()
                    .zip(dy.as_slice())
                    .map(|(&a, &b)| a * b)
                    .sum();
                let fd = (lp - lm) / (2.0 * eps);
                assert!(
                    (fd - dx[(r, c)]).abs() < 1e-3,
                    "({r},{c}): fd={fd} analytic={}",
                    dx[(r, c)]
                );
            }
        }
    }

    /// Regression: width-0 matrices used to hit `sum / 0` → NaN mean and
    /// NaN `inv_std`; forward and backward must now be well-defined no-ops
    /// like the softmax kernels.
    #[test]
    fn layernorm_width_zero_is_noop_forward_and_backward() {
        let x = Matrix::zeros(3, 0);
        let (y, cache) = layernorm_forward(&x, &[], &[]);
        assert_eq!(y.shape(), (3, 0));
        assert!(y.is_finite());
        assert_eq!(cache.inv_std.len(), 3);
        assert!(cache.inv_std.iter().all(|v| v.is_finite()), "NaN inv_std: {cache:?}");
        let dy = Matrix::zeros(3, 0);
        let (dx, dgamma, dbeta) = layernorm_backward(&dy, &[], &cache);
        assert_eq!(dx.shape(), (3, 0));
        assert!(dx.is_finite());
        assert!(dgamma.is_empty());
        assert!(dbeta.is_empty());
    }

    /// The fast kernels share the scalar edge-case contract exactly.
    #[test]
    fn fast_kernels_handle_masked_and_empty_rows() {
        let x = Matrix::from_rows(&[
            &[f32::NEG_INFINITY, f32::NEG_INFINITY],
            &[2.0, f32::NEG_INFINITY],
        ]);
        let y = softmax_rows_fast(&x);
        assert!(y.is_finite());
        assert!((y[(0, 0)] - 0.5).abs() < 1e-6);
        assert!((y[(1, 0)] - 1.0).abs() < 1e-6);
        assert_eq!(softmax_rows_fast(&Matrix::zeros(2, 0)).shape(), (2, 0));
        let z = Matrix::zeros(2, 0);
        assert_eq!(layernorm_rows_fast(&z, &[], &[]).shape(), (2, 0));
    }

    /// The fast variants stay numerically close to the training kernels.
    #[test]
    fn fast_kernels_track_training_kernels() {
        let x = Matrix::from_fn(5, 37, |r, c| ((r * 37 + c) as f32 * 0.13).sin() * 2.0);
        assert!(softmax_rows(&x).max_abs_diff(&softmax_rows_fast(&x)) < 1e-6);
        let gamma: Vec<f32> = (0..37).map(|i| 0.5 + 0.01 * i as f32).collect();
        let beta: Vec<f32> = (0..37).map(|i| 0.02 * i as f32).collect();
        let (y, _) = layernorm_forward(&x, &gamma, &beta);
        assert!(y.max_abs_diff(&layernorm_rows_fast(&x, &gamma, &beta)) < 1e-4);
    }

    #[test]
    fn layernorm_normalizes_rows() {
        let x = Matrix::from_fn(3, 8, |r, c| (r * 8 + c) as f32 * 1.5 + 2.0);
        let gamma = vec![1.0; 8];
        let beta = vec![0.0; 8];
        let (y, _) = layernorm_forward(&x, &gamma, &beta);
        for r in 0..3 {
            let mean: f32 = y.row(r).iter().sum::<f32>() / 8.0;
            let var: f32 = y.row(r).iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / 8.0;
            assert!(mean.abs() < 1e-4, "row {r} mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "row {r} var {var}");
        }
    }

    #[test]
    fn layernorm_affine_applies_gamma_beta() {
        let x = Matrix::from_fn(2, 4, |r, c| (r + c) as f32);
        let gamma = vec![2.0; 4];
        let beta = vec![5.0; 4];
        let (y, _) = layernorm_forward(&x, &gamma, &beta);
        let (y0, _) = layernorm_forward(&x, &[1.0; 4], &[0.0; 4]);
        assert!(y.max_abs_diff(&y0.map(|v| v * 2.0 + 5.0)) < 1e-5);
    }

    #[test]
    fn layernorm_backward_matches_finite_difference() {
        let x = Matrix::from_fn(2, 5, |r, c| ((r * 5 + c) as f32 * 0.37).sin() * 2.0);
        let gamma: Vec<f32> = (0..5).map(|i| 0.5 + 0.2 * i as f32).collect();
        let beta: Vec<f32> = (0..5).map(|i| 0.1 * i as f32).collect();
        let dy = Matrix::from_fn(2, 5, |r, c| ((r + c) as f32 * 0.23).cos());
        let (_, cache) = layernorm_forward(&x, &gamma, &beta);
        let (dx, dgamma, dbeta) = layernorm_backward(&dy, &gamma, &cache);

        let loss = |xx: &Matrix, gg: &[f32], bb: &[f32]| -> f32 {
            let (y, _) = layernorm_forward(xx, gg, bb);
            y.as_slice().iter().zip(dy.as_slice()).map(|(&a, &b)| a * b).sum()
        };
        let eps = 1e-2;
        for r in 0..2 {
            for c in 0..5 {
                let mut xp = x.clone();
                xp[(r, c)] += eps;
                let mut xm = x.clone();
                xm[(r, c)] -= eps;
                let fd = (loss(&xp, &gamma, &beta) - loss(&xm, &gamma, &beta)) / (2.0 * eps);
                assert!(
                    (fd - dx[(r, c)]).abs() < 2e-2,
                    "dx({r},{c}): fd={fd} analytic={}",
                    dx[(r, c)]
                );
            }
        }
        for c in 0..5 {
            let mut gp = gamma.clone();
            gp[c] += eps;
            let mut gm = gamma.clone();
            gm[c] -= eps;
            let fd = (loss(&x, &gp, &beta) - loss(&x, &gm, &beta)) / (2.0 * eps);
            assert!((fd - dgamma[c]).abs() < 2e-2, "dgamma[{c}]: fd={fd} vs {}", dgamma[c]);
            let mut bp = beta.clone();
            bp[c] += eps;
            let mut bm = beta.clone();
            bm[c] -= eps;
            let fd = (loss(&x, &gamma, &bp) - loss(&x, &gamma, &bm)) / (2.0 * eps);
            assert!((fd - dbeta[c]).abs() < 2e-2, "dbeta[{c}]: fd={fd} vs {}", dbeta[c]);
        }
    }
}
