//! Tolerant `f32` comparison helpers.
//!
//! Exact `==` on floats that have been through arithmetic compares rounding
//! noise, so the workspace linter rejects it on numeric paths
//! (`float-equality`, R7). These helpers are the sanctioned replacements:
//! [`approx_eq`] for "same value up to a few representable steps" and
//! [`approx_eq_eps`] for an explicit mixed absolute/relative tolerance.

/// ULP-distance equality with a default budget of 4 representable steps.
///
/// Suitable for values produced by short chains of well-conditioned
/// arithmetic. `NaN` never compares equal; `-0.0` equals `+0.0`.
///
/// # Examples
///
/// ```
/// assert!(hoga_tensor::approx_eq(0.1 + 0.2, 0.3));
/// assert!(!hoga_tensor::approx_eq(1.0, 1.001));
/// ```
// analyze: allow(dead-public-api) — default-tolerance entry of the public approx API that the float-equality rule points users at; eps variant is consumed by eval
pub fn approx_eq(a: f32, b: f32) -> bool {
    approx_eq_ulps(a, b, 4)
}

/// ULP-distance equality with an explicit budget.
///
/// The bit patterns are mapped onto a single monotonic integer line so
/// adjacent representable floats differ by exactly one; the comparison then
/// bounds the distance by `max_ulps`. `NaN` never compares equal.
pub fn approx_eq_ulps(a: f32, b: f32, max_ulps: u32) -> bool {
    if a.is_nan() || b.is_nan() {
        return false;
    }
    fn order(x: f32) -> i64 {
        let bits = x.to_bits();
        if bits & 0x8000_0000 != 0 {
            -(i64::from(bits & 0x7fff_ffff))
        } else {
            i64::from(bits)
        }
    }
    (order(a) - order(b)).unsigned_abs() <= u64::from(max_ulps)
}

/// Mixed absolute/relative tolerance: `|a - b| <= eps * max(1, |a|, |b|)`.
///
/// Behaves as an absolute tolerance near zero and a relative tolerance for
/// large magnitudes. `NaN` never compares equal; infinities compare equal
/// only to themselves.
pub fn approx_eq_eps(a: f32, b: f32, eps: f32) -> bool {
    if a.is_nan() || b.is_nan() {
        return false;
    }
    if a.is_infinite() || b.is_infinite() {
        return a == b;
    }
    let scale = 1.0f32.max(a.abs()).max(b.abs());
    (a - b).abs() <= eps * scale
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adjacent_floats_are_approx_equal() {
        let a = 1.0f32;
        let b = f32::from_bits(a.to_bits() + 1);
        assert!(approx_eq(a, b));
        assert!(approx_eq_ulps(a, b, 1));
        assert!(!approx_eq_ulps(a, b, 0));
    }

    #[test]
    fn signed_zero_and_sign_straddle() {
        assert!(approx_eq(0.0, -0.0));
        let tiny = f32::from_bits(1); // smallest positive subnormal
        assert!(approx_eq(tiny, -tiny), "2 ulps across the zero crossing");
    }

    #[test]
    fn nan_and_infinity_semantics() {
        assert!(!approx_eq(f32::NAN, f32::NAN));
        assert!(!approx_eq_eps(f32::NAN, 0.0, 1.0));
        assert!(approx_eq(f32::INFINITY, f32::INFINITY));
        assert!(!approx_eq(f32::INFINITY, f32::NEG_INFINITY));
        assert!(approx_eq_eps(f32::INFINITY, f32::INFINITY, 1e-6));
        assert!(!approx_eq_eps(f32::INFINITY, 1e30, 1e-6));
    }

    #[test]
    fn eps_is_absolute_near_zero_and_relative_at_scale() {
        assert!(approx_eq_eps(1e-7, 0.0, 1e-6));
        assert!(!approx_eq_eps(1e-5, 0.0, 1e-6));
        assert!(approx_eq_eps(1e6, 1e6 + 0.5, 1e-6));
        assert!(!approx_eq_eps(1.0, 1.001, 1e-6));
    }

    #[test]
    fn distant_values_are_not_equal() {
        assert!(!approx_eq(1.0, 1.0001));
        assert!(!approx_eq_ulps(1.0e8, 1.1e8, 1000));
    }
}
