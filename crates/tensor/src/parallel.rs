//! Minimal structured-parallelism helpers built on `std::thread::scope`.
//!
//! The kernels in this crate parallelize over disjoint row chunks of an
//! output buffer. [`parallel_chunks`] splits a mutable slice into per-thread
//! chunks aligned to a row width and runs a closure on each chunk inside a
//! scoped thread. [`parallel_map`] runs indexed tasks and returns their
//! results in task order, which is the primitive behind the deterministic
//! fixed-order reductions of `Matrix::matmul_tn` and `CsrMatrix::from_coo`.
//!
//! # Determinism contract
//!
//! Every helper here guarantees that the *values* it produces are a pure
//! function of its inputs, never of the thread count or the scheduler:
//!
//! * [`parallel_chunks`] hands each closure a disjoint region and a start
//!   row; closures compute each row independently, so chunk boundaries only
//!   affect which thread writes a row, not what is written.
//! * [`parallel_map`] returns results **in task-index order** regardless of
//!   which worker ran which task, so callers that reduce the results in
//!   order get bitwise-identical floats for every thread count.
//!
//! # Composition with the kernel backends
//!
//! Thread-level partitioning composes orthogonally with the lane-level
//! backends in `crate::backend`: these helpers decide *which rows* a
//! thread computes, while the selected [`crate::Backend`] decides *how*
//! each row's arithmetic is vectorized. Training-path kernels stay
//! bitwise identical across every (thread count × backend) combination
//! because SIMD lanes replay the identical per-element multiply/add
//! sequence; only the inference-only `*_fast` kernels reassociate
//! reductions, and they do so in a fixed lane tree that is still
//! thread-count invariant.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::thread::ScopedJoinHandle;

static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Number of worker threads kernels will use.
///
/// Defaults to `std::thread::available_parallelism()` capped at 16; can be
/// overridden (e.g. by the data-parallel trainer, which wants its *own*
/// thread-level parallelism) via [`set_threads`].
///
/// # Examples
///
/// ```
/// assert!(hoga_tensor::available_threads() >= 1);
/// ```
pub fn available_threads() -> usize {
    let over = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if over > 0 {
        return over;
    }
    static DETECTED: OnceLock<usize> = OnceLock::new();
    *DETECTED
        .get_or_init(|| std::thread::available_parallelism().map(|n| n.get().min(16)).unwrap_or(1))
}

/// Overrides the kernel thread count; `0` restores auto-detection.
///
/// Because every kernel's output is thread-count invariant (see the module
/// docs), changing this affects wall-clock time only, never results.
pub fn set_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::Relaxed);
}

/// Splits `out` into contiguous chunks aligned to `row_width` and invokes
/// `f(start_row, chunk)` on each chunk, in parallel.
///
/// The closure receives the starting *row* index of its chunk (not the
/// element index) so it can read corresponding rows of the inputs.
///
/// # Panics
///
/// Panics if `row_width` is zero or does not divide `out.len()`.
pub(crate) fn parallel_chunks<F>(out: &mut [f32], row_width: usize, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    assert!(row_width > 0, "row_width must be positive");
    assert_eq!(out.len() % row_width, 0, "buffer not aligned to row width");
    let total_rows = out.len() / row_width;
    let threads = available_threads().min(total_rows.max(1));
    if threads <= 1 || total_rows == 0 {
        f(0, out);
        return;
    }
    let rows_per = total_rows.div_ceil(threads);
    std::thread::scope(|s| {
        let mut rest = out;
        let mut row = 0;
        let mut handles = Vec::new();
        while !rest.is_empty() {
            let take = (rows_per * row_width).min(rest.len());
            let (chunk, tail) = rest.split_at_mut(take);
            let start_row = row;
            let fref = &f;
            let handle = s.spawn(move || fref(start_row, chunk));
            handles.push(handle);
            row += take / row_width;
            rest = tail;
        }
        join_all(handles);
    });
}

/// Like [`parallel_chunks`] but the closure also receives a zero-based chunk
/// index, useful for writing into per-chunk scratch areas.
///
/// # Panics
///
/// Panics if `row_width` is zero or does not divide `out.len()`.
// analyze: allow(dead-public-api) — index-carrying variant of the public chunked-parallelism API; covered by tests
pub fn parallel_chunks_with<F>(out: &mut [f32], row_width: usize, f: F)
where
    F: Fn(usize, usize, &mut [f32]) + Sync,
{
    assert!(row_width > 0, "row_width must be positive");
    assert_eq!(out.len() % row_width, 0, "buffer not aligned to row width");
    let total_rows = out.len() / row_width;
    let threads = available_threads().min(total_rows.max(1));
    if threads <= 1 || total_rows == 0 {
        f(0, 0, out);
        return;
    }
    let rows_per = total_rows.div_ceil(threads);
    std::thread::scope(|s| {
        let mut rest = out;
        let mut row = 0;
        let mut chunk_idx = 0;
        let mut handles = Vec::new();
        while !rest.is_empty() {
            let take = (rows_per * row_width).min(rest.len());
            let (chunk, tail) = rest.split_at_mut(take);
            let start_row = row;
            let ci = chunk_idx;
            let fref = &f;
            let handle = s.spawn(move || fref(ci, start_row, chunk));
            handles.push(handle);
            row += take / row_width;
            chunk_idx += 1;
            rest = tail;
        }
        join_all(handles);
    });
}

/// Joins every chunk worker, re-raising the first panic payload so the
/// failure surfaces on the caller's thread with its original message.
fn join_all(handles: Vec<ScopedJoinHandle<'_, ()>>) {
    for handle in handles {
        if let Err(payload) = handle.join() {
            std::panic::resume_unwind(payload);
        }
    }
}

/// Runs `count` independent tasks and returns their results **in task-index
/// order**, regardless of which worker thread executed which task.
///
/// Tasks are assigned to workers round-robin (worker `w` runs tasks
/// `w, w + W, w + 2W, ...`), so each task runs exactly once and the result
/// order is a pure function of `count`. Callers that reduce the returned
/// values in index order therefore get bitwise-identical results for every
/// thread count; this is the primitive behind the deterministic k-chunked
/// reduction of `Matrix::matmul_tn` and the sharded `CsrMatrix::from_coo`
/// build.
pub(crate) fn parallel_map<T, F>(count: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = available_threads().min(count);
    if workers <= 1 {
        return (0..count).map(f).collect();
    }
    let mut per_worker: Vec<Vec<(usize, T)>> = std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let fref = &f;
            let handle = s.spawn(move || {
                (w..count).step_by(workers).map(|i| (i, fref(i))).collect::<Vec<_>>()
            });
            handles.push(handle);
        }
        let mut results = Vec::with_capacity(workers);
        for handle in handles {
            match handle.join() {
                Ok(v) => results.push(v),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        results
    });
    // Reassemble in task-index order; the round-robin assignment covers
    // every index exactly once.
    let mut slots: Vec<Option<T>> = (0..count).map(|_| None).collect();
    for bucket in &mut per_worker {
        for (i, v) in bucket.drain(..) {
            slots[i] = Some(v);
        }
    }
    // analyze: allow(panic-reachability) — round-robin fills every slot, so the expect is unreachable
    slots.into_iter().map(|s| s.expect("round-robin covers every task index")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_all_rows_exactly_once() {
        let mut buf = vec![0.0f32; 97 * 3];
        parallel_chunks(&mut buf, 3, |start_row, chunk| {
            for (i, row) in chunk.chunks_mut(3).enumerate() {
                for v in row.iter_mut() {
                    *v += (start_row + i) as f32;
                }
            }
        });
        for (r, row) in buf.chunks(3).enumerate() {
            assert!(row.iter().all(|&v| v == r as f32), "row {r} wrong: {row:?}");
        }
    }

    #[test]
    fn single_row_buffer_works() {
        let mut buf = vec![0.0f32; 4];
        parallel_chunks(&mut buf, 4, |start, chunk| {
            assert_eq!(start, 0);
            chunk.fill(1.0);
        });
        assert!(buf.iter().all(|&v| v == 1.0));
    }

    #[test]
    fn chunk_index_variant_labels_chunks() {
        let mut buf = vec![0.0f32; 64];
        parallel_chunks_with(&mut buf, 1, |ci, _start, chunk| {
            chunk.fill(ci as f32);
        });
        // Chunk ids must be non-decreasing across the buffer.
        let mut last = 0.0;
        for &v in &buf {
            assert!(v >= last);
            last = v;
        }
    }

    #[test]
    #[should_panic(expected = "not aligned")]
    fn misaligned_buffer_panics() {
        let mut buf = vec![0.0f32; 7];
        parallel_chunks(&mut buf, 3, |_, _| {});
    }

    #[test]
    fn parallel_map_returns_results_in_task_order() {
        let out = parallel_map(37, |i| i * i);
        assert_eq!(out, (0..37).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_handles_zero_and_one_task() {
        assert!(parallel_map(0, |i| i).is_empty());
        assert_eq!(parallel_map(1, |i| i + 10), vec![10]);
    }
}
