//! Kernel backend selection: scalar vs SIMD inner loops.
//!
//! Every hot kernel in this crate ([`crate::Matrix::matmul`] and friends,
//! `softmax_rows`, `layernorm_forward`) routes its inner loop through the
//! [`KernelBackend`] trait. Three implementations exist:
//!
//! * [`ScalarKernels`] — the plain loops this crate has always run; the
//!   semantic reference for everything else.
//! * [`PortableKernels`] — 8-lane chunked loops in safe Rust. On the
//!   *training* entry points it is bitwise identical to [`ScalarKernels`]
//!   (element-wise multiplies and adds do not reassociate); its `*_fast`
//!   reductions mirror the AVX2 lane tree exactly, so the fast path is
//!   also machine-independent.
//! * `Avx2Kernels` (in `crate::simd`, behind the `simd` cargo feature) —
//!   `std::arch` AVX2 intrinsics, selected at runtime only when the CPU
//!   reports `avx2` + `fma`.
//!
//! # Determinism contract per path
//!
//! Training-path methods (`fma_row`, `fma_row4`, `dot`, `sum`,
//! `sq_diff_sum`, and the element-wise ops) are **bitwise identical**
//! across all three backends: element-wise lanes perform exactly the
//! scalar `mul` + `add` per element (never a fused multiply-add) and
//! reductions keep the scalar ascending order. The `*_fast` methods are
//! inference-only: they reduce through a fixed 8-lane tree and may fuse
//! multiply-adds, which reassociates the float sums within a documented
//! ULP bound of the scalar result (see `docs/PERFORMANCE.md`). For a
//! fixed backend resolution the fast path is still a pure function of
//! its inputs — never of the thread count.
//!
//! The requested backend is process-global state, like
//! [`crate::set_threads`]: [`set_backend`] stores the request and
//! [`resolved`] maps it to an implementation (`Simd` falls back to
//! [`PortableKernels`] when the `simd` feature is off or the CPU lacks
//! AVX2).

use std::sync::atomic::{AtomicU8, Ordering};

/// Which kernel backend the process requests (see [`set_backend`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// The plain scalar loops (default).
    Scalar,
    /// SIMD inner loops: AVX2 when compiled with the `simd` feature and
    /// detected at runtime, the portable 8-lane fallback otherwise.
    Simd,
}

static BACKEND: AtomicU8 = AtomicU8::new(0);

/// Selects the kernel backend for all subsequent kernel calls.
///
/// Training-path results are bitwise identical across backends, so this
/// affects wall-clock time only; the `*_fast` inference entry points are
/// ULP-bounded against the scalar oracles instead (module docs).
pub fn set_backend(b: Backend) {
    BACKEND.store(if b == Backend::Scalar { 0 } else { 1 }, Ordering::Relaxed);
}

/// The currently requested backend.
pub fn backend() -> Backend {
    if BACKEND.load(Ordering::Relaxed) == 0 {
        Backend::Scalar
    } else {
        Backend::Simd
    }
}

/// The name of the implementation the current request resolves to:
/// `"scalar"`, `"simd-portable"`, or `"simd-avx2"`. Benchmark reports
/// record this so a curve is never attributed to a backend that silently
/// fell back.
pub fn active_backend() -> &'static str {
    dispatch!(B => B::NAME)
}

/// The backend implementation a [`Backend`] request maps to on this
/// build + CPU.
#[derive(Debug, Clone, Copy)]
pub(crate) enum ResolvedBackend {
    /// [`ScalarKernels`].
    Scalar,
    /// [`PortableKernels`].
    Portable,
    /// `crate::simd::Avx2Kernels`.
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    Avx2,
}

/// Maps the requested backend to an implementation. `Simd` resolves to
/// AVX2 only when the feature is compiled in *and* the CPU reports
/// `avx2` + `fma`; otherwise it degrades to the portable lanes.
pub(crate) fn resolved() -> ResolvedBackend {
    if BACKEND.load(Ordering::Relaxed) == 0 {
        return ResolvedBackend::Scalar;
    }
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if crate::simd::avx2_available() {
        return ResolvedBackend::Avx2;
    }
    ResolvedBackend::Portable
}

/// Monomorphizes `$body` over the resolved backend: `dispatch!(B =>
/// expr)` binds the type alias `B` to the selected [`KernelBackend`]
/// implementation. One match per *kernel call*, so per-row loops carry no
/// dispatch overhead.
macro_rules! dispatch {
    ($B:ident => $body:expr) => {
        match $crate::backend::resolved() {
            $crate::backend::ResolvedBackend::Scalar => {
                type $B = $crate::backend::ScalarKernels;
                $body
            }
            $crate::backend::ResolvedBackend::Portable => {
                type $B = $crate::backend::PortableKernels;
                $body
            }
            #[cfg(all(feature = "simd", target_arch = "x86_64"))]
            $crate::backend::ResolvedBackend::Avx2 => {
                type $B = $crate::simd::Avx2Kernels;
                $body
            }
        }
    };
}
pub(crate) use dispatch;

/// The inner-loop primitives every backend provides. Default method
/// bodies are the scalar semantics; [`ScalarKernels`] uses them verbatim,
/// so the defaults double as the reference implementation overriding
/// backends must match (bitwise on the training path, ULP-bounded on
/// `*_fast`).
pub(crate) trait KernelBackend {
    /// Implementation name for bench/report labels.
    const NAME: &'static str;

    /// `acc[i] += a * b[i]` (training path; exactly one multiply and one
    /// add per element, in index order). Skips the whole row when `a` is
    /// bitwise zero — the sparsity fast path the matmul family relies on;
    /// the skip must live here because adding `±0.0 * b[i]` is *not* a
    /// bitwise no-op (`-0.0 + 0.0 == +0.0`, and `b[i]` may be non-finite).
    fn fma_row(acc: &mut [f32], a: f32, b: &[f32]) {
        // analyze: allow(float-equality) — exact-zero sparsity fast path; skipping only bitwise zeros cannot change the accumulated sum
        if a == 0.0 {
            return;
        }
        for (x, &y) in acc.iter_mut().zip(b) {
            *x += a * y;
        }
    }

    /// Four consecutive [`KernelBackend::fma_row`] steps with one
    /// accumulator load/store per element: per element the operation
    /// sequence `(((acc + a0·b0) + a1·b1) + a2·b2) + a3·b3` is exactly
    /// the four separate passes, so results stay bitwise identical while
    /// the memory traffic on `acc` drops 4×.
    fn fma_row4(acc: &mut [f32], a: [f32; 4], b: [&[f32]; 4]) {
        if a.contains(&0.0) {
            // Rare mixed case: fall back to the per-step skip semantics.
            for (&av, &bv) in a.iter().zip(&b) {
                Self::fma_row(acc, av, bv);
            }
            return;
        }
        let (b0, b1, b2, b3) = (b[0], b[1], b[2], b[3]);
        for (j, x) in acc.iter_mut().enumerate() {
            *x = (((*x + a[0] * b0[j]) + a[1] * b1[j]) + a[2] * b2[j]) + a[3] * b3[j];
        }
    }

    /// Inference-only `acc[i] += a * b[i]` that may fuse the multiply and
    /// add (`f32::mul_add` / hardware FMA — both correctly rounded, so
    /// portable and AVX2 agree bitwise). Keeps the bitwise-zero skip.
    fn fma_row_fast(acc: &mut [f32], a: f32, b: &[f32]) {
        // analyze: allow(float-equality) — exact-zero sparsity fast path; skipping only bitwise zeros cannot change the accumulated sum
        if a == 0.0 {
            return;
        }
        for (x, &y) in acc.iter_mut().zip(b) {
            *x = a.mul_add(y, *x);
        }
    }

    /// One k-panel step of the row-blocked matmul: for each of six
    /// output rows, `acc_r[j] += Σ_dk a_r[dk] · b[dk·n + j]` with `dk`
    /// ascending. `b` is the `a[0].len() × n` row-major panel shared by
    /// all six rows — blocking rows over one panel is what lets a SIMD
    /// override keep the accumulators in registers for the whole panel
    /// instead of spilling them every few k-steps. Per output element the
    /// operation sequence is still one mul + one add per `dk` in
    /// ascending order (with the bitwise-zero skip), so every
    /// implementation is bitwise identical to six
    /// [`KernelBackend::fma_row`] sweeps. `FAST` selects the fused
    /// inference contract of [`KernelBackend::fma_row_fast`] instead.
    fn fma_panel6<const FAST: bool>(acc: [&mut [f32]; 6], a: [&[f32]; 6], b: &[f32], n: usize) {
        let klen = a[0].len();
        for (accr, arow) in acc.into_iter().zip(a) {
            if FAST {
                for (dk, &av) in arow.iter().enumerate() {
                    Self::fma_row_fast(accr, av, &b[dk * n..(dk + 1) * n]);
                }
                continue;
            }
            let mut dk = 0;
            while dk + 4 <= klen {
                let a4 = [arow[dk], arow[dk + 1], arow[dk + 2], arow[dk + 3]];
                let b4 = [
                    &b[dk * n..(dk + 1) * n],
                    &b[(dk + 1) * n..(dk + 2) * n],
                    &b[(dk + 2) * n..(dk + 3) * n],
                    &b[(dk + 3) * n..(dk + 4) * n],
                ];
                Self::fma_row4(accr, a4, b4);
                dk += 4;
            }
            for (off, &av) in arow[dk..].iter().enumerate() {
                let kk = dk + off;
                Self::fma_row(accr, av, &b[kk * n..(kk + 1) * n]);
            }
        }
    }

    /// Ascending-order dot product (training path).
    fn dot(a: &[f32], b: &[f32]) -> f32 {
        a.iter().zip(b).map(|(&x, &y)| x * y).sum()
    }

    /// Inference-only dot product: 8 lane accumulators with fused
    /// multiply-adds, reduced through [`reduce_lanes8`], scalar-FMA tail.
    /// Bitwise identical between the portable and AVX2 backends; within a
    /// documented ULP bound of [`KernelBackend::dot`].
    fn dot_fast(a: &[f32], b: &[f32]) -> f32 {
        let ca = a.chunks_exact(8);
        let cb = b.chunks_exact(8);
        let (ta, tb) = (ca.remainder(), cb.remainder());
        let mut lanes = [0.0f32; 8];
        for (x8, y8) in ca.zip(cb) {
            for i in 0..8 {
                lanes[i] = x8[i].mul_add(y8[i], lanes[i]);
            }
        }
        let mut acc = reduce_lanes8(lanes);
        for (&x, &y) in ta.iter().zip(tb) {
            acc = x.mul_add(y, acc);
        }
        acc
    }

    /// Ascending-order sum (training path).
    fn sum(xs: &[f32]) -> f32 {
        xs.iter().sum()
    }

    /// Inference-only sum: 8 lane accumulators + fixed tree + tail.
    fn sum_fast(xs: &[f32]) -> f32 {
        let chunks = xs.chunks_exact(8);
        let tail = chunks.remainder();
        let mut lanes = [0.0f32; 8];
        for x8 in chunks {
            for i in 0..8 {
                lanes[i] += x8[i];
            }
        }
        let mut acc = reduce_lanes8(lanes);
        for &x in tail {
            acc += x;
        }
        acc
    }

    /// Ascending-order `Σ (x - mean)²` (training path; the LayerNorm
    /// variance reduction).
    fn sq_diff_sum(xs: &[f32], mean: f32) -> f32 {
        xs.iter().map(|&v| (v - mean) * (v - mean)).sum()
    }

    /// Inference-only `Σ (x - mean)²` through the fixed lane tree.
    fn sq_diff_sum_fast(xs: &[f32], mean: f32) -> f32 {
        let chunks = xs.chunks_exact(8);
        let tail = chunks.remainder();
        let mut lanes = [0.0f32; 8];
        for x8 in chunks {
            for i in 0..8 {
                let d = x8[i] - mean;
                lanes[i] = d.mul_add(d, lanes[i]);
            }
        }
        let mut acc = reduce_lanes8(lanes);
        for &x in tail {
            let d = x - mean;
            acc = d.mul_add(d, acc);
        }
        acc
    }

    /// `row[i] *= s` (element-wise, bitwise identical on every backend).
    fn scale(row: &mut [f32], s: f32) {
        for x in row {
            *x *= s;
        }
    }

    /// `dst[i] = (x[i] - mean) * inv_std` (element-wise).
    fn normalize_row(dst: &mut [f32], x: &[f32], mean: f32, inv_std: f32) {
        for (d, &v) in dst.iter_mut().zip(x) {
            *d = (v - mean) * inv_std;
        }
    }

    /// `dst[i] = xhat[i] * gamma[i] + beta[i]` (element-wise; separate
    /// multiply and add, never fused, on the training path).
    fn affine_row(dst: &mut [f32], xhat: &[f32], gamma: &[f32], beta: &[f32]) {
        for ((d, &xh), (&g, &bt)) in dst.iter_mut().zip(xhat).zip(gamma.iter().zip(beta)) {
            *d = xh * g + bt;
        }
    }
}

/// Reduces 8 lane accumulators in the fixed order the AVX2 horizontal-add
/// sequence produces (`vextractf128` + `movehl` + shuffle):
/// `((l0+l4) + (l2+l6)) + ((l1+l5) + (l3+l7))`. The portable fast path
/// reduces through this exact tree so portable and AVX2 fast results are
/// bitwise identical.
#[inline]
pub(crate) fn reduce_lanes8(l: [f32; 8]) -> f32 {
    let s0 = l[0] + l[4];
    let s1 = l[1] + l[5];
    let s2 = l[2] + l[6];
    let s3 = l[3] + l[7];
    (s0 + s2) + (s1 + s3)
}

/// The plain scalar loops — the semantic reference backend. Every method
/// is the trait default.
pub(crate) struct ScalarKernels;

impl KernelBackend for ScalarKernels {
    const NAME: &'static str = "scalar";
}

/// Safe-Rust 8-lane backend: the `Backend::Simd` fallback when AVX2 is
/// unavailable (or the `simd` feature is off). Element-wise loops are
/// chunked by 8 so the auto-vectorizer can keep up with the baseline
/// target features; reductions use the trait defaults (ascending on the
/// training path, the AVX2-mirroring lane tree on `*_fast`).
pub(crate) struct PortableKernels;

impl KernelBackend for PortableKernels {
    const NAME: &'static str = "simd-portable";

    fn fma_row(acc: &mut [f32], a: f32, b: &[f32]) {
        // analyze: allow(float-equality) — exact-zero sparsity fast path; skipping only bitwise zeros cannot change the accumulated sum
        if a == 0.0 {
            return;
        }
        let ca = acc.chunks_exact_mut(8);
        let cb = b.chunks_exact(8);
        let tb = cb.remainder();
        let mut tail_at = 0;
        for (x8, y8) in ca.zip(cb) {
            for i in 0..8 {
                x8[i] += a * y8[i];
            }
            tail_at += 8;
        }
        for (x, &y) in acc[tail_at..].iter_mut().zip(tb) {
            *x += a * y;
        }
    }

    fn fma_row4(acc: &mut [f32], a: [f32; 4], b: [&[f32]; 4]) {
        if a.contains(&0.0) {
            for (&av, &bv) in a.iter().zip(&b) {
                Self::fma_row(acc, av, bv);
            }
            return;
        }
        let (b0, b1, b2, b3) = (b[0], b[1], b[2], b[3]);
        let mut j = 0;
        while j + 8 <= acc.len() {
            for l in j..j + 8 {
                acc[l] = (((acc[l] + a[0] * b0[l]) + a[1] * b1[l]) + a[2] * b2[l]) + a[3] * b3[l];
            }
            j += 8;
        }
        while j < acc.len() {
            acc[j] = (((acc[j] + a[0] * b0[j]) + a[1] * b1[j]) + a[2] * b2[j]) + a[3] * b3[j];
            j += 1;
        }
    }

    fn fma_row_fast(acc: &mut [f32], a: f32, b: &[f32]) {
        // analyze: allow(float-equality) — exact-zero sparsity fast path; skipping only bitwise zeros cannot change the accumulated sum
        if a == 0.0 {
            return;
        }
        let mut j = 0;
        while j + 8 <= acc.len() {
            for l in j..j + 8 {
                acc[l] = a.mul_add(b[l], acc[l]);
            }
            j += 8;
        }
        while j < acc.len() {
            acc[j] = a.mul_add(b[j], acc[j]);
            j += 1;
        }
    }

    fn scale(row: &mut [f32], s: f32) {
        let chunks = row.chunks_exact_mut(8);
        let mut tail_at = 0;
        for x8 in chunks {
            for x in x8 {
                *x *= s;
            }
            tail_at += 8;
        }
        for x in &mut row[tail_at..] {
            *x *= s;
        }
    }

    fn normalize_row(dst: &mut [f32], x: &[f32], mean: f32, inv_std: f32) {
        let cd = dst.chunks_exact_mut(8);
        let cx = x.chunks_exact(8);
        let tx = cx.remainder();
        let mut tail_at = 0;
        for (d8, x8) in cd.zip(cx) {
            for i in 0..8 {
                d8[i] = (x8[i] - mean) * inv_std;
            }
            tail_at += 8;
        }
        for (d, &v) in dst[tail_at..].iter_mut().zip(tx) {
            *d = (v - mean) * inv_std;
        }
    }

    fn affine_row(dst: &mut [f32], xhat: &[f32], gamma: &[f32], beta: &[f32]) {
        let mut j = 0;
        while j + 8 <= dst.len() {
            for l in j..j + 8 {
                dst[l] = xhat[l] * gamma[l] + beta[l];
            }
            j += 8;
        }
        while j < dst.len() {
            dst[j] = xhat[j] * gamma[j] + beta[j];
            j += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vecs(n: usize) -> (Vec<f32>, Vec<f32>) {
        let a: Vec<f32> = (0..n).map(|i| ((i * 37 % 19) as f32 - 9.0) * 0.37).collect();
        let b: Vec<f32> = (0..n).map(|i| ((i * 53 % 23) as f32 - 11.0) * 0.21).collect();
        (a, b)
    }

    #[test]
    fn portable_training_ops_match_scalar_bitwise() {
        for n in [0, 1, 5, 7, 8, 9, 16, 31, 64, 100] {
            let (a, b) = vecs(n);
            let mut acc_s = a.clone();
            let mut acc_p = a.clone();
            ScalarKernels::fma_row(&mut acc_s, 0.77, &b);
            PortableKernels::fma_row(&mut acc_p, 0.77, &b);
            assert_eq!(
                acc_s.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                acc_p.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                "fma_row width {n}"
            );
            assert_eq!(
                ScalarKernels::dot(&a, &b).to_bits(),
                PortableKernels::dot(&a, &b).to_bits(),
                "dot width {n}"
            );
            let mut r_s = a.clone();
            let mut r_p = a.clone();
            ScalarKernels::scale(&mut r_s, 1.3);
            PortableKernels::scale(&mut r_p, 1.3);
            assert_eq!(r_s, r_p, "scale width {n}");
        }
    }

    #[test]
    fn fma_row4_equals_four_fma_rows_bitwise() {
        for n in [1, 7, 8, 13, 32] {
            let (x, y) = vecs(n);
            let coeffs = [0.3f32, -1.25, 0.875, 2.5];
            let rows: Vec<Vec<f32>> =
                (0..4).map(|s| y.iter().map(|v| v * (s as f32 + 0.5)).collect()).collect();
            let refs = [&rows[0][..], &rows[1][..], &rows[2][..], &rows[3][..]];
            let mut via4 = x.clone();
            ScalarKernels::fma_row4(&mut via4, coeffs, refs);
            let mut via1 = x.clone();
            for (s, r) in refs.iter().enumerate() {
                ScalarKernels::fma_row(&mut via1, coeffs[s], r);
            }
            assert_eq!(
                via4.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                via1.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "width {n}"
            );
            let mut viap = x.clone();
            PortableKernels::fma_row4(&mut viap, coeffs, refs);
            assert_eq!(
                viap.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                via1.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "portable width {n}"
            );
        }
    }

    #[test]
    fn fma_row_skips_bitwise_zero_scale() {
        // The skip is semantic, not an optimization: with an infinite b
        // entry, 0.0 * inf would be NaN if the row were not skipped.
        let mut acc = vec![1.0f32, 2.0];
        ScalarKernels::fma_row(&mut acc, 0.0, &[f32::INFINITY, 1.0]);
        assert_eq!(acc, vec![1.0, 2.0]);
        PortableKernels::fma_row(&mut acc, -0.0, &[f32::INFINITY, 1.0]);
        assert_eq!(acc, vec![1.0, 2.0]);
    }

    #[test]
    fn fast_reductions_are_close_and_tree_is_fixed() {
        let (a, b) = vecs(1000);
        let exact: f64 = a.iter().zip(&b).map(|(&x, &y)| f64::from(x) * f64::from(y)).sum();
        let fast = PortableKernels::dot_fast(&a, &b);
        assert!((f64::from(fast) - exact).abs() < 1e-2, "dot_fast drifted: {fast} vs {exact}");
        // The lane tree is a fixed reassociation: same inputs, same bits,
        // independent of how the caller chunks its rows.
        assert_eq!(fast.to_bits(), PortableKernels::dot_fast(&a, &b).to_bits());
        let s = PortableKernels::sum_fast(&a);
        let s_exact: f64 = a.iter().map(|&x| f64::from(x)).sum();
        assert!((f64::from(s) - s_exact).abs() < 1e-2);
    }

    #[test]
    fn backend_request_roundtrip() {
        assert_eq!(backend(), Backend::Scalar);
        set_backend(Backend::Simd);
        assert_eq!(backend(), Backend::Simd);
        let name = active_backend();
        assert!(name == "simd-portable" || name == "simd-avx2", "unexpected backend {name}");
        set_backend(Backend::Scalar);
        assert_eq!(active_backend(), "scalar");
    }
}
