use std::error::Error;
use std::fmt;

/// Error returned when two operands have incompatible shapes.
///
/// Produced by the fallible `try_*` constructors and operations on
/// [`Matrix`](crate::Matrix). The infallible counterparts panic with the same
/// message instead.
///
/// # Examples
///
/// ```
/// use hoga_tensor::Matrix;
///
/// let err = Matrix::try_from_vec(2, 3, vec![0.0; 5]).unwrap_err();
/// assert!(err.to_string().contains("expected"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    op: &'static str,
    expected: String,
    found: String,
}

impl ShapeError {
    /// Creates a shape error for operation `op` with human-readable
    /// `expected` / `found` shape descriptions.
    pub fn new(op: &'static str, expected: impl Into<String>, found: impl Into<String>) -> Self {
        Self { op, expected: expected.into(), found: found.into() }
    }

    /// The operation that failed (e.g. `"matmul"`).
    pub fn op(&self) -> &'static str {
        self.op
    }
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shape mismatch in {}: expected {}, found {}", self.op, self.expected, self.found)
    }
}

impl Error for ShapeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_op_and_shapes() {
        let e = ShapeError::new("matmul", "(2, 3)", "(4, 5)");
        let s = e.to_string();
        assert!(s.contains("matmul"));
        assert!(s.contains("(2, 3)"));
        assert!(s.contains("(4, 5)"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ShapeError>();
    }
}
