//! Int8 row-quantized inference kernels.
//!
//! This module implements the quantization scheme behind the `Int8`
//! inference precision (see `docs/PERFORMANCE.md` for the full contract):
//!
//! * **Activations** ([`QuantizedMatrix`]) are quantized *per row* with an
//!   asymmetric affine map `x ≈ scale · (q − zero_point)`, `q ∈ [-128, 127]`.
//!   Per-row parameters track the wildly different dynamic ranges of
//!   hop-wise embeddings within one batch.
//! * **Weights** ([`QuantizedWeights`]) are quantized *per column* with a
//!   symmetric map `w ≈ scale · q`, `q ∈ [-127, 127]`, and carry
//!   precomputed per-column sums of the quantized values.
//! * [`qmatmul`] multiplies the two in pure `i32` arithmetic and
//!   dequantizes at the end:
//!
//!   ```text
//!   y[i][j] = sa[i] · sw[j] · ( Σ_k qa[i][k]·qw[k][j]  −  za[i] · colsum[j] )
//!   ```
//!
//!   The `za·colsum` correction folds the activation zero-point out of the
//!   inner loop, so the hot loop is a plain `i8×i8 → i32` dot product.
//!
//! The `i32` accumulator is exact: `|qa·qw| ≤ 128·127`, so overflow needs
//! `k > i32::MAX / 16256 ≈ 1.3e5` — far beyond any HOGA hop-stack width.
//! Like every kernel in this crate, the output is a pure function of the
//! inputs: quantization parameters derive only from the data, and the i32
//! dot product is exact regardless of association, so results never depend
//! on the thread count.

use crate::matrix::Matrix;
use crate::parallel::parallel_chunks;

/// Products below this many `i8` MACs run single-threaded.
const PARALLEL_MACS: usize = 1 << 18;

/// An activation matrix quantized row-wise to `i8` with an asymmetric
/// affine map `x ≈ scale[r] · (q − zero_point[r])`.
#[derive(Debug, Clone)]
pub struct QuantizedMatrix {
    q: Vec<i8>,
    rows: usize,
    cols: usize,
    scale: Vec<f32>,
    zero_point: Vec<i32>,
}

impl QuantizedMatrix {
    /// Quantizes `x` row by row.
    ///
    /// Each row maps its `[min, max]` range (always widened to include
    /// `0.0`, so the zero-point is exact) onto `[-128, 127]`. A constant
    /// row degenerates to a symmetric map so that the single value is
    /// still representable.
    pub fn quantize(x: &Matrix) -> Self {
        let (rows, cols) = (x.rows(), x.cols());
        let mut q = vec![0i8; rows * cols];
        let mut scale = vec![1.0f32; rows];
        let mut zero_point = vec![0i32; rows];
        for r in 0..rows {
            let row = x.row(r);
            // Widen the range to include zero so zero quantizes exactly —
            // ReLU outputs and padded rows stay exactly zero after
            // round-tripping.
            let (mut lo, mut hi) = (0.0f32, 0.0f32);
            for &v in row {
                if v < lo {
                    lo = v;
                }
                if v > hi {
                    hi = v;
                }
            }
            let span = hi - lo;
            let (s, zp) = if span > 0.0 {
                let s = span / 255.0;
                // zero_point = qmin − lo/s, rounded; lo ≤ 0 ≤ hi keeps it
                // inside [-128, 127].
                // analyze: allow(panic-reachability) — f32 division: s = span/255 > 0 here, and float /0 is inf, never a panic
                (s, (-128.0 - lo / s).round() as i32)
            } else {
                // Constant row: hi == lo == 0 here because the range was
                // widened through zero, so everything quantizes to 0.
                (1.0, 0)
            };
            scale[r] = s;
            zero_point[r] = zp;
            let qrow = &mut q[r * cols..(r + 1) * cols];
            for (qv, &v) in qrow.iter_mut().zip(row) {
                // analyze: allow(panic-reachability) — f32 division: s > 0 on both branches above; float /0 is inf, never a panic
                let t = (v / s).round() as i32 + zp;
                *qv = t.clamp(-128, 127) as i8;
            }
        }
        Self { q, rows, cols, scale, zero_point }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Reconstructs the `f32` matrix `scale[r] · (q − zero_point[r])`.
    ///
    /// Used by the differential tests to measure round-trip error; the
    /// inference path never rematerializes activations.
    pub fn dequantize(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            let qrow = &self.q[r * self.cols..(r + 1) * self.cols];
            let (s, zp) = (self.scale[r], self.zero_point[r]);
            for (o, &qv) in out.row_mut(r).iter_mut().zip(qrow) {
                *o = s * (qv as i32 - zp) as f32;
            }
        }
        out
    }
}

/// A `k × n` weight matrix quantized column-wise to `i8` with a symmetric
/// map `w ≈ scale[c] · q`, plus precomputed per-column sums of `q` for the
/// zero-point correction in [`qmatmul`].
#[derive(Debug, Clone)]
pub struct QuantizedWeights {
    q: Vec<i8>,
    k: usize,
    n: usize,
    scale: Vec<f32>,
    col_sums: Vec<i32>,
}

impl QuantizedWeights {
    /// Quantizes a `k × n` weight matrix column by column.
    ///
    /// Symmetric per-column scales (`max |w| / 127`); an all-zero column
    /// gets scale `1.0`. Weights quantize once per model load, so this is
    /// deliberately simple.
    pub fn quantize(w: &Matrix) -> Self {
        let (k, n) = (w.rows(), w.cols());
        let mut max_abs = vec![0.0f32; n];
        for r in 0..k {
            for (c, &v) in w.row(r).iter().enumerate() {
                let a = v.abs();
                if a > max_abs[c] {
                    max_abs[c] = a;
                }
            }
        }
        let scale: Vec<f32> =
            max_abs.iter().map(|&m| if m > 0.0 { m / 127.0 } else { 1.0 }).collect();
        let mut q = vec![0i8; k * n];
        let mut col_sums = vec![0i32; n];
        for r in 0..k {
            let wrow = w.row(r);
            let qrow = &mut q[r * n..(r + 1) * n];
            for c in 0..n {
                let t = (wrow[c] / scale[c]).round() as i32;
                let qv = t.clamp(-127, 127) as i8;
                qrow[c] = qv;
                col_sums[c] += qv as i32;
            }
        }
        Self { q, k, n, scale, col_sums }
    }

    /// Shared (inner) dimension `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Output dimension `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Reconstructs the `f32` weight matrix `scale[c] · q`.
    pub fn dequantize(&self) -> Matrix {
        let mut out = Matrix::zeros(self.k, self.n);
        for r in 0..self.k {
            let qrow = &self.q[r * self.n..(r + 1) * self.n];
            for (c, (o, &qv)) in out.row_mut(r).iter_mut().zip(qrow).enumerate() {
                *o = self.scale[c] * qv as f32;
            }
        }
        out
    }
}

/// Int8 matrix product `a · w` with dequantized `f32` output.
///
/// The inner loop accumulates `i8 × i8` products in `i32` (exact — see the
/// module docs), then applies the per-row/per-column affine correction
/// once per output element. Rows of the output are independent, so the
/// product parallelizes over row chunks exactly like `Matrix::matmul`;
/// the integer accumulation is association-free, making the result
/// thread-count invariant bit for bit.
///
/// Under [`Backend::Simd`](crate::Backend) (with the `simd` feature, on a
/// CPU with AVX2) each row chunk runs the `vpmaddwd` kernel in the `simd`
/// module instead; because both paths compute the same exact integer sums
/// and the same dequantizing float expression, the output is bitwise
/// identical across backends too.
///
/// # Panics
///
/// Panics if `a.cols() != w.k()`.
pub fn qmatmul(a: &QuantizedMatrix, w: &QuantizedWeights) -> Matrix {
    assert_eq!(
        a.cols, w.k,
        "shape mismatch in qmatmul: ({}, {}) x ({}, {})",
        a.rows, a.cols, w.k, w.n
    );
    let (m, k, n) = (a.rows, a.cols, w.n);
    let mut out = Matrix::zeros(m, n);
    if m * n == 0 {
        return out;
    }
    let work = |row_start: usize, chunk: &mut [f32]| {
        let rows_here = chunk.len() / n;
        // The AVX2 backend has a dedicated int8 kernel (16 MACs per
        // `vpmaddwd`); integer accumulation is exact, so its output is
        // bitwise identical to the scalar loop below for every input.
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        if matches!(crate::backend::resolved(), crate::backend::ResolvedBackend::Avx2) {
            // In bounds: the shape assert above pins `a.q.len()` to rows·k
            // and the parallel splitter keeps row chunks within rows.
            let qa_range = row_start * k..(row_start + rows_here) * k;
            let row_range = row_start..row_start + rows_here;
            crate::simd::qmatmul_chunk(
                chunk,
                &crate::simd::QOperands {
                    qa: &a.q[qa_range],
                    k,
                    scale: &a.scale[row_range.clone()],
                    zero_point: &a.zero_point[row_range],
                    qw: &w.q,
                    n,
                    w_scale: &w.scale,
                    col_sums: &w.col_sums,
                },
            );
            return;
        }
        let mut acc = vec![0i32; n];
        for i in 0..rows_here {
            let r = row_start + i;
            let qarow = &a.q[r * k..(r + 1) * k];
            acc.fill(0);
            for (kk, &qa) in qarow.iter().enumerate() {
                if qa == 0 {
                    continue;
                }
                let qa = qa as i32;
                let wrow = &w.q[kk * n..(kk + 1) * n];
                for (av, &qw) in acc.iter_mut().zip(wrow) {
                    *av += qa * qw as i32;
                }
            }
            let (sa, za) = (a.scale[r], a.zero_point[r]);
            let orow = &mut chunk[i * n..(i + 1) * n];
            for (j, o) in orow.iter_mut().enumerate() {
                *o = sa * w.scale[j] * (acc[j] - za * w.col_sums[j]) as f32;
            }
        }
    };
    if m * k * n > PARALLEL_MACS {
        parallel_chunks(out.as_mut_slice(), n, |start_row, chunk| work(start_row, chunk));
    } else {
        work(0, out.as_mut_slice());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::Init;

    fn sample(rows: usize, cols: usize, seed: u64) -> Matrix {
        Init::XavierUniform.matrix(rows, cols, seed)
    }

    #[test]
    fn activation_roundtrip_error_is_bounded_by_half_step() {
        let x = sample(7, 33, 11);
        let qx = QuantizedMatrix::quantize(&x);
        let back = qx.dequantize();
        for r in 0..x.rows() {
            let row = x.row(r);
            let span = row.iter().fold(0.0f32, |m, &v| m.max(v.abs())) * 2.0;
            let step = span / 255.0;
            for (a, b) in row.iter().zip(back.row(r)) {
                assert!((a - b).abs() <= 0.5 * step + 1e-6, "row {r}: {a} vs {b} (step {step})");
            }
        }
    }

    #[test]
    fn zero_quantizes_exactly() {
        let x = Matrix::from_rows(&[&[0.0, 1.5, -2.0, 0.0], &[0.0, 0.0, 0.0, 0.0]]);
        let back = QuantizedMatrix::quantize(&x).dequantize();
        assert_eq!(back.row(0)[0], 0.0);
        assert_eq!(back.row(0)[3], 0.0);
        for &v in back.row(1) {
            assert_eq!(v, 0.0);
        }
    }

    #[test]
    fn qmatmul_tracks_f32_matmul() {
        let a = sample(9, 48, 3);
        let w = sample(48, 24, 4);
        let exact = a.matmul(&w);
        let approx = qmatmul(&QuantizedMatrix::quantize(&a), &QuantizedWeights::quantize(&w));
        let scale = exact.as_slice().iter().fold(1e-6f32, |m, &v| m.max(v.abs()));
        for (e, g) in exact.as_slice().iter().zip(approx.as_slice()) {
            assert!(
                (e - g).abs() <= 0.02 * scale,
                "int8 matmul drifted: {e} vs {g} (scale {scale})"
            );
        }
    }

    #[test]
    fn qmatmul_equals_dequantized_reference_product() {
        // The int8 product must be *exactly* the f32 product of the
        // dequantized operands up to the final rounding: verify against
        // a float emulation of the same affine algebra.
        let a = sample(5, 16, 8);
        let w = sample(16, 6, 9);
        let qa = QuantizedMatrix::quantize(&a);
        let qw = QuantizedWeights::quantize(&w);
        let got = qmatmul(&qa, &qw);
        let emulated = qa.dequantize().matmul_reference(&qw.dequantize());
        for (e, g) in emulated.as_slice().iter().zip(got.as_slice()) {
            assert!(
                crate::approx::approx_eq_eps(*e, *g, 1e-4),
                "affine algebra mismatch: {e} vs {g}"
            );
        }
    }

    #[test]
    fn empty_shapes_are_noops() {
        let a = Matrix::zeros(0, 4);
        let w = Matrix::zeros(4, 3);
        let out = qmatmul(&QuantizedMatrix::quantize(&a), &QuantizedWeights::quantize(&w));
        assert_eq!((out.rows(), out.cols()), (0, 3));
        let a = Matrix::zeros(2, 0);
        let w = Matrix::zeros(0, 3);
        let out = qmatmul(&QuantizedMatrix::quantize(&a), &QuantizedWeights::quantize(&w));
        assert_eq!((out.rows(), out.cols()), (2, 3));
        assert!(out.as_slice().iter().all(|&v| v == 0.0));
    }
}
