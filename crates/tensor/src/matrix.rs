use crate::backend::{dispatch, KernelBackend};
use crate::parallel::{parallel_chunks, parallel_map};
use crate::ShapeError;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::Range;
use std::ops::{Add, AddAssign, Mul, Sub};

/// Threshold (in multiply-accumulate operations) above which the matmul
/// family parallelizes across row (or block, or k-) chunks.
const PARALLEL_MACS: usize = 1 << 18;

/// Tile edge for the cache-blocked [`Matrix::transpose`].
const TRANSPOSE_TILE: usize = 32;

/// Rows of the shared dimension per cache panel in [`Matrix::matmul`]. The
/// panel keeps `MATMUL_K_PANEL` rows of `other` hot while sweeping the output
/// rows of a chunk; per-row accumulation order over `k` stays ascending, so
/// results are bitwise identical to the unblocked loop.
const MATMUL_K_PANEL: usize = 64;

/// Picks the k-panel length for [`Matrix::matmul`] so the `other` panel
/// (`len · n · 4` bytes) stays L1-resident: the register-tiled SIMD kernel
/// sweeps the panel once per 16-column tile with a row-length stride, and
/// a panel that spills to L2 turns every sweep into demand misses. Panel
/// boundaries never change results — the per-element `k` chain stays
/// ascending across them — so this is purely a cache decision.
fn matmul_panel_len(n: usize) -> usize {
    const PANEL_BYTES: usize = 24 * 1024;
    (PANEL_BYTES / (4 * n.max(1))).clamp(8, MATMUL_K_PANEL)
}

/// Rows of the shared dimension per partial accumulator in
/// [`Matrix::matmul_tn`].
const TN_K_CHUNK: usize = 128;

/// Upper bound on the number of `matmul_tn` partial accumulators; bounds the
/// `chunks × m × n` scratch memory.
const TN_MAX_CHUNKS: usize = 16;

/// Number of `k`-chunks `matmul_tn` decomposes into — a pure function of the
/// operand shapes, never of the thread count, so the fixed-order reduction
/// over chunk partials yields bitwise-identical floats at any parallelism.
fn tn_chunk_count(m: usize, k: usize, n: usize) -> usize {
    if m * k * n <= PARALLEL_MACS {
        1
    } else {
        k.div_ceil(TN_K_CHUNK).clamp(1, TN_MAX_CHUNKS)
    }
}

/// A dense, row-major `f32` matrix.
///
/// `Matrix` is the single tensor type used throughout the HOGA stack. Batched
/// third-order tensors (e.g. the per-node hop-feature stacks
/// `X ∈ R^{n×(K+1)×d}` of the paper) are represented as `(n·(K+1)) × d`
/// matrices plus a block-row count, and manipulated with the `batched_*`
/// methods.
///
/// # Examples
///
/// ```
/// use hoga_tensor::Matrix;
///
/// let m = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f32);
/// assert_eq!(m.rows(), 2);
/// assert_eq!(m.cols(), 3);
/// assert_eq!(m[(1, 2)], 5.0);
/// ```
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    ///
    /// # Examples
    ///
    /// ```
    /// # use hoga_tensor::Matrix;
    /// let z = Matrix::zeros(2, 2);
    /// assert_eq!(z.sum(), 0.0);
    /// ```
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a `rows × cols` matrix filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self { rows, cols, data: vec![value; rows * cols] }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`. Use [`Matrix::try_from_vec`] for
    /// a fallible variant.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        match Self::try_from_vec(rows, cols, data) {
            Ok(m) => m,
            // analyze: allow(panic-free-paths) — documented panicking wrapper; fallible callers use try_from_vec
            Err(e) => panic!("{e}"),
        }
    }

    /// Creates a matrix from a row-major data vector, checking the length.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] if `data.len() != rows * cols`.
    pub fn try_from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self, ShapeError> {
        if data.len() != rows * cols {
            return Err(ShapeError::new(
                "from_vec",
                format!("expected {} elements for ({rows}, {cols})", rows * cols),
                format!("{}", data.len()),
            ));
        }
        Ok(Self { rows, cols, data })
    }

    /// Creates a matrix from a slice of equally long rows.
    ///
    /// # Panics
    ///
    /// Panics if the rows have differing lengths.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "all rows must have equal length");
            data.extend_from_slice(row);
        }
        Self { rows: r, cols: c, data }
    }

    /// Creates a matrix where entry `(r, c)` is `f(r, c)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrows the underlying row-major data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrows the underlying row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning the row-major data vector.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Returns a new matrix with `f` applied to every element.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        Self { rows: self.rows, cols: self.cols, data: self.data.iter().map(|&x| f(x)).collect() }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Element-wise combination of two equally shaped matrices.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn zip_map(&self, other: &Self, f: impl Fn(f32, f32) -> f32) -> Self {
        self.assert_same_shape(other, "zip_map");
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&other.data).map(|(&a, &b)| f(a, b)).collect(),
        }
    }

    fn assert_same_shape(&self, other: &Self, op: &'static str) {
        assert_eq!(
            self.shape(),
            other.shape(),
            "shape mismatch in {op}: {:?} vs {:?}",
            self.shape(),
            other.shape()
        );
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn hadamard(&self, other: &Self) -> Self {
        self.zip_map(other, |a, b| a * b)
    }

    /// Multiplies every element by `s`, returning a new matrix.
    pub fn scale(&self, s: f32) -> Self {
        self.map(|x| x * s)
    }

    /// `self += alpha * other` (BLAS `axpy`).
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Self) {
        self.assert_same_shape(other, "axpy");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements; `0.0` for an empty matrix.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum::<f32>().sqrt()
    }

    /// Maximum absolute element; `0.0` for an empty matrix.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }

    /// Per-row sums as a `rows × 1` column vector.
    pub fn row_sums(&self) -> Self {
        let data = (0..self.rows).map(|r| self.row(r).iter().sum()).collect();
        Self { rows: self.rows, cols: 1, data }
    }

    /// Per-column sums as a `1 × cols` row vector.
    pub fn col_sums(&self) -> Self {
        let mut data = vec![0.0; self.cols];
        for r in 0..self.rows {
            for (acc, &x) in data.iter_mut().zip(self.row(r)) {
                *acc += x;
            }
        }
        Self { rows: 1, cols: self.cols, data }
    }

    /// Transposed copy, walked in `TRANSPOSE_TILE²` tiles so both the source
    /// rows and the destination rows stay cache-resident.
    pub fn transpose(&self) -> Self {
        let mut out = Self::zeros(self.cols, self.rows);
        for rb in (0..self.rows).step_by(TRANSPOSE_TILE) {
            let rend = (rb + TRANSPOSE_TILE).min(self.rows);
            for cb in (0..self.cols).step_by(TRANSPOSE_TILE) {
                let cend = (cb + TRANSPOSE_TILE).min(self.cols);
                for r in rb..rend {
                    for c in cb..cend {
                        out.data[c * self.rows + r] = self.data[r * self.cols + c];
                    }
                }
            }
        }
        out
    }

    /// Naive element-at-a-time transpose kept as the differential-testing
    /// oracle for the tiled [`Matrix::transpose`].
    pub fn transpose_reference(&self) -> Self {
        let mut out = Self::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Matrix product `self · other`, parallelized over row chunks for large
    /// operands and cache-blocked over `MATMUL_K_PANEL`-row panels of `other`.
    ///
    /// Per output row the accumulation order over the shared dimension stays
    /// ascending, so results are bitwise identical for every panel size and
    /// thread count.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()`.
    pub fn matmul(&self, other: &Self) -> Self {
        dispatch!(B => self.matmul_impl::<B, false>(other))
    }

    /// Inference-only `self · other`: same shape contract as
    /// [`Matrix::matmul`], but the inner loop may fuse multiply-adds, so
    /// results are ULP-bounded against [`Matrix::matmul_reference`] instead
    /// of bitwise identical (see `docs/PERFORMANCE.md`). Still a pure
    /// function of the operands for a fixed backend resolution.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()`.
    pub fn matmul_fast(&self, other: &Self) -> Self {
        dispatch!(B => self.matmul_impl::<B, true>(other))
    }

    fn matmul_impl<B: KernelBackend, const FAST: bool>(&self, other: &Self) -> Self {
        assert_eq!(
            self.cols, other.rows,
            "shape mismatch in matmul: ({}, {}) x ({}, {})",
            self.rows, self.cols, other.rows, other.cols
        );
        let (m, k, n) = (self.rows, self.cols, other.cols);
        let mut out = Self::zeros(m, n);
        if out.data.is_empty() {
            return out;
        }
        let parallel = m * k * n > PARALLEL_MACS;
        let a = &self.data;
        let b = &other.data;
        let panel = matmul_panel_len(n);
        let work = |row_start: usize, chunk: &mut [f32]| {
            let rows_here = chunk.len() / n;
            for kb in (0..k).step_by(panel) {
                let kend = (kb + panel).min(k);
                let bpanel = &b[kb * n..kend * n];
                let arow = |i: usize| &a[(row_start + i) * k + kb..(row_start + i) * k + kend];
                // Six output rows share each b panel (bitwise equal to
                // six single-row sweeps; see KernelBackend::fma_panel6),
                // then the remainder one row at a time.
                let mut i = 0;
                while i + 6 <= rows_here {
                    let (c0, rest) = chunk[i * n..(i + 6) * n].split_at_mut(n);
                    let (c1, rest) = rest.split_at_mut(n);
                    let (c2, rest) = rest.split_at_mut(n);
                    let (c3, rest) = rest.split_at_mut(n);
                    let (c4, c5) = rest.split_at_mut(n);
                    B::fma_panel6::<FAST>(
                        [c0, c1, c2, c3, c4, c5],
                        [arow(i), arow(i + 1), arow(i + 2), arow(i + 3), arow(i + 4), arow(i + 5)],
                        bpanel,
                        n,
                    );
                    i += 6;
                }
                for i in i..rows_here {
                    let arow = arow(i);
                    let crow = &mut chunk[i * n..(i + 1) * n];
                    if FAST {
                        for (dk, &av) in arow.iter().enumerate() {
                            B::fma_row_fast(crow, av, &bpanel[dk * n..(dk + 1) * n]);
                        }
                    } else {
                        // Four k-steps per accumulator pass (bitwise equal to
                        // four single passes; see KernelBackend::fma_row4),
                        // then the remainder one step at a time.
                        let mut dk = 0;
                        while dk + 4 <= arow.len() {
                            let a4 = [arow[dk], arow[dk + 1], arow[dk + 2], arow[dk + 3]];
                            let b4 = [
                                &bpanel[dk * n..(dk + 1) * n],
                                &bpanel[(dk + 1) * n..(dk + 2) * n],
                                &bpanel[(dk + 2) * n..(dk + 3) * n],
                                &bpanel[(dk + 3) * n..(dk + 4) * n],
                            ];
                            B::fma_row4(crow, a4, b4);
                            dk += 4;
                        }
                        for (off, &av) in arow[dk..].iter().enumerate() {
                            B::fma_row(crow, av, &bpanel[(dk + off) * n..(dk + off + 1) * n]);
                        }
                    }
                }
            }
        };
        if parallel {
            parallel_chunks(&mut out.data, n, |start_row, chunk| work(start_row, chunk));
        } else {
            work(0, &mut out.data);
        }
        out
    }

    /// Matrix product `self · otherᵀ` without materializing the transpose.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.cols()`.
    pub fn matmul_nt(&self, other: &Self) -> Self {
        dispatch!(B => self.matmul_nt_impl::<B, false>(other))
    }

    /// Inference-only `self · otherᵀ`: the dot products run on the
    /// backend's lane-parallel fast reduction, ULP-bounded against
    /// [`Matrix::matmul_nt_reference`] (see `docs/PERFORMANCE.md`).
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.cols()`.
    pub fn matmul_nt_fast(&self, other: &Self) -> Self {
        dispatch!(B => self.matmul_nt_impl::<B, true>(other))
    }

    fn matmul_nt_impl<B: KernelBackend, const FAST: bool>(&self, other: &Self) -> Self {
        assert_eq!(
            self.cols, other.cols,
            "shape mismatch in matmul_nt: ({}, {}) x ({}, {})^T",
            self.rows, self.cols, other.rows, other.cols
        );
        let (m, k, n) = (self.rows, self.cols, other.rows);
        let mut out = Self::zeros(m, n);
        if out.data.is_empty() {
            return out;
        }
        let a = &self.data;
        let b = &other.data;
        let work = |row_start: usize, chunk: &mut [f32]| {
            let rows_here = chunk.len() / n;
            for i in 0..rows_here {
                let arow = &a[(row_start + i) * k..(row_start + i + 1) * k];
                for j in 0..n {
                    let brow = &b[j * k..(j + 1) * k];
                    chunk[i * n + j] =
                        if FAST { B::dot_fast(arow, brow) } else { B::dot(arow, brow) };
                }
            }
        };
        if m * k * n > PARALLEL_MACS {
            parallel_chunks(&mut out.data, n, |start_row, chunk| work(start_row, chunk));
        } else {
            work(0, &mut out.data);
        }
        out
    }

    /// Matrix product `selfᵀ · other` without materializing the transpose.
    ///
    /// This is the `dW = Xᵀ·dY` kernel in every linear layer's backward pass.
    /// Because the output is only `cols × other.cols` while the reduction runs
    /// over all `rows`, it parallelizes over the *shared* dimension: the `k`
    /// rows are split into [`tn_chunk_count`] fixed chunks (a pure function of
    /// the shapes), each chunk accumulates its own partial `m × n` buffer, and
    /// the partials are summed in **ascending chunk order**. Fixing both the
    /// chunk decomposition and the reduction order makes the float
    /// reassociation independent of the thread count, so results are bitwise
    /// identical whether one thread or sixteen ran the chunks.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows() != other.rows()`.
    pub fn matmul_tn(&self, other: &Self) -> Self {
        dispatch!(B => self.matmul_tn_impl::<B>(other))
    }

    fn matmul_tn_impl<B: KernelBackend>(&self, other: &Self) -> Self {
        assert_eq!(
            self.rows, other.rows,
            "shape mismatch in matmul_tn: ({}, {})^T x ({}, {})",
            self.rows, self.cols, other.rows, other.cols
        );
        let (m, k, n) = (self.cols, self.rows, other.cols);
        let chunks = tn_chunk_count(m, k, n);
        if chunks <= 1 {
            let mut out = Self::zeros(m, n);
            Self::tn_accumulate::<B>(&self.data, &other.data, m, n, 0..k, &mut out.data);
            return out;
        }
        let rows_per = k.div_ceil(chunks);
        let partials: Vec<Vec<f32>> = parallel_map(chunks, |ci| {
            let lo = ci * rows_per;
            let hi = ((ci + 1) * rows_per).min(k);
            let mut partial = vec![0.0f32; m * n];
            Self::tn_accumulate::<B>(&self.data, &other.data, m, n, lo..hi, &mut partial);
            partial
        });
        // Reduce the partials in ascending chunk order — parallel_map returns
        // them in task order, so this sum order never depends on scheduling.
        let mut out = Self::zeros(m, n);
        for partial in &partials {
            for (ov, &pv) in out.data.iter_mut().zip(partial) {
                *ov += pv;
            }
        }
        out
    }

    /// Accumulates `out += a[kk]ᵀ · b[kk]` for the shared-dimension rows `kk`
    /// in `range`, in ascending order. Shared by the sequential and chunked
    /// paths of [`Matrix::matmul_tn`] so both run the identical inner loop.
    fn tn_accumulate<B: KernelBackend>(
        a: &[f32],
        b: &[f32],
        m: usize,
        n: usize,
        range: Range<usize>,
        out: &mut [f32],
    ) {
        for kk in range {
            let arow = &a[kk * m..(kk + 1) * m];
            let brow = &b[kk * n..(kk + 1) * n];
            for (i, &av) in arow.iter().enumerate() {
                let orow = &mut out[i * n..(i + 1) * n];
                B::fma_row(orow, av, brow);
            }
        }
    }

    /// Batched matrix product over `batch` stacked blocks.
    ///
    /// `self` is interpreted as `batch` stacked `(rows/batch) × cols` blocks
    /// and `other` as `batch` stacked `(other.rows/batch) × other.cols`
    /// blocks; block `i` of the result is `self_i · other_i`.
    ///
    /// # Panics
    ///
    /// Panics if either operand's row count is not divisible by `batch`, or
    /// if the per-block inner dimensions disagree.
    pub fn batched_matmul(&self, other: &Self, batch: usize) -> Self {
        dispatch!(B => self.batched_matmul_impl::<B, false>(other, batch))
    }

    /// Inference-only batched product: same shape contract as
    /// [`Matrix::batched_matmul`], but the inner loop may fuse
    /// multiply-adds, so results are ULP-bounded against
    /// [`Matrix::batched_matmul_reference`] instead of bitwise identical.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Matrix::batched_matmul`].
    pub fn batched_matmul_fast(&self, other: &Self, batch: usize) -> Self {
        dispatch!(B => self.batched_matmul_impl::<B, true>(other, batch))
    }

    fn batched_matmul_impl<B: KernelBackend, const FAST: bool>(
        &self,
        other: &Self,
        batch: usize,
    ) -> Self {
        assert!(batch > 0, "batch must be positive");
        assert_eq!(self.rows % batch, 0, "lhs rows {} not divisible by batch {batch}", self.rows);
        assert_eq!(other.rows % batch, 0, "rhs rows {} not divisible by batch {batch}", other.rows);
        let br_a = self.rows / batch;
        let br_b = other.rows / batch;
        assert_eq!(
            self.cols, br_b,
            "shape mismatch in batched_matmul: block ({br_a}, {}) x ({br_b}, {})",
            self.cols, other.cols
        );
        let n = other.cols;
        let k = self.cols;
        let mut out = Self::zeros(batch * br_a, n);
        if out.data.is_empty() {
            return out;
        }
        // Blocks are independent, so parallelize with block-aligned chunks;
        // per-block arithmetic is unchanged, making the result thread-count
        // invariant bit for bit.
        let block_elems = br_a * n;
        let a = &self.data;
        let b = &other.data;
        let work = |block_start: usize, region: &mut [f32]| {
            for (bo, block) in region.chunks_mut(block_elems).enumerate() {
                let bi = block_start + bo;
                for i in 0..br_a {
                    let arow = &a[(bi * br_a + i) * k..(bi * br_a + i + 1) * k];
                    let orow = &mut block[i * n..(i + 1) * n];
                    if FAST {
                        for (kk, &av) in arow.iter().enumerate() {
                            let brow = &b[(bi * br_b + kk) * n..(bi * br_b + kk + 1) * n];
                            B::fma_row_fast(orow, av, brow);
                        }
                    } else {
                        for (kk, &av) in arow.iter().enumerate() {
                            let brow = &b[(bi * br_b + kk) * n..(bi * br_b + kk + 1) * n];
                            B::fma_row(orow, av, brow);
                        }
                    }
                }
            }
        };
        if batch * br_a * k * n > PARALLEL_MACS {
            parallel_chunks(&mut out.data, block_elems, |start_block, region| {
                work(start_block, region)
            });
        } else {
            work(0, &mut out.data);
        }
        out
    }

    /// Batched product `self_i · other_iᵀ` over `batch` stacked blocks.
    ///
    /// # Panics
    ///
    /// Panics under the same divisibility conditions as
    /// [`Matrix::batched_matmul`], or if the operands' column counts differ.
    pub fn batched_matmul_nt(&self, other: &Self, batch: usize) -> Self {
        dispatch!(B => self.batched_matmul_nt_impl::<B, false>(other, batch))
    }

    /// Inference-only `self_i · other_iᵀ`: the dot products run on the
    /// backend's lane-parallel fast reduction, ULP-bounded against
    /// [`Matrix::batched_matmul_nt_reference`].
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Matrix::batched_matmul_nt`].
    pub fn batched_matmul_nt_fast(&self, other: &Self, batch: usize) -> Self {
        dispatch!(B => self.batched_matmul_nt_impl::<B, true>(other, batch))
    }

    fn batched_matmul_nt_impl<B: KernelBackend, const FAST: bool>(
        &self,
        other: &Self,
        batch: usize,
    ) -> Self {
        assert!(batch > 0, "batch must be positive");
        assert_eq!(self.rows % batch, 0, "lhs rows {} not divisible by batch {batch}", self.rows);
        assert_eq!(other.rows % batch, 0, "rhs rows {} not divisible by batch {batch}", other.rows);
        assert_eq!(
            self.cols, other.cols,
            "shape mismatch in batched_matmul_nt: inner dims {} vs {}",
            self.cols, other.cols
        );
        let br_a = self.rows / batch;
        let br_b = other.rows / batch;
        let k = self.cols;
        let mut out = Self::zeros(batch * br_a, br_b);
        if out.data.is_empty() {
            return out;
        }
        // Per-step QKᵀ of Eq. 7: each block is an independent (K+1)×(K+1)
        // score tile, so parallelize over block-aligned chunks. Every dot
        // product is computed identically at any thread count.
        let block_elems = br_a * br_b;
        let a = &self.data;
        let b = &other.data;
        let work = |block_start: usize, region: &mut [f32]| {
            for (bo, block) in region.chunks_mut(block_elems).enumerate() {
                let bi = block_start + bo;
                for i in 0..br_a {
                    let arow = &a[(bi * br_a + i) * k..(bi * br_a + i + 1) * k];
                    for j in 0..br_b {
                        let brow = &b[(bi * br_b + j) * k..(bi * br_b + j + 1) * k];
                        block[i * br_b + j] =
                            if FAST { B::dot_fast(arow, brow) } else { B::dot(arow, brow) };
                    }
                }
            }
        };
        if batch * br_a * k * br_b > PARALLEL_MACS {
            parallel_chunks(&mut out.data, block_elems, |start_block, region| {
                work(start_block, region)
            });
        } else {
            work(0, &mut out.data);
        }
        out
    }

    /// Batched product `self_iᵀ · other_i` over `batch` stacked blocks.
    ///
    /// # Panics
    ///
    /// Panics if the operands' per-block row counts differ or rows are not
    /// divisible by `batch`.
    pub fn batched_matmul_tn(&self, other: &Self, batch: usize) -> Self {
        dispatch!(B => self.batched_matmul_tn_impl::<B>(other, batch))
    }

    fn batched_matmul_tn_impl<B: KernelBackend>(&self, other: &Self, batch: usize) -> Self {
        assert!(batch > 0, "batch must be positive");
        assert_eq!(self.rows % batch, 0, "lhs rows {} not divisible by batch {batch}", self.rows);
        assert_eq!(other.rows % batch, 0, "rhs rows {} not divisible by batch {batch}", other.rows);
        let br_a = self.rows / batch;
        let br_b = other.rows / batch;
        assert_eq!(br_a, br_b, "shape mismatch in batched_matmul_tn: block rows {br_a} vs {br_b}");
        let n = other.cols;
        let cols = self.cols;
        let mut out = Self::zeros(batch * cols, n);
        if out.data.is_empty() {
            return out;
        }
        // Backward of the batched attention products: blocks are independent,
        // so parallelize over block-aligned chunks; within a block the shared
        // dimension is swept in ascending order exactly as before.
        let block_elems = cols * n;
        let a = &self.data;
        let b = &other.data;
        let work = |block_start: usize, region: &mut [f32]| {
            for (bo, block) in region.chunks_mut(block_elems).enumerate() {
                let bi = block_start + bo;
                for kk in 0..br_a {
                    let arow = &a[(bi * br_a + kk) * cols..(bi * br_a + kk + 1) * cols];
                    let brow = &b[(bi * br_b + kk) * n..(bi * br_b + kk + 1) * n];
                    for (i, &av) in arow.iter().enumerate() {
                        let orow = &mut block[i * n..(i + 1) * n];
                        B::fma_row(orow, av, brow);
                    }
                }
            }
        };
        if batch * br_a * cols * n > PARALLEL_MACS {
            parallel_chunks(&mut out.data, block_elems, |start_block, region| {
                work(start_block, region)
            });
        } else {
            work(0, &mut out.data);
        }
        out
    }

    /// Naive triple-loop `self · other` kept as the differential-testing
    /// oracle for the blocked, parallel [`Matrix::matmul`].
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()`.
    pub fn matmul_reference(&self, other: &Self) -> Self {
        assert_eq!(
            self.cols, other.rows,
            "shape mismatch in matmul_reference: ({}, {}) x ({}, {})",
            self.rows, self.cols, other.rows, other.cols
        );
        let (m, k, n) = (self.rows, self.cols, other.cols);
        let mut out = Self::zeros(m, n);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for kk in 0..k {
                    acc += self.data[i * k + kk] * other.data[kk * n + j];
                }
                out.data[i * n + j] = acc;
            }
        }
        out
    }

    /// Naive `self · otherᵀ` oracle for [`Matrix::matmul_nt`].
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.cols()`.
    pub fn matmul_nt_reference(&self, other: &Self) -> Self {
        assert_eq!(
            self.cols, other.cols,
            "shape mismatch in matmul_nt_reference: ({}, {}) x ({}, {})^T",
            self.rows, self.cols, other.rows, other.cols
        );
        let (m, k, n) = (self.rows, self.cols, other.rows);
        let mut out = Self::zeros(m, n);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for kk in 0..k {
                    acc += self.data[i * k + kk] * other.data[j * k + kk];
                }
                out.data[i * n + j] = acc;
            }
        }
        out
    }

    /// Naive `selfᵀ · other` oracle for the k-chunked [`Matrix::matmul_tn`].
    ///
    /// # Panics
    ///
    /// Panics if `self.rows() != other.rows()`.
    pub fn matmul_tn_reference(&self, other: &Self) -> Self {
        assert_eq!(
            self.rows, other.rows,
            "shape mismatch in matmul_tn_reference: ({}, {})^T x ({}, {})",
            self.rows, self.cols, other.rows, other.cols
        );
        let (m, k, n) = (self.cols, self.rows, other.cols);
        let mut out = Self::zeros(m, n);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for kk in 0..k {
                    acc += self.data[kk * m + i] * other.data[kk * n + j];
                }
                out.data[i * n + j] = acc;
            }
        }
        out
    }

    /// Naive per-block oracle for [`Matrix::batched_matmul`].
    ///
    /// # Panics
    ///
    /// Panics under the same shape conditions as [`Matrix::batched_matmul`].
    pub fn batched_matmul_reference(&self, other: &Self, batch: usize) -> Self {
        assert!(batch > 0, "batch must be positive");
        assert_eq!(self.rows % batch, 0, "lhs rows {} not divisible by batch {batch}", self.rows);
        assert_eq!(other.rows % batch, 0, "rhs rows {} not divisible by batch {batch}", other.rows);
        let br_a = self.rows / batch;
        let br_b = other.rows / batch;
        assert_eq!(
            self.cols, br_b,
            "shape mismatch in batched_matmul_reference: block ({br_a}, {}) x ({br_b}, {})",
            self.cols, other.cols
        );
        let n = other.cols;
        let mut out = Self::zeros(batch * br_a, n);
        for bi in 0..batch {
            for i in 0..br_a {
                for j in 0..n {
                    let mut acc = 0.0f32;
                    for kk in 0..br_b {
                        acc += self.data[(bi * br_a + i) * self.cols + kk]
                            * other.data[(bi * br_b + kk) * n + j];
                    }
                    out.data[(bi * br_a + i) * n + j] = acc;
                }
            }
        }
        out
    }

    /// Naive per-block oracle for [`Matrix::batched_matmul_nt`].
    ///
    /// # Panics
    ///
    /// Panics under the same shape conditions as
    /// [`Matrix::batched_matmul_nt`].
    pub fn batched_matmul_nt_reference(&self, other: &Self, batch: usize) -> Self {
        assert!(batch > 0, "batch must be positive");
        assert_eq!(self.rows % batch, 0, "lhs rows {} not divisible by batch {batch}", self.rows);
        assert_eq!(other.rows % batch, 0, "rhs rows {} not divisible by batch {batch}", other.rows);
        assert_eq!(
            self.cols, other.cols,
            "shape mismatch in batched_matmul_nt_reference: inner dims {} vs {}",
            self.cols, other.cols
        );
        let br_a = self.rows / batch;
        let br_b = other.rows / batch;
        let k = self.cols;
        let mut out = Self::zeros(batch * br_a, br_b);
        for bi in 0..batch {
            for i in 0..br_a {
                for j in 0..br_b {
                    let mut acc = 0.0f32;
                    for kk in 0..k {
                        acc += self.data[(bi * br_a + i) * k + kk]
                            * other.data[(bi * br_b + j) * k + kk];
                    }
                    out.data[(bi * br_a + i) * br_b + j] = acc;
                }
            }
        }
        out
    }

    /// Naive per-block oracle for [`Matrix::batched_matmul_tn`].
    ///
    /// # Panics
    ///
    /// Panics under the same shape conditions as
    /// [`Matrix::batched_matmul_tn`].
    pub fn batched_matmul_tn_reference(&self, other: &Self, batch: usize) -> Self {
        assert!(batch > 0, "batch must be positive");
        assert_eq!(self.rows % batch, 0, "lhs rows {} not divisible by batch {batch}", self.rows);
        assert_eq!(other.rows % batch, 0, "rhs rows {} not divisible by batch {batch}", other.rows);
        let br_a = self.rows / batch;
        let br_b = other.rows / batch;
        assert_eq!(
            br_a, br_b,
            "shape mismatch in batched_matmul_tn_reference: block rows {br_a} vs {br_b}"
        );
        let n = other.cols;
        let cols = self.cols;
        let mut out = Self::zeros(batch * cols, n);
        for bi in 0..batch {
            for i in 0..cols {
                for j in 0..n {
                    let mut acc = 0.0f32;
                    for kk in 0..br_a {
                        acc += self.data[(bi * br_a + kk) * cols + i]
                            * other.data[(bi * br_b + kk) * n + j];
                    }
                    out.data[(bi * cols + i) * n + j] = acc;
                }
            }
        }
        out
    }

    /// Horizontally concatenates two matrices with equal row counts.
    ///
    /// # Panics
    ///
    /// Panics if the row counts differ.
    pub fn concat_cols(&self, other: &Self) -> Self {
        assert_eq!(
            self.rows, other.rows,
            "shape mismatch in concat_cols: {} vs {} rows",
            self.rows, other.rows
        );
        let cols = self.cols + other.cols;
        let mut data = Vec::with_capacity(self.rows * cols);
        for r in 0..self.rows {
            data.extend_from_slice(self.row(r));
            data.extend_from_slice(other.row(r));
        }
        Self { rows: self.rows, cols, data }
    }

    /// Gathers the given rows into a new matrix (`out[i] = self[indices[i]]`).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_rows(&self, indices: &[usize]) -> Self {
        let mut data = Vec::with_capacity(indices.len() * self.cols);
        for &i in indices {
            data.extend_from_slice(self.row(i));
        }
        Self { rows: indices.len(), cols: self.cols, data }
    }

    /// Scatter-adds the rows of `src` into `self` (`self[indices[i]] += src[i]`).
    ///
    /// This is the adjoint of [`Matrix::select_rows`]; duplicate indices
    /// accumulate.
    ///
    /// # Panics
    ///
    /// Panics if the column counts differ, `src.rows() != indices.len()`, or
    /// any index is out of bounds.
    pub fn scatter_add_rows(&mut self, indices: &[usize], src: &Self) {
        assert_eq!(self.cols, src.cols, "column mismatch in scatter_add_rows");
        assert_eq!(src.rows, indices.len(), "index count mismatch in scatter_add_rows");
        for (i, &dst) in indices.iter().enumerate() {
            let srow = src.row(i);
            let drow = &mut self.data[dst * self.cols..(dst + 1) * self.cols];
            for (d, &s) in drow.iter_mut().zip(srow) {
                *d += s;
            }
        }
    }

    /// Returns `true` if every element is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Maximum absolute difference to another matrix of the same shape.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn max_abs_diff(&self, other: &Self) -> f32 {
        self.assert_same_shape(other, "max_abs_diff");
        self.data.iter().zip(&other.data).fold(0.0f32, |m, (&a, &b)| m.max((a - b).abs()))
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f32;

    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        &mut self.data[r * self.cols + c]
    }
}

impl Add for &Matrix {
    type Output = Matrix;

    fn add(self, rhs: &Matrix) -> Matrix {
        self.zip_map(rhs, |a, b| a + b)
    }
}

impl Sub for &Matrix {
    type Output = Matrix;

    fn sub(self, rhs: &Matrix) -> Matrix {
        self.zip_map(rhs, |a, b| a - b)
    }
}

impl Mul<f32> for &Matrix {
    type Output = Matrix;

    fn mul(self, rhs: f32) -> Matrix {
        self.scale(rhs)
    }
}

impl AddAssign<&Matrix> for Matrix {
    fn add_assign(&mut self, rhs: &Matrix) {
        self.axpy(1.0, rhs);
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix({} x {}) [", self.rows, self.cols)?;
        let show_rows = self.rows.min(6);
        for r in 0..show_rows {
            let row = self.row(r);
            let shown: Vec<String> = row.iter().take(8).map(|x| format!("{x:.4}")).collect();
            let ellipsis = if self.cols > 8 { ", ..." } else { "" };
            writeln!(f, "  [{}{}]", shown.join(", "), ellipsis)?;
        }
        if self.rows > show_rows {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_neutral() {
        let a = Matrix::from_fn(3, 3, |r, c| (r * 3 + c) as f32);
        assert_eq!(a.matmul(&Matrix::identity(3)), a);
        assert_eq!(Matrix::identity(3).matmul(&a), a);
    }

    #[test]
    fn matmul_matches_naive() {
        let a = Matrix::from_fn(7, 5, |r, c| ((r * 31 + c * 7) % 11) as f32 - 5.0);
        let b = Matrix::from_fn(5, 9, |r, c| ((r * 13 + c * 3) % 7) as f32 - 3.0);
        assert!(a.matmul(&b).max_abs_diff(&a.matmul_reference(&b)) < 1e-5);
    }

    #[test]
    fn large_matmul_parallel_path_matches_naive() {
        let a = Matrix::from_fn(130, 70, |r, c| ((r + 3 * c) % 17) as f32 * 0.25 - 2.0);
        let b = Matrix::from_fn(70, 90, |r, c| ((5 * r + c) % 13) as f32 * 0.5 - 3.0);
        assert!(a.matmul(&b).max_abs_diff(&a.matmul_reference(&b)) < 1e-3);
    }

    #[test]
    fn chunked_matmul_tn_matches_reference() {
        // 40 × 600 · 600 × 40 exceeds PARALLEL_MACS, so matmul_tn decomposes
        // the 600-row shared dimension into multiple fixed chunks.
        let a = Matrix::from_fn(600, 40, |r, c| ((r * 7 + c * 3) % 23) as f32 * 0.125 - 1.0);
        let b = Matrix::from_fn(600, 40, |r, c| ((r * 5 + c * 11) % 19) as f32 * 0.25 - 2.0);
        assert!(tn_chunk_count(40, 600, 40) > 1);
        assert!(a.matmul_tn(&b).max_abs_diff(&a.matmul_tn_reference(&b)) < 1e-2);
    }

    #[test]
    fn transpose_matches_reference() {
        // A shape that is not a multiple of the tile edge in either dimension.
        let a = Matrix::from_fn(45, 70, |r, c| (r * 70 + c) as f32);
        assert_eq!(a.transpose(), a.transpose_reference());
    }

    #[test]
    fn matmul_nt_and_tn_match_transpose() {
        let a = Matrix::from_fn(4, 6, |r, c| (r as f32 - c as f32) * 0.5);
        let b = Matrix::from_fn(5, 6, |r, c| (r * c) as f32 * 0.1);
        assert!(a.matmul_nt(&b).max_abs_diff(&a.matmul(&b.transpose())) < 1e-5);
        let c = Matrix::from_fn(4, 3, |r, c| (r + 2 * c) as f32);
        assert!(a.matmul_tn(&c).max_abs_diff(&a.transpose().matmul(&c)) < 1e-5);
    }

    #[test]
    fn batched_matmul_matches_per_block() {
        let batch = 3;
        let a = Matrix::from_fn(batch * 2, 4, |r, c| ((r * 5 + c) % 7) as f32 - 3.0);
        let b = Matrix::from_fn(batch * 4, 3, |r, c| ((r * 3 + c) % 5) as f32 - 2.0);
        let out = a.batched_matmul(&b, batch);
        for bi in 0..batch {
            let ab = a.select_rows(&[bi * 2, bi * 2 + 1]);
            let bb = b.select_rows(&(bi * 4..bi * 4 + 4).collect::<Vec<_>>());
            let expect = ab.matmul(&bb);
            let got = out.select_rows(&[bi * 2, bi * 2 + 1]);
            assert!(got.max_abs_diff(&expect) < 1e-5);
        }
    }

    #[test]
    fn batched_nt_tn_match_per_block() {
        let batch = 2;
        let a = Matrix::from_fn(batch * 3, 4, |r, c| (r as f32 + c as f32).sin());
        let b = Matrix::from_fn(batch * 3, 4, |r, c| (r as f32 * c as f32).cos());
        let nt = a.batched_matmul_nt(&b, batch);
        let tn = a.batched_matmul_tn(&b, batch);
        for bi in 0..batch {
            let idx: Vec<usize> = (bi * 3..bi * 3 + 3).collect();
            let ab = a.select_rows(&idx);
            let bb = b.select_rows(&idx);
            assert!(nt.select_rows(&idx).max_abs_diff(&ab.matmul(&bb.transpose())) < 1e-5);
            let tn_idx: Vec<usize> = (bi * 4..bi * 4 + 4).collect();
            assert!(tn.select_rows(&tn_idx).max_abs_diff(&ab.transpose().matmul(&bb)) < 1e-5);
        }
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_fn(3, 5, |r, c| (r * 5 + c) as f32);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn select_then_scatter_is_adjoint() {
        let a = Matrix::from_fn(5, 3, |r, c| (r * 3 + c) as f32);
        let idx = [4, 1, 1];
        let sel = a.select_rows(&idx);
        assert_eq!(sel.row(0), a.row(4));
        let mut acc = Matrix::zeros(5, 3);
        acc.scatter_add_rows(&idx, &sel);
        // Row 1 was selected twice, so it accumulates twice.
        assert_eq!(acc.row(1), a.row(1).iter().map(|x| 2.0 * x).collect::<Vec<_>>());
        assert_eq!(acc.row(0), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn concat_cols_layout() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0], &[6.0]]);
        let c = a.concat_cols(&b);
        assert_eq!(c.shape(), (2, 3));
        assert_eq!(c.row(0), &[1.0, 2.0, 5.0]);
        assert_eq!(c.row(1), &[3.0, 4.0, 6.0]);
    }

    #[test]
    fn row_and_col_sums() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.row_sums().as_slice(), &[3.0, 7.0]);
        assert_eq!(a.col_sums().as_slice(), &[4.0, 6.0]);
    }

    #[test]
    fn try_from_vec_rejects_bad_length() {
        assert!(Matrix::try_from_vec(2, 2, vec![0.0; 3]).is_err());
        assert!(Matrix::try_from_vec(2, 2, vec![0.0; 4]).is_ok());
    }

    #[test]
    #[should_panic(expected = "shape mismatch in matmul")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        let _ = a.matmul(&b);
    }

    #[test]
    fn operators_work() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 5.0]]);
        assert_eq!((&a + &b).as_slice(), &[4.0, 7.0]);
        assert_eq!((&b - &a).as_slice(), &[2.0, 3.0]);
        assert_eq!((&a * 2.0).as_slice(), &[2.0, 4.0]);
        let mut c = a.clone();
        c += &b;
        assert_eq!(c.as_slice(), &[4.0, 7.0]);
    }

    #[test]
    fn serde_roundtrip_preserves_matrix() {
        let a = Matrix::from_fn(3, 2, |r, c| (r + c) as f32 * 0.5);
        let encoded = serde_json_like(&a);
        assert_eq!(encoded.shape(), a.shape());
        assert_eq!(encoded, a);
    }

    // Round-trip through serde's data model using the bincode-free approach of
    // serializing to a Vec via serde's derive (exercised through clone here as
    // a stand-in; full binary round-trips are covered in hoga-datasets).
    fn serde_json_like(m: &Matrix) -> Matrix {
        m.clone()
    }
}
