//! Compressed sparse row (CSR) matrices and sparse–dense products.
//!
//! The hop-wise feature generation of HOGA (Eq. 3, `X^(k) = Â X^(k-1)`) and
//! the message-passing baselines (GCN/GraphSAGE) are all built on one kernel:
//! multiplying a sparse adjacency matrix by a dense feature matrix
//! ([`CsrMatrix::spmm`]). Row parallelism makes this the fastest part of the
//! pipeline, matching the paper's observation that feature generation is
//! negligible next to training.

use crate::parallel::{available_threads, parallel_chunks, parallel_map};
use crate::Matrix;
use serde::{Deserialize, Serialize};

/// Triplet count above which [`CsrMatrix::from_coo`] parallelizes its
/// counting and per-row merge phases.
const PARALLEL_NNZ: usize = 1 << 14;

/// Sorts one row's `(col, value)` entries by column and merges duplicate
/// columns in place, summing their values.
///
/// Self-contained by construction: the merge only ever inspects this row's
/// own entries, never state accumulated from previous rows, so rows can be
/// merged independently and in parallel.
fn merge_row(row: &mut Vec<(u32, f32)>) {
    row.sort_unstable_by_key(|&(c, _)| c);
    let mut write = 0usize;
    for read in 0..row.len() {
        if write > 0 && row[write - 1].0 == row[read].0 {
            row[write - 1].1 += row[read].1;
        } else {
            row[write] = row[read];
            write += 1;
        }
    }
    row.truncate(write);
}

/// A sparse `f32` matrix in compressed-sparse-row format.
///
/// # Examples
///
/// ```
/// use hoga_tensor::{CsrMatrix, Matrix};
///
/// // 2x2 matrix [[0, 1], [2, 0]] from COO triplets.
/// let a = CsrMatrix::from_coo(2, 2, &[(0, 1, 1.0), (1, 0, 2.0)]);
/// let x = Matrix::from_rows(&[&[10.0], &[20.0]]);
/// let y = a.spmm(&x);
/// assert_eq!(y.as_slice(), &[20.0, 20.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    indptr: Vec<usize>,
    indices: Vec<u32>,
    values: Vec<f32>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from COO `(row, col, value)` triplets.
    ///
    /// Duplicate coordinates are summed. Triplet order does not matter.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of bounds.
    pub fn from_coo(rows: usize, cols: usize, triplets: &[(usize, usize, f32)]) -> Self {
        let parallel = triplets.len() >= PARALLEL_NNZ;
        // Phase 1: bounds-check and count entries per row. Sharded over the
        // triplet list for large inputs; per-shard counts merge by integer
        // addition, which is order-independent, so the shard count can never
        // change the result.
        let count_shards =
            if parallel { available_threads().min(triplets.len().max(1)) } else { 1 };
        let mut counts = vec![0usize; rows + 1];
        if count_shards > 1 {
            let per = triplets.len().div_ceil(count_shards);
            let shard_counts = parallel_map(count_shards, |si| {
                let lo = (si * per).min(triplets.len());
                let hi = ((si + 1) * per).min(triplets.len());
                let mut c = vec![0usize; rows + 1];
                for &(r, col, _) in &triplets[lo..hi] {
                    assert!(
                        r < rows && col < cols,
                        "triplet ({r}, {col}) out of bounds for ({rows}, {cols})"
                    );
                    c[r + 1] += 1;
                }
                c
            });
            for shard in &shard_counts {
                for (acc, &v) in counts.iter_mut().zip(shard) {
                    *acc += v;
                }
            }
        } else {
            for &(r, c, _) in triplets {
                assert!(
                    r < rows && c < cols,
                    "triplet ({r}, {c}) out of bounds for ({rows}, {cols})"
                );
                counts[r + 1] += 1;
            }
        }
        for i in 0..rows {
            counts[i + 1] += counts[i];
        }
        let indptr_raw = counts;
        // Phase 2: scatter triplets into their row segments, preserving input
        // order within each row.
        let mut indices = vec![0u32; triplets.len()];
        let mut values = vec![0.0f32; triplets.len()];
        let mut cursor = indptr_raw.clone();
        for &(r, c, v) in triplets {
            let pos = cursor[r];
            indices[pos] = c as u32;
            values[pos] = v;
            cursor[r] += 1;
        }
        // Phase 3: sort each row by column and merge duplicates. merge_row is
        // self-contained per row, so contiguous row ranges merge in parallel;
        // shard outputs are concatenated in ascending-row order, making the
        // result independent of the shard count.
        let merge_shards = if parallel && rows > 1 { available_threads().min(rows) } else { 1 };
        let rows_per = rows.div_ceil(merge_shards).max(1);
        let shards: Vec<(Vec<usize>, Vec<u32>, Vec<f32>)> = parallel_map(merge_shards, |si| {
            let r_lo = (si * rows_per).min(rows);
            let r_hi = ((si + 1) * rows_per).min(rows);
            let mut lens = Vec::with_capacity(r_hi - r_lo);
            let mut idx = Vec::new();
            let mut vals = Vec::new();
            let mut scratch: Vec<(u32, f32)> = Vec::new();
            for r in r_lo..r_hi {
                let (lo, hi) = (indptr_raw[r], indptr_raw[r + 1]);
                scratch.clear();
                scratch.extend(indices[lo..hi].iter().copied().zip(values[lo..hi].iter().copied()));
                merge_row(&mut scratch);
                lens.push(scratch.len());
                for &(c, v) in &scratch {
                    idx.push(c);
                    vals.push(v);
                }
            }
            (lens, idx, vals)
        });
        let mut out_indptr = Vec::with_capacity(rows + 1);
        out_indptr.push(0);
        let mut out_indices = Vec::with_capacity(indices.len());
        let mut out_values = Vec::with_capacity(values.len());
        let mut total = 0usize;
        for (lens, idx, vals) in shards {
            for len in lens {
                total += len;
                out_indptr.push(total);
            }
            out_indices.extend(idx);
            out_values.extend(vals);
        }
        Self { rows, cols, indptr: out_indptr, indices: out_indices, values: out_values }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored (structural) nonzeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Iterates over the `(column, value)` entries of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row_entries(&self, r: usize) -> impl Iterator<Item = (usize, f32)> + '_ {
        // analyze: allow(panic-reachability) — documented contract: r < rows, and indptr has rows+1 entries
        let (lo, hi) = (self.indptr[r], self.indptr[r + 1]);
        self.indices[lo..hi].iter().zip(&self.values[lo..hi]).map(|(&c, &v)| (c as usize, v))
    }

    /// Sparse × dense product `self · x`, parallelized over output rows.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != x.rows()`.
    pub fn spmm(&self, x: &Matrix) -> Matrix {
        assert_eq!(
            self.cols,
            x.rows(),
            "shape mismatch in spmm: ({}, {}) x ({}, {})",
            self.rows,
            self.cols,
            x.rows(),
            x.cols()
        );
        let d = x.cols();
        let mut out = Matrix::zeros(self.rows, d);
        if d == 0 || self.rows == 0 {
            return out;
        }
        let indptr = &self.indptr;
        let indices = &self.indices;
        let values = &self.values;
        let xs = x.as_slice();
        parallel_chunks(out.as_mut_slice(), d, |start_row, chunk| {
            for (i, orow) in chunk.chunks_mut(d).enumerate() {
                let r = start_row + i;
                for pos in indptr[r]..indptr[r + 1] {
                    let c = indices[pos] as usize;
                    let v = values[pos];
                    let xrow = &xs[c * d..(c + 1) * d];
                    for (o, &xv) in orow.iter_mut().zip(xrow) {
                        *o += v * xv;
                    }
                }
            }
        });
        out
    }

    /// Sparse × dense vector product.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != x.len()`.
    // analyze: allow(dead-public-api) — sparse mat-vec product of the public CSR API; covered by tests
    pub fn spmv(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(self.cols, x.len(), "shape mismatch in spmv");
        (0..self.rows).map(|r| self.row_entries(r).map(|(c, v)| v * x[c]).sum()).collect()
    }

    /// Transposed copy (CSR of `selfᵀ`).
    pub fn transpose(&self) -> Self {
        let mut triplets = Vec::with_capacity(self.nnz());
        for r in 0..self.rows {
            for (c, v) in self.row_entries(r) {
                triplets.push((c, r, v));
            }
        }
        Self::from_coo(self.cols, self.rows, &triplets)
    }

    /// Dense copy (for tests and small matrices).
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for (c, v) in self.row_entries(r) {
                m[(r, c)] += v;
            }
        }
        m
    }

    /// Per-row count of structural nonzeros (out-degree for adjacency use).
    pub fn row_nnz(&self) -> Vec<usize> {
        self.indptr.windows(2).map(|w| w[1] - w[0]).collect()
    }

    /// Scales row `r` entries by `s` for every row (`diag(s) · self`).
    ///
    /// # Panics
    ///
    /// Panics if `scales.len() != self.rows()`.
    pub fn scale_rows(&self, scales: &[f32]) -> Self {
        assert_eq!(scales.len(), self.rows, "scale length mismatch");
        let mut out = self.clone();
        for (r, &s) in scales.iter().enumerate() {
            for pos in self.indptr[r]..self.indptr[r + 1] {
                out.values[pos] *= s;
            }
        }
        out
    }

    /// Scales column `c` entries by `s` for every column (`self · diag(s)`).
    ///
    /// # Panics
    ///
    /// Panics if `scales.len() != self.cols()`.
    pub fn scale_cols(&self, scales: &[f32]) -> Self {
        assert_eq!(scales.len(), self.cols, "scale length mismatch");
        let mut out = self.clone();
        for (idx, v) in out.values.iter_mut().enumerate() {
            *v *= scales[out.indices[idx] as usize];
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        CsrMatrix::from_coo(
            3,
            4,
            &[(0, 1, 2.0), (0, 3, 1.0), (1, 0, -1.0), (2, 2, 4.0), (2, 2, 1.0)],
        )
    }

    #[test]
    fn from_coo_merges_duplicates_and_sorts() {
        let a = sample();
        assert_eq!(a.nnz(), 4);
        let row2: Vec<_> = a.row_entries(2).collect();
        assert_eq!(row2, vec![(2, 5.0)]);
        let row0: Vec<_> = a.row_entries(0).collect();
        assert_eq!(row0, vec![(1, 2.0), (3, 1.0)]);
    }

    #[test]
    fn spmm_matches_dense() {
        let a = sample();
        let x = Matrix::from_fn(4, 3, |r, c| (r * 3 + c) as f32 * 0.5 - 1.0);
        let sparse = a.spmm(&x);
        let dense = a.to_dense().matmul(&x);
        assert!(sparse.max_abs_diff(&dense) < 1e-6);
    }

    #[test]
    fn spmv_matches_spmm() {
        let a = sample();
        let x = vec![1.0, 2.0, 3.0, 4.0];
        let y = a.spmv(&x);
        let ym = a.spmm(&Matrix::from_vec(4, 1, x));
        assert_eq!(y, ym.into_vec());
    }

    #[test]
    fn transpose_matches_dense_transpose() {
        let a = sample();
        assert!(a.transpose().to_dense().max_abs_diff(&a.to_dense().transpose()) < 1e-6);
    }

    #[test]
    fn scale_rows_cols() {
        let a = sample();
        let sr = a.scale_rows(&[2.0, 3.0, 0.5]);
        assert_eq!(sr.row_entries(0).collect::<Vec<_>>(), vec![(1, 4.0), (3, 2.0)]);
        let sc = a.scale_cols(&[10.0, 1.0, 1.0, 2.0]);
        assert_eq!(sc.row_entries(1).collect::<Vec<_>>(), vec![(0, -10.0)]);
        assert_eq!(sc.row_entries(0).collect::<Vec<_>>(), vec![(1, 2.0), (3, 2.0)]);
    }

    #[test]
    fn empty_matrix_is_fine() {
        let a = CsrMatrix::from_coo(0, 0, &[]);
        assert_eq!(a.nnz(), 0);
        let y = a.spmm(&Matrix::zeros(0, 5));
        assert_eq!(y.shape(), (0, 5));
    }

    #[test]
    fn large_spmm_parallel_matches_dense() {
        let mut triplets = Vec::new();
        for r in 0..200 {
            for k in 0..5 {
                triplets.push((r, (r * 7 + k * 13) % 150, ((r + k) % 5) as f32 - 2.0));
            }
        }
        let a = CsrMatrix::from_coo(200, 150, &triplets);
        let x = Matrix::from_fn(150, 40, |r, c| ((r + c) % 9) as f32 * 0.25);
        assert!(a.spmm(&x).max_abs_diff(&a.to_dense().matmul(&x)) < 1e-4);
    }
}
