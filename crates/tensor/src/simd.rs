//! AVX2 kernel backend (`Backend::Simd` with the `simd` cargo feature).
//!
//! This is the **only module in the workspace allowed to contain
//! `unsafe`** — it is the audited entry in `hoga-analyze`'s R3
//! unsafe-allowlist, and the crate root pairs it with
//! `#![deny(unsafe_code)]` so nothing else in the crate can follow suit.
//!
//! # Safety audit
//!
//! Every `unsafe` block here is one of exactly three shapes:
//!
//! 1. A call to a `#[target_feature(...)]` function. Sound because the
//!    only call sites are behind [`avx2_available`], which caches
//!    `is_x86_feature_detected!("avx2") && ("fma")` — the instructions
//!    are never executed on a CPU that lacks them.
//! 2. `_mm256_loadu_ps` / `_mm256_storeu_ps` on pointers derived from
//!    `chunks_exact(8)` / `chunks_exact_mut(8)` slices. Sound because the
//!    iterator guarantees exactly 8 in-bounds, initialized `f32`s, and
//!    the unaligned variants carry no alignment requirement.
//! 3. Unaligned loads/stores at explicitly computed offsets inside the
//!    register-tiled kernels ([`fma_panel6_avx2`] and the int8 product),
//!    each carrying a `SAFETY:` comment proving the offset plus the
//!    vector width stays inside the borrowed slice.
//!
//! # Determinism
//!
//! Training-path methods use `_mm256_mul_ps` + `_mm256_add_ps` — the
//! same two IEEE roundings per element as the scalar loops, in the same
//! per-element order — so they are bitwise identical to
//! [`ScalarKernels`](crate::backend::ScalarKernels). The `*_fast` methods
//! use `_mm256_fmadd_ps` and reduce their 8 lane accumulators through
//! [`reduce_lanes8`], the same fixed tree the portable fallback uses;
//! since hardware FMA and `f32::mul_add` are both correctly rounded, the
//! fast path is bitwise identical between AVX2 and portable too. The int8
//! product accumulates in `i32` — exact and association-free — and its
//! dequantizing tail evaluates the same float expression in the same
//! order as the scalar loop, so it is bitwise identical to scalar for
//! every input, backend, and thread count.

#![allow(unsafe_code)]

use crate::backend::{reduce_lanes8, KernelBackend};
use std::arch::x86_64::{
    __m128i, __m256i, _mm256_add_epi32, _mm256_add_ps, _mm256_cvtepi32_ps, _mm256_cvtepi8_epi16,
    _mm256_fmadd_ps, _mm256_loadu_ps, _mm256_loadu_si256, _mm256_madd_epi16, _mm256_mul_ps,
    _mm256_mullo_epi32, _mm256_permute2x128_si256, _mm256_set1_epi32, _mm256_set1_ps,
    _mm256_setzero_ps, _mm256_setzero_si256, _mm256_storeu_ps, _mm256_sub_epi32, _mm256_sub_ps,
    _mm256_unpackhi_epi16, _mm256_unpacklo_epi16, _mm_loadu_si128,
};
use std::sync::OnceLock;

/// Whether this CPU can run the AVX2 backend (`avx2` + `fma`), cached
/// after the first query.
pub(crate) fn avx2_available() -> bool {
    static AVAILABLE: OnceLock<bool> = OnceLock::new();
    *AVAILABLE.get_or_init(|| {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    })
}

/// The AVX2 implementation of the kernel inner loops.
pub(crate) struct Avx2Kernels;

impl KernelBackend for Avx2Kernels {
    const NAME: &'static str = "simd-avx2";

    fn fma_row(acc: &mut [f32], a: f32, b: &[f32]) {
        // analyze: allow(float-equality) — exact-zero sparsity fast path; skipping only bitwise zeros cannot change the accumulated sum
        if a == 0.0 {
            return;
        }
        // SAFETY: gated on avx2_available() by backend::resolved().
        unsafe { fma_row_avx2(acc, a, b) }
    }

    fn fma_row4(acc: &mut [f32], a: [f32; 4], b: [&[f32]; 4]) {
        if a.contains(&0.0) {
            for (&av, &bv) in a.iter().zip(&b) {
                Self::fma_row(acc, av, bv);
            }
            return;
        }
        // SAFETY: gated on avx2_available() by backend::resolved().
        unsafe { fma_row4_avx2(acc, a, b) }
    }

    fn fma_row_fast(acc: &mut [f32], a: f32, b: &[f32]) {
        // analyze: allow(float-equality) — exact-zero sparsity fast path; skipping only bitwise zeros cannot change the accumulated sum
        if a == 0.0 {
            return;
        }
        // SAFETY: gated on avx2_available() by backend::resolved().
        unsafe { fma_row_fast_avx2(acc, a, b) }
    }

    fn fma_panel6<const FAST: bool>(acc: [&mut [f32]; 6], a: [&[f32]; 6], b: &[f32], n: usize) {
        // SAFETY: gated on avx2_available() by backend::resolved().
        unsafe { fma_panel6_avx2::<FAST>(acc, a, b, n) }
    }

    fn dot_fast(a: &[f32], b: &[f32]) -> f32 {
        // SAFETY: gated on avx2_available() by backend::resolved().
        unsafe { dot_fast_avx2(a, b) }
    }

    fn sum_fast(xs: &[f32]) -> f32 {
        // SAFETY: gated on avx2_available() by backend::resolved().
        unsafe { sum_fast_avx2(xs) }
    }

    fn sq_diff_sum_fast(xs: &[f32], mean: f32) -> f32 {
        // SAFETY: gated on avx2_available() by backend::resolved().
        unsafe { sq_diff_sum_fast_avx2(xs, mean) }
    }

    fn scale(row: &mut [f32], s: f32) {
        // SAFETY: gated on avx2_available() by backend::resolved().
        unsafe { scale_avx2(row, s) }
    }

    fn normalize_row(dst: &mut [f32], x: &[f32], mean: f32, inv_std: f32) {
        // SAFETY: gated on avx2_available() by backend::resolved().
        unsafe { normalize_row_avx2(dst, x, mean, inv_std) }
    }

    fn affine_row(dst: &mut [f32], xhat: &[f32], gamma: &[f32], beta: &[f32]) {
        // SAFETY: gated on avx2_available() by backend::resolved().
        unsafe { affine_row_avx2(dst, xhat, gamma, beta) }
    }
}

#[target_feature(enable = "avx2,fma")]
unsafe fn fma_row_avx2(acc: &mut [f32], a: f32, b: &[f32]) {
    let va = _mm256_set1_ps(a);
    let ca = acc.chunks_exact_mut(8);
    let cb = b.chunks_exact(8);
    let tb = cb.remainder();
    let mut tail_at = 0;
    for (x8, y8) in ca.zip(cb) {
        // SAFETY: both chunks are exactly 8 contiguous f32s.
        let x = _mm256_loadu_ps(x8.as_ptr());
        let y = _mm256_loadu_ps(y8.as_ptr());
        // mul + add (not fmadd): two roundings, matching the scalar loop.
        _mm256_storeu_ps(x8.as_mut_ptr(), _mm256_add_ps(x, _mm256_mul_ps(va, y)));
        tail_at += 8;
    }
    for (x, &y) in acc[tail_at..].iter_mut().zip(tb) {
        *x += a * y;
    }
}

#[target_feature(enable = "avx2,fma")]
unsafe fn fma_row4_avx2(acc: &mut [f32], a: [f32; 4], b: [&[f32]; 4]) {
    let va0 = _mm256_set1_ps(a[0]);
    let va1 = _mm256_set1_ps(a[1]);
    let va2 = _mm256_set1_ps(a[2]);
    let va3 = _mm256_set1_ps(a[3]);
    let (b0, b1, b2, b3) = (b[0], b[1], b[2], b[3]);
    let mut j = 0;
    while j + 8 <= acc.len() {
        // SAFETY: j + 8 <= len for acc and the equally long b rows.
        let mut x = _mm256_loadu_ps(acc.as_ptr().add(j));
        x = _mm256_add_ps(x, _mm256_mul_ps(va0, _mm256_loadu_ps(b0.as_ptr().add(j))));
        x = _mm256_add_ps(x, _mm256_mul_ps(va1, _mm256_loadu_ps(b1.as_ptr().add(j))));
        x = _mm256_add_ps(x, _mm256_mul_ps(va2, _mm256_loadu_ps(b2.as_ptr().add(j))));
        x = _mm256_add_ps(x, _mm256_mul_ps(va3, _mm256_loadu_ps(b3.as_ptr().add(j))));
        _mm256_storeu_ps(acc.as_mut_ptr().add(j), x);
        j += 8;
    }
    while j < acc.len() {
        acc[j] = (((acc[j] + a[0] * b0[j]) + a[1] * b1[j]) + a[2] * b2[j]) + a[3] * b3[j];
        j += 1;
    }
}

#[target_feature(enable = "avx2,fma")]
unsafe fn fma_row_fast_avx2(acc: &mut [f32], a: f32, b: &[f32]) {
    let va = _mm256_set1_ps(a);
    let ca = acc.chunks_exact_mut(8);
    let cb = b.chunks_exact(8);
    let tb = cb.remainder();
    let mut tail_at = 0;
    for (x8, y8) in ca.zip(cb) {
        // SAFETY: both chunks are exactly 8 contiguous f32s.
        let x = _mm256_loadu_ps(x8.as_ptr());
        let y = _mm256_loadu_ps(y8.as_ptr());
        _mm256_storeu_ps(x8.as_mut_ptr(), _mm256_fmadd_ps(va, y, x));
        tail_at += 8;
    }
    for (x, &y) in acc[tail_at..].iter_mut().zip(tb) {
        *x = a.mul_add(y, *x);
    }
}

/// The register-tiled heart of the row-blocked training matmul: a 6-row ×
/// 16-column accumulator tile lives in twelve ymm registers for the whole
/// k-panel, so the output touches memory once per panel instead of once
/// per four k-steps. Each element still sees exactly one mul + one add
/// per k in ascending order (`FAST`: one fused `vfmadd`), and the
/// bitwise-zero skip branches per `(row, k)` — identical semantics to
/// six [`KernelBackend::fma_row`] sweeps, load/store traffic 16× lower.
#[target_feature(enable = "avx2,fma")]
unsafe fn fma_panel6_avx2<const FAST: bool>(
    mut acc: [&mut [f32]; 6],
    a: [&[f32]; 6],
    b: &[f32],
    n: usize,
) {
    let klen = a[0].len();
    for ar in &a {
        assert_eq!(ar.len(), klen, "fma_panel6: uneven a-row lengths");
    }
    // One zero-scan per panel instead of six compares per k-step: bit dk
    // of the mask is set when any of the six a-values at that k is a
    // bitwise zero, sending only those (rare, for dense operands) k-steps
    // down the per-row skip branch.
    assert!(klen <= 512, "fma_panel6: k-panel longer than the zero-mask (512)");
    let mut zmask = [0u64; 8];
    for dk in 0..klen {
        // analyze: allow(float-equality) — exact-zero sparsity fast path; skipping only bitwise zeros cannot change the accumulated sum
        if a.iter().any(|ar| ar[dk] == 0.0) {
            zmask[dk / 64] |= 1 << (dk % 64);
        }
    }
    let ap =
        [a[0].as_ptr(), a[1].as_ptr(), a[2].as_ptr(), a[3].as_ptr(), a[4].as_ptr(), a[5].as_ptr()];
    // The 6×16 accumulator tile must live in twelve *named* ymm registers:
    // with `[__m256; 6]` arrays the allocator spills the tile to the stack
    // and the kernel runs at half speed, so the unroll is written out.
    macro_rules! tile_step {
        ($av:expr, $b0:ident, $b1:ident, $lo:ident, $hi:ident) => {{
            let va = _mm256_set1_ps($av);
            if FAST {
                $lo = _mm256_fmadd_ps(va, $b0, $lo);
                $hi = _mm256_fmadd_ps(va, $b1, $hi);
            } else {
                $lo = _mm256_add_ps($lo, _mm256_mul_ps(va, $b0));
                $hi = _mm256_add_ps($hi, _mm256_mul_ps(va, $b1));
            }
        }};
    }
    macro_rules! tile_step_skip_zero {
        ($r:literal, $dk:ident, $b0:ident, $b1:ident, $lo:ident, $hi:ident) => {{
            // SAFETY: $dk < klen and every a row is klen long.
            let av = *ap[$r].add($dk);
            // analyze: allow(float-equality) — exact-zero sparsity fast path; skipping only bitwise zeros cannot change the accumulated sum
            if av != 0.0 {
                tile_step!(av, $b0, $b1, $lo, $hi);
            }
        }};
    }
    let mut j = 0;
    while j + 16 <= n {
        // SAFETY: j + 16 <= n and every acc row is exactly n long.
        let mut lo0 = _mm256_loadu_ps(acc[0].as_ptr().add(j));
        let mut hi0 = _mm256_loadu_ps(acc[0].as_ptr().add(j + 8));
        let mut lo1 = _mm256_loadu_ps(acc[1].as_ptr().add(j));
        let mut hi1 = _mm256_loadu_ps(acc[1].as_ptr().add(j + 8));
        let mut lo2 = _mm256_loadu_ps(acc[2].as_ptr().add(j));
        let mut hi2 = _mm256_loadu_ps(acc[2].as_ptr().add(j + 8));
        let mut lo3 = _mm256_loadu_ps(acc[3].as_ptr().add(j));
        let mut hi3 = _mm256_loadu_ps(acc[3].as_ptr().add(j + 8));
        let mut lo4 = _mm256_loadu_ps(acc[4].as_ptr().add(j));
        let mut hi4 = _mm256_loadu_ps(acc[4].as_ptr().add(j + 8));
        let mut lo5 = _mm256_loadu_ps(acc[5].as_ptr().add(j));
        let mut hi5 = _mm256_loadu_ps(acc[5].as_ptr().add(j + 8));
        // Iterate maximal zero-free runs of k so the hot loop is twelve
        // unconditional multiply-adds with no branch diamond — a per-step
        // flag test makes the allocator shuffle the tile through the
        // stack. Flagged k-steps (some a-value is bitwise zero) run one
        // at a time between runs with the per-row skip.
        let mut dk = 0;
        while dk < klen {
            let end = dk + clean_run(&zmask, dk, klen);
            for kk in dk..end {
                // SAFETY: b holds klen * n floats, so row kk spans
                // [kk * n, kk * n + n) and j + 16 <= n keeps both loads
                // inside it; kk < klen and every a row is klen long.
                let brow = b.as_ptr().add(kk * n + j);
                let b0 = _mm256_loadu_ps(brow);
                let b1 = _mm256_loadu_ps(brow.add(8));
                tile_step!(*ap[0].add(kk), b0, b1, lo0, hi0);
                tile_step!(*ap[1].add(kk), b0, b1, lo1, hi1);
                tile_step!(*ap[2].add(kk), b0, b1, lo2, hi2);
                tile_step!(*ap[3].add(kk), b0, b1, lo3, hi3);
                tile_step!(*ap[4].add(kk), b0, b1, lo4, hi4);
                tile_step!(*ap[5].add(kk), b0, b1, lo5, hi5);
            }
            dk = end;
            if dk < klen {
                // SAFETY: same bounds as above for row dk.
                let brow = b.as_ptr().add(dk * n + j);
                let b0 = _mm256_loadu_ps(brow);
                let b1 = _mm256_loadu_ps(brow.add(8));
                tile_step_skip_zero!(0, dk, b0, b1, lo0, hi0);
                tile_step_skip_zero!(1, dk, b0, b1, lo1, hi1);
                tile_step_skip_zero!(2, dk, b0, b1, lo2, hi2);
                tile_step_skip_zero!(3, dk, b0, b1, lo3, hi3);
                tile_step_skip_zero!(4, dk, b0, b1, lo4, hi4);
                tile_step_skip_zero!(5, dk, b0, b1, lo5, hi5);
                dk += 1;
            }
        }
        // SAFETY: same bounds as the loads above.
        _mm256_storeu_ps(acc[0].as_mut_ptr().add(j), lo0);
        _mm256_storeu_ps(acc[0].as_mut_ptr().add(j + 8), hi0);
        _mm256_storeu_ps(acc[1].as_mut_ptr().add(j), lo1);
        _mm256_storeu_ps(acc[1].as_mut_ptr().add(j + 8), hi1);
        _mm256_storeu_ps(acc[2].as_mut_ptr().add(j), lo2);
        _mm256_storeu_ps(acc[2].as_mut_ptr().add(j + 8), hi2);
        _mm256_storeu_ps(acc[3].as_mut_ptr().add(j), lo3);
        _mm256_storeu_ps(acc[3].as_mut_ptr().add(j + 8), hi3);
        _mm256_storeu_ps(acc[4].as_mut_ptr().add(j), lo4);
        _mm256_storeu_ps(acc[4].as_mut_ptr().add(j + 8), hi4);
        _mm256_storeu_ps(acc[5].as_mut_ptr().add(j), lo5);
        _mm256_storeu_ps(acc[5].as_mut_ptr().add(j + 8), hi5);
        j += 16;
    }
    // Column tail (< 16): scalar k-ascending chains, one element at a time
    // through a register — bitwise the same chain as the vector tile.
    for (accr, arow) in acc.iter_mut().zip(a) {
        for jj in j..n {
            let mut x = accr[jj];
            for (dk, &av) in arow.iter().enumerate() {
                // analyze: allow(float-equality) — exact-zero sparsity fast path; skipping only bitwise zeros cannot change the accumulated sum
                if av == 0.0 {
                    continue;
                }
                let bv = b[dk * n + jj];
                x = if FAST { av.mul_add(bv, x) } else { x + av * bv };
            }
            accr[jj] = x;
        }
    }
}

/// Length of the run of consecutive unflagged (zero-free) k-steps
/// starting at `start` in the panel's zero mask.
#[inline(always)]
fn clean_run(zmask: &[u64; 8], start: usize, klen: usize) -> usize {
    let mut dk = start;
    while dk < klen {
        let word = zmask[dk / 64] >> (dk % 64);
        if word != 0 {
            dk += word.trailing_zeros() as usize;
            break;
        }
        dk = (dk / 64 + 1) * 64;
    }
    dk.min(klen) - start
}

/// Column width of one int8 accumulator tile: two `i32` vectors.
const QTILE: usize = 16;

/// Borrowed operands for one int8 row-chunk: activation rows `qa`
/// (`rows × k`, matching the chunk's `rows × n` output) with per-row
/// affine parameters, and the shared weights `qw` (`k × n`) with
/// per-column scales and sums.
pub(crate) struct QOperands<'a> {
    pub(crate) qa: &'a [i8],
    pub(crate) k: usize,
    pub(crate) scale: &'a [f32],
    pub(crate) zero_point: &'a [i32],
    pub(crate) qw: &'a [i8],
    pub(crate) n: usize,
    pub(crate) w_scale: &'a [f32],
    pub(crate) col_sums: &'a [i32],
}

/// One row-chunk of the int8 inference product `a · w` (AVX2 path).
///
/// The hot loop pairs two consecutive `k`-rows of the weights, sign-extends
/// them to `i16`, and feeds `vpmaddwd` with the broadcast activation pair —
/// 16 `i8 × i8` MACs per instruction, accumulated exactly in `i32`. Integer
/// AVX2 also sidesteps the frequency penalty "heavy" FP vector instructions
/// pay on server parts, so this is the highest-throughput matmul in the
/// crate. Bitwise identical to the scalar loop in `qmatmul`: the integer
/// sums are exact, and the dequantizing tail evaluates
/// `(sa * w_scale[j]) * ((acc - za * col_sums[j]) as f32)` — the same
/// roundings in the same order as the scalar expression.
pub(crate) fn qmatmul_chunk(chunk: &mut [f32], op: &QOperands<'_>) {
    assert!(avx2_available(), "int8 AVX2 kernel dispatched without AVX2");
    assert_eq!(op.qw.len(), op.k * op.n, "qmatmul_chunk: weight shape mismatch");
    let rows = chunk.len().checked_div(op.n).unwrap_or(0);
    assert_eq!(op.qa.len(), rows * op.k, "qmatmul_chunk: activation shape mismatch");
    // SAFETY: shape 1 — `avx2_available` was just asserted.
    unsafe { qmatmul_chunk_avx2(chunk, op) }
}

#[target_feature(enable = "avx2")]
unsafe fn qmatmul_chunk_avx2(chunk: &mut [f32], op: &QOperands<'_>) {
    let (k, n) = (op.k, op.n);
    let rows = chunk.len().checked_div(n).unwrap_or(0);
    let jtail = n - n % QTILE;
    let zero16 = _mm256_setzero_si256();
    // One k-pair step for one activation row: broadcast the packed
    // (a[kk], a[kk+1]) i16 pair and `vpmaddwd` it against the interleaved
    // weight vectors — each i32 column gains a[kk]·w[kk][c] +
    // a[kk+1]·w[kk+1][c], exactly (the widest pair sum, 2·128·127, is far
    // inside i16-product i32 range).
    macro_rules! qstep {
        ($lo:expr, $hi:expr, $al:ident, $ah:ident, $vl:ident, $vh:ident) => {{
            let pair = (($lo) as i16 as u16 as u32) | ((($hi) as i16 as u16 as u32) << 16);
            let va = _mm256_set1_epi32(pair as i32);
            $al = _mm256_add_epi32($al, _mm256_madd_epi16(va, $vl));
            $ah = _mm256_add_epi32($ah, _mm256_madd_epi16(va, $vh));
        }};
    }
    // Undo the unpack interleave (acc-low holds columns 0-3 and 8-11 of
    // the tile, acc-high 4-7 and 12-15) and apply the affine correction:
    // y[j] = (sa · w_scale[j]) · ((acc[j] − za · col_sums[j]) as f32),
    // the identical expression and rounding order as the scalar loop.
    macro_rules! qstore {
        ($al:expr, $ah:expr, $ri:expr, $j:expr) => {{
            let halves = [
                _mm256_permute2x128_si256::<0x20>($al, $ah),
                _mm256_permute2x128_si256::<0x31>($al, $ah),
            ];
            let sa = _mm256_set1_ps(op.scale[$ri]);
            let za = _mm256_set1_epi32(op.zero_point[$ri]);
            for (t, &acc) in halves.iter().enumerate() {
                let c = $j + 8 * t;
                // SAFETY: c + 8 <= jtail <= n; the column arrays are n
                // long and the output row $ri spans [$ri * n, $ri * n + n).
                let cs = _mm256_loadu_si256(op.col_sums.as_ptr().add(c) as *const __m256i);
                let ws = _mm256_loadu_ps(op.w_scale.as_ptr().add(c));
                let corr = _mm256_sub_epi32(acc, _mm256_mullo_epi32(za, cs));
                let y = _mm256_mul_ps(_mm256_mul_ps(sa, ws), _mm256_cvtepi32_ps(corr));
                _mm256_storeu_ps(chunk.as_mut_ptr().add($ri * n + c), y);
            }
        }};
    }
    let mut rb = 0;
    while rb < rows {
        let rc = (rows - rb).min(4);
        // SAFETY: activation row r spans [r * k, r * k + k). Unused slots
        // of a short (< 4 row) block alias the last real row so their
        // loads stay in bounds; their products are computed and discarded.
        let p0 = op.qa.as_ptr().add(rb * k);
        let p1 = op.qa.as_ptr().add((rb + 1.min(rc - 1)) * k);
        let p2 = op.qa.as_ptr().add((rb + 2.min(rc - 1)) * k);
        let p3 = op.qa.as_ptr().add((rb + 3.min(rc - 1)) * k);
        let mut j = 0;
        while j + QTILE <= n {
            let mut a0l = _mm256_setzero_si256();
            let mut a0h = _mm256_setzero_si256();
            let mut a1l = _mm256_setzero_si256();
            let mut a1h = _mm256_setzero_si256();
            let mut a2l = _mm256_setzero_si256();
            let mut a2h = _mm256_setzero_si256();
            let mut a3l = _mm256_setzero_si256();
            let mut a3h = _mm256_setzero_si256();
            let mut kk = 0;
            while kk + 2 <= k {
                // SAFETY: weight rows kk and kk+1 each span n bytes and
                // j + 16 <= n keeps the 16-byte loads inside them; the
                // activation loads sit at kk and kk+1 < k within a row.
                let w0 = _mm256_cvtepi8_epi16(_mm_loadu_si128(
                    op.qw.as_ptr().add(kk * n + j) as *const __m128i
                ));
                let w1 = _mm256_cvtepi8_epi16(_mm_loadu_si128(
                    op.qw.as_ptr().add((kk + 1) * n + j) as *const __m128i,
                ));
                let vl = _mm256_unpacklo_epi16(w0, w1);
                let vh = _mm256_unpackhi_epi16(w0, w1);
                qstep!(*p0.add(kk), *p0.add(kk + 1), a0l, a0h, vl, vh);
                qstep!(*p1.add(kk), *p1.add(kk + 1), a1l, a1h, vl, vh);
                qstep!(*p2.add(kk), *p2.add(kk + 1), a2l, a2h, vl, vh);
                qstep!(*p3.add(kk), *p3.add(kk + 1), a3l, a3h, vl, vh);
                kk += 2;
            }
            if kk < k {
                // Odd-k tail: pair the last weight row with zeros so the
                // second half of each `vpmaddwd` pair contributes nothing.
                // SAFETY: same bounds as above for row kk.
                let w0 = _mm256_cvtepi8_epi16(_mm_loadu_si128(
                    op.qw.as_ptr().add(kk * n + j) as *const __m128i
                ));
                let vl = _mm256_unpacklo_epi16(w0, zero16);
                let vh = _mm256_unpackhi_epi16(w0, zero16);
                qstep!(*p0.add(kk), 0i8, a0l, a0h, vl, vh);
                qstep!(*p1.add(kk), 0i8, a1l, a1h, vl, vh);
                qstep!(*p2.add(kk), 0i8, a2l, a2h, vl, vh);
                qstep!(*p3.add(kk), 0i8, a3l, a3h, vl, vh);
            }
            qstore!(a0l, a0h, rb, j);
            if rc > 1 {
                qstore!(a1l, a1h, rb + 1, j);
            }
            if rc > 2 {
                qstore!(a2l, a2h, rb + 2, j);
            }
            if rc > 3 {
                qstore!(a3l, a3h, rb + 3, j);
            }
            j += QTILE;
        }
        rb += rc;
    }
    // Column tail (< 16): plain scalar dot products, exact like everything
    // above, so the split point never shows in the output.
    if jtail < n {
        for ri in 0..rows {
            let arow = &op.qa[ri * k..(ri + 1) * k];
            let (sa, za) = (op.scale[ri], op.zero_point[ri]);
            for j in jtail..n {
                let mut acc = 0i32;
                for (kk, &qv) in arow.iter().enumerate() {
                    acc += qv as i32 * op.qw[kk * n + j] as i32;
                }
                chunk[ri * n + j] = sa * op.w_scale[j] * ((acc - za * op.col_sums[j]) as f32);
            }
        }
    }
}

/// Spills the 8-lane vector accumulator and reduces it through the shared
/// [`reduce_lanes8`] tree, guaranteeing bit-identity with the portable
/// fast path by construction.
#[target_feature(enable = "avx2,fma")]
unsafe fn reduce256(v: std::arch::x86_64::__m256) -> f32 {
    let mut lanes = [0.0f32; 8];
    // SAFETY: lanes is exactly 8 contiguous f32s.
    _mm256_storeu_ps(lanes.as_mut_ptr(), v);
    reduce_lanes8(lanes)
}

#[target_feature(enable = "avx2,fma")]
unsafe fn dot_fast_avx2(a: &[f32], b: &[f32]) -> f32 {
    let ca = a.chunks_exact(8);
    let cb = b.chunks_exact(8);
    let (ta, tb) = (ca.remainder(), cb.remainder());
    let mut vacc = _mm256_setzero_ps();
    for (x8, y8) in ca.zip(cb) {
        // SAFETY: both chunks are exactly 8 contiguous f32s.
        let x = _mm256_loadu_ps(x8.as_ptr());
        let y = _mm256_loadu_ps(y8.as_ptr());
        vacc = _mm256_fmadd_ps(x, y, vacc);
    }
    let mut acc = reduce256(vacc);
    for (&x, &y) in ta.iter().zip(tb) {
        acc = x.mul_add(y, acc);
    }
    acc
}

#[target_feature(enable = "avx2,fma")]
unsafe fn sum_fast_avx2(xs: &[f32]) -> f32 {
    let chunks = xs.chunks_exact(8);
    let tail = chunks.remainder();
    let mut vacc = _mm256_setzero_ps();
    for x8 in chunks {
        // SAFETY: the chunk is exactly 8 contiguous f32s.
        vacc = _mm256_add_ps(vacc, _mm256_loadu_ps(x8.as_ptr()));
    }
    let mut acc = reduce256(vacc);
    for &x in tail {
        acc += x;
    }
    acc
}

#[target_feature(enable = "avx2,fma")]
unsafe fn sq_diff_sum_fast_avx2(xs: &[f32], mean: f32) -> f32 {
    let vmean = _mm256_set1_ps(mean);
    let chunks = xs.chunks_exact(8);
    let tail = chunks.remainder();
    let mut vacc = _mm256_setzero_ps();
    for x8 in chunks {
        // SAFETY: the chunk is exactly 8 contiguous f32s.
        let d = _mm256_sub_ps(_mm256_loadu_ps(x8.as_ptr()), vmean);
        vacc = _mm256_fmadd_ps(d, d, vacc);
    }
    let mut acc = reduce256(vacc);
    for &x in tail {
        let d = x - mean;
        acc = d.mul_add(d, acc);
    }
    acc
}

#[target_feature(enable = "avx2,fma")]
unsafe fn scale_avx2(row: &mut [f32], s: f32) {
    let vs = _mm256_set1_ps(s);
    let chunks = row.chunks_exact_mut(8);
    let mut tail_at = 0;
    for x8 in chunks {
        // SAFETY: the chunk is exactly 8 contiguous f32s.
        let x = _mm256_loadu_ps(x8.as_ptr());
        _mm256_storeu_ps(x8.as_mut_ptr(), _mm256_mul_ps(x, vs));
        tail_at += 8;
    }
    for x in &mut row[tail_at..] {
        *x *= s;
    }
}

#[target_feature(enable = "avx2,fma")]
unsafe fn normalize_row_avx2(dst: &mut [f32], x: &[f32], mean: f32, inv_std: f32) {
    let vmean = _mm256_set1_ps(mean);
    let vis = _mm256_set1_ps(inv_std);
    let cd = dst.chunks_exact_mut(8);
    let cx = x.chunks_exact(8);
    let tx = cx.remainder();
    let mut tail_at = 0;
    for (d8, x8) in cd.zip(cx) {
        // SAFETY: both chunks are exactly 8 contiguous f32s.
        let v = _mm256_sub_ps(_mm256_loadu_ps(x8.as_ptr()), vmean);
        _mm256_storeu_ps(d8.as_mut_ptr(), _mm256_mul_ps(v, vis));
        tail_at += 8;
    }
    for (d, &v) in dst[tail_at..].iter_mut().zip(tx) {
        *d = (v - mean) * inv_std;
    }
}

#[target_feature(enable = "avx2,fma")]
unsafe fn affine_row_avx2(dst: &mut [f32], xhat: &[f32], gamma: &[f32], beta: &[f32]) {
    let mut j = 0;
    while j + 8 <= dst.len() {
        // SAFETY: j + 8 <= len for dst and the equally long operand rows.
        let xh = _mm256_loadu_ps(xhat.as_ptr().add(j));
        let g = _mm256_loadu_ps(gamma.as_ptr().add(j));
        let b = _mm256_loadu_ps(beta.as_ptr().add(j));
        // mul + add (not fmadd): matches the scalar training-path rounding.
        _mm256_storeu_ps(dst.as_mut_ptr().add(j), _mm256_add_ps(_mm256_mul_ps(xh, g), b));
        j += 8;
    }
    while j < dst.len() {
        dst[j] = xhat[j] * gamma[j] + beta[j];
        j += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{PortableKernels, ScalarKernels};

    fn vecs(n: usize) -> (Vec<f32>, Vec<f32>) {
        let a: Vec<f32> = (0..n).map(|i| ((i * 41 % 17) as f32 - 8.0) * 0.43).collect();
        let b: Vec<f32> = (0..n).map(|i| ((i * 29 % 13) as f32 - 6.0) * 0.31).collect();
        (a, b)
    }

    #[test]
    fn avx2_training_ops_match_scalar_bitwise() {
        if !avx2_available() {
            return;
        }
        for n in [0, 1, 3, 7, 8, 9, 15, 16, 17, 64, 100] {
            let (a, b) = vecs(n);
            let mut acc_s = a.clone();
            let mut acc_v = a.clone();
            ScalarKernels::fma_row(&mut acc_s, -0.625, &b);
            Avx2Kernels::fma_row(&mut acc_v, -0.625, &b);
            assert_eq!(
                acc_s.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                acc_v.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                "fma_row width {n}"
            );
            let rows: Vec<Vec<f32>> =
                (0..4).map(|s| b.iter().map(|v| v + s as f32).collect()).collect();
            let refs = [&rows[0][..], &rows[1][..], &rows[2][..], &rows[3][..]];
            let coeffs = [0.5f32, -1.5, 0.25, 3.0];
            let mut r4_s = a.clone();
            let mut r4_v = a.clone();
            ScalarKernels::fma_row4(&mut r4_s, coeffs, refs);
            Avx2Kernels::fma_row4(&mut r4_v, coeffs, refs);
            assert_eq!(
                r4_s.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                r4_v.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                "fma_row4 width {n}"
            );
            let mut sc_s = a.clone();
            let mut sc_v = a.clone();
            ScalarKernels::scale(&mut sc_s, 0.77);
            Avx2Kernels::scale(&mut sc_v, 0.77);
            assert_eq!(sc_s, sc_v, "scale width {n}");
            let mut nr_s = vec![0.0; n];
            let mut nr_v = vec![0.0; n];
            ScalarKernels::normalize_row(&mut nr_s, &a, 0.3, 1.7);
            Avx2Kernels::normalize_row(&mut nr_v, &a, 0.3, 1.7);
            assert_eq!(nr_s, nr_v, "normalize width {n}");
            let mut af_s = vec![0.0; n];
            let mut af_v = vec![0.0; n];
            ScalarKernels::affine_row(&mut af_s, &a, &b, &a);
            Avx2Kernels::affine_row(&mut af_v, &a, &b, &a);
            assert_eq!(
                af_s.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                af_v.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                "affine width {n}"
            );
        }
    }

    #[test]
    fn avx2_fma_panel6_matches_scalar_bitwise_at_awkward_shapes() {
        if !avx2_available() {
            return;
        }
        for (klen, n) in [(1usize, 5usize), (3, 16), (4, 15), (7, 37), (64, 33), (64, 48)] {
            let bpanel: Vec<f32> =
                (0..klen * n).map(|i| ((i * 31 % 29) as f32 - 14.0) * 0.27).collect();
            let arows: Vec<Vec<f32>> = (0..6)
                .map(|r| {
                    (0..klen)
                        .map(|dk| {
                            // Sprinkle exact zeros so the skip path runs.
                            if (dk + r) % 5 == 0 {
                                0.0
                            } else {
                                ((dk * 13 + r * 7) % 11) as f32 * 0.61 - 3.0
                            }
                        })
                        .collect()
                })
                .collect();
            let a6 = [
                &arows[0][..],
                &arows[1][..],
                &arows[2][..],
                &arows[3][..],
                &arows[4][..],
                &arows[5][..],
            ];
            let start: Vec<f32> = (0..n).map(|j| (j as f32) * 0.11 - 1.0).collect();
            let mut scalar_rows = vec![start.clone(); 6];
            let mut avx_rows = vec![start.clone(); 6];
            for fast in [false, true] {
                fn split6(rows: &mut [Vec<f32>]) -> [&mut [f32]; 6] {
                    let (r0, rest) = rows.split_at_mut(1);
                    let (r1, rest) = rest.split_at_mut(1);
                    let (r2, rest) = rest.split_at_mut(1);
                    let (r3, rest) = rest.split_at_mut(1);
                    let (r4, r5) = rest.split_at_mut(1);
                    [&mut r0[0], &mut r1[0], &mut r2[0], &mut r3[0], &mut r4[0], &mut r5[0]]
                }
                if fast {
                    ScalarKernels::fma_panel6::<true>(split6(&mut scalar_rows), a6, &bpanel, n);
                    Avx2Kernels::fma_panel6::<true>(split6(&mut avx_rows), a6, &bpanel, n);
                } else {
                    ScalarKernels::fma_panel6::<false>(split6(&mut scalar_rows), a6, &bpanel, n);
                    Avx2Kernels::fma_panel6::<false>(split6(&mut avx_rows), a6, &bpanel, n);
                }
                for r in 0..6 {
                    assert_eq!(
                        scalar_rows[r].iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                        avx_rows[r].iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                        "fma_panel6 fast={fast} klen={klen} n={n} row {r}"
                    );
                }
            }
        }
    }

    #[test]
    fn avx2_int8_chunk_matches_scalar_bitwise_at_awkward_shapes() {
        if !avx2_available() {
            return;
        }
        // Rows exercise the 4-row block + remainder; columns the 16-wide
        // tile + scalar tail; k the paired loop + odd tail.
        for (rows, k, n) in
            [(1usize, 1usize, 1usize), (3, 5, 16), (4, 8, 17), (5, 7, 16), (9, 64, 48), (2, 3, 33)]
        {
            let qa: Vec<i8> = (0..rows * k).map(|i| ((i * 37 % 255) as i32 - 127) as i8).collect();
            let qw: Vec<i8> = (0..k * n).map(|i| ((i * 29 % 253) as i32 - 126) as i8).collect();
            let scale: Vec<f32> = (0..rows).map(|r| 0.01 + r as f32 * 0.003).collect();
            let zero_point: Vec<i32> = (0..rows).map(|r| (r as i32 % 7) - 3).collect();
            let w_scale: Vec<f32> = (0..n).map(|c| 0.02 + c as f32 * 0.001).collect();
            let col_sums: Vec<i32> =
                (0..n).map(|c| (0..k).map(|kk| qw[kk * n + c] as i32).sum()).collect();
            // Scalar reference — the exact expression from `qmatmul`.
            let mut expect = vec![0.0f32; rows * n];
            for r in 0..rows {
                for j in 0..n {
                    let acc: i32 =
                        (0..k).map(|kk| qa[r * k + kk] as i32 * qw[kk * n + j] as i32).sum();
                    expect[r * n + j] =
                        scale[r] * w_scale[j] * ((acc - zero_point[r] * col_sums[j]) as f32);
                }
            }
            let mut got = vec![0.0f32; rows * n];
            qmatmul_chunk(
                &mut got,
                &QOperands {
                    qa: &qa,
                    k,
                    scale: &scale,
                    zero_point: &zero_point,
                    qw: &qw,
                    n,
                    w_scale: &w_scale,
                    col_sums: &col_sums,
                },
            );
            assert_eq!(
                expect.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                got.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                "int8 chunk rows={rows} k={k} n={n}"
            );
        }
    }

    #[test]
    fn avx2_fast_reductions_match_portable_bitwise() {
        if !avx2_available() {
            return;
        }
        for n in [0, 1, 7, 8, 9, 63, 64, 65, 255, 1000] {
            let (a, b) = vecs(n);
            assert_eq!(
                Avx2Kernels::dot_fast(&a, &b).to_bits(),
                PortableKernels::dot_fast(&a, &b).to_bits(),
                "dot_fast width {n}"
            );
            assert_eq!(
                Avx2Kernels::sum_fast(&a).to_bits(),
                PortableKernels::sum_fast(&a).to_bits(),
                "sum_fast width {n}"
            );
            assert_eq!(
                Avx2Kernels::sq_diff_sum_fast(&a, 0.21).to_bits(),
                PortableKernels::sq_diff_sum_fast(&a, 0.21).to_bits(),
                "sq_diff_sum_fast width {n}"
            );
            let mut f_v = a.clone();
            let mut f_p = a.clone();
            Avx2Kernels::fma_row_fast(&mut f_v, 1.3, &b);
            PortableKernels::fma_row_fast(&mut f_p, 1.3, &b);
            assert_eq!(
                f_v.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                f_p.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                "fma_row_fast width {n}"
            );
        }
    }
}
