//! Dense `f32` tensor kernels for the HOGA reproduction.
//!
//! This crate is the lowest layer of the stack: a small, safe, CPU-only
//! linear-algebra library providing exactly the operations the HOGA model
//! ([Deng et al., DAC 2024]) and its baselines need:
//!
//! * a row-major [`Matrix`] type with shape-checked constructors,
//! * blocked, multi-threaded matrix multiplication ([`Matrix::matmul`]),
//! * batched (block-diagonal) matrix products used by per-node attention,
//! * row-wise `softmax` and `LayerNorm` kernels with their exact Jacobians
//!   exposed for the autograd layer,
//! * deterministic random initializers (Xavier/Glorot, Kaiming/He).
//!
//! Parallelism uses `std::thread::scope` over disjoint row (or block, or
//! k-) chunks; there is no unsafe code in this crate. Every kernel's output
//! is a pure function of its inputs — never of the thread count — because
//! chunk decompositions depend only on shapes and partial results are
//! reduced in a fixed order (see `docs/PERFORMANCE.md`).
//!
//! # Examples
//!
//! ```
//! use hoga_tensor::Matrix;
//!
//! let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let b = Matrix::identity(2);
//! let c = a.matmul(&b);
//! assert_eq!(c, a);
//! ```
//!
//! [Deng et al., DAC 2024]: https://arxiv.org/abs/2403.01317

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod approx;
mod error;
mod init;
mod kernels;
mod matrix;
mod parallel;
mod sparse;

pub use approx::{approx_eq, approx_eq_eps, approx_eq_ulps};
pub use error::ShapeError;
pub use init::Init;
pub use kernels::{
    layernorm_backward, layernorm_forward, log_softmax_rows, softmax_backward_rows, softmax_rows,
    LayerNormCache,
};
pub use matrix::Matrix;
pub use parallel::{available_threads, parallel_chunks_with, set_threads};
pub use sparse::CsrMatrix;
