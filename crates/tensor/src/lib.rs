//! Dense `f32` tensor kernels for the HOGA reproduction.
//!
//! This crate is the lowest layer of the stack: a small, safe, CPU-only
//! linear-algebra library providing exactly the operations the HOGA model
//! ([Deng et al., DAC 2024]) and its baselines need:
//!
//! * a row-major [`Matrix`] type with shape-checked constructors,
//! * blocked, multi-threaded matrix multiplication ([`Matrix::matmul`]),
//! * batched (block-diagonal) matrix products used by per-node attention,
//! * row-wise `softmax` and `LayerNorm` kernels with their exact Jacobians
//!   exposed for the autograd layer,
//! * deterministic random initializers (Xavier/Glorot, Kaiming/He).
//!
//! Parallelism uses `std::thread::scope` over disjoint row (or block, or
//! k-) chunks. Every *training-path* kernel's output is a pure function of
//! its inputs — never of the thread count or the selected
//! [`Backend`] — because chunk decompositions depend only on shapes,
//! partial results are reduced in a fixed order, and SIMD lanes replay the
//! identical per-element operations (see `docs/PERFORMANCE.md`). The
//! inference-only `*_fast` kernels trade that bitwise contract for fused
//! multiply-adds and lane-parallel reductions with a documented ULP bound
//! against the `*_reference` oracles.
//!
//! Unsafe code is confined to one audited module: without the `simd`
//! feature the crate is `#![forbid(unsafe_code)]`; with it, only
//! `src/simd.rs` (runtime-detected AVX2 intrinsics) may opt out of the
//! crate-level `deny`.
//!
//! # Examples
//!
//! ```
//! use hoga_tensor::Matrix;
//!
//! let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let b = Matrix::identity(2);
//! let c = a.matmul(&b);
//! assert_eq!(c, a);
//! ```
//!
//! [Deng et al., DAC 2024]: https://arxiv.org/abs/2403.01317

#![cfg_attr(not(feature = "simd"), forbid(unsafe_code))]
#![cfg_attr(feature = "simd", deny(unsafe_code))]
#![warn(missing_docs)]

mod approx;
mod backend;
mod error;
mod init;
mod kernels;
mod matrix;
mod parallel;
mod quant;
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod simd;
mod sparse;

pub use approx::{approx_eq, approx_eq_eps, approx_eq_ulps};
pub use backend::{active_backend, backend, set_backend, Backend};
pub use error::ShapeError;
pub use init::Init;
pub use kernels::{
    layernorm_backward, layernorm_forward, layernorm_rows_fast, log_softmax_rows,
    softmax_backward_rows, softmax_rows, softmax_rows_fast, LayerNormCache,
};
pub use matrix::Matrix;
pub use parallel::{available_threads, parallel_chunks_with, set_threads};
pub use quant::{qmatmul, QuantizedMatrix, QuantizedWeights};
pub use sparse::CsrMatrix;
