//! Differential tests of the optimized matmul-family kernels against their
//! naive `*_reference` oracles, plus bitwise thread-count-invariance checks.
//!
//! The determinism contract under test: every kernel's output is a pure
//! function of its inputs — chunk decompositions depend only on shapes and
//! partial results reduce in fixed order — so running with 1 thread and with
//! 8 threads must produce *bitwise identical* floats.

use hoga_tensor::{
    approx_eq_eps, approx_eq_ulps, qmatmul, set_backend, set_threads, Backend, CsrMatrix, Matrix,
    QuantizedMatrix, QuantizedWeights,
};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard};

/// Serializes tests that toggle the global thread override or the global
/// kernel backend so they cannot observe each other's `set_threads` /
/// `set_backend` calls.
fn thread_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn bits(m: &Matrix) -> Vec<u32> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

/// Runs `op` at 1, 3, and 8 threads, asserts the results are bitwise
/// identical, restores auto-detection, and returns the single-thread result.
fn assert_thread_invariant(label: &str, op: impl Fn() -> Matrix) -> Matrix {
    let _guard = thread_lock();
    set_threads(1);
    let single = op();
    for threads in [3usize, 8] {
        set_threads(threads);
        let multi = op();
        assert_eq!(
            bits(&single),
            bits(&multi),
            "{label}: output at {threads} threads differs bitwise from 1 thread"
        );
    }
    set_threads(0);
    single
}

/// Deterministic dense test matrix with values in roughly [-2, 2] and a
/// sprinkling of exact zeros to exercise the sparsity fast paths.
fn dense(rows: usize, cols: usize, salt: usize) -> Matrix {
    Matrix::from_fn(rows, cols, |r, c| {
        let h = r.wrapping_mul(31).wrapping_add(c.wrapping_mul(7)).wrapping_add(salt * 131);
        if h % 11 == 0 {
            0.0
        } else {
            ((h % 17) as f32) * 0.25 - 2.0
        }
    })
}

// ---------------------------------------------------------------------------
// Parallel kernels vs naive references at trainer-like shapes
// ---------------------------------------------------------------------------

#[test]
fn matmul_parallel_is_thread_invariant_and_matches_reference() {
    let a = dense(130, 70, 1);
    let b = dense(70, 90, 2);
    let out = assert_thread_invariant("matmul", || a.matmul(&b));
    assert!(out.max_abs_diff(&a.matmul_reference(&b)) < 1e-3);
}

#[test]
fn matmul_nt_parallel_is_thread_invariant_and_matches_reference() {
    let a = dense(130, 70, 3);
    let b = dense(90, 70, 4);
    let out = assert_thread_invariant("matmul_nt", || a.matmul_nt(&b));
    assert!(out.max_abs_diff(&a.matmul_nt_reference(&b)) < 1e-3);
}

#[test]
fn matmul_tn_chunked_is_thread_invariant_and_matches_reference() {
    // 40 × 600 · 600 × 44 exceeds the parallel threshold, so the shared
    // 600-row dimension splits into several fixed k-chunks.
    let a = dense(600, 40, 5);
    let b = dense(600, 44, 6);
    let out = assert_thread_invariant("matmul_tn", || a.matmul_tn(&b));
    assert!(out.max_abs_diff(&a.matmul_tn_reference(&b)) < 2e-2);
}

#[test]
fn batched_matmul_at_trainer_shape_is_thread_invariant() {
    // The S·V product of Eq. 7 at trainer shape: batch 512, K+1 = 5, d = 64.
    let batch = 512;
    let s = dense(batch * 5, 5, 7);
    let v = dense(batch * 5, 64, 8);
    let out = assert_thread_invariant("batched_matmul", || s.batched_matmul(&v, batch));
    assert!(out.max_abs_diff(&s.batched_matmul_reference(&v, batch)) < 1e-3);
}

#[test]
fn batched_matmul_nt_at_trainer_shape_is_thread_invariant() {
    // The QKᵀ product of Eq. 7 at trainer shape: batch 512, K+1 = 5, d = 64.
    let batch = 512;
    let q = dense(batch * 5, 64, 9);
    let k = dense(batch * 5, 64, 10);
    let out = assert_thread_invariant("batched_matmul_nt", || q.batched_matmul_nt(&k, batch));
    assert!(out.max_abs_diff(&q.batched_matmul_nt_reference(&k, batch)) < 1e-3);
}

#[test]
fn batched_matmul_tn_at_trainer_shape_is_thread_invariant() {
    let batch = 512;
    let s = dense(batch * 5, 5, 11);
    let dy = dense(batch * 5, 64, 12);
    let out = assert_thread_invariant("batched_matmul_tn", || s.batched_matmul_tn(&dy, batch));
    assert!(out.max_abs_diff(&s.batched_matmul_tn_reference(&dy, batch)) < 1e-3);
}

#[test]
fn spmm_is_thread_invariant() {
    let mut triplets = Vec::new();
    for r in 0..400 {
        for k in 0..5 {
            triplets.push((r, (r * 7 + k * 13) % 300, ((r + k) % 5) as f32 - 2.0));
        }
    }
    let a = CsrMatrix::from_coo(400, 300, &triplets);
    let x = dense(300, 48, 13);
    let out = assert_thread_invariant("spmm", || a.spmm(&x));
    assert!(out.max_abs_diff(&a.to_dense().matmul_reference(&x)) < 1e-3);
}

#[test]
fn transpose_tiled_matches_reference_on_awkward_shapes() {
    for (r, c) in [(1, 1), (31, 33), (32, 32), (64, 1), (1, 64), (45, 70), (100, 3)] {
        let a = dense(r, c, r * 100 + c);
        assert_eq!(a.transpose(), a.transpose_reference(), "transpose mismatch at ({r}, {c})");
    }
}

// ---------------------------------------------------------------------------
// Zero-dimension edges
// ---------------------------------------------------------------------------

#[test]
fn matmul_family_handles_zero_dims() {
    // (0, 5) · (5, 3) → (0, 3)
    assert_eq!(Matrix::zeros(0, 5).matmul(&dense(5, 3, 1)).shape(), (0, 3));
    // (5, 0) · (0, 3) → all-zero (5, 3)
    let z = Matrix::zeros(5, 0).matmul(&Matrix::zeros(0, 3));
    assert_eq!(z.shape(), (5, 3));
    assert_eq!(z, Matrix::zeros(5, 3));
    // (5, 3) · (3, 0) → (5, 0)
    assert_eq!(dense(5, 3, 2).matmul(&Matrix::zeros(3, 0)).shape(), (5, 0));

    // matmul_nt: (0, 4) · (6, 4)ᵀ and (3, 0) · (2, 0)ᵀ
    assert_eq!(Matrix::zeros(0, 4).matmul_nt(&dense(6, 4, 3)).shape(), (0, 6));
    let znt = dense(3, 0, 4).matmul_nt(&Matrix::zeros(2, 0));
    assert_eq!(znt.shape(), (3, 2));
    assert_eq!(znt, Matrix::zeros(3, 2));

    // matmul_tn: (5, 0)ᵀ · (5, 4) → (0, 4); (5, 3)ᵀ · (5, 0) → (3, 0);
    // (0, 3)ᵀ · (0, 4) → all-zero (3, 4).
    assert_eq!(Matrix::zeros(5, 0).matmul_tn(&dense(5, 4, 5)).shape(), (0, 4));
    assert_eq!(dense(5, 3, 6).matmul_tn(&Matrix::zeros(5, 0)).shape(), (3, 0));
    let ztn = Matrix::zeros(0, 3).matmul_tn(&Matrix::zeros(0, 4));
    assert_eq!(ztn.shape(), (3, 4));
    assert_eq!(ztn, Matrix::zeros(3, 4));
}

#[test]
fn batched_family_handles_zero_dims() {
    let batch = 4;
    // Zero-width value matrix → (batch·br_a, 0).
    let s = dense(batch * 3, 3, 7);
    let v = Matrix::zeros(batch * 3, 0);
    assert_eq!(s.batched_matmul(&v, batch).shape(), (batch * 3, 0));
    // Zero-row blocks on both sides.
    let e = Matrix::zeros(0, 5);
    assert_eq!(e.batched_matmul_nt(&Matrix::zeros(0, 5), batch).shape(), (0, 0));
    // Zero-column lhs in the tn product → (0, n).
    let a0 = Matrix::zeros(batch * 3, 0);
    let b0 = dense(batch * 3, 4, 8);
    assert_eq!(a0.batched_matmul_tn(&b0, batch).shape(), (0, 4));
    // transpose of degenerate shapes.
    assert_eq!(Matrix::zeros(0, 5).transpose().shape(), (5, 0));
    assert_eq!(Matrix::zeros(5, 0).transpose().shape(), (0, 5));
}

// ---------------------------------------------------------------------------
// from_coo: self-contained per-row merge (regression + differential)
// ---------------------------------------------------------------------------

/// Dense oracle for `from_coo` built on a `BTreeMap<(row, col), f32>`.
fn coo_oracle(rows: usize, cols: usize, triplets: &[(usize, usize, f32)]) -> Matrix {
    let mut map: BTreeMap<(usize, usize), f32> = BTreeMap::new();
    for &(r, c, v) in triplets {
        *map.entry((r, c)).or_insert(0.0) += v;
    }
    let mut out = Matrix::zeros(rows, cols);
    for ((r, c), v) in map {
        out[(r, c)] = v;
    }
    out
}

/// Regression for the old cross-row merge guard: consecutive rows ending and
/// starting on the same column, with duplicates on both sides of the row
/// boundary, must merge strictly within their own rows.
#[test]
fn from_coo_merges_within_rows_only() {
    let triplets = [(0, 2, 1.0), (0, 2, 2.0), (1, 2, 3.0), (1, 2, 4.0), (3, 0, 5.0), (3, 0, -5.0)];
    let a = CsrMatrix::from_coo(4, 3, &triplets);
    assert_eq!(a.row_entries(0).collect::<Vec<_>>(), vec![(2, 3.0)]);
    assert_eq!(a.row_entries(1).collect::<Vec<_>>(), vec![(2, 7.0)]);
    assert_eq!(a.row_entries(2).count(), 0, "empty row must stay empty");
    // A duplicate summing to zero stays a structural nonzero.
    assert_eq!(a.row_entries(3).collect::<Vec<_>>(), vec![(0, 0.0)]);
    assert_eq!(a.nnz(), 3);
}

#[test]
fn from_coo_large_input_is_thread_invariant_and_matches_oracle() {
    // Above PARALLEL_NNZ (2^14) so both the sharded count and the sharded
    // per-row merge run; heavy duplication exercises the merge everywhere.
    let rows = 300;
    let cols = 300;
    let mut triplets = Vec::with_capacity(20_000);
    for i in 0..20_000usize {
        let r = (i * 37) % rows;
        let c = (i * 101) % cols;
        // Half-integer values keep duplicate sums exact in f32, so the CSR
        // and the BTreeMap oracle agree bitwise regardless of sum order.
        let v = ((i % 9) as f32) * 0.5 - 2.0;
        triplets.push((r, c, v));
    }
    let _guard = thread_lock();
    set_threads(1);
    let single = CsrMatrix::from_coo(rows, cols, &triplets);
    set_threads(8);
    let multi = CsrMatrix::from_coo(rows, cols, &triplets);
    set_threads(0);
    assert_eq!(single, multi, "from_coo output depends on thread count");
    assert_eq!(bits(&single.to_dense()), bits(&coo_oracle(rows, cols, &triplets)));
}

// ---------------------------------------------------------------------------
// Backend differentials: SIMD vs scalar
// ---------------------------------------------------------------------------

/// Dense matrix with values that are NOT exactly representable sums (unlike
/// [`dense`], whose quarter-integer entries make every accumulation exact and
/// would let a broken reduction tree pass bitwise checks vacuously).
fn dense_rough(rows: usize, cols: usize, salt: usize) -> Matrix {
    Matrix::from_fn(rows, cols, |r, c| {
        let h = r.wrapping_mul(53).wrapping_add(c.wrapping_mul(19)).wrapping_add(salt * 211);
        if h % 13 == 0 {
            0.0
        } else {
            ((h % 23) as f32) * 0.137 - 1.41
        }
    })
}

/// Runs `op` under both backend requests and asserts bitwise-identical
/// output — the training-path contract: the backend may change *how* a row
/// is computed, never *what* is computed.
fn assert_backend_invariant(label: &str, op: impl Fn() -> Matrix) -> Matrix {
    let _guard = thread_lock();
    set_backend(Backend::Scalar);
    let scalar = op();
    set_backend(Backend::Simd);
    let simd = op();
    set_backend(Backend::Scalar);
    assert_eq!(
        bits(&scalar),
        bits(&simd),
        "{label}: SIMD backend output differs bitwise from scalar on the training path"
    );
    scalar
}

/// Asserts `got` is within the documented fast-path tolerance of `want`:
/// a ULP budget for well-scaled values with an absolute epsilon fallback
/// after cancellation near zero.
fn assert_fast_close(label: &str, want: &Matrix, got: &Matrix) {
    assert_eq!(want.shape(), got.shape(), "{label}: shape mismatch");
    for (i, (&w, &g)) in want.as_slice().iter().zip(got.as_slice()).enumerate() {
        assert!(
            approx_eq_ulps(w, g, 1024) || approx_eq_eps(w, g, 1e-5),
            "{label}: element {i} outside fast-path tolerance: {w} vs {g}"
        );
    }
}

#[test]
fn training_matmul_family_is_backend_invariant_bitwise() {
    // Awkward widths (not multiples of the 8-wide lane count) exercise the
    // SIMD remainder loops; `dense_rough` values make reassociation visible.
    let a = dense_rough(37, 70, 1);
    let b = dense_rough(70, 51, 2);
    assert_backend_invariant("matmul", || a.matmul(&b));
    let bt = dense_rough(51, 70, 3);
    assert_backend_invariant("matmul_nt", || a.matmul_nt(&bt));
    let a2 = dense_rough(70, 37, 4);
    assert_backend_invariant("matmul_tn", || a2.matmul_tn(&b));

    let batch = 16;
    let s = dense_rough(batch * 5, 5, 5);
    let v = dense_rough(batch * 5, 27, 6);
    assert_backend_invariant("batched_matmul", || s.batched_matmul(&v, batch));
    let q = dense_rough(batch * 5, 27, 7);
    assert_backend_invariant("batched_matmul_nt", || q.batched_matmul_nt(&v, batch));
    assert_backend_invariant("batched_matmul_tn", || s.batched_matmul_tn(&v, batch));
}

#[test]
fn training_path_is_backend_and_thread_invariant_jointly() {
    // The full 2×3 grid: {scalar, simd} × {1, 3, 8 threads} must agree
    // bitwise — lane-level and thread-level partitioning compose without
    // changing a single bit on the training path.
    let a = dense_rough(130, 70, 8);
    let b = dense_rough(70, 90, 9);
    let _guard = thread_lock();
    set_backend(Backend::Scalar);
    set_threads(1);
    let baseline = a.matmul(&b);
    for backend in [Backend::Scalar, Backend::Simd] {
        for threads in [1usize, 3, 8] {
            set_backend(backend);
            set_threads(threads);
            let got = a.matmul(&b);
            assert_eq!(
                bits(&baseline),
                bits(&got),
                "matmul at {backend:?} × {threads} threads differs from scalar × 1"
            );
        }
    }
    set_backend(Backend::Scalar);
    set_threads(0);
}

#[test]
fn int8_qmatmul_is_backend_and_thread_invariant_bitwise() {
    // The int8 product accumulates exactly in i32 and dequantizes with one
    // fixed float expression, so *every* backend × thread combination must
    // agree bitwise — a stronger contract than the f32 training path, which
    // only promises invariance for a fixed association order. Sizes cross
    // the parallel threshold and exercise the AVX2 kernel's 4-row block,
    // 16-column tile, and all three tails.
    let qa = QuantizedMatrix::quantize(&dense_rough(67, 70, 13));
    let qw = QuantizedWeights::quantize(&dense_rough(70, 51, 14));
    let _guard = thread_lock();
    set_backend(Backend::Scalar);
    set_threads(1);
    let baseline = qmatmul(&qa, &qw);
    for backend in [Backend::Scalar, Backend::Simd] {
        for threads in [1usize, 3, 8] {
            set_backend(backend);
            set_threads(threads);
            let got = qmatmul(&qa, &qw);
            assert_eq!(
                bits(&baseline),
                bits(&got),
                "qmatmul at {backend:?} × {threads} threads differs from scalar × 1"
            );
        }
    }
    set_backend(Backend::Scalar);
    set_threads(0);
}

#[test]
fn fast_kernels_are_ulp_bounded_against_references() {
    let a = dense_rough(33, 70, 10);
    let b = dense_rough(70, 41, 11);
    let bt = dense_rough(41, 70, 12);
    let batch = 8;
    let s = dense_rough(batch * 5, 5, 13);
    let v = dense_rough(batch * 5, 21, 14);
    let _guard = thread_lock();
    for backend in [Backend::Scalar, Backend::Simd] {
        set_backend(backend);
        assert_fast_close("matmul_fast", &a.matmul_reference(&b), &a.matmul_fast(&b));
        assert_fast_close("matmul_nt_fast", &a.matmul_nt_reference(&bt), &a.matmul_nt_fast(&bt));
        assert_fast_close(
            "batched_matmul_fast",
            &s.batched_matmul_reference(&v, batch),
            &s.batched_matmul_fast(&v, batch),
        );
        assert_fast_close(
            "batched_matmul_nt_fast",
            &v.batched_matmul_nt_reference(&v, batch),
            &v.batched_matmul_nt_fast(&v, batch),
        );
    }
    set_backend(Backend::Scalar);
}

#[test]
fn fast_kernels_are_thread_invariant_for_fixed_backend() {
    // The fast path gives up scalar-vs-SIMD bit equality, NOT determinism:
    // for a fixed backend resolution the lane reduction tree is fixed, so
    // thread count still cannot change a bit.
    let a = dense_rough(130, 70, 15);
    let b = dense_rough(70, 90, 16);
    let bt = dense_rough(90, 70, 17);
    let _guard = thread_lock();
    for backend in [Backend::Scalar, Backend::Simd] {
        set_backend(backend);
        for (label, op) in [
            ("matmul_fast", Box::new(|| a.matmul_fast(&b)) as Box<dyn Fn() -> Matrix>),
            ("matmul_nt_fast", Box::new(|| a.matmul_nt_fast(&bt))),
        ] {
            set_threads(1);
            let single = op();
            for threads in [3usize, 8] {
                set_threads(threads);
                assert_eq!(
                    bits(&single),
                    bits(&op()),
                    "{label} at {backend:?} × {threads} threads differs from 1 thread"
                );
            }
        }
    }
    set_backend(Backend::Scalar);
    set_threads(0);
}

// ---------------------------------------------------------------------------
// Property-based differentials vs the naive references
// ---------------------------------------------------------------------------

/// Strategy: a pair of matrices with a shared inner dimension.
fn arb_matmul_pair() -> impl Strategy<Value = (Matrix, Matrix)> {
    (1..=8usize, 1..=8usize, 1..=8usize).prop_flat_map(|(m, k, n)| {
        let a = proptest::collection::vec(-3.0f32..3.0, m * k)
            .prop_map(move |d| Matrix::from_vec(m, k, d));
        let b = proptest::collection::vec(-3.0f32..3.0, k * n)
            .prop_map(move |d| Matrix::from_vec(k, n, d));
        (a, b)
    })
}

/// Strategy: COO triplets with half-integer values (exact duplicate sums).
fn arb_triplets() -> impl Strategy<Value = (usize, usize, Vec<(usize, usize, f32)>)> {
    (1..=6usize, 1..=6usize).prop_flat_map(|(rows, cols)| {
        let t = proptest::collection::vec((0..rows, 0..cols, -8i32..8), 0..40)
            .prop_map(|v| v.into_iter().map(|(r, c, x)| (r, c, x as f32 * 0.5)).collect());
        (Just(rows), Just(cols), t)
    })
}

proptest! {
    #[test]
    fn matmul_matches_reference((a, b) in arb_matmul_pair()) {
        prop_assert!(a.matmul(&b).max_abs_diff(&a.matmul_reference(&b)) < 1e-4);
    }

    #[test]
    fn matmul_nt_matches_reference((a, b) in arb_matmul_pair()) {
        let bt = b.transpose();
        prop_assert!(a.matmul_nt(&bt).max_abs_diff(&a.matmul_nt_reference(&bt)) < 1e-4);
    }

    #[test]
    fn matmul_tn_matches_reference((a, b) in arb_matmul_pair()) {
        let at = a.transpose();
        prop_assert!(at.matmul_tn(&b).max_abs_diff(&at.matmul_tn_reference(&b)) < 1e-4);
    }

    #[test]
    fn batched_kernels_match_references((a, b) in arb_matmul_pair(), batch in 1..4usize) {
        let mut big_a = Vec::new();
        let mut big_b = Vec::new();
        for _ in 0..batch {
            big_a.extend_from_slice(a.as_slice());
            big_b.extend_from_slice(b.as_slice());
        }
        let ba = Matrix::from_vec(batch * a.rows(), a.cols(), big_a);
        let bb = Matrix::from_vec(batch * b.rows(), b.cols(), big_b.clone());
        prop_assert!(
            ba.batched_matmul(&bb, batch)
                .max_abs_diff(&ba.batched_matmul_reference(&bb, batch)) < 1e-4
        );
        // nt/tn need equal block-row counts; reuse `ba` against itself.
        prop_assert!(
            ba.batched_matmul_nt(&ba, batch)
                .max_abs_diff(&ba.batched_matmul_nt_reference(&ba, batch)) < 1e-4
        );
        prop_assert!(
            ba.batched_matmul_tn(&ba, batch)
                .max_abs_diff(&ba.batched_matmul_tn_reference(&ba, batch)) < 1e-4
        );
    }

    /// Every width class around the 8-wide lane boundary (remainders 0..=7)
    /// must keep the scalar-vs-SIMD training contract bitwise and the fast
    /// path inside tolerance.
    #[test]
    fn backend_contract_holds_at_any_lane_remainder(
        (m, k, n) in (1..=4usize, 1..=20usize, 1..=20usize),
        seed in 0..1000usize,
    ) {
        let a = dense_rough(m, k, seed);
        let b = dense_rough(k, n, seed + 1);
        let _guard = thread_lock();
        set_backend(Backend::Scalar);
        let train_scalar = a.matmul(&b);
        let fast_scalar = a.matmul_fast(&b);
        set_backend(Backend::Simd);
        let train_simd = a.matmul(&b);
        let fast_simd = a.matmul_fast(&b);
        set_backend(Backend::Scalar);
        drop(_guard);
        prop_assert_eq!(bits(&train_scalar), bits(&train_simd));
        let reference = a.matmul_reference(&b);
        for (fast, label) in [(&fast_scalar, "scalar"), (&fast_simd, "simd")] {
            for (&w, &g) in reference.as_slice().iter().zip(fast.as_slice()) {
                prop_assert!(
                    approx_eq_ulps(w, g, 1024) || approx_eq_eps(w, g, 1e-5),
                    "{} fast path outside tolerance: {} vs {}", label, w, g
                );
            }
        }
    }

    #[test]
    fn from_coo_matches_btreemap_oracle((rows, cols, triplets) in arb_triplets()) {
        let csr = CsrMatrix::from_coo(rows, cols, &triplets);
        let dense_oracle = coo_oracle(rows, cols, &triplets);
        prop_assert_eq!(bits(&csr.to_dense()), bits(&dense_oracle));
        // Columns within each row are strictly ascending (duplicates merged).
        for r in 0..rows {
            let row_cols: Vec<usize> = csr.row_entries(r).map(|(c, _)| c).collect();
            prop_assert!(row_cols.windows(2).all(|w| w[0] < w[1]), "row {} not sorted/merged", r);
        }
    }
}
