//! Property-based tests of the tensor kernels: algebraic laws that must
//! hold for arbitrary shapes and values.

use hoga_tensor::{softmax_rows, CsrMatrix, Matrix};
use proptest::prelude::*;

/// Strategy: a matrix with bounded dimensions and tame values.
fn arb_matrix(max_r: usize, max_c: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_r, 1..=max_c).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-4.0f32..4.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data))
    })
}

/// Strategy: a pair of matrices with a shared inner dimension.
fn arb_matmul_pair() -> impl Strategy<Value = (Matrix, Matrix)> {
    (1..=6usize, 1..=6usize, 1..=6usize).prop_flat_map(|(m, k, n)| {
        let a = proptest::collection::vec(-3.0f32..3.0, m * k)
            .prop_map(move |d| Matrix::from_vec(m, k, d));
        let b = proptest::collection::vec(-3.0f32..3.0, k * n)
            .prop_map(move |d| Matrix::from_vec(k, n, d));
        (a, b)
    })
}

proptest! {
    #[test]
    fn transpose_is_involution(a in arb_matrix(8, 8)) {
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn matmul_transpose_identity((a, b) in arb_matmul_pair()) {
        // (AB)^T == B^T A^T
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-4);
    }

    #[test]
    fn matmul_nt_tn_consistency((a, b) in arb_matmul_pair()) {
        let nt = a.matmul_nt(&b.transpose());
        let direct = a.matmul(&b);
        prop_assert!(nt.max_abs_diff(&direct) < 1e-4);
        let tn = a.transpose().matmul_tn(&b);
        prop_assert!(tn.max_abs_diff(&direct) < 1e-4);
    }

    #[test]
    fn matmul_distributes_over_addition((a, b) in arb_matmul_pair(), (c,) in (0..1usize,).prop_map(|x| x)) {
        let _ = c;
        let b2 = b.map(|v| v * 0.5 - 1.0);
        let sum_first = a.matmul(&(&b + &b2));
        let dist = &a.matmul(&b) + &a.matmul(&b2);
        prop_assert!(sum_first.max_abs_diff(&dist) < 1e-3);
    }

    #[test]
    fn softmax_rows_are_distributions(a in arb_matrix(6, 8)) {
        let s = softmax_rows(&a);
        for r in 0..s.rows() {
            let sum: f32 = s.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(s.row(r).iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn softmax_is_shift_invariant(a in arb_matrix(4, 6), shift in -10.0f32..10.0) {
        let s1 = softmax_rows(&a);
        let s2 = softmax_rows(&a.map(|v| v + shift));
        prop_assert!(s1.max_abs_diff(&s2) < 1e-4);
    }

    #[test]
    fn select_rows_then_scatter_is_projection(a in arb_matrix(6, 4)) {
        // Scatter of a full selection back into zeros reproduces selected rows.
        let idx: Vec<usize> = (0..a.rows()).collect();
        let sel = a.select_rows(&idx);
        let mut out = Matrix::zeros(a.rows(), a.cols());
        out.scatter_add_rows(&idx, &sel);
        prop_assert!(out.max_abs_diff(&a) < 1e-6);
    }

    #[test]
    fn batched_matmul_equals_per_block((a, b) in arb_matmul_pair(), batch in 1..4usize) {
        // Tile the pair `batch` times and compare against the blockwise result.
        let mut big_a = Vec::new();
        let mut big_b = Vec::new();
        for _ in 0..batch {
            big_a.extend_from_slice(a.as_slice());
            big_b.extend_from_slice(b.as_slice());
        }
        let ba = Matrix::from_vec(batch * a.rows(), a.cols(), big_a);
        let bb = Matrix::from_vec(batch * b.rows(), b.cols(), big_b);
        let out = ba.batched_matmul(&bb, batch);
        let single = a.matmul(&b);
        for bi in 0..batch {
            let rows: Vec<usize> = (bi * a.rows()..(bi + 1) * a.rows()).collect();
            prop_assert!(out.select_rows(&rows).max_abs_diff(&single) < 1e-4);
        }
    }

    #[test]
    fn csr_roundtrips_through_dense(a in arb_matrix(6, 6)) {
        // Sparsify (threshold), convert to CSR, and check spmm == dense matmul.
        let sparse_src = a.map(|v| if v.abs() < 2.0 { 0.0 } else { v });
        let mut triplets = Vec::new();
        for r in 0..sparse_src.rows() {
            for c in 0..sparse_src.cols() {
                if sparse_src[(r, c)] != 0.0 {
                    triplets.push((r, c, sparse_src[(r, c)]));
                }
            }
        }
        let csr = CsrMatrix::from_coo(sparse_src.rows(), sparse_src.cols(), &triplets);
        prop_assert!(csr.to_dense().max_abs_diff(&sparse_src) < 1e-6);
        let x = Matrix::identity(sparse_src.cols());
        prop_assert!(csr.spmm(&x).max_abs_diff(&sparse_src) < 1e-6);
    }

    #[test]
    fn row_and_col_sums_agree_with_total(a in arb_matrix(7, 7)) {
        let total = a.sum();
        let via_rows: f32 = a.row_sums().as_slice().iter().sum();
        let via_cols: f32 = a.col_sums().as_slice().iter().sum();
        prop_assert!((total - via_rows).abs() < 1e-3);
        prop_assert!((total - via_cols).abs() < 1e-3);
    }
}
