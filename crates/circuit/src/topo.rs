//! Topological utilities over AIGs.
//!
//! Nodes inside an [`Aig`] are already stored in topological order; these
//! helpers derive per-node structural quantities used by the feature
//! extractor, the synthesis passes, and the generators.

use crate::Aig;

/// Logic level of every node (PIs and the constant at level 0; an AND is one
/// more than its deepest fanin).
///
/// # Examples
///
/// ```
/// use hoga_circuit::{levels, Aig};
///
/// let mut g = Aig::new(2);
/// let (a, b) = (g.pi_lit(0), g.pi_lit(1));
/// let x = g.xor(a, b);
/// g.add_po(x);
/// let lv = levels(&g);
/// assert_eq!(lv[x.node() as usize], 2); // xor = two AND levels
/// ```
pub fn levels(aig: &Aig) -> Vec<u32> {
    let mut lv = vec![0u32; aig.num_nodes()];
    for (id, a, b) in aig.and_gates() {
        lv[id as usize] = 1 + lv[a.node() as usize].max(lv[b.node() as usize]);
    }
    lv
}

/// Number of gate fanouts of every node (PO references not counted).
pub fn fanout_counts(aig: &Aig) -> Vec<u32> {
    let mut fo = vec![0u32; aig.num_nodes()];
    for (_, a, b) in aig.and_gates() {
        fo[a.node() as usize] += 1;
        fo[b.node() as usize] += 1;
    }
    fo
}

/// The maximum logic level over the PO drivers (circuit depth).
pub fn depth(aig: &Aig) -> u32 {
    let lv = levels(aig);
    aig.pos().iter().map(|po| lv[po.node() as usize]).max().unwrap_or(0)
}

/// Per-node count of complemented fanin edges (0, 1 or 2 for AND gates).
pub(crate) fn inverted_fanin_counts(aig: &Aig) -> Vec<u8> {
    let mut counts = vec![0u8; aig.num_nodes()];
    for (id, a, b) in aig.and_gates() {
        counts[id as usize] = a.is_complemented() as u8 + b.is_complemented() as u8;
    }
    counts
}

/// Whether each node drives at least one primary output.
pub(crate) fn drives_po(aig: &Aig) -> Vec<bool> {
    let mut out = vec![false; aig.num_nodes()];
    for po in aig.pos() {
        out[po.node() as usize] = true;
    }
    out
}

/// Structural summary of an AIG, used by dataset statistics tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AigStats {
    /// Total node count (constant + PIs + ANDs).
    pub nodes: usize,
    /// Directed fanin edges.
    pub edges: usize,
    /// AND-gate count.
    pub ands: usize,
    /// Primary inputs.
    pub pis: usize,
    /// Primary outputs.
    pub pos: usize,
    /// Circuit depth in AND levels.
    pub depth: u32,
}

impl std::fmt::Display for AigStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} nodes, {} edges, {} ANDs, {} PIs, {} POs, depth {}",
            self.nodes, self.edges, self.ands, self.pis, self.pos, self.depth
        )
    }
}

/// Computes an [`AigStats`] summary.
pub fn stats(aig: &Aig) -> AigStats {
    AigStats {
        nodes: aig.num_nodes(),
        edges: aig.num_edges(),
        ands: aig.num_ands(),
        pis: aig.num_pis(),
        pos: aig.num_pos(),
        depth: depth(aig),
    }
}

/// Size of each node's transitive fanin cone, capped at `cap` (used by the
/// refactor pass to pick cone roots).
// analyze: allow(dead-public-api) — public cone-profiling diagnostic of the topology API; covered by tests
pub fn cone_sizes(aig: &Aig, cap: usize) -> Vec<usize> {
    let mut sizes = vec![0usize; aig.num_nodes()];
    for (id, a, b) in aig.and_gates() {
        let sa = sizes[a.node() as usize];
        let sb = sizes[b.node() as usize];
        sizes[id as usize] = (1 + sa + sb).min(cap);
    }
    sizes
}

#[cfg(test)]
mod tests {
    use super::*;

    fn adder() -> Aig {
        let mut g = Aig::new(3);
        let (a, b, c) = (g.pi_lit(0), g.pi_lit(1), g.pi_lit(2));
        let x = g.xor(a, b);
        let s = g.xor(x, c);
        let carry = g.maj(a, b, c);
        g.add_po(s);
        g.add_po(carry);
        g
    }

    #[test]
    fn levels_monotonic_along_edges() {
        let g = adder();
        let lv = levels(&g);
        for (id, a, b) in g.and_gates() {
            assert!(lv[id as usize] > lv[a.node() as usize]);
            assert!(lv[id as usize] > lv[b.node() as usize]);
        }
    }

    #[test]
    fn depth_of_full_adder() {
        let g = adder();
        assert_eq!(depth(&g), 4); // two chained xors = 4 AND levels
    }

    #[test]
    fn fanout_counts_sum_to_edge_count() {
        let g = adder();
        let fo = fanout_counts(&g);
        let total: u32 = fo.iter().sum();
        assert_eq!(total as usize, g.num_edges());
    }

    #[test]
    fn inverted_fanin_counts_bounded_by_two() {
        let g = adder();
        assert!(inverted_fanin_counts(&g).iter().all(|&c| c <= 2));
    }

    #[test]
    fn drives_po_marks_exactly_po_nodes() {
        let g = adder();
        let d = drives_po(&g);
        let marked = d.iter().filter(|&&b| b).count();
        assert_eq!(marked, 2);
    }

    #[test]
    fn stats_consistent() {
        let g = adder();
        let s = stats(&g);
        assert_eq!(s.ands * 2, s.edges);
        assert_eq!(s.nodes, 1 + s.pis + s.ands);
        assert_eq!(s.pos, 2);
    }

    #[test]
    fn cone_sizes_capped() {
        let g = adder();
        let sizes = cone_sizes(&g, 3);
        assert!(sizes.iter().all(|&s| s <= 3));
    }
}
