//! The structurally hashed And-Inverter Graph.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Index of a node inside an [`Aig`] (`0` is the constant-false node).
pub type NodeId = u32;

/// A literal: a node reference with an optional complement bit, encoded
/// ABC-style as `node_id << 1 | complement`.
///
/// # Examples
///
/// ```
/// use hoga_circuit::Lit;
///
/// let a = Lit::from_node(3, false);
/// assert_eq!(a.node(), 3);
/// assert!(!a.is_complemented());
/// assert!((!a).is_complemented());
/// assert_eq!(!!a, a);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Lit(u32);

impl Lit {
    /// The constant-false literal.
    pub const FALSE: Lit = Lit(0);
    /// The constant-true literal.
    pub const TRUE: Lit = Lit(1);

    /// Builds a literal from a node index and a complement flag.
    pub fn from_node(node: NodeId, complemented: bool) -> Self {
        Lit(node << 1 | complemented as u32)
    }

    /// The node this literal refers to.
    pub fn node(self) -> NodeId {
        self.0 >> 1
    }

    /// Whether the literal is complemented (an inverted edge).
    pub fn is_complemented(self) -> bool {
        self.0 & 1 == 1
    }

    /// Whether this is one of the two constant literals.
    pub fn is_const(self) -> bool {
        self.node() == 0
    }

    /// The raw `node << 1 | c` encoding.
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Rebuilds a literal from its raw encoding.
    pub fn from_raw(raw: u32) -> Self {
        Lit(raw)
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;

    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_complemented() {
            write!(f, "!n{}", self.node())
        } else {
            write!(f, "n{}", self.node())
        }
    }
}

/// The role of a node inside an [`Aig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeKind {
    /// The constant-false node (always node 0).
    Const0,
    /// Primary input number `.0`.
    Pi(u32),
    /// Two-input AND gate over the given fanin literals.
    And(Lit, Lit),
}

/// An ABC-style And-Inverter Graph.
///
/// Nodes are stored in topological order by construction (a gate's fanins
/// always precede it). Gate creation goes through [`Aig::and`], which applies
/// constant folding, the trivial identities, and structural hashing, so
/// equivalent `(f0, f1)` pairs share one node.
///
/// See the [crate-level example](crate) for typical usage.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Aig {
    nodes: Vec<NodeKind>,
    pos: Vec<Lit>,
    num_pis: usize,
    #[serde(skip)]
    strash: HashMap<(u32, u32), NodeId>,
}

impl PartialEq for Aig {
    fn eq(&self, other: &Self) -> bool {
        self.nodes == other.nodes && self.pos == other.pos && self.num_pis == other.num_pis
    }
}

impl Aig {
    /// Creates an AIG with `num_pis` primary inputs and no gates.
    pub fn new(num_pis: usize) -> Self {
        let mut nodes = Vec::with_capacity(num_pis + 1);
        nodes.push(NodeKind::Const0);
        for i in 0..num_pis {
            nodes.push(NodeKind::Pi(i as u32));
        }
        Self { nodes, pos: Vec::new(), num_pis, strash: HashMap::new() }
    }

    /// The positive literal of primary input `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= self.num_pis()`.
    pub fn pi_lit(&self, idx: usize) -> Lit {
        assert!(idx < self.num_pis, "PI index {idx} out of range");
        Lit::from_node(idx as NodeId + 1, false)
    }

    /// Appends a fresh primary input and returns its positive literal.
    ///
    /// # Panics
    ///
    /// Panics if any AND gate already exists (PIs must precede gates to keep
    /// node order topological).
    // analyze: allow(dead-public-api) — incremental-construction entry of the public AIG builder API; generators use with_pis, tests use this path
    pub fn add_pi(&mut self) -> Lit {
        assert_eq!(self.nodes.len(), self.num_pis + 1, "PIs must be added before any gate");
        self.nodes.push(NodeKind::Pi(self.num_pis as u32));
        self.num_pis += 1;
        Lit::from_node(self.nodes.len() as NodeId - 1, false)
    }

    /// Creates (or reuses) the AND of two literals.
    ///
    /// Applies constant folding (`x·0 = 0`, `x·1 = x`), idempotence
    /// (`x·x = x`), complementation (`x·!x = 0`), canonical fanin ordering,
    /// and structural hashing.
    ///
    /// # Panics
    ///
    /// Panics if either literal refers to a node that does not exist yet.
    pub fn and(&mut self, a: Lit, b: Lit) -> Lit {
        assert!((a.node() as usize) < self.nodes.len(), "literal {a} out of range");
        assert!((b.node() as usize) < self.nodes.len(), "literal {b} out of range");
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        if a == Lit::FALSE {
            return Lit::FALSE;
        }
        if a == Lit::TRUE {
            return b;
        }
        if a == b {
            return a;
        }
        if a == !b {
            return Lit::FALSE;
        }
        if let Some(&n) = self.strash.get(&(a.raw(), b.raw())) {
            return Lit::from_node(n, false);
        }
        let id = self.nodes.len() as NodeId;
        self.nodes.push(NodeKind::And(a, b));
        self.strash.insert((a.raw(), b.raw()), id);
        Lit::from_node(id, false)
    }

    /// Appends an AND gate *exactly as given*, bypassing constant folding
    /// and structural hashing — used by the AIGER reader so round-trips are
    /// bit-exact. The gate is still registered for future hashing.
    ///
    /// # Errors
    ///
    /// Returns an error if either fanin references a node that does not
    /// exist yet (which would break topological order).
    pub(crate) fn and_raw(&mut self, a: Lit, b: Lit) -> Result<Lit, String> {
        if a.node() as usize >= self.nodes.len() || b.node() as usize >= self.nodes.len() {
            return Err(format!("fanin {a} or {b} out of range"));
        }
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        let id = self.nodes.len() as NodeId;
        self.nodes.push(NodeKind::And(a, b));
        self.strash.entry((a.raw(), b.raw())).or_insert(id);
        Ok(Lit::from_node(id, false))
    }

    /// `a OR b` via De Morgan.
    pub fn or(&mut self, a: Lit, b: Lit) -> Lit {
        !self.and(!a, !b)
    }

    /// `a XOR b` (three AND gates).
    pub fn xor(&mut self, a: Lit, b: Lit) -> Lit {
        let n_ab = self.and(a, !b);
        let n_ba = self.and(!a, b);
        self.or(n_ab, n_ba)
    }

    /// Majority of three literals — the carry function of a full adder.
    pub fn maj(&mut self, a: Lit, b: Lit, c: Lit) -> Lit {
        let ab = self.and(a, b);
        let ac = self.and(a, c);
        let bc = self.and(b, c);
        let t = self.or(ab, ac);
        self.or(t, bc)
    }

    /// If-then-else `cond ? then_ : else_`.
    pub fn mux(&mut self, cond: Lit, then_: Lit, else_: Lit) -> Lit {
        let t = self.and(cond, then_);
        let e = self.and(!cond, else_);
        self.or(t, e)
    }

    /// Registers a primary output.
    pub fn add_po(&mut self, lit: Lit) {
        assert!((lit.node() as usize) < self.nodes.len(), "PO literal {lit} out of range");
        self.pos.push(lit);
    }

    /// Number of primary inputs.
    pub fn num_pis(&self) -> usize {
        self.num_pis
    }

    /// Number of primary outputs.
    pub fn num_pos(&self) -> usize {
        self.pos.len()
    }

    /// Total node count (constant + PIs + ANDs).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of AND gates — the paper's "gate count" QoR metric.
    pub fn num_ands(&self) -> usize {
        self.nodes.len() - 1 - self.num_pis
    }

    /// Number of directed fanin edges (2 per AND gate).
    pub fn num_edges(&self) -> usize {
        self.num_ands() * 2
    }

    /// The kind of node `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node(&self, id: NodeId) -> NodeKind {
        self.nodes[id as usize]
    }

    /// The primary-output literals.
    pub fn pos(&self) -> &[Lit] {
        &self.pos
    }

    /// Replaces primary output `idx` (used by rewriting passes).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range or `lit` refers to a missing node.
    pub fn set_po(&mut self, idx: usize, lit: Lit) {
        assert!((lit.node() as usize) < self.nodes.len(), "PO literal {lit} out of range");
        self.pos[idx] = lit;
    }

    /// Iterates over `(id, f0, f1)` for every AND gate, in topological order.
    pub fn and_gates(&self) -> impl Iterator<Item = (NodeId, Lit, Lit)> + '_ {
        self.nodes.iter().enumerate().filter_map(|(i, n)| match n {
            NodeKind::And(a, b) => Some((i as NodeId, *a, *b)),
            _ => None,
        })
    }

    /// Marks the nodes reachable from the POs (transitive fanin).
    pub(crate) fn live_nodes(&self) -> Vec<bool> {
        let mut live = vec![false; self.nodes.len()];
        live[0] = true;
        let mut stack: Vec<NodeId> = self.pos.iter().map(|l| l.node()).collect();
        while let Some(n) = stack.pop() {
            if live[n as usize] {
                continue;
            }
            live[n as usize] = true;
            if let NodeKind::And(a, b) = self.nodes[n as usize] {
                stack.push(a.node());
                stack.push(b.node());
            }
        }
        // PIs always remain part of the graph even if dangling.
        for l in live.iter_mut().take(self.num_pis + 1) {
            *l = true;
        }
        live
    }

    /// Removes dangling AND gates, renumbering nodes; returns the old→new
    /// node map (`None` for removed nodes).
    ///
    /// Structural hashing is rebuilt, so subsequent [`Aig::and`] calls keep
    /// deduplicating.
    pub fn compact(&mut self) -> Vec<Option<NodeId>> {
        let live = self.live_nodes();
        let mut remap: Vec<Option<NodeId>> = vec![None; self.nodes.len()];
        let mut new_nodes = Vec::with_capacity(self.nodes.len());
        for (i, kind) in self.nodes.iter().enumerate() {
            if !live[i] {
                continue;
            }
            let new_id = new_nodes.len() as NodeId;
            remap[i] = Some(new_id);
            let mapped = match *kind {
                NodeKind::And(a, b) => {
                    let ma = remap[a.node() as usize].expect("fanin must be live");
                    let mb = remap[b.node() as usize].expect("fanin must be live");
                    NodeKind::And(
                        Lit::from_node(ma, a.is_complemented()),
                        Lit::from_node(mb, b.is_complemented()),
                    )
                }
                k => k,
            };
            new_nodes.push(mapped);
        }
        self.nodes = new_nodes;
        for po in &mut self.pos {
            let m = remap[po.node() as usize].expect("PO driver must be live");
            *po = Lit::from_node(m, po.is_complemented());
        }
        self.strash.clear();
        for (i, kind) in self.nodes.iter().enumerate() {
            if let NodeKind::And(a, b) = kind {
                self.strash.insert((a.raw(), b.raw()), i as NodeId);
            }
        }
        remap
    }

    /// Drops every node with index `>= num_nodes`, undoing speculative gate
    /// construction (used by synthesis passes to roll back rejected
    /// resyntheses).
    ///
    /// # Panics
    ///
    /// Panics if `num_nodes` would remove the constant or a PI, or if any
    /// primary output references a removed node.
    // analyze: allow(dead-public-api) — public rollback primitive for speculative synthesis edits; covered by tests
    pub fn truncate_nodes(&mut self, num_nodes: usize) {
        assert!(num_nodes > self.num_pis, "cannot truncate PIs");
        assert!(
            self.pos.iter().all(|po| (po.node() as usize) < num_nodes),
            "a PO references a node being truncated"
        );
        if num_nodes >= self.nodes.len() {
            return;
        }
        self.nodes.truncate(num_nodes);
        self.strash.retain(|_, &mut id| (id as usize) < num_nodes);
    }

    /// Directed fanin→gate edge list as `(src, dst, src_complemented)`.
    pub fn edges(&self) -> Vec<(NodeId, NodeId, bool)> {
        let mut out = Vec::with_capacity(self.num_edges());
        for (id, a, b) in self.and_gates() {
            out.push((a.node(), id, a.is_complemented()));
            out.push((b.node(), id, b.is_complemented()));
        }
        out
    }

    /// Validates internal invariants (fanins precede gates, POs in range).
    ///
    /// Intended for tests and debug assertions.
    pub fn check(&self) -> Result<(), String> {
        if self.nodes.is_empty() || self.nodes[0] != NodeKind::Const0 {
            return Err("node 0 must be Const0".into());
        }
        for (i, kind) in self.nodes.iter().enumerate() {
            match *kind {
                NodeKind::Const0 if i != 0 => return Err(format!("Const0 at index {i}")),
                NodeKind::Pi(k) if i != k as usize + 1 => {
                    return Err(format!("PI {k} at wrong index {i}"))
                }
                NodeKind::And(a, b) if a.node() as usize >= i || b.node() as usize >= i => {
                    return Err(format!("gate {i} has forward fanin"))
                }
                _ => {}
            }
        }
        for po in &self.pos {
            if po.node() as usize >= self.nodes.len() {
                return Err(format!("PO {po} out of range"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_encoding_roundtrips() {
        for node in [0u32, 1, 5, 1000] {
            for c in [false, true] {
                let l = Lit::from_node(node, c);
                assert_eq!(l.node(), node);
                assert_eq!(l.is_complemented(), c);
                assert_eq!(Lit::from_raw(l.raw()), l);
            }
        }
        assert_eq!(!Lit::FALSE, Lit::TRUE);
    }

    #[test]
    fn and_constant_folding() {
        let mut g = Aig::new(1);
        let a = g.pi_lit(0);
        assert_eq!(g.and(a, Lit::FALSE), Lit::FALSE);
        assert_eq!(g.and(a, Lit::TRUE), a);
        assert_eq!(g.and(a, a), a);
        assert_eq!(g.and(a, !a), Lit::FALSE);
        assert_eq!(g.num_ands(), 0);
    }

    #[test]
    fn structural_hashing_dedups() {
        let mut g = Aig::new(2);
        let (a, b) = (g.pi_lit(0), g.pi_lit(1));
        let x = g.and(a, b);
        let y = g.and(b, a); // commuted
        assert_eq!(x, y);
        assert_eq!(g.num_ands(), 1);
        let z = g.and(!a, b);
        assert_ne!(x, z);
        assert_eq!(g.num_ands(), 2);
    }

    #[test]
    fn xor_or_maj_mux_gate_counts() {
        let mut g = Aig::new(3);
        let (a, b, c) = (g.pi_lit(0), g.pi_lit(1), g.pi_lit(2));
        let x = g.xor(a, b);
        assert_eq!(g.num_ands(), 3);
        let _ = g.or(x, c);
        let before = g.num_ands();
        let _ = g.or(x, c); // strashed
        assert_eq!(g.num_ands(), before);
        let _ = g.maj(a, b, c);
        let _ = g.mux(a, b, c);
        assert!(g.check().is_ok());
    }

    #[test]
    fn compact_removes_dangling_gates() {
        let mut g = Aig::new(2);
        let (a, b) = (g.pi_lit(0), g.pi_lit(1));
        let keep = g.and(a, b);
        let _dangling = g.and(!a, !b);
        g.add_po(keep);
        assert_eq!(g.num_ands(), 2);
        let remap = g.compact();
        assert_eq!(g.num_ands(), 1);
        assert!(g.check().is_ok());
        assert_eq!(remap[keep.node() as usize].map(|n| g.node(n)), Some(g.node(g.pos()[0].node())));
    }

    #[test]
    fn compact_preserves_pi_identity() {
        let mut g = Aig::new(3);
        let c = g.pi_lit(2);
        g.add_po(!c);
        g.compact();
        assert_eq!(g.num_pis(), 3);
        assert_eq!(g.pos()[0], !g.pi_lit(2));
    }

    #[test]
    fn strash_works_after_compact() {
        let mut g = Aig::new(2);
        let (a, b) = (g.pi_lit(0), g.pi_lit(1));
        let x = g.and(a, b);
        g.add_po(x);
        g.compact();
        let (a, b) = (g.pi_lit(0), g.pi_lit(1));
        let y = g.and(a, b);
        assert_eq!(y, g.pos()[0]);
        assert_eq!(g.num_ands(), 1);
    }

    #[test]
    fn edges_report_inversion() {
        let mut g = Aig::new(2);
        let (a, b) = (g.pi_lit(0), g.pi_lit(1));
        let x = g.and(!a, b);
        g.add_po(x);
        let edges = g.edges();
        assert_eq!(edges.len(), 2);
        let inverted: Vec<bool> = edges.iter().map(|&(_, _, c)| c).collect();
        assert_eq!(inverted.iter().filter(|&&c| c).count(), 1);
    }

    #[test]
    fn add_pi_after_gate_panics() {
        let mut g = Aig::new(1);
        let a = g.pi_lit(0);
        let _ = g.and(a, !a); // folded, no gate created
        let _ = g.add_pi(); // still fine
        let b = g.pi_lit(1);
        let _ = g.and(a, b);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut g2 = g.clone();
            g2.add_pi();
        }));
        assert!(result.is_err());
    }

    #[test]
    fn truncate_rolls_back_speculative_gates() {
        let mut g = Aig::new(2);
        let (a, b) = (g.pi_lit(0), g.pi_lit(1));
        let x = g.and(a, b);
        g.add_po(x);
        let checkpoint = g.num_nodes();
        let spec = g.and(!a, !b);
        assert_eq!(g.num_ands(), 2);
        g.truncate_nodes(checkpoint);
        assert_eq!(g.num_ands(), 1);
        assert!(g.check().is_ok());
        // Strash no longer resolves the removed gate; a new node is created.
        let again = g.and(!a, !b);
        assert_eq!(again.node(), spec.node(), "node index is reused");
        assert_eq!(g.num_ands(), 2);
    }

    #[test]
    fn check_catches_forward_reference() {
        let mut g = Aig::new(1);
        g.add_po(Lit::from_node(1, false));
        assert!(g.check().is_ok());
    }
}
