//! Graph-matrix views of an AIG.
//!
//! HOGA's hop-wise features (Eq. 3) and the GCN baseline both consume the
//! symmetrically normalized adjacency `Â = D^{-1/2} (A + I) D^{-1/2}` of the
//! *undirected* circuit graph; GraphSAGE-style mean aggregation consumes the
//! row-normalized `D^{-1} A`.

use crate::Aig;
use hoga_tensor::CsrMatrix;

/// Undirected, unweighted adjacency of the AIG (each fanin edge contributes
/// both directions; no self-loops; parallel edges merged).
pub fn undirected(aig: &Aig) -> CsrMatrix {
    let n = aig.num_nodes();
    let mut triplets = Vec::with_capacity(aig.num_edges() * 2);
    for (id, a, b) in aig.and_gates() {
        for f in [a.node(), b.node()] {
            if f != id {
                triplets.push((f as usize, id as usize, 1.0));
                triplets.push((id as usize, f as usize, 1.0));
            }
        }
    }
    clamp_binary(CsrMatrix::from_coo(n, n, &triplets))
}

/// Directed fanin→gate adjacency (rows = destinations), used by
/// direction-aware models and by the random-walk sampler.
// analyze: allow(dead-public-api) — direction-aware companion of the public adjacency API; kept for directed-model baselines and covered by tests
pub fn directed(aig: &Aig) -> CsrMatrix {
    let n = aig.num_nodes();
    let mut triplets = Vec::with_capacity(aig.num_edges());
    for (id, a, b) in aig.and_gates() {
        triplets.push((id as usize, a.node() as usize, 1.0));
        triplets.push((id as usize, b.node() as usize, 1.0));
    }
    clamp_binary(CsrMatrix::from_coo(n, n, &triplets))
}

/// Duplicate-merged entries can have value 2 (both fanins from the same
/// node); clamp back to 1 to keep the graph unweighted.
fn clamp_binary(m: CsrMatrix) -> CsrMatrix {
    let n = (m.rows(), m.cols());
    let mut triplets = Vec::with_capacity(m.nnz());
    for r in 0..m.rows() {
        for (c, _) in m.row_entries(r) {
            triplets.push((r, c, 1.0));
        }
    }
    CsrMatrix::from_coo(n.0, n.1, &triplets)
}

/// Symmetric GCN normalization `Â = D^{-1/2} (A + I) D^{-1/2}` over the
/// undirected graph — the operator iterated in Eq. 3 of the paper.
///
/// The result is symmetric, so it serves as its own transpose in backward
/// passes.
pub fn normalized_symmetric(aig: &Aig) -> CsrMatrix {
    let n = aig.num_nodes();
    let adj = undirected(aig);
    let mut triplets = Vec::with_capacity(adj.nnz() + n);
    for r in 0..n {
        triplets.push((r, r, 1.0));
        for (c, v) in adj.row_entries(r) {
            triplets.push((r, c, v));
        }
    }
    let a_plus_i = CsrMatrix::from_coo(n, n, &triplets);
    let deg: Vec<f32> = a_plus_i.row_nnz().iter().map(|&d| 1.0 / (d as f32).sqrt()).collect();
    a_plus_i.scale_rows(&deg).scale_cols(&deg)
}

/// Row (mean) normalization `D^{-1} A` over the undirected graph, used by
/// the GraphSAGE baseline's neighbor-mean aggregator.
pub fn normalized_mean(aig: &Aig) -> CsrMatrix {
    let adj = undirected(aig);
    let deg: Vec<f32> =
        adj.row_nnz().iter().map(|&d| if d == 0 { 0.0 } else { 1.0 / d as f32 }).collect();
    adj.scale_rows(&deg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Aig;

    fn sample() -> Aig {
        let mut g = Aig::new(3);
        let (a, b, c) = (g.pi_lit(0), g.pi_lit(1), g.pi_lit(2));
        let x = g.xor(a, b);
        let y = g.and(x, c);
        g.add_po(y);
        g
    }

    #[test]
    fn undirected_is_symmetric_binary() {
        let g = sample();
        let a = undirected(&g);
        let d = a.to_dense();
        assert!(d.max_abs_diff(&d.transpose()) < 1e-6);
        assert!(d.as_slice().iter().all(|&v| v == 0.0 || v == 1.0));
        // No self loops.
        for i in 0..g.num_nodes() {
            assert_eq!(d[(i, i)], 0.0);
        }
    }

    #[test]
    fn directed_has_two_entries_per_gate() {
        let g = sample();
        let a = directed(&g);
        assert_eq!(a.nnz(), g.num_edges());
    }

    #[test]
    fn symmetric_normalization_rows_bounded() {
        let g = sample();
        let n = normalized_symmetric(&g);
        let d = n.to_dense();
        assert!(d.max_abs_diff(&d.transpose()) < 1e-6, "must stay symmetric");
        // Eigenvalues of the normalized adjacency lie in [-1, 1]; a quick
        // sanity proxy: every entry is in (0, 1].
        for r in 0..g.num_nodes() {
            for (_, v) in n.row_entries(r) {
                assert!(v > 0.0 && v <= 1.0, "entry {v} out of range");
            }
        }
        // Self-loops present.
        for i in 0..g.num_nodes() {
            assert!(d[(i, i)] > 0.0);
        }
    }

    #[test]
    fn mean_normalization_rows_sum_to_one() {
        let g = sample();
        let n = normalized_mean(&g);
        for r in 0..g.num_nodes() {
            let s: f32 = n.row_entries(r).map(|(_, v)| v).sum();
            if s > 0.0 {
                assert!((s - 1.0).abs() < 1e-5, "row {r} sums to {s}");
            }
        }
    }

    #[test]
    fn double_fanin_from_same_node_stays_binary() {
        // Gate with both fanins from the same node (a & !a is folded, so use
        // two distinct literals of distinct nodes through xor instead).
        let mut g = Aig::new(2);
        let (a, b) = (g.pi_lit(0), g.pi_lit(1));
        let x = g.and(a, b);
        let y = g.and(x, !x); // folds to FALSE, no gate
        assert_eq!(y, crate::Lit::FALSE);
        g.add_po(x);
        let u = undirected(&g);
        let d = u.to_dense();
        assert!(d.as_slice().iter().all(|&v| v == 0.0 || v == 1.0));
    }
}
