//! Per-node input features `X`.
//!
//! Mirrors the OpenABC-D featurization: a node-type one-hot (constant / PI /
//! AND / PO-driver) plus a one-hot of the number of inverted fanin edges
//! (0, 1 or 2). The paper feeds these raw features to Eq. 3; richer task
//! conditioning (e.g. the synthesis recipe for QoR prediction) is appended
//! downstream by `hoga-datasets`.

use crate::topo::{drives_po, inverted_fanin_counts};
use crate::{Aig, NodeKind};
use hoga_tensor::Matrix;

/// Width of the node feature vector produced by [`node_features`].
pub const NODE_FEATURE_DIM: usize = 7;

/// Builds the `num_nodes × NODE_FEATURE_DIM` feature matrix:
///
/// | cols | meaning |
/// |------|---------|
/// | 0–2  | one-hot node type: constant, PI, AND |
/// | 3    | 1.0 if the node drives a primary output |
/// | 4–6  | one-hot inverted-fanin count: 0, 1, 2 |
///
/// # Examples
///
/// ```
/// use hoga_circuit::{features::node_features, Aig};
///
/// let mut g = Aig::new(2);
/// let x = {
///     let (a, b) = (g.pi_lit(0), g.pi_lit(1));
///     g.and(a, !b)
/// };
/// g.add_po(x);
/// let f = node_features(&g);
/// assert_eq!(f.rows(), g.num_nodes());
/// assert_eq!(f[(x.node() as usize, 5)], 1.0); // one inverted fanin
/// ```
pub fn node_features(aig: &Aig) -> Matrix {
    let inv = inverted_fanin_counts(aig);
    let po = drives_po(aig);
    let mut m = Matrix::zeros(aig.num_nodes(), NODE_FEATURE_DIM);
    for i in 0..aig.num_nodes() {
        let row = m.row_mut(i);
        match aig.node(i as u32) {
            NodeKind::Const0 => row[0] = 1.0,
            NodeKind::Pi(_) => row[1] = 1.0,
            NodeKind::And(_, _) => row[2] = 1.0,
        }
        if po[i] {
            row[3] = 1.0;
        }
        row[4 + inv[i] as usize] = 1.0;
    }
    m
}

/// Appends `extra` constant columns (broadcast to every node) to a feature
/// matrix — used to condition QoR prediction on the synthesis recipe.
///
/// # Panics
///
/// Panics if `base` is empty while `extra` is not.
// analyze: allow(dead-public-api) — public feature-assembly helper mirroring the OpenABC-D pipeline; covered by tests
pub fn append_global_features(base: &Matrix, extra: &[f32]) -> Matrix {
    let bcast = Matrix::from_fn(base.rows(), extra.len(), |_, c| extra[c]);
    base.concat_cols(&bcast)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feature_rows_are_valid_one_hots() {
        let mut g = Aig::new(3);
        let (a, b, c) = (g.pi_lit(0), g.pi_lit(1), g.pi_lit(2));
        let s = g.xor(a, b);
        let t = g.maj(a, b, c);
        g.add_po(s);
        g.add_po(t);
        let f = node_features(&g);
        for r in 0..f.rows() {
            let type_sum: f32 = f.row(r)[0..3].iter().sum();
            let inv_sum: f32 = f.row(r)[4..7].iter().sum();
            assert_eq!(type_sum, 1.0, "row {r} node type not one-hot");
            assert_eq!(inv_sum, 1.0, "row {r} inversion not one-hot");
        }
    }

    #[test]
    fn pi_and_const_have_zero_inverted_fanins() {
        let g = Aig::new(2);
        let f = node_features(&g);
        assert_eq!(f[(0, 0)], 1.0); // const
        assert_eq!(f[(1, 1)], 1.0); // pi
        assert_eq!(f[(0, 4)], 1.0);
        assert_eq!(f[(1, 4)], 1.0);
    }

    #[test]
    fn global_features_broadcast() {
        let mut g = Aig::new(1);
        let a = g.pi_lit(0);
        g.add_po(a);
        let f = node_features(&g);
        let out = append_global_features(&f, &[0.5, -1.0]);
        assert_eq!(out.cols(), NODE_FEATURE_DIM + 2);
        for r in 0..out.rows() {
            assert_eq!(out[(r, NODE_FEATURE_DIM)], 0.5);
            assert_eq!(out[(r, NODE_FEATURE_DIM + 1)], -1.0);
        }
    }
}
