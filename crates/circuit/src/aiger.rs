//! AIGER format I/O (binary `aig` and ASCII `aag`).
//!
//! AIGER is the de-facto interchange format for And-Inverter Graphs (used
//! by ABC, the HWMCC model checkers, and the real OpenABC-D dataset).
//! Supporting it makes this reproduction interoperable with the original
//! toolchain: circuits generated here can be optimized by real ABC and
//! vice versa. Only combinational AIGs (no latches) are supported, which
//! covers everything in the HOGA paper.
//!
//! The encoding is convenient for us because AIGER's literal scheme
//! (`2·var + complement`, variable 0 = constant false, inputs first) is
//! exactly [`Lit`]'s representation.

use crate::{Aig, Lit};
use std::error::Error;
use std::fmt;
use std::io::{BufRead, Read, Write};

/// Error produced when parsing an AIGER file fails.
#[derive(Debug)]
pub struct ParseAigerError(String);

impl fmt::Display for ParseAigerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid AIGER: {}", self.0)
    }
}

impl Error for ParseAigerError {}

fn perr(msg: impl Into<String>) -> ParseAigerError {
    ParseAigerError(msg.into())
}

/// Upper bound on header counts accepted by the readers. AIGER headers
/// carry free-form integers, so a corrupt or adversarial file could
/// otherwise request a multi-gigabyte allocation up front (an abort, not a
/// catchable error). Real circuits in this workspace are far smaller.
const MAX_HEADER_ITEMS: usize = 1 << 26;

fn check_header_counts(i: usize, o: usize, a: usize) -> Result<(), ParseAigerError> {
    if i > MAX_HEADER_ITEMS || o > MAX_HEADER_ITEMS || a > MAX_HEADER_ITEMS {
        return Err(perr(format!("implausible header counts I={i} O={o} A={a}")));
    }
    Ok(())
}

/// Writes the AIG in binary AIGER (`aig`) format.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
///
/// # Panics
///
/// Panics if the AIG violates its own topological invariant (cannot happen
/// for AIGs built through the public API).
pub fn write_aiger(aig: &Aig, mut w: impl Write) -> std::io::Result<()> {
    let i = aig.num_pis();
    let a = aig.num_ands();
    let m = i + a;
    writeln!(w, "aig {m} {i} 0 {} {a}", aig.num_pos())?;
    for po in aig.pos() {
        writeln!(w, "{}", po.raw())?;
    }
    for (id, f0, f1) in aig.and_gates() {
        let lhs = (id as u64) << 1;
        let (rhs0, rhs1) = if f0.raw() >= f1.raw() {
            (f0.raw() as u64, f1.raw() as u64)
        } else {
            (f1.raw() as u64, f0.raw() as u64)
        };
        assert!(lhs > rhs0, "AIG not topologically ordered");
        write_delta(&mut w, lhs - rhs0)?;
        write_delta(&mut w, rhs0 - rhs1)?;
    }
    Ok(())
}

/// Writes the AIG in ASCII AIGER (`aag`) format (human-readable).
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_ascii_aiger(aig: &Aig, mut w: impl Write) -> std::io::Result<()> {
    let i = aig.num_pis();
    let a = aig.num_ands();
    let m = i + a;
    writeln!(w, "aag {m} {i} 0 {} {a}", aig.num_pos())?;
    for pi in 0..i {
        writeln!(w, "{}", aig.pi_lit(pi).raw())?;
    }
    for po in aig.pos() {
        writeln!(w, "{}", po.raw())?;
    }
    for (id, f0, f1) in aig.and_gates() {
        let (rhs0, rhs1) = if f0.raw() >= f1.raw() { (f0, f1) } else { (f1, f0) };
        writeln!(w, "{} {} {}", (id << 1), rhs0.raw(), rhs1.raw())?;
    }
    Ok(())
}

fn write_delta(w: &mut impl Write, mut delta: u64) -> std::io::Result<()> {
    loop {
        let byte = (delta & 0x7F) as u8;
        delta >>= 7;
        if delta == 0 {
            w.write_all(&[byte])?;
            return Ok(());
        }
        w.write_all(&[byte | 0x80])?;
    }
}

fn read_delta(r: &mut impl Read) -> Result<u64, ParseAigerError> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let mut byte = [0u8];
        r.read_exact(&mut byte).map_err(|e| perr(format!("truncated delta: {e}")))?;
        value |= u64::from(byte[0] & 0x7F) << shift;
        if byte[0] & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
        if shift > 63 {
            return Err(perr("delta overflow"));
        }
    }
}

/// Reads a binary AIGER (`aig`) file.
///
/// Only combinational AIGs are accepted (`L` must be 0). Structural
/// hashing is **not** re-applied during the read, so a round-trip is
/// exact; gates are still registered for future hashing.
///
/// # Errors
///
/// Returns [`ParseAigerError`] on malformed headers, latches, truncated
/// bodies, or non-topological gate definitions.
pub fn read_aiger(mut r: impl BufRead) -> Result<Aig, ParseAigerError> {
    let mut header = String::new();
    r.read_line(&mut header).map_err(|e| perr(e.to_string()))?;
    let parts: Vec<&str> = header.split_whitespace().collect();
    if parts.len() != 6 || parts[0] != "aig" {
        return Err(perr(format!("bad header `{}`", header.trim())));
    }
    let nums: Vec<usize> = parts[1..]
        .iter()
        .map(|p| p.parse().map_err(|_| perr(format!("bad number `{p}`"))))
        .collect::<Result<_, _>>()?;
    let (m, i, l, o, a) = (nums[0], nums[1], nums[2], nums[3], nums[4]);
    if l != 0 {
        return Err(perr("latches unsupported (combinational AIGs only)"));
    }
    check_header_counts(i, o, a)?;
    if Some(m) != i.checked_add(a) {
        return Err(perr(format!("inconsistent header: M={m} != I+A")));
    }
    let mut pos_raw = Vec::with_capacity(o);
    for _ in 0..o {
        let mut line = String::new();
        r.read_line(&mut line).map_err(|e| perr(e.to_string()))?;
        pos_raw.push(
            line.trim()
                .parse::<u32>()
                .map_err(|_| perr(format!("bad output literal `{}`", line.trim())))?,
        );
    }
    let mut aig = Aig::new(i);
    for k in 0..a {
        let lhs = ((i + 1 + k) as u64) << 1;
        let d0 = read_delta(&mut r)?;
        let d1 = read_delta(&mut r)?;
        let rhs0 = lhs.checked_sub(d0).ok_or_else(|| perr("delta0 underflow"))?;
        let rhs1 = rhs0.checked_sub(d1).ok_or_else(|| perr("delta1 underflow"))?;
        let f0 = u32::try_from(rhs0)
            .map(Lit::from_raw)
            .map_err(|_| perr(format!("rhs literal {rhs0} exceeds u32")))?;
        let f1 = u32::try_from(rhs1)
            .map(Lit::from_raw)
            .map_err(|_| perr(format!("rhs literal {rhs1} exceeds u32")))?;
        let lit = aig.and_raw(f0, f1).map_err(perr)?;
        debug_assert_eq!(lit.raw() as u64, lhs);
    }
    for raw in pos_raw {
        let po = Lit::from_raw(raw);
        if usize::try_from(po.node()).map_or(true, |n| n >= aig.num_nodes()) {
            return Err(perr(format!("output literal {raw} out of range")));
        }
        aig.add_po(po);
    }
    Ok(aig)
}

/// Reads an ASCII AIGER (`aag`) file.
///
/// # Errors
///
/// Returns [`ParseAigerError`] under the same conditions as [`read_aiger`].
pub fn read_ascii_aiger(r: impl BufRead) -> Result<Aig, ParseAigerError> {
    let mut lines = r.lines();
    let header =
        lines.next().ok_or_else(|| perr("empty file"))?.map_err(|e| perr(e.to_string()))?;
    let parts: Vec<&str> = header.split_whitespace().collect();
    if parts.len() != 6 || parts[0] != "aag" {
        return Err(perr(format!("bad header `{header}`")));
    }
    let nums: Vec<usize> = parts[1..]
        .iter()
        .map(|p| p.parse().map_err(|_| perr(format!("bad number `{p}`"))))
        .collect::<Result<_, _>>()?;
    let (_m, i, l, o, a) = (nums[0], nums[1], nums[2], nums[3], nums[4]);
    if l != 0 {
        return Err(perr("latches unsupported (combinational AIGs only)"));
    }
    check_header_counts(i, o, a)?;
    let mut next = || -> Result<String, ParseAigerError> {
        lines.next().ok_or_else(|| perr("truncated file"))?.map_err(|e| perr(e.to_string()))
    };
    // Input literal lines (must be 2, 4, ..., 2i in order).
    for k in 0..i {
        let line = next()?;
        let lit: u32 = line.trim().parse().map_err(|_| perr("bad input literal"))?;
        let want = u32::try_from((k + 1) << 1)
            .map_err(|_| perr(format!("input index {k} exceeds u32 literal space")))?;
        if lit != want {
            return Err(perr(format!("non-canonical input literal {lit}")));
        }
    }
    let mut pos_raw = Vec::with_capacity(o);
    for _ in 0..o {
        pos_raw.push(next()?.trim().parse::<u32>().map_err(|_| perr("bad output literal"))?);
    }
    let mut aig = Aig::new(i);
    for k in 0..a {
        let line = next()?;
        let fields: Vec<u32> = line
            .split_whitespace()
            .map(|f| f.parse().map_err(|_| perr(format!("bad gate line `{line}`"))))
            .collect::<Result<_, _>>()?;
        if fields.len() != 3 {
            return Err(perr(format!("bad gate line `{line}`")));
        }
        let expect_lhs = u32::try_from((i + 1 + k) << 1)
            .map_err(|_| perr(format!("gate index {k} exceeds u32 literal space")))?;
        if fields[0] != expect_lhs {
            return Err(perr(format!("non-canonical gate order: lhs {}", fields[0])));
        }
        let lit = aig.and_raw(Lit::from_raw(fields[1]), Lit::from_raw(fields[2])).map_err(perr)?;
        debug_assert_eq!(lit.raw(), expect_lhs);
    }
    for raw in pos_raw {
        let po = Lit::from_raw(raw);
        if usize::try_from(po.node()).map_or(true, |n| n >= aig.num_nodes()) {
            return Err(perr(format!("output literal {raw} out of range")));
        }
        aig.add_po(po);
    }
    Ok(aig)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate::probably_equivalent;

    fn sample() -> Aig {
        let mut g = Aig::new(4);
        let (a, b, c, d) = (g.pi_lit(0), g.pi_lit(1), g.pi_lit(2), g.pi_lit(3));
        let x = g.xor(a, b);
        let y = g.maj(b, c, d);
        let z = g.and(x, !y);
        g.add_po(z);
        g.add_po(!x);
        g.add_po(Lit::TRUE);
        g
    }

    #[test]
    fn binary_roundtrip_is_exact() {
        let g = sample();
        let mut buf = Vec::new();
        write_aiger(&g, &mut buf).expect("write");
        let h = read_aiger(&buf[..]).expect("read");
        assert_eq!(g.num_pis(), h.num_pis());
        assert_eq!(g.num_ands(), h.num_ands());
        assert_eq!(g.pos(), h.pos());
        assert!(probably_equivalent(&g, &h, 4, 0));
    }

    #[test]
    fn ascii_roundtrip_is_exact() {
        let g = sample();
        let mut buf = Vec::new();
        write_ascii_aiger(&g, &mut buf).expect("write");
        let text = String::from_utf8(buf).expect("ascii");
        assert!(text.starts_with("aag "));
        let h = read_ascii_aiger(text.as_bytes()).expect("read");
        assert!(probably_equivalent(&g, &h, 4, 1));
    }

    #[test]
    fn binary_and_ascii_agree() {
        let g = sample();
        let mut bin = Vec::new();
        write_aiger(&g, &mut bin).expect("write");
        let mut asc = Vec::new();
        write_ascii_aiger(&g, &mut asc).expect("write");
        let gb = read_aiger(&bin[..]).expect("read bin");
        let ga = read_ascii_aiger(&asc[..]).expect("read ascii");
        assert!(probably_equivalent(&gb, &ga, 4, 2));
    }

    #[test]
    fn rejects_latches_and_garbage() {
        assert!(read_aiger(&b"aig 1 0 1 0 0\n"[..]).is_err());
        assert!(read_aiger(&b"not an aiger file"[..]).is_err());
        assert!(read_ascii_aiger(&b"aag 1 2\n"[..]).is_err());
        assert!(read_aiger(&b""[..]).is_err());
    }

    #[test]
    fn rejects_truncated_binary_body() {
        let g = sample();
        let mut buf = Vec::new();
        write_aiger(&g, &mut buf).expect("write");
        let cut = buf.len() - 2;
        assert!(read_aiger(&buf[..cut]).is_err());
    }

    #[test]
    fn delta_coding_roundtrips() {
        for v in [0u64, 1, 127, 128, 300, 1 << 20, u32::MAX as u64] {
            let mut buf = Vec::new();
            write_delta(&mut buf, v).expect("write");
            let got = read_delta(&mut &buf[..]).expect("read");
            assert_eq!(got, v);
        }
    }

    #[test]
    fn multiplier_roundtrip_through_aiger() {
        // A realistically sized circuit survives the full cycle.
        let mut g = Aig::new(8);
        let mut acc = g.pi_lit(0);
        for k in 1..8 {
            let p = g.pi_lit(k);
            let x = g.xor(acc, p);
            acc = g.maj(acc, p, x);
        }
        g.add_po(acc);
        let mut buf = Vec::new();
        write_aiger(&g, &mut buf).expect("write");
        let h = read_aiger(&buf[..]).expect("read");
        assert!(probably_equivalent(&g, &h, 4, 3));
    }
}
