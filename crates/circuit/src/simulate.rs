//! Bit-parallel AIG simulation.
//!
//! Simulating 64 input patterns per machine word gives a cheap semantic
//! signature per node. The synthesis passes in `hoga-synth` use signatures
//! as a *functionality oracle*: a transform that changes any PO signature on
//! random patterns is certainly wrong (the property tests exploit this), and
//! the functional labeler in `hoga-gen` uses exact exhaustive simulation on
//! small cuts.

use crate::{Aig, Lit, NodeKind};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Evaluates every node on the given per-PI input words.
///
/// Bit `j` of word `i` is the value of PI `i` in pattern `j`. Returns one
/// word per node (node 0 is constant false = all zeros).
///
/// # Panics
///
/// Panics if `pi_words.len() != aig.num_pis()`.
pub fn simulate_words(aig: &Aig, pi_words: &[u64]) -> Vec<u64> {
    assert_eq!(pi_words.len(), aig.num_pis(), "one input word per PI required");
    let mut vals = vec![0u64; aig.num_nodes()];
    for i in 0..aig.num_nodes() {
        vals[i] = match aig.node(i as u32) {
            NodeKind::Const0 => 0,
            NodeKind::Pi(k) => pi_words[k as usize],
            NodeKind::And(a, b) => lit_value(&vals, a) & lit_value(&vals, b),
        };
    }
    vals
}

fn lit_value(vals: &[u64], lit: Lit) -> u64 {
    let v = vals[lit.node() as usize];
    if lit.is_complemented() {
        !v
    } else {
        v
    }
}

/// Evaluates the primary outputs on the given per-PI input words.
///
/// # Panics
///
/// Panics if `pi_words.len() != aig.num_pis()`.
pub fn simulate_pos(aig: &Aig, pi_words: &[u64]) -> Vec<u64> {
    let vals = simulate_words(aig, pi_words);
    aig.pos().iter().map(|&po| lit_value(&vals, po)).collect()
}

/// Random 64-pattern signature of every PO, seeded for reproducibility.
///
/// Two functionally equivalent AIGs over the same PI order produce equal
/// signatures for any seed; differing signatures prove inequivalence.
// analyze: allow(dead-public-api) — public semantic-fingerprint API complementing check_equivalence; covered by tests
pub fn po_signature(aig: &Aig, seed: u64) -> Vec<u64> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let pi_words: Vec<u64> = (0..aig.num_pis()).map(|_| rng.gen()).collect();
    simulate_pos(aig, &pi_words)
}

/// Random 64-pattern signature of every *node* (used by resubstitution to
/// find candidate equivalences).
pub fn node_signature(aig: &Aig, seed: u64) -> Vec<u64> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let pi_words: Vec<u64> = (0..aig.num_pis()).map(|_| rng.gen()).collect();
    simulate_words(aig, &pi_words)
}

/// Checks functional equivalence of two AIGs on `rounds * 64` random
/// patterns (a probabilistic check; inequality is definitive, equality is
/// high-confidence for the generated circuit classes).
///
/// # Panics
///
/// Panics if the PI or PO counts differ — those are interface mismatches,
/// not functional differences.
pub fn probably_equivalent(a: &Aig, b: &Aig, rounds: usize, seed: u64) -> bool {
    assert_eq!(a.num_pis(), b.num_pis(), "PI count mismatch");
    assert_eq!(a.num_pos(), b.num_pos(), "PO count mismatch");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    for _ in 0..rounds {
        let pi_words: Vec<u64> = (0..a.num_pis()).map(|_| rng.gen()).collect();
        if simulate_pos(a, &pi_words) != simulate_pos(b, &pi_words) {
            return false;
        }
    }
    true
}

/// Maximum PI count for which exhaustive equivalence checking is offered
/// (2^16 patterns = 1024 simulation words).
pub const EXHAUSTIVE_PI_LIMIT: usize = 16;

/// Builds the PI words for exhaustive block `block` (patterns
/// `block*64 .. block*64+63`): bit `j` of word `i` is bit `i` of the
/// assignment index `block*64 + j`.
fn exhaustive_block_words(num_pis: usize, block: u64) -> Vec<u64> {
    (0..num_pis)
        .map(|i| {
            let mut w = 0u64;
            for j in 0..64u64 {
                let assignment = block * 64 + j;
                if assignment >> i & 1 == 1 {
                    w |= 1 << j;
                }
            }
            w
        })
        .collect()
}

/// *Exhaustively* checks functional equivalence of two AIGs over all
/// `2^num_pis` input assignments — a definitive verdict, unlike
/// [`probably_equivalent`].
///
/// # Panics
///
/// Panics if the interfaces differ or there are more than
/// [`EXHAUSTIVE_PI_LIMIT`] PIs.
pub fn exhaustive_equivalent(a: &Aig, b: &Aig) -> bool {
    assert_eq!(a.num_pis(), b.num_pis(), "PI count mismatch");
    assert_eq!(a.num_pos(), b.num_pos(), "PO count mismatch");
    assert!(
        a.num_pis() <= EXHAUSTIVE_PI_LIMIT,
        "exhaustive check limited to {EXHAUSTIVE_PI_LIMIT} PIs"
    );
    let blocks = 1u64 << a.num_pis().saturating_sub(6);
    let tail_mask = if a.num_pis() >= 6 { u64::MAX } else { (1u64 << (1 << a.num_pis())) - 1 };
    for block in 0..blocks {
        let words = exhaustive_block_words(a.num_pis(), block);
        let pa = simulate_pos(a, &words);
        let pb = simulate_pos(b, &words);
        for (x, y) in pa.iter().zip(&pb) {
            if (x ^ y) & tail_mask != 0 {
                return false;
            }
        }
    }
    true
}

/// Exhaustive per-node signatures over all `2^num_pis` assignments
/// (one `Vec<u64>` of `2^max(pis-6,0)` words per node). Two nodes with
/// equal exhaustive signatures are *provably* equivalent.
///
/// # Panics
///
/// Panics if there are more than [`EXHAUSTIVE_PI_LIMIT`] PIs.
pub fn exhaustive_node_signatures(aig: &Aig) -> Vec<Vec<u64>> {
    assert!(
        aig.num_pis() <= EXHAUSTIVE_PI_LIMIT,
        "exhaustive signatures limited to {EXHAUSTIVE_PI_LIMIT} PIs"
    );
    let blocks = 1u64 << aig.num_pis().saturating_sub(6);
    let tail_mask = if aig.num_pis() >= 6 { u64::MAX } else { (1u64 << (1 << aig.num_pis())) - 1 };
    let mut sigs: Vec<Vec<u64>> = vec![Vec::with_capacity(blocks as usize); aig.num_nodes()];
    for block in 0..blocks {
        let words = exhaustive_block_words(aig.num_pis(), block);
        let vals = simulate_words(aig, &words);
        for (sig, v) in sigs.iter_mut().zip(vals) {
            sig.push(v & tail_mask);
        }
    }
    sigs
}

/// Exhaustively evaluates output `po_idx` as a truth table over up to 6 PIs.
///
/// Bit `p` of the result is the output value when PI `i` takes bit `i` of
/// pattern index `p`.
///
/// # Panics
///
/// Panics if the AIG has more than 6 PIs or `po_idx` is out of range.
pub fn exhaustive_truth_table(aig: &Aig, po_idx: usize) -> u64 {
    assert!(aig.num_pis() <= 6, "exhaustive simulation supports at most 6 PIs");
    assert!(po_idx < aig.num_pos(), "PO index out of range");
    // Standard truth-table input words: PI i alternates in blocks of 2^i.
    const MASKS: [u64; 6] = [
        0xAAAA_AAAA_AAAA_AAAA,
        0xCCCC_CCCC_CCCC_CCCC,
        0xF0F0_F0F0_F0F0_F0F0,
        0xFF00_FF00_FF00_FF00,
        0xFFFF_0000_FFFF_0000,
        0xFFFF_FFFF_0000_0000,
    ];
    let pi_words: Vec<u64> = (0..aig.num_pis()).map(|i| MASKS[i]).collect();
    let out = simulate_pos(aig, &pi_words)[po_idx];
    let bits = 1u32 << aig.num_pis();
    if bits == 64 {
        out
    } else {
        out & ((1u64 << bits) - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_adder() -> Aig {
        let mut g = Aig::new(3);
        let (a, b, c) = (g.pi_lit(0), g.pi_lit(1), g.pi_lit(2));
        let x = g.xor(a, b);
        let s = g.xor(x, c);
        let carry = g.maj(a, b, c);
        g.add_po(s);
        g.add_po(carry);
        g
    }

    #[test]
    fn full_adder_truth_tables() {
        let g = full_adder();
        let sum = exhaustive_truth_table(&g, 0);
        let carry = exhaustive_truth_table(&g, 1);
        // XOR3 over 3 variables: 0x96; MAJ3: 0xE8.
        assert_eq!(sum & 0xFF, 0x96);
        assert_eq!(carry & 0xFF, 0xE8);
    }

    #[test]
    fn simulate_words_matches_exhaustive_per_pattern() {
        let g = full_adder();
        for pattern in 0u64..8 {
            let pi_words: Vec<u64> = (0..3).map(|i| (pattern >> i) & 1).collect();
            let pos = simulate_pos(&g, &pi_words);
            let a = pattern & 1;
            let b = (pattern >> 1) & 1;
            let c = (pattern >> 2) & 1;
            assert_eq!(pos[0] & 1, a ^ b ^ c, "sum at {pattern}");
            assert_eq!(pos[1] & 1, (a & b) | (a & c) | (b & c), "carry at {pattern}");
        }
    }

    #[test]
    fn signature_is_deterministic_and_seed_sensitive() {
        let g = full_adder();
        assert_eq!(po_signature(&g, 1), po_signature(&g, 1));
        assert_ne!(po_signature(&g, 1), po_signature(&g, 2));
    }

    #[test]
    fn equivalence_check_accepts_identical_and_rejects_mutant() {
        let g = full_adder();
        assert!(probably_equivalent(&g, &g, 4, 99));
        // Mutant: complement one PO.
        let mut h = g.clone();
        let po0 = h.pos()[0];
        h.set_po(0, !po0);
        assert!(!probably_equivalent(&g, &h, 4, 99));
    }

    #[test]
    fn equivalence_is_structural_independent() {
        // Build sum a different way: s = (a xor b) xor c vs a xor (b xor c).
        let g = full_adder();
        let mut h = Aig::new(3);
        let (a, b, c) = (h.pi_lit(0), h.pi_lit(1), h.pi_lit(2));
        let y = h.xor(b, c);
        let s = h.xor(a, y);
        let carry = h.maj(c, a, b);
        h.add_po(s);
        h.add_po(carry);
        assert!(probably_equivalent(&g, &h, 4, 5));
    }

    #[test]
    fn exhaustive_equivalence_catches_single_minterm_difference() {
        // f = AND of 10 PIs; g = f OR (all PIs = specific pattern) differs
        // on exactly one of 1024 minterms — random sampling almost never
        // sees it, the exhaustive check must.
        let n = 10;
        let mut f = Aig::new(n);
        let mut acc = f.pi_lit(0);
        for i in 1..n {
            let p = f.pi_lit(i);
            acc = f.and(acc, p);
        }
        f.add_po(acc);
        let mut g = Aig::new(n);
        let mut acc2 = g.pi_lit(0);
        for i in 1..n {
            let p = g.pi_lit(i);
            acc2 = g.and(acc2, p);
        }
        // The extra minterm: all PIs low except PI0.
        let mut rare = g.pi_lit(0);
        for i in 1..n {
            let p = g.pi_lit(i);
            rare = g.and(rare, !p);
        }
        let out = g.or(acc2, rare);
        g.add_po(out);
        assert!(!exhaustive_equivalent(&f, &g), "one-minterm difference missed");
        // And two identical builds are exhaustively equal.
        assert!(exhaustive_equivalent(&f, &f));
    }

    #[test]
    fn exhaustive_signatures_prove_node_equality() {
        let g = full_adder();
        let sigs = exhaustive_node_signatures(&g);
        assert_eq!(sigs.len(), g.num_nodes());
        // Constant node: all-zero signature.
        assert!(sigs[0].iter().all(|&w| w == 0));
        // Distinct PIs have distinct signatures.
        assert_ne!(sigs[1], sigs[2]);
        // Each word is masked to the 8 relevant patterns (3 PIs).
        for sig in &sigs {
            for &w in sig {
                assert_eq!(w & !0xFF, 0, "bits beyond 2^3 patterns must be clear");
            }
        }
    }

    #[test]
    fn exhaustive_agrees_with_truth_table() {
        let g = full_adder();
        let mut h = g.clone();
        let po = h.pos()[0];
        h.set_po(0, !po);
        assert!(exhaustive_equivalent(&g, &g.clone()));
        assert!(!exhaustive_equivalent(&g, &h));
    }

    #[test]
    fn constant_node_is_all_zero() {
        let g = full_adder();
        let vals = simulate_words(&g, &[u64::MAX, u64::MAX, u64::MAX]);
        assert_eq!(vals[0], 0);
    }
}
