//! Graphviz DOT export for AIGs.
//!
//! Handy for debugging generators, synthesis passes and the functional
//! labeler: `dot -Tsvg circuit.dot` renders the circuit with inverted
//! edges dashed (the usual AIG drawing convention, cf. Figure 3a of the
//! paper).

use crate::{Aig, NodeKind};
use std::io::Write;

/// Writes the AIG as a Graphviz digraph.
///
/// * PIs are boxes, AND gates ellipses, the constant a diamond.
/// * Complemented fanin edges are dashed.
/// * `labels`, if provided, annotates node names (one string per node id,
///   e.g. the [`hoga_gen`-style] class names).
///
/// # Errors
///
/// Propagates I/O errors from the writer.
///
/// # Panics
///
/// Panics if `labels` is `Some` but shorter than the node count.
// analyze: allow(dead-public-api) — Graphviz export is a debugging surface for humans, not the pipeline; covered by tests
pub fn write_dot(aig: &Aig, labels: Option<&[String]>, mut w: impl Write) -> std::io::Result<()> {
    if let Some(l) = labels {
        assert!(l.len() >= aig.num_nodes(), "need one label per node");
    }
    writeln!(w, "digraph aig {{")?;
    writeln!(w, "  rankdir=BT;")?;
    for id in 0..aig.num_nodes() {
        let extra = labels.map_or(String::new(), |l| format!("\\n{}", l[id]));
        match aig.node(id as u32) {
            NodeKind::Const0 => writeln!(w, "  n{id} [shape=diamond, label=\"0{extra}\"];")?,
            NodeKind::Pi(k) => writeln!(w, "  n{id} [shape=box, label=\"x{k}{extra}\"];")?,
            NodeKind::And(_, _) => writeln!(w, "  n{id} [shape=ellipse, label=\"∧{id}{extra}\"];")?,
        }
    }
    for (id, a, b) in aig.and_gates() {
        for f in [a, b] {
            let style = if f.is_complemented() { " [style=dashed]" } else { "" };
            writeln!(w, "  n{} -> n{id}{style};", f.node())?;
        }
    }
    for (i, po) in aig.pos().iter().enumerate() {
        let style = if po.is_complemented() { ", style=dashed" } else { "" };
        writeln!(w, "  po{i} [shape=plaintext, label=\"y{i}\"];")?;
        writeln!(w, "  n{} -> po{i} [arrowhead=normal{style}];", po.node())?;
    }
    writeln!(w, "}}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Aig {
        let mut g = Aig::new(2);
        let (a, b) = (g.pi_lit(0), g.pi_lit(1));
        let x = g.xor(a, b);
        g.add_po(!x);
        g
    }

    #[test]
    fn dot_contains_every_node_and_edge() {
        let g = sample();
        let mut buf = Vec::new();
        write_dot(&g, None, &mut buf).expect("write");
        let s = String::from_utf8(buf).expect("utf8");
        assert!(s.starts_with("digraph aig {"));
        assert!(s.ends_with("}\n"));
        for id in 0..g.num_nodes() {
            assert!(s.contains(&format!("n{id} [")), "node {id} missing");
        }
        // One dashed PO edge (the complemented output).
        assert!(s.contains("style=dashed"));
        // Edge count: 2 per gate + 1 per PO.
        let edges = s.matches("->").count();
        assert_eq!(edges, g.num_edges() + g.num_pos());
    }

    #[test]
    fn labels_are_embedded() {
        let g = sample();
        let labels: Vec<String> = (0..g.num_nodes()).map(|i| format!("L{i}")).collect();
        let mut buf = Vec::new();
        write_dot(&g, Some(&labels), &mut buf).expect("write");
        let s = String::from_utf8(buf).expect("utf8");
        assert!(s.contains("L0"));
        assert!(s.contains(&format!("L{}", g.num_nodes() - 1)));
    }
}
