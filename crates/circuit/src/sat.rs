//! SAT-based combinational equivalence checking.
//!
//! Random simulation ([`crate::simulate::probably_equivalent`]) can only
//! *refute* equivalence with certainty; this module *proves* it: the two
//! circuits are joined into a miter (XOR of corresponding outputs, ORed
//! together), Tseitin-encoded into CNF, and handed to a small DPLL solver
//! with unit propagation. UNSAT ⇒ the circuits are equivalent on every
//! input. This mirrors how ABC's `cec` command underwrites synthesis —
//! and how Gamora's symbolic-reasoning ground truth is justified.
//!
//! The solver is intentionally simple (no clause learning); a conflict
//! budget keeps worst cases bounded, returning [`SatResult::Unknown`]
//! instead of hanging. Multiplier-sized miters (the hard case for SAT)
//! should use the simulation check instead; everything the synthesis test
//! suite proves is comfortably in range.

use crate::{Aig, Lit, NodeKind};

/// Outcome of a SAT query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum SatResult {
    /// A satisfying assignment of the primary inputs was found.
    Sat(Vec<bool>),
    /// The formula is unsatisfiable.
    Unsat,
    /// The conflict budget was exhausted.
    Unknown,
}

/// Outcome of an equivalence check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Equivalence {
    /// Proven equivalent on all inputs.
    Equivalent,
    /// A counterexample input assignment (per PI).
    Inequivalent(Vec<bool>),
    /// Conflict budget exhausted before a verdict.
    Unknown,
}

/// A CNF formula under construction (DIMACS-style signed literals).
struct Cnf {
    num_vars: usize,
    clauses: Vec<Vec<i32>>,
}

impl Cnf {
    fn new() -> Self {
        Self { num_vars: 0, clauses: Vec::new() }
    }

    fn fresh(&mut self) -> i32 {
        self.num_vars += 1;
        self.num_vars as i32
    }

    fn clause(&mut self, lits: &[i32]) {
        debug_assert!(lits.iter().all(|&l| l != 0 && l.unsigned_abs() as usize <= self.num_vars));
        self.clauses.push(lits.to_vec());
    }

    /// Encodes `c ↔ a ∧ b`.
    fn and_gate(&mut self, c: i32, a: i32, b: i32) {
        self.clause(&[-c, a]);
        self.clause(&[-c, b]);
        self.clause(&[c, -a, -b]);
    }

    /// Encodes `c ↔ a ⊕ b`.
    fn xor_gate(&mut self, c: i32, a: i32, b: i32) {
        self.clause(&[-c, a, b]);
        self.clause(&[-c, -a, -b]);
        self.clause(&[c, -a, b]);
        self.clause(&[c, a, -b]);
    }
}

/// Tseitin-encodes an AIG into `cnf`, given per-PI variables and a constant
/// false variable. Returns the signed CNF literal of every node output.
fn encode_aig(aig: &Aig, cnf: &mut Cnf, pi_vars: &[i32], const_false: i32) -> Vec<i32> {
    let mut node_lit = vec![0i32; aig.num_nodes()];
    for id in 0..aig.num_nodes() {
        node_lit[id] = match aig.node(id as u32) {
            NodeKind::Const0 => const_false,
            NodeKind::Pi(k) => pi_vars[k as usize],
            NodeKind::And(a, b) => {
                let la = signed(&node_lit, a);
                let lb = signed(&node_lit, b);
                let c = cnf.fresh();
                cnf.and_gate(c, la, lb);
                c
            }
        };
    }
    node_lit
}

fn signed(node_lit: &[i32], l: Lit) -> i32 {
    let v = node_lit[l.node() as usize];
    if l.is_complemented() {
        -v
    } else {
        v
    }
}

/// Checks combinational equivalence of two AIGs with identical PI/PO
/// interfaces.
///
/// # Budget contract
///
/// `conflict_budget` bounds the DPLL search (counted in backtracks):
/// the solver returns [`Equivalence::Unknown`] as soon as the number of
/// conflicts exceeds the budget — it never spins past it, so callers can
/// rely on bounded work regardless of miter hardness. `Unknown` is a
/// resource verdict, not a correctness one: `Equivalent` and
/// `Inequivalent` answers are always sound whatever the budget. Budgets
/// of a few hundred thousand decide every circuit in this repository's
/// test suite; a budget of `0` gives up at the first conflict (trivial
/// miters that unit-propagate to a verdict are still decided).
///
/// # Panics
///
/// Panics if the PI or PO counts differ.
pub fn check_equivalence(a: &Aig, b: &Aig, conflict_budget: u64) -> Equivalence {
    assert_eq!(a.num_pis(), b.num_pis(), "PI count mismatch");
    assert_eq!(a.num_pos(), b.num_pos(), "PO count mismatch");
    let mut cnf = Cnf::new();
    let const_false = cnf.fresh();
    cnf.clause(&[-const_false]);
    let pi_vars: Vec<i32> = (0..a.num_pis()).map(|_| cnf.fresh()).collect();
    let lits_a = encode_aig(a, &mut cnf, &pi_vars, const_false);
    let lits_b = encode_aig(b, &mut cnf, &pi_vars, const_false);
    // Miter: OR over XORs of corresponding POs must hold.
    let mut miter = Vec::with_capacity(a.num_pos());
    for (pa, pb) in a.pos().iter().zip(b.pos()) {
        let la = signed(&lits_a, *pa);
        let lb = signed(&lits_b, *pb);
        let x = cnf.fresh();
        cnf.xor_gate(x, la, lb);
        miter.push(x);
    }
    cnf.clause(&miter);
    match solve(&cnf, conflict_budget) {
        SatResult::Unsat => Equivalence::Equivalent,
        SatResult::Sat(model) => {
            let cex = pi_vars.iter().map(|&v| model[v as usize - 1]).collect();
            Equivalence::Inequivalent(cex)
        }
        SatResult::Unknown => Equivalence::Unknown,
    }
}

/// DPLL with unit propagation and chronological backtracking.
fn solve(cnf: &Cnf, conflict_budget: u64) -> SatResult {
    let n = cnf.num_vars;
    // Assignment: 0 = unassigned, 1 = true, -1 = false.
    let mut assign = vec![0i8; n + 1];
    // Trail of (var, was_decision).
    let mut trail: Vec<(usize, bool)> = Vec::new();
    let mut conflicts = 0u64;

    // Occurrence lists: clauses containing each literal polarity.
    let mut occur_pos: Vec<Vec<usize>> = vec![Vec::new(); n + 1];
    let mut occur_neg: Vec<Vec<usize>> = vec![Vec::new(); n + 1];
    for (ci, clause) in cnf.clauses.iter().enumerate() {
        for &l in clause {
            if l > 0 {
                occur_pos[l as usize].push(ci);
            } else {
                occur_neg[(-l) as usize].push(ci);
            }
        }
    }

    let value = |assign: &[i8], l: i32| -> i8 {
        let v = assign[l.unsigned_abs() as usize];
        if l > 0 {
            v
        } else {
            -v
        }
    };

    // Propagate all unit clauses from the queue start; returns false on
    // conflict.
    fn propagate(
        cnf: &Cnf,
        assign: &mut [i8],
        trail: &mut Vec<(usize, bool)>,
        mut head: usize,
        occur_pos: &[Vec<usize>],
        occur_neg: &[Vec<usize>],
    ) -> bool {
        let value = |assign: &[i8], l: i32| -> i8 {
            let v = assign[l.unsigned_abs() as usize];
            if l > 0 {
                v
            } else {
                -v
            }
        };
        while head < trail.len() {
            let (var, _) = trail[head];
            head += 1;
            // The literal that became FALSE triggers clause checks.
            let falsified: &[usize] =
                if assign[var] == 1 { &occur_neg[var] } else { &occur_pos[var] };
            for &ci in falsified {
                let clause = &cnf.clauses[ci];
                let mut unassigned: Option<i32> = None;
                let mut satisfied = false;
                let mut count_unassigned = 0;
                for &l in clause {
                    match value(assign, l) {
                        1 => {
                            satisfied = true;
                            break;
                        }
                        0 => {
                            count_unassigned += 1;
                            unassigned = Some(l);
                        }
                        _ => {}
                    }
                }
                if satisfied {
                    continue;
                }
                match count_unassigned {
                    0 => return false, // conflict
                    1 => {
                        let l = unassigned.expect("one unassigned literal");
                        let v = l.unsigned_abs() as usize;
                        assign[v] = if l > 0 { 1 } else { -1 };
                        trail.push((v, false));
                    }
                    _ => {}
                }
            }
        }
        true
    }

    // Initial unit clauses.
    for clause in &cnf.clauses {
        if clause.len() == 1 {
            let l = clause[0];
            let v = l.unsigned_abs() as usize;
            let want = if l > 0 { 1 } else { -1 };
            if assign[v] == -want {
                return SatResult::Unsat;
            }
            if assign[v] == 0 {
                assign[v] = want;
                trail.push((v, false));
            }
        }
    }
    if !propagate(cnf, &mut assign, &mut trail, 0, &occur_pos, &occur_neg) {
        return SatResult::Unsat;
    }

    loop {
        // Pick the next unassigned variable.
        let decision = (1..=n).find(|&v| assign[v] == 0);
        let Some(var) = decision else {
            // Full assignment — verify (debug) and return the model.
            debug_assert!(cnf.clauses.iter().all(|c| c.iter().any(|&l| value(&assign, l) == 1)));
            let model = (1..=n).map(|v| assign[v] == 1).collect();
            return SatResult::Sat(model);
        };
        // Decide: try FALSE first (miter outputs want to be true; negative
        // phase finds UNSAT faster on equivalence problems in practice).
        assign[var] = -1;
        let level_mark = trail.len();
        trail.push((var, true));
        if propagate(cnf, &mut assign, &mut trail, level_mark, &occur_pos, &occur_neg) {
            continue;
        }
        // Conflict: backtrack chronologically, flipping the most recent
        // decision that still has an untried phase.
        loop {
            conflicts += 1;
            if conflicts > conflict_budget {
                return SatResult::Unknown;
            }
            // Undo to the most recent decision.
            let mut flipped = None;
            while let Some((v, is_decision)) = trail.pop() {
                if is_decision {
                    flipped = Some(v);
                    break;
                }
                assign[v] = 0;
            }
            let Some(v) = flipped else {
                return SatResult::Unsat; // no decisions left
            };
            if assign[v] == -1 {
                // Try the other phase as an implied (non-decision) value.
                assign[v] = 1;
                let mark = trail.len();
                trail.push((v, false));
                if propagate(cnf, &mut assign, &mut trail, mark, &occur_pos, &occur_neg) {
                    break;
                }
                // Both phases fail at this level: continue backtracking,
                // undoing this variable too.
                assign[v] = 0;
                // Remove the pushed entry if still present.
                while trail.len() > mark {
                    let (u, _) = trail.pop().expect("non-empty");
                    assign[u] = 0;
                }
            } else {
                assign[v] = 0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate::probably_equivalent;

    fn full_adder(order: bool) -> Aig {
        let mut g = Aig::new(3);
        let (a, b, c) = (g.pi_lit(0), g.pi_lit(1), g.pi_lit(2));
        let s = if order {
            let t = g.xor(a, b);
            g.xor(t, c)
        } else {
            let t = g.xor(b, c);
            g.xor(a, t)
        };
        let carry = if order { g.maj(a, b, c) } else { g.maj(c, a, b) };
        g.add_po(s);
        g.add_po(carry);
        g
    }

    #[test]
    fn proves_structurally_different_adders_equivalent() {
        let a = full_adder(true);
        let b = full_adder(false);
        assert_eq!(check_equivalence(&a, &b, 100_000), Equivalence::Equivalent);
    }

    #[test]
    fn finds_counterexample_for_mutated_circuit() {
        let a = full_adder(true);
        let mut b = full_adder(true);
        let po = b.pos()[1];
        b.set_po(1, !po);
        match check_equivalence(&a, &b, 100_000) {
            Equivalence::Inequivalent(cex) => {
                assert_eq!(cex.len(), 3);
                // Verify the counterexample by simulation.
                let words: Vec<u64> = cex.iter().map(|&x| if x { 1 } else { 0 }).collect();
                let pa = crate::simulate::simulate_pos(&a, &words);
                let pb = crate::simulate::simulate_pos(&b, &words);
                assert_ne!(
                    pa.iter().map(|w| w & 1).collect::<Vec<_>>(),
                    pb.iter().map(|w| w & 1).collect::<Vec<_>>(),
                    "counterexample does not distinguish the circuits"
                );
            }
            other => panic!("expected counterexample, got {other:?}"),
        }
    }

    #[test]
    fn agrees_with_simulation_on_random_circuits() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(41);
        for trial in 0..12 {
            let n_pis = 4;
            let build = |rng: &mut rand_chacha::ChaCha8Rng| {
                let mut g = Aig::new(n_pis);
                let mut pool: Vec<Lit> = (0..n_pis).map(|i| g.pi_lit(i)).collect();
                for _ in 0..20 {
                    let x = pool[rng.gen_range(0..pool.len())];
                    let y = pool[rng.gen_range(0..pool.len())];
                    let x = if rng.gen() { !x } else { x };
                    let l = g.and(x, y);
                    pool.push(l);
                }
                let last = *pool.last().expect("non-empty");
                g.add_po(last);
                g
            };
            let a = build(&mut rng);
            let b = build(&mut rng);
            let sim = probably_equivalent(&a, &b, 4, trial);
            match check_equivalence(&a, &b, 200_000) {
                Equivalence::Equivalent => assert!(sim, "SAT says equal, simulation differs"),
                Equivalence::Inequivalent(_) => {
                    assert!(!sim || a.num_pis() > 6, "SAT found cex, simulation says equal")
                }
                Equivalence::Unknown => {}
            }
        }
    }

    #[test]
    fn proves_synthesis_passes_exactly_correct() {
        // The strongest guarantee in the repo: SAT-prove that a synthesized
        // circuit equals its input.
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(43);
        let mut g = Aig::new(5);
        let mut pool: Vec<Lit> = (0..5).map(|i| g.pi_lit(i)).collect();
        for _ in 0..40 {
            let x = pool[rng.gen_range(0..pool.len())];
            let y = pool[rng.gen_range(0..pool.len())];
            let x = if rng.gen() { !x } else { x };
            let y = if rng.gen() { !y } else { y };
            let l = g.and(x, y);
            pool.push(l);
        }
        for k in 0..2 {
            g.add_po(pool[pool.len() - 1 - k]);
        }
        let mut h = g.clone();
        h.compact();
        assert_eq!(check_equivalence(&g, &h, 500_000), Equivalence::Equivalent);
    }

    #[test]
    fn trivial_cases() {
        // Constant-output circuits.
        let mut a = Aig::new(1);
        a.add_po(Lit::TRUE);
        let mut b = Aig::new(1);
        b.add_po(Lit::TRUE);
        assert_eq!(check_equivalence(&a, &b, 1_000), Equivalence::Equivalent);
        let mut c = Aig::new(1);
        c.add_po(Lit::FALSE);
        assert!(matches!(check_equivalence(&a, &c, 1_000), Equivalence::Inequivalent(_)));
    }
}
