//! And-Inverter Graph (AIG) circuit infrastructure.
//!
//! Both EDA tasks in the HOGA paper operate on AIGs: the OpenABC-D QoR
//! benchmark stores synthesized AIGs, and the Gamora functional-reasoning
//! task classifies AIG nodes. This crate provides the shared substrate:
//!
//! * [`Aig`] — an ABC-style structurally hashed AIG with complemented
//!   edges ([`Lit`] literals), constant folding, and mark-and-sweep
//!   [`Aig::compact`].
//! * [`simulate`] — 64-pattern-per-word bit-parallel simulation used as a
//!   cheap semantic signature to *prove* that synthesis transforms preserve
//!   functionality.
//! * [`adjacency`] — conversion to sparse [`hoga_tensor::CsrMatrix`]
//!   adjacency with the symmetric normalization `Â = D^{-1/2} (A + I)
//!   D^{-1/2}` (Eq. 3 of the paper) and the row normalization used by
//!   mean-aggregating baselines.
//! * [`features`] — the per-node input features `X` (node-type one-hots and
//!   inverted-fanin counts, after OpenABC-D).
//!
//! # Examples
//!
//! Build a 1-bit full adder and count its gates:
//!
//! ```
//! use hoga_circuit::Aig;
//!
//! let mut aig = Aig::new(3);
//! let (a, b, cin) = (aig.pi_lit(0), aig.pi_lit(1), aig.pi_lit(2));
//! let axb = aig.xor(a, b);
//! let sum = aig.xor(axb, cin);
//! let carry = aig.maj(a, b, cin);
//! aig.add_po(sum);
//! aig.add_po(carry);
//! assert!(aig.num_ands() <= 11);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adjacency;
mod aig;
pub mod aiger;
pub mod dot;
pub mod features;
pub mod sat;
pub mod simulate;
mod topo;

pub use aig::{Aig, Lit, NodeId, NodeKind};
pub use topo::{cone_sizes, depth, fanout_counts, levels, stats, AigStats};
