//! Regression tests for the SAT miter's conflict-budget contract:
//! `check_equivalence` must return `Unknown` once the budget is exceeded
//! — bounded work on arbitrarily hard miters, never an open-ended spin —
//! while staying sound whenever it does reach a verdict.

use hoga_circuit::sat::{check_equivalence, Equivalence};
use hoga_circuit::{Aig, Lit};
use std::time::Instant;

/// Parity of `n` inputs as an XOR tree; `left_assoc` picks the shape so
/// two calls give structurally different but equivalent circuits. XOR
/// chains are the classic hard case for DPLL without clause learning.
fn parity(n: usize, left_assoc: bool) -> Aig {
    let mut g = Aig::new(n);
    let lits: Vec<Lit> = (0..n).map(|i| g.pi_lit(i)).collect();
    let acc = if left_assoc {
        let mut acc = lits[0];
        for &l in &lits[1..] {
            acc = g.xor(acc, l);
        }
        acc
    } else {
        // Balanced tree: reduce pairwise.
        let mut layer = lits;
        while layer.len() > 1 {
            let mut next = Vec::with_capacity(layer.len().div_ceil(2));
            for pair in layer.chunks(2) {
                next.push(if pair.len() == 2 { g.xor(pair[0], pair[1]) } else { pair[0] });
            }
            layer = next;
        }
        layer[0]
    };
    g.add_po(acc);
    g
}

#[test]
fn hard_miter_with_tiny_budget_returns_unknown_quickly() {
    let a = parity(24, true);
    let b = parity(24, false);
    let started = Instant::now();
    let verdict = check_equivalence(&a, &b, 50);
    assert_eq!(
        verdict,
        Equivalence::Unknown,
        "a 24-input parity miter cannot be decided within 50 conflicts"
    );
    // "Never spins": 50 conflicts of chronological backtracking are
    // sub-millisecond work; a generous bound still catches a runaway.
    assert!(started.elapsed().as_secs() < 10, "budget-limited call took too long");
}

#[test]
fn budget_is_monotone_easy_miter_decided_with_room_to_search() {
    let a = parity(8, true);
    let b = parity(8, false);
    // Starved: gives up.
    assert_eq!(check_equivalence(&a, &b, 0), Equivalence::Unknown);
    // Funded: the same miter is proven equivalent.
    assert_eq!(check_equivalence(&a, &b, 200_000), Equivalence::Equivalent);
}

#[test]
fn unknown_is_a_resource_verdict_not_a_soundness_escape() {
    // An inequivalent pair under a tiny budget may return Unknown, but if
    // it answers, the answer must be Inequivalent — never Equivalent.
    let a = parity(16, true);
    let mut b = parity(16, false);
    let po = b.pos()[0];
    b.set_po(0, !po);
    for budget in [0, 1, 10, 1_000, 100_000] {
        match check_equivalence(&a, &b, budget) {
            Equivalence::Equivalent => {
                panic!("budget {budget} proved inequivalent circuits equal")
            }
            Equivalence::Inequivalent(cex) => assert_eq!(cex.len(), 16),
            Equivalence::Unknown => {}
        }
    }
}
