//! Property-based invariants of the AIG substrate.

use hoga_circuit::simulate::{exhaustive_truth_table, probably_equivalent, simulate_words};
use hoga_circuit::{aiger, levels, Aig, Lit};
use proptest::prelude::*;

fn arb_aig() -> impl Strategy<Value = Aig> {
    (
        2..6usize,
        proptest::collection::vec(
            (any::<u16>(), any::<u16>(), any::<bool>(), any::<bool>()),
            1..50,
        ),
    )
        .prop_map(|(pis, gates)| {
            let mut aig = Aig::new(pis);
            let mut pool: Vec<Lit> = (0..pis).map(|i| aig.pi_lit(i)).collect();
            for (xa, xb, ca, cb) in gates {
                let a = pool[xa as usize % pool.len()];
                let b = pool[xb as usize % pool.len()];
                let a = if ca { !a } else { a };
                let b = if cb { !b } else { b };
                let l = aig.and(a, b);
                pool.push(l);
            }
            let take = pool.len().min(2);
            for &l in &pool[pool.len() - take..] {
                aig.add_po(l);
            }
            aig
        })
}

proptest! {
    #[test]
    fn structural_invariants_always_hold(aig in arb_aig()) {
        prop_assert!(aig.check().is_ok());
        // Levels strictly increase along edges.
        let lv = levels(&aig);
        for (id, a, b) in aig.and_gates() {
            prop_assert!(lv[id as usize] > lv[a.node() as usize]);
            prop_assert!(lv[id as usize] > lv[b.node() as usize]);
        }
    }

    #[test]
    fn compact_is_idempotent(aig in arb_aig()) {
        let mut once = aig.clone();
        once.compact();
        let mut twice = once.clone();
        twice.compact();
        prop_assert_eq!(&once, &twice);
        prop_assert!(probably_equivalent(&aig, &once, 2, 0));
    }

    #[test]
    fn strash_never_duplicates_structure(aig in arb_aig()) {
        // Rebuilding the same gates through `and` yields the same node count.
        let mut rebuilt = Aig::new(aig.num_pis());
        let mut map: Vec<Lit> = (0..aig.num_nodes())
            .map(|i| Lit::from_node(i as u32, false))
            .collect();
        for i in 0..aig.num_pis() {
            map[aig.pi_lit(i).node() as usize] = rebuilt.pi_lit(i);
        }
        for (id, a, b) in aig.and_gates() {
            let tr = |l: Lit, map: &[Lit]| {
                let base = map[l.node() as usize];
                if l.is_complemented() { !base } else { base }
            };
            let (na, nb) = (tr(a, &map), tr(b, &map));
            map[id as usize] = rebuilt.and(na, nb);
        }
        prop_assert!(rebuilt.num_ands() <= aig.num_ands());
    }

    #[test]
    fn simulation_respects_complements(aig in arb_aig(), seed in any::<u64>()) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let words: Vec<u64> = (0..aig.num_pis()).map(|_| rng.gen()).collect();
        let vals = simulate_words(&aig, &words);
        for (id, a, b) in aig.and_gates() {
            let va = if a.is_complemented() { !vals[a.node() as usize] } else { vals[a.node() as usize] };
            let vb = if b.is_complemented() { !vals[b.node() as usize] } else { vals[b.node() as usize] };
            prop_assert_eq!(vals[id as usize], va & vb);
        }
    }

    #[test]
    fn aiger_roundtrip_preserves_function(aig in arb_aig()) {
        let mut bin = Vec::new();
        aiger::write_aiger(&aig, &mut bin).expect("write");
        let back = aiger::read_aiger(&bin[..]).expect("read");
        prop_assert!(probably_equivalent(&aig, &back, 3, 1));
        let mut asc = Vec::new();
        aiger::write_ascii_aiger(&aig, &mut asc).expect("write");
        let back2 = aiger::read_ascii_aiger(&asc[..]).expect("read");
        prop_assert!(probably_equivalent(&aig, &back2, 3, 2));
    }

    #[test]
    fn exhaustive_and_word_simulation_agree(aig in arb_aig()) {
        if aig.num_pis() <= 6 && aig.num_pos() > 0 {
            let tt = exhaustive_truth_table(&aig, 0);
            // Check each pattern against single-pattern word simulation.
            for p in 0..(1u64 << aig.num_pis()).min(16) {
                let words: Vec<u64> = (0..aig.num_pis()).map(|i| (p >> i) & 1).collect();
                let pos = hoga_circuit::simulate::simulate_pos(&aig, &words);
                prop_assert_eq!((tt >> p) & 1, pos[0] & 1, "pattern {}", p);
            }
        }
    }
}
