//! Property tests for the recipe language: Display/FromStr roundtrip and
//! linter consistency over randomly generated recipes.

use hoga_synth::recipe::lint;
use hoga_synth::{random_recipe, Recipe, RecipeLint, STEP_BUDGET};
use proptest::prelude::*;

proptest! {
    /// Every generated recipe pretty-prints to a string that parses back
    /// to the identical recipe.
    #[test]
    fn display_fromstr_roundtrip(len in 0usize..40, seed in 0u64..1_000) {
        let r = random_recipe(len, seed);
        let printed = r.to_string();
        let reparsed: Recipe = printed.parse().expect("printed recipe must parse");
        prop_assert_eq!(r, reparsed);
    }

    /// The linter never reports errors (unknown tokens or empty steps) on
    /// a pretty-printed recipe; redundant-balance warnings — and, for
    /// recipes longer than [`STEP_BUDGET`], the step-budget warning — are
    /// the only diagnostics random recipes can legitimately produce.
    #[test]
    fn lint_is_clean_on_generated_recipes(len in 0usize..40, seed in 0u64..1_000) {
        let printed = random_recipe(len, seed).to_string();
        let mut saw_budget_lint = false;
        for l in lint(&printed) {
            if let RecipeLint::ExceedsStepBudget { steps, .. } = l {
                prop_assert_eq!(steps, len, "budget lint miscounted `{}`", printed);
                saw_budget_lint = true;
                continue;
            }
            prop_assert!(
                matches!(l, RecipeLint::RedundantBalance { .. }),
                "unexpected lint on `{}`: {}",
                printed,
                l
            );
        }
        prop_assert_eq!(
            saw_budget_lint,
            len > STEP_BUDGET,
            "budget lint must fire exactly when the recipe exceeds {} steps (`{}`)",
            STEP_BUDGET,
            printed
        );
    }

    /// Round-tripping through Display is idempotent: printing the
    /// reparsed recipe yields the same string.
    #[test]
    fn display_is_canonical(len in 0usize..40, seed in 0u64..1_000) {
        let printed = random_recipe(len, seed).to_string();
        let reparsed: Recipe = printed.parse().expect("printed recipe must parse");
        prop_assert_eq!(printed, reparsed.to_string());
    }
}
