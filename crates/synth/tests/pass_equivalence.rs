//! Property tests: every synthesis pass preserves the circuit function.
//!
//! Each pass is checked against its input with multi-round 64-bit random
//! simulation (`probably_equivalent`, 8 rounds = 512 random patterns per
//! PO) on randomized AIGs, plus exhaustive equivalence on small input
//! spaces. Structures that historically stressed the passes (rare-minterm
//! divergent cones, complement pairs, deep skewed chains) are seeded as
//! fixed regressions so they run on every build regardless of sampling.

use hoga_circuit::simulate::{exhaustive_equivalent, probably_equivalent};
use hoga_circuit::{Aig, Lit};
use hoga_synth::{balance, refactor, resub, rewrite, run_recipe, Recipe, RESUB_SEED_BASE};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Builds a random AIG with `n_pis` inputs, `gates` AND gates over random
/// (possibly complemented) fanins, and `pos` outputs.
fn random_aig(n_pis: usize, gates: usize, pos: usize, seed: u64) -> Aig {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut g = Aig::new(n_pis);
    let mut pool: Vec<Lit> = (0..n_pis).map(|i| g.pi_lit(i)).collect();
    for _ in 0..gates {
        let x = pool[rng.gen_range(0..pool.len())];
        let y = pool[rng.gen_range(0..pool.len())];
        let x = if rng.gen() { !x } else { x };
        let y = if rng.gen() { !y } else { y };
        let l = g.and(x, y);
        pool.push(l);
    }
    for _ in 0..pos {
        let l = pool[rng.gen_range(0..pool.len())];
        let l = if rng.gen() { !l } else { l };
        g.add_po(l);
    }
    g
}

/// All passes under test, by name, applied with a fixed resub seed.
fn apply_pass(name: &str, aig: &Aig) -> Aig {
    match name {
        "balance" => balance(aig),
        "rewrite" => rewrite(aig, false),
        "rewrite-z" => rewrite(aig, true),
        "refactor" => refactor(aig, false),
        "refactor-z" => refactor(aig, true),
        "resub" => resub(aig, RESUB_SEED_BASE),
        _ => unreachable!("unknown pass {name}"),
    }
}

const PASSES: [&str; 6] = ["balance", "rewrite", "rewrite-z", "refactor", "refactor-z", "resub"];

proptest! {
    /// Every pass preserves 8-round (512-pattern) random-simulation
    /// signatures on randomized AIGs of varying shapes.
    #[test]
    fn passes_preserve_signatures_on_random_aigs(
        n_pis in 2usize..10,
        gates in 1usize..120,
        pos in 1usize..5,
        seed in 0u64..1_000,
    ) {
        let g = random_aig(n_pis, gates, pos, seed);
        for pass in PASSES {
            let out = apply_pass(pass, &g);
            prop_assert!(
                probably_equivalent(&g, &out, 8, seed ^ 0xF00D),
                "{pass} changed function (pis={n_pis} gates={gates} pos={pos} seed={seed})"
            );
        }
    }

    /// On small input spaces the check is exhaustive — a definitive proof,
    /// not a sampled one.
    #[test]
    fn passes_are_exhaustively_equivalent_on_small_aigs(
        n_pis in 2usize..7,
        gates in 1usize..40,
        seed in 0u64..500,
    ) {
        let g = random_aig(n_pis, gates, 2, seed);
        for pass in PASSES {
            let out = apply_pass(pass, &g);
            prop_assert!(
                exhaustive_equivalent(&g, &out),
                "{pass} refuted exhaustively (pis={n_pis} gates={gates} seed={seed})"
            );
        }
    }

    /// Full recipes compose passes without compounding error: the final
    /// AIG still simulates identically to the input.
    #[test]
    fn full_recipes_preserve_signatures(seed in 0u64..200) {
        let g = random_aig(8, 80, 3, seed);
        let result = run_recipe(&g, &Recipe::resyn2());
        prop_assert!(
            probably_equivalent(&g, &result.aig, 8, seed ^ 0xBEEF),
            "resyn2 changed function (seed={seed})"
        );
    }
}

/// Fixed regressions: structures that historically stressed the passes.
/// These run on every build, independent of property sampling.
#[test]
fn regression_rare_minterm_divergent_cones() {
    // Two cones differing on exactly one of 2^12 minterms: near-constant
    // signatures made naive signature-merging unsound here.
    let n = 12;
    let mut g = Aig::new(n);
    let mut f = g.pi_lit(0);
    for i in 1..n {
        let p = g.pi_lit(i);
        f = g.and(f, p);
    }
    let mut rare = g.pi_lit(0);
    for i in 1..n {
        let p = g.pi_lit(i);
        rare = g.and(rare, !p);
    }
    let h = g.or(f, rare);
    g.add_po(f);
    g.add_po(h);
    for pass in PASSES {
        let out = apply_pass(pass, &g);
        assert!(exhaustive_equivalent(&g, &out), "{pass} broke the rare-minterm regression");
    }
}

#[test]
fn regression_complement_pair_po_sharing() {
    // A PO and its complement built from structurally different cones:
    // complement-aware merging must not flip either output.
    let mut g = Aig::new(2);
    let (a, b) = (g.pi_lit(0), g.pi_lit(1));
    let xor = {
        let p = g.and(a, !b);
        let q = g.and(!a, b);
        g.or(p, q)
    };
    let xnor = {
        let p = g.and(a, b);
        let q = g.and(!a, !b);
        g.or(p, q)
    };
    g.add_po(xor);
    g.add_po(xnor);
    for pass in PASSES {
        let out = apply_pass(pass, &g);
        assert!(exhaustive_equivalent(&g, &out), "{pass} broke the complement-pair regression");
    }
}

#[test]
fn regression_deep_skewed_chain() {
    // A maximally skewed 24-deep AND chain with a complemented tap in the
    // middle: balance must respect the complement boundary.
    let n = 12;
    let mut g = Aig::new(n);
    let mut acc = g.pi_lit(0);
    for i in 1..n {
        let p = g.pi_lit(i);
        acc = g.and(acc, p);
        if i == n / 2 {
            acc = !acc;
        }
    }
    g.add_po(acc);
    for pass in PASSES {
        let out = apply_pass(pass, &g);
        assert!(exhaustive_equivalent(&g, &out), "{pass} broke the skewed-chain regression");
    }
}
