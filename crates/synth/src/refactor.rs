//! Cut-based cone resynthesis (ABC `refactor`).
//!
//! For every node on a PO cone we take its best k-feasible cut (k ≤ 6),
//! compute the cone's truth table, and rebuild the function from the cut
//! leaves with a memoized Shannon decomposition. The globally resynthesized
//! AIG is accepted only if it has fewer gates than the input after dead-node
//! removal, making `refactor` monotone in gate count.

use crate::cuts::{cut_truth_table, enumerate_cuts, CutSet};
use crate::guard::{PassExhausted, WorkMeter};
use hoga_circuit::{Aig, Lit, NodeId};
use std::collections::HashMap;

const TT_MASKS: [u64; 6] = [
    0xAAAA_AAAA_AAAA_AAAA,
    0xCCCC_CCCC_CCCC_CCCC,
    0xF0F0_F0F0_F0F0_F0F0,
    0xFF00_FF00_FF00_FF00,
    0xFFFF_0000_FFFF_0000,
    0xFFFF_FFFF_0000_0000,
];

/// Returns a refactored copy of `aig`, never with more gates than a
/// compacted copy of the input.
///
/// `zero_cost` accepts the resynthesis even at equal gate count (mirrors
/// ABC's `refactor -z`, which diversifies structure for later passes).
pub fn refactor(aig: &Aig, zero_cost: bool) -> Aig {
    let mut meter = WorkMeter::unlimited();
    refactor_bounded(aig, zero_cost, &mut meter).unwrap_or_else(|_| unreachable!("unlimited meter"))
}

/// [`refactor`] under a work budget: one unit per node for cut enumeration
/// plus one per AND gate resynthesized.
pub(crate) fn refactor_bounded(
    aig: &Aig,
    zero_cost: bool,
    meter: &mut WorkMeter,
) -> Result<Aig, PassExhausted> {
    let mut candidate = resynthesize_all(aig, meter)?;
    candidate.compact();
    let mut baseline = aig.clone();
    baseline.compact();
    let better = candidate.num_ands() < baseline.num_ands()
        || (zero_cost && candidate.num_ands() == baseline.num_ands());
    debug_assert!(
        hoga_circuit::simulate::probably_equivalent(aig, &candidate, 2, 0xDEC0DE),
        "refactor changed circuit function"
    );
    if better {
        Ok(candidate)
    } else {
        Ok(baseline)
    }
}

/// Rebuilds the whole AIG from PO cones using cut truth tables.
fn resynthesize_all(aig: &Aig, meter: &mut WorkMeter) -> Result<Aig, PassExhausted> {
    // Cut enumeration walks every node once before resynthesis begins.
    meter.charge(aig.num_nodes() as u64)?;
    let cuts = enumerate_cuts(aig, 6);
    let mut out = Aig::new(aig.num_pis());
    let mut map: Vec<Option<Lit>> = vec![None; aig.num_nodes()];
    map[0] = Some(Lit::FALSE);
    for i in 0..aig.num_pis() {
        map[aig.pi_lit(i).node() as usize] = Some(out.pi_lit(i));
    }
    let mut tt_memo: HashMap<(u64, Vec<Lit>), Lit> = HashMap::new();
    // Nodes are in topo order; build every node bottom-up so leaves are
    // always mapped before roots.
    for (id, a, b) in aig.and_gates() {
        meter.charge(1)?;
        let lit = build_node(aig, id, (a, b), &cuts, &mut out, &mut map, &mut tt_memo);
        map[id as usize] = Some(lit);
    }
    for &po in aig.pos() {
        let m = map[po.node() as usize].expect("PO driver mapped");
        out.add_po(if po.is_complemented() { !m } else { m });
    }
    Ok(out)
}

fn build_node(
    aig: &Aig,
    id: NodeId,
    fanins: (Lit, Lit),
    cuts: &CutSet,
    out: &mut Aig,
    map: &mut [Option<Lit>],
    tt_memo: &mut HashMap<(u64, Vec<Lit>), Lit>,
) -> Lit {
    // Prefer the cut covering the largest cone — the deepest resynthesis
    // scope — rather than the one with the most leaves (an or-tree root's
    // 6-leaf cut of its immediate operands covers almost nothing).
    let best = cuts
        .cuts_of(id)
        .iter()
        .filter(|c| c.size() >= 2 && c.size() <= 6 && !c.leaves().contains(&id))
        .max_by_key(|c| crate::cuts::cone_size_capped(aig, id, c, 24));
    if let Some(cut) = best {
        let leaf_lits: Vec<Lit> = cut
            .leaves()
            .iter()
            .map(|&l| map[l as usize].expect("leaf precedes root in topo order"))
            .collect();
        let tt = cut_truth_table(aig, id, cut);
        return build_from_tt(out, tt, &leaf_lits, tt_memo);
    }
    // Fall back to direct translation.
    let tr = |map: &[Option<Lit>], l: Lit| {
        let base = map[l.node() as usize].expect("fanin mapped");
        if l.is_complemented() {
            !base
        } else {
            base
        }
    };
    let na = tr(map, fanins.0);
    let nb = tr(map, fanins.1);
    out.and(na, nb)
}

/// Builds the function `tt` over `vars` via memoized Shannon decomposition.
///
/// The `memo` map may be shared across calls on the same output AIG to
/// maximize structural sharing (the technology mapper in `hoga-gen` relies
/// on this).
///
/// # Panics
///
/// Panics if more than 6 variables are supplied.
pub fn build_from_tt(
    aig: &mut Aig,
    tt: u64,
    vars: &[Lit],
    memo: &mut HashMap<(u64, Vec<Lit>), Lit>,
) -> Lit {
    assert!(vars.len() <= 6, "at most 6 variables supported");
    let nbits = 1u32 << vars.len();
    let full: u64 = if nbits == 64 { u64::MAX } else { (1u64 << nbits) - 1 };
    let tt = tt & full;
    if tt == 0 {
        return Lit::FALSE;
    }
    if tt == full {
        return Lit::TRUE;
    }
    // Single-literal detection.
    for (i, &v) in vars.iter().enumerate() {
        let m = TT_MASKS[i] & full;
        if tt == m {
            return v;
        }
        if tt == (!TT_MASKS[i]) & full {
            return !v;
        }
    }
    let key = (tt, vars.to_vec());
    if let Some(&l) = memo.get(&key) {
        return l;
    }
    // Split on the highest variable actually in the support.
    let split = (0..vars.len())
        .rev()
        .find(|&i| {
            let m = TT_MASKS[i];
            let shift = 1u32 << i;
            let ones = (tt & m) >> shift;
            let zeros = tt & !m;
            ones & !m & full != zeros & !m & full
        })
        .unwrap_or(vars.len() - 1);
    let m = TT_MASKS[split];
    let shift = 1u32 << split;
    let tt1 = {
        let hi = tt & m;
        (hi | (hi >> shift)) & full
    };
    let tt0 = {
        let lo = tt & !m;
        (lo | (lo << shift)) & full
    };
    let f1 = build_from_tt(aig, tt1, vars, memo);
    let f0 = build_from_tt(aig, tt0, vars, memo);
    let v = vars[split];
    let result = aig.mux(v, f1, f0);
    memo.insert(key, result);
    result
}

/// Support helper used by `build_from_tt`'s split choice. A variable is in
/// the support iff its two cofactors differ.
#[allow(dead_code)]
fn in_support(tt: u64, var: usize, nvars: usize) -> bool {
    let nbits = 1u32 << nvars;
    let full: u64 = if nbits == 64 { u64::MAX } else { (1u64 << nbits) - 1 };
    let m = TT_MASKS[var];
    let shift = 1u32 << var;
    let c1 = ((tt & m) >> shift) & !m & full;
    let c0 = tt & !m & full;
    c1 != c0
}

#[cfg(test)]
mod tests {
    use super::*;
    use hoga_circuit::simulate::{exhaustive_truth_table, probably_equivalent};
    use hoga_circuit::Aig;
    use rand::{Rng, SeedableRng};

    #[test]
    fn build_from_tt_exhaustive_3vars() {
        // Every 3-variable function must be rebuilt exactly.
        for tt in 0u64..256 {
            let mut g = Aig::new(3);
            let vars: Vec<Lit> = (0..3).map(|i| g.pi_lit(i)).collect();
            let mut memo = HashMap::new();
            let f = build_from_tt(&mut g, tt, &vars, &mut memo);
            g.add_po(f);
            assert_eq!(exhaustive_truth_table(&g, 0), tt, "function 0x{tt:02x} broken");
        }
    }

    #[test]
    fn build_from_tt_random_5vars() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(11);
        for _ in 0..40 {
            let tt: u64 = rng.gen::<u64>() & 0xFFFF_FFFF;
            let mut g = Aig::new(5);
            let vars: Vec<Lit> = (0..5).map(|i| g.pi_lit(i)).collect();
            let mut memo = HashMap::new();
            let f = build_from_tt(&mut g, tt, &vars, &mut memo);
            g.add_po(f);
            assert_eq!(exhaustive_truth_table(&g, 0), tt);
        }
    }

    #[test]
    fn memo_shares_common_subfunctions() {
        let mut g = Aig::new(4);
        let vars: Vec<Lit> = (0..4).map(|i| g.pi_lit(i)).collect();
        let mut memo = HashMap::new();
        // XOR4 twice: second build must add zero gates.
        let tt_xor4 = {
            let mut t = 0u64;
            for p in 0..16u64 {
                if (p.count_ones() & 1) == 1 {
                    t |= 1 << p;
                }
            }
            t
        };
        let _ = build_from_tt(&mut g, tt_xor4, &vars, &mut memo);
        let n1 = g.num_ands();
        let _ = build_from_tt(&mut g, tt_xor4, &vars, &mut memo);
        assert_eq!(g.num_ands(), n1);
    }

    #[test]
    fn refactor_reduces_redundant_cone() {
        // Build sum-of-minterms form of XOR3 (8 gates worth of redundancy).
        let mut g = Aig::new(3);
        let (a, b, c) = (g.pi_lit(0), g.pi_lit(1), g.pi_lit(2));
        let mut terms = Vec::new();
        for (pa, pb, pc) in
            [(false, false, true), (false, true, false), (true, false, false), (true, true, true)]
        {
            let la = if pa { a } else { !a };
            let lb = if pb { b } else { !b };
            let lc = if pc { c } else { !c };
            let t1 = g.and(la, lb);
            terms.push(g.and(t1, lc));
        }
        let mut acc = terms[0];
        for &t in &terms[1..] {
            acc = g.or(acc, t);
        }
        g.add_po(acc);
        let before = g.num_ands();
        let r = refactor(&g, false);
        assert!(r.num_ands() < before, "{} !< {before}", r.num_ands());
        assert!(probably_equivalent(&g, &r, 4, 0));
    }

    #[test]
    fn refactor_is_identity_when_no_gain() {
        let mut g = Aig::new(2);
        let (a, b) = (g.pi_lit(0), g.pi_lit(1));
        let x = g.and(a, b);
        g.add_po(x);
        let r = refactor(&g, false);
        assert_eq!(r.num_ands(), 1);
        assert!(probably_equivalent(&g, &r, 2, 1));
    }

    #[test]
    fn refactor_random_circuits_preserve_function_and_never_grow() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(23);
        for trial in 0..8 {
            let n_pis = 6;
            let mut g = Aig::new(n_pis);
            let mut pool: Vec<Lit> = (0..n_pis).map(|i| g.pi_lit(i)).collect();
            for _ in 0..60 {
                let x = pool[rng.gen_range(0..pool.len())];
                let y = pool[rng.gen_range(0..pool.len())];
                let x = if rng.gen() { !x } else { x };
                let y = if rng.gen() { !y } else { y };
                let l = g.and(x, y);
                pool.push(l);
            }
            for _ in 0..2 {
                let l = pool[rng.gen_range(0..pool.len())];
                g.add_po(l);
            }
            let mut baseline = g.clone();
            baseline.compact();
            let r = refactor(&g, false);
            assert!(r.num_ands() <= baseline.num_ands(), "trial {trial} grew");
            assert!(probably_equivalent(&g, &r, 4, trial as u64), "trial {trial} broke function");
        }
    }
}
