//! Applies a recipe to an AIG and records per-step gate counts.

use crate::{balance, refactor, resub, rewrite, Recipe, SynthStep};
use hoga_circuit::Aig;
use serde::{Deserialize, Serialize};

/// Outcome of running a [`Recipe`] on a circuit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SynthesisResult {
    /// Gate count of the (compacted) input.
    pub initial_ands: usize,
    /// Gate count after the full recipe.
    pub final_ands: usize,
    /// Gate count after each step, in order.
    pub per_step_ands: Vec<usize>,
    /// The optimized AIG.
    pub aig: Aig,
}

impl SynthesisResult {
    /// Fractional gate-count reduction in `[0, 1]`.
    pub fn reduction(&self) -> f64 {
        if self.initial_ands == 0 {
            0.0
        } else {
            1.0 - self.final_ands as f64 / self.initial_ands as f64
        }
    }
}

/// Runs `recipe` on a copy of `aig`.
///
/// Resubstitution seeds are derived from the step index so the whole run is
/// deterministic. In debug builds each step is verified against the step
/// input by random simulation.
pub fn run_recipe(aig: &Aig, recipe: &Recipe) -> SynthesisResult {
    let mut current = aig.clone();
    current.compact();
    let initial_ands = current.num_ands();
    let mut per_step_ands = Vec::with_capacity(recipe.steps().len());
    for (idx, step) in recipe.steps().iter().enumerate() {
        let next = match *step {
            SynthStep::Balance => balance(&current),
            SynthStep::Rewrite { zero_cost } => rewrite(&current, zero_cost),
            SynthStep::Refactor { zero_cost } => refactor(&current, zero_cost),
            SynthStep::Resub => resub(&current, 0x5EED_0000 + idx as u64),
        };
        let mut next = next;
        next.compact();
        debug_assert!(
            hoga_circuit::simulate::probably_equivalent(&current, &next, 2, idx as u64),
            "step {step} changed the circuit function"
        );
        per_step_ands.push(next.num_ands());
        current = next;
    }
    SynthesisResult { initial_ands, final_ands: current.num_ands(), per_step_ands, aig: current }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hoga_circuit::simulate::probably_equivalent;
    use hoga_circuit::{Aig, Lit};
    use rand::{Rng, SeedableRng};

    fn random_circuit(n_pis: usize, gates: usize, pos: usize, seed: u64) -> Aig {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let mut g = Aig::new(n_pis);
        let mut pool: Vec<Lit> = (0..n_pis).map(|i| g.pi_lit(i)).collect();
        for _ in 0..gates {
            let x = pool[rng.gen_range(0..pool.len())];
            let y = pool[rng.gen_range(0..pool.len())];
            let x = if rng.gen() { !x } else { x };
            let y = if rng.gen() { !y } else { y };
            let l = g.and(x, y);
            pool.push(l);
        }
        for _ in 0..pos {
            let idx = rng.gen_range(n_pis..pool.len().max(n_pis + 1)).min(pool.len() - 1);
            g.add_po(pool[idx]);
        }
        g
    }

    #[test]
    fn resyn2_preserves_function_and_reduces_gates() {
        let g = random_circuit(8, 120, 4, 99);
        let result = run_recipe(&g, &Recipe::resyn2());
        assert!(result.final_ands <= result.initial_ands);
        assert!(probably_equivalent(&g, &result.aig, 4, 0));
        assert_eq!(result.per_step_ands.len(), 10);
        assert_eq!(*result.per_step_ands.last().expect("non-empty"), result.final_ands);
    }

    #[test]
    fn different_recipes_give_different_qor() {
        // The core premise of QoR prediction: recipe choice changes the
        // final gate count on at least some circuits.
        let g = random_circuit(10, 200, 6, 7);
        let recipes = [
            "b".parse::<Recipe>().expect("valid"),
            Recipe::resyn2(),
            "rs; rs; rf; rw".parse::<Recipe>().expect("valid"),
        ];
        let counts: Vec<usize> = recipes.iter().map(|r| run_recipe(&g, r).final_ands).collect();
        assert!(
            counts.iter().any(|&c| c != counts[0]),
            "all recipes gave identical QoR {counts:?}"
        );
    }

    #[test]
    fn empty_recipe_just_compacts() {
        let g = random_circuit(5, 30, 2, 3);
        let result = run_recipe(&g, &Recipe::default());
        assert_eq!(result.per_step_ands.len(), 0);
        assert_eq!(result.initial_ands, result.final_ands);
    }

    #[test]
    fn reduction_is_in_unit_range() {
        let g = random_circuit(8, 100, 3, 11);
        let result = run_recipe(&g, &Recipe::resyn2());
        let r = result.reduction();
        assert!((0.0..=1.0).contains(&r), "reduction {r} out of range");
    }

    #[test]
    fn run_is_deterministic() {
        let g = random_circuit(8, 100, 3, 13);
        let recipe: Recipe = "rs; b; rw; rs".parse().expect("valid");
        let a = run_recipe(&g, &recipe);
        let b = run_recipe(&g, &recipe);
        assert_eq!(a.final_ands, b.final_ands);
        assert_eq!(a.aig, b.aig);
    }
}
