//! Applies a recipe to an AIG and records per-step gate counts.

use crate::guard::{
    inject_miscompile, verify_step, GuardConfig, Incident, IncidentKind, PassOutcome, SynthError,
    SynthFault, SynthFaultPlan, WorkMeter,
};
use crate::{balance, recipe, refactor, resub, rewrite, Recipe, SynthStep};
use hoga_circuit::Aig;
use serde::{Deserialize, Serialize};

/// Outcome of running a [`Recipe`] on a circuit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SynthesisResult {
    /// Gate count of the (compacted) input.
    pub initial_ands: usize,
    /// Gate count after the full recipe.
    pub final_ands: usize,
    /// Gate count after each step, in order.
    pub per_step_ands: Vec<usize>,
    /// The optimized AIG.
    pub aig: Aig,
}

impl SynthesisResult {
    /// Fractional gate-count reduction in `[0, 1]`.
    pub fn reduction(&self) -> f64 {
        if self.initial_ands == 0 {
            0.0
        } else {
            1.0 - self.final_ands as f64 / self.initial_ands as f64
        }
    }
}

/// A [`SynthesisResult`] plus the per-step outcome log from the guarded
/// runner.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GuardedRun {
    /// The synthesis result (rolled-back steps leave the circuit at its
    /// pre-step state).
    pub result: SynthesisResult,
    /// One outcome per recipe step, in order.
    pub outcomes: Vec<PassOutcome>,
}

impl GuardedRun {
    /// Incidents from rejected steps, in step order.
    pub fn incidents(&self) -> impl Iterator<Item = &Incident> {
        self.outcomes.iter().filter_map(PassOutcome::incident)
    }

    /// `true` when every step was applied (no rollbacks or timeouts).
    pub fn is_clean(&self) -> bool {
        self.outcomes.iter().all(|o| o.incident().is_none())
    }
}

/// Runs `recipe` on a copy of `aig` with per-pass equivalence guarding,
/// budgets, and fault injection.
///
/// Every step is verified against its input (random simulation filter,
/// then the bounded SAT arbiter when `cfg.conflict_budget > 0`). A step
/// that is refuted, changes the PI/PO interface, or exceeds its budget is
/// *rolled back* — the recipe continues from the pre-step circuit and the
/// rejection is recorded as a structured [`Incident`] — so one bad pass
/// degrades one step instead of poisoning the run.
///
/// Resubstitution seeds are derived from the step index so the whole run
/// is deterministic (given `cfg.budget.timeout_ms == 0`).
///
/// # Errors
///
/// [`SynthError::InvalidConfig`] if `cfg` is inconsistent, and
/// [`SynthError::FaultOutOfRange`] if `faults` targets a step the recipe
/// does not have. A valid configuration never panics.
pub fn run_recipe_guarded(
    aig: &Aig,
    recipe: &Recipe,
    cfg: &GuardConfig,
    faults: &SynthFaultPlan,
) -> Result<GuardedRun, SynthError> {
    cfg.validate()?;
    let steps = recipe.steps();
    if let Some(step) = faults.max_step() {
        if step >= steps.len() {
            return Err(SynthError::FaultOutOfRange { step, steps: steps.len() });
        }
    }
    let mut current = aig.clone();
    current.compact();
    let initial_ands = current.num_ands();
    let mut per_step_ands = Vec::with_capacity(steps.len());
    let mut outcomes = Vec::with_capacity(steps.len());
    for (idx, step) in steps.iter().enumerate() {
        let mut meter = WorkMeter::new(&cfg.budget);
        if faults.fault_at(idx) == Some(SynthFault::Stall) {
            meter.exhaust();
        }
        let attempted = match *step {
            SynthStep::Balance => balance::balance_bounded(&current, &mut meter),
            SynthStep::Rewrite { zero_cost } => {
                rewrite::rewrite_bounded(&current, zero_cost, &mut meter)
            }
            SynthStep::Refactor { zero_cost } => {
                refactor::refactor_bounded(&current, zero_cost, &mut meter)
            }
            SynthStep::Resub => {
                resub::resub_bounded(&current, recipe::RESUB_SEED_BASE + idx as u64, &mut meter)
            }
        };
        let outcome = match attempted {
            Err(exhausted) => PassOutcome::TimedOut {
                incident: Incident {
                    step_index: idx,
                    step: *step,
                    kind: IncidentKind::Exhausted { work_spent: exhausted.work_spent },
                },
            },
            Ok(mut next) => {
                next.compact();
                if faults.fault_at(idx) == Some(SynthFault::Miscompile) {
                    inject_miscompile(&mut next);
                }
                match verify_step(&current, &next, cfg, idx, *step) {
                    Ok(verification) => {
                        let ands_after = next.num_ands();
                        current = next;
                        PassOutcome::Applied { verification, ands_after }
                    }
                    Err(incident) => PassOutcome::RolledBack { incident },
                }
            }
        };
        // Rolled-back steps leave the gate count at the pre-step value.
        per_step_ands.push(current.num_ands());
        outcomes.push(outcome);
    }
    Ok(GuardedRun {
        result: SynthesisResult {
            initial_ands,
            final_ands: current.num_ands(),
            per_step_ands,
            aig: current,
        },
        outcomes,
    })
}

/// Runs `recipe` on a copy of `aig`.
///
/// Thin wrapper over [`run_recipe_guarded`] with the default guard
/// (2-round simulation filter, no SAT arbiter, unlimited budgets) and no
/// faults; the passes are sound, so results are unchanged from the
/// historical unguarded runner.
pub fn run_recipe(aig: &Aig, recipe: &Recipe) -> SynthesisResult {
    match run_recipe_guarded(aig, recipe, &GuardConfig::default(), &SynthFaultPlan::none()) {
        Ok(run) => run.result,
        // The default config is valid and the empty plan targets no steps.
        Err(e) => unreachable!("default guard config rejected: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guard::{PassBudget, Verification};
    use hoga_circuit::simulate::probably_equivalent;
    use hoga_circuit::{Aig, Lit};
    use rand::{Rng, SeedableRng};

    fn random_circuit(n_pis: usize, gates: usize, pos: usize, seed: u64) -> Aig {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let mut g = Aig::new(n_pis);
        let mut pool: Vec<Lit> = (0..n_pis).map(|i| g.pi_lit(i)).collect();
        for _ in 0..gates {
            let x = pool[rng.gen_range(0..pool.len())];
            let y = pool[rng.gen_range(0..pool.len())];
            let x = if rng.gen() { !x } else { x };
            let y = if rng.gen() { !y } else { y };
            let l = g.and(x, y);
            pool.push(l);
        }
        for _ in 0..pos {
            let idx = rng.gen_range(n_pis..pool.len().max(n_pis + 1)).min(pool.len() - 1);
            g.add_po(pool[idx]);
        }
        g
    }

    #[test]
    fn resyn2_preserves_function_and_reduces_gates() {
        let g = random_circuit(8, 120, 4, 99);
        let result = run_recipe(&g, &Recipe::resyn2());
        assert!(result.final_ands <= result.initial_ands);
        assert!(probably_equivalent(&g, &result.aig, 4, 0));
        assert_eq!(result.per_step_ands.len(), 10);
        assert_eq!(*result.per_step_ands.last().expect("non-empty"), result.final_ands);
    }

    #[test]
    fn different_recipes_give_different_qor() {
        // The core premise of QoR prediction: recipe choice changes the
        // final gate count on at least some circuits.
        let g = random_circuit(10, 200, 6, 7);
        let recipes = [
            "b".parse::<Recipe>().expect("valid"),
            Recipe::resyn2(),
            "rs; rs; rf; rw".parse::<Recipe>().expect("valid"),
        ];
        let counts: Vec<usize> = recipes.iter().map(|r| run_recipe(&g, r).final_ands).collect();
        assert!(
            counts.iter().any(|&c| c != counts[0]),
            "all recipes gave identical QoR {counts:?}"
        );
    }

    #[test]
    fn empty_recipe_just_compacts() {
        let g = random_circuit(5, 30, 2, 3);
        let result = run_recipe(&g, &Recipe::default());
        assert_eq!(result.per_step_ands.len(), 0);
        assert_eq!(result.initial_ands, result.final_ands);
    }

    #[test]
    fn reduction_is_in_unit_range() {
        let g = random_circuit(8, 100, 3, 11);
        let result = run_recipe(&g, &Recipe::resyn2());
        let r = result.reduction();
        assert!((0.0..=1.0).contains(&r), "reduction {r} out of range");
    }

    #[test]
    fn run_is_deterministic() {
        let g = random_circuit(8, 100, 3, 13);
        let recipe: Recipe = "rs; b; rw; rs".parse().expect("valid");
        let a = run_recipe(&g, &recipe);
        let b = run_recipe(&g, &recipe);
        assert_eq!(a.final_ands, b.final_ands);
        assert_eq!(a.aig, b.aig);
    }

    #[test]
    fn guarded_clean_run_matches_legacy_runner() {
        let g = random_circuit(8, 120, 4, 21);
        let recipe = Recipe::resyn2();
        let legacy = run_recipe(&g, &recipe);
        let guarded =
            run_recipe_guarded(&g, &recipe, &GuardConfig::default(), &SynthFaultPlan::none())
                .expect("valid config");
        assert!(guarded.is_clean());
        assert_eq!(guarded.result, legacy);
        assert_eq!(guarded.outcomes.len(), recipe.steps().len());
    }

    #[test]
    fn injected_miscompile_is_caught_and_rolled_back() {
        let g = random_circuit(8, 120, 4, 33);
        let recipe: Recipe = "b; rw; rf; rs".parse().expect("valid");
        let faults = SynthFaultPlan::none().inject(1, SynthFault::Miscompile);
        let run = run_recipe_guarded(&g, &recipe, &GuardConfig::default(), &faults)
            .expect("valid config");
        assert!(!run.is_clean());
        let incidents: Vec<_> = run.incidents().collect();
        assert_eq!(incidents.len(), 1);
        assert_eq!(incidents[0].step_index, 1);
        assert!(matches!(incidents[0].kind, IncidentKind::SimRefuted { .. }));
        assert!(matches!(run.outcomes[1], PassOutcome::RolledBack { .. }));
        // Graceful degradation: the run still completes and stays correct.
        assert!(probably_equivalent(&g, &run.result.aig, 4, 1));
        assert!(run.result.final_ands <= run.result.initial_ands);
    }

    #[test]
    fn stall_fault_times_out_and_rolls_back() {
        let g = random_circuit(8, 100, 3, 41);
        let recipe: Recipe = "b; rw".parse().expect("valid");
        let faults = SynthFaultPlan::none().inject(0, SynthFault::Stall);
        let run = run_recipe_guarded(&g, &recipe, &GuardConfig::default(), &faults)
            .expect("valid config");
        assert!(matches!(run.outcomes[0], PassOutcome::TimedOut { .. }));
        assert!(matches!(run.outcomes[1], PassOutcome::Applied { .. }));
        // The stalled step contributes its input's gate count.
        assert_eq!(run.result.per_step_ands[0], run.result.initial_ands);
        assert!(probably_equivalent(&g, &run.result.aig, 4, 2));
    }

    #[test]
    fn tiny_work_budget_times_out_every_pass() {
        let g = random_circuit(8, 120, 4, 55);
        let recipe: Recipe = "b; rw; rf; rs".parse().expect("valid");
        let cfg = GuardConfig { budget: PassBudget::with_max_work(1), ..GuardConfig::default() };
        let run =
            run_recipe_guarded(&g, &recipe, &cfg, &SynthFaultPlan::none()).expect("valid config");
        assert!(run.outcomes.iter().all(|o| matches!(o, PassOutcome::TimedOut { .. })));
        // All steps rolled back: the output is the compacted input.
        assert_eq!(run.result.final_ands, run.result.initial_ands);
        assert!(probably_equivalent(&g, &run.result.aig, 4, 3));
    }

    #[test]
    fn sat_arbiter_proves_small_steps() {
        let g = random_circuit(6, 40, 2, 61);
        let recipe: Recipe = "b".parse().expect("valid");
        let cfg = GuardConfig { conflict_budget: 1_000_000, ..GuardConfig::default() };
        let run =
            run_recipe_guarded(&g, &recipe, &cfg, &SynthFaultPlan::none()).expect("valid config");
        assert!(matches!(
            run.outcomes[0],
            PassOutcome::Applied { verification: Verification::Proved, .. }
        ));
    }

    #[test]
    fn fault_past_recipe_end_is_a_typed_error() {
        let g = random_circuit(4, 10, 1, 71);
        let recipe: Recipe = "b; rw".parse().expect("valid");
        let faults = SynthFaultPlan::none().inject(5, SynthFault::Miscompile);
        let err = run_recipe_guarded(&g, &recipe, &GuardConfig::default(), &faults)
            .expect_err("step 5 of a 2-step recipe");
        assert_eq!(err, SynthError::FaultOutOfRange { step: 5, steps: 2 });
    }

    #[test]
    fn guarded_run_is_deterministic_including_outcomes() {
        let g = random_circuit(8, 100, 3, 81);
        let recipe: Recipe = "rs; b; rw; rs".parse().expect("valid");
        let faults = SynthFaultPlan::none().inject(2, SynthFault::Miscompile);
        let cfg = GuardConfig { conflict_budget: 10_000, ..GuardConfig::default() };
        let a = run_recipe_guarded(&g, &recipe, &cfg, &faults).expect("valid");
        let b = run_recipe_guarded(&g, &recipe, &cfg, &faults).expect("valid");
        assert_eq!(a, b);
    }
}
