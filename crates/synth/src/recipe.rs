//! The synthesis-recipe language.
//!
//! OpenABC-D runs 1500 random ABC scripts per design; each script is a
//! semicolon-separated sequence drawn from `{balance, rewrite, rewrite -z,
//! refactor, refactor -z, resub}`. This module parses and pretty-prints the
//! same surface syntax (with ABC's short aliases) and generates random
//! recipes with a seeded RNG.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;
use std::str::FromStr;

/// One step of a synthesis recipe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SynthStep {
    /// AND-tree balancing (`b` / `balance`).
    Balance,
    /// Local rewriting (`rw` / `rewrite`); `zero_cost` mirrors `-z`.
    Rewrite {
        /// Apply structure-diversifying rewrites with no immediate gain.
        zero_cost: bool,
    },
    /// Cone resynthesis (`rf` / `refactor`); `zero_cost` mirrors `-z`.
    Refactor {
        /// Accept resyntheses of equal size.
        zero_cost: bool,
    },
    /// Signature-based resubstitution (`rs` / `resub`).
    Resub,
}

impl fmt::Display for SynthStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthStep::Balance => write!(f, "b"),
            SynthStep::Rewrite { zero_cost: false } => write!(f, "rw"),
            SynthStep::Rewrite { zero_cost: true } => write!(f, "rw -z"),
            SynthStep::Refactor { zero_cost: false } => write!(f, "rf"),
            SynthStep::Refactor { zero_cost: true } => write!(f, "rf -z"),
            SynthStep::Resub => write!(f, "rs"),
        }
    }
}

/// Error returned when a recipe string cannot be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRecipeError {
    token: String,
}

impl fmt::Display for ParseRecipeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown synthesis step `{}`", self.token)
    }
}

impl Error for ParseRecipeError {}

/// An ordered sequence of synthesis steps.
///
/// # Examples
///
/// ```
/// use hoga_synth::{Recipe, SynthStep};
///
/// let r: Recipe = "b; rw; rf -z; rs".parse()?;
/// assert_eq!(r.steps().len(), 4);
/// assert_eq!(r.steps()[2], SynthStep::Refactor { zero_cost: true });
/// assert_eq!(r.to_string(), "b; rw; rf -z; rs");
/// # Ok::<(), hoga_synth::ParseRecipeError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Recipe {
    steps: Vec<SynthStep>,
}

impl Recipe {
    /// Creates a recipe from explicit steps.
    pub fn new(steps: Vec<SynthStep>) -> Self {
        Self { steps }
    }

    /// The steps in order.
    pub fn steps(&self) -> &[SynthStep] {
        &self.steps
    }

    /// ABC's classic `resyn2` script (`b; rw; rf; b; rw; rw -z; b; rf -z;
    /// rw -z; b`).
    pub fn resyn2() -> Self {
        use SynthStep::*;
        Self::new(vec![
            Balance,
            Rewrite { zero_cost: false },
            Refactor { zero_cost: false },
            Balance,
            Rewrite { zero_cost: false },
            Rewrite { zero_cost: true },
            Balance,
            Refactor { zero_cost: true },
            Rewrite { zero_cost: true },
            Balance,
        ])
    }

    /// A compact numeric encoding of the recipe (one value in `[0, 1]` per
    /// step, padded/truncated to `width`) — the recipe conditioning vector
    /// appended to node features for QoR prediction.
    pub fn encode(&self, width: usize) -> Vec<f32> {
        let code = |s: &SynthStep| -> f32 {
            match s {
                SynthStep::Balance => 1.0 / 6.0,
                SynthStep::Rewrite { zero_cost: false } => 2.0 / 6.0,
                SynthStep::Rewrite { zero_cost: true } => 3.0 / 6.0,
                SynthStep::Refactor { zero_cost: false } => 4.0 / 6.0,
                SynthStep::Refactor { zero_cost: true } => 5.0 / 6.0,
                SynthStep::Resub => 1.0,
            }
        };
        let mut out: Vec<f32> = self.steps.iter().map(code).collect();
        out.resize(width, 0.0);
        out.truncate(width);
        out
    }
}

impl fmt::Display for Recipe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.steps.iter().map(SynthStep::to_string).collect();
        write!(f, "{}", parts.join("; "))
    }
}

/// Parses one (already trimmed, non-empty) step token.
fn parse_step(token: &str) -> Option<SynthStep> {
    match token {
        "b" | "balance" => Some(SynthStep::Balance),
        "rw" | "rewrite" => Some(SynthStep::Rewrite { zero_cost: false }),
        "rw -z" | "rewrite -z" => Some(SynthStep::Rewrite { zero_cost: true }),
        "rf" | "refactor" => Some(SynthStep::Refactor { zero_cost: false }),
        "rf -z" | "refactor -z" => Some(SynthStep::Refactor { zero_cost: true }),
        "rs" | "resub" => Some(SynthStep::Resub),
        _ => None,
    }
}

impl FromStr for Recipe {
    type Err = ParseRecipeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut steps = Vec::new();
        for raw in s.split(';') {
            let token = raw.trim();
            if token.is_empty() {
                continue;
            }
            let step =
                parse_step(token).ok_or_else(|| ParseRecipeError { token: token.to_string() })?;
            steps.push(step);
        }
        Ok(Recipe { steps })
    }
}

/// A diagnostic produced by [`lint`]. Positions are 1-based byte offsets
/// into the linted string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecipeLint {
    /// A step token that is not part of the recipe language.
    UnknownToken {
        /// The offending token, trimmed.
        token: String,
        /// Position of the token's first byte.
        position: usize,
    },
    /// An empty step between two separators (`"b;; rw"`). A single
    /// trailing `;` is tolerated.
    EmptyStep {
        /// Position where the empty segment starts.
        position: usize,
    },
    /// Two consecutive `balance` steps: balancing is idempotent, so the
    /// second is a no-op (warning, not an error — [`Recipe::from_str`]
    /// still accepts the recipe).
    RedundantBalance {
        /// Position of the second `balance` token.
        position: usize,
    },
    /// More steps than the OpenABC-D synthesis budget: the dataset the
    /// paper trains QoR prediction on fixes every recipe at
    /// [`STEP_BUDGET`] steps, so longer recipes are outside the model's
    /// training distribution.
    ExceedsStepBudget {
        /// Number of parsed steps in the recipe.
        steps: usize,
        /// Position of the first step past the budget.
        position: usize,
    },
}

/// Synthesis-recipe length used by OpenABC-D (and therefore the longest
/// recipe the QoR models are trained on).
pub const STEP_BUDGET: usize = 20;

/// Base of the per-step resubstitution seed: step `i` of a recipe runs
/// `resub` with seed `RESUB_SEED_BASE + i`, making every run of a recipe
/// deterministic regardless of which circuit it is applied to.
pub const RESUB_SEED_BASE: u64 = 0x5EED_0000;

impl fmt::Display for RecipeLint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecipeLint::UnknownToken { token, position } => {
                write!(f, "{position}: unknown synthesis step `{token}`")
            }
            RecipeLint::EmptyStep { position } => {
                write!(f, "{position}: empty step (stray `;`)")
            }
            RecipeLint::RedundantBalance { position } => {
                write!(f, "{position}: redundant consecutive `balance` (idempotent)")
            }
            RecipeLint::ExceedsStepBudget { steps, position } => {
                write!(
                    f,
                    "{position}: recipe has {steps} steps, exceeding the {STEP_BUDGET}-step \
                     OpenABC-D budget"
                )
            }
        }
    }
}

/// Statically checks a recipe string without building a [`Recipe`].
///
/// Unlike [`Recipe::from_str`], which stops at the first unknown token and
/// silently skips empty segments, `lint` reports *every* problem with its
/// position: unknown tokens, interior empty steps, and redundant
/// consecutive `balance` steps. An empty return means the string parses
/// and has no warnings.
pub fn lint(s: &str) -> Vec<RecipeLint> {
    let mut out = Vec::new();
    let mut prev: Option<SynthStep> = None;
    let mut offset = 0usize;
    let mut parsed = 0usize;
    let mut over_budget_at: Option<usize> = None;
    let segments: Vec<&str> = s.split(';').collect();
    let last = segments.len() - 1;
    for (i, raw) in segments.iter().enumerate() {
        let token = raw.trim();
        if token.is_empty() {
            // A trailing `;` leaves one final empty segment; tolerate it.
            if i != last {
                out.push(RecipeLint::EmptyStep { position: offset + 1 });
            }
        } else {
            let position = offset + (raw.len() - raw.trim_start().len()) + 1;
            match parse_step(token) {
                Some(step) => {
                    if step == SynthStep::Balance && prev == Some(SynthStep::Balance) {
                        out.push(RecipeLint::RedundantBalance { position });
                    }
                    parsed += 1;
                    if parsed == STEP_BUDGET + 1 {
                        over_budget_at = Some(position);
                    }
                    prev = Some(step);
                }
                None => {
                    out.push(RecipeLint::UnknownToken { token: token.to_string(), position });
                    prev = None;
                }
            }
        }
        offset += raw.len() + 1;
    }
    if let Some(position) = over_budget_at {
        out.push(RecipeLint::ExceedsStepBudget { steps: parsed, position });
    }
    out
}

/// Generates a random recipe of `len` steps (OpenABC-D uses length 20).
///
/// Deterministic in `seed`.
pub fn random_recipe(len: usize, seed: u64) -> Recipe {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let steps = (0..len)
        .map(|_| match rng.gen_range(0..6) {
            0 => SynthStep::Balance,
            1 => SynthStep::Rewrite { zero_cost: false },
            2 => SynthStep::Rewrite { zero_cost: true },
            3 => SynthStep::Refactor { zero_cost: false },
            4 => SynthStep::Refactor { zero_cost: true },
            _ => SynthStep::Resub,
        })
        .collect();
    Recipe { steps }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_display_roundtrip() {
        for s in ["b", "b; rw; rf; rs", "rw -z; rf -z", "balance; rewrite; resub"] {
            let r: Recipe = s.parse().expect("valid recipe");
            let r2: Recipe = r.to_string().parse().expect("roundtrip");
            assert_eq!(r, r2);
        }
    }

    #[test]
    fn rejects_unknown_step() {
        let err = "b; frobnicate".parse::<Recipe>().unwrap_err();
        assert!(err.to_string().contains("frobnicate"));
    }

    #[test]
    fn empty_segments_ignored() {
        let r: Recipe = "b;; rw; ".parse().expect("valid");
        assert_eq!(r.steps().len(), 2);
    }

    #[test]
    fn resyn2_has_ten_steps() {
        assert_eq!(Recipe::resyn2().steps().len(), 10);
        assert_eq!(Recipe::resyn2().to_string(), "b; rw; rf; b; rw; rw -z; b; rf -z; rw -z; b");
    }

    #[test]
    fn random_recipe_deterministic_and_varied() {
        let a = random_recipe(20, 1);
        let b = random_recipe(20, 1);
        let c = random_recipe(20, 2);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.steps().len(), 20);
    }

    #[test]
    fn lint_accepts_clean_recipes() {
        assert!(lint("b; rw; rf -z; rs").is_empty());
        assert!(lint(&Recipe::resyn2().to_string()).is_empty());
        assert!(lint("b; rw;").is_empty(), "trailing `;` is tolerated");
        assert!(lint("").is_empty());
    }

    #[test]
    fn lint_reports_unknown_token_with_position() {
        let lints = lint("b; frobnicate; rw");
        assert_eq!(
            lints,
            vec![RecipeLint::UnknownToken { token: "frobnicate".to_string(), position: 4 }]
        );
        assert!(lints[0].to_string().contains("frobnicate"));
    }

    #[test]
    fn lint_reports_every_problem_not_just_the_first() {
        let lints = lint("bogus;; b; b");
        assert_eq!(lints.len(), 3, "got: {lints:?}");
        assert!(matches!(lints[0], RecipeLint::UnknownToken { .. }));
        assert!(matches!(lints[1], RecipeLint::EmptyStep { .. }));
        assert!(matches!(lints[2], RecipeLint::RedundantBalance { .. }));
    }

    #[test]
    fn lint_flags_interior_empty_step() {
        let lints = lint("b;; rw");
        assert_eq!(lints, vec![RecipeLint::EmptyStep { position: 3 }]);
    }

    #[test]
    fn lint_flags_redundant_balance_position() {
        let lints = lint("rw; b; b; rf");
        assert_eq!(lints, vec![RecipeLint::RedundantBalance { position: 8 }]);
        // `b; rw; b` is fine: the balances are not consecutive.
        assert!(lint("b; rw; b").is_empty());
        // Long aliases count too.
        assert_eq!(lint("balance; balance").len(), 1);
    }

    #[test]
    fn lint_flags_recipes_over_the_openabcd_budget() {
        // Exactly at the budget is fine — OpenABC-D recipes are 20 steps.
        let at_budget = (0..STEP_BUDGET)
            .map(|i| if i % 2 == 0 { "b" } else { "rw" })
            .collect::<Vec<_>>()
            .join("; ");
        assert!(
            !lint(&at_budget).iter().any(|l| matches!(l, RecipeLint::ExceedsStepBudget { .. })),
            "20 steps is the budget, not over it"
        );
        // One step past it is flagged, with the count and the position of
        // the first excess step.
        let over = format!("{at_budget}; rs");
        let lints = lint(&over);
        let budget_lints: Vec<_> =
            lints.iter().filter(|l| matches!(l, RecipeLint::ExceedsStepBudget { .. })).collect();
        assert_eq!(budget_lints.len(), 1, "got: {lints:?}");
        if let RecipeLint::ExceedsStepBudget { steps, position } = budget_lints[0] {
            assert_eq!(*steps, STEP_BUDGET + 1);
            assert_eq!(*position, at_budget.len() + 3, "position of the 21st step");
        }
        assert!(budget_lints[0].to_string().contains("20-step"));
        // Unknown tokens don't count toward the step budget.
        let decoys = "x; ".repeat(25) + "b";
        assert!(!lint(&decoys).iter().any(|l| matches!(l, RecipeLint::ExceedsStepBudget { .. })));
    }

    #[test]
    fn lint_agrees_with_from_str_on_validity() {
        for s in ["b; rw; rf -z; rs", "b; frobnicate", "rw -z; rf", "x"] {
            let parses = s.parse::<Recipe>().is_ok();
            let has_error = lint(s).iter().any(|l| matches!(l, RecipeLint::UnknownToken { .. }));
            assert_eq!(parses, !has_error, "disagreement on `{s}`");
        }
    }

    #[test]
    fn encode_pads_and_truncates() {
        let r = Recipe::resyn2();
        assert_eq!(r.encode(12).len(), 12);
        assert_eq!(r.encode(12)[10], 0.0);
        assert_eq!(r.encode(4).len(), 4);
        assert!(r.encode(4).iter().all(|&v| (0.0..=1.0).contains(&v)));
    }
}
