//! An ABC-like logic-synthesis simulator over AIGs.
//!
//! The OpenABC-D benchmark that HOGA is evaluated on labels each
//! (design, recipe) pair with the gate count obtained by running the recipe
//! through the ABC synthesis tool. ABC is C code we cannot link here, so
//! this crate implements the same *class* of functionality-preserving AIG
//! optimizations from scratch:
//!
//! * [`balance`] — AND-tree collapsing and depth-balanced reconstruction
//!   (ABC `balance`).
//! * [`rewrite`] — local rule-based rewriting with structural hashing
//!   (ABC `rewrite`).
//! * [`refactor`] — cut-based cone resynthesis via Shannon decomposition,
//!   accepted only when it reduces gates (ABC `refactor`).
//! * [`resub`] — simulation-signature-driven resubstitution, with a whole-
//!   pass equivalence safeguard (ABC `resub`).
//! * [`recipe`] — an ABC-script-like recipe language (`"b; rw; rf; rs"`),
//!   plus the random-recipe generator used to emulate OpenABC-D's 1500
//!   synthesis flows per design.
//! * [`cuts`] — k-feasible cut computation shared with the technology
//!   mapper in `hoga-gen`.
//!
//! Every pass returns a *new* AIG and is verified against the input with
//! 64-bit random simulation in this crate's test-suite. The runner itself
//! is *guarded*: [`run_recipe_guarded`] verifies every step against its
//! input (random-simulation filter plus an optional bounded SAT arbiter),
//! rolls back refuted or over-budget steps, and records each rejection as
//! a structured [`Incident`] instead of panicking. [`run_recipe`] is the
//! same runner with the default guard. The [`guard`] module also provides
//! deliberate fault injection ([`SynthFaultPlan`]) so the guard's
//! detection path is itself testable end to end.
//!
//! # Examples
//!
//! ```
//! use hoga_circuit::Aig;
//! use hoga_synth::{run_recipe, Recipe};
//!
//! let mut aig = Aig::new(4);
//! let lits: Vec<_> = (0..4).map(|i| aig.pi_lit(i)).collect();
//! // A skewed AND chain: balance will shorten it, strash will dedup it.
//! let mut acc = lits[0];
//! for &l in &lits[1..] {
//!     acc = aig.and(acc, l);
//! }
//! aig.add_po(acc);
//!
//! let recipe: Recipe = "b; rw; rf".parse()?;
//! let result = run_recipe(&aig, &recipe);
//! assert!(result.final_ands <= result.initial_ands);
//! # Ok::<(), hoga_synth::ParseRecipeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod balance;
pub mod cuts;
pub mod guard;
pub mod recipe;
mod refactor;
mod resub;
mod rewrite;
mod runner;

pub use balance::balance;
pub use guard::{
    GuardConfig, Incident, IncidentKind, PassBudget, PassOutcome, SynthError, SynthFault,
    SynthFaultPlan, Verification,
};
pub use recipe::{
    random_recipe, ParseRecipeError, Recipe, RecipeLint, SynthStep, RESUB_SEED_BASE, STEP_BUDGET,
};
pub use refactor::{build_from_tt, refactor};
pub use resub::{resub, signature_classes};
pub use rewrite::rewrite;
pub use runner::{run_recipe, run_recipe_guarded, GuardedRun, SynthesisResult};
