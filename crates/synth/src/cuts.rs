//! K-feasible cut computation and local truth tables.
//!
//! A *cut* of node `n` is a set of nodes (leaves) such that every path from
//! the PIs to `n` passes through a leaf. Cuts are the workhorse of cut-based
//! resynthesis ([`crate::refactor`]), LUT technology mapping
//! (`hoga_gen::techmap`), and cut-function reasoning (`hoga_gen::reason`).
//!
//! We compute one *priority cut set* per node by merging fanin cuts and
//! keeping the `CUTS_PER_NODE` smallest, plus the trivial cut `{n}`.

use hoga_circuit::{Aig, NodeId, NodeKind};

/// Maximum number of non-trivial cuts kept per node. Sixteen keeps the
/// small (2–3 leaf) cuts that functional detection needs from being crowded
/// out on reconvergent structures like carry-save adders.
const CUTS_PER_NODE: usize = 16;

/// One cut: sorted leaf node ids.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Cut {
    leaves: Vec<NodeId>,
}

impl Cut {
    /// The trivial cut `{node}`.
    pub fn trivial(node: NodeId) -> Self {
        Self { leaves: vec![node] }
    }

    /// Builds a cut from explicit leaves (sorted and deduplicated).
    pub fn from_leaves(mut leaves: Vec<NodeId>) -> Self {
        leaves.sort_unstable();
        leaves.dedup();
        Self { leaves }
    }

    /// The sorted leaf node ids.
    pub fn leaves(&self) -> &[NodeId] {
        &self.leaves
    }

    /// Number of leaves.
    pub fn size(&self) -> usize {
        self.leaves.len()
    }

    /// Merges two sorted leaf sets; `None` if the union exceeds `k`.
    fn merge(a: &Cut, b: &Cut, k: usize) -> Option<Cut> {
        let mut leaves = Vec::with_capacity(k);
        let (mut i, mut j) = (0, 0);
        while i < a.leaves.len() || j < b.leaves.len() {
            let next = match (a.leaves.get(i), b.leaves.get(j)) {
                (Some(&x), Some(&y)) if x == y => {
                    i += 1;
                    j += 1;
                    x
                }
                (Some(&x), Some(&y)) if x < y => {
                    i += 1;
                    x
                }
                (Some(_), Some(&y)) => {
                    j += 1;
                    y
                }
                (Some(&x), None) => {
                    i += 1;
                    x
                }
                (None, Some(&y)) => {
                    j += 1;
                    y
                }
                (None, None) => break,
            };
            if leaves.len() == k {
                return None;
            }
            leaves.push(next);
        }
        Some(Cut { leaves })
    }

    /// Whether `self`'s leaves are a subset of `other`'s (i.e. `self`
    /// dominates `other` and `other` is redundant).
    fn dominates(&self, other: &Cut) -> bool {
        if self.leaves.len() > other.leaves.len() {
            return false;
        }
        let mut j = 0;
        for &l in &self.leaves {
            while j < other.leaves.len() && other.leaves[j] < l {
                j += 1;
            }
            if j == other.leaves.len() || other.leaves[j] != l {
                return false;
            }
        }
        true
    }
}

/// Per-node cut sets for the whole AIG.
#[derive(Debug, Clone)]
pub struct CutSet {
    /// `cuts[n]` holds the non-trivial cuts of node `n` (best first). The
    /// trivial cut is implicit.
    cuts: Vec<Vec<Cut>>,
    k: usize,
}

impl CutSet {
    /// The non-trivial cuts of `node`, best (smallest) first.
    pub fn cuts_of(&self, node: NodeId) -> &[Cut] {
        &self.cuts[node as usize]
    }

    /// The cut-size limit `k` this set was computed with.
    pub fn k(&self) -> usize {
        self.k
    }
}

/// Computes k-feasible priority cuts for every node.
///
/// # Panics
///
/// Panics if `k < 2` or `k > 16`.
pub fn enumerate_cuts(aig: &Aig, k: usize) -> CutSet {
    assert!((2..=16).contains(&k), "cut size must be in 2..=16");
    let mut cuts: Vec<Vec<Cut>> = vec![Vec::new(); aig.num_nodes()];
    for (id, a, b) in aig.and_gates() {
        let mut mine: Vec<Cut> = Vec::new();
        let fanin_cuts = |n: NodeId| -> Vec<Cut> {
            let mut v = cuts[n as usize].clone();
            v.push(Cut::trivial(n));
            v
        };
        let ca = fanin_cuts(a.node());
        let cb = fanin_cuts(b.node());
        for x in &ca {
            for y in &cb {
                if let Some(merged) = Cut::merge(x, y, k) {
                    if !mine.iter().any(|c| c.dominates(&merged)) {
                        mine.retain(|c| !merged.dominates(c));
                        mine.push(merged);
                    }
                }
            }
        }
        mine.sort_by_key(Cut::size);
        mine.truncate(CUTS_PER_NODE);
        cuts[id as usize] = mine;
    }
    CutSet { cuts, k }
}

/// Computes the truth table of `root` as a function of `cut` leaves
/// (supports up to 6 leaves; bit `p` = output under leaf assignment `p`).
///
/// # Panics
///
/// Panics if the cut has more than 6 leaves or does not actually cut `root`
/// off from the PIs.
pub fn cut_truth_table(aig: &Aig, root: NodeId, cut: &Cut) -> u64 {
    assert!(cut.size() <= 6, "truth tables support at most 6 leaves");
    const MASKS: [u64; 6] = [
        0xAAAA_AAAA_AAAA_AAAA,
        0xCCCC_CCCC_CCCC_CCCC,
        0xF0F0_F0F0_F0F0_F0F0,
        0xFF00_FF00_FF00_FF00,
        0xFFFF_0000_FFFF_0000,
        0xFFFF_FFFF_0000_0000,
    ];
    fn eval(
        aig: &Aig,
        n: NodeId,
        cut: &Cut,
        memo: &mut std::collections::HashMap<NodeId, u64>,
        depth: usize,
    ) -> u64 {
        if let Some(pos) = cut.leaves().iter().position(|&l| l == n) {
            return MASKS[pos];
        }
        if let Some(&v) = memo.get(&n) {
            return v;
        }
        assert!(depth < 10_000, "cut does not cover node's fanin cone");
        let v = match aig.node(n) {
            NodeKind::Const0 => 0,
            NodeKind::Pi(_) => panic!("reached PI {n} not in cut — invalid cut"),
            NodeKind::And(a, b) => {
                let va = eval(aig, a.node(), cut, memo, depth + 1);
                let vb = eval(aig, b.node(), cut, memo, depth + 1);
                let va = if a.is_complemented() { !va } else { va };
                let vb = if b.is_complemented() { !vb } else { vb };
                va & vb
            }
        };
        memo.insert(n, v);
        v
    }
    let mut memo = std::collections::HashMap::new();
    let tt = eval(aig, root, cut, &mut memo, 0);
    let bits = 1u32 << cut.size();
    if bits == 64 {
        tt
    } else {
        tt & ((1u64 << bits) - 1)
    }
}

/// Size of the cone between `root` and `cut`, with traversal capped at
/// `cap` nodes (cheap volume heuristic for cut selection).
pub fn cone_size_capped(aig: &Aig, root: NodeId, cut: &Cut, cap: usize) -> usize {
    let mut seen = std::collections::HashSet::new();
    let mut stack = vec![root];
    while let Some(n) = stack.pop() {
        if cut.leaves().contains(&n) || !seen.insert(n) {
            continue;
        }
        if seen.len() >= cap {
            return cap;
        }
        if let NodeKind::And(a, b) = aig.node(n) {
            stack.push(a.node());
            stack.push(b.node());
        }
    }
    seen.len()
}

/// The nodes strictly inside the cone between `root` and `cut` (excluding
/// the leaves, including the root).
pub fn cone_nodes(aig: &Aig, root: NodeId, cut: &Cut) -> Vec<NodeId> {
    let mut seen = std::collections::HashSet::new();
    let mut order = Vec::new();
    let mut stack = vec![root];
    while let Some(n) = stack.pop() {
        if cut.leaves().contains(&n) || !seen.insert(n) {
            continue;
        }
        order.push(n);
        if let NodeKind::And(a, b) = aig.node(n) {
            stack.push(a.node());
            stack.push(b.node());
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use hoga_circuit::Aig;

    fn full_adder() -> (Aig, hoga_circuit::Lit, hoga_circuit::Lit) {
        let mut g = Aig::new(3);
        let (a, b, c) = (g.pi_lit(0), g.pi_lit(1), g.pi_lit(2));
        let x = g.xor(a, b);
        let s = g.xor(x, c);
        let carry = g.maj(a, b, c);
        g.add_po(s);
        g.add_po(carry);
        (g, s, carry)
    }

    #[test]
    fn cut_merge_respects_k() {
        let a = Cut { leaves: vec![1, 2, 3] };
        let b = Cut { leaves: vec![3, 4, 5] };
        assert_eq!(Cut::merge(&a, &b, 5).map(|c| c.leaves).as_deref(), Some(&[1, 2, 3, 4, 5][..]));
        assert!(Cut::merge(&a, &b, 4).is_none());
    }

    #[test]
    fn domination_filters_supersets() {
        let small = Cut { leaves: vec![1, 3] };
        let big = Cut { leaves: vec![1, 2, 3] };
        assert!(small.dominates(&big));
        assert!(!big.dominates(&small));
        assert!(small.dominates(&small));
    }

    #[test]
    fn full_adder_sum_has_pi_cut_with_xor3_function() {
        let (g, sum, carry) = full_adder();
        let cuts = enumerate_cuts(&g, 4);
        // The 3-PI cut must appear for both outputs and evaluate to XOR3/MAJ3
        // (modulo output complementation of the PO literal).
        let pi_nodes: Vec<NodeId> = (0..3).map(|i| g.pi_lit(i).node()).collect();
        let find_pi_cut = |n: NodeId| {
            cuts.cuts_of(n)
                .iter()
                .find(|c| c.leaves() == pi_nodes.as_slice())
                .cloned()
                .expect("3-PI cut present")
        };
        let output_tt = |lit: hoga_circuit::Lit| {
            let tt = cut_truth_table(&g, lit.node(), &find_pi_cut(lit.node()));
            if lit.is_complemented() {
                !tt & 0xFF
            } else {
                tt & 0xFF
            }
        };
        assert_eq!(output_tt(sum), 0x96, "sum must be XOR3");
        assert_eq!(output_tt(carry), 0xE8, "carry must be MAJ3");
    }

    #[test]
    fn trivial_cut_truth_table_is_identity() {
        let (g, sum, _) = full_adder();
        let cut = Cut::trivial(sum.node());
        assert_eq!(cut_truth_table(&g, sum.node(), &cut), 0xAAAA_AAAA_AAAA_AAAA & 0x3);
    }

    #[test]
    fn cone_nodes_counts_inner_gates() {
        let (g, sum, _) = full_adder();
        let pi_cut = Cut { leaves: (0..3).map(|i| g.pi_lit(i).node()).collect() };
        let cone = cone_nodes(&g, sum.node(), &pi_cut);
        // Sum cone: two stacked xors = 6 AND gates.
        assert_eq!(cone.len(), 6);
        assert!(cone.contains(&sum.node()));
    }

    #[test]
    fn cut_sets_stay_bounded() {
        // Deep chain: cut counts must stay <= CUTS_PER_NODE.
        let mut g = Aig::new(10);
        let mut acc = g.pi_lit(0);
        for i in 1..10 {
            let p = g.pi_lit(i);
            acc = g.xor(acc, p);
        }
        g.add_po(acc);
        let cuts = enumerate_cuts(&g, 4);
        for n in 0..g.num_nodes() as NodeId {
            assert!(cuts.cuts_of(n).len() <= CUTS_PER_NODE);
            for c in cuts.cuts_of(n) {
                assert!(c.size() <= 4);
            }
        }
    }
}
