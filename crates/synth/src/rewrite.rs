//! Local rule-based AIG rewriting (ABC `rewrite`).
//!
//! Rebuilds the AIG bottom-up through a smart constructor that recognizes
//! one-level Boolean identities beyond plain structural hashing:
//!
//! * absorption — `a · (a · b) = a · b`, `a · !(a · b) = a · !b`
//! * annihilation through a level — `a · (b · c) = 0` when `a = !b` or
//!   `a = !c`
//! * complement-pair factoring — `!(a·b) · !(a·!b) = !a`
//! * shared-literal regrouping — `(a·b) · (a·c) = a · (b·c)` (enables
//!   further strashing)
//!
//! All rules are verified by exhaustive 2–3 variable truth tables in the
//! tests and by random simulation at circuit scale.

use crate::guard::{PassExhausted, WorkMeter};
use hoga_circuit::{Aig, Lit, NodeKind};

/// Returns a rewritten copy of `aig` (PI/PO interface preserved).
///
/// `zero_cost` additionally applies the regrouping rule even when it does
/// not immediately save a gate, mirroring ABC's `rewrite -z`, which can
/// unlock savings for later passes.
pub fn rewrite(aig: &Aig, zero_cost: bool) -> Aig {
    let mut meter = WorkMeter::unlimited();
    rewrite_bounded(aig, zero_cost, &mut meter).unwrap_or_else(|_| unreachable!("unlimited meter"))
}

/// [`rewrite`] under a work budget: one unit per AND gate rewritten.
pub(crate) fn rewrite_bounded(
    aig: &Aig,
    zero_cost: bool,
    meter: &mut WorkMeter,
) -> Result<Aig, PassExhausted> {
    let mut out = Aig::new(aig.num_pis());
    let mut map: Vec<Lit> = vec![Lit::FALSE; aig.num_nodes()];
    for i in 0..aig.num_pis() {
        map[aig.pi_lit(i).node() as usize] = out.pi_lit(i);
    }
    for (id, a, b) in aig.and_gates() {
        meter.charge(1)?;
        let na = translate(&map, a);
        let nb = translate(&map, b);
        map[id as usize] = smart_and(&mut out, na, nb, zero_cost);
    }
    for &po in aig.pos() {
        out.add_po(translate(&map, po));
    }
    Ok(out)
}

fn translate(map: &[Lit], l: Lit) -> Lit {
    let base = map[l.node() as usize];
    if l.is_complemented() {
        !base
    } else {
        base
    }
}

/// Fanins of `l`'s node if it is a non-complemented AND output.
fn pos_and(aig: &Aig, l: Lit) -> Option<(Lit, Lit)> {
    if l.is_complemented() {
        return None;
    }
    match aig.node(l.node()) {
        NodeKind::And(x, y) => Some((x, y)),
        _ => None,
    }
}

/// Fanins of `l`'s node if it is a complemented AND output (`l = !(x·y)`).
fn neg_and(aig: &Aig, l: Lit) -> Option<(Lit, Lit)> {
    if !l.is_complemented() {
        return None;
    }
    match aig.node(l.node()) {
        NodeKind::And(x, y) => Some((x, y)),
        _ => None,
    }
}

/// AND constructor applying one-level rewriting rules before strashing.
pub(crate) fn smart_and(aig: &mut Aig, a: Lit, b: Lit, zero_cost: bool) -> Lit {
    // One-level contradiction & absorption against (x · y) fanins.
    for (top, other) in [(a, b), (b, a)] {
        if let Some((x, y)) = pos_and(aig, other) {
            // a · (a · b) = a · b
            if top == x || top == y {
                return other;
            }
            // a · (b · c) = 0 when a complements a conjunct.
            if top == !x || top == !y {
                return Lit::FALSE;
            }
        }
        if let Some((x, y)) = neg_and(aig, other) {
            // a · !(a · y) = a · !y ; a · !(x · a) = a · !x
            if top == x {
                return aig.and(top, !y);
            }
            if top == y {
                return aig.and(top, !x);
            }
            // a · !(!a · y) = a (the negated gate is 1 whenever a holds).
            if top == !x || top == !y {
                return top;
            }
        }
    }
    // Complement-pair factoring: !(x·y) · !(x·!y) = !x.
    if let (Some((p, q)), Some((r, s))) = (neg_and(aig, a), neg_and(aig, b)) {
        for (shared, rest_a) in [(p, q), (q, p)] {
            for (other_shared, rest_b) in [(r, s), (s, r)] {
                if shared == other_shared && rest_a == !rest_b {
                    return !shared;
                }
            }
        }
    }
    // Shared-literal regrouping: (x·y) · (x·z) = x · (y·z).
    if let (Some((p, q)), Some((r, s))) = (pos_and(aig, a), pos_and(aig, b)) {
        for (shared, rest_a) in [(p, q), (q, p)] {
            for (other_shared, rest_b) in [(r, s), (s, r)] {
                if shared == other_shared && (zero_cost || rest_a == rest_b) {
                    let inner = aig.and(rest_a, rest_b);
                    return aig.and(shared, inner);
                }
            }
        }
    }
    aig.and(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hoga_circuit::simulate::{exhaustive_truth_table, probably_equivalent};
    use hoga_circuit::Aig;

    /// Evaluates `smart_and` against the plain construction for every pair
    /// of 3-variable sub-expressions drawn from a small pool — an exhaustive
    /// semantic check of the rewrite rules.
    #[test]
    fn rules_are_sound_on_all_small_expressions() {
        // Pool builder: returns the i-th expression over PIs a, b, c.
        fn expr(aig: &mut Aig, i: usize) -> Lit {
            let (a, b, c) = (aig.pi_lit(0), aig.pi_lit(1), aig.pi_lit(2));
            match i {
                0 => a,
                1 => !a,
                2 => b,
                3 => !b,
                4 => aig.and(a, b),
                5 => {
                    let t = aig.and(a, b);
                    !t
                }
                6 => aig.and(a, !b),
                7 => {
                    let t = aig.and(a, !b);
                    !t
                }
                8 => aig.and(b, c),
                9 => {
                    let t = aig.and(!a, c);
                    !t
                }
                10 => aig.and(!b, !c),
                _ => c,
            }
        }
        for i in 0..12 {
            for j in 0..12 {
                let mut ref_aig = Aig::new(3);
                let x = expr(&mut ref_aig, i);
                let y = expr(&mut ref_aig, j);
                let plain = ref_aig.and(x, y);
                ref_aig.add_po(plain);
                let reference = exhaustive_truth_table(&ref_aig, 0);

                let mut smart_aig = Aig::new(3);
                let x = expr(&mut smart_aig, i);
                let y = expr(&mut smart_aig, j);
                let smart = smart_and(&mut smart_aig, x, y, false);
                smart_aig.add_po(smart);
                let got = exhaustive_truth_table(&smart_aig, 0);
                assert_eq!(got, reference, "rule broke ({i}, {j})");

                // Zero-cost variant must be equally sound.
                let mut z_aig = Aig::new(3);
                let x = expr(&mut z_aig, i);
                let y = expr(&mut z_aig, j);
                let z = smart_and(&mut z_aig, x, y, true);
                z_aig.add_po(z);
                assert_eq!(
                    exhaustive_truth_table(&z_aig, 0),
                    reference,
                    "zero-cost broke ({i}, {j})"
                );
            }
        }
    }

    #[test]
    fn absorption_saves_gates() {
        let mut g = Aig::new(2);
        let (a, b) = (g.pi_lit(0), g.pi_lit(1));
        let ab = g.and(a, b);
        let redundant = g.and(a, ab);
        g.add_po(redundant);
        let mut r = rewrite(&g, false);
        r.compact();
        assert_eq!(r.num_ands(), 1);
        assert!(probably_equivalent(&g, &r, 4, 0));
    }

    #[test]
    fn complement_pair_factoring_detects_not_a() {
        // !(a·b) · !(a·!b) = !a
        let mut g = Aig::new(2);
        let (a, b) = (g.pi_lit(0), g.pi_lit(1));
        let x = g.and(a, b);
        let y = g.and(a, !b);
        let z = g.and(!x, !y);
        g.add_po(z);
        let mut r = rewrite(&g, false);
        r.compact();
        assert_eq!(r.num_ands(), 0, "whole cone reduces to !a");
        assert!(probably_equivalent(&g, &r, 4, 1));
    }

    #[test]
    fn rewrite_never_changes_function_on_random_circuits() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        for trial in 0..10 {
            let n_pis = 5;
            let mut g = Aig::new(n_pis);
            let mut pool: Vec<Lit> = (0..n_pis).map(|i| g.pi_lit(i)).collect();
            for _ in 0..40 {
                let x = pool[rng.gen_range(0..pool.len())];
                let y = pool[rng.gen_range(0..pool.len())];
                let x = if rng.gen() { !x } else { x };
                let y = if rng.gen() { !y } else { y };
                let l = g.and(x, y);
                pool.push(l);
            }
            for _ in 0..3 {
                let l = pool[rng.gen_range(0..pool.len())];
                g.add_po(l);
            }
            let r = rewrite(&g, trial % 2 == 0);
            assert!(
                probably_equivalent(&g, &r, 4, trial as u64),
                "rewrite changed function on trial {trial}"
            );
            let mut rc = r.clone();
            rc.compact();
            assert!(rc.num_ands() <= g.num_ands(), "rewrite must not grow the AIG");
        }
    }
}
