//! AND-tree balancing (ABC `balance`).
//!
//! Collapses maximal conjunction trees (chains of non-complemented AND
//! edges) into flat multi-input ANDs, then rebuilds each as a depth-balanced
//! binary tree, pairing the two shallowest operands first (Huffman order).
//! Rebuilding through the structural hash also merges duplicated subtrees,
//! so `balance` usually reduces both depth and gate count.

use crate::guard::{PassExhausted, WorkMeter};
use hoga_circuit::{Aig, Lit, NodeKind};
use std::collections::HashMap;

/// Returns a balanced copy of `aig` (PI/PO interface preserved).
pub fn balance(aig: &Aig) -> Aig {
    let mut meter = WorkMeter::unlimited();
    balance_bounded(aig, &mut meter).unwrap_or_else(|_| unreachable!("unlimited meter"))
}

/// [`balance`] under a work budget: one unit per AND-tree root rebuilt.
pub(crate) fn balance_bounded(aig: &Aig, meter: &mut WorkMeter) -> Result<Aig, PassExhausted> {
    let mut out = Aig::new(aig.num_pis());
    // Map from old literal (raw) to new literal for non-complemented node
    // outputs; complements are applied on lookup.
    let mut map: Vec<Option<Lit>> = vec![None; aig.num_nodes()];
    map[0] = Some(Lit::FALSE);
    for i in 0..aig.num_pis() {
        map[aig.pi_lit(i).node() as usize] = Some(out.pi_lit(i));
    }

    // Gate fanout counts decide tree-collapse boundaries: expanding through
    // a multi-fanout node would duplicate logic, so such nodes stay roots.
    let fanout = hoga_circuit::fanout_counts(aig);
    let mut po_fanout = vec![0u32; aig.num_nodes()];
    for po in aig.pos() {
        po_fanout[po.node() as usize] += 1;
    }

    // Memoized balanced construction per old node. Levels of the output AIG
    // are maintained incrementally (nodes are append-only).
    let mut cache: HashMap<u32, Lit> = HashMap::new();
    let mut out_levels: Vec<u32> = vec![0; out.num_nodes()];
    for (id, _, _) in aig.and_gates() {
        meter.charge(1)?;
        let lit = build_balanced(
            aig,
            id,
            &fanout,
            &po_fanout,
            &mut out,
            &mut cache,
            &map,
            &mut out_levels,
        );
        map[id as usize] = Some(lit);
        // `map` feeds leaf lookups for later roots.
        let _ = &map;
    }
    for &po in aig.pos() {
        let mapped = map[po.node() as usize].expect("PO driver mapped");
        out.add_po(if po.is_complemented() { !mapped } else { mapped });
    }
    // Interior tree gates were rebuilt speculatively for every chain prefix;
    // only the trees reachable from the POs are kept.
    out.compact();
    Ok(out)
}

/// Collects the leaves of the maximal AND tree rooted at `root` and rebuilds
/// it balanced in `out`.
#[allow(clippy::too_many_arguments)]
fn build_balanced(
    aig: &Aig,
    root: u32,
    fanout: &[u32],
    po_fanout: &[u32],
    out: &mut Aig,
    cache: &mut HashMap<u32, Lit>,
    map: &[Option<Lit>],
    out_levels: &mut Vec<u32>,
) -> Lit {
    if let Some(&l) = cache.get(&root) {
        return l;
    }
    // Gather leaves: DFS through non-complemented, single-fanout AND fanins.
    let mut leaves: Vec<Lit> = Vec::new();
    let mut stack = vec![root];
    while let Some(n) = stack.pop() {
        let NodeKind::And(a, b) = aig.node(n) else { unreachable!("AND expected") };
        for f in [a, b] {
            let fn_id = f.node();
            let expandable = !f.is_complemented()
                && matches!(aig.node(fn_id), NodeKind::And(_, _))
                && fanout[fn_id as usize] + po_fanout[fn_id as usize] == 1;
            if expandable {
                stack.push(fn_id);
            } else {
                // Translate the leaf into the new AIG.
                let base = map[fn_id as usize].expect("leaf mapped before root");
                leaves.push(if f.is_complemented() { !base } else { base });
            }
        }
    }
    // Balanced reconstruction: repeatedly AND the two shallowest operands.
    // Output-AIG levels are tracked incrementally: nodes are append-only, so
    // any node index below `out_levels.len()` already has its level.
    let sync_levels = |out: &Aig, levels: &mut Vec<u32>| {
        for id in levels.len()..out.num_nodes() {
            let lv = match out.node(id as u32) {
                NodeKind::And(a, b) => 1 + levels[a.node() as usize].max(levels[b.node() as usize]),
                _ => 0,
            };
            levels.push(lv);
        }
    };
    sync_levels(out, out_levels);
    leaves.sort_by_key(|&l| std::cmp::Reverse(out_levels[l.node() as usize]));
    while leaves.len() > 1 {
        let a = leaves.pop().expect("len > 1");
        let b = leaves.pop().expect("len > 1");
        let joined = out.and(a, b);
        sync_levels(out, out_levels);
        // Insert keeping the deepest-first ordering.
        let jl = out_levels[joined.node() as usize];
        let pos = leaves
            .binary_search_by(|&x| out_levels[x.node() as usize].cmp(&jl).reverse())
            .unwrap_or_else(|e| e);
        leaves.insert(pos, joined);
    }
    let result = leaves.pop().unwrap_or(Lit::TRUE);
    cache.insert(root, result);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use hoga_circuit::simulate::probably_equivalent;
    use hoga_circuit::{depth, Aig};

    /// A maximally skewed 8-input AND chain.
    fn chain(n: usize) -> Aig {
        let mut g = Aig::new(n);
        let mut acc = g.pi_lit(0);
        for i in 1..n {
            let p = g.pi_lit(i);
            acc = g.and(acc, p);
        }
        g.add_po(acc);
        g
    }

    #[test]
    fn balances_and_chain_to_log_depth() {
        let g = chain(8);
        assert_eq!(depth(&g), 7);
        let b = balance(&g);
        assert_eq!(depth(&b), 3);
        assert_eq!(b.num_ands(), 7);
        assert!(probably_equivalent(&g, &b, 4, 0));
    }

    #[test]
    fn preserves_multi_fanout_boundaries() {
        // x = a&b used twice: the shared node must not be duplicated.
        let mut g = Aig::new(3);
        let (a, b, c) = (g.pi_lit(0), g.pi_lit(1), g.pi_lit(2));
        let x = g.and(a, b);
        let y = g.and(x, c);
        let z = g.and(x, !c);
        g.add_po(y);
        g.add_po(z);
        let bl = balance(&g);
        assert!(probably_equivalent(&g, &bl, 4, 1));
        assert!(bl.num_ands() <= g.num_ands());
    }

    #[test]
    fn preserves_complement_boundaries() {
        // OR trees are AND trees behind complemented edges; leaves must keep
        // their complements.
        let mut g = Aig::new(4);
        let lits: Vec<_> = (0..4).map(|i| g.pi_lit(i)).collect();
        let mut acc = lits[0];
        for &l in &lits[1..] {
            acc = g.or(acc, l);
        }
        g.add_po(acc);
        let b = balance(&g);
        assert!(probably_equivalent(&g, &b, 4, 2));
    }

    #[test]
    fn balance_of_balanced_is_stable() {
        let g = chain(16);
        let b1 = balance(&g);
        let b2 = balance(&b1);
        assert_eq!(depth(&b1), depth(&b2));
        assert_eq!(b1.num_ands(), b2.num_ands());
        assert!(probably_equivalent(&g, &b2, 4, 3));
    }

    #[test]
    fn dedups_repeated_leaves() {
        // (a & b) & (b & a) collapses to a & b through strash.
        let mut g = Aig::new(2);
        let (a, b) = (g.pi_lit(0), g.pi_lit(1));
        let x = g.and(a, b);
        g.add_po(x);
        let bl = balance(&g);
        assert_eq!(bl.num_ands(), 1);
        assert!(probably_equivalent(&g, &bl, 2, 4));
    }

    #[test]
    fn empty_and_trivial_aigs() {
        let mut g = Aig::new(1);
        let a = g.pi_lit(0);
        g.add_po(!a);
        let b = balance(&g);
        assert_eq!(b.num_ands(), 0);
        assert!(probably_equivalent(&g, &b, 2, 5));
    }
}
