//! Per-pass guarding for the synthesis runner.
//!
//! OpenABC-D-style QoR labels are produced by running recipes of
//! functionality-preserving passes; a single miscompiling pass silently
//! poisons every downstream label. This module provides the runner's
//! defense in depth:
//!
//! * **Functional-equivalence guard** — after every pass the transformed
//!   AIG is checked against the pass input, first with 64-bit random
//!   simulation (a fast, sound-on-refutation filter), then optionally with
//!   the [`hoga_circuit::sat`] miter under a bounded conflict budget (the
//!   arbiter, which can upgrade the verdict to a proof). A refuted pass is
//!   rolled back and recorded as a structured [`Incident`]; the recipe
//!   continues on the pre-pass circuit.
//! * **Pass budgets** — every pass runs under a deterministic work budget
//!   (and an optional wall-clock deadline) tracked by a [`WorkMeter`];
//!   exhaustion rolls the pass back instead of hanging the sweep.
//! * **Fault injection** — [`SynthFaultPlan`] deliberately miscompiles or
//!   stalls selected steps so tests can prove the guard actually fires,
//!   mirroring `hoga_eval`'s trainer-side `FaultPlan`.
//!
//! Wall-clock deadlines are inherently nondeterministic, so dataset
//! generation keeps them disabled (`timeout_ms == 0`) and relies on
//! `max_work`; interactive CLI use may enable both.

use crate::SynthStep;
use hoga_circuit::sat::{check_equivalence, Equivalence};
use hoga_circuit::simulate::probably_equivalent;
use hoga_circuit::Aig;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::time::{Duration, Instant};

/// Work/deadline budget for a single synthesis pass. Zero means unlimited
/// for either field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PassBudget {
    /// Maximum abstract work units (roughly: gates visited) per pass;
    /// deterministic across runs and machines. `0` = unlimited.
    pub max_work: u64,
    /// Wall-clock deadline per pass in milliseconds. Nondeterministic —
    /// keep at `0` (disabled) wherever byte-identical reruns matter.
    pub timeout_ms: u64,
}

impl Default for PassBudget {
    fn default() -> Self {
        Self::unlimited()
    }
}

impl PassBudget {
    /// No limits: passes run to completion.
    pub fn unlimited() -> Self {
        Self { max_work: 0, timeout_ms: 0 }
    }

    /// Deterministic work-only budget.
    pub fn with_max_work(max_work: u64) -> Self {
        Self { max_work, timeout_ms: 0 }
    }
}

/// Raised by [`WorkMeter::charge`] when a pass exceeds its budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct PassExhausted {
    /// Work units spent when the budget tripped.
    pub(crate) work_spent: u64,
}

/// Tracks work spent by one pass against a [`PassBudget`].
///
/// The wall clock is consulted sparsely (every 1024 charges) so metering
/// stays cheap on the hot path.
#[derive(Debug)]
pub(crate) struct WorkMeter {
    spent: u64,
    max_work: u64,
    deadline: Option<Instant>,
    charges_since_clock: u32,
    forced: bool,
}

impl WorkMeter {
    /// A meter enforcing `budget`.
    pub(crate) fn new(budget: &PassBudget) -> Self {
        let deadline = if budget.timeout_ms > 0 {
            Some(Instant::now() + Duration::from_millis(budget.timeout_ms))
        } else {
            None
        };
        Self {
            spent: 0,
            max_work: budget.max_work,
            deadline,
            charges_since_clock: 0,
            forced: false,
        }
    }

    /// A meter that never trips.
    pub(crate) fn unlimited() -> Self {
        Self::new(&PassBudget::unlimited())
    }

    /// Forces the meter into the exhausted state (fault-injection hook for
    /// deterministically exercising the timeout path).
    pub(crate) fn exhaust(&mut self) {
        self.forced = true;
    }

    /// Records `units` of work; errors once the budget is exceeded.
    pub(crate) fn charge(&mut self, units: u64) -> Result<(), PassExhausted> {
        self.spent = self.spent.saturating_add(units);
        if self.forced || (self.max_work > 0 && self.spent > self.max_work) {
            return Err(PassExhausted { work_spent: self.spent });
        }
        if let Some(deadline) = self.deadline {
            self.charges_since_clock += 1;
            if self.charges_since_clock >= 1024 {
                self.charges_since_clock = 0;
                if Instant::now() > deadline {
                    return Err(PassExhausted { work_spent: self.spent });
                }
            }
        }
        Ok(())
    }
}

/// Equivalence-guard configuration for [`crate::run_recipe_guarded`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GuardConfig {
    /// Random-simulation rounds (64 patterns each) per pass. Must be at
    /// least 1: simulation is the mandatory fast filter.
    pub sim_rounds: usize,
    /// Conflict budget for the SAT miter arbiter; `0` disables the SAT
    /// stage and accepts simulation-passed transforms as [`Verification::SimOnly`].
    pub conflict_budget: u64,
    /// Per-pass work/deadline budget.
    pub budget: PassBudget,
}

impl Default for GuardConfig {
    fn default() -> Self {
        Self { sim_rounds: 2, conflict_budget: 0, budget: PassBudget::unlimited() }
    }
}

impl GuardConfig {
    /// Checks internal consistency.
    pub fn validate(&self) -> Result<(), SynthError> {
        if self.sim_rounds == 0 {
            return Err(SynthError::InvalidConfig {
                reason: "sim_rounds must be >= 1 (simulation is the mandatory fast filter)",
            });
        }
        Ok(())
    }
}

/// Typed errors from the guarded runner (replacing panics).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SynthError {
    /// The [`GuardConfig`] is inconsistent.
    InvalidConfig {
        /// Human-readable reason.
        reason: &'static str,
    },
    /// A [`SynthFaultPlan`] targets a step index past the end of the recipe.
    FaultOutOfRange {
        /// The offending step index.
        step: usize,
        /// Number of steps in the recipe.
        steps: usize,
    },
}

impl fmt::Display for SynthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthError::InvalidConfig { reason } => write!(f, "invalid guard config: {reason}"),
            SynthError::FaultOutOfRange { step, steps } => {
                write!(f, "fault injected at step {step} but the recipe has {steps} steps")
            }
        }
    }
}

impl std::error::Error for SynthError {}

/// A deliberately injected pass fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SynthFault {
    /// Complement the first PO of the pass output — a miscompile the
    /// equivalence guard must catch.
    Miscompile,
    /// Pre-exhaust the pass's [`WorkMeter`] — a deterministic stand-in for
    /// a hung or runaway pass, exercising the timeout path.
    Stall,
}

/// Deterministic per-step fault schedule, mirroring the trainer-side
/// `hoga_eval::fault::FaultPlan`.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SynthFaultPlan {
    faults: Vec<(usize, SynthFault)>,
}

impl SynthFaultPlan {
    /// A plan with no faults.
    pub fn none() -> Self {
        Self::default()
    }

    /// Adds a fault at `step` (0-based recipe step index).
    pub fn inject(mut self, step: usize, fault: SynthFault) -> Self {
        self.faults.push((step, fault));
        self
    }

    /// The fault scheduled for `step`, if any.
    pub(crate) fn fault_at(&self, step: usize) -> Option<SynthFault> {
        self.faults.iter().find(|(s, _)| *s == step).map(|(_, f)| *f)
    }

    /// Whether the plan schedules no faults at all.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Projects the engine's unified fault vocabulary
    /// ([`hoga_jobs::JobFaultPlan`]) onto recipe steps: a
    /// `Step { step, .. }` site maps to that 0-based recipe step, with
    /// `Corrupt` → [`SynthFault::Miscompile`] and `Stall` →
    /// [`SynthFault::Stall`]. `Panic` and `Attempt`-site faults are
    /// engine-level and not projected — the guarded runner never panics by
    /// design, so panic injection belongs to the job engine's
    /// `catch_unwind` layer.
    pub fn from_job_plan(plan: &hoga_jobs::JobFaultPlan) -> Self {
        use hoga_jobs::{FaultKind, FaultSite};
        let mut out = Self::none();
        for planned in plan.faults() {
            if let FaultSite::Step { step, .. } = planned.site {
                match planned.kind {
                    FaultKind::Corrupt => {
                        out = out.inject(step as usize, SynthFault::Miscompile);
                    }
                    FaultKind::Stall { .. } => out = out.inject(step as usize, SynthFault::Stall),
                    FaultKind::Panic => {}
                }
            }
        }
        out
    }

    /// The largest targeted step index, if any.
    pub(crate) fn max_step(&self) -> Option<usize> {
        self.faults.iter().map(|(s, _)| *s).max()
    }
}

/// How thoroughly an applied pass was verified.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Verification {
    /// Passed random simulation; the SAT arbiter was disabled or returned
    /// `Unknown` within its conflict budget.
    SimOnly,
    /// Proven equivalent by the SAT miter.
    Proved,
}

/// Why a pass was rejected.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum IncidentKind {
    /// Random simulation found differing PO values (sound refutation).
    SimRefuted {
        /// Simulation rounds configured when the mismatch was found.
        rounds: usize,
    },
    /// The SAT miter produced a counterexample input assignment.
    SatRefuted {
        /// One bit per PI.
        counterexample: Vec<bool>,
    },
    /// The pass changed the PI/PO interface (never legal).
    InterfaceChanged {
        /// PI count before the pass.
        pis_before: usize,
        /// PI count after the pass.
        pis_after: usize,
        /// PO count before the pass.
        pos_before: usize,
        /// PO count after the pass.
        pos_after: usize,
    },
    /// The pass exceeded its work/deadline budget.
    Exhausted {
        /// Work units spent when the budget tripped.
        work_spent: u64,
    },
}

/// A structured record of a rejected pass.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Incident {
    /// 0-based step index within the recipe.
    pub step_index: usize,
    /// The step that was rejected.
    pub step: SynthStep,
    /// Why it was rejected.
    pub kind: IncidentKind,
}

impl fmt::Display for Incident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "step {} ({}): ", self.step_index, self.step)?;
        match &self.kind {
            IncidentKind::SimRefuted { rounds } => {
                write!(f, "refuted by random simulation ({rounds} rounds)")
            }
            IncidentKind::SatRefuted { counterexample } => {
                let bits: String =
                    counterexample.iter().map(|&b| if b { '1' } else { '0' }).collect();
                write!(f, "refuted by SAT miter (counterexample {bits})")
            }
            IncidentKind::InterfaceChanged { pis_before, pis_after, pos_before, pos_after } => {
                write!(
                    f,
                    "interface changed ({pis_before}->{pis_after} PIs, \
                     {pos_before}->{pos_after} POs)"
                )
            }
            IncidentKind::Exhausted { work_spent } => {
                write!(f, "budget exhausted after {work_spent} work units")
            }
        }
    }
}

/// Outcome of one recipe step under the guarded runner.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PassOutcome {
    /// The pass was applied.
    Applied {
        /// Verification strength for this step.
        verification: Verification,
        /// Gate count after the pass.
        ands_after: usize,
    },
    /// The pass was refuted by the equivalence guard and rolled back.
    RolledBack {
        /// The structured refutation record.
        incident: Incident,
    },
    /// The pass exceeded its budget and was rolled back.
    TimedOut {
        /// The structured budget record.
        incident: Incident,
    },
}

impl PassOutcome {
    /// The incident attached to a rejected pass, if any.
    pub fn incident(&self) -> Option<&Incident> {
        match self {
            PassOutcome::Applied { .. } => None,
            PassOutcome::RolledBack { incident } | PassOutcome::TimedOut { incident } => {
                Some(incident)
            }
        }
    }
}

/// Checks `after` against `before` under `cfg`; `Err` carries the incident
/// that mandates rollback.
pub(crate) fn verify_step(
    before: &Aig,
    after: &Aig,
    cfg: &GuardConfig,
    step_index: usize,
    step: SynthStep,
) -> Result<Verification, Incident> {
    let incident = |kind| Incident { step_index, step, kind };
    // Interface first: `probably_equivalent` treats PI/PO mismatches as
    // caller bugs and panics, so the guard screens them into an incident.
    if before.num_pis() != after.num_pis() || before.num_pos() != after.num_pos() {
        return Err(incident(IncidentKind::InterfaceChanged {
            pis_before: before.num_pis(),
            pis_after: after.num_pis(),
            pos_before: before.num_pos(),
            pos_after: after.num_pos(),
        }));
    }
    // Fast filter: random simulation refutations are sound.
    if !probably_equivalent(before, after, cfg.sim_rounds, step_index as u64) {
        return Err(incident(IncidentKind::SimRefuted { rounds: cfg.sim_rounds }));
    }
    // Arbiter: the bounded SAT miter can upgrade to a proof or refute with
    // a counterexample; `Unknown` (budget exhausted) keeps the sim verdict.
    if cfg.conflict_budget > 0 {
        match check_equivalence(before, after, cfg.conflict_budget) {
            Equivalence::Equivalent => return Ok(Verification::Proved),
            Equivalence::Inequivalent(counterexample) => {
                return Err(incident(IncidentKind::SatRefuted { counterexample }));
            }
            Equivalence::Unknown => {}
        }
    }
    Ok(Verification::SimOnly)
}

/// Applies `fault` to a pass output (`Stall` is handled by the runner
/// before the pass executes).
pub(crate) fn inject_miscompile(aig: &mut Aig) {
    if aig.num_pos() > 0 {
        let po = aig.pos()[0];
        aig.set_po(0, !po);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_pos() -> Aig {
        let mut g = Aig::new(2);
        let (a, b) = (g.pi_lit(0), g.pi_lit(1));
        let x = g.and(a, b);
        g.add_po(x);
        g.add_po(!x);
        g
    }

    #[test]
    fn meter_unlimited_never_trips() {
        let mut m = WorkMeter::unlimited();
        for _ in 0..10_000 {
            m.charge(17).expect("unlimited meter must not trip");
        }
        assert_eq!(m.spent, 170_000);
    }

    #[test]
    fn meter_trips_on_work_budget() {
        let mut m = WorkMeter::new(&PassBudget::with_max_work(10));
        assert!(m.charge(10).is_ok());
        let err = m.charge(1).expect_err("over budget");
        assert_eq!(err.work_spent, 11);
    }

    #[test]
    fn meter_exhaust_forces_first_charge_to_fail() {
        let mut m = WorkMeter::unlimited();
        m.exhaust();
        assert!(m.charge(1).is_err());
    }

    #[test]
    fn verify_accepts_identical_circuits() {
        let g = two_pos();
        let v = verify_step(&g, &g.clone(), &GuardConfig::default(), 0, SynthStep::Balance)
            .expect("identical circuits verify");
        assert_eq!(v, Verification::SimOnly);
    }

    #[test]
    fn verify_proves_with_sat_arbiter() {
        let g = two_pos();
        let cfg = GuardConfig { conflict_budget: 100_000, ..GuardConfig::default() };
        let v = verify_step(&g, &g.clone(), &cfg, 0, SynthStep::Balance).expect("equivalent");
        assert_eq!(v, Verification::Proved);
    }

    #[test]
    fn verify_refutes_miscompile_by_simulation() {
        let g = two_pos();
        let mut bad = g.clone();
        inject_miscompile(&mut bad);
        let err = verify_step(&g, &bad, &GuardConfig::default(), 3, SynthStep::Resub)
            .expect_err("miscompile must be refuted");
        assert_eq!(err.step_index, 3);
        assert!(matches!(err.kind, IncidentKind::SimRefuted { rounds: 2 }));
    }

    #[test]
    fn verify_screens_interface_changes() {
        let g = two_pos();
        let mut narrower = Aig::new(2);
        let x = narrower.pi_lit(0);
        narrower.add_po(x);
        let err = verify_step(&g, &narrower, &GuardConfig::default(), 0, SynthStep::Balance)
            .expect_err("PO count change must be an incident");
        assert!(matches!(
            err.kind,
            IncidentKind::InterfaceChanged { pos_before: 2, pos_after: 1, .. }
        ));
    }

    #[test]
    fn zero_sim_rounds_is_invalid() {
        let cfg = GuardConfig { sim_rounds: 0, ..GuardConfig::default() };
        assert!(matches!(cfg.validate(), Err(SynthError::InvalidConfig { .. })));
    }

    #[test]
    fn fault_plan_lookup() {
        let plan =
            SynthFaultPlan::none().inject(2, SynthFault::Miscompile).inject(5, SynthFault::Stall);
        assert_eq!(plan.fault_at(2), Some(SynthFault::Miscompile));
        assert_eq!(plan.fault_at(5), Some(SynthFault::Stall));
        assert_eq!(plan.fault_at(0), None);
        assert_eq!(plan.max_step(), Some(5));
        assert!(SynthFaultPlan::none().is_empty());
    }

    #[test]
    fn job_plan_projects_onto_recipe_steps() {
        use hoga_jobs::{FaultKind, FaultSite, JobFaultPlan};
        let unified = JobFaultPlan::none()
            .inject(FaultSite::Step { unit: 0, step: 2, lane: 0 }, FaultKind::Corrupt)
            .inject(FaultSite::Step { unit: 0, step: 5, lane: 0 }, FaultKind::Stall { millis: 3 })
            // Engine-level kinds/sites; must not reach the guard.
            .inject(FaultSite::Step { unit: 0, step: 1, lane: 0 }, FaultKind::Panic)
            .inject(FaultSite::Attempt { attempt: 2 }, FaultKind::Corrupt);
        let plan = SynthFaultPlan::from_job_plan(&unified);
        assert_eq!(plan.fault_at(2), Some(SynthFault::Miscompile));
        assert_eq!(plan.fault_at(5), Some(SynthFault::Stall));
        assert_eq!(plan.fault_at(1), None);
        assert_eq!(plan.max_step(), Some(5));
    }

    #[test]
    fn incident_display_is_informative() {
        let i = Incident {
            step_index: 4,
            step: SynthStep::Rewrite { zero_cost: false },
            kind: IncidentKind::SatRefuted { counterexample: vec![true, false] },
        };
        let s = i.to_string();
        assert!(s.contains("step 4"), "{s}");
        assert!(s.contains("rw"), "{s}");
        assert!(s.contains("10"), "{s}");
    }
}
