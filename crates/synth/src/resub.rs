//! Simulation-driven resubstitution (ABC `resub`).
//!
//! Two nodes whose 64-bit random simulation signatures agree on several
//! independent seeds are functionally equivalent with overwhelming
//! probability; resubstitution redirects all fanouts of the later node to
//! the earlier one (or its complement), letting dead-code removal reclaim
//! the duplicate cone. As a hard safeguard the whole pass is verified with
//! fresh random patterns and rolled back if any PO changed — the pass is
//! deterministic and sound by construction.

use crate::guard::{PassExhausted, WorkMeter};
use hoga_circuit::simulate::{
    exhaustive_equivalent, exhaustive_node_signatures, node_signature, probably_equivalent,
    EXHAUSTIVE_PI_LIMIT,
};
use hoga_circuit::{Aig, Lit, NodeKind};
use std::collections::HashMap;

/// Number of independent signature rounds required before merging
/// (8 × 64 = 512 random patterns per node).
const SIGNATURE_ROUNDS: usize = 8;

/// Signatures with fewer than this many 0s or 1s across all rounds are
/// *near-constant*: deep AND cones are almost always 0 on random patterns,
/// so two functionally different cones can share a near-constant signature.
/// Merging such nodes is the dominant unsound-resubstitution failure mode,
/// so near-constant classes are never merged.
const MIN_SIGNATURE_ACTIVITY: u32 = 8;

/// Returns a resubstituted copy of `aig` (PI/PO interface preserved).
///
/// `seed` controls the random simulation patterns; any seed yields a valid
/// (verified) result, different seeds may find different merges.
pub fn resub(aig: &Aig, seed: u64) -> Aig {
    let mut meter = WorkMeter::unlimited();
    resub_bounded(aig, seed, &mut meter).unwrap_or_else(|_| unreachable!("unlimited meter"))
}

/// [`resub`] under a work budget: one unit per node per signature round
/// plus one per node classified.
pub(crate) fn resub_bounded(
    aig: &Aig,
    seed: u64,
    meter: &mut WorkMeter,
) -> Result<Aig, PassExhausted> {
    // Small input spaces are covered exhaustively — merges become *proofs*.
    // Sampled signatures are only used when the space is too large, where a
    // sparse discrepancy is correspondingly unlikely to matter and the
    // final verification still guards the result.
    let exhaustive = aig.num_pis() <= EXHAUSTIVE_PI_LIMIT;
    // Signature simulation sweeps every node once per round.
    meter.charge((aig.num_nodes() as u64).saturating_mul(SIGNATURE_ROUNDS as u64))?;
    let sigs: Vec<Vec<u64>> = if exhaustive {
        Vec::new()
    } else {
        (0..SIGNATURE_ROUNDS)
            .map(|r| {
                node_signature(
                    aig,
                    seed.wrapping_add((r as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                )
            })
            .collect()
    };
    let exhaustive_sigs: Vec<Vec<u64>> =
        if exhaustive { exhaustive_node_signatures(aig) } else { Vec::new() };
    let key = |n: usize| -> Vec<u64> {
        if exhaustive {
            exhaustive_sigs[n].clone()
        } else {
            sigs.iter().map(|s| s[n]).collect()
        }
    };

    // Representative per signature class; complement handled by also
    // indexing the bitwise-NOT signature.
    let mut repr: HashMap<Vec<u64>, Lit> = HashMap::new();
    let mut replacement: Vec<Lit> =
        (0..aig.num_nodes()).map(|i| Lit::from_node(i as u32, false)).collect();

    let total_bits =
        if exhaustive { 1u32 << aig.num_pis() } else { (SIGNATURE_ROUNDS * 64) as u32 };
    for (i, slot) in replacement.iter_mut().enumerate() {
        meter.charge(1)?;
        let k = key(i);
        let ones: u32 = k.iter().map(|w| w.count_ones()).sum();
        // Near-constant sampled signatures are unsafe to merge on; with
        // exhaustive signatures every merge is sound, so no filter applies.
        if !exhaustive
            && (ones < MIN_SIGNATURE_ACTIVITY || ones > total_bits - MIN_SIGNATURE_ACTIVITY)
        {
            continue;
        }
        // Complement within the valid-pattern mask: exhaustive signatures
        // on fewer than 6 PIs only occupy the low 2^pis bits of each word.
        let sig_mask = if exhaustive && aig.num_pis() < 6 {
            (1u64 << (1 << aig.num_pis())) - 1
        } else {
            u64::MAX
        };
        let kc: Vec<u64> = k.iter().map(|&w| !w & sig_mask).collect();
        if let Some(&earlier) = repr.get(&k) {
            *slot = earlier;
        } else if let Some(&earlier) = repr.get(&kc) {
            *slot = !earlier;
        } else {
            repr.insert(k, Lit::from_node(i as u32, false));
        }
    }

    // Rebuild with fanins redirected through `replacement`.
    let mut out = Aig::new(aig.num_pis());
    let mut map: Vec<Lit> = vec![Lit::FALSE; aig.num_nodes()];
    for i in 0..aig.num_pis() {
        map[aig.pi_lit(i).node() as usize] = out.pi_lit(i);
    }
    let resolve = |map: &[Lit], replacement: &[Lit], l: Lit| -> Lit {
        let r = replacement[l.node() as usize];
        let base = map[r.node() as usize];
        let flips = l.is_complemented() ^ r.is_complemented();
        if flips {
            !base
        } else {
            base
        }
    };
    for (id, a, b) in aig.and_gates() {
        // Nodes that were replaced still get *translated* (they may be the
        // class representative for later nodes only via `replacement`).
        let na = resolve(&map, &replacement, a);
        let nb = resolve(&map, &replacement, b);
        map[id as usize] = out.and(na, nb);
    }
    for &po in aig.pos() {
        out.add_po(resolve(&map, &replacement, po));
    }
    out.compact();

    // Hard safeguard: exhaustive (definitive) for small input spaces,
    // fresh random patterns otherwise; roll back on any discrepancy.
    let verified = if exhaustive {
        exhaustive_equivalent(aig, &out)
    } else {
        probably_equivalent(aig, &out, 8, seed ^ 0xABCD_EF01)
    };
    if verified {
        Ok(out)
    } else {
        let mut fallback = aig.clone();
        fallback.compact();
        Ok(fallback)
    }
}

/// Counts structurally distinct simulation classes — a diagnostic used by
/// tests and by the dataset generator to gauge redundancy.
// analyze: allow(dead-public-api) — public redundancy diagnostic re-exported by the crate root; covered by tests
pub fn signature_classes(aig: &Aig, seed: u64) -> usize {
    let sig = node_signature(aig, seed);
    let mut classes: HashMap<u64, ()> = HashMap::new();
    for (i, &s) in sig.iter().enumerate() {
        if matches!(aig.node(i as u32), NodeKind::And(_, _)) {
            classes.insert(s.min(!s), ());
        }
    }
    classes.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merges_duplicate_cones() {
        // Same xor built twice from different literal orders; strash cannot
        // see it, signatures can.
        let mut g = Aig::new(2);
        let (a, b) = (g.pi_lit(0), g.pi_lit(1));
        let x1 = {
            let p = g.and(a, !b);
            let q = g.and(!a, b);
            g.or(p, q)
        };
        // xnor = !xor, built structurally differently.
        let x2 = {
            let p = g.and(a, b);
            let q = g.and(!a, !b);
            g.or(p, q)
        };
        g.add_po(x1);
        g.add_po(x2);
        let before = g.num_ands();
        let r = resub(&g, 3);
        assert!(r.num_ands() < before, "{} !< {before}", r.num_ands());
        assert!(probably_equivalent(&g, &r, 4, 17));
    }

    #[test]
    fn identity_on_irredundant_circuit() {
        let mut g = Aig::new(3);
        let (a, b, c) = (g.pi_lit(0), g.pi_lit(1), g.pi_lit(2));
        let x = g.and(a, b);
        let y = g.and(x, c);
        g.add_po(y);
        let r = resub(&g, 5);
        assert_eq!(r.num_ands(), 2);
        assert!(probably_equivalent(&g, &r, 4, 18));
    }

    #[test]
    fn merges_complement_pairs() {
        let mut g = Aig::new(2);
        let (a, b) = (g.pi_lit(0), g.pi_lit(1));
        let nand = {
            let t = g.and(a, b);
            !t
        };
        // or(!a, !b) == nand(a, b): structurally distinct complement pair.
        let or_form = g.or(!a, !b);
        g.add_po(nand);
        g.add_po(or_form);
        let r = resub(&g, 7);
        assert_eq!(r.num_ands(), 1);
        assert!(probably_equivalent(&g, &r, 4, 19));
    }

    #[test]
    fn deterministic_per_seed() {
        let mut g = Aig::new(3);
        let (a, b, c) = (g.pi_lit(0), g.pi_lit(1), g.pi_lit(2));
        let x = g.maj(a, b, c);
        let y = g.xor(a, b);
        g.add_po(x);
        g.add_po(y);
        let r1 = resub(&g, 42);
        let r2 = resub(&g, 42);
        assert_eq!(r1, r2);
    }

    /// Regression for the false-merge bug: two cones differing on a single
    /// rare minterm must never be merged on a small input space (resub is
    /// exhaustive there). Random signatures missed this ~36% of the time.
    #[test]
    fn never_merges_rare_minterm_divergent_cones() {
        let n = 12;
        let mut g = Aig::new(n);
        // f = AND of all PIs' complements except PI0 (near-constant-0 cone).
        let mut f = g.pi_lit(0);
        for i in 1..n {
            let p = g.pi_lit(i);
            f = g.and(f, p);
        }
        // h = f OR rare-minterm: functionally differs from f on one input.
        let mut rare = g.pi_lit(0);
        for i in 1..n {
            let p = g.pi_lit(i);
            rare = g.and(rare, !p);
        }
        let h = g.or(f, rare);
        g.add_po(f);
        g.add_po(h);
        for seed in 0..10 {
            let r = resub(&g, seed);
            assert!(
                hoga_circuit::simulate::exhaustive_equivalent(&g, &r),
                "seed {seed} produced a non-equivalent resubstitution"
            );
        }
    }

    #[test]
    fn signature_classes_bounded_by_gate_count() {
        let mut g = Aig::new(3);
        let (a, b, c) = (g.pi_lit(0), g.pi_lit(1), g.pi_lit(2));
        let x = g.xor(a, b);
        let s = g.xor(x, c);
        g.add_po(s);
        let classes = signature_classes(&g, 0);
        assert!(classes <= g.num_ands());
        assert!(classes > 0);
    }
}
