//! Manifest corruption recovery: every way a record store can rot —
//! truncation, bit rot in the CRC or body, duplicated sample ids,
//! records sitting at the wrong path — must surface as a typed error or a
//! clean skip-and-rebuild. Never a panic, never silent acceptance.

use hoga_datasets::manifest::{read_record, SampleRecord, MANIFEST_DIR, QUARANTINE_DIR};
use hoga_datasets::openabcd::{
    build_qor_dataset_resumable, QorBuildError, QorDatasetConfig, QorSweepOptions,
};
use hoga_gen::ipgen::OPENABCD_DESIGNS;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

fn test_cfg() -> QorDatasetConfig {
    QorDatasetConfig {
        recipes_per_design: 2,
        recipe_len: 4,
        max_scaled_nodes: 500,
        ..QorDatasetConfig::tiny()
    }
}

fn first_design(cfg: &QorDatasetConfig) -> &'static str {
    OPENABCD_DESIGNS
        .iter()
        .find(|s| s.nodes / cfg.scale_divisor <= cfg.max_scaled_nodes)
        .expect("test config keeps at least one design")
        .name
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hoga-corrupt-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

fn snapshot(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut out = BTreeMap::new();
    for sub in [MANIFEST_DIR, QUARANTINE_DIR] {
        let Ok(entries) = std::fs::read_dir(dir.join(sub)) else { continue };
        for entry in entries {
            let entry = entry.expect("dir entry");
            out.insert(
                format!("{sub}/{}", entry.file_name().to_string_lossy()),
                std::fs::read(entry.path()).expect("read record"),
            );
        }
    }
    out
}

/// Builds the reference sweep in `dir` and returns its byte snapshot.
fn build_reference(dir: &Path, cfg: &QorDatasetConfig) -> BTreeMap<String, Vec<u8>> {
    let report =
        build_qor_dataset_resumable(cfg, dir, &QorSweepOptions::default()).expect("reference run");
    assert!(report.complete());
    snapshot(dir)
}

#[test]
fn truncated_final_record_is_rejected_then_rebuilt() {
    let cfg = test_cfg();
    let dir = fresh_dir("truncate");
    let reference = build_reference(&dir, &cfg);

    // Truncate the *last* record of the sweep — the shape a dying process
    // would leave behind without the atomic write, and the one a naive
    // "resume from where the files stop" scheme would mis-trust.
    let last = reference.keys().last().expect("non-empty sweep").clone();
    let path = dir.join(&last);
    let bytes = std::fs::read(&path).expect("read victim");
    std::fs::write(&path, &bytes[..bytes.len() - 10]).expect("truncate");

    // The strict parser rejects it with a typed error (no panic)...
    let text = std::fs::read_to_string(&path).expect("read truncated");
    let parsed = SampleRecord::parse(&text);
    assert!(parsed.is_err(), "truncated record must not parse: {parsed:?}");
    assert!(read_record(&path).is_none(), "read_record must treat it as absent");

    // ...and the sweep rebuilds exactly that record, byte-identically.
    let report =
        build_qor_dataset_resumable(&cfg, &dir, &QorSweepOptions::default()).expect("resume");
    assert_eq!(report.written, 1);
    assert_eq!(snapshot(&dir), reference);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bit_flipped_crc_is_rejected_then_rebuilt() {
    let cfg = test_cfg();
    let dir = fresh_dir("crcflip");
    let reference = build_reference(&dir, &cfg);

    let victim = dir.join(MANIFEST_DIR).join(SampleRecord::file_name(first_design(&cfg), 0));
    let mut bytes = std::fs::read(&victim).expect("read victim");
    // Flip one bit inside the CRC trailer's hex digits (last line is
    // `crc 0x########`, newline-terminated).
    let flip_at = bytes.len() - 2;
    bytes[flip_at] ^= 0x01;
    std::fs::write(&victim, &bytes).expect("write flipped");

    assert!(read_record(&victim).is_none(), "bad CRC must invalidate the record");
    let report =
        build_qor_dataset_resumable(&cfg, &dir, &QorSweepOptions::default()).expect("resume");
    assert_eq!(report.written, 1, "exactly the bad-CRC record is regenerated");
    assert_eq!(snapshot(&dir), reference);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bit_flipped_body_fails_the_crc_then_rebuilds() {
    let cfg = test_cfg();
    let dir = fresh_dir("bodyflip");
    let reference = build_reference(&dir, &cfg);

    let victim = dir.join(MANIFEST_DIR).join(SampleRecord::file_name(first_design(&cfg), 1));
    let mut bytes = std::fs::read(&victim).expect("read victim");
    // Flip a bit in the middle of the body: the field may still parse, but
    // the CRC must catch it first.
    let flip_at = bytes.len() / 2;
    bytes[flip_at] ^= 0x10;
    std::fs::write(&victim, &bytes).expect("write flipped");

    assert!(read_record(&victim).is_none());
    let report =
        build_qor_dataset_resumable(&cfg, &dir, &QorSweepOptions::default()).expect("resume");
    assert_eq!(report.written, 1);
    assert_eq!(snapshot(&dir), reference);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn duplicate_sample_id_is_a_typed_error() {
    let cfg = test_cfg();
    let dir = fresh_dir("duplicate");
    build_reference(&dir, &cfg);

    // The same valid record lands in BOTH manifest/ and quarantine/ — an
    // operator merging output directories. The sweep must refuse rather
    // than silently prefer either copy.
    let design = first_design(&cfg);
    let file = SampleRecord::file_name(design, 0);
    std::fs::copy(dir.join(MANIFEST_DIR).join(&file), dir.join(QUARANTINE_DIR).join(&file))
        .expect("duplicate the record");

    match build_qor_dataset_resumable(&cfg, &dir, &QorSweepOptions::default()) {
        Err(QorBuildError::DuplicateSample { design: d, recipe_index }) => {
            assert_eq!(d, design);
            assert_eq!(recipe_index, 0);
            let rendered = QorBuildError::DuplicateSample { design: d, recipe_index }.to_string();
            assert!(
                rendered.contains("manifest/") && rendered.contains("quarantine/"),
                "{rendered}"
            );
        }
        other => panic!("expected DuplicateSample, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn record_at_the_wrong_path_is_rebuilt_not_trusted() {
    let cfg = test_cfg();
    let dir = fresh_dir("mismatch");
    let reference = build_reference(&dir, &cfg);

    // Overwrite recipe 1's record with recipe 0's bytes: valid CRC, wrong
    // identity. Trusting it would silently drop a sample from the sweep.
    let design = first_design(&cfg);
    let source = dir.join(MANIFEST_DIR).join(SampleRecord::file_name(design, 0));
    let target = dir.join(MANIFEST_DIR).join(SampleRecord::file_name(design, 1));
    std::fs::copy(&source, &target).expect("misplace the record");

    let report =
        build_qor_dataset_resumable(&cfg, &dir, &QorSweepOptions::default()).expect("resume");
    assert_eq!(report.written, 1, "the misplaced record must be regenerated");
    assert_eq!(snapshot(&dir), reference, "rebuild restores the correct record bytes");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn parse_never_panics_on_systematic_mutations() {
    let cfg = test_cfg();
    let dir = fresh_dir("fuzzish");
    let reference = build_reference(&dir, &cfg);
    let (_, bytes) = reference.iter().next().expect("non-empty sweep");
    let text = String::from_utf8(bytes.clone()).expect("records are UTF-8");

    // Every truncation point...
    for end in 0..=text.len() {
        if text.is_char_boundary(end) {
            let _ = SampleRecord::parse(&text[..end]);
        }
    }
    // ...and a sweep of single-byte corruptions (kept ASCII so the string
    // stays valid UTF-8; read_record would reject non-UTF-8 upstream).
    let mut mutated = text.clone().into_bytes();
    for i in 0..mutated.len() {
        let original = mutated[i];
        mutated[i] = b'~';
        if let Ok(s) = std::str::from_utf8(&mutated) {
            let _ = SampleRecord::parse(s);
        }
        mutated[i] = original;
    }
    std::fs::remove_dir_all(&dir).ok();
}
