//! End-to-end tests of the resumable QoR sweep: kill/resume determinism,
//! miscompile quarantine, and corrupt-record regeneration.

use hoga_datasets::manifest::{
    read_record, SampleRecord, SampleStatus, MANIFEST_DIR, QUARANTINE_DIR,
};
use hoga_datasets::openabcd::{
    build_qor_dataset_resumable, QorBuildError, QorDatasetConfig, QorFault, QorSweepOptions,
};
use hoga_gen::ipgen::OPENABCD_DESIGNS;
use hoga_synth::{GuardConfig, PassBudget, SynthFault};
use std::collections::BTreeMap;
use std::path::Path;

/// A sweep small enough for CI: the two smallest surviving designs, two
/// recipes each.
fn test_cfg() -> QorDatasetConfig {
    QorDatasetConfig {
        recipes_per_design: 2,
        recipe_len: 4,
        max_scaled_nodes: 500,
        ..QorDatasetConfig::tiny()
    }
}

/// Name of the first design the sweep visits under `cfg` (Table-1 order).
fn first_design(cfg: &QorDatasetConfig) -> &'static str {
    OPENABCD_DESIGNS
        .iter()
        .find(|s| s.nodes / cfg.scale_divisor <= cfg.max_scaled_nodes)
        .expect("test config keeps at least one design")
        .name
}

fn fresh_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("hoga-resume-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

/// Every record file under `dir` (both subdirectories), relative path →
/// raw bytes.
fn snapshot(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut out = BTreeMap::new();
    for sub in [MANIFEST_DIR, QUARANTINE_DIR] {
        let sub_dir = dir.join(sub);
        let Ok(entries) = std::fs::read_dir(&sub_dir) else { continue };
        for entry in entries {
            let entry = entry.expect("dir entry");
            let bytes = std::fs::read(entry.path()).expect("read record");
            out.insert(format!("{sub}/{}", entry.file_name().to_string_lossy()), bytes);
        }
    }
    out
}

#[test]
fn killed_and_resumed_sweep_is_byte_identical_to_uninterrupted() {
    let cfg = test_cfg();
    let opts = QorSweepOptions::default();

    // Reference: one uninterrupted run.
    let full_dir = fresh_dir("full");
    let full = build_qor_dataset_resumable(&cfg, &full_dir, &opts).expect("full run");
    assert!(full.complete(), "uninterrupted run must complete: {full:?}");
    assert!(full.total >= 4, "test sweep too small to be meaningful: {full:?}");
    assert_eq!(full.written, full.total);
    assert_eq!(full.quarantined, 0);

    // Killed mid-sweep after 2 samples, then resumed.
    let resumed_dir = fresh_dir("resumed");
    let killed = build_qor_dataset_resumable(
        &cfg,
        &resumed_dir,
        &QorSweepOptions { stop_after: Some(2), ..QorSweepOptions::default() },
    )
    .expect("interrupted run");
    assert!(killed.interrupted);
    assert_eq!(killed.written, 2);
    let resumed = build_qor_dataset_resumable(&cfg, &resumed_dir, &opts).expect("resume");
    assert!(resumed.complete(), "resume must finish the sweep: {resumed:?}");
    assert_eq!(resumed.skipped, 2, "resume must skip the records already on disk");
    assert_eq!(resumed.written, full.total - 2);

    // The two manifests are byte-identical, file for file.
    let a = snapshot(&full_dir);
    let b = snapshot(&resumed_dir);
    assert_eq!(a.len(), full.total);
    assert_eq!(a, b, "resumed manifest differs from uninterrupted manifest");

    // A third invocation is a no-op (idempotent resume).
    let noop = build_qor_dataset_resumable(&cfg, &resumed_dir, &opts).expect("no-op");
    assert_eq!(noop.written, 0);
    assert_eq!(noop.skipped, noop.total);
    assert_eq!(snapshot(&resumed_dir), b, "no-op resume must not rewrite records");

    std::fs::remove_dir_all(&full_dir).ok();
    std::fs::remove_dir_all(&resumed_dir).ok();
}

#[test]
fn injected_miscompile_is_quarantined_and_sweep_completes() {
    let cfg = test_cfg();
    let victim = first_design(&cfg);
    let dir = fresh_dir("quarantine");
    let opts = QorSweepOptions {
        stop_after: None,
        faults: vec![QorFault {
            design: victim.to_string(),
            recipe_index: 0,
            step: 1,
            fault: SynthFault::Miscompile,
        }],
    };
    let report = build_qor_dataset_resumable(&cfg, &dir, &opts).expect("sweep");
    // Graceful degradation: the whole sweep still completes.
    assert!(report.complete(), "miscompile must not abort the sweep: {report:?}");
    assert_eq!(report.quarantined, 1);

    // The poisoned sample is in quarantine with a typed incident, and NOT
    // in the clean manifest.
    let file = SampleRecord::file_name(victim, 0);
    assert!(!dir.join(MANIFEST_DIR).join(&file).exists(), "poisoned sample leaked into manifest");
    let record = read_record(&dir.join(QUARANTINE_DIR).join(&file)).expect("quarantined record");
    assert_eq!(record.status, SampleStatus::Quarantined);
    assert_eq!(record.design, victim);
    assert!(
        record.incidents.iter().any(|i| i.starts_with("step 1") && i.contains("refuted")),
        "incident must identify the refuted step: {:?}",
        record.incidents
    );

    // Unaffected samples of the same design stay clean.
    let sibling = SampleRecord::file_name(victim, 1);
    let clean = read_record(&dir.join(MANIFEST_DIR).join(&sibling)).expect("clean sibling record");
    assert_eq!(clean.status, SampleStatus::Ok);
    assert!(clean.incidents.is_empty());

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_record_is_regenerated_on_resume() {
    let cfg = test_cfg();
    let dir = fresh_dir("corrupt");
    let opts = QorSweepOptions::default();
    build_qor_dataset_resumable(&cfg, &dir, &opts).expect("initial run");
    let reference = snapshot(&dir);

    // Truncate one record (as a crash between write and rename never
    // could, but a disk error or manual edit can).
    let victim = dir.join(MANIFEST_DIR).join(SampleRecord::file_name(first_design(&cfg), 0));
    let bytes = std::fs::read(&victim).expect("read");
    std::fs::write(&victim, &bytes[..bytes.len() / 2]).expect("truncate");

    let report = build_qor_dataset_resumable(&cfg, &dir, &opts).expect("resume");
    assert_eq!(report.written, 1, "exactly the corrupt record is regenerated");
    assert_eq!(report.skipped, report.total - 1);
    assert_eq!(snapshot(&dir), reference, "regenerated record must match the original bytes");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn stall_fault_times_out_deterministically_and_quarantines() {
    let cfg = test_cfg();
    let victim = first_design(&cfg);
    let dir = fresh_dir("stall");
    let opts = QorSweepOptions {
        stop_after: None,
        faults: vec![QorFault {
            design: victim.to_string(),
            recipe_index: 1,
            step: 0,
            fault: SynthFault::Stall,
        }],
    };
    let report = build_qor_dataset_resumable(&cfg, &dir, &opts).expect("sweep");
    assert!(report.complete());
    assert_eq!(report.quarantined, 1);
    let file = SampleRecord::file_name(victim, 1);
    let record = read_record(&dir.join(QUARANTINE_DIR).join(&file)).expect("record");
    assert!(
        record.incidents.iter().any(|i| i.contains("budget exhausted")),
        "stall must surface as a budget incident: {:?}",
        record.incidents
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn invalid_guard_and_out_of_range_fault_are_typed_errors() {
    let dir = fresh_dir("errors");
    let mut cfg = test_cfg();
    cfg.guard = GuardConfig { sim_rounds: 0, ..GuardConfig::default() };
    match build_qor_dataset_resumable(&cfg, &dir, &QorSweepOptions::default()) {
        Err(QorBuildError::Synth(_)) => {}
        other => panic!("expected typed config error, got {other:?}"),
    }

    let cfg = test_cfg();
    let opts = QorSweepOptions {
        stop_after: None,
        faults: vec![QorFault {
            design: first_design(&cfg).to_string(),
            recipe_index: 0,
            step: cfg.recipe_len + 5,
            fault: SynthFault::Miscompile,
        }],
    };
    match build_qor_dataset_resumable(&cfg, &dir, &opts) {
        Err(QorBuildError::Synth(_)) => {}
        other => panic!("expected typed fault-range error, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn work_budgets_quarantine_instead_of_hanging() {
    // A one-unit work budget times out every pass: all samples complete,
    // all are quarantined, none hang.
    let mut cfg = test_cfg();
    cfg.guard = GuardConfig { budget: PassBudget::with_max_work(1), ..GuardConfig::default() };
    let dir = fresh_dir("budget");
    let report =
        build_qor_dataset_resumable(&cfg, &dir, &QorSweepOptions::default()).expect("sweep");
    assert!(report.complete());
    assert_eq!(report.quarantined, report.total, "every pass must trip the 1-unit budget");
    std::fs::remove_dir_all(&dir).ok();
}
