//! Per-sample manifest records for resumable dataset generation.
//!
//! [`crate::openabcd::build_qor_dataset_resumable`] writes one record per
//! `(design, recipe)` sample. Records are small text files with a trailing
//! CRC-32, written atomically (temp-file + rename via
//! [`crate::io::write_atomic`]), so a killed sweep leaves only complete,
//! verifiable records and a resumed sweep can trust what it finds.
//!
//! Records carry **no timestamps, hostnames, or other run-local state**:
//! the byte content is a pure function of the dataset configuration, so an
//! interrupted-then-resumed sweep produces a byte-identical manifest to an
//! uninterrupted one — the property the resume tests assert.
//!
//! Format (line-oriented, `key value`, order fixed):
//!
//! ```text
//! hoga-qor-record v1
//! design <name>
//! recipe_index <r>
//! seed <u64>
//! recipe <recipe string>
//! status ok|quarantined
//! initial_ands <n>
//! final_ands <n>
//! initial_depth <n>
//! final_depth <n>
//! result_hash 0x<16 hex digits>
//! lint <finding>          (zero or more)
//! incident <incident>     (zero or more)
//! crc 0x<8 hex digits>
//! ```
//!
//! `result_hash` fingerprints the optimized circuit (FNV-1a over its
//! serialized form); `crc` covers every byte above it. Quarantined
//! records (guard incidents) live in a separate `quarantine/` directory
//! so downstream loaders never mistake them for clean samples.

use crate::io::{crc32, write_atomic};
use std::error::Error;
use std::fmt;
use std::path::{Path, PathBuf};

/// Name of the clean-record subdirectory under a dataset output directory.
pub const MANIFEST_DIR: &str = "manifest";
/// Name of the quarantine subdirectory for samples with guard incidents.
pub const QUARANTINE_DIR: &str = "quarantine";

/// Whether a sample is usable training data or quarantined evidence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SampleStatus {
    /// Every synthesis pass was applied and verified; the labels are clean.
    Ok,
    /// At least one pass was refuted or exceeded its budget; the sample is
    /// kept as evidence but excluded from the dataset.
    Quarantined,
}

impl fmt::Display for SampleStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SampleStatus::Ok => write!(f, "ok"),
            SampleStatus::Quarantined => write!(f, "quarantined"),
        }
    }
}

/// One `(design, recipe)` sample of the QoR sweep, as persisted on disk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SampleRecord {
    /// Table-1 design name.
    pub design: String,
    /// 0-based recipe index within the design.
    pub recipe_index: usize,
    /// The seed `random_recipe` was called with for this sample.
    pub seed: u64,
    /// The recipe, pretty-printed (`"b; rw; rf -z"`).
    pub recipe: String,
    /// Clean or quarantined.
    pub status: SampleStatus,
    /// Gate count before synthesis.
    pub initial_ands: usize,
    /// Gate count after the recipe.
    pub final_ands: usize,
    /// AND-level depth before synthesis.
    pub initial_depth: u32,
    /// AND-level depth after the recipe.
    pub final_depth: u32,
    /// FNV-1a fingerprint of the optimized circuit's serialized bytes.
    pub result_hash: u64,
    /// `recipe::lint` findings for this sample's recipe (display form).
    pub lints: Vec<String>,
    /// Guard incidents (display form); non-empty iff quarantined.
    pub incidents: Vec<String>,
}

/// Error from [`SampleRecord::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestError(String);

impl fmt::Display for ManifestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "manifest record error: {}", self.0)
    }
}

impl Error for ManifestError {}

fn err(msg: impl Into<String>) -> ManifestError {
    ManifestError(msg.into())
}

/// FNV-1a over arbitrary bytes — the `result_hash` fingerprint.
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

impl SampleRecord {
    /// Canonical file name for this record: `<design>-r<index>.rec` with a
    /// zero-padded index so lexicographic and sweep order agree.
    pub fn file_name(design: &str, recipe_index: usize) -> String {
        format!("{design}-r{recipe_index:04}.rec")
    }

    /// Serializes the record, appending the CRC-32 trailer.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        out.push_str("hoga-qor-record v1\n");
        out.push_str(&format!("design {}\n", self.design));
        out.push_str(&format!("recipe_index {}\n", self.recipe_index));
        out.push_str(&format!("seed {}\n", self.seed));
        out.push_str(&format!("recipe {}\n", self.recipe));
        out.push_str(&format!("status {}\n", self.status));
        out.push_str(&format!("initial_ands {}\n", self.initial_ands));
        out.push_str(&format!("final_ands {}\n", self.final_ands));
        out.push_str(&format!("initial_depth {}\n", self.initial_depth));
        out.push_str(&format!("final_depth {}\n", self.final_depth));
        out.push_str(&format!("result_hash {:#018x}\n", self.result_hash));
        for l in &self.lints {
            out.push_str(&format!("lint {l}\n"));
        }
        for i in &self.incidents {
            out.push_str(&format!("incident {i}\n"));
        }
        out.push_str(&format!("crc {:#010x}\n", crc32(out.as_bytes())));
        out
    }

    /// Parses and validates a record produced by [`SampleRecord::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`ManifestError`] on CRC mismatch, missing or out-of-order
    /// fields, or malformed values — a truncated or hand-edited record is
    /// rejected rather than trusted.
    pub fn parse(text: &str) -> Result<Self, ManifestError> {
        // Split off and verify the CRC trailer first.
        let body_end = text
            .trim_end_matches('\n')
            .rfind('\n')
            .map(|i| i + 1)
            .ok_or_else(|| err("too short"))?;
        let (body, trailer) = text.split_at(body_end);
        // Strict trailer shape (`crc 0x########\n`, nothing else): lenient
        // whitespace handling would let corrupted terminators slip past.
        let stored = trailer
            .strip_suffix('\n')
            .and_then(|t| t.strip_prefix("crc 0x"))
            .filter(|h| h.len() == 8)
            .and_then(|h| u32::from_str_radix(h, 16).ok())
            .ok_or_else(|| err("missing or malformed crc trailer"))?;
        let computed = crc32(body.as_bytes());
        if stored != computed {
            return Err(err(format!(
                "checksum mismatch: stored {stored:#010x}, computed {computed:#010x} \
                 (record corrupt or truncated)"
            )));
        }
        let mut lines = body.lines();
        if lines.next() != Some("hoga-qor-record v1") {
            return Err(err("bad header line"));
        }
        let mut field = |key: &str| -> Result<String, ManifestError> {
            let line = lines.next().ok_or_else(|| err(format!("missing field `{key}`")))?;
            line.strip_prefix(key)
                .and_then(|rest| rest.strip_prefix(' '))
                .map(str::to_string)
                .ok_or_else(|| err(format!("expected field `{key}`, found `{line}`")))
        };
        let design = field("design")?;
        let recipe_index = field("recipe_index")?.parse().map_err(|_| err("bad recipe_index"))?;
        let seed = field("seed")?.parse().map_err(|_| err("bad seed"))?;
        let recipe = field("recipe")?;
        let status = match field("status")?.as_str() {
            "ok" => SampleStatus::Ok,
            "quarantined" => SampleStatus::Quarantined,
            other => return Err(err(format!("unknown status `{other}`"))),
        };
        let initial_ands = field("initial_ands")?.parse().map_err(|_| err("bad initial_ands"))?;
        let final_ands = field("final_ands")?.parse().map_err(|_| err("bad final_ands"))?;
        let initial_depth =
            field("initial_depth")?.parse().map_err(|_| err("bad initial_depth"))?;
        let final_depth = field("final_depth")?.parse().map_err(|_| err("bad final_depth"))?;
        let result_hash = field("result_hash")?
            .strip_prefix("0x")
            .and_then(|h| u64::from_str_radix(h, 16).ok())
            .ok_or_else(|| err("bad result_hash"))?;
        let mut lints = Vec::new();
        let mut incidents = Vec::new();
        for line in lines {
            if let Some(l) = line.strip_prefix("lint ") {
                if !incidents.is_empty() {
                    return Err(err("lint line after incident lines"));
                }
                lints.push(l.to_string());
            } else if let Some(i) = line.strip_prefix("incident ") {
                incidents.push(i.to_string());
            } else {
                return Err(err(format!("unexpected trailing line `{line}`")));
            }
        }
        Ok(Self {
            design,
            recipe_index,
            seed,
            recipe,
            status,
            initial_ands,
            final_ands,
            initial_depth,
            final_depth,
            result_hash,
            lints,
            incidents,
        })
    }
}

/// Atomically writes `record` into `dir` under its canonical file name and
/// returns the path.
///
/// # Errors
///
/// Propagates filesystem errors from [`write_atomic`].
pub(crate) fn write_record(dir: &Path, record: &SampleRecord) -> std::io::Result<PathBuf> {
    let path = dir.join(SampleRecord::file_name(&record.design, record.recipe_index));
    write_atomic(&path, record.encode().as_bytes())?;
    Ok(path)
}

/// Reads and validates the record at `path`; `None` if the file is absent
/// or fails validation (a resumed sweep regenerates such samples).
pub fn read_record(path: &Path) -> Option<SampleRecord> {
    let text = std::fs::read_to_string(path).ok()?;
    SampleRecord::parse(&text).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SampleRecord {
        SampleRecord {
            design: "spi".to_string(),
            recipe_index: 7,
            seed: 0xABC0_1234,
            recipe: "b; rw -z; rf; rs".to_string(),
            status: SampleStatus::Ok,
            initial_ands: 420,
            final_ands: 371,
            initial_depth: 19,
            final_depth: 17,
            result_hash: 0xDEAD_BEEF_CAFE_F00D,
            lints: vec!["3: redundant consecutive `balance` (idempotent)".to_string()],
            incidents: Vec::new(),
        }
    }

    #[test]
    fn roundtrip_preserves_every_field() {
        let r = sample();
        let back = SampleRecord::parse(&r.encode()).expect("roundtrip");
        assert_eq!(r, back);
    }

    #[test]
    fn quarantined_roundtrip_with_incidents() {
        let mut r = sample();
        r.status = SampleStatus::Quarantined;
        r.incidents = vec!["step 2 (rf): refuted by random simulation (2 rounds)".to_string()];
        let back = SampleRecord::parse(&r.encode()).expect("roundtrip");
        assert_eq!(back.status, SampleStatus::Quarantined);
        assert_eq!(back.incidents.len(), 1);
    }

    #[test]
    fn encoding_is_deterministic() {
        // Identical records encode to identical bytes — together with the
        // fixed field order this is what makes resumed sweeps byte-stable.
        let r = sample();
        assert_eq!(r.encode(), r.clone().encode());
    }

    #[test]
    fn parse_rejects_any_single_byte_flip() {
        let bytes = sample().encode().into_bytes();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x01;
            if let Ok(text) = String::from_utf8(bad) {
                assert!(SampleRecord::parse(&text).is_err(), "flip at byte {i} accepted: {text}");
            }
        }
    }

    #[test]
    fn parse_rejects_truncation() {
        let text = sample().encode();
        for cut in [0, 1, 19, text.len() / 2, text.len() - 2] {
            assert!(SampleRecord::parse(&text[..cut]).is_err(), "cut at {cut} accepted");
        }
    }

    #[test]
    fn file_name_is_zero_padded_for_lexicographic_order() {
        assert_eq!(SampleRecord::file_name("spi", 3), "spi-r0003.rec");
        assert!(SampleRecord::file_name("spi", 9) < SampleRecord::file_name("spi", 10));
    }

    #[test]
    fn atomic_write_and_read_roundtrip() {
        let dir = std::env::temp_dir().join(format!("hoga-manifest-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let r = sample();
        let path = write_record(&dir, &r).expect("write");
        assert!(path.ends_with("spi-r0007.rec"));
        assert_eq!(read_record(&path), Some(r));
        // Corruption is detected, not trusted.
        std::fs::write(&path, b"hoga-qor-record v1\ngarbage\n").expect("overwrite");
        assert_eq!(read_record(&path), None);
        std::fs::remove_dir_all(&dir).ok();
    }
}
