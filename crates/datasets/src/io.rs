//! Compact binary serialization for generated artifacts.
//!
//! Dataset generation (synthesis labels in particular) is the slowest part
//! of the pipeline, so the experiment drivers cache what they build. The
//! codec here is a small, versioned, explicit binary format built on
//! [`bytes`] — no external format crate needed.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use hoga_circuit::{Aig, Lit};
use hoga_tensor::Matrix;
use std::error::Error;
use std::fmt;

const MAGIC: u32 = 0x484F_4741; // "HOGA"
const VERSION: u16 = 1;

/// Error returned when decoding malformed bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError(String);

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "decode error: {}", self.0)
    }
}

impl Error for DecodeError {}

fn err(msg: impl Into<String>) -> DecodeError {
    DecodeError(msg.into())
}

fn need(buf: &impl Buf, n: usize, what: &str) -> Result<(), DecodeError> {
    if buf.remaining() < n {
        Err(err(format!("truncated input reading {what}")))
    } else {
        Ok(())
    }
}

/// Serializes an AIG.
pub fn encode_aig(aig: &Aig) -> Bytes {
    let mut out = BytesMut::with_capacity(16 + aig.num_nodes() * 8);
    out.put_u32(MAGIC);
    out.put_u16(VERSION);
    out.put_u8(b'A');
    out.put_u64(aig.num_pis() as u64);
    out.put_u64(aig.num_ands() as u64);
    for (_, a, b) in aig.and_gates() {
        out.put_u32(a.raw());
        out.put_u32(b.raw());
    }
    out.put_u64(aig.num_pos() as u64);
    for po in aig.pos() {
        out.put_u32(po.raw());
    }
    out.freeze()
}

/// Deserializes an AIG produced by [`encode_aig`].
///
/// # Errors
///
/// Returns [`DecodeError`] on truncation, bad magic, or invalid structure.
pub fn decode_aig(mut buf: impl Buf) -> Result<Aig, DecodeError> {
    need(&buf, 7, "header")?;
    if buf.get_u32() != MAGIC {
        return Err(err("bad magic"));
    }
    if buf.get_u16() != VERSION {
        return Err(err("unsupported version"));
    }
    if buf.get_u8() != b'A' {
        return Err(err("not an AIG record"));
    }
    need(&buf, 16, "counts")?;
    let num_pis = buf.get_u64() as usize;
    let num_ands = buf.get_u64() as usize;
    let mut aig = Aig::new(num_pis);
    need(&buf, num_ands * 8, "gates")?;
    for i in 0..num_ands {
        let a = Lit::from_raw(buf.get_u32());
        let b = Lit::from_raw(buf.get_u32());
        let expected_node = (1 + num_pis + i) as u32;
        if a.node() >= expected_node || b.node() >= expected_node {
            return Err(err(format!("gate {i} has forward fanin")));
        }
        let lit = aig.and(a, b);
        // Strash may deduplicate, which would desynchronize literal ids, so
        // encoded AIGs must already be strash-canonical (ours are, by
        // construction). Detect rather than corrupt:
        if lit.node() != expected_node {
            return Err(err(format!("gate {i} deduplicated on decode; input not canonical")));
        }
    }
    need(&buf, 8, "po count")?;
    let num_pos = buf.get_u64() as usize;
    need(&buf, num_pos * 4, "pos")?;
    for _ in 0..num_pos {
        let po = Lit::from_raw(buf.get_u32());
        if po.node() as usize >= aig.num_nodes() {
            return Err(err("PO out of range"));
        }
        aig.add_po(po);
    }
    Ok(aig)
}

/// Serializes a matrix (shape + little-endian f32 payload).
pub fn encode_matrix(m: &Matrix) -> Bytes {
    let mut out = BytesMut::with_capacity(16 + m.len() * 4);
    out.put_u32(MAGIC);
    out.put_u16(VERSION);
    out.put_u8(b'M');
    out.put_u64(m.rows() as u64);
    out.put_u64(m.cols() as u64);
    for &v in m.as_slice() {
        out.put_f32(v);
    }
    out.freeze()
}

/// Deserializes a matrix produced by [`encode_matrix`].
///
/// # Errors
///
/// Returns [`DecodeError`] on truncation or bad headers.
pub fn decode_matrix(mut buf: impl Buf) -> Result<Matrix, DecodeError> {
    need(&buf, 7, "header")?;
    if buf.get_u32() != MAGIC {
        return Err(err("bad magic"));
    }
    if buf.get_u16() != VERSION {
        return Err(err("unsupported version"));
    }
    if buf.get_u8() != b'M' {
        return Err(err("not a matrix record"));
    }
    need(&buf, 16, "shape")?;
    let rows = buf.get_u64() as usize;
    let cols = buf.get_u64() as usize;
    let n = rows
        .checked_mul(cols)
        .ok_or_else(|| err("shape overflow"))?;
    need(&buf, n * 4, "payload")?;
    let data: Vec<f32> = (0..n).map(|_| buf.get_f32()).collect();
    Matrix::try_from_vec(rows, cols, data).map_err(|e| err(e.to_string()))
}

/// Serializes a trained parameter set (names + values) — a model
/// checkpoint. Restore with [`decode_params`].
pub fn encode_params(params: &hoga_autograd::ParamSet) -> Bytes {
    let mut out = BytesMut::new();
    out.put_u32(MAGIC);
    out.put_u16(VERSION);
    out.put_u8(b'P');
    out.put_u64(params.len() as u64);
    for (_, name, value) in params.iter() {
        out.put_u32(name.len() as u32);
        out.put_slice(name.as_bytes());
        let m = encode_matrix(value);
        out.put_u32(m.len() as u32);
        out.put_slice(&m);
    }
    out.freeze()
}

/// Deserializes a checkpoint produced by [`encode_params`].
///
/// Parameter ids are assigned in the stored order, so a checkpoint is
/// compatible with any model constructed the same way (same architecture
/// and registration order).
///
/// # Errors
///
/// Returns [`DecodeError`] on truncation or malformed records.
pub fn decode_params(mut buf: impl Buf) -> Result<hoga_autograd::ParamSet, DecodeError> {
    need(&buf, 7, "header")?;
    if buf.get_u32() != MAGIC {
        return Err(err("bad magic"));
    }
    if buf.get_u16() != VERSION {
        return Err(err("unsupported version"));
    }
    if buf.get_u8() != b'P' {
        return Err(err("not a checkpoint record"));
    }
    need(&buf, 8, "count")?;
    let count = buf.get_u64() as usize;
    let mut params = hoga_autograd::ParamSet::new();
    for k in 0..count {
        need(&buf, 4, "name length")?;
        let nlen = buf.get_u32() as usize;
        need(&buf, nlen, "name")?;
        let mut name_bytes = vec![0u8; nlen];
        buf.copy_to_slice(&mut name_bytes);
        let name = String::from_utf8(name_bytes).map_err(|_| err("name not UTF-8"))?;
        need(&buf, 4, "matrix length")?;
        let mlen = buf.get_u32() as usize;
        need(&buf, mlen, "matrix payload")?;
        let mut payload = vec![0u8; mlen];
        buf.copy_to_slice(&mut payload);
        let value = decode_matrix(&payload[..])
            .map_err(|e| err(format!("param {k} (`{name}`): {e}")))?;
        params.add(name, value);
    }
    Ok(params)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_aig() -> Aig {
        let mut g = Aig::new(3);
        let (a, b, c) = (g.pi_lit(0), g.pi_lit(1), g.pi_lit(2));
        let x = g.xor(a, b);
        let y = g.maj(a, b, c);
        g.add_po(x);
        g.add_po(!y);
        g
    }

    #[test]
    fn aig_roundtrip() {
        let g = sample_aig();
        let bytes = encode_aig(&g);
        let h = decode_aig(bytes).expect("decode");
        assert_eq!(g, h);
        assert!(hoga_circuit::simulate::probably_equivalent(&g, &h, 2, 0));
    }

    #[test]
    fn aig_decode_rejects_truncation() {
        let g = sample_aig();
        let bytes = encode_aig(&g);
        for cut in [0, 3, 8, bytes.len() - 1] {
            let sliced = bytes.slice(0..cut);
            assert!(decode_aig(sliced).is_err(), "cut at {cut} accepted");
        }
    }

    #[test]
    fn aig_decode_rejects_bad_magic() {
        let g = sample_aig();
        let mut raw = encode_aig(&g).to_vec();
        raw[0] ^= 0xFF;
        assert!(decode_aig(&raw[..]).is_err());
    }

    #[test]
    fn matrix_roundtrip() {
        let m = Matrix::from_fn(5, 3, |r, c| (r as f32 - c as f32) * 0.25);
        let bytes = encode_matrix(&m);
        let n = decode_matrix(bytes).expect("decode");
        assert_eq!(m, n);
    }

    #[test]
    fn matrix_decode_rejects_garbage() {
        assert!(decode_matrix(&b"nonsense"[..]).is_err());
        assert!(decode_matrix(&[][..]).is_err());
    }

    #[test]
    fn empty_matrix_roundtrip() {
        let m = Matrix::zeros(0, 4);
        let n = decode_matrix(encode_matrix(&m)).expect("decode");
        assert_eq!(m, n);
    }

    #[test]
    fn checkpoint_roundtrip_preserves_names_and_values() {
        let mut p = hoga_autograd::ParamSet::new();
        p.add("layer0.w", Matrix::from_fn(3, 4, |r, c| (r * 4 + c) as f32));
        p.add("layer0.b", Matrix::zeros(1, 4));
        p.add("readout.alpha", Matrix::full(8, 1, -0.25));
        let bytes = encode_params(&p);
        let q = decode_params(bytes).expect("decode");
        assert_eq!(q.len(), 3);
        for ((_, n1, v1), (_, n2, v2)) in p.iter().zip(q.iter()) {
            assert_eq!(n1, n2);
            assert_eq!(v1, v2);
        }
    }

    #[test]
    fn checkpoint_restores_a_trained_hoga_model() {
        use hoga_core::model::{HogaConfig, HogaModel};
        let cfg = HogaConfig::new(5, 8, 3);
        let model = HogaModel::new(&cfg, 9);
        let bytes = encode_params(&model.params);
        let restored = decode_params(bytes).expect("decode");
        // Rebuild a model with the same architecture and swap parameters in.
        let mut clone = HogaModel::new(&cfg, 123); // different init
        assert_eq!(clone.params.len(), restored.len());
        clone.params = restored;
        // Identical outputs to the original.
        let stack = hoga_tensor::Init::SmallUniform.matrix(2 * 4, 5, 1);
        let a = model.attention_scores(&stack, 2);
        let b = clone.attention_scores(&stack, 2);
        assert_eq!(a, b);
    }

    #[test]
    fn checkpoint_rejects_corruption() {
        let mut p = hoga_autograd::ParamSet::new();
        p.add("w", Matrix::identity(2));
        let bytes = encode_params(&p).to_vec();
        assert!(decode_params(&bytes[..bytes.len() - 3]).is_err());
        let mut bad = bytes.clone();
        bad[6] = b'X';
        assert!(decode_params(&bad[..]).is_err());
    }
}
