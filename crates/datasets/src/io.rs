//! Compact binary serialization for generated artifacts.
//!
//! Dataset generation (synthesis labels in particular) is the slowest part
//! of the pipeline, so the experiment drivers cache what they build. The
//! codec here is a small, versioned, explicit binary format built on
//! [`bytes`] — no external format crate needed.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use hoga_autograd::ParamSet;
use hoga_circuit::{Aig, Lit};
use hoga_tensor::Matrix;
use std::error::Error;
use std::fmt;
use std::fs::File;
use std::io::Write;
use std::path::Path;

const MAGIC: u32 = 0x484F_4741; // "HOGA"
const VERSION: u16 = 1;

/// Upper bound on any single decoded count (PIs, gates, outputs). Decoding
/// rejects anything larger *before* allocating, so corrupt or adversarial
/// headers cannot trigger multi-gigabyte allocations (which abort rather
/// than unwind).
const MAX_DECODE_ITEMS: usize = 1 << 26;

/// Error returned when decoding malformed bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError(String);

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "decode error: {}", self.0)
    }
}

impl Error for DecodeError {}

fn err(msg: impl Into<String>) -> DecodeError {
    DecodeError(msg.into())
}

fn need(buf: &impl Buf, n: usize, what: &str) -> Result<(), DecodeError> {
    if buf.remaining() < n {
        Err(err(format!("truncated input reading {what}")))
    } else {
        Ok(())
    }
}

/// Reads a `u64` length/count field as a `usize` via a checked conversion
/// (the caller has already `need`-checked that 8 bytes are available).
fn get_len(buf: &mut impl Buf, what: &str) -> Result<usize, DecodeError> {
    usize::try_from(buf.get_u64()).map_err(|_| err(format!("{what} does not fit in usize")))
}

/// Serializes an AIG.
pub fn encode_aig(aig: &Aig) -> Bytes {
    let mut out = BytesMut::with_capacity(16 + aig.num_nodes() * 8);
    out.put_u32(MAGIC);
    out.put_u16(VERSION);
    out.put_u8(b'A');
    out.put_u64(aig.num_pis() as u64);
    out.put_u64(aig.num_ands() as u64);
    for (_, a, b) in aig.and_gates() {
        out.put_u32(a.raw());
        out.put_u32(b.raw());
    }
    out.put_u64(aig.num_pos() as u64);
    for po in aig.pos() {
        out.put_u32(po.raw());
    }
    out.freeze()
}

/// Stable structural fingerprint of an AIG: FNV-1a over the canonical
/// [`encode_aig`] byte stream. Two AIGs hash equal exactly when their
/// encodings are byte-identical (same PI count, same strash-canonical gate
/// list, same POs) — the serving layer keys its hop-feature cache on this,
/// so the value must stay stable across processes and restarts.
pub fn structural_hash(aig: &Aig) -> u64 {
    crate::manifest::fnv1a64(&encode_aig(aig))
}

/// Deserializes an AIG produced by [`encode_aig`].
///
/// # Errors
///
/// Returns [`DecodeError`] on truncation, bad magic, or invalid structure.
pub fn decode_aig(mut buf: impl Buf) -> Result<Aig, DecodeError> {
    need(&buf, 7, "header")?;
    if buf.get_u32() != MAGIC {
        return Err(err("bad magic"));
    }
    if buf.get_u16() != VERSION {
        return Err(err("unsupported version"));
    }
    if buf.get_u8() != b'A' {
        return Err(err("not an AIG record"));
    }
    need(&buf, 16, "counts")?;
    let num_pis = get_len(&mut buf, "PI count")?;
    let num_ands = get_len(&mut buf, "AND count")?;
    if num_pis > MAX_DECODE_ITEMS || num_ands > MAX_DECODE_ITEMS {
        return Err(err("implausible node count"));
    }
    let mut aig = Aig::new(num_pis);
    need(&buf, num_ands * 8, "gates")?;
    for i in 0..num_ands {
        let a = Lit::from_raw(buf.get_u32());
        let b = Lit::from_raw(buf.get_u32());
        let expected_node =
            u32::try_from(1 + num_pis + i).map_err(|_| err("node index exceeds u32"))?;
        if a.node() >= expected_node || b.node() >= expected_node {
            return Err(err(format!("gate {i} has forward fanin")));
        }
        let lit = aig.and(a, b);
        // Strash may deduplicate, which would desynchronize literal ids, so
        // encoded AIGs must already be strash-canonical (ours are, by
        // construction). Detect rather than corrupt:
        if lit.node() != expected_node {
            return Err(err(format!("gate {i} deduplicated on decode; input not canonical")));
        }
    }
    need(&buf, 8, "po count")?;
    let num_pos = get_len(&mut buf, "PO count")?;
    if num_pos > MAX_DECODE_ITEMS {
        return Err(err("implausible PO count"));
    }
    need(&buf, num_pos * 4, "pos")?;
    for _ in 0..num_pos {
        let po = Lit::from_raw(buf.get_u32());
        if usize::try_from(po.node()).map_or(true, |n| n >= aig.num_nodes()) {
            return Err(err("PO out of range"));
        }
        aig.add_po(po);
    }
    Ok(aig)
}

/// Serializes a matrix (shape + little-endian f32 payload).
pub(crate) fn encode_matrix(m: &Matrix) -> Bytes {
    let mut out = BytesMut::with_capacity(16 + m.len() * 4);
    out.put_u32(MAGIC);
    out.put_u16(VERSION);
    out.put_u8(b'M');
    out.put_u64(m.rows() as u64);
    out.put_u64(m.cols() as u64);
    for &v in m.as_slice() {
        out.put_f32(v);
    }
    out.freeze()
}

/// Deserializes a matrix produced by [`encode_matrix`].
///
/// # Errors
///
/// Returns [`DecodeError`] on truncation or bad headers.
pub(crate) fn decode_matrix(mut buf: impl Buf) -> Result<Matrix, DecodeError> {
    need(&buf, 7, "header")?;
    if buf.get_u32() != MAGIC {
        return Err(err("bad magic"));
    }
    if buf.get_u16() != VERSION {
        return Err(err("unsupported version"));
    }
    if buf.get_u8() != b'M' {
        return Err(err("not a matrix record"));
    }
    need(&buf, 16, "shape")?;
    let rows = get_len(&mut buf, "row count")?;
    let cols = get_len(&mut buf, "column count")?;
    let n = rows.checked_mul(cols).ok_or_else(|| err("shape overflow"))?;
    let nbytes = n.checked_mul(4).ok_or_else(|| err("payload size overflow"))?;
    need(&buf, nbytes, "payload")?;
    let data: Vec<f32> = (0..n).map(|_| buf.get_f32()).collect();
    Matrix::try_from_vec(rows, cols, data).map_err(|e| err(e.to_string()))
}

/// Serializes a trained parameter set (names + values) — a model
/// checkpoint. Restore with [`decode_params`].
pub fn encode_params(params: &hoga_autograd::ParamSet) -> Bytes {
    let mut out = BytesMut::new();
    out.put_u32(MAGIC);
    out.put_u16(VERSION);
    out.put_u8(b'P');
    out.put_u64(params.len() as u64);
    for (_, name, value) in params.iter() {
        // analyze: allow(lossy-cast) — encode path; param names are short identifiers
        out.put_u32(name.len() as u32);
        out.put_slice(name.as_bytes());
        let m = encode_matrix(value);
        // analyze: allow(lossy-cast) — encode path; matrix payloads are far below 4 GiB
        out.put_u32(m.len() as u32);
        out.put_slice(&m);
    }
    out.freeze()
}

/// Deserializes a checkpoint produced by [`encode_params`].
///
/// Parameter ids are assigned in the stored order, so a checkpoint is
/// compatible with any model constructed the same way (same architecture
/// and registration order).
///
/// # Errors
///
/// Returns [`DecodeError`] on truncation or malformed records.
pub fn decode_params(mut buf: impl Buf) -> Result<hoga_autograd::ParamSet, DecodeError> {
    need(&buf, 7, "header")?;
    if buf.get_u32() != MAGIC {
        return Err(err("bad magic"));
    }
    if buf.get_u16() != VERSION {
        return Err(err("unsupported version"));
    }
    if buf.get_u8() != b'P' {
        return Err(err("not a checkpoint record"));
    }
    need(&buf, 8, "count")?;
    let count = get_len(&mut buf, "parameter count")?;
    let mut params = hoga_autograd::ParamSet::new();
    for k in 0..count {
        need(&buf, 4, "name length")?;
        let nlen =
            usize::try_from(buf.get_u32()).map_err(|_| err("name length does not fit in usize"))?;
        need(&buf, nlen, "name")?;
        let mut name_bytes = vec![0u8; nlen];
        buf.copy_to_slice(&mut name_bytes);
        let name = String::from_utf8(name_bytes).map_err(|_| err("name not UTF-8"))?;
        need(&buf, 4, "matrix length")?;
        let mlen = usize::try_from(buf.get_u32())
            .map_err(|_| err("matrix length does not fit in usize"))?;
        need(&buf, mlen, "matrix payload")?;
        let mut payload = vec![0u8; mlen];
        buf.copy_to_slice(&mut payload);
        let value =
            decode_matrix(&payload[..]).map_err(|e| err(format!("param {k} (`{name}`): {e}")))?;
        params.add(name, value);
    }
    Ok(params)
}

// ---------------------------------------------------------------------------
// Full-state training checkpoints
// ---------------------------------------------------------------------------

/// IEEE CRC-32 (reflected, polynomial 0xEDB88320), table-driven.
const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        // analyze: allow(lossy-cast) — const fn (try_from is non-const); i < 256
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE) of `data`, as appended to checkpoint files.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        // analyze: allow(lossy-cast) — table index is masked to 0xFF, always < 256
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// A *full* training checkpoint: model parameters plus opaque optimizer
/// state (from [`Optimizer::state_bytes`](hoga_autograd::optim::Optimizer))
/// and the training-loop cursors needed to resume a run bitwise-identically
/// to one that never stopped.
///
/// The on-disk format is the workspace codec header (`HOGA`, version, tag
/// `C`) followed by the payload and a trailing CRC-32 over everything
/// before it; [`save_checkpoint`] writes it atomically
/// (write-temp-then-rename), so a crash mid-write never corrupts the
/// previous checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Next epoch to run: epochs `0..epoch` are complete in `params`.
    pub epoch: u64,
    /// Master seed of the run; validated on resume so a checkpoint is
    /// never silently applied to a different data order.
    pub seed: u64,
    /// Multiplicative learning-rate backoff accumulated by divergence
    /// recovery (`1.0` when the run never diverged). Applied on top of the
    /// scheduled learning rate for the resumed epoch.
    pub lr_scale: f32,
    /// Model parameters (same registration order as the live model).
    pub params: ParamSet,
    /// Opaque optimizer state (Adam moments, step count, ...).
    pub opt_state: Vec<u8>,
}

/// Serializes a checkpoint, appending a CRC-32 of all preceding bytes.
pub fn encode_checkpoint(ck: &Checkpoint) -> Bytes {
    let params = encode_params(&ck.params);
    let mut out = BytesMut::with_capacity(64 + params.len() + ck.opt_state.len());
    out.put_u32(MAGIC);
    out.put_u16(VERSION);
    out.put_u8(b'C');
    out.put_u64(ck.epoch);
    out.put_u64(ck.seed);
    out.put_f32(ck.lr_scale);
    out.put_u64(params.len() as u64);
    out.put_slice(&params);
    out.put_u64(ck.opt_state.len() as u64);
    out.put_slice(&ck.opt_state);
    let crc = crc32(&out);
    out.put_u32(crc);
    out.freeze()
}

/// Deserializes and CRC-verifies a checkpoint from [`encode_checkpoint`].
///
/// # Errors
///
/// Returns [`DecodeError`] on truncation, bad magic/version/tag, checksum
/// mismatch, or malformed nested records.
pub fn decode_checkpoint(bytes: &[u8]) -> Result<Checkpoint, DecodeError> {
    if bytes.len() < 4 {
        return Err(err("truncated input reading checksum"));
    }
    let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
    let stored = u32::from_be_bytes([crc_bytes[0], crc_bytes[1], crc_bytes[2], crc_bytes[3]]);
    let computed = crc32(body);
    if stored != computed {
        return Err(err(format!(
            "checksum mismatch: stored {stored:#010x}, computed {computed:#010x} (file corrupt or truncated)"
        )));
    }
    let mut buf = body;
    need(&buf, 7, "header")?;
    if buf.get_u32() != MAGIC {
        return Err(err("bad magic"));
    }
    if buf.get_u16() != VERSION {
        return Err(err("unsupported version"));
    }
    if buf.get_u8() != b'C' {
        return Err(err("not a checkpoint record"));
    }
    need(&buf, 20, "cursors")?;
    let epoch = buf.get_u64();
    let seed = buf.get_u64();
    let lr_scale = buf.get_f32();
    need(&buf, 8, "params length")?;
    let plen = get_len(&mut buf, "params length")?;
    need(&buf, plen, "params payload")?;
    let params = decode_params(&buf[..plen]).map_err(|e| err(format!("params: {e}")))?;
    buf.advance(plen);
    need(&buf, 8, "optimizer state length")?;
    let olen = get_len(&mut buf, "optimizer state length")?;
    need(&buf, olen, "optimizer state")?;
    let opt_state = buf[..olen].to_vec();
    buf.advance(olen);
    if buf.has_remaining() {
        return Err(err(format!("{} trailing bytes", buf.remaining())));
    }
    Ok(Checkpoint { epoch, seed, lr_scale, params, opt_state })
}

/// Error from [`load_checkpoint`]: either the file couldn't be read or its
/// contents failed validation.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem-level failure.
    Io(std::io::Error),
    /// The bytes were read but are not a valid checkpoint.
    Decode(DecodeError),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::Decode(e) => write!(f, "checkpoint {e}"),
        }
    }
}

impl Error for CheckpointError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            CheckpointError::Decode(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

impl From<DecodeError> for CheckpointError {
    fn from(e: DecodeError) -> Self {
        CheckpointError::Decode(e)
    }
}

/// Atomically persists a checkpoint: the encoding is written to
/// `<path>.tmp` in the same directory, synced, and renamed over `path`.
/// A crash at any point leaves either the previous checkpoint or the new
/// one — never a torn file.
///
/// # Errors
///
/// Propagates filesystem errors (the temporary file is left behind only if
/// the rename itself fails).
pub fn save_checkpoint(path: &Path, ck: &Checkpoint) -> std::io::Result<()> {
    write_atomic(path, &encode_checkpoint(ck))
}

/// Atomically writes `bytes` to `path`: the payload goes to `<path>.tmp`
/// in the same directory (so the rename cannot cross filesystems), is
/// synced, and is renamed over `path`. A crash at any point leaves either
/// the previous file or the complete new one — never a torn write. Shared
/// by checkpointing and the dataset-generation manifest.
///
/// # Errors
///
/// Propagates filesystem errors (the temporary file is left behind only if
/// the rename itself fails).
pub(crate) fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

/// Loads and validates a checkpoint written by [`save_checkpoint`].
///
/// # Errors
///
/// Returns [`CheckpointError::Io`] if the file can't be read and
/// [`CheckpointError::Decode`] if it fails CRC or structural validation.
pub fn load_checkpoint(path: &Path) -> Result<Checkpoint, CheckpointError> {
    let bytes = std::fs::read(path)?;
    Ok(decode_checkpoint(&bytes)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_aig() -> Aig {
        let mut g = Aig::new(3);
        let (a, b, c) = (g.pi_lit(0), g.pi_lit(1), g.pi_lit(2));
        let x = g.xor(a, b);
        let y = g.maj(a, b, c);
        g.add_po(x);
        g.add_po(!y);
        g
    }

    #[test]
    fn aig_roundtrip() {
        let g = sample_aig();
        let bytes = encode_aig(&g);
        let h = decode_aig(bytes).expect("decode");
        assert_eq!(g, h);
        assert!(hoga_circuit::simulate::probably_equivalent(&g, &h, 2, 0));
    }

    #[test]
    fn structural_hash_is_stable_and_discriminating() {
        let g = sample_aig();
        // Same structure → same hash, across independent encodes and a
        // decode round-trip (the cache key must survive re-upload).
        assert_eq!(structural_hash(&g), structural_hash(&g));
        let rebuilt = decode_aig(encode_aig(&g)).expect("decode");
        assert_eq!(structural_hash(&g), structural_hash(&rebuilt));
        // Any structural change — one more PO, one fewer gate — changes it.
        let mut extra_po = g.clone();
        extra_po.add_po(g.pi_lit(0));
        assert_ne!(structural_hash(&g), structural_hash(&extra_po));
        let smaller = {
            let mut s = Aig::new(3);
            let (a, b) = (s.pi_lit(0), s.pi_lit(1));
            let x = s.and(a, b);
            s.add_po(x);
            s
        };
        assert_ne!(structural_hash(&g), structural_hash(&smaller));
    }

    #[test]
    fn aig_decode_rejects_truncation() {
        let g = sample_aig();
        let bytes = encode_aig(&g);
        for cut in [0, 3, 8, bytes.len() - 1] {
            let sliced = bytes.slice(0..cut);
            assert!(decode_aig(sliced).is_err(), "cut at {cut} accepted");
        }
    }

    #[test]
    fn aig_decode_rejects_bad_magic() {
        let g = sample_aig();
        let mut raw = encode_aig(&g).to_vec();
        raw[0] ^= 0xFF;
        assert!(decode_aig(&raw[..]).is_err());
    }

    #[test]
    fn matrix_roundtrip() {
        let m = Matrix::from_fn(5, 3, |r, c| (r as f32 - c as f32) * 0.25);
        let bytes = encode_matrix(&m);
        let n = decode_matrix(bytes).expect("decode");
        assert_eq!(m, n);
    }

    #[test]
    fn matrix_decode_rejects_garbage() {
        assert!(decode_matrix(&b"nonsense"[..]).is_err());
        assert!(decode_matrix(&[][..]).is_err());
    }

    #[test]
    fn empty_matrix_roundtrip() {
        let m = Matrix::zeros(0, 4);
        let n = decode_matrix(encode_matrix(&m)).expect("decode");
        assert_eq!(m, n);
    }

    #[test]
    fn checkpoint_roundtrip_preserves_names_and_values() {
        let mut p = hoga_autograd::ParamSet::new();
        p.add("layer0.w", Matrix::from_fn(3, 4, |r, c| (r * 4 + c) as f32));
        p.add("layer0.b", Matrix::zeros(1, 4));
        p.add("readout.alpha", Matrix::full(8, 1, -0.25));
        let bytes = encode_params(&p);
        let q = decode_params(bytes).expect("decode");
        assert_eq!(q.len(), 3);
        for ((_, n1, v1), (_, n2, v2)) in p.iter().zip(q.iter()) {
            assert_eq!(n1, n2);
            assert_eq!(v1, v2);
        }
    }

    #[test]
    fn checkpoint_restores_a_trained_hoga_model() {
        use hoga_core::model::{HogaConfig, HogaModel};
        let cfg = HogaConfig::new(5, 8, 3);
        let model = HogaModel::new(&cfg, 9);
        let bytes = encode_params(&model.params);
        let restored = decode_params(bytes).expect("decode");
        // Rebuild a model with the same architecture and swap parameters in.
        let mut clone = HogaModel::new(&cfg, 123); // different init
        assert_eq!(clone.params.len(), restored.len());
        clone.params = restored;
        // Identical outputs to the original.
        let stack = hoga_tensor::Init::SmallUniform.matrix(2 * 4, 5, 1);
        let a = model.attention_scores(&stack, 2);
        let b = clone.attention_scores(&stack, 2);
        assert_eq!(a, b);
    }

    #[test]
    fn checkpoint_rejects_corruption() {
        let mut p = hoga_autograd::ParamSet::new();
        p.add("w", Matrix::identity(2));
        let bytes = encode_params(&p).to_vec();
        assert!(decode_params(&bytes[..bytes.len() - 3]).is_err());
        let mut bad = bytes.clone();
        bad[6] = b'X';
        assert!(decode_params(&bad[..]).is_err());
    }

    fn sample_checkpoint() -> Checkpoint {
        let mut p = hoga_autograd::ParamSet::new();
        p.add("enc.w", Matrix::from_fn(3, 4, |r, c| (r * 4 + c) as f32 * 0.5));
        p.add("enc.b", Matrix::zeros(1, 4));
        Checkpoint {
            epoch: 17,
            seed: 0xDEAD_BEEF,
            lr_scale: 0.25,
            params: p,
            opt_state: vec![1, 2, 3, 4, 5, 6, 7],
        }
    }

    #[test]
    fn crc32_matches_reference_vectors() {
        // The standard IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn full_checkpoint_roundtrip() {
        let ck = sample_checkpoint();
        let bytes = encode_checkpoint(&ck);
        let back = decode_checkpoint(&bytes).expect("decode");
        assert_eq!(ck, back);
    }

    #[test]
    fn checkpoint_decode_rejects_any_single_byte_flip() {
        let ck = sample_checkpoint();
        let bytes = encode_checkpoint(&ck).to_vec();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x41;
            assert!(decode_checkpoint(&bad).is_err(), "flip at byte {i} accepted");
        }
    }

    #[test]
    fn checkpoint_decode_rejects_truncation() {
        let bytes = encode_checkpoint(&sample_checkpoint());
        for cut in [0, 3, 7, 20, bytes.len() - 1] {
            assert!(decode_checkpoint(&bytes[..cut]).is_err(), "cut at {cut} accepted");
        }
    }

    #[test]
    fn atomic_save_and_load_roundtrip() {
        let dir = std::env::temp_dir().join(format!("hoga-ckpt-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("model.ckpt");
        let ck = sample_checkpoint();
        save_checkpoint(&path, &ck).expect("save");
        // No temporary file left behind.
        assert!(!dir.join("model.ckpt.tmp").exists());
        let back = load_checkpoint(&path).expect("load");
        assert_eq!(ck, back);
        // Overwriting is atomic too: save a different checkpoint on top.
        let mut ck2 = ck.clone();
        ck2.epoch = 18;
        save_checkpoint(&path, &ck2).expect("resave");
        assert_eq!(load_checkpoint(&path).expect("reload").epoch, 18);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_missing_checkpoint_is_io_error() {
        let missing = std::env::temp_dir().join("hoga-ckpt-definitely-missing.ckpt");
        match load_checkpoint(&missing) {
            Err(CheckpointError::Io(_)) => {}
            other => panic!("expected Io error, got {other:?}"),
        }
    }
}
