//! The Gamora-style functional-reasoning benchmark.
//!
//! Following §IV-A/§IV-C of the paper: train on an AIG of an **8-bit
//! multiplier** and evaluate on multipliers of growing bitwidth, all after
//! technology mapping (our k-LUT remap standing in for ASAP 7nm). The task
//! is 4-class node classification (MAJ / XOR / shared / plain).

use hoga_circuit::{adjacency, features, Aig};
use hoga_gen::multiplier::{booth_multiplier, csa_multiplier};
use hoga_gen::reason::{label_nodes, NodeClass};
use hoga_gen::techmap::lut_map;
use hoga_tensor::{CsrMatrix, Matrix};
use std::sync::Arc;

/// Multiplier architecture (the two panels of Figure 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MultiplierKind {
    /// Carry-save array multiplier.
    Csa,
    /// Radix-4 Booth multiplier.
    Booth,
}

/// Configuration for [`build_reasoning_graph`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReasoningConfig {
    /// Apply the k-LUT technology mapper before labeling (the paper's
    /// "most challenging" setting).
    pub tech_map: bool,
    /// LUT size for the mapper (4 mirrors a standard cell sweep).
    pub lut_k: usize,
    /// Hops `K` for hop features (paper: 8).
    pub num_hops: usize,
    /// Cut size for the functional labeler.
    pub label_k: usize,
}

impl Default for ReasoningConfig {
    fn default() -> Self {
        Self { tech_map: true, lut_k: 4, num_hops: 8, label_k: 4 }
    }
}

/// One prepared reasoning graph.
pub struct ReasoningGraph {
    /// Multiplier architecture.
    pub kind: MultiplierKind,
    /// Operand bitwidth.
    pub width: usize,
    /// The (possibly technology-mapped) circuit.
    pub aig: Aig,
    /// Ground-truth class per node.
    pub labels: Vec<NodeClass>,
    /// Symmetric normalized adjacency.
    pub adj: Arc<CsrMatrix>,
    /// Raw node features.
    pub features: Matrix,
    /// Precomputed hop features.
    pub hops: Vec<Matrix>,
}

impl ReasoningGraph {
    /// Class labels as bare indices (for cross-entropy).
    pub fn label_indices(&self) -> Vec<usize> {
        self.labels.iter().map(|l| l.index()).collect()
    }
}

/// Builds one labeled reasoning graph.
///
/// # Panics
///
/// Panics if `width < 2`.
pub fn build_reasoning_graph(
    kind: MultiplierKind,
    width: usize,
    config: &ReasoningConfig,
) -> ReasoningGraph {
    let traced = match kind {
        MultiplierKind::Csa => csa_multiplier(width),
        MultiplierKind::Booth => booth_multiplier(width),
    };
    let aig = if config.tech_map {
        lut_map(&traced.aig, config.lut_k).aig
    } else {
        let mut a = traced.aig;
        a.compact();
        a
    };
    let labels = label_nodes(&aig, config.label_k);
    let adj = Arc::new(adjacency::normalized_symmetric(&aig));
    let feats = features::node_features(&aig);
    let hops = hoga_core::hopfeat::hop_features(&adj, &feats, config.num_hops);
    ReasoningGraph { kind, width, aig, labels, adj, features: feats, hops }
}

/// Builds the paper's benchmark: one training graph (8-bit) and evaluation
/// graphs at each width in `eval_widths`.
pub fn build_reasoning_benchmark(
    kind: MultiplierKind,
    train_width: usize,
    eval_widths: &[usize],
    config: &ReasoningConfig,
) -> (ReasoningGraph, Vec<ReasoningGraph>) {
    let train = build_reasoning_graph(kind, train_width, config);
    let evals = eval_widths.iter().map(|&w| build_reasoning_graph(kind, w, config)).collect();
    (train, evals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hoga_gen::reason::class_histogram;

    fn small_cfg() -> ReasoningConfig {
        ReasoningConfig { tech_map: true, lut_k: 4, num_hops: 4, label_k: 4 }
    }

    #[test]
    fn csa_graph_has_all_key_classes() {
        let g = build_reasoning_graph(MultiplierKind::Csa, 6, &small_cfg());
        let h = class_histogram(&g.labels);
        assert!(h[NodeClass::Maj.index()] > 0, "{h:?}");
        assert!(h[NodeClass::Xor.index()] > 0, "{h:?}");
        assert!(h[NodeClass::Plain.index()] > 0, "{h:?}");
        assert_eq!(g.labels.len(), g.aig.num_nodes());
    }

    #[test]
    fn booth_graph_builds_with_mapping() {
        let g = build_reasoning_graph(MultiplierKind::Booth, 4, &small_cfg());
        assert_eq!(g.hops.len(), 5);
        assert_eq!(g.features.rows(), g.aig.num_nodes());
    }

    #[test]
    fn unmapped_graph_differs_from_mapped() {
        let mut cfg = small_cfg();
        let mapped = build_reasoning_graph(MultiplierKind::Csa, 4, &cfg);
        cfg.tech_map = false;
        let raw = build_reasoning_graph(MultiplierKind::Csa, 4, &cfg);
        assert_ne!(mapped.aig, raw.aig, "mapping must restructure");
    }

    #[test]
    fn benchmark_produces_requested_widths() {
        let (train, evals) =
            build_reasoning_benchmark(MultiplierKind::Csa, 4, &[6, 8], &small_cfg());
        assert_eq!(train.width, 4);
        let widths: Vec<usize> = evals.iter().map(|g| g.width).collect();
        assert_eq!(widths, vec![6, 8]);
        // Larger multipliers have more nodes.
        assert!(evals[1].aig.num_nodes() > evals[0].aig.num_nodes());
        assert!(evals[0].aig.num_nodes() > train.aig.num_nodes());
    }

    #[test]
    fn class_distribution_is_imbalanced_toward_plain() {
        // Sanity: plain nodes dominate, as in real netlists.
        let g = build_reasoning_graph(MultiplierKind::Csa, 8, &small_cfg());
        let h = class_histogram(&g.labels);
        let plain = h[NodeClass::Plain.index()];
        assert!(plain * 2 > g.labels.len(), "plain not dominant: {h:?}");
    }
}
