//! The synthetic OpenABC-D QoR-prediction benchmark.
//!
//! Mirrors the paper's setup (§IV-A): for each of the 29 Table-1 designs we
//! generate the (scaled) circuit, run `R` random synthesis recipes through
//! the `hoga-synth` simulator, and label each `(design, recipe)` pair with
//! the optimized gate count. Models are trained on the first 20 designs and
//! evaluated on the remaining 9 — an *unseen-design* generalization task.
//!
//! Labels are stored as gate-count *reduction ratios*
//! (`final / initial ∈ (0, 1]`), which are size-independent; MAPE over gate
//! counts equals relative error over ratios, so the paper's metric is
//! computed exactly (see [`hoga_eval`-side metrics]).

use hoga_circuit::{adjacency, features, Aig};
use hoga_gen::ipgen::{generate_ip, IpSpec, OPENABCD_DESIGNS};
use hoga_synth::{random_recipe, run_recipe, Recipe};
use hoga_tensor::{CsrMatrix, Matrix};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

/// Width of the encoded recipe vector fed to the regression head — one
/// slot per step of the OpenABC-D synthesis budget.
pub const RECIPE_ENCODING_WIDTH: usize = hoga_synth::STEP_BUDGET;

/// Configuration for [`build_qor_dataset`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QorDatasetConfig {
    /// Divide Table-1 node counts by this factor (default 8; 1 = full size).
    pub scale_divisor: usize,
    /// Random recipes per design (paper: 1500; CPU default: 24).
    pub recipes_per_design: usize,
    /// Steps per random recipe (OpenABC-D uses
    /// [`hoga_synth::STEP_BUDGET`]).
    pub recipe_len: usize,
    /// Hops `K` for hop-feature precomputation (paper: 5).
    pub num_hops: usize,
    /// Nodes sampled per graph for graph-level pooling (keeps CPU training
    /// tractable; 0 = all nodes).
    pub nodes_per_graph: usize,
    /// Ignore designs whose *scaled* node count exceeds this (0 = no limit).
    pub max_scaled_nodes: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for QorDatasetConfig {
    fn default() -> Self {
        Self {
            scale_divisor: 8,
            recipes_per_design: 24,
            recipe_len: hoga_synth::STEP_BUDGET,
            num_hops: 5,
            nodes_per_graph: 256,
            max_scaled_nodes: 0,
            seed: 0xABC0,
        }
    }
}

impl QorDatasetConfig {
    /// A miniature configuration for unit tests and doc examples.
    ///
    /// The node cap is chosen so at least a few *test-split* designs
    /// survive (the smallest held-out design, `aes_secworks`, is ~637
    /// nodes at 1/64 scale).
    pub fn tiny() -> Self {
        Self {
            scale_divisor: 64,
            recipes_per_design: 3,
            recipe_len: 6,
            num_hops: 3,
            nodes_per_graph: 64,
            max_scaled_nodes: 800,
            seed: 0xABC0,
        }
    }
}

/// One prepared design: circuit, graph matrices, hop features, node sample.
pub struct QorDesign {
    /// The Table-1 row this design reproduces.
    pub spec: IpSpec,
    /// The generated (unoptimized) circuit.
    pub aig: Aig,
    /// Symmetric normalized adjacency `Â` (shared with models).
    pub adj: Arc<CsrMatrix>,
    /// Raw node features `X`.
    pub features: Matrix,
    /// Precomputed hop features `X^(0..K)` (Eq. 3).
    pub hops: Vec<Matrix>,
    /// Node indices used for graph-level pooling.
    pub pooled_nodes: Vec<usize>,
}

/// One regression sample.
#[derive(Debug, Clone)]
pub struct QorSample {
    /// Index into [`QorDataset::designs`].
    pub design: usize,
    /// The synthesis recipe that was run.
    pub recipe: Recipe,
    /// Encoded recipe vector (width [`RECIPE_ENCODING_WIDTH`]).
    pub recipe_encoding: Vec<f32>,
    /// Gate count before synthesis.
    pub initial_ands: usize,
    /// Gate count after the recipe (the paper's QoR ground truth).
    pub final_ands: usize,
    /// Circuit depth (AND levels) before synthesis.
    pub initial_depth: u32,
    /// Circuit depth after the recipe — a second QoR metric this
    /// reproduction supports beyond the paper (delay-oriented flows).
    pub final_depth: u32,
}

impl QorSample {
    /// The normalized gate-count label `final / initial ∈ (0, 1]`.
    pub fn ratio(&self) -> f32 {
        if self.initial_ands == 0 {
            1.0
        } else {
            self.final_ands as f32 / self.initial_ands as f32
        }
    }

    /// The normalized depth label `final / initial` (can exceed 1: area
    /// optimization sometimes deepens the circuit).
    pub fn depth_ratio(&self) -> f32 {
        if self.initial_depth == 0 {
            1.0
        } else {
            self.final_depth as f32 / self.initial_depth as f32
        }
    }
}

/// The full benchmark: prepared designs plus train/test samples.
pub struct QorDataset {
    /// All prepared designs, in Table-1 order (possibly filtered by size).
    pub designs: Vec<QorDesign>,
    /// Samples over training designs (upper 20 rows of Table 1).
    pub train: Vec<QorSample>,
    /// Samples over held-out designs (lower 9 rows).
    pub test: Vec<QorSample>,
    /// The configuration used.
    pub config: QorDatasetConfig,
}

/// Builds the benchmark.
///
/// Deterministic in `config.seed`. Runtime scales with
/// `recipes_per_design × scaled design sizes`; the default configuration
/// targets minutes on a laptop-class CPU.
pub fn build_qor_dataset(config: &QorDatasetConfig) -> QorDataset {
    let mut designs = Vec::new();
    let mut train = Vec::new();
    let mut test = Vec::new();
    let mut design_specs: Vec<&IpSpec> = OPENABCD_DESIGNS.iter().collect();
    if config.max_scaled_nodes > 0 {
        design_specs.retain(|s| s.nodes / config.scale_divisor <= config.max_scaled_nodes);
    }
    for spec in design_specs {
        let aig = generate_ip(spec, config.scale_divisor);
        let adj = Arc::new(adjacency::normalized_symmetric(&aig));
        let feats = features::node_features(&aig);
        let hops = hoga_core::hopfeat::hop_features(&adj, &feats, config.num_hops);
        let pooled_nodes = sample_nodes(
            aig.num_nodes(),
            config.nodes_per_graph,
            config.seed ^ hash_name(spec.name),
        );
        let design_idx = designs.len();
        for r in 0..config.recipes_per_design {
            let recipe = random_recipe(
                config.recipe_len,
                config.seed.wrapping_add(hash_name(spec.name)).wrapping_add(r as u64),
            );
            let result = run_recipe(&aig, &recipe);
            let sample = QorSample {
                design: design_idx,
                recipe_encoding: recipe.encode(RECIPE_ENCODING_WIDTH),
                recipe,
                initial_ands: result.initial_ands,
                final_ands: result.final_ands,
                initial_depth: hoga_circuit::depth(&aig),
                final_depth: hoga_circuit::depth(&result.aig),
            };
            if spec.train {
                train.push(sample);
            } else {
                test.push(sample);
            }
        }
        designs.push(QorDesign { spec: *spec, aig, adj, features: feats, hops, pooled_nodes });
    }
    QorDataset { designs, train, test, config: *config }
}

/// Deterministically samples `count` distinct node indices (all nodes if
/// `count == 0` or `count >= n`).
fn sample_nodes(n: usize, count: usize, seed: u64) -> Vec<usize> {
    if count == 0 || count >= n {
        return (0..n).collect();
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut idx: Vec<usize> = (0..n).collect();
    // Partial Fisher-Yates.
    for i in 0..count {
        let j = rng.gen_range(i..n);
        idx.swap(i, j);
    }
    idx.truncate(count);
    idx.sort_unstable();
    idx
}

fn hash_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_dataset_builds_with_split() {
        let ds = build_qor_dataset(&QorDatasetConfig::tiny());
        assert!(!ds.designs.is_empty());
        assert!(!ds.train.is_empty());
        // Tiny config keeps only small designs; at least some train samples.
        for s in ds.train.iter().chain(&ds.test) {
            assert!(s.final_ands <= s.initial_ands, "synthesis grew the circuit");
            assert!(s.ratio() > 0.0 && s.ratio() <= 1.0);
            assert_eq!(s.recipe_encoding.len(), RECIPE_ENCODING_WIDTH);
        }
    }

    #[test]
    fn labels_vary_across_recipes() {
        let mut cfg = QorDatasetConfig::tiny();
        cfg.recipes_per_design = 6;
        let ds = build_qor_dataset(&cfg);
        // Across all designs and recipes there must be label diversity,
        // otherwise QoR prediction is vacuous.
        let mut ratios: Vec<f32> = ds.train.iter().map(QorSample::ratio).collect();
        ratios.dedup();
        assert!(ratios.len() > 1, "all ratios identical");
    }

    #[test]
    fn deterministic_rebuild() {
        let cfg = QorDatasetConfig::tiny();
        let a = build_qor_dataset(&cfg);
        let b = build_qor_dataset(&cfg);
        assert_eq!(a.train.len(), b.train.len());
        for (x, y) in a.train.iter().zip(&b.train) {
            assert_eq!(x.final_ands, y.final_ands);
            assert_eq!(x.recipe, y.recipe);
        }
    }

    #[test]
    fn pooled_nodes_are_valid_and_sorted() {
        let ds = build_qor_dataset(&QorDatasetConfig::tiny());
        for d in &ds.designs {
            assert!(!d.pooled_nodes.is_empty());
            assert!(d.pooled_nodes.windows(2).all(|w| w[0] < w[1]));
            assert!(*d.pooled_nodes.last().expect("non-empty") < d.aig.num_nodes());
        }
    }

    #[test]
    fn hop_features_have_expected_count() {
        let cfg = QorDatasetConfig::tiny();
        let ds = build_qor_dataset(&cfg);
        for d in &ds.designs {
            assert_eq!(d.hops.len(), cfg.num_hops + 1);
        }
    }
}
