//! The synthetic OpenABC-D QoR-prediction benchmark.
//!
//! Mirrors the paper's setup (§IV-A): for each of the 29 Table-1 designs we
//! generate the (scaled) circuit, run `R` random synthesis recipes through
//! the `hoga-synth` simulator, and label each `(design, recipe)` pair with
//! the optimized gate count. Models are trained on the first 20 designs and
//! evaluated on the remaining 9 — an *unseen-design* generalization task.
//!
//! Labels are stored as gate-count *reduction ratios*
//! (`final / initial ∈ (0, 1]`), which are size-independent; MAPE over gate
//! counts equals relative error over ratios, so the paper's metric is
//! computed exactly (see [`hoga_eval`-side metrics]).

use crate::manifest::{
    fnv1a64, read_record, write_record, SampleRecord, SampleStatus, MANIFEST_DIR, QUARANTINE_DIR,
};
use hoga_circuit::{adjacency, features, Aig};
use hoga_gen::ipgen::{generate_ip, IpSpec, OPENABCD_DESIGNS};
use hoga_synth::{
    random_recipe, run_recipe_guarded, GuardConfig, GuardedRun, Recipe, SynthError, SynthFault,
    SynthFaultPlan,
};
use hoga_tensor::{CsrMatrix, Matrix};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::error::Error;
use std::fmt;
use std::path::Path;
use std::sync::Arc;

/// Width of the encoded recipe vector fed to the regression head — one
/// slot per step of the OpenABC-D synthesis budget.
pub const RECIPE_ENCODING_WIDTH: usize = hoga_synth::STEP_BUDGET;

/// Configuration for [`build_qor_dataset`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QorDatasetConfig {
    /// Divide Table-1 node counts by this factor (default 8; 1 = full size).
    pub scale_divisor: usize,
    /// Random recipes per design (paper: 1500; CPU default: 24).
    pub recipes_per_design: usize,
    /// Steps per random recipe (OpenABC-D uses
    /// [`hoga_synth::STEP_BUDGET`]).
    pub recipe_len: usize,
    /// Hops `K` for hop-feature precomputation (paper: 5).
    pub num_hops: usize,
    /// Nodes sampled per graph for graph-level pooling (keeps CPU training
    /// tractable; 0 = all nodes).
    pub nodes_per_graph: usize,
    /// Ignore designs whose *scaled* node count exceeds this (0 = no limit).
    pub max_scaled_nodes: usize,
    /// Master seed.
    pub seed: u64,
    /// Per-pass equivalence-guard and budget configuration for the
    /// synthesis runner. The default (2-round simulation filter, no SAT
    /// arbiter, unlimited budgets) reproduces the historical labels
    /// exactly; keep `guard.budget.timeout_ms == 0` wherever byte-stable
    /// resumption matters (wall-clock deadlines are nondeterministic).
    pub guard: GuardConfig,
}

impl Default for QorDatasetConfig {
    fn default() -> Self {
        Self {
            scale_divisor: 8,
            recipes_per_design: 24,
            recipe_len: hoga_synth::STEP_BUDGET,
            num_hops: 5,
            nodes_per_graph: 256,
            max_scaled_nodes: 0,
            seed: 0xABC0,
            guard: GuardConfig::default(),
        }
    }
}

impl QorDatasetConfig {
    /// A miniature configuration for unit tests and doc examples.
    ///
    /// The node cap is chosen so at least a few *test-split* designs
    /// survive (the smallest held-out design, `aes_secworks`, is ~637
    /// nodes at 1/64 scale).
    pub fn tiny() -> Self {
        Self {
            scale_divisor: 64,
            recipes_per_design: 3,
            recipe_len: 6,
            num_hops: 3,
            nodes_per_graph: 64,
            max_scaled_nodes: 800,
            seed: 0xABC0,
            guard: GuardConfig::default(),
        }
    }
}

/// One prepared design: circuit, graph matrices, hop features, node sample.
pub struct QorDesign {
    /// The Table-1 row this design reproduces.
    pub spec: IpSpec,
    /// The generated (unoptimized) circuit.
    pub aig: Aig,
    /// Symmetric normalized adjacency `Â` (shared with models).
    pub adj: Arc<CsrMatrix>,
    /// Raw node features `X`.
    pub features: Matrix,
    /// Precomputed hop features `X^(0..K)` (Eq. 3).
    pub hops: Vec<Matrix>,
    /// Node indices used for graph-level pooling.
    pub pooled_nodes: Vec<usize>,
}

/// One regression sample.
#[derive(Debug, Clone)]
pub struct QorSample {
    /// Index into [`QorDataset::designs`].
    pub design: usize,
    /// The synthesis recipe that was run.
    pub recipe: Recipe,
    /// Encoded recipe vector (width [`RECIPE_ENCODING_WIDTH`]).
    pub recipe_encoding: Vec<f32>,
    /// Gate count before synthesis.
    pub initial_ands: usize,
    /// Gate count after the recipe (the paper's QoR ground truth).
    pub final_ands: usize,
    /// Circuit depth (AND levels) before synthesis.
    pub initial_depth: u32,
    /// Circuit depth after the recipe — a second QoR metric this
    /// reproduction supports beyond the paper (delay-oriented flows).
    pub final_depth: u32,
    /// `recipe::lint` findings for this sample's recipe (display form);
    /// empty for well-formed recipes within the OpenABC-D step budget.
    pub lint_findings: Vec<String>,
}

/// Smallest label the ratio accessors return. Labels feed relative-error
/// (MAPE) losses where an exact 0 divides by zero, so a circuit optimized
/// all the way to constants is clamped to this floor instead.
pub const RATIO_FLOOR: f32 = 1e-6;

/// Largest label the ratio accessors return. Area recipes occasionally
/// deepen a circuit, but a ratio beyond this bound indicates a degenerate
/// denominator rather than a real label.
pub const RATIO_CEIL: f32 = 16.0;

/// `num / den` clamped into `[RATIO_FLOOR, RATIO_CEIL]`, with degenerate
/// denominators (zero gates or zero depth before synthesis) mapping to the
/// neutral label `1.0` — never `NaN`, `inf`, or `0`.
fn clamped_ratio(num: f32, den: f32) -> f32 {
    if den <= 0.0 {
        return 1.0;
    }
    let r = num / den;
    if r.is_finite() {
        r.clamp(RATIO_FLOOR, RATIO_CEIL)
    } else {
        1.0
    }
}

impl QorSample {
    /// The normalized gate-count label `final / initial`, clamped into
    /// `[RATIO_FLOOR, RATIO_CEIL]`; zero-gate designs yield the neutral
    /// `1.0`. Always finite and strictly positive.
    pub fn ratio(&self) -> f32 {
        clamped_ratio(self.final_ands as f32, self.initial_ands as f32)
    }

    /// The normalized depth label `final / initial` (can exceed 1: area
    /// optimization sometimes deepens the circuit), clamped like
    /// [`QorSample::ratio`]. Always finite and strictly positive.
    pub fn depth_ratio(&self) -> f32 {
        clamped_ratio(self.final_depth as f32, self.initial_depth as f32)
    }
}

/// The full benchmark: prepared designs plus train/test samples.
pub struct QorDataset {
    /// All prepared designs, in Table-1 order (possibly filtered by size).
    pub designs: Vec<QorDesign>,
    /// Samples over training designs (upper 20 rows of Table 1).
    pub train: Vec<QorSample>,
    /// Samples over held-out designs (lower 9 rows).
    pub test: Vec<QorSample>,
    /// The configuration used.
    pub config: QorDatasetConfig,
}

/// The Table-1 designs that survive `config`'s size filter, in Table-1
/// order — the sweep order shared by the in-memory and resumable builders.
fn filtered_designs(config: &QorDatasetConfig) -> Vec<&'static IpSpec> {
    let mut design_specs: Vec<&IpSpec> = OPENABCD_DESIGNS.iter().collect();
    if config.max_scaled_nodes > 0 {
        design_specs.retain(|s| s.nodes / config.scale_divisor <= config.max_scaled_nodes);
    }
    design_specs
}

/// The `random_recipe` seed for recipe `r` of `design` — shared by both
/// builders and recorded in the manifest.
fn recipe_seed(config: &QorDatasetConfig, design: &str, r: usize) -> u64 {
    config.seed.wrapping_add(hash_name(design)).wrapping_add(r as u64)
}

/// One synthesized sample plus its guard outcome log: the shared hot path
/// of both builders. Lints the recipe, runs it under the configured guard
/// (with `faults` injected), and assembles the [`QorSample`].
fn synthesize_sample(
    aig: &Aig,
    design_idx: usize,
    config: &QorDatasetConfig,
    design_name: &str,
    r: usize,
    faults: &SynthFaultPlan,
) -> Result<(QorSample, GuardedRun), SynthError> {
    let recipe = random_recipe(config.recipe_len, recipe_seed(config, design_name, r));
    let lint_findings: Vec<String> =
        hoga_synth::recipe::lint(&recipe.to_string()).iter().map(ToString::to_string).collect();
    let run = run_recipe_guarded(aig, &recipe, &config.guard, faults)?;
    let sample = QorSample {
        design: design_idx,
        recipe_encoding: recipe.encode(RECIPE_ENCODING_WIDTH),
        recipe,
        initial_ands: run.result.initial_ands,
        final_ands: run.result.final_ands,
        initial_depth: hoga_circuit::depth(aig),
        final_depth: hoga_circuit::depth(&run.result.aig),
        lint_findings,
    };
    Ok((sample, run))
}

/// Builds the benchmark.
///
/// Deterministic in `config.seed`. Runtime scales with
/// `recipes_per_design × scaled design sizes`; the default configuration
/// targets minutes on a laptop-class CPU.
///
/// Every recipe runs under the configured per-pass equivalence guard (see
/// [`QorDatasetConfig::guard`]); with the default guard and sound passes
/// the labels are identical to the historical unguarded builder.
///
/// # Panics
///
/// Panics if `config.guard` is invalid (`sim_rounds == 0`) — use
/// [`build_qor_dataset_resumable`] for the typed-error path.
pub fn build_qor_dataset(config: &QorDatasetConfig) -> QorDataset {
    let mut designs = Vec::new();
    let mut train = Vec::new();
    let mut test = Vec::new();
    for spec in filtered_designs(config) {
        let aig = generate_ip(spec, config.scale_divisor);
        let adj = Arc::new(adjacency::normalized_symmetric(&aig));
        let feats = features::node_features(&aig);
        let hops = hoga_core::hopfeat::hop_features(&adj, &feats, config.num_hops);
        let pooled_nodes = sample_nodes(
            aig.num_nodes(),
            config.nodes_per_graph,
            config.seed ^ hash_name(spec.name),
        );
        let design_idx = designs.len();
        for r in 0..config.recipes_per_design {
            let (sample, _run) =
                synthesize_sample(&aig, design_idx, config, spec.name, r, &SynthFaultPlan::none())
                    .expect("no faults injected and guard validated");
            if spec.train {
                train.push(sample);
            } else {
                test.push(sample);
            }
        }
        designs.push(QorDesign { spec: *spec, aig, adj, features: feats, hops, pooled_nodes });
    }
    QorDataset { designs, train, test, config: *config }
}

// ---------------------------------------------------------------------------
// Resumable generation
// ---------------------------------------------------------------------------

/// A deliberate fault targeting one `(design, recipe, step)` of a sweep —
/// the dataset-level face of [`SynthFaultPlan`], used to prove the guard,
/// quarantine, and resume machinery end to end.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QorFault {
    /// Table-1 design name.
    pub design: String,
    /// 0-based recipe index within the design.
    pub recipe_index: usize,
    /// 0-based step index within the recipe.
    pub step: usize,
    /// What to do to that step.
    pub fault: SynthFault,
}

/// Options for [`build_qor_dataset_resumable`] beyond the dataset config.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QorSweepOptions {
    /// Stop (as if killed) after writing this many *new* records; `None`
    /// runs to completion. Skipped (already-valid) records don't count.
    pub stop_after: Option<usize>,
    /// Deliberate faults to inject, for testing the guard pipeline.
    pub faults: Vec<QorFault>,
}

/// What a [`build_qor_dataset_resumable`] invocation did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QorBuildReport {
    /// Total samples in the sweep (designs × recipes).
    pub total: usize,
    /// Records newly written by this invocation (clean + quarantined).
    pub written: usize,
    /// Valid records found on disk and skipped (resume hits).
    pub skipped: usize,
    /// Samples now in quarantine (newly written + skipped).
    pub quarantined: usize,
    /// `true` when `stop_after` ended the sweep early; resume by calling
    /// again with the same config and output directory.
    pub interrupted: bool,
}

impl QorBuildReport {
    /// `true` when every sample of the sweep has a valid record on disk.
    pub fn complete(&self) -> bool {
        !self.interrupted && self.written + self.skipped == self.total
    }
}

/// Error from [`build_qor_dataset_resumable`].
#[derive(Debug)]
pub enum QorBuildError {
    /// Filesystem failure writing records or creating directories.
    Io(std::io::Error),
    /// Invalid guard configuration or fault plan.
    Synth(SynthError),
    /// The same sample has a valid record in *both* the manifest and the
    /// quarantine directory. The two sets must be disjoint — a duplicate
    /// means an operator merged output directories or a tool rewrote
    /// records, and silently preferring either copy could resurrect a
    /// poisoned label. Refused rather than guessed; delete one copy to
    /// proceed.
    DuplicateSample {
        /// Table-1 design name.
        design: String,
        /// Recipe index within the design.
        recipe_index: usize,
    },
}

impl fmt::Display for QorBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QorBuildError::Io(e) => write!(f, "dataset generation I/O error: {e}"),
            QorBuildError::Synth(e) => write!(f, "dataset generation: {e}"),
            QorBuildError::DuplicateSample { design, recipe_index } => write!(
                f,
                "sample {design} recipe {recipe_index} has valid records in both manifest/ and \
                 quarantine/; delete one copy and rerun"
            ),
        }
    }
}

impl Error for QorBuildError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            QorBuildError::Io(e) => Some(e),
            QorBuildError::Synth(e) => Some(e),
            QorBuildError::DuplicateSample { .. } => None,
        }
    }
}

impl From<std::io::Error> for QorBuildError {
    fn from(e: std::io::Error) -> Self {
        QorBuildError::Io(e)
    }
}

impl From<SynthError> for QorBuildError {
    fn from(e: SynthError) -> Self {
        QorBuildError::Synth(e)
    }
}

/// Runs the QoR label sweep with per-sample on-disk records, resumable
/// after a kill at any point.
///
/// For every `(design, recipe)` pair (same order and seeds as
/// [`build_qor_dataset`]) a CRC-checked [`SampleRecord`] is written
/// atomically under `out_dir/manifest/`; samples whose guarded run
/// reports an incident (refuted or over-budget pass) go to
/// `out_dir/quarantine/` instead, keeping poisoned labels out of the
/// clean set while preserving the evidence. On resume, samples with a
/// valid record in either directory are skipped; corrupt or truncated
/// records are regenerated. Records contain no timestamps, so an
/// interrupted-then-resumed sweep is byte-identical to an uninterrupted
/// one.
///
/// # Errors
///
/// [`QorBuildError::Synth`] if the guard config is invalid or a fault
/// targets a step past the recipe end; [`QorBuildError::Io`] on
/// filesystem failures.
pub fn build_qor_dataset_resumable(
    config: &QorDatasetConfig,
    out_dir: &Path,
    opts: &QorSweepOptions,
) -> Result<QorBuildReport, QorBuildError> {
    config.guard.validate()?;
    let manifest_dir = out_dir.join(MANIFEST_DIR);
    let quarantine_dir = out_dir.join(QUARANTINE_DIR);
    std::fs::create_dir_all(&manifest_dir)?;
    std::fs::create_dir_all(&quarantine_dir)?;

    let specs = filtered_designs(config);
    let mut report = QorBuildReport {
        total: specs.len() * config.recipes_per_design,
        written: 0,
        skipped: 0,
        quarantined: 0,
        interrupted: false,
    };
    for (design_idx, spec) in specs.iter().enumerate() {
        // Generated lazily: a fully recorded design costs no synthesis on
        // resume.
        let mut aig: Option<Aig> = None;
        for r in 0..config.recipes_per_design {
            let file = SampleRecord::file_name(spec.name, r);
            let clean = manifest_dir.join(&file);
            let quarantined = quarantine_dir.join(&file);
            // A record only counts as a resume hit when its *identity*
            // fields match the slot it sits in — a record renamed onto the
            // wrong path (or a filename collision) is treated like
            // corruption and rebuilt, never silently accepted.
            let identity_ok = |rec: &SampleRecord| rec.design == spec.name && rec.recipe_index == r;
            let clean_hit = read_record(&clean).filter(&identity_ok).is_some();
            let quarantine_hit = read_record(&quarantined).filter(&identity_ok).is_some();
            if clean_hit && quarantine_hit {
                return Err(QorBuildError::DuplicateSample {
                    design: spec.name.to_string(),
                    recipe_index: r,
                });
            }
            if clean_hit {
                report.skipped += 1;
                continue;
            }
            if quarantine_hit {
                report.skipped += 1;
                report.quarantined += 1;
                continue;
            }
            let aig = aig.get_or_insert_with(|| generate_ip(spec, config.scale_divisor));
            let mut faults = SynthFaultPlan::none();
            for f in &opts.faults {
                if f.design == spec.name && f.recipe_index == r {
                    faults = faults.inject(f.step, f.fault);
                }
            }
            let (sample, run) = synthesize_sample(aig, design_idx, config, spec.name, r, &faults)?;
            let incidents: Vec<String> = run.incidents().map(ToString::to_string).collect();
            let status = if run.is_clean() { SampleStatus::Ok } else { SampleStatus::Quarantined };
            let record = SampleRecord {
                design: spec.name.to_string(),
                recipe_index: r,
                seed: recipe_seed(config, spec.name, r),
                recipe: sample.recipe.to_string(),
                status,
                initial_ands: sample.initial_ands,
                final_ands: sample.final_ands,
                initial_depth: sample.initial_depth,
                final_depth: sample.final_depth,
                result_hash: fnv1a64(&crate::io::encode_aig(&run.result.aig)),
                lints: sample.lint_findings.clone(),
                incidents,
            };
            let dir = if status == SampleStatus::Ok { &manifest_dir } else { &quarantine_dir };
            write_record(dir, &record)?;
            report.written += 1;
            if status == SampleStatus::Quarantined {
                report.quarantined += 1;
            }
            if opts.stop_after.is_some_and(|n| report.written >= n) {
                report.interrupted = true;
                return Ok(report);
            }
        }
    }
    Ok(report)
}

/// Deterministically samples `count` distinct node indices (all nodes if
/// `count == 0` or `count >= n`).
fn sample_nodes(n: usize, count: usize, seed: u64) -> Vec<usize> {
    if count == 0 || count >= n {
        return (0..n).collect();
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut idx: Vec<usize> = (0..n).collect();
    // Partial Fisher-Yates.
    for i in 0..count {
        let j = rng.gen_range(i..n);
        idx.swap(i, j);
    }
    idx.truncate(count);
    idx.sort_unstable();
    idx
}

fn hash_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_dataset_builds_with_split() {
        let ds = build_qor_dataset(&QorDatasetConfig::tiny());
        assert!(!ds.designs.is_empty());
        assert!(!ds.train.is_empty());
        // Tiny config keeps only small designs; at least some train samples.
        for s in ds.train.iter().chain(&ds.test) {
            assert!(s.final_ands <= s.initial_ands, "synthesis grew the circuit");
            assert!(s.ratio() > 0.0 && s.ratio() <= 1.0);
            assert_eq!(s.recipe_encoding.len(), RECIPE_ENCODING_WIDTH);
        }
    }

    #[test]
    fn labels_vary_across_recipes() {
        let mut cfg = QorDatasetConfig::tiny();
        cfg.recipes_per_design = 6;
        let ds = build_qor_dataset(&cfg);
        // Across all designs and recipes there must be label diversity,
        // otherwise QoR prediction is vacuous.
        let mut ratios: Vec<f32> = ds.train.iter().map(QorSample::ratio).collect();
        ratios.dedup();
        assert!(ratios.len() > 1, "all ratios identical");
    }

    #[test]
    fn deterministic_rebuild() {
        let cfg = QorDatasetConfig::tiny();
        let a = build_qor_dataset(&cfg);
        let b = build_qor_dataset(&cfg);
        assert_eq!(a.train.len(), b.train.len());
        for (x, y) in a.train.iter().zip(&b.train) {
            assert_eq!(x.final_ands, y.final_ands);
            assert_eq!(x.recipe, y.recipe);
        }
    }

    #[test]
    fn pooled_nodes_are_valid_and_sorted() {
        let ds = build_qor_dataset(&QorDatasetConfig::tiny());
        for d in &ds.designs {
            assert!(!d.pooled_nodes.is_empty());
            assert!(d.pooled_nodes.windows(2).all(|w| w[0] < w[1]));
            assert!(*d.pooled_nodes.last().expect("non-empty") < d.aig.num_nodes());
        }
    }

    #[test]
    fn hop_features_have_expected_count() {
        let cfg = QorDatasetConfig::tiny();
        let ds = build_qor_dataset(&cfg);
        for d in &ds.designs {
            assert_eq!(d.hops.len(), cfg.num_hops + 1);
        }
    }

    fn sample_with(
        initial_ands: usize,
        final_ands: usize,
        i_depth: u32,
        f_depth: u32,
    ) -> QorSample {
        QorSample {
            design: 0,
            recipe: Recipe::default(),
            recipe_encoding: vec![0.0; RECIPE_ENCODING_WIDTH],
            initial_ands,
            final_ands,
            initial_depth: i_depth,
            final_depth: f_depth,
            lint_findings: Vec::new(),
        }
    }

    /// Regression: degenerate circuits (zero gates or zero depth before
    /// synthesis, or optimized down to constants) must never produce a
    /// zero, infinite, or NaN label — MAPE-style losses divide by it.
    #[test]
    fn ratio_clamps_degenerate_samples() {
        // Zero-gate / zero-depth design: neutral label, not NaN.
        let empty = sample_with(0, 0, 0, 0);
        assert_eq!(empty.ratio(), 1.0);
        assert_eq!(empty.depth_ratio(), 1.0);
        // Optimized to constants: floor, not zero.
        let collapsed = sample_with(100, 0, 9, 0);
        assert_eq!(collapsed.ratio(), RATIO_FLOOR);
        assert_eq!(collapsed.depth_ratio(), RATIO_FLOOR);
        // Absurd growth clamps to the ceiling.
        let blown_up = sample_with(1, 1_000_000, 1, 4_000_000);
        assert_eq!(blown_up.ratio(), RATIO_CEIL);
        assert_eq!(blown_up.depth_ratio(), RATIO_CEIL);
        // Ordinary samples are untouched by the clamp.
        let normal = sample_with(200, 150, 10, 8);
        assert!((normal.ratio() - 0.75).abs() < 1e-6);
        assert!((normal.depth_ratio() - 0.8).abs() < 1e-6);
        for s in [&empty, &collapsed, &blown_up, &normal] {
            assert!(s.ratio().is_finite() && s.ratio() > 0.0);
            assert!(s.depth_ratio().is_finite() && s.depth_ratio() > 0.0);
        }
    }

    #[test]
    fn generated_recipes_lint_without_errors_within_budget() {
        // tiny() keeps recipes within the step budget, so the only
        // findings random recipes can carry are redundant-balance
        // warnings — never parse errors or budget violations.
        let ds = build_qor_dataset(&QorDatasetConfig::tiny());
        for s in ds.train.iter().chain(&ds.test) {
            for l in &s.lint_findings {
                assert!(l.contains("redundant consecutive"), "unexpected finding: {l}");
            }
        }
    }

    #[test]
    fn over_budget_recipes_surface_lint_findings() {
        let mut cfg = QorDatasetConfig::tiny();
        cfg.recipes_per_design = 1;
        cfg.recipe_len = hoga_synth::STEP_BUDGET + 1;
        // Restrict to the smallest designs to keep 21 passes cheap.
        cfg.max_scaled_nodes = 400;
        let ds = build_qor_dataset(&cfg);
        assert!(!ds.train.is_empty() || !ds.test.is_empty());
        for s in ds.train.iter().chain(&ds.test) {
            assert!(
                s.lint_findings.iter().any(|l| l.contains("exceeding")),
                "step-budget finding missing: {:?}",
                s.lint_findings
            );
        }
    }
}
