//! Seeded shuffling and minibatch iteration.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Yields index minibatches of size `batch_size` over `n` items, shuffled
/// deterministically per `(seed, epoch)`.
///
/// The final batch may be smaller. `batch_size == 0` yields a single batch
/// with everything.
///
/// # Examples
///
/// ```
/// use hoga_datasets::splits::minibatches;
///
/// let batches = minibatches(10, 4, 7, 0);
/// assert_eq!(batches.iter().map(Vec::len).sum::<usize>(), 10);
/// assert_eq!(batches.len(), 3);
/// // Same epoch, same order; next epoch differs.
/// assert_eq!(batches, minibatches(10, 4, 7, 0));
/// assert_ne!(batches, minibatches(10, 4, 7, 1));
/// ```
pub fn minibatches(n: usize, batch_size: usize, seed: u64, epoch: u64) -> Vec<Vec<usize>> {
    let mut idx: Vec<usize> = (0..n).collect();
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ epoch.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    idx.shuffle(&mut rng);
    if batch_size == 0 || batch_size >= n {
        return vec![idx];
    }
    idx.chunks(batch_size).map(<[usize]>::to_vec).collect()
}

/// Splits `n` items into `parts` nearly equal contiguous shards (for
/// data-parallel workers). Earlier shards get the remainder.
///
/// # Panics
///
/// Panics if `parts == 0`.
pub fn shard_ranges(n: usize, parts: usize) -> Vec<(usize, usize)> {
    assert!(parts > 0, "need at least one shard");
    let base = n / parts;
    let rem = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let len = base + usize::from(p < rem);
        out.push((start, start + len));
        start += len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minibatches_cover_everything_once() {
        let batches = minibatches(23, 5, 1, 3);
        let mut all: Vec<usize> = batches.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..23).collect::<Vec<_>>());
    }

    #[test]
    fn zero_batch_size_is_full_batch() {
        let batches = minibatches(9, 0, 1, 0);
        assert_eq!(batches.len(), 1);
        assert_eq!(batches[0].len(), 9);
    }

    #[test]
    fn shards_partition_range() {
        for (n, parts) in [(10, 3), (7, 7), (5, 8), (0, 2)] {
            let shards = shard_ranges(n, parts);
            assert_eq!(shards.len(), parts);
            let total: usize = shards.iter().map(|(a, b)| b - a).sum();
            assert_eq!(total, n);
            for w in shards.windows(2) {
                assert_eq!(w[0].1, w[1].0, "shards must be contiguous");
            }
        }
    }

    #[test]
    fn shard_sizes_differ_by_at_most_one() {
        let shards = shard_ranges(11, 4);
        let sizes: Vec<usize> = shards.iter().map(|(a, b)| b - a).collect();
        let max = sizes.iter().max().expect("non-empty");
        let min = sizes.iter().min().expect("non-empty");
        assert!(max - min <= 1);
    }
}
