//! Dataset builders for the HOGA experiments.
//!
//! * [`openabcd`] — the synthetic OpenABC-D QoR benchmark: 29 designs
//!   (Table 1, scaled), `R` random synthesis recipes per design run through
//!   the `hoga-synth` simulator, yielding `(design, recipe) → optimized
//!   gate count` regression samples with the paper's 20-train / 9-test
//!   design split.
//! * [`gamora`] — the functional-reasoning benchmark: CSA/Booth multipliers
//!   (optionally technology-mapped) with 4-class node labels from the
//!   `hoga-gen` labeler; train on the 8-bit design, evaluate on larger
//!   bitwidths, exactly the paper's hardest setting.
//! * [`splits`] — seeded minibatch iteration helpers.
//! * [`io`] — compact binary (de)serialization so generated datasets can be
//!   cached on disk.
//! * [`manifest`] — CRC-checked per-sample records backing the resumable
//!   QoR sweep ([`openabcd::build_qor_dataset_resumable`]): atomic writes,
//!   skip-on-resume, and a quarantine directory for guard incidents.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gamora;
pub mod io;
pub mod manifest;
pub mod openabcd;
pub mod splits;
