//! Tape-free inference entry points with selectable numeric precision.
//!
//! Training goes through [`crate::model::HogaModel::forward`], which records
//! every op on an autograd tape. Deployment-style scoring needs none of
//! that bookkeeping, so this module re-runs the identical mathematical
//! pipeline directly on [`Matrix`] values at one of three precisions:
//!
//! * [`Precision::Exact`] — replays the tape ops verbatim (same kernels,
//!   same order), so the representations are **bitwise identical** to
//!   `forward`'s. This is the oracle the differential tests pin the other
//!   modes against.
//! * [`Precision::Fast`] — routes the matmul family through the `*_fast`
//!   kernels (fused multiply-add, lane-parallel reductions) and the
//!   softmax/LayerNorm rows through their fast variants. Results carry the
//!   documented ULP-level bound of `docs/PERFORMANCE.md` instead of bit
//!   equality.
//! * [`Precision::Int8`] — quantizes activations per row and weights per
//!   column ([`hoga_tensor::QuantizedMatrix`] /
//!   [`hoga_tensor::QuantizedWeights`]), runs every hidden projection as an
//!   `i8×i8→i32` product, and dequantizes before the nonlinearities. The
//!   hop stack is quantized **once per layer** and shared by all four
//!   (×heads) projections. The tiny readout (`α` scoring, softmax,
//!   weighted hop sum) stays in f32 — see [`Int8Plan`].
//!
//! Weights quantize once per model via [`HogaModel::int8_plan`]; reusing a
//! plan across calls is deterministic (bitwise-identical outputs for
//! identical inputs).

use crate::model::{Aggregator, HogaModel};
use hoga_autograd::ParamId;
use hoga_tensor::{
    layernorm_forward, layernorm_rows_fast, qmatmul, softmax_rows, softmax_rows_fast, Matrix,
    QuantizedMatrix, QuantizedWeights,
};
use std::error::Error;
use std::fmt;

/// Typed shape/plan mismatch from the fallible inference entry points
/// ([`HogaModel::try_infer`] / [`HogaModel::try_infer_int8`]). The serving
/// layer maps these to HTTP 4xx instead of unwinding a worker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InferError {
    /// `hop_stack.rows() != batch * (num_hops + 1)`.
    HopStackRows {
        /// Rows the model geometry requires for the claimed batch.
        expect: usize,
        /// Rows the hop stack actually has.
        got: usize,
    },
    /// `hop_stack.cols() != input_dim`.
    FeatureWidth {
        /// The model's input feature dimension.
        expect: usize,
        /// Columns the hop stack actually has.
        got: usize,
    },
    /// [`Precision::Int8`] passed to [`HogaModel::try_infer`]: int8 needs a
    /// prebuilt [`Int8Plan`] so the quantization cost is explicit.
    NeedsInt8Plan,
    /// The [`Int8Plan`] was built for a model with different geometry.
    PlanGeometry {
        /// Human-readable description of the first mismatch found.
        detail: String,
    },
}

impl fmt::Display for InferError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::HopStackRows { expect, got } => {
                write!(f, "hop stack row mismatch: expected {expect} rows, got {got}")
            }
            Self::FeatureWidth { expect, got } => {
                write!(f, "feature width mismatch: expected {expect} cols, got {got}")
            }
            Self::NeedsInt8Plan => {
                write!(f, "int8 inference needs a weight plan: use int8_plan() + try_infer_int8()")
            }
            Self::PlanGeometry { detail } => write!(f, "int8 plan geometry mismatch: {detail}"),
        }
    }
}

impl Error for InferError {}

/// Resolved numeric mode for one `infer_impl` call: `Int8` has already
/// been paired with its validated plan, so the hot path carries no
/// `Option` to unwrap.
#[derive(Clone, Copy)]
enum Mode<'a> {
    Exact,
    Fast,
    Int8(&'a Int8Plan),
}

impl Mode<'_> {
    fn is_exact(&self) -> bool {
        matches!(self, Mode::Exact)
    }
}

/// Numeric contract of an inference pass; see the [module docs](self).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Precision {
    /// Bitwise-identical replay of the training forward pass.
    Exact,
    /// Fused/lane-parallel f32 kernels, ULP-bounded against `Exact`.
    Fast,
    /// Row-quantized int8 projections, dequantized at each nonlinearity.
    Int8,
}

/// Outputs of an inference pass (the tape-free analogue of
/// [`crate::model::HogaOutput`]).
#[derive(Debug, Clone)]
pub struct InferOutput {
    /// Final node representations `Y`, shape `(batch, hidden_dim)`.
    pub representations: Matrix,
    /// Readout attention scores `cₖ`, shape `(batch, K)`; `None` for the
    /// [`Aggregator::Sum`] ablation.
    pub readout_scores: Option<Matrix>,
}

/// Per-head int8 weights.
struct Int8Head {
    wq: QuantizedWeights,
    wk: QuantizedWeights,
    wu: QuantizedWeights,
    wv: QuantizedWeights,
}

/// Per-layer int8 weights (LayerNorm's `γ`/`β` stay f32).
struct Int8Layer {
    heads: Vec<Int8Head>,
}

/// Column-quantized copies of every projection weight, built once per model
/// by [`HogaModel::int8_plan`] and reused across [`HogaModel::infer_int8`]
/// calls.
///
/// Only the hidden projections (`W_in`, `W_Q`, `W_K`, `W_U`, `W_V`) are
/// quantized: they dominate the MAC count. Biases, LayerNorm parameters and
/// the readout vector `α` remain f32 — the readout is a `(B·K) × 2d` by
/// `2d × 1` product, far too small to be worth the accuracy loss.
pub struct Int8Plan {
    w_in: QuantizedWeights,
    layers: Vec<Int8Layer>,
}

impl HogaModel {
    /// Quantizes the projection weights for [`Precision::Int8`] inference.
    ///
    /// Deterministic: the plan is a pure function of the current parameter
    /// values, so building it twice yields identical quantized tensors.
    pub fn int8_plan(&self) -> Int8Plan {
        let qw = |id: ParamId| QuantizedWeights::quantize(self.params.value(id));
        Int8Plan {
            w_in: qw(self.w_in),
            layers: self
                .layers
                .iter()
                .map(|layer| Int8Layer {
                    heads: layer
                        .heads
                        .iter()
                        .map(|h| Int8Head {
                            wq: qw(h.wq),
                            wk: qw(h.wk),
                            wu: qw(h.wu),
                            wv: qw(h.wv),
                        })
                        .collect(),
                })
                .collect(),
        }
    }

    /// Tape-free forward pass at the requested f32 precision.
    ///
    /// `Precision::Exact` is bitwise identical to
    /// [`HogaModel::forward`][crate::model::HogaModel::forward];
    /// `Precision::Fast` is ULP-bounded against it. For
    /// [`Precision::Int8`], build a plan with [`HogaModel::int8_plan`] and
    /// call [`HogaModel::infer_int8`] (this method panics on `Int8` to keep
    /// the weight-quantization cost explicit at the call site).
    ///
    /// # Panics
    ///
    /// Panics under the same shape conditions as `forward`, or if
    /// `precision` is [`Precision::Int8`]. Long-lived callers (the serving
    /// layer) use [`HogaModel::try_infer`] instead.
    pub fn infer(&self, hop_stack: &Matrix, batch: usize, precision: Precision) -> InferOutput {
        match self.try_infer(hop_stack, batch, precision) {
            Ok(out) => out,
            // analyze: allow(panic-free-paths) — documented panicking wrapper; fallible callers use try_infer
            Err(e) => panic!("infer: {e}"),
        }
    }

    /// Fallible [`HogaModel::infer`]: validates shapes up front and returns
    /// a typed [`InferError`] instead of panicking.
    ///
    /// # Errors
    ///
    /// [`InferError::NeedsInt8Plan`] for [`Precision::Int8`] (use
    /// [`HogaModel::try_infer_int8`]); the shape variants when the hop
    /// stack disagrees with the model geometry.
    pub fn try_infer(
        &self,
        hop_stack: &Matrix,
        batch: usize,
        precision: Precision,
    ) -> Result<InferOutput, InferError> {
        let mode = match precision {
            Precision::Exact => Mode::Exact,
            Precision::Fast => Mode::Fast,
            Precision::Int8 => return Err(InferError::NeedsInt8Plan),
        };
        self.check_shapes(hop_stack, batch)?;
        Ok(self.infer_impl(hop_stack, batch, mode))
    }

    /// Tape-free int8 forward pass using a prebuilt [`Int8Plan`].
    ///
    /// # Panics
    ///
    /// Panics under the same shape conditions as
    /// [`HogaModel::forward`][crate::model::HogaModel::forward]. Long-lived
    /// callers use [`HogaModel::try_infer_int8`] instead.
    pub fn infer_int8(&self, plan: &Int8Plan, hop_stack: &Matrix, batch: usize) -> InferOutput {
        match self.try_infer_int8(plan, hop_stack, batch) {
            Ok(out) => out,
            // analyze: allow(panic-free-paths) — documented panicking wrapper; fallible callers use try_infer_int8
            Err(e) => panic!("infer_int8: {e}"),
        }
    }

    /// Fallible [`HogaModel::infer_int8`]: validates the hop-stack shapes
    /// and the plan geometry (layer/head counts and projection dimensions)
    /// up front, so the hot loop below indexes the plan without any
    /// reachable panic.
    ///
    /// # Errors
    ///
    /// The [`InferError`] shape variants, or
    /// [`InferError::PlanGeometry`] when `plan` was built for a different
    /// model.
    pub fn try_infer_int8(
        &self,
        plan: &Int8Plan,
        hop_stack: &Matrix,
        batch: usize,
    ) -> Result<InferOutput, InferError> {
        self.check_shapes(hop_stack, batch)?;
        self.check_plan(plan)?;
        Ok(self.infer_impl(hop_stack, batch, Mode::Int8(plan)))
    }

    fn check_shapes(&self, hop_stack: &Matrix, batch: usize) -> Result<(), InferError> {
        let k1 = self.config.num_hops + 1;
        if hop_stack.rows() != batch * k1 {
            return Err(InferError::HopStackRows { expect: batch * k1, got: hop_stack.rows() });
        }
        if hop_stack.cols() != self.config.input_dim {
            return Err(InferError::FeatureWidth {
                expect: self.config.input_dim,
                got: hop_stack.cols(),
            });
        }
        Ok(())
    }

    /// Every plan index and dimension used by `infer_impl` is checked here,
    /// which is what makes the int8 hot loop panic-free for validated
    /// inputs.
    fn check_plan(&self, plan: &Int8Plan) -> Result<(), InferError> {
        let geom = |detail: String| InferError::PlanGeometry { detail };
        if plan.w_in.k() != self.config.input_dim {
            return Err(geom(format!(
                "w_in expects {} input features, model has {}",
                plan.w_in.k(),
                self.config.input_dim
            )));
        }
        if plan.layers.len() != self.layers.len() {
            return Err(geom(format!(
                "plan has {} layers, model has {}",
                plan.layers.len(),
                self.layers.len()
            )));
        }
        for (li, (pl, ml)) in plan.layers.iter().zip(&self.layers).enumerate() {
            if pl.heads.len() != ml.heads.len() {
                return Err(geom(format!(
                    "layer {li}: plan has {} heads, model has {}",
                    pl.heads.len(),
                    ml.heads.len()
                )));
            }
            let head_dim = self.config.hidden_dim / self.config.num_heads.max(1);
            for (hi, ph) in pl.heads.iter().enumerate() {
                for (name, w) in [("wq", &ph.wq), ("wk", &ph.wk), ("wu", &ph.wu), ("wv", &ph.wv)] {
                    if w.k() != self.config.hidden_dim || w.n() != head_dim {
                        return Err(geom(format!(
                            "layer {li} head {hi} {name}: plan is {}x{}, model needs {}x{}",
                            w.k(),
                            w.n(),
                            self.config.hidden_dim,
                            head_dim
                        )));
                    }
                }
            }
        }
        Ok(())
    }

    fn infer_impl(&self, hop_stack: &Matrix, batch: usize, mode: Mode<'_>) -> InferOutput {
        let k1 = self.config.num_hops + 1;
        let k = self.config.num_hops;

        let value = |id: ParamId| self.params.value(id);

        // Input projection H = X W_in + b_in. Int8 quantizes the raw hop
        // stack once and projects in integer arithmetic.
        let mut h = match mode {
            Mode::Exact => hop_stack.matmul(value(self.w_in)),
            Mode::Fast => hop_stack.matmul_fast(value(self.w_in)),
            Mode::Int8(plan) => qmatmul(&QuantizedMatrix::quantize(hop_stack), &plan.w_in),
        };
        add_bias_rows(&mut h, value(self.b_in));

        // Gated self-attention stack (Eqs. 5-9), mirroring forward_var.
        if self.config.aggregator != Aggregator::Sum {
            for (li, layer) in self.layers.iter().enumerate() {
                // Int8: quantize the layer input once; all per-head
                // projections share the same quantized activations.
                let qh = match mode {
                    Mode::Int8(_) => Some(QuantizedMatrix::quantize(&h)),
                    _ => None,
                };
                let project =
                    |w: ParamId, qw: fn(&Int8Head) -> &QuantizedWeights, hi: usize| match mode {
                        Mode::Exact => h.matmul(value(w)),
                        Mode::Fast => h.matmul_fast(value(w)),
                        Mode::Int8(plan) => match (plan.layers.get(li), qh.as_ref()) {
                            // check_plan proved the geometry; an absent
                            // entry reduces to the f32 path rather than
                            // introducing a panic site.
                            (Some(pl), Some(q)) => match pl.heads.get(hi) {
                                Some(head) => qmatmul(q, qw(head)),
                                None => h.matmul(value(w)),
                            },
                            _ => h.matmul(value(w)),
                        },
                    };
                let mut head_outputs = Vec::with_capacity(layer.heads.len());
                for (hi, head) in layer.heads.iter().enumerate() {
                    let u = project(head.wu, |p| &p.wu, hi);
                    let v = project(head.wv, |p| &p.wv, hi);
                    let gated = match self.config.aggregator {
                        Aggregator::GatedSelfAttention => {
                            let q = project(head.wq, |p| &p.wq, hi);
                            let kk = project(head.wk, |p| &p.wk, hi);
                            // Attention itself stays f32 in every mode: the
                            // score tile is (K+1)², a rounding-sensitive
                            // softmax input and a negligible MAC share.
                            let (logits, s, sv);
                            if mode.is_exact() {
                                logits = q.batched_matmul_nt(&kk, batch);
                                s = softmax_rows(&logits);
                                sv = s.batched_matmul(&v, batch);
                            } else {
                                logits = q.batched_matmul_nt_fast(&kk, batch);
                                s = softmax_rows_fast(&logits);
                                sv = s.batched_matmul_fast(&v, batch);
                            }
                            u.hadamard(&sv)
                        }
                        // GateOnly gates without attention; Sum never
                        // enters this loop (guarded above), so the gate
                        // expression is the only non-attention shape.
                        Aggregator::GateOnly | Aggregator::Sum => u.hadamard(&v),
                    };
                    head_outputs.push(gated);
                }
                let mut cat = head_outputs[0].clone();
                for ho in &head_outputs[1..] {
                    cat = cat.concat_cols(ho);
                }
                let gamma = value(layer.gamma);
                let beta = value(layer.beta);
                let normed = if mode.is_exact() {
                    layernorm_forward(&cat, gamma.row(0), beta.row(0)).0
                } else {
                    layernorm_rows_fast(&cat, gamma.row(0), beta.row(0))
                };
                h = normed.map(|a| a.max(0.0));
            }
        }

        // Readout (Eq. 10), always f32 — Int8 dequantized above.
        let idx0: Vec<usize> = (0..batch).map(|b| b * k1).collect();
        let h0 = h.select_rows(&idx0);
        if self.config.aggregator == Aggregator::Sum {
            let mut y = h0;
            for hop in 1..k1 {
                let idx: Vec<usize> = (0..batch).map(|b| b * k1 + hop).collect();
                y = &y + &h.select_rows(&idx);
            }
            return InferOutput { representations: y, readout_scores: None };
        }

        let idx0_rep: Vec<usize> =
            (0..batch).flat_map(|b| std::iter::repeat_n(b * k1, k)).collect();
        let idx_rest: Vec<usize> =
            (0..batch).flat_map(|b| (1..k1).map(move |hop| b * k1 + hop)).collect();
        let h0_rep = h.select_rows(&idx0_rep);
        let h_rest = h.select_rows(&idx_rest);
        let cat = h0_rep.concat_cols(&h_rest);
        let alpha = value(self.alpha);
        let (scores, weighted);
        if mode.is_exact() {
            let logits_flat = cat.matmul(alpha);
            let logits = Matrix::from_vec(batch, k, logits_flat.as_slice().to_vec());
            scores = softmax_rows(&logits);
            weighted = scores.batched_matmul(&h_rest, batch);
        } else {
            let logits_flat = cat.matmul_fast(alpha);
            let logits = Matrix::from_vec(batch, k, logits_flat.as_slice().to_vec());
            scores = softmax_rows_fast(&logits);
            weighted = scores.batched_matmul_fast(&h_rest, batch);
        }
        let y = &h0 + &weighted;
        InferOutput { representations: y, readout_scores: Some(scores) }
    }
}

/// Adds a `1 × d` bias row to every row of `x`, in the same element order
/// as the tape's `add_bias` (required for the `Exact` bitwise contract).
fn add_bias_rows(x: &mut Matrix, bias: &Matrix) {
    assert_eq!(bias.rows(), 1, "bias must be a row vector");
    assert_eq!(bias.cols(), x.cols(), "bias width mismatch");
    for r in 0..x.rows() {
        for (o, &b) in x.row_mut(r).iter_mut().zip(bias.row(0)) {
            *o += b;
        }
    }
}
