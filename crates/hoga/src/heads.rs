//! Task heads on top of HOGA (or baseline) node representations.
//!
//! The paper keeps the surrounding task pipelines of OpenABC-D and Gamora
//! and only swaps the representation model (Figure 3). These heads mirror
//! those pipelines: a linear node classifier for functional reasoning, and
//! a pooled MLP regressor for graph-level QoR prediction.

use hoga_autograd::{ParamId, ParamSet, Tape, Var};
use hoga_tensor::{Init, Matrix};
use std::error::Error;
use std::fmt;

/// Typed shape mismatch from the tape-free head entry point
/// ([`GraphRegressor::infer`]); the serving layer maps it to a request
/// error instead of unwinding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeadShapeError {
    /// Input width the head was constructed for.
    pub expect: usize,
    /// Width of the matrix actually passed.
    pub got: usize,
}

impl fmt::Display for HeadShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "head input width mismatch: head expects {}, got {}", self.expect, self.got)
    }
}

impl Error for HeadShapeError {}

/// Linear per-node classifier (the Gamora pipeline's output stage).
#[derive(Debug, Clone, Copy)]
pub struct NodeClassifier {
    w: ParamId,
    b: ParamId,
    /// Number of classes.
    pub num_classes: usize,
}

impl NodeClassifier {
    /// Registers classifier parameters in `params`.
    pub fn new(params: &mut ParamSet, in_dim: usize, num_classes: usize, seed: u64) -> Self {
        let w = params.add("cls.w", Init::XavierUniform.matrix(in_dim, num_classes, seed));
        let b = params.add("cls.b", Init::Zeros.matrix(1, num_classes, seed ^ 1));
        Self { w, b, num_classes }
    }

    /// Produces `(batch, num_classes)` logits from node representations.
    pub fn logits(&self, tape: &mut Tape, params: &ParamSet, reps: Var) -> Var {
        let w = tape.param(params, self.w);
        let b = tape.param(params, self.b);
        let z = tape.matmul(reps, w);
        tape.add_bias(z, b)
    }
}

/// Graph-level regression head: mean-pool node representations per graph,
/// then a two-layer MLP to a scalar (the OpenABC-D pipeline's output stage).
#[derive(Debug, Clone, Copy)]
pub struct GraphRegressor {
    w1: ParamId,
    b1: ParamId,
    w2: ParamId,
    b2: ParamId,
}

impl GraphRegressor {
    /// Registers regressor parameters in `params`.
    pub fn new(params: &mut ParamSet, in_dim: usize, hidden: usize, seed: u64) -> Self {
        Self {
            w1: params.add("reg.w1", Init::XavierUniform.matrix(in_dim, hidden, seed)),
            b1: params.add("reg.b1", Init::Zeros.matrix(1, hidden, seed ^ 1)),
            w2: params.add("reg.w2", Init::XavierUniform.matrix(hidden, 1, seed ^ 2)),
            b2: params.add("reg.b2", Init::Zeros.matrix(1, 1, seed ^ 3)),
        }
    }

    /// Predicts one scalar per graph.
    ///
    /// `segments[g]` is the contiguous row range of graph `g`'s nodes inside
    /// `reps`. Returns a `(num_graphs, 1)` variable.
    pub fn predict(
        &self,
        tape: &mut Tape,
        params: &ParamSet,
        reps: Var,
        segments: Vec<(usize, usize)>,
    ) -> Var {
        let pooled = tape.segment_reduce(reps, segments, true);
        self.mlp(tape, params, pooled)
    }

    /// Like [`GraphRegressor::predict`] but concatenates per-graph side
    /// information (e.g. the encoded synthesis recipe, following the
    /// OpenABC-D pipeline) to the pooled embedding before the MLP.
    ///
    /// `extra` must be `(num_graphs, e)` and the head must have been
    /// constructed with `in_dim = rep_dim + e`.
    ///
    /// # Panics
    ///
    /// Panics if `extra.rows() != segments.len()`.
    pub fn predict_with_extra(
        &self,
        tape: &mut Tape,
        params: &ParamSet,
        reps: Var,
        segments: Vec<(usize, usize)>,
        extra: &hoga_tensor::Matrix,
    ) -> Var {
        assert_eq!(extra.rows(), segments.len(), "one extra row per graph required");
        let pooled = tape.segment_reduce(reps, segments, true);
        let extra_v = tape.constant(extra.clone());
        let cat = tape.concat_cols(pooled, extra_v);
        self.mlp(tape, params, cat)
    }

    /// Tape-free scoring for the serving path: the same two-layer MLP as
    /// [`GraphRegressor::predict_with_extra`], run directly on [`Matrix`]
    /// values. `pooled_with_extra` is the mean-pooled graph embedding with
    /// any side information (encoded recipe) already concatenated, one row
    /// per graph; the result is `(rows, 1)` scores.
    ///
    /// Uses the exact-precision kernels in the same op order as the tape
    /// path, so scores are bitwise identical to
    /// [`GraphRegressor::predict_with_extra`] for equal inputs — the
    /// serving layer's byte-identical-response guarantee rests on this.
    ///
    /// # Errors
    ///
    /// [`HeadShapeError`] when the input width disagrees with the width the
    /// head was constructed for (never panics: this sits on the server's
    /// request path).
    pub fn infer(
        &self,
        params: &ParamSet,
        pooled_with_extra: &Matrix,
    ) -> Result<Matrix, HeadShapeError> {
        let w1 = params.value(self.w1);
        if pooled_with_extra.cols() != w1.rows() {
            return Err(HeadShapeError { expect: w1.rows(), got: pooled_with_extra.cols() });
        }
        let mut h = pooled_with_extra.matmul(w1);
        add_bias_rows(&mut h, params.value(self.b1));
        let h = h.map(|a| a.max(0.0));
        let mut out = h.matmul(params.value(self.w2));
        add_bias_rows(&mut out, params.value(self.b2));
        Ok(out)
    }

    fn mlp(&self, tape: &mut Tape, params: &ParamSet, pooled: Var) -> Var {
        let w1 = tape.param(params, self.w1);
        let b1 = tape.param(params, self.b1);
        let h = tape.matmul(pooled, w1);
        let h = tape.add_bias(h, b1);
        let h = tape.relu(h);
        let w2 = tape.param(params, self.w2);
        let b2 = tape.param(params, self.b2);
        let out = tape.matmul(h, w2);
        tape.add_bias(out, b2)
    }
}

/// Adds a `1 × d` bias row to every row of `x` in the tape's `add_bias`
/// element order — bitwise parity with the tape head depends on it. Widths
/// are guaranteed by the callers' shape checks (`zip` bounds the loop).
fn add_bias_rows(x: &mut Matrix, bias: &Matrix) {
    for r in 0..x.rows() {
        for (o, &b) in x.row_mut(r).iter_mut().zip(bias.row(0)) {
            *o += b;
        }
    }
}

/// Graph-level classification head: mean-pool node representations per
/// graph, then a two-layer MLP to class logits. Used by the design-category
/// classification example (an extra task beyond the paper, demonstrating
/// that HOGA embeddings carry design-family information).
#[derive(Debug, Clone, Copy)]
pub struct GraphClassifier {
    w1: ParamId,
    b1: ParamId,
    w2: ParamId,
    b2: ParamId,
    /// Number of classes.
    pub num_classes: usize,
}

impl GraphClassifier {
    /// Registers classifier parameters in `params`.
    pub fn new(
        params: &mut ParamSet,
        in_dim: usize,
        hidden: usize,
        num_classes: usize,
        seed: u64,
    ) -> Self {
        Self {
            w1: params.add("gcls.w1", Init::XavierUniform.matrix(in_dim, hidden, seed)),
            b1: params.add("gcls.b1", Init::Zeros.matrix(1, hidden, seed ^ 1)),
            w2: params.add("gcls.w2", Init::XavierUniform.matrix(hidden, num_classes, seed ^ 2)),
            b2: params.add("gcls.b2", Init::Zeros.matrix(1, num_classes, seed ^ 3)),
            num_classes,
        }
    }

    /// Produces `(num_graphs, num_classes)` logits; `segments[g]` is the
    /// contiguous row range of graph `g`'s nodes inside `reps`.
    pub fn logits(
        &self,
        tape: &mut Tape,
        params: &ParamSet,
        reps: Var,
        segments: Vec<(usize, usize)>,
    ) -> Var {
        let pooled = tape.segment_reduce(reps, segments, true);
        let w1 = tape.param(params, self.w1);
        let b1 = tape.param(params, self.b1);
        let h = tape.matmul(pooled, w1);
        let h = tape.add_bias(h, b1);
        let h = tape.relu(h);
        let w2 = tape.param(params, self.w2);
        let b2 = tape.param(params, self.b2);
        let z = tape.matmul(h, w2);
        tape.add_bias(z, b2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hoga_autograd::optim::{Adam, Optimizer};
    use hoga_tensor::Matrix;

    #[test]
    fn classifier_shapes_and_training() {
        let mut params = ParamSet::new();
        let cls = NodeClassifier::new(&mut params, 6, 4, 0);
        let reps_data = Init::SmallUniform.matrix(10, 6, 1);
        // Labels follow a linear rule so the classifier can fit them.
        let labels: Vec<usize> = (0..10).map(|i| i % 4).collect();
        let mut opt = Adam::new(5e-2);
        let mut last = f32::MAX;
        for _ in 0..200 {
            let mut tape = Tape::new();
            let reps = tape.constant(reps_data.clone());
            let logits = cls.logits(&mut tape, &params, reps);
            assert_eq!(tape.value(logits).shape(), (10, 4));
            let loss = tape.cross_entropy_mean(logits, &labels);
            last = tape.value(loss)[(0, 0)];
            let grads = tape.backward(loss);
            opt.step(&mut params, &grads);
        }
        // A linear head on 10 random points is not perfectly separable;
        // require a clear drop below the ln(4) ≈ 1.386 uniform baseline.
        assert!(last < 1.0, "classifier failed to fit memorizable labels: {last}");
    }

    #[test]
    fn regressor_pools_and_predicts_per_graph() {
        let mut params = ParamSet::new();
        let reg = GraphRegressor::new(&mut params, 4, 8, 2);
        let reps_data = Matrix::from_fn(7, 4, |r, c| (r + c) as f32 * 0.1);
        let mut tape = Tape::new();
        let reps = tape.constant(reps_data);
        let pred = reg.predict(&mut tape, &params, reps, vec![(0, 3), (3, 7)]);
        assert_eq!(tape.value(pred).shape(), (2, 1));
        assert!(tape.value(pred).is_finite());
    }

    #[test]
    fn graph_classifier_separates_pooled_means() {
        let mut params = ParamSet::new();
        let cls = GraphClassifier::new(&mut params, 3, 8, 2, 9);
        // Two graph populations with distinct pooled means.
        let reps_data = Matrix::from_fn(12, 3, |r, _| if (r / 3) % 2 == 0 { 0.4 } else { -0.4 });
        let segments: Vec<(usize, usize)> = (0..4).map(|g| (g * 3, (g + 1) * 3)).collect();
        let labels = vec![0usize, 1, 0, 1];
        let mut opt = Adam::new(2e-2);
        let mut last = f32::MAX;
        for _ in 0..120 {
            let mut tape = Tape::new();
            let reps = tape.constant(reps_data.clone());
            let logits = cls.logits(&mut tape, &params, reps, segments.clone());
            assert_eq!(tape.value(logits).shape(), (4, 2));
            let loss = tape.cross_entropy_mean(logits, &labels);
            last = tape.value(loss)[(0, 0)];
            let grads = tape.backward(loss);
            opt.step(&mut params, &grads);
        }
        assert!(last < 0.1, "graph classifier failed to separate: {last}");
    }

    #[test]
    fn tape_free_head_matches_tape_head_bitwise() {
        let mut params = ParamSet::new();
        let reg = GraphRegressor::new(&mut params, 4 + 2, 8, 6);
        let reps_data = Matrix::from_fn(6, 4, |r, c| ((r * 3 + c) as f32).sin() * 0.3);
        let extra = Matrix::from_fn(2, 2, |r, c| (r + c) as f32 * 0.5 - 0.4);
        let segments = vec![(0usize, 3usize), (3, 6)];
        let mut tape = Tape::new();
        let reps = tape.constant(reps_data.clone());
        let pred = reg.predict_with_extra(&mut tape, &params, reps, segments.clone(), &extra);
        let want = tape.value(pred).clone();
        // Mean-pool by hand, concat extra, run the tape-free MLP.
        let mut pooled = Matrix::zeros(2, 6);
        for (g, &(lo, hi)) in segments.iter().enumerate() {
            // Multiply by the reciprocal, exactly like tape.segment_reduce,
            // so the bitwise comparison below is fair.
            let inv = 1.0 / (hi - lo) as f32;
            for c in 0..4 {
                let s: f32 = (lo..hi).map(|r| reps_data[(r, c)]).sum();
                pooled[(g, c)] = s * inv;
            }
            for c in 0..2 {
                pooled[(g, 4 + c)] = extra[(g, c)];
            }
        }
        let got = reg.infer(&params, &pooled).expect("widths agree");
        assert_eq!(want.shape(), got.shape());
        let want_bits: Vec<u32> = want.as_slice().iter().map(|v| v.to_bits()).collect();
        let got_bits: Vec<u32> = got.as_slice().iter().map(|v| v.to_bits()).collect();
        assert_eq!(want_bits, got_bits, "tape-free head drifted from the tape head");
    }

    #[test]
    fn tape_free_head_rejects_wrong_width() {
        let mut params = ParamSet::new();
        let reg = GraphRegressor::new(&mut params, 5, 8, 7);
        let wrong = Matrix::zeros(2, 4);
        assert_eq!(reg.infer(&params, &wrong), Err(HeadShapeError { expect: 5, got: 4 }));
    }

    #[test]
    fn regressor_fits_mean_feature_target() {
        let mut params = ParamSet::new();
        let reg = GraphRegressor::new(&mut params, 3, 8, 4);
        // Two graphs with controllable means.
        let reps_data = Matrix::from_fn(8, 3, |r, _| if r < 4 { 0.2 } else { -0.4 });
        let target = Matrix::from_rows(&[&[1.0], &[-1.0]]);
        let mut opt = Adam::new(1e-2);
        let mut last = f32::MAX;
        for _ in 0..150 {
            let mut tape = Tape::new();
            let reps = tape.constant(reps_data.clone());
            let pred = reg.predict(&mut tape, &params, reps, vec![(0, 4), (4, 8)]);
            let loss = tape.mse_loss(pred, &target);
            last = tape.value(loss)[(0, 0)];
            let grads = tape.backward(loss);
            opt.step(&mut params, &grads);
        }
        assert!(last < 1e-2, "regressor failed to fit: {last}");
    }
}
