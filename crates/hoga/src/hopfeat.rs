//! Phase 1 of HOGA: hop-wise feature generation (Eq. 3 of the paper).
//!
//! Given the normalized adjacency `Â` and node features `X`, the hop
//! features are `X^(0) = X` and `X^(k) = Â X^(k-1)` for `k = 1..K`. This is
//! a pure precomputation — it runs once per graph, before training, and the
//! paper reports it takes minutes against hours of training (§IV-B; our
//! Figure-5 bench reproduces the ratio).

use hoga_tensor::{CsrMatrix, Matrix};

/// Computes the `K + 1` hop-wise feature matrices `X^(0), ..., X^(K)`.
///
/// # Panics
///
/// Panics if `adj` is not square with side `x.rows()`.
///
/// # Examples
///
/// ```
/// use hoga_core::hopfeat::hop_features;
/// use hoga_tensor::{CsrMatrix, Matrix};
///
/// let adj = CsrMatrix::from_coo(2, 2, &[(0, 1, 1.0), (1, 0, 1.0)]);
/// let x = Matrix::from_rows(&[&[1.0], &[2.0]]);
/// let hops = hop_features(&adj, &x, 2);
/// assert_eq!(hops.len(), 3);
/// assert_eq!(hops[1].as_slice(), &[2.0, 1.0]); // one swap per hop
/// assert_eq!(hops[2].as_slice(), &[1.0, 2.0]);
/// ```
pub fn hop_features(adj: &CsrMatrix, x: &Matrix, k: usize) -> Vec<Matrix> {
    assert_eq!(adj.rows(), adj.cols(), "adjacency must be square");
    assert_eq!(adj.rows(), x.rows(), "adjacency/features size mismatch");
    let mut hops = Vec::with_capacity(k + 1);
    hops.push(x.clone());
    for _ in 0..k {
        // analyze: allow(panic-reachability) — hops is seeded above and only grows
        let prev = hops.last().expect("non-empty");
        hops.push(adj.spmm(prev));
    }
    hops
}

/// Assembles the batched hop stack for the given nodes.
///
/// Returns a `(nodes.len() · (K+1)) × d` matrix whose block `i` is
/// `Xᵢ = [X^(0)_i; X^(1)_i; ...; X^(K)_i]` — the third-order tensor `X` of
/// the paper, flattened for the batched attention kernels.
///
/// # Panics
///
/// Panics if `hops` is empty, the hop matrices disagree in shape, or an
/// index is out of bounds.
pub fn hop_stack(hops: &[Matrix], nodes: &[usize]) -> Matrix {
    assert!(!hops.is_empty(), "need at least X^(0)");
    let d = hops[0].cols();
    let n = hops[0].rows();
    for h in hops {
        assert_eq!(h.shape(), (n, d), "hop matrices must share a shape");
    }
    let k1 = hops.len();
    let mut out = Matrix::zeros(nodes.len() * k1, d);
    for (bi, &node) in nodes.iter().enumerate() {
        for (ki, h) in hops.iter().enumerate() {
            out.row_mut(bi * k1 + ki).copy_from_slice(h.row(node));
        }
    }
    out
}

/// Brute-force reference for [`hop_features`] used by tests: explicit
/// neighbor accumulation instead of SpMM.
// analyze: allow(dead-public-api) — O(n*k) reference implementation kept public as the differential-testing oracle for the optimized kernel
pub fn hop_features_reference(adj: &CsrMatrix, x: &Matrix, k: usize) -> Vec<Matrix> {
    let mut hops = vec![x.clone()];
    for _ in 0..k {
        // analyze: allow(panic-reachability) — hops is seeded above and only grows
        let prev = hops.last().expect("non-empty");
        let mut next = Matrix::zeros(x.rows(), x.cols());
        for r in 0..adj.rows() {
            for (c, w) in adj.row_entries(r) {
                for col in 0..x.cols() {
                    next[(r, col)] += w * prev[(c, col)];
                }
            }
        }
        hops.push(next);
    }
    hops
}

#[cfg(test)]
mod tests {
    use super::*;
    use hoga_circuit::{adjacency, features, Aig};

    fn sample_aig() -> Aig {
        let mut g = Aig::new(4);
        let (a, b, c, d) = (g.pi_lit(0), g.pi_lit(1), g.pi_lit(2), g.pi_lit(3));
        let x = g.xor(a, b);
        let y = g.maj(b, c, d);
        let z = g.and(x, y);
        g.add_po(z);
        g
    }

    #[test]
    fn matches_reference_on_circuit() {
        let aig = sample_aig();
        let adj = adjacency::normalized_symmetric(&aig);
        let x = features::node_features(&aig);
        let fast = hop_features(&adj, &x, 4);
        let slow = hop_features_reference(&adj, &x, 4);
        for (f, s) in fast.iter().zip(&slow) {
            assert!(f.max_abs_diff(s) < 1e-5);
        }
    }

    #[test]
    fn hop_zero_is_input() {
        let aig = sample_aig();
        let adj = adjacency::normalized_symmetric(&aig);
        let x = features::node_features(&aig);
        let hops = hop_features(&adj, &x, 2);
        assert_eq!(hops[0], x);
    }

    #[test]
    fn features_stay_bounded_under_normalization() {
        // Â has spectral radius ≤ 1, so hop features cannot blow up.
        let aig = sample_aig();
        let adj = adjacency::normalized_symmetric(&aig);
        let x = features::node_features(&aig);
        let hops = hop_features(&adj, &x, 16);
        for (k, h) in hops.iter().enumerate() {
            assert!(h.max_abs() <= x.max_abs() * 2.0, "hop {k} exploded: {}", h.max_abs());
            assert!(h.is_finite());
        }
    }

    #[test]
    fn stack_layout_is_node_major() {
        let aig = sample_aig();
        let adj = adjacency::normalized_symmetric(&aig);
        let x = features::node_features(&aig);
        let hops = hop_features(&adj, &x, 2);
        let nodes = vec![3usize, 0usize];
        let stack = hop_stack(&hops, &nodes);
        assert_eq!(stack.shape(), (2 * 3, x.cols()));
        assert_eq!(stack.row(0), hops[0].row(3));
        assert_eq!(stack.row(1), hops[1].row(3));
        assert_eq!(stack.row(2), hops[2].row(3));
        assert_eq!(stack.row(3), hops[0].row(0));
    }

    #[test]
    fn isolated_node_keeps_only_self_information() {
        // A node with no edges: symmetric normalization gives it a self-loop
        // of weight 1, so all its hop features equal its input feature.
        let mut g = Aig::new(2);
        let a = g.pi_lit(0);
        g.add_po(a);
        // PI 1 is isolated (referenced by nothing).
        let adj = adjacency::normalized_symmetric(&g);
        let x = features::node_features(&g);
        let hops = hop_features(&adj, &x, 3);
        let iso = g.pi_lit(1).node() as usize;
        for h in &hops {
            assert_eq!(h.row(iso), x.row(iso), "isolated node drifted");
        }
    }
}
