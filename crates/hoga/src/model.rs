//! Phase 2 of HOGA: gated self-attention over hop-wise features.
//!
//! Implements Eqs. 5–10 of the paper:
//!
//! * linear input projection to the hidden dimension,
//! * `L` gated self-attention layers —
//!   `Ĥ = ReLU(LayerNorm(U ⊙ (softmax(QKᵀ) V)))` with
//!   `Q = HW_Q, K = HW_K, U = HW_U, V = HW_V` (Eq. 9),
//! * the attentive readout `y = Ĥ₀ + Σₖ cₖ Ĥₖ` with
//!   `cₖ = softmax_k(αᵀ [Ĥ₀ ‖ Ĥₖ])` (Eq. 10).
//!
//! The §III-B ablations are first-class: [`Aggregator::GateOnly`] drops the
//! attention matrix (Eq. 6 only) and [`Aggregator::Sum`] drops the module
//! entirely (`y = Σₖ Hₖ`), which the paper argues cannot capture high-order
//! interactions.

use hoga_autograd::{ParamId, ParamSet, Tape, Var};
use hoga_tensor::{Init, Matrix};
use serde::{Deserialize, Serialize};

/// Hop-aggregation strategy (§III-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Aggregator {
    /// The full gated self-attention module (Eqs. 7–9) — HOGA proper.
    GatedSelfAttention,
    /// The plain gated layer of Eq. 6 (`U ⊙ V`, no cross-hop interactions).
    GateOnly,
    /// Uniform summation `y = Σₖ Hₖ` (no trainable aggregation at all).
    Sum,
}

/// Hyperparameters of a [`HogaModel`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HogaConfig {
    /// Width of the raw node features.
    pub input_dim: usize,
    /// Hidden dimension `d` (the paper uses 256; our CPU default is 64).
    pub hidden_dim: usize,
    /// Number of hops `K` (5 for QoR prediction, 8 for reasoning in the
    /// paper).
    pub num_hops: usize,
    /// Number of stacked gated self-attention layers (paper: 1).
    pub num_layers: usize,
    /// Attention heads per layer (paper: 1; multi-head is this
    /// reproduction's extension of Eqs. 7–9, splitting the hidden width).
    pub num_heads: usize,
    /// Aggregation strategy; [`Aggregator::GatedSelfAttention`] is HOGA.
    pub aggregator: Aggregator,
}

impl HogaConfig {
    /// Creates the paper's configuration (one gated self-attention layer)
    /// with the given feature width, hidden width and hop count.
    pub fn new(input_dim: usize, hidden_dim: usize, num_hops: usize) -> Self {
        Self {
            input_dim,
            hidden_dim,
            num_hops,
            num_layers: 1,
            num_heads: 1,
            aggregator: Aggregator::GatedSelfAttention,
        }
    }

    /// Replaces the attention head count.
    ///
    /// # Panics
    ///
    /// Panics (at [`HogaModel::new`]) if `hidden_dim` is not divisible by
    /// the head count.
    pub fn with_heads(mut self, num_heads: usize) -> Self {
        self.num_heads = num_heads;
        self
    }

    /// Replaces the aggregator (for the §III-B ablations).
    pub fn with_aggregator(mut self, aggregator: Aggregator) -> Self {
        self.aggregator = aggregator;
        self
    }

    /// Replaces the layer count.
    pub fn with_layers(mut self, num_layers: usize) -> Self {
        self.num_layers = num_layers;
        self
    }
}

pub(crate) struct AttnHead {
    pub(crate) wq: ParamId,
    pub(crate) wk: ParamId,
    pub(crate) wu: ParamId,
    pub(crate) wv: ParamId,
}

pub(crate) struct AttnLayer {
    pub(crate) heads: Vec<AttnHead>,
    pub(crate) gamma: ParamId,
    pub(crate) beta: ParamId,
}

/// The HOGA model: input projection, gated self-attention stack, attentive
/// readout. See the [crate-level example](crate).
pub struct HogaModel {
    /// All trainable parameters (optimizers operate on this set).
    pub params: ParamSet,
    pub(crate) config: HogaConfig,
    pub(crate) w_in: ParamId,
    pub(crate) b_in: ParamId,
    pub(crate) layers: Vec<AttnLayer>,
    pub(crate) alpha: ParamId,
}

/// Forward-pass outputs.
#[derive(Debug, Clone, Copy)]
pub struct HogaOutput {
    /// Final node representations `Y`, shape `(batch, hidden_dim)`.
    pub representations: Var,
    /// Readout attention scores `cₖ`, shape `(batch, K)` — the quantity
    /// visualized in Figure 7. `None` for the [`Aggregator::Sum`] ablation.
    pub readout_scores: Option<Var>,
}

impl HogaModel {
    /// Initializes a model with Xavier weights derived from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if any dimension in `config` is zero.
    pub fn new(config: &HogaConfig, seed: u64) -> Self {
        assert!(config.input_dim > 0 && config.hidden_dim > 0, "dims must be positive");
        assert!(config.num_hops > 0, "need at least one hop");
        assert!(config.num_heads > 0, "need at least one attention head");
        assert_eq!(
            config.hidden_dim % config.num_heads,
            0,
            "hidden_dim {} not divisible by num_heads {}",
            config.hidden_dim,
            config.num_heads
        );
        let d = config.hidden_dim;
        let dh = d / config.num_heads;
        let mut params = ParamSet::new();
        let mut s = seed;
        let mut next = || {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            s
        };
        let w_in = params.add("input.w", Init::XavierUniform.matrix(config.input_dim, d, next()));
        let b_in = params.add("input.b", Init::Zeros.matrix(1, d, next()));
        let mut layers = Vec::with_capacity(config.num_layers);
        for l in 0..config.num_layers {
            let heads = (0..config.num_heads)
                .map(|h| AttnHead {
                    wq: params.add(
                        format!("layer{l}.h{h}.wq"),
                        Init::XavierUniform.matrix(d, dh, next()),
                    ),
                    wk: params.add(
                        format!("layer{l}.h{h}.wk"),
                        Init::XavierUniform.matrix(d, dh, next()),
                    ),
                    wu: params.add(
                        format!("layer{l}.h{h}.wu"),
                        Init::XavierUniform.matrix(d, dh, next()),
                    ),
                    wv: params.add(
                        format!("layer{l}.h{h}.wv"),
                        Init::XavierUniform.matrix(d, dh, next()),
                    ),
                })
                .collect();
            layers.push(AttnLayer {
                heads,
                gamma: params.add(format!("layer{l}.gamma"), Init::Ones.matrix(1, d, next())),
                beta: params.add(format!("layer{l}.beta"), Init::Zeros.matrix(1, d, next())),
            });
        }
        let alpha = params.add("readout.alpha", Init::SmallUniform.matrix(2 * d, 1, next()));
        Self { params, config: *config, w_in, b_in, layers, alpha }
    }

    /// The configuration this model was built with.
    pub fn config(&self) -> &HogaConfig {
        &self.config
    }

    /// Runs the forward pass on a batched hop stack (from
    /// [`crate::hopfeat::hop_stack`]) of `batch` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `hop_stack.rows() != batch * (num_hops + 1)` or the feature
    /// width differs from the configuration.
    pub fn forward(&self, tape: &mut Tape, hop_stack: &Matrix, batch: usize) -> HogaOutput {
        let k1 = self.config.num_hops + 1;
        assert_eq!(hop_stack.rows(), batch * k1, "hop stack row mismatch");
        assert_eq!(hop_stack.cols(), self.config.input_dim, "feature width mismatch");
        let x = tape.constant(hop_stack.clone());
        self.forward_var(tape, x, batch)
    }

    /// Like [`HogaModel::forward`] but over an existing tape variable.
    pub fn forward_var(&self, tape: &mut Tape, x: Var, batch: usize) -> HogaOutput {
        let k1 = self.config.num_hops + 1;
        let k = self.config.num_hops;

        // Input projection H = X W_in + b_in.
        let w_in = tape.param(&self.params, self.w_in);
        let b_in = tape.param(&self.params, self.b_in);
        let mut h = tape.matmul(x, w_in);
        h = tape.add_bias(h, b_in);

        // Gated self-attention stack (Eqs. 5-9).
        if self.config.aggregator != Aggregator::Sum {
            for layer in &self.layers {
                // Per-head gated (self-attention) transform; heads are
                // concatenated back to the full width before LayerNorm.
                let mut head_outputs = Vec::with_capacity(layer.heads.len());
                for head in &layer.heads {
                    let wu = tape.param(&self.params, head.wu);
                    let wv = tape.param(&self.params, head.wv);
                    let u = tape.matmul(h, wu);
                    let v = tape.matmul(h, wv);
                    let gated = match self.config.aggregator {
                        Aggregator::GatedSelfAttention => {
                            let wq = tape.param(&self.params, head.wq);
                            let wk = tape.param(&self.params, head.wk);
                            let q = tape.matmul(h, wq);
                            let kk = tape.matmul(h, wk);
                            // Per-node QKᵀ and S·V (Eq. 7) run on the
                            // block-parallel batched kernels; see
                            // docs/PERFORMANCE.md for the threading scheme.
                            let logits = tape.batched_matmul_nt(q, kk, batch);
                            let s = tape.softmax_rows(logits);
                            let sv = tape.batched_matmul(s, v, batch);
                            tape.hadamard(u, sv)
                        }
                        Aggregator::GateOnly => tape.hadamard(u, v),
                        Aggregator::Sum => unreachable!(),
                    };
                    head_outputs.push(gated);
                }
                let mut cat = head_outputs[0];
                for &ho in &head_outputs[1..] {
                    cat = tape.concat_cols(cat, ho);
                }
                let gamma = tape.param(&self.params, layer.gamma);
                let beta = tape.param(&self.params, layer.beta);
                let normed = tape.layer_norm(cat, gamma, beta);
                h = tape.relu(normed);
            }
        }

        // Readout (Eq. 10).
        let idx0: Vec<usize> = (0..batch).map(|b| b * k1).collect();
        let h0 = tape.select_rows(h, idx0.clone());
        if self.config.aggregator == Aggregator::Sum {
            // y = Σₖ Hₖ (uniform combination, the paper's strawman).
            let mut y = h0;
            for hop in 1..k1 {
                let idx: Vec<usize> = (0..batch).map(|b| b * k1 + hop).collect();
                let hk = tape.select_rows(h, idx);
                y = tape.add(y, hk);
            }
            return HogaOutput { representations: y, readout_scores: None };
        }

        // Gather Ĥ₀ repeated K times alongside Ĥ₁..Ĥ_K.
        let idx0_rep: Vec<usize> =
            (0..batch).flat_map(|b| std::iter::repeat_n(b * k1, k)).collect();
        let idx_rest: Vec<usize> =
            (0..batch).flat_map(|b| (1..k1).map(move |hop| b * k1 + hop)).collect();
        let h0_rep = tape.select_rows(h, idx0_rep);
        let h_rest = tape.select_rows(h, idx_rest);
        let cat = tape.concat_cols(h0_rep, h_rest);
        let alpha = tape.param(&self.params, self.alpha);
        let logits_flat = tape.matmul(cat, alpha); // (B*K, 1)
        let logits = tape.reshape(logits_flat, batch, k);
        let scores = tape.softmax_rows(logits); // (B, K) — the cₖ of Eq. 10.
                                                // y = Ĥ₀ + Σₖ cₖ Ĥₖ  as a batched (1,K)·(K,d) product.
        let weighted = tape.batched_matmul(scores, h_rest, batch); // (B, d)
        let y = tape.add(h0, weighted);
        HogaOutput { representations: y, readout_scores: Some(scores) }
    }

    /// Extracts the readout attention scores `cₖ` for the given nodes
    /// without tracking gradients — the data behind Figure 7.
    ///
    /// Returns a `(batch, K)` matrix of per-hop scores.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`HogaModel::forward`], or if the
    /// aggregator is [`Aggregator::Sum`] (which has no scores).
    pub fn attention_scores(&self, hop_stack: &Matrix, batch: usize) -> Matrix {
        let mut tape = Tape::new();
        let out = self.forward(&mut tape, hop_stack, batch);
        let scores = out.readout_scores.expect("Sum aggregator has no attention scores");
        tape.value(scores).clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hoga_autograd::optim::{Adam, Optimizer};
    use hoga_tensor::Init;

    fn toy_stack(batch: usize, k1: usize, d: usize, seed: u64) -> Matrix {
        Init::SmallUniform.matrix(batch * k1, d, seed)
    }

    #[test]
    fn forward_shapes_are_correct() {
        let cfg = HogaConfig::new(7, 16, 5);
        let model = HogaModel::new(&cfg, 1);
        let stack = toy_stack(4, 6, 7, 2);
        let mut tape = Tape::new();
        let out = model.forward(&mut tape, &stack, 4);
        assert_eq!(tape.value(out.representations).shape(), (4, 16));
        let scores = out.readout_scores.expect("scores");
        assert_eq!(tape.value(scores).shape(), (4, 5));
    }

    #[test]
    fn readout_scores_sum_to_one() {
        let cfg = HogaConfig::new(5, 8, 4);
        let model = HogaModel::new(&cfg, 3);
        let stack = toy_stack(3, 5, 5, 4);
        let scores = model.attention_scores(&stack, 3);
        for r in 0..3 {
            let s: f32 = scores.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-5, "row {r} sums to {s}");
        }
    }

    #[test]
    fn nodes_are_independent() {
        // The paper's central claim: a node's representation depends only on
        // its own hop stack. Changing node 1's features must not affect
        // node 0's output.
        let cfg = HogaConfig::new(6, 12, 3);
        let model = HogaModel::new(&cfg, 5);
        let stack_a = toy_stack(2, 4, 6, 6);
        let mut stack_b = stack_a.clone();
        for r in 4..8 {
            // Perturb node 1's block only.
            for c in 0..6 {
                stack_b[(r, c)] += 0.5;
            }
        }
        let mut t1 = Tape::new();
        let o1 = model.forward(&mut t1, &stack_a, 2);
        let mut t2 = Tape::new();
        let o2 = model.forward(&mut t2, &stack_b, 2);
        let r1 = t1.value(o1.representations);
        let r2 = t2.value(o2.representations);
        assert_eq!(r1.row(0), r2.row(0), "node 0 changed");
        assert_ne!(r1.row(1), r2.row(1), "node 1 should change");
    }

    #[test]
    fn batch_composition_is_irrelevant() {
        // Running nodes separately or together gives identical outputs.
        let cfg = HogaConfig::new(4, 8, 2);
        let model = HogaModel::new(&cfg, 7);
        let stack = toy_stack(3, 3, 4, 8);
        let mut t_all = Tape::new();
        let all = model.forward(&mut t_all, &stack, 3);
        let all_reps = t_all.value(all.representations).clone();
        for b in 0..3 {
            let single = stack.select_rows(&(b * 3..(b + 1) * 3).collect::<Vec<_>>());
            let mut t = Tape::new();
            let one = model.forward(&mut t, &single, 1);
            assert!(
                t.value(one.representations).max_abs_diff(&all_reps.select_rows(&[b])) < 1e-5,
                "node {b} differs when batched"
            );
        }
    }

    #[test]
    fn all_aggregators_run_and_differ() {
        let stack = toy_stack(2, 4, 5, 9);
        let reps: Vec<Matrix> =
            [Aggregator::GatedSelfAttention, Aggregator::GateOnly, Aggregator::Sum]
                .iter()
                .map(|&agg| {
                    let cfg = HogaConfig::new(5, 8, 3).with_aggregator(agg);
                    let model = HogaModel::new(&cfg, 11);
                    let mut tape = Tape::new();
                    let out = model.forward(&mut tape, &stack, 2);
                    assert_eq!(out.readout_scores.is_none(), agg == Aggregator::Sum);
                    tape.value(out.representations).clone()
                })
                .collect();
        assert!(reps[0].max_abs_diff(&reps[1]) > 1e-7);
        assert!(reps[1].max_abs_diff(&reps[2]) > 1e-7);
    }

    #[test]
    fn multi_head_attention_runs_and_differs_from_single_head() {
        let stack = toy_stack(3, 4, 5, 21);
        let single = {
            let cfg = HogaConfig::new(5, 16, 3);
            let model = HogaModel::new(&cfg, 22);
            let mut tape = Tape::new();
            let out = model.forward(&mut tape, &stack, 3);
            tape.value(out.representations).clone()
        };
        let multi = {
            let cfg = HogaConfig::new(5, 16, 3).with_heads(4);
            let model = HogaModel::new(&cfg, 22);
            let mut tape = Tape::new();
            let out = model.forward(&mut tape, &stack, 3);
            tape.value(out.representations).clone()
        };
        assert_eq!(single.shape(), multi.shape());
        assert!(single.max_abs_diff(&multi) > 1e-7);
        assert!(multi.is_finite());
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn indivisible_head_count_panics() {
        let cfg = HogaConfig::new(5, 10, 3).with_heads(4);
        let _ = HogaModel::new(&cfg, 0);
    }

    #[test]
    fn multi_head_model_trains() {
        let cfg = HogaConfig::new(3, 12, 3).with_heads(3);
        let mut model = HogaModel::new(&cfg, 30);
        let batch = 6;
        let stack = Matrix::from_fn(batch * 4, 3, |r, c| ((r * 3 + c) as f32 * 0.31).sin());
        let target = Matrix::from_fn(batch, 1, |r, _| if r % 2 == 0 { 0.5 } else { -0.5 });
        let w_out = model.params.add("head.w", Init::XavierUniform.matrix(12, 1, 31));
        let mut opt = Adam::new(5e-3);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..50 {
            let mut tape = Tape::new();
            let out = model.forward(&mut tape, &stack, batch);
            let w = tape.param(&model.params, w_out);
            let pred = tape.matmul(out.representations, w);
            let loss = tape.mse_loss(pred, &target);
            last = tape.value(loss)[(0, 0)];
            first.get_or_insert(last);
            let grads = tape.backward(loss);
            opt.step(&mut model.params, &grads);
        }
        assert!(last < first.expect("ran"), "multi-head training failed");
    }

    #[test]
    fn two_layer_stack_runs() {
        let cfg = HogaConfig::new(5, 8, 3).with_layers(2);
        let model = HogaModel::new(&cfg, 13);
        let stack = toy_stack(2, 4, 5, 14);
        let mut tape = Tape::new();
        let out = model.forward(&mut tape, &stack, 2);
        assert!(tape.value(out.representations).is_finite());
    }

    #[test]
    fn model_trains_on_toy_regression() {
        // Distinguish two synthetic node populations by their hop profiles.
        let cfg = HogaConfig::new(3, 8, 3);
        let mut model = HogaModel::new(&cfg, 17);
        let batch = 8;
        let k1 = 4;
        let stack = Matrix::from_fn(batch * k1, 3, |r, c| {
            let node = r / k1;
            let hop = r % k1;
            if node % 2 == 0 {
                ((hop * 3 + c) as f32 * 0.2).sin()
            } else {
                ((hop + c) as f32 * 0.4).cos()
            }
        });
        let target = Matrix::from_fn(batch, 1, |r, _| if r % 2 == 0 { 1.0 } else { -1.0 });
        let mut head = ParamSet::new();
        // Tiny linear head folded into the model params for the test.
        let w_out = model.params.add("head.w", Init::XavierUniform.matrix(8, 1, 18));
        let _ = &mut head;
        let mut opt = Adam::new(5e-3);
        let mut first_loss = None;
        let mut last_loss = 0.0;
        for _ in 0..60 {
            let mut tape = Tape::new();
            let out = model.forward(&mut tape, &stack, batch);
            let w = tape.param(&model.params, w_out);
            let pred = tape.matmul(out.representations, w);
            let loss = tape.mse_loss(pred, &target);
            last_loss = tape.value(loss)[(0, 0)];
            first_loss.get_or_insert(last_loss);
            let grads = tape.backward(loss);
            opt.step(&mut model.params, &grads);
        }
        let first = first_loss.expect("ran");
        assert!(last_loss < first * 0.2, "training failed to reduce loss: {first} -> {last_loss}");
    }
}
