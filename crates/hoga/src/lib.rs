//! HOGA: Hop-wise Graph Attention for circuits (Deng et al., DAC 2024).
//!
//! This crate is the paper's primary contribution, reproduced from scratch:
//!
//! * [`hopfeat`] — Phase 1 (Eq. 3): precompute hop-wise features
//!   `X^(k) = Â X^(k-1)` with the normalized adjacency from
//!   [`hoga_circuit::adjacency`], and assemble per-node hop stacks
//!   `Xᵢ ∈ R^{(K+1)×d}`.
//! * [`model`] — Phase 2: the gated self-attention module (Eqs. 5–9), the
//!   attentive readout (Eq. 10), and the full [`model::HogaModel`] with an
//!   input projection and configurable aggregator (the §III-B ablations —
//!   plain sum and gate-without-attention — are selectable via
//!   [`model::Aggregator`]).
//! * [`heads`] — task heads: node classification (functional reasoning) and
//!   graph-level regression (QoR prediction).
//!
//! Because node representations depend only on each node's own hop stack,
//! training parallelizes over nodes with *no* graph dependencies — the
//! property behind the paper's near-linear multi-GPU scaling (Figure 5),
//! reproduced thread-wise in `hoga-eval`.
//!
//! # Examples
//!
//! End-to-end node representations for a tiny circuit:
//!
//! ```
//! use hoga_autograd::Tape;
//! use hoga_circuit::{adjacency, features, Aig};
//! use hoga_core::hopfeat::{hop_features, hop_stack};
//! use hoga_core::model::{HogaConfig, HogaModel};
//!
//! let mut aig = Aig::new(2);
//! let x = {
//!     let (a, b) = (aig.pi_lit(0), aig.pi_lit(1));
//!     aig.xor(a, b)
//! };
//! aig.add_po(x);
//!
//! let adj = adjacency::normalized_symmetric(&aig);
//! let feats = features::node_features(&aig);
//! let hops = hop_features(&adj, &feats, 3);
//! let all_nodes: Vec<usize> = (0..aig.num_nodes()).collect();
//! let stack = hop_stack(&hops, &all_nodes);
//!
//! let config = HogaConfig::new(feats.cols(), 16, 3);
//! let model = HogaModel::new(&config, 42);
//! let mut tape = Tape::new();
//! let reps = model.forward(&mut tape, &stack, all_nodes.len());
//! assert_eq!(tape.value(reps.representations).shape(), (aig.num_nodes(), 16));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod heads;
pub mod hopfeat;
pub mod infer;
pub mod model;
