//! Property-based invariants of the HOGA model and hop-feature pipeline.

use hoga_autograd::Tape;
use hoga_core::hopfeat::{hop_features, hop_stack};
use hoga_core::model::{Aggregator, HogaConfig, HogaModel};
use hoga_tensor::{CsrMatrix, Matrix};
use proptest::prelude::*;

fn arb_graph_features() -> impl Strategy<Value = (CsrMatrix, Matrix)> {
    (3..10usize, 2..5usize).prop_flat_map(|(n, d)| {
        let edges = proptest::collection::vec((0..n, 0..n), 1..2 * n);
        let feats = proptest::collection::vec(-2.0f32..2.0, n * d);
        (edges, feats).prop_map(move |(edges, feats)| {
            let mut triplets: Vec<(usize, usize, f32)> = Vec::new();
            for (a, b) in edges {
                if a != b {
                    triplets.push((a, b, 1.0));
                    triplets.push((b, a, 1.0));
                }
            }
            for i in 0..n {
                triplets.push((i, i, 1.0));
            }
            // Row-normalize so hop features stay bounded.
            let raw = CsrMatrix::from_coo(n, n, &triplets);
            let deg: Vec<f32> =
                raw.row_nnz().iter().map(|&c| if c == 0 { 0.0 } else { 1.0 / c as f32 }).collect();
            (raw.scale_rows(&deg), Matrix::from_vec(n, d, feats))
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Hop-feature generation is linear in the input features:
    /// hops(A, X + Y) == hops(A, X) + hops(A, Y).
    #[test]
    fn hop_features_are_linear((adj, x) in arb_graph_features(), scale in 0.5f32..2.0) {
        let y = x.map(|v| v * scale - 0.3);
        let sum = &x + &y;
        let hx = hop_features(&adj, &x, 3);
        let hy = hop_features(&adj, &y, 3);
        let hsum = hop_features(&adj, &sum, 3);
        for k in 0..4 {
            let combined = &hx[k] + &hy[k];
            prop_assert!(hsum[k].max_abs_diff(&combined) < 1e-3, "hop {k} not linear");
        }
    }

    /// Readout attention scores are a distribution for every node, for any
    /// aggregator that produces them, any config, any input.
    #[test]
    fn readout_scores_always_sum_to_one(
        (adj, x) in arb_graph_features(),
        hops in 2..5usize,
        hidden in 1..3usize,
        seed in 0..500u64,
    ) {
        let hidden_dim = hidden * 8;
        let hf = hop_features(&adj, &x, hops);
        let nodes: Vec<usize> = (0..x.rows()).collect();
        let stack = hop_stack(&hf, &nodes);
        let cfg = HogaConfig::new(x.cols(), hidden_dim, hops);
        let model = HogaModel::new(&cfg, seed);
        let scores = model.attention_scores(&stack, nodes.len());
        prop_assert_eq!(scores.shape(), (nodes.len(), hops));
        for r in 0..scores.rows() {
            let s: f32 = scores.row(r).iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-4, "row {} sums to {}", r, s);
        }
    }

    /// The Sum aggregator's output equals the explicit projected hop sum.
    #[test]
    fn sum_aggregator_is_projected_hop_sum(
        (adj, x) in arb_graph_features(),
        seed in 0..500u64,
    ) {
        let hops = 3;
        let hf = hop_features(&adj, &x, hops);
        let nodes: Vec<usize> = (0..x.rows()).collect();
        let stack = hop_stack(&hf, &nodes);
        let cfg = HogaConfig::new(x.cols(), 8, hops).with_aggregator(Aggregator::Sum);
        let model = HogaModel::new(&cfg, seed);
        let mut tape = Tape::new();
        let out = model.forward(&mut tape, &stack, nodes.len());
        let reps = tape.value(out.representations).clone();
        prop_assert!(out.readout_scores.is_none());

        // Reference: project each node's summed hop features through the
        // same input projection (the Sum path has no attention layers).
        let w_in = model.params.value(model.params.find("input.w").expect("param"));
        let b_in = model.params.value(model.params.find("input.b").expect("param"));
        for (bi, &node) in nodes.iter().enumerate() {
            let mut summed = vec![0.0f32; x.cols()];
            for h in &hf {
                for (acc, &v) in summed.iter_mut().zip(h.row(node)) {
                    *acc += v;
                }
            }
            // y = Σ_k (X^k W + b) = (Σ_k X^k) W + (K+1)·b.
            let projected: Vec<f32> = (0..8)
                .map(|c| {
                    b_in[(0, c)] * (hops + 1) as f32
                        + (0..x.cols()).map(|i| summed[i] * w_in[(i, c)]).sum::<f32>()
                })
                .collect();
            for (c, &p) in projected.iter().enumerate() {
                prop_assert!(
                    (reps[(bi, c)] - p).abs() < 1e-3,
                    "node {} dim {}: {} vs {}", node, c, reps[(bi, c)], p
                );
            }
        }
    }

    /// Permuting the batch permutes the outputs identically (full
    /// node-independence, beyond the fixed-case unit test).
    #[test]
    fn batch_permutation_equivariance(
        (adj, x) in arb_graph_features(),
        seed in 0..500u64,
    ) {
        let hops = 2;
        let hf = hop_features(&adj, &x, hops);
        let n = x.rows();
        let forward_order: Vec<usize> = (0..n).collect();
        let reverse_order: Vec<usize> = (0..n).rev().collect();
        let cfg = HogaConfig::new(x.cols(), 8, hops);
        let model = HogaModel::new(&cfg, seed);
        let run = |order: &[usize]| {
            let stack = hop_stack(&hf, order);
            let mut tape = Tape::new();
            let out = model.forward(&mut tape, &stack, order.len());
            tape.value(out.representations).clone()
        };
        let fwd = run(&forward_order);
        let rev = run(&reverse_order);
        for i in 0..n {
            let a = fwd.row(i);
            let b = rev.row(n - 1 - i);
            for (x1, x2) in a.iter().zip(b) {
                prop_assert!((x1 - x2).abs() < 1e-5, "node {} not equivariant", i);
            }
        }
    }
}
