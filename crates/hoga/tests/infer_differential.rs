//! Differential tests of the tape-free inference path against the training
//! forward pass.
//!
//! The contract under test (see `hoga_core::infer`):
//!
//! * `Precision::Exact` replays the tape ops verbatim → **bitwise** equal
//!   representations and readout scores, for every aggregator and head
//!   count.
//! * `Precision::Fast` swaps in the fused/lane-parallel kernels → close to
//!   the exact path within a small absolute tolerance.
//! * `Precision::Int8` quantizes the hidden projections → loosely bounded
//!   against the f32 oracle, deterministic under plan reuse.

use hoga_autograd::Tape;
use hoga_core::infer::{InferError, Precision};
use hoga_core::model::{Aggregator, HogaConfig, HogaModel};
use hoga_tensor::{Init, Matrix};

fn toy_stack(batch: usize, k1: usize, d: usize, seed: u64) -> Matrix {
    Init::SmallUniform.matrix(batch * k1, d, seed)
}

fn bits(m: &Matrix) -> Vec<u32> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

fn tape_forward(model: &HogaModel, stack: &Matrix, batch: usize) -> (Matrix, Option<Matrix>) {
    let mut tape = Tape::new();
    let out = model.forward(&mut tape, stack, batch);
    let reps = tape.value(out.representations).clone();
    let scores = out.readout_scores.map(|s| tape.value(s).clone());
    (reps, scores)
}

#[test]
fn exact_inference_is_bitwise_identical_to_tape_forward() {
    let configs = [
        HogaConfig::new(7, 16, 5),
        HogaConfig::new(7, 16, 5).with_heads(4),
        HogaConfig::new(7, 16, 5).with_layers(2),
        HogaConfig::new(7, 16, 5).with_aggregator(Aggregator::GateOnly),
        HogaConfig::new(7, 16, 5).with_aggregator(Aggregator::Sum),
    ];
    for (i, cfg) in configs.iter().enumerate() {
        let model = HogaModel::new(cfg, 3 + i as u64);
        let batch = 4;
        let stack = toy_stack(batch, cfg.num_hops + 1, cfg.input_dim, 40 + i as u64);
        let (want_reps, want_scores) = tape_forward(&model, &stack, batch);
        let got = model.infer(&stack, batch, Precision::Exact);
        assert_eq!(
            bits(&want_reps),
            bits(&got.representations),
            "config {i}: exact inference differs bitwise from the tape forward"
        );
        match (want_scores, got.readout_scores) {
            (Some(w), Some(g)) => assert_eq!(bits(&w), bits(&g), "config {i}: scores differ"),
            (None, None) => {}
            _ => panic!("config {i}: score presence mismatch"),
        }
    }
}

#[test]
fn fast_inference_tracks_exact_within_tolerance() {
    let cfg = HogaConfig::new(9, 24, 4).with_heads(2);
    let model = HogaModel::new(&cfg, 11);
    let batch = 6;
    let stack = toy_stack(batch, 5, 9, 12);
    let exact = model.infer(&stack, batch, Precision::Exact);
    let fast = model.infer(&stack, batch, Precision::Fast);
    assert!(
        exact.representations.max_abs_diff(&fast.representations) < 1e-4,
        "fast representations drifted: {}",
        exact.representations.max_abs_diff(&fast.representations)
    );
    let (es, fs) = (exact.readout_scores.unwrap(), fast.readout_scores.unwrap());
    assert!(es.max_abs_diff(&fs) < 1e-4, "fast scores drifted: {}", es.max_abs_diff(&fs));
}

#[test]
fn int8_inference_is_loosely_bounded_and_scores_normalized() {
    let cfg = HogaConfig::new(9, 24, 4);
    let model = HogaModel::new(&cfg, 21);
    let batch = 6;
    let stack = toy_stack(batch, 5, 9, 22);
    let exact = model.infer(&stack, batch, Precision::Exact);
    let plan = model.int8_plan();
    let int8 = model.infer_int8(&plan, &stack, batch);
    // Per-row/per-column 8-bit quantization through one attention layer:
    // loose but meaningful bound relative to the representation scale.
    let scale = exact.representations.as_slice().iter().fold(1e-6f32, |m, &v| m.max(v.abs()));
    let delta = exact.representations.max_abs_diff(&int8.representations);
    assert!(
        delta <= 0.15 * scale,
        "int8 drifted too far: delta {delta} vs representation scale {scale}"
    );
    let scores = int8.readout_scores.unwrap();
    assert!(scores.is_finite());
    for r in 0..batch {
        let s: f32 = scores.row(r).iter().sum();
        assert!((s - 1.0).abs() < 1e-5, "int8 scores row {r} sums to {s}");
    }
}

#[test]
fn int8_plan_reuse_is_deterministic() {
    let cfg = HogaConfig::new(6, 16, 3).with_heads(2);
    let model = HogaModel::new(&cfg, 31);
    let batch = 3;
    let stack = toy_stack(batch, 4, 6, 32);
    let plan_a = model.int8_plan();
    let plan_b = model.int8_plan();
    let r1 = model.infer_int8(&plan_a, &stack, batch);
    let r2 = model.infer_int8(&plan_a, &stack, batch);
    let r3 = model.infer_int8(&plan_b, &stack, batch);
    assert_eq!(bits(&r1.representations), bits(&r2.representations), "plan reuse nondeterministic");
    assert_eq!(bits(&r1.representations), bits(&r3.representations), "plan rebuild drifted");
}

#[test]
fn exact_inference_covers_sum_ablation_end_to_end() {
    let cfg = HogaConfig::new(5, 8, 3).with_aggregator(Aggregator::Sum);
    let model = HogaModel::new(&cfg, 41);
    let batch = 3;
    let stack = toy_stack(batch, 4, 5, 42);
    let out = model.infer(&stack, batch, Precision::Fast);
    assert_eq!(out.representations.shape(), (batch, 8));
    assert!(out.readout_scores.is_none());
    assert!(out.representations.is_finite());
}

#[test]
#[should_panic(expected = "int8 inference needs a weight plan")]
fn int8_without_plan_panics() {
    let cfg = HogaConfig::new(5, 8, 3);
    let model = HogaModel::new(&cfg, 51);
    let stack = toy_stack(2, 4, 5, 52);
    let _ = model.infer(&stack, 2, Precision::Int8);
}

#[test]
fn try_infer_matches_the_panicking_wrapper_bitwise() {
    let cfg = HogaConfig::new(7, 16, 5).with_heads(4);
    let model = HogaModel::new(&cfg, 61);
    let batch = 4;
    let stack = toy_stack(batch, 6, 7, 62);
    for precision in [Precision::Exact, Precision::Fast] {
        let want = model.infer(&stack, batch, precision);
        let got = model.try_infer(&stack, batch, precision).expect("valid shapes");
        assert_eq!(bits(&want.representations), bits(&got.representations));
    }
    let plan = model.int8_plan();
    let want = model.infer_int8(&plan, &stack, batch);
    let got = model.try_infer_int8(&plan, &stack, batch).expect("valid shapes and plan");
    assert_eq!(bits(&want.representations), bits(&got.representations));
}

#[test]
fn try_infer_returns_typed_errors_instead_of_panicking() {
    let cfg = HogaConfig::new(5, 8, 3);
    let model = HogaModel::new(&cfg, 71);
    let good = toy_stack(2, 4, 5, 72);
    // Wrong row count for the claimed batch.
    let err = model.try_infer(&good, 3, Precision::Exact).unwrap_err();
    assert_eq!(err, InferError::HopStackRows { expect: 12, got: 8 });
    // Wrong feature width.
    let wide = toy_stack(2, 4, 6, 73);
    let err = model.try_infer(&wide, 2, Precision::Exact).unwrap_err();
    assert_eq!(err, InferError::FeatureWidth { expect: 5, got: 6 });
    // Int8 without a plan is a typed error on the fallible path.
    let err = model.try_infer(&good, 2, Precision::Int8).unwrap_err();
    assert_eq!(err, InferError::NeedsInt8Plan);
    // Errors render a message the serving layer can return as-is.
    assert!(err.to_string().contains("int8"));
}

#[test]
fn try_infer_int8_rejects_a_foreign_plan() {
    let cfg = HogaConfig::new(5, 8, 3);
    let model = HogaModel::new(&cfg, 81);
    let other = HogaModel::new(&HogaConfig::new(5, 8, 3).with_layers(2), 82);
    let stack = toy_stack(2, 4, 5, 83);
    let foreign = other.int8_plan();
    match model.try_infer_int8(&foreign, &stack, 2) {
        Err(InferError::PlanGeometry { detail }) => {
            assert!(detail.contains("layers"), "detail: {detail}")
        }
        other => panic!("expected PlanGeometry, got {other:?}"),
    }
    // A differently-shaped projection is also caught, not just layer count.
    let narrow = HogaModel::new(&HogaConfig::new(5, 4, 3), 84);
    match model.try_infer_int8(&narrow.int8_plan(), &stack, 2) {
        Err(InferError::PlanGeometry { .. }) => {}
        other => panic!("expected PlanGeometry, got {other:?}"),
    }
}
