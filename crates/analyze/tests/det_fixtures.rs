//! True-positive / true-negative fixtures for the dataflow rules
//! (R10 determinism-taint, R11 unchecked-index, R12 swallowed-result).
//!
//! Every fixture asserts the *exact* finding count, rule, symbol, and
//! severity — the point is to pin both halves of the contract: what the
//! analysis must catch, and what it must stay quiet about.

use hoga_analyze::{analyze_source, FileProfile, Finding};

fn hardened() -> FileProfile {
    FileProfile { panic_free: true, ..FileProfile::default() }
}

fn decode() -> FileProfile {
    FileProfile { lossy_cast: true, ..FileProfile::default() }
}

fn plain() -> FileProfile {
    FileProfile::default()
}

fn run(src: &str, profile: FileProfile) -> Vec<Finding> {
    analyze_source("crates/x/src/fixture.rs", src, profile)
}

fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
    findings.iter().map(|f| f.rule).collect()
}

// ---------------------------------------------------------------------------
// R10: determinism taint
// ---------------------------------------------------------------------------

/// The planted regression fixture the issue requires: iterating a
/// `HashMap` accumulates into a value that reaches `encode_checkpoint`.
/// In a hardened module this must be caught at **error** severity.
#[test]
fn r10_hashmap_iteration_into_checkpoint_is_error_in_hardened_module() {
    let src = "use std::collections::HashMap;\n\
               fn save(weights: &HashMap<u32, f32>) -> Vec<u8> {\n\
                   let mut blob = Vec::new();\n\
                   for (k, v) in weights.iter() {\n\
                       blob.push((*k, *v));\n\
                   }\n\
                   encode_checkpoint(&blob)\n\
               }\n";
    let findings = run(src, hardened());
    assert_eq!(rules_of(&findings), vec!["determinism-taint"], "findings: {findings:#?}");
    let f = &findings[0];
    assert_eq!(f.severity(), "error", "hardened modules report R10 at error severity");
    assert_eq!(f.symbol.as_deref(), Some("save"));
    assert!(f.message.contains("unordered container iteration"), "message: {}", f.message);
    assert!(f.message.contains("encode_checkpoint"), "message: {}", f.message);
}

#[test]
fn r10_same_fixture_is_warning_outside_hardened_modules() {
    let src = "use std::collections::HashMap;\n\
               fn save(weights: &HashMap<u32, f32>) -> Vec<u8> {\n\
                   let mut blob = Vec::new();\n\
                   for (k, v) in weights.iter() {\n\
                       blob.push((*k, *v));\n\
                   }\n\
                   encode_checkpoint(&blob)\n\
               }\n";
    let findings = run(src, plain());
    assert_eq!(rules_of(&findings), vec!["determinism-taint"]);
    assert_eq!(findings[0].severity(), "warning");
}

#[test]
fn r10_clock_read_reaching_manifest_record() {
    let src = "fn stamp(m: &mut Manifest) {\n\
                   let t = std::time::Instant::now();\n\
                   let id = derive(t);\n\
                   m.write_record(&id);\n\
               }\n";
    let findings = run(src, plain());
    assert_eq!(rules_of(&findings), vec!["determinism-taint"], "findings: {findings:#?}");
    assert_eq!(findings[0].symbol.as_deref(), Some("stamp"));
    assert!(findings[0].message.contains("monotonic clock read"));
}

#[test]
fn r10_interprocedural_taint_through_helper_return() {
    // `now_ms` returns clock taint; `persist` sinks it. One call deep,
    // resolved against the same file's summaries.
    let src = "fn now_ms() -> u64 {\n\
                   let t = std::time::SystemTime::now();\n\
                   to_ms(t)\n\
               }\n\
               fn persist(events: &Events) {\n\
                   let stamp = now_ms();\n\
                   events.emit(&stamp);\n\
               }\n";
    let findings = run(src, plain());
    assert_eq!(rules_of(&findings), vec!["determinism-taint"], "findings: {findings:#?}");
    assert_eq!(findings[0].symbol.as_deref(), Some("persist"));
    assert!(findings[0].message.contains("wall-clock"), "message: {}", findings[0].message);
}

#[test]
fn r10_interprocedural_param_into_sinking_helper() {
    // `record` writes its parameter to a sink; passing env-tainted data
    // into it fires at the call site.
    let src = "fn record(m: &mut Manifest, v: &str) {\n\
                   m.write_record(v);\n\
               }\n\
               fn snapshot(m: &mut Manifest) {\n\
                   let who = std::env::var(\"USER\").unwrap_or_default();\n\
                   record(m, &who);\n\
               }\n";
    let findings = run(src, plain());
    assert_eq!(rules_of(&findings), vec!["determinism-taint"], "findings: {findings:#?}");
    assert_eq!(findings[0].symbol.as_deref(), Some("snapshot"));
    assert!(findings[0].message.contains("environment read"));
}

#[test]
fn r10_quiet_on_btreemap_iteration_into_checkpoint() {
    // Ordered containers are deterministic — the exact negative twin of
    // the planted HashMap fixture.
    let src = "use std::collections::BTreeMap;\n\
               fn save(weights: &BTreeMap<u32, f32>) -> Vec<u8> {\n\
                   let mut blob = Vec::new();\n\
                   for (k, v) in weights.iter() {\n\
                       blob.push((*k, *v));\n\
                   }\n\
                   encode_checkpoint(&blob)\n\
               }\n";
    assert_eq!(run(src, hardened()), vec![], "BTreeMap iteration is deterministic");
}

#[test]
fn r10_quiet_when_taint_never_reaches_a_sink() {
    let src = "use std::collections::HashMap;\n\
               fn lookup(m: &HashMap<u32, f32>) -> usize {\n\
                   let mut n = 0;\n\
                   for (_k, _v) in m.iter() {\n\
                       n += 1;\n\
                   }\n\
                   n\n\
               }\n";
    let findings = run(src, plain());
    assert_eq!(
        findings.iter().filter(|f| f.rule == "determinism-taint").count(),
        0,
        "counting map entries persists nothing: {findings:#?}"
    );
}

#[test]
fn r10_quiet_on_clock_used_only_for_control() {
    // Timing a phase and logging it to stderr is fine — only declared
    // persisted sinks count.
    let src = "fn run(job: &Job) {\n\
                   let t0 = std::time::Instant::now();\n\
                   job.execute();\n\
                   eprintln!(\"took {:?}\", t0.elapsed());\n\
               }\n";
    assert_eq!(run(src, plain()), vec![], "stderr is not a persisted sink");
}

#[test]
fn r10_suppression_with_justification_is_honored() {
    let src = "fn stamp(m: &mut Manifest) {\n\
                   let t = std::time::Instant::now();\n\
                   let id = derive(t);\n\
                   // analyze: allow(determinism-taint) — record id is advisory, not replayed\n\
                   m.write_record(&id);\n\
               }\n";
    assert_eq!(run(src, hardened()), vec![], "justified allow must silence R10");
}

#[test]
fn r10_quiet_inside_cfg_test_items() {
    let src = "#[cfg(test)]\n\
               mod tests {\n\
                   use std::collections::HashMap;\n\
                   fn save(w: &HashMap<u32, f32>) -> Vec<u8> {\n\
                       let mut blob = Vec::new();\n\
                       for (k, v) in w.iter() { blob.push((*k, *v)); }\n\
                       encode_checkpoint(&blob)\n\
                   }\n\
               }\n";
    assert_eq!(run(src, hardened()), vec![], "test items persist fixture data by design");
}

// ---------------------------------------------------------------------------
// R11: unchecked index arithmetic
// ---------------------------------------------------------------------------

#[test]
fn r11_offset_arithmetic_into_slice_indexing() {
    let src = "fn read_at(buf: &[u8], base: usize, idx: usize) -> u8 {\n\
                   let off = base + idx * 4;\n\
                   buf[off]\n\
               }\n";
    let findings = run(src, decode());
    assert_eq!(rules_of(&findings), vec!["unchecked-index"], "findings: {findings:#?}");
    assert_eq!(findings[0].symbol.as_deref(), Some("read_at"));
    assert!(findings[0].message.contains("`off`"), "message: {}", findings[0].message);
}

#[test]
fn r11_quiet_when_bounds_checked_first() {
    let src = "fn read_at(buf: &[u8], base: usize, idx: usize) -> u8 {\n\
                   let off = base + idx * 4;\n\
                   if off < buf.len() {\n\
                       buf[off]\n\
                   } else {\n\
                       0\n\
                   }\n\
               }\n";
    assert_eq!(run(src, decode()), vec![], "comparison guard absolves the offset");
}

#[test]
fn r11_quiet_with_checked_get() {
    let src = "fn read_at(buf: &[u8], base: usize, idx: usize) -> u8 {\n\
                   let off = base + idx * 4;\n\
                   buf.get(off).copied().unwrap_or(0)\n\
               }\n";
    assert_eq!(run(src, decode()), vec![], "`.get` is the checked form");
}

#[test]
fn r11_quiet_with_modulo_bound() {
    let src = "fn pick(buf: &[u8], seed: usize) -> u8 {\n\
                   let off = (seed * 31) % buf.len();\n\
                   buf[off]\n\
               }\n";
    assert_eq!(run(src, decode()), vec![], "modulo bounds the index");
}

#[test]
fn r11_is_gated_to_decode_profiles() {
    let src = "fn read_at(buf: &[u8], base: usize, idx: usize) -> u8 {\n\
                   let off = base + idx * 4;\n\
                   buf[off]\n\
               }\n";
    assert_eq!(
        run(src, plain()).iter().filter(|f| f.rule == "unchecked-index").count(),
        0,
        "R11 applies to decode paths only"
    );
}

// ---------------------------------------------------------------------------
// R12: swallowed Result on persisted-artifact paths
// ---------------------------------------------------------------------------

#[test]
fn r12_let_underscore_on_sink_result() {
    let src = "fn save(m: &mut Manifest, rec: &Record) {\n\
                   let _ = m.write_record(rec);\n\
               }\n";
    let findings = run(src, plain());
    assert_eq!(rules_of(&findings), vec!["swallowed-result"], "findings: {findings:#?}");
    assert!(findings[0].message.contains("write_record"), "message: {}", findings[0].message);
}

#[test]
fn r12_ok_swallow_on_sink_result() {
    let src = "fn save(p: &Path, blob: &[u8]) {\n\
                   write_atomic(p, blob).ok();\n\
               }\n";
    let findings = run(src, plain());
    assert_eq!(rules_of(&findings), vec!["swallowed-result"], "findings: {findings:#?}");
    assert!(findings[0].message.contains("write_atomic"));
}

#[test]
fn r12_quiet_on_propagated_and_handled_results() {
    let src = "fn save(m: &mut Manifest, rec: &Record) -> Result<(), E> {\n\
                   m.write_record(rec)?;\n\
                   match m.write_record(rec) {\n\
                       Ok(()) => {}\n\
                       Err(e) => return Err(e),\n\
                   }\n\
                   Ok(())\n\
               }\n";
    assert_eq!(run(src, plain()), vec![], "propagated results are the correct form");
}

#[test]
fn r12_quiet_on_non_sink_calls() {
    let src = "fn tick(counter: &Counter) {\n\
                   let _ = counter.bump();\n\
                   lookup(counter).ok();\n\
               }\n";
    assert_eq!(run(src, plain()), vec![], "R12 watches declared sinks only");
}
