//! True-positive / true-negative fixtures for the interprocedural rules
//! (R13 panic-reachability, R14 lock-order, R15 blocking-under-lock).
//!
//! These rules resolve over the *workspace* call graph, so every fixture
//! is a small scratch workspace on disk, analyzed in-process through the
//! same `analyze_workspace_with` entry point the binary uses. Assertions
//! filter to the rule under test: scratch code may legitimately trip
//! unrelated warnings (`dead-public-api` on an unused planted API) and
//! those must not couple these fixtures to other rules' behavior.

use std::fs;
use std::path::{Path, PathBuf};

use hoga_analyze::{analyze_workspace_with, AnalyzeOptions, Finding};

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hoga-analyze-cg-{}-{name}", std::process::id()));
    if dir.exists() {
        fs::remove_dir_all(&dir).expect("clear scratch dir");
    }
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Lays down the workspace skeleton (manifest + crate root) and the given
/// `(relative path, source)` files, then runs the full analysis.
fn analyze(dir: &Path, files: &[(&str, &str)]) -> Vec<Finding> {
    fs::write(
        dir.join("Cargo.toml"),
        "[package]\nname = \"scratch\"\nversion = \"0.1.0\"\nedition = \"2021\"\n",
    )
    .expect("write manifest");
    fs::create_dir_all(dir.join("src")).expect("mkdir src");
    fs::write(dir.join("src/lib.rs"), "#![forbid(unsafe_code)]\n").expect("write lib.rs");
    for (rel, src) in files {
        let path = dir.join(rel);
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent).expect("mkdir fixture dir");
        }
        fs::write(path, src).expect("write fixture file");
    }
    let (findings, _stats) =
        analyze_workspace_with(dir, &AnalyzeOptions::default()).expect("analyze scratch");
    findings
}

fn of<'a>(findings: &'a [Finding], rule: &str) -> Vec<&'a Finding> {
    findings.iter().filter(|f| f.rule == rule).collect()
}

// ---------------------------------------------------------------------------
// R13: panic-reachability
// ---------------------------------------------------------------------------

/// Non-hardened decode helpers: `decode_blob` forwards to `parse_head`,
/// which carries a hard panic seed (`.unwrap()`).
const DECODE: &str = "pub(crate) fn decode_blob(bytes: &[u8]) -> u32 {\n\
                          parse_head(bytes)\n\
                      }\n\
                      fn parse_head(bytes: &[u8]) -> u32 {\n\
                          u32::from(bytes.first().copied().unwrap())\n\
                      }\n";

/// A hardened module's public API calling into the decode helpers.
/// `crates/tensor/src/matrix.rs` is on the hardened list, so R13 owns it.
const HARDENED_API: &str = "pub fn load_weights(bytes: &[u8]) -> u32 {\n\
                                decode_blob(bytes)\n\
                            }\n";

#[test]
fn r13_hardened_api_reaching_cross_file_panic_is_flagged_with_witness() {
    let dir = scratch("r13-tp");
    let findings =
        analyze(&dir, &[("crates/tensor/src/matrix.rs", HARDENED_API), ("src/decode.rs", DECODE)]);
    let hits = of(&findings, "panic-reachability");
    assert_eq!(hits.len(), 1, "findings: {findings:#?}");
    let f = hits[0];
    assert_eq!(f.file, "crates/tensor/src/matrix.rs", "flagged at the hardened API, not the seed");
    assert_eq!(f.symbol.as_deref(), Some("load_weights"));
    assert_eq!(f.severity(), "error");
    assert!(
        f.message.contains("load_weights -> decode_blob -> parse_head"),
        "witness path missing: {}",
        f.message
    );
    assert!(f.message.contains("panic site src/decode.rs"), "seed site missing: {}", f.message);
    assert!(f.message.contains("`.unwrap()`"), "seed kind missing: {}", f.message);
}

#[test]
fn r13_suppression_at_the_seed_site_silences_the_distant_finding() {
    // The finding lands in `matrix.rs`, but the justification belongs next
    // to the panic — an allow on the seed line stops it from seeding the
    // graph at all.
    let suppressed = DECODE.replace(
        "u32::from(bytes.first().copied().unwrap())",
        "// analyze: allow(panic-reachability) — callers length-check the blob first\n\
         u32::from(bytes.first().copied().unwrap())",
    );
    assert_ne!(suppressed, DECODE, "the replace must have planted the allow");
    let dir = scratch("r13-allow");
    let findings = analyze(
        &dir,
        &[("crates/tensor/src/matrix.rs", HARDENED_API), ("src/decode.rs", &suppressed)],
    );
    assert_eq!(of(&findings, "panic-reachability").len(), 0, "findings: {findings:#?}");
    assert_eq!(
        of(&findings, "unused-suppression").len(),
        0,
        "a seed-consuming allow must count as used: {findings:#?}"
    );
}

#[test]
fn r13_quiet_when_the_caller_is_not_hardened() {
    let dir = scratch("r13-plain");
    let findings = analyze(&dir, &[("src/api.rs", HARDENED_API), ("src/decode.rs", DECODE)]);
    assert_eq!(of(&findings, "panic-reachability").len(), 0, "findings: {findings:#?}");
}

#[test]
fn r13_quiet_when_the_panic_lives_in_test_code() {
    let test_only = "pub(crate) fn decode_blob(bytes: &[u8]) -> u32 {\n\
                         u32::from(bytes.len() as u8)\n\
                     }\n\
                     #[cfg(test)]\n\
                     mod tests {\n\
                         fn parse_head(bytes: &[u8]) -> u32 {\n\
                             u32::from(bytes.first().copied().unwrap())\n\
                         }\n\
                     }\n";
    let dir = scratch("r13-test");
    let findings = analyze(
        &dir,
        &[("crates/tensor/src/matrix.rs", HARDENED_API), ("src/decode.rs", test_only)],
    );
    assert_eq!(of(&findings, "panic-reachability").len(), 0, "findings: {findings:#?}");
}

// ---------------------------------------------------------------------------
// R14: lock-order
// ---------------------------------------------------------------------------

#[test]
fn r14_declared_order_inversion_is_flagged() {
    // `LOCK_ORDER` declares grad_slots before event_log; acquiring
    // grad_slots while event_log is held inverts it.
    let src = "pub(crate) fn tick(shared: &Shared) {\n\
                   let log = shared.event_log.lock();\n\
                   let slots = shared.grad_slots.lock();\n\
                   use_both(log, slots);\n\
               }\n";
    let dir = scratch("r14-tp");
    let findings = analyze(&dir, &[("src/sched.rs", src)]);
    let hits = of(&findings, "lock-order");
    assert_eq!(hits.len(), 1, "findings: {findings:#?}");
    assert_eq!(hits[0].symbol.as_deref(), Some("grad_slots"));
    assert!(hits[0].message.contains("inverts the declared workspace lock order"));
}

#[test]
fn r14_declared_order_respected_is_quiet() {
    let src = "pub(crate) fn tick(shared: &Shared) {\n\
                   let slots = shared.grad_slots.lock();\n\
                   let log = shared.event_log.lock();\n\
                   use_both(log, slots);\n\
               }\n";
    let dir = scratch("r14-ok");
    let findings = analyze(&dir, &[("src/sched.rs", src)]);
    assert_eq!(of(&findings, "lock-order").len(), 0, "findings: {findings:#?}");
}

#[test]
fn r14_scoped_release_then_acquire_is_quiet() {
    // The first guard dies with its block, so the second acquisition
    // happens lock-free — no edge, no inversion.
    let src = "pub(crate) fn tick(shared: &Shared) {\n\
                   {\n\
                       let log = shared.event_log.lock();\n\
                       note(log);\n\
                   }\n\
                   let slots = shared.grad_slots.lock();\n\
                   use_slots(slots);\n\
               }\n";
    let dir = scratch("r14-scope");
    let findings = analyze(&dir, &[("src/sched.rs", src)]);
    assert_eq!(of(&findings, "lock-order").len(), 0, "findings: {findings:#?}");
}

#[test]
fn r14_drop_release_then_acquire_is_quiet() {
    let src = "pub(crate) fn tick(shared: &Shared) {\n\
                   let log = shared.event_log.lock();\n\
                   note(&log);\n\
                   drop(log);\n\
                   let slots = shared.grad_slots.lock();\n\
                   use_slots(slots);\n\
               }\n";
    let dir = scratch("r14-drop");
    let findings = analyze(&dir, &[("src/sched.rs", src)]);
    assert_eq!(of(&findings, "lock-order").len(), 0, "findings: {findings:#?}");
}

#[test]
fn r14_reacquiring_a_held_lock_is_flagged() {
    let src = "pub(crate) fn tick(shared: &Shared) {\n\
                   let a = shared.event_log.lock();\n\
                   let b = shared.event_log.lock();\n\
                   use_both(a, b);\n\
               }\n";
    let dir = scratch("r14-reacquire");
    let findings = analyze(&dir, &[("src/sched.rs", src)]);
    let hits = of(&findings, "lock-order");
    assert_eq!(hits.len(), 1, "findings: {findings:#?}");
    assert!(hits[0].message.contains("re-acquires a non-reentrant lock"));
}

#[test]
fn r14_cross_file_lock_order_cycle_is_flagged() {
    // Two locks outside the declared order, acquired in opposite orders
    // in two files: only the workspace lock-order graph can see the cycle.
    let ab = "pub(crate) fn forward(shared: &Shared) {\n\
                  let a = shared.alpha_mu.lock();\n\
                  let b = shared.beta_mu.lock();\n\
                  use_both(a, b);\n\
              }\n";
    let ba = "pub(crate) fn backward(shared: &Shared) {\n\
                  let b = shared.beta_mu.lock();\n\
                  let a = shared.alpha_mu.lock();\n\
                  use_both(a, b);\n\
              }\n";
    let dir = scratch("r14-cycle");
    let findings = analyze(&dir, &[("src/fwd.rs", ab), ("src/bwd.rs", ba)]);
    let hits = of(&findings, "lock-order");
    assert_eq!(hits.len(), 1, "one finding per cycle, not per edge: {findings:#?}");
    let f = hits[0];
    assert!(f.message.contains("workspace lock-order cycle"), "message: {}", f.message);
    assert!(f.message.contains("alpha_mu -> beta_mu"), "message: {}", f.message);
    assert!(f.message.contains("beta_mu -> alpha_mu"), "message: {}", f.message);
}

#[test]
fn r14_same_order_in_both_files_is_quiet() {
    let ab = "pub(crate) fn forward(shared: &Shared) {\n\
                  let a = shared.alpha_mu.lock();\n\
                  let b = shared.beta_mu.lock();\n\
                  use_both(a, b);\n\
              }\n";
    let ab2 = "pub(crate) fn backward(shared: &Shared) {\n\
                   let a = shared.alpha_mu.lock();\n\
                   let b = shared.beta_mu.lock();\n\
                   use_both(a, b);\n\
               }\n";
    let dir = scratch("r14-consistent");
    let findings = analyze(&dir, &[("src/fwd.rs", ab), ("src/bwd.rs", ab2)]);
    assert_eq!(of(&findings, "lock-order").len(), 0, "findings: {findings:#?}");
}

// ---------------------------------------------------------------------------
// R15: blocking-under-lock
// ---------------------------------------------------------------------------

#[test]
fn r15_direct_file_read_under_held_guard_is_flagged() {
    let src = "pub(crate) fn reload(shared: &Shared, f: &mut File) {\n\
                   let log = shared.event_log.lock();\n\
                   let mut buf = Vec::new();\n\
                   f.read_to_end(&mut buf);\n\
                   apply(log, buf);\n\
               }\n";
    let dir = scratch("r15-direct");
    let findings = analyze(&dir, &[("src/reload.rs", src)]);
    let hits = of(&findings, "blocking-under-lock");
    assert_eq!(hits.len(), 1, "findings: {findings:#?}");
    let f = hits[0];
    assert_eq!(f.symbol.as_deref(), Some("reload"));
    assert!(f.message.contains("file/stream I/O"), "message: {}", f.message);
    assert!(f.message.contains("guard(s) `event_log`"), "message: {}", f.message);
}

#[test]
fn r15_transitive_blocking_callee_is_flagged_at_the_call_site() {
    // The blocking op lives in another file; only the call graph connects
    // the held guard to it.
    let caller = "pub(crate) fn persist(shared: &Shared) {\n\
                      let log = shared.event_log.lock();\n\
                      store_bytes();\n\
                      note(log);\n\
                  }\n";
    let callee = "pub(crate) fn store_bytes() {\n\
                      let _data = std::fs::read(\"weights.bin\");\n\
                  }\n";
    let dir = scratch("r15-transitive");
    let findings = analyze(&dir, &[("src/persist.rs", caller), ("src/store.rs", callee)]);
    let hits = of(&findings, "blocking-under-lock");
    assert_eq!(hits.len(), 1, "findings: {findings:#?}");
    let f = hits[0];
    assert_eq!(f.file, "src/persist.rs", "flagged at the under-lock call site");
    assert!(f.message.contains("call to `store_bytes`"), "message: {}", f.message);
    assert!(f.message.contains("may block"), "message: {}", f.message);
    assert!(f.message.contains("blocking site src/store.rs"), "message: {}", f.message);
}

#[test]
fn r15_blocking_after_drop_is_quiet() {
    let src = "pub(crate) fn reload(shared: &Shared, f: &mut File) {\n\
                   let log = shared.event_log.lock();\n\
                   note(&log);\n\
                   drop(log);\n\
                   let mut buf = Vec::new();\n\
                   f.read_to_end(&mut buf);\n\
               }\n";
    let dir = scratch("r15-drop");
    let findings = analyze(&dir, &[("src/reload.rs", src)]);
    assert_eq!(of(&findings, "blocking-under-lock").len(), 0, "findings: {findings:#?}");
}

#[test]
fn r15_suppressed_seed_site_is_quiet() {
    let caller = "pub(crate) fn persist(shared: &Shared) {\n\
                      let log = shared.event_log.lock();\n\
                      store_bytes();\n\
                      note(log);\n\
                  }\n";
    let callee = "pub(crate) fn store_bytes() {\n\
                      // analyze: allow(blocking-under-lock) — reads a 16-byte header, bounded\n\
                      let _data = std::fs::read(\"weights.bin\");\n\
                  }\n";
    let dir = scratch("r15-allow");
    let findings = analyze(&dir, &[("src/persist.rs", caller), ("src/store.rs", callee)]);
    assert_eq!(of(&findings, "blocking-under-lock").len(), 0, "findings: {findings:#?}");
    assert_eq!(of(&findings, "unused-suppression").len(), 0, "findings: {findings:#?}");
}
