//! Incremental-cache behavior: a warm run replays per-file artifacts
//! instead of reparsing, and renders a byte-identical report.
//!
//! Each test builds a small scratch workspace under the system temp dir,
//! runs the analyzer cold (populating the cache) and warm (consuming it),
//! and asserts the hit/miss counters plus output equality. The cross-file
//! stage is a pure function of the artifacts, so equality is exact — any
//! drift between cold and warm output is a cache codec bug.

use std::fs;
use std::path::{Path, PathBuf};

use hoga_analyze::{analyze_workspace_with, render_json, AnalyzeOptions};

/// Fresh scratch directory, unique per test process + name.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hoga-analyze-inc-{}-{name}", std::process::id()));
    if dir.exists() {
        fs::remove_dir_all(&dir).expect("clear scratch dir");
    }
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Lays down a three-file workspace with one planted determinism-taint
/// finding (HashMap iteration feeding a checkpoint encoder).
fn write_workspace(root: &Path) {
    fs::create_dir_all(root.join("src")).expect("mkdir src");
    fs::write(
        root.join("Cargo.toml"),
        "[package]\nname = \"scratch\"\nversion = \"0.1.0\"\nedition = \"2021\"\n",
    )
    .expect("write manifest");
    fs::write(root.join("src/lib.rs"), "#![forbid(unsafe_code)]\nmod tainted;\nmod clean;\n")
        .expect("write lib.rs");
    fs::write(root.join("src/tainted.rs"), TAINTED).expect("write tainted.rs");
    fs::write(
        root.join("src/clean.rs"),
        "pub(crate) fn add(a: u32, b: u32) -> u32 { a.wrapping_add(b) }\n",
    )
    .expect("write clean.rs");
}

const TAINTED: &str = "use std::collections::HashMap;\n\
                       pub(crate) fn save(w: &HashMap<u32, f32>) -> Vec<u8> {\n\
                           let mut blob = Vec::new();\n\
                           for (k, v) in w.iter() {\n\
                               blob.push((*k, *v));\n\
                           }\n\
                           encode_checkpoint(&blob)\n\
                       }\n";

fn run(root: &Path, cache: &Path) -> (String, hoga_analyze::AnalysisStats) {
    let opts = AnalyzeOptions { cache_dir: Some(cache.to_path_buf()) };
    let (findings, stats) = analyze_workspace_with(root, &opts).expect("analyze workspace");
    (render_json(&findings), stats)
}

#[test]
fn warm_run_replays_every_artifact_and_renders_identically() {
    let dir = scratch("warm");
    let root = dir.join("ws");
    let cache = dir.join("cache");
    write_workspace(&root);

    let (cold_json, cold) = run(&root, &cache);
    assert_eq!(cold.files, 3, "three .rs files in the scratch workspace");
    assert_eq!(cold.cache_hits, 0, "cold run hits nothing");
    assert_eq!(cold.cache_misses, cold.files, "cold run computes every file");
    assert!(
        cold_json.contains("determinism-taint"),
        "planted finding must survive the cache: {cold_json}"
    );

    let (warm_json, warm) = run(&root, &cache);
    assert_eq!(warm.cache_hits, warm.files, "warm run must replay every artifact");
    assert_eq!(warm.cache_misses, 0, "warm run must not reparse anything");
    assert_eq!(warm_json, cold_json, "cached findings must be byte-identical");
    // CFG/dataflow stats are carried in the artifacts, so the warm run
    // reports the same totals without rebuilding a single CFG.
    assert_eq!((warm.cfgs, warm.blocks, warm.edges), (cold.cfgs, cold.blocks, cold.edges));
    assert_eq!(warm.fixpoint_iterations, cold.fixpoint_iterations);
}

#[test]
fn editing_one_file_invalidates_only_that_artifact() {
    let dir = scratch("edit");
    let root = dir.join("ws");
    let cache = dir.join("cache");
    write_workspace(&root);

    let (json_before, _) = run(&root, &cache);
    assert!(json_before.contains("determinism-taint"));

    // Swap the unordered map for an ordered one — the finding must vanish
    // and only the edited file may be recomputed.
    let fixed = TAINTED.replace("HashMap", "BTreeMap");
    fs::write(root.join("src/tainted.rs"), fixed).expect("rewrite tainted.rs");

    let (json_after, stats) = run(&root, &cache);
    assert_eq!(stats.cache_hits, 2, "unchanged files replay from cache");
    assert_eq!(stats.cache_misses, 1, "only the edited file recomputes");
    assert!(
        !json_after.contains("determinism-taint"),
        "BTreeMap iteration is deterministic: {json_after}"
    );
}

#[test]
fn corrupt_artifact_is_a_miss_not_a_wrong_answer() {
    let dir = scratch("corrupt");
    let root = dir.join("ws");
    let cache = dir.join("cache");
    write_workspace(&root);

    let (cold_json, _) = run(&root, &cache);

    // Flip one byte in every cached record; the CRC must reject them all.
    let mut flipped = 0;
    for entry in fs::read_dir(&cache).expect("read cache dir") {
        let path = entry.expect("cache entry").path();
        if path.extension().map(|e| e == "rec").unwrap_or(false) {
            let mut bytes = fs::read(&path).expect("read record");
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0x41;
            fs::write(&path, bytes).expect("rewrite record");
            flipped += 1;
        }
    }
    assert_eq!(flipped, 3, "one record per file");

    let (json, stats) = run(&root, &cache);
    assert_eq!(stats.cache_hits, 0, "corrupt records must not be trusted");
    assert_eq!(stats.cache_misses, 3);
    assert_eq!(json, cold_json, "recomputed output matches the original run");

    // The rewritten records are valid again: a follow-up run replays them.
    let (_, healed) = run(&root, &cache);
    assert_eq!(healed.cache_hits, 3, "cache heals itself after recompute");
}

#[test]
fn cache_is_keyed_to_content_not_timestamps() {
    let dir = scratch("touch");
    let root = dir.join("ws");
    let cache = dir.join("cache");
    write_workspace(&root);
    run(&root, &cache);

    // Rewrite a file with identical bytes — still a hit, because the key
    // is the content hash, not mtime.
    let src = fs::read(root.join("src/clean.rs")).expect("read clean.rs");
    fs::write(root.join("src/clean.rs"), src).expect("rewrite clean.rs");

    let (_, stats) = run(&root, &cache);
    assert_eq!(stats.cache_hits, 3, "byte-identical rewrite must stay a hit");
    assert_eq!(stats.cache_misses, 0);
}
