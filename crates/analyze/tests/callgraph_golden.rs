//! Golden tests for the workspace call graph: resolution policy (same
//! file wins, ambiguous names drop), SCC condensation on recursive and
//! mutually recursive corpora, seed propagation, and byte-identical
//! `to_json` output regardless of input order — the determinism contract
//! behind the `--callgraph` CI artifact.

use std::path::Path;

use hoga_analyze::callgraph::{build_graph, file_input, CgFileInput};
use hoga_analyze::workspace::read_workspace_sources;
use hoga_analyze::FileProfile;

fn input(rel: &str, src: &str) -> CgFileInput {
    file_input(rel, src, FileProfile::default())
}

// ---------------------------------------------------------------------------
// Synthetic corpus
// ---------------------------------------------------------------------------

#[test]
fn panic_seed_propagates_up_a_cross_file_chain() {
    let a = "fn top(v: Option<u32>) -> u32 {\n\
                 mid(v)\n\
             }\n\
             fn pure(x: u32) -> u32 {\n\
                 x\n\
             }\n";
    let b = "pub(crate) fn mid(v: Option<u32>) -> u32 {\n\
                 bottom(v)\n\
             }\n\
             fn bottom(v: Option<u32>) -> u32 {\n\
                 v.unwrap()\n\
             }\n";
    let mut g = build_graph(&[input("src/a.rs", a), input("src/b.rs", b)]);
    g.propagate();
    assert!(g.may_panic("src/b.rs", "bottom"), "the seed itself");
    assert!(g.may_panic("src/b.rs", "mid"), "one hop");
    assert!(g.may_panic("src/a.rs", "top"), "across files via the unique name `mid`");
    assert!(!g.may_panic("src/a.rs", "pure"), "no path to the seed");
    assert!(!g.may_block("src/a.rs", "top"), "panic and block lattices are independent");
}

#[test]
fn blocking_seed_propagates_like_panic() {
    let src = "fn io() {\n\
                   let _data = std::fs::read(\"p\");\n\
               }\n\
               fn outer() {\n\
                   io()\n\
               }\n";
    let mut g = build_graph(&[input("src/a.rs", src)]);
    g.propagate();
    assert!(g.may_block("src/a.rs", "io"));
    assert!(g.may_block("src/a.rs", "outer"));
    assert!(!g.may_panic("src/a.rs", "outer"));
}

#[test]
fn ambiguous_names_produce_no_edge() {
    // `helper` is defined in two files; a call from a third must not bind
    // to either — under-approximate rather than invent reachability.
    let caller = "fn top(v: Option<u32>) -> u32 {\n\
                      helper(v)\n\
                  }\n";
    let h1 = "fn helper(v: Option<u32>) -> u32 {\n\
                  v.unwrap()\n\
              }\n";
    let h2 = "fn helper(v: Option<u32>) -> u32 {\n\
                  v.unwrap()\n\
              }\n";
    let mut g =
        build_graph(&[input("src/a.rs", caller), input("src/b.rs", h1), input("src/c.rs", h2)]);
    g.propagate();
    assert_eq!(g.edges(), 0, "the ambiguous call must not resolve");
    assert!(!g.may_panic("src/a.rs", "top"));
    assert!(g.may_panic("src/b.rs", "helper"));
    assert!(g.may_panic("src/c.rs", "helper"));
}

#[test]
fn same_file_definition_wins_over_a_unique_foreign_one() {
    let a = "fn top(v: Option<u32>) -> u32 {\n\
                 helper(v)\n\
             }\n\
             fn helper(v: Option<u32>) -> u32 {\n\
                 0\n\
             }\n";
    let b = "fn helper(v: Option<u32>) -> u32 {\n\
                 v.unwrap()\n\
             }\n";
    let mut g = build_graph(&[input("src/a.rs", a), input("src/b.rs", b)]);
    g.propagate();
    assert_eq!(g.edges(), 1, "top -> local helper only");
    assert!(!g.may_panic("src/a.rs", "top"), "must bind to the clean local helper");
    assert!(g.may_panic("src/b.rs", "helper"));
}

#[test]
fn direct_recursion_is_a_self_loop_scc() {
    let src = "fn rec(n: u32) -> u32 {\n\
                   if n == 0 {\n\
                       panic!(\"bottom\")\n\
                   }\n\
                   rec(n)\n\
               }\n";
    let mut g = build_graph(&[input("src/a.rs", src)]);
    assert_eq!(g.nodes(), 1);
    assert_eq!(g.edges(), 1, "the self edge is kept");
    assert_eq!(g.sccs(), 1);
    g.propagate();
    assert!(g.may_panic("src/a.rs", "rec"));
}

#[test]
fn mutual_recursion_condenses_into_one_scc() {
    // `even` and `odd` call each other; `entry` calls into the cycle. The
    // panic seed sits on one cycle member but must mark the whole SCC.
    let src = "fn entry(n: u32) -> bool {\n\
                   even(n)\n\
               }\n\
               fn even(n: u32) -> bool {\n\
                   odd(n)\n\
               }\n\
               fn odd(n: u32) -> bool {\n\
                   if n == 7 {\n\
                       panic!(\"seven\")\n\
                   }\n\
                   even(n)\n\
               }\n";
    let mut g = build_graph(&[input("src/a.rs", src)]);
    assert_eq!(g.nodes(), 3);
    assert_eq!(g.sccs(), 2, "`even`/`odd` share a component, `entry` has its own");
    let visits = g.propagate();
    assert!(visits >= g.edges(), "single pass visits every edge at least once");
    assert!(g.may_panic("src/a.rs", "entry"));
    assert!(g.may_panic("src/a.rs", "even"));
    assert!(g.may_panic("src/a.rs", "odd"));
}

#[test]
fn test_code_contributes_neither_nodes_nor_seeds() {
    let src = "fn live(x: u32) -> u32 {\n\
                   x\n\
               }\n\
               #[cfg(test)]\n\
               mod tests {\n\
                   fn fixture(v: Option<u32>) -> u32 {\n\
                       v.unwrap()\n\
                   }\n\
               }\n";
    let g = build_graph(&[input("src/a.rs", src)]);
    assert_eq!(g.nodes(), 1, "only the non-test definition");
}

// ---------------------------------------------------------------------------
// Determinism of the --callgraph artifact
// ---------------------------------------------------------------------------

#[test]
fn to_json_is_independent_of_input_order() {
    let a = "fn top(v: Option<u32>) -> u32 {\n\
                 mid(v)\n\
             }\n";
    let b = "pub(crate) fn mid(v: Option<u32>) -> u32 {\n\
                 v.unwrap()\n\
             }\n";
    let fwd = [input("src/a.rs", a), input("src/b.rs", b)];
    let rev = [input("src/b.rs", b), input("src/a.rs", a)];
    let mut g1 = build_graph(&fwd);
    let mut g2 = build_graph(&rev);
    g1.propagate();
    g2.propagate();
    assert_eq!(g1.to_json(), g2.to_json(), "node order is sorted (file, name), not input order");
}

#[test]
fn to_json_carries_schema_counts_and_qualified_edges() {
    let a = "fn top(v: Option<u32>) -> u32 {\n\
                 mid(v)\n\
             }\n";
    let b = "pub(crate) fn mid(v: Option<u32>) -> u32 {\n\
                 v.unwrap()\n\
             }\n";
    let mut g = build_graph(&[input("src/a.rs", a), input("src/b.rs", b)]);
    g.propagate();
    let json = g.to_json();
    assert!(json.contains("\"schema\": \"hoga-analyze-callgraph v1\""), "json: {json}");
    assert!(json.contains("\"nodes\": 2"), "json: {json}");
    assert!(json.contains("\"calls\": [\"src/b.rs::mid\"]"), "edges are file-qualified: {json}");
    assert!(json.contains("\"may_panic\": true"), "json: {json}");
    assert!(json.ends_with("}\n"), "artifact ends with a newline for clean diffs");
}

#[test]
fn propagate_is_idempotent() {
    let src = "fn entry(n: u32) -> bool {\n\
                   even(n)\n\
               }\n\
               fn even(n: u32) -> bool {\n\
                   odd(n)\n\
               }\n\
               fn odd(n: u32) -> bool {\n\
                   if n == 7 {\n\
                       panic!(\"seven\")\n\
                   }\n\
                   even(n)\n\
               }\n";
    let mut g = build_graph(&[input("src/a.rs", src)]);
    let first = g.propagate();
    let snapshot = g.to_json();
    let second = g.propagate();
    assert_eq!(first, second, "edge-visit count is a pure function of the graph");
    assert_eq!(g.to_json(), snapshot, "re-propagation must not perturb the artifact");
}

// ---------------------------------------------------------------------------
// The analyzer's own sources as a corpus
// ---------------------------------------------------------------------------

#[test]
fn analyzer_sources_build_a_deterministic_graph() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let sources = read_workspace_sources(root).expect("read analyzer sources");
    assert!(!sources.is_empty());
    let inputs: Vec<CgFileInput> =
        sources.iter().map(|(rel, s)| file_input(rel, s, FileProfile::default())).collect();
    let mut g1 = build_graph(&inputs);
    let mut g2 = build_graph(&inputs);
    g1.propagate();
    g2.propagate();
    assert!(g1.nodes() > 0);
    assert!(g1.sccs() <= g1.nodes());
    assert_eq!(g1.to_json(), g2.to_json(), "two builds over the same corpus are byte-identical");
    // A known anchor: this test file's own corpus includes callgraph.rs,
    // whose `build_graph` is a real definition the graph must carry.
    assert!(
        g1.to_json().contains("\"name\": \"build_graph\""),
        "the analyzer's own entry point must appear as a node"
    );
}
