//! Golden-file and property tests for the CFG builder.
//!
//! The golden tests pin the exact block structure [`Cfg::render`] emits
//! for representative control-flow shapes, so any lowering change shows
//! up as a readable diff here before it shows up as a wrong dataflow
//! verdict. The property tests check structural invariants over a corpus
//! that includes the analyzer's own sources: every block is reachable
//! from entry, every edge targets a real block, and every edge position
//! stays inside the function's span.

use hoga_analyze::cfg::{function_cfgs, Cfg};
use hoga_analyze::dataflow::{forward_fixpoint, Analysis, Fixpoint};
use hoga_analyze::lexer::{lex, TokKind, Token};

fn code_tokens(src: &str) -> Vec<Token> {
    lex(src)
}

fn cfgs(src: &str) -> (Vec<Cfg>, Vec<Token>) {
    let tokens = code_tokens(src);
    (build(&tokens, src), tokens)
}

fn build(tokens: &[Token], src: &str) -> Vec<Cfg> {
    let code: Vec<&Token> = tokens
        .iter()
        .filter(|t| !matches!(t.kind, TokKind::LineComment { .. } | TokKind::BlockComment { .. }))
        .collect();
    function_cfgs(&code, src)
}

fn render(src: &str) -> String {
    let tokens = code_tokens(src);
    let code: Vec<&Token> = tokens
        .iter()
        .filter(|t| !matches!(t.kind, TokKind::LineComment { .. } | TokKind::BlockComment { .. }))
        .collect();
    function_cfgs(&code, src).iter().map(|c| c.render(&code, src)).collect::<Vec<_>>().join("\n")
}

// ---------------------------------------------------------------------------
// Golden renders
// ---------------------------------------------------------------------------

#[test]
fn golden_straight_line() {
    let got = render("fn f() { let a = 1; let b = a; }");
    let want = "fn f exit=b1\n\
                b0: stmts=2 succ=[b1@}]\n\
                b1: stmts=0 succ=[]\n";
    assert_eq!(got, want, "got:\n{got}");
}

#[test]
fn golden_if_else() {
    let got = render("fn f(x: bool) { if x { a(); } else { b(); } c(); }");
    let want = "fn f exit=b4\n\
                b0: stmts=1 succ=[b1@if, b3@else]\n\
                b1: stmts=1 succ=[b2@}]\n\
                b2: stmts=1 succ=[b4@}]\n\
                b3: stmts=1 succ=[b2@}]\n\
                b4: stmts=0 succ=[]\n";
    assert_eq!(got, want, "got:\n{got}");
}

#[test]
fn golden_loop_with_break() {
    let got = render("fn f() { loop { if done() { break; } step(); } after(); }");
    // b1 is the loop head (holding the `if`), b3 the then-branch whose
    // `break` targets b2 (the code after the loop), and b4 the loop tail
    // whose fall-through is the back edge to b1.
    let want = "fn f exit=b5\n\
                b0: stmts=0 succ=[b1@loop]\n\
                b1: stmts=1 succ=[b3@if, b4@if]\n\
                b2: stmts=1 succ=[b5@}]\n\
                b3: stmts=1 succ=[b2@break]\n\
                b4: stmts=1 succ=[b1@}]\n\
                b5: stmts=0 succ=[]\n";
    assert_eq!(got, want, "got:\n{got}");
}

#[test]
fn golden_question_mark_adds_exit_edge() {
    let got = render("fn f() -> Result<(), E> { g()?; h(); Ok(()) }");
    // `?` does not split the block; it adds a may-exit edge alongside the
    // ordinary fall-through to the exit block.
    let want = "fn f exit=b1\n\
                b0: stmts=3 succ=[b1@?, b1@}]\n\
                b1: stmts=0 succ=[]\n";
    assert_eq!(got, want, "got:\n{got}");
}

#[test]
fn golden_match_arms() {
    let got = render("fn f(x: u8) { match x { 0 => a(), _ => { b(); } } t(); }");
    // One block per arm (b2, b3) joining at b1 (the `t()` after the
    // match), then the dedicated exit.
    let want = "fn f exit=b4\n\
                b0: stmts=1 succ=[b2@0, b3@_]\n\
                b1: stmts=1 succ=[b4@}]\n\
                b2: stmts=2 succ=[b1@,]\n\
                b3: stmts=2 succ=[b1@}]\n\
                b4: stmts=0 succ=[]\n";
    assert_eq!(got, want, "got:\n{got}");
}

#[test]
fn golden_code_after_return_is_pruned() {
    let got = render("fn f() -> u8 { return 1; unreachable_call(); }");
    let want = "fn f exit=b1\n\
                b0: stmts=1 succ=[b1@return]\n\
                b1: stmts=0 succ=[]\n";
    assert_eq!(got, want, "got:\n{got}");
}

// ---------------------------------------------------------------------------
// Structural properties
// ---------------------------------------------------------------------------

/// Check the invariants every lowered CFG must satisfy.
fn check_invariants(cfg: &Cfg, origin: &str) {
    let n = cfg.blocks.len();
    assert!(n >= 1, "{origin}: fn {} has no blocks", cfg.name);
    assert!(cfg.exit < n, "{origin}: fn {} exit {} out of range", cfg.name, cfg.exit);
    assert!(
        cfg.blocks[cfg.exit].succs.is_empty(),
        "{origin}: fn {} exit block has successors",
        cfg.name
    );

    // Every edge targets a real block, at a position inside the fn span.
    for (id, block) in cfg.blocks.iter().enumerate() {
        for &(succ, pos) in &block.succs {
            assert!(succ < n, "{origin}: fn {} b{id} -> b{succ} out of range", cfg.name);
            assert!(
                pos >= cfg.span.start && pos <= cfg.span.end,
                "{origin}: fn {} edge b{id}->b{succ} at byte {pos} escapes span {:?}",
                cfg.name,
                cfg.span
            );
        }
    }

    // Every block is reachable from entry (b0). The builder prunes
    // unreachable blocks, so reachability must hold exactly.
    let mut seen = vec![false; n];
    let mut work = vec![0usize];
    seen[0] = true;
    while let Some(b) = work.pop() {
        for &(succ, _) in &cfg.blocks[b].succs {
            if !seen[succ] {
                seen[succ] = true;
                work.push(succ);
            }
        }
    }
    for (id, reached) in seen.iter().enumerate() {
        // The dedicated exit block survives pruning even when the
        // function diverges and nothing falls through to it.
        if id == cfg.exit {
            continue;
        }
        assert!(reached, "{origin}: fn {} block b{id} unreachable from entry", cfg.name);
    }
}

#[test]
fn properties_hold_on_synthetic_corpus() {
    let corpus = [
        "fn a() {}",
        "fn b(x: u8) -> u8 { if x > 1 { x } else { 0 } }",
        "fn c() { for i in 0..9 { if i == 3 { continue; } use_it(i); } }",
        "fn d() -> Result<(), E> { while go()? { step()?; } Ok(()) }",
        "fn e(x: u8) { match x { 0 => {} 1 => { if t() { r(); } } _ => return, } tail(); }",
        "fn f() { loop { loop { if x() { break; } } if y() { break; } } }",
        "fn g() { let c = |k: usize| k + 1; c(3); }",
        "impl S { fn h(&self) -> u8 { self.k } }",
    ];
    for src in corpus {
        let (cfgs, _) = cfgs(src);
        assert!(!cfgs.is_empty(), "no cfg built for {src:?}");
        for cfg in &cfgs {
            check_invariants(cfg, src);
        }
    }
}

#[test]
fn properties_hold_on_own_sources() {
    // The analyzer's own crate is the largest corpus this test can reach
    // without network access; every function it contains must lower to a
    // well-formed CFG.
    let src_dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("src");
    let mut checked = 0usize;
    for entry in std::fs::read_dir(&src_dir).expect("read src dir") {
        let path = entry.expect("dir entry").path();
        if path.extension().map(|e| e != "rs").unwrap_or(true) {
            continue;
        }
        let src = std::fs::read_to_string(&path).expect("read source");
        let tokens = code_tokens(&src);
        for cfg in build(&tokens, &src) {
            check_invariants(&cfg, &path.display().to_string());
            checked += 1;
        }
    }
    assert!(checked > 100, "expected a substantial corpus, checked {checked} fns");
}

// ---------------------------------------------------------------------------
// Dataflow engine on real CFGs
// ---------------------------------------------------------------------------

/// "Has a `?` been crossed on some path to this block" — a tiny forward
/// may-analysis used to exercise the public fixpoint engine end to end.
struct CrossedTry<'a> {
    code: Vec<&'a Token>,
    src: &'a str,
}

impl<'a> Analysis for CrossedTry<'a> {
    type Fact = bool;

    fn bottom(&self) -> bool {
        false
    }

    fn entry(&self) -> bool {
        false
    }

    fn join(&self, into: &mut bool, other: &bool) {
        *into = *into || *other;
    }

    fn transfer(&mut self, cfg: &Cfg, block: usize, fact: &mut bool) {
        for stmt in &cfg.blocks[block].stmts {
            for i in stmt.clone() {
                if matches!(self.code[i].kind, TokKind::Punct('?'))
                    && self.code[i].text(self.src) == "?"
                {
                    *fact = true;
                }
            }
        }
    }
}

#[test]
fn fixpoint_runs_deterministically_over_branching_cfg() {
    let src = "fn f() -> Result<(), E> { if a() { b()?; } else { c(); } d(); Ok(()) }";
    let tokens = code_tokens(src);
    let code: Vec<&Token> = tokens
        .iter()
        .filter(|t| !matches!(t.kind, TokKind::LineComment { .. } | TokKind::BlockComment { .. }))
        .collect();
    let cfg = &function_cfgs(&code, src)[0];

    let run = |()| -> Fixpoint<bool> {
        let mut analysis = CrossedTry { code: code.clone(), src };
        forward_fixpoint(cfg, &mut analysis)
    };
    let first = run(());
    let second = run(());
    assert_eq!(first.entry_facts, second.entry_facts, "facts must be deterministic");
    assert_eq!(first.iterations, second.iterations, "schedule must be deterministic");
    // The join block (where `b()?` and `c()` meet) may have crossed a `?`.
    assert!(first.entry_facts[cfg.exit], "exit block should see the `?`: {:?}", first.entry_facts);
}
