//! Workspace-wide unsafe-allowlist audit (R3).
//!
//! The static-analysis contract is that the `unsafe` keyword appears in
//! exactly one audited module — the feature-gated AVX2 kernel backend —
//! and nowhere else. The rule engine enforces this per file; this test
//! pins the *global* property against the real workspace by lexing every
//! `.rs` file directly, so a rule-dispatch regression (e.g. a profile
//! that stops scanning) cannot silently reopen the door.

use hoga_analyze::lexer::{lex, TokKind};
use hoga_analyze::workspace::{workspace_rs_files, UNSAFE_ALLOWLIST};
use std::fs;
use std::path::Path;

fn workspace_root() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..")
}

#[test]
fn unsafe_keyword_appears_only_in_the_audited_allowlist() {
    let root = workspace_root();
    let files = workspace_rs_files(&root).expect("workspace walk failed");
    assert!(!files.is_empty(), "workspace walk found no Rust files");
    let mut offenders = Vec::new();
    for (rel, path) in &files {
        if UNSAFE_ALLOWLIST.contains(&rel.as_str()) {
            continue;
        }
        let src = fs::read_to_string(path).expect("readable source");
        for t in lex(&src) {
            if t.kind == TokKind::Ident && t.text(&src) == "unsafe" {
                offenders.push(format!("{rel}:{}:{}", t.line, t.col));
            }
        }
    }
    assert!(
        offenders.is_empty(),
        "`unsafe` outside the audited allowlist {UNSAFE_ALLOWLIST:?}:\n{}",
        offenders.join("\n")
    );
}

#[test]
fn allowlisted_modules_exist_and_opt_in_explicitly() {
    // A stale allowlist entry would silently grant unsafe budget to a
    // future file created at that path; require the file to exist and to
    // carry its own module-level `allow(unsafe_code)` opt-in plus at
    // least one actual unsafe occurrence (otherwise the entry is dead
    // and should be removed).
    let root = workspace_root();
    for rel in UNSAFE_ALLOWLIST {
        let path = root.join(rel);
        let src = fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("allowlisted module {rel} unreadable: {e}"));
        let toks = lex(&src);
        let code: Vec<_> = toks
            .iter()
            .filter(|t| {
                !matches!(t.kind, TokKind::LineComment { .. } | TokKind::BlockComment { .. })
            })
            .collect();
        let has_allow = code.windows(4).any(|w| {
            w[0].kind == TokKind::Ident
                && w[0].text(&src) == "allow"
                && matches!(w[1].kind, TokKind::Punct('('))
                && w[2].kind == TokKind::Ident
                && w[2].text(&src) == "unsafe_code"
                && matches!(w[3].kind, TokKind::Punct(')'))
        });
        assert!(has_allow, "{rel}: audited module must carry `#![allow(unsafe_code)]`");
        let uses_unsafe = code.iter().any(|t| t.kind == TokKind::Ident && t.text(&src) == "unsafe");
        assert!(uses_unsafe, "{rel}: allowlist entry is stale (no unsafe occurrences)");
    }
}

#[test]
fn unsafe_owning_crate_root_carries_the_cfg_attr_pair() {
    let root = workspace_root();
    let src = fs::read_to_string(root.join("crates/tensor/src/lib.rs")).expect("tensor root");
    let toks = lex(&src);
    let code: Vec<_> = toks
        .iter()
        .filter(|t| !matches!(t.kind, TokKind::LineComment { .. } | TokKind::BlockComment { .. }))
        .collect();
    for lint in ["forbid", "deny"] {
        let present = code.windows(4).any(|w| {
            w[0].kind == TokKind::Ident
                && w[0].text(&src) == lint
                && matches!(w[1].kind, TokKind::Punct('('))
                && w[2].kind == TokKind::Ident
                && w[2].text(&src) == "unsafe_code"
                && matches!(w[3].kind, TokKind::Punct(')'))
        });
        assert!(present, "tensor crate root is missing its `{lint}(unsafe_code)` half");
    }
}
