//! Differential test: the lexer must account for every byte of every
//! workspace source file.
//!
//! For each `.rs` file the linter walks, re-concatenating the lexed token
//! spans together with the inter-token gaps must reproduce the file
//! byte-for-byte, the gaps must be pure whitespace (the lexer tokenizes
//! everything else, comments included), and spans must be strictly
//! monotonic and non-overlapping. Running against the live workspace makes
//! the whole repository the test corpus, so any construct the lexer
//! mishandles shows up as soon as someone writes it.

use std::fs;
use std::path::Path;

use hoga_analyze::lexer::{lex, Token};
use hoga_analyze::workspace::workspace_rs_files;

fn workspace_root() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..")
}

fn corpus() -> Vec<(String, String)> {
    let files = workspace_rs_files(&workspace_root()).expect("workspace walk");
    assert!(files.len() >= 20, "workspace corpus suspiciously small: {} files", files.len());
    files
        .into_iter()
        .map(|(rel, path)| {
            let src = fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {rel}: {e}"));
            (rel, src)
        })
        .collect()
}

/// Reconstructs the source from token spans plus inter-token gaps.
fn reassemble(src: &str, tokens: &[Token]) -> String {
    let mut out = String::with_capacity(src.len());
    let mut cursor = 0usize;
    for t in tokens {
        out.push_str(&src[cursor..t.start]);
        out.push_str(t.text(src));
        cursor = t.end;
    }
    out.push_str(&src[cursor..]);
    out
}

#[test]
fn token_spans_reassemble_every_file_byte_for_byte() {
    for (rel, src) in corpus() {
        let tokens = lex(&src);
        assert_eq!(reassemble(&src, &tokens), src, "byte-level mismatch in {rel}");
    }
}

#[test]
fn token_spans_are_strictly_monotonic_and_in_bounds() {
    for (rel, src) in corpus() {
        let tokens = lex(&src);
        let mut prev_end = 0usize;
        for (i, t) in tokens.iter().enumerate() {
            assert!(t.start < t.end, "{rel}: token {i} has an empty span ({}..{})", t.start, t.end);
            assert!(
                t.start >= prev_end,
                "{rel}: token {i} at {} overlaps the previous token ending at {prev_end}",
                t.start
            );
            assert!(t.end <= src.len(), "{rel}: token {i} ends past EOF");
            assert!(
                src.is_char_boundary(t.start) && src.is_char_boundary(t.end),
                "{rel}: token {i} splits a UTF-8 character"
            );
            prev_end = t.end;
        }
    }
}

#[test]
fn inter_token_gaps_are_pure_whitespace() {
    for (rel, src) in corpus() {
        let tokens = lex(&src);
        let mut cursor = 0usize;
        for (i, t) in tokens.iter().enumerate() {
            let gap = &src[cursor..t.start];
            assert!(
                gap.chars().all(char::is_whitespace),
                "{rel}: non-whitespace bytes {gap:?} before token {i} — the lexer skipped them"
            );
            cursor = t.end;
        }
        assert!(
            src[cursor..].chars().all(char::is_whitespace),
            "{rel}: non-whitespace trailing bytes after the last token"
        );
    }
}

#[test]
fn line_and_column_positions_match_spans() {
    for (rel, src) in corpus() {
        let tokens = lex(&src);
        for (i, t) in tokens.iter().enumerate() {
            let before = &src[..t.start];
            let line = 1 + before.matches('\n').count() as u32;
            let col = 1 + before.rsplit('\n').next().unwrap_or("").chars().count() as u32;
            assert_eq!((t.line, t.col), (line, col), "{rel}: token {i} position drift");
        }
    }
}
