//! End-to-end exercise of the `hoga-analyze` binary: exit-code semantics
//! for `--baseline` / `--fail-on-new`, the atomic `--report` artifact,
//! and usage errors. Runs the real binary (`CARGO_BIN_EXE_hoga-analyze`)
//! against scratch workspaces, the same way CI invokes it.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hoga-analyze-cli-{}-{name}", std::process::id()));
    if dir.exists() {
        fs::remove_dir_all(&dir).expect("clear scratch dir");
    }
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

const TAINTED: &str = "use std::collections::HashMap;\n\
                       pub(crate) fn save(w: &HashMap<u32, f32>) -> Vec<u8> {\n\
                           let mut blob = Vec::new();\n\
                           for (k, v) in w.iter() {\n\
                               blob.push((*k, *v));\n\
                           }\n\
                           encode_checkpoint(&blob)\n\
                       }\n";

/// One-finding workspace: the planted HashMap-into-checkpoint fixture.
fn write_dirty_workspace(root: &Path) {
    fs::create_dir_all(root.join("src")).expect("mkdir src");
    fs::write(
        root.join("Cargo.toml"),
        "[package]\nname = \"scratch\"\nversion = \"0.1.0\"\nedition = \"2021\"\n",
    )
    .expect("write manifest");
    fs::write(root.join("src/lib.rs"), "#![forbid(unsafe_code)]\nmod tainted;\n")
        .expect("write lib.rs");
    fs::write(root.join("src/tainted.rs"), TAINTED).expect("write tainted.rs");
}

fn write_clean_workspace(root: &Path) {
    fs::create_dir_all(root.join("src")).expect("mkdir src");
    fs::write(
        root.join("Cargo.toml"),
        "[package]\nname = \"scratch\"\nversion = \"0.1.0\"\nedition = \"2021\"\n",
    )
    .expect("write manifest");
    fs::write(
        root.join("src/lib.rs"),
        "#![forbid(unsafe_code)]\npub(crate) fn id(x: u32) -> u32 { x }\n",
    )
    .expect("write lib.rs");
}

fn analyze(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_hoga-analyze"))
        .args(args)
        .output()
        .expect("spawn hoga-analyze")
}

fn code(out: &Output) -> i32 {
    out.status.code().expect("binary exited without a code")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn clean_workspace_exits_zero() {
    let dir = scratch("clean");
    let root = dir.join("ws");
    write_clean_workspace(&root);
    let out = analyze(&["--root", root.to_str().expect("utf-8 path")]);
    assert_eq!(code(&out), 0, "stderr: {}", stderr(&out));
    assert!(stderr(&out).contains("workspace clean"));
}

#[test]
fn findings_without_baseline_exit_one() {
    let dir = scratch("dirty");
    let root = dir.join("ws");
    write_dirty_workspace(&root);
    let out = analyze(&["--root", root.to_str().expect("utf-8 path")]);
    assert_eq!(code(&out), 1, "stderr: {}", stderr(&out));
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(stdout.contains("determinism-taint"), "stdout: {stdout}");
}

#[test]
fn baselined_findings_exit_zero_under_fail_on_new() {
    let dir = scratch("baselined");
    let root = dir.join("ws");
    write_dirty_workspace(&root);
    let report = dir.join("baseline.json");

    // First run archives today's findings as the baseline (exit 1: the
    // findings are still reported, only the gate changes with a baseline).
    let out = analyze(&[
        "--root",
        root.to_str().expect("utf-8 path"),
        "--report",
        report.to_str().expect("utf-8 path"),
    ]);
    assert_eq!(code(&out), 1);
    assert!(report.is_file(), "--report must write the artifact");
    assert!(!dir.join("baseline.tmp").exists(), "atomic write leaves no temp file");

    // Second run against that baseline: same findings, nothing new.
    let out = analyze(&[
        "--root",
        root.to_str().expect("utf-8 path"),
        "--baseline",
        report.to_str().expect("utf-8 path"),
        "--fail-on-new",
    ]);
    assert_eq!(code(&out), 0, "stderr: {}", stderr(&out));
    assert!(stderr(&out).contains("baseline: 0 new, 1 known, 0 fixed"), "stderr: {}", stderr(&out));
}

#[test]
fn new_finding_beyond_baseline_exits_one() {
    let dir = scratch("regression");
    let root = dir.join("ws");
    write_dirty_workspace(&root);
    let report = dir.join("baseline.json");
    analyze(&[
        "--root",
        root.to_str().expect("utf-8 path"),
        "--report",
        report.to_str().expect("utf-8 path"),
    ]);

    // Plant a second taint source in a new file — a finding the baseline
    // has never seen.
    let lib = root.join("src/lib.rs");
    let src = fs::read_to_string(&lib).expect("read lib.rs");
    fs::write(&lib, format!("{src}mod clock;\n")).expect("extend lib.rs");
    fs::write(
        root.join("src/clock.rs"),
        "pub(crate) fn stamp(m: &mut Manifest) {\n\
             let t = std::time::Instant::now();\n\
             let id = derive(t);\n\
             m.write_record(&id);\n\
         }\n",
    )
    .expect("write clock.rs");

    let out = analyze(&[
        "--root",
        root.to_str().expect("utf-8 path"),
        "--baseline",
        report.to_str().expect("utf-8 path"),
        "--fail-on-new",
    ]);
    assert_eq!(code(&out), 1, "a finding outside the baseline must gate");
    let err = stderr(&out);
    assert!(err.contains("baseline: 1 new, 1 known, 0 fixed"), "stderr: {err}");
    assert!(err.contains("new: src/clock.rs"), "stderr: {err}");
}

#[test]
fn fixed_findings_are_counted_not_failed() {
    let dir = scratch("fixed");
    let root = dir.join("ws");
    write_dirty_workspace(&root);
    let report = dir.join("baseline.json");
    analyze(&[
        "--root",
        root.to_str().expect("utf-8 path"),
        "--report",
        report.to_str().expect("utf-8 path"),
    ]);

    // Fix the planted finding; the baseline entry becomes stale.
    fs::write(root.join("src/tainted.rs"), TAINTED.replace("HashMap", "BTreeMap"))
        .expect("fix tainted.rs");

    let out = analyze(&[
        "--root",
        root.to_str().expect("utf-8 path"),
        "--baseline",
        report.to_str().expect("utf-8 path"),
        "--fail-on-new",
    ]);
    assert_eq!(code(&out), 0, "stderr: {}", stderr(&out));
    assert!(stderr(&out).contains("baseline: 0 new, 0 known, 1 fixed"), "stderr: {}", stderr(&out));
}

#[test]
fn fail_on_new_without_baseline_is_a_usage_error() {
    let out = analyze(&["--fail-on-new"]);
    assert_eq!(code(&out), 2);
    assert!(stderr(&out).contains("--fail-on-new needs --baseline"), "stderr: {}", stderr(&out));
}

#[test]
fn unreadable_baseline_is_an_io_error() {
    let dir = scratch("missing-baseline");
    let root = dir.join("ws");
    write_clean_workspace(&root);
    let out = analyze(&[
        "--root",
        root.to_str().expect("utf-8 path"),
        "--baseline",
        dir.join("does-not-exist.json").to_str().expect("utf-8 path"),
        "--fail-on-new",
    ]);
    assert_eq!(code(&out), 2, "stderr: {}", stderr(&out));
}

#[test]
fn json_format_emits_the_report_schema() {
    let dir = scratch("json");
    let root = dir.join("ws");
    write_dirty_workspace(&root);
    let out = analyze(&["--root", root.to_str().expect("utf-8 path"), "--format", "json"]);
    assert_eq!(code(&out), 1);
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(stdout.starts_with('['), "stdout: {stdout}");
    for key in ["\"file\"", "\"line\"", "\"col\"", "\"rule\"", "\"severity\"", "\"message\""] {
        assert!(stdout.contains(key), "missing {key}: {stdout}");
    }
}

#[test]
fn help_documents_every_accepted_flag() {
    // The binary generates --help from its flag table; this pins the
    // other direction: every flag the parser accepts must appear in the
    // help text, so adding a flag without documenting it fails CI.
    let out = analyze(&["--help"]);
    assert_eq!(code(&out), 0, "stderr: {}", stderr(&out));
    let help = String::from_utf8_lossy(&out.stdout).into_owned();
    for flag in [
        "--root",
        "--format",
        "--report",
        "--cache",
        "--baseline",
        "--fail-on-new",
        "--write-baseline",
        "--callgraph",
        "--stats",
        "--help",
    ] {
        assert!(help.contains(flag), "help must document {flag}: {help}");
    }
    assert!(help.contains("text|json|sarif"), "help must list every format: {help}");
}

#[test]
fn sarif_format_emits_a_2_1_0_log() {
    let dir = scratch("sarif");
    let root = dir.join("ws");
    write_dirty_workspace(&root);
    let out = analyze(&["--root", root.to_str().expect("utf-8 path"), "--format", "sarif"]);
    assert_eq!(code(&out), 1, "findings still gate under sarif output");
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(stdout.contains("\"version\": \"2.1.0\""), "stdout: {stdout}");
    assert!(stdout.contains("\"name\": \"hoga-analyze\""), "stdout: {stdout}");
    assert!(stdout.contains("\"ruleId\": \"determinism-taint\""), "stdout: {stdout}");
    assert!(stdout.contains("\"uri\": \"src/tainted.rs\""), "stdout: {stdout}");
}

#[test]
fn write_baseline_regenerates_the_archive_atomically() {
    let dir = scratch("write-baseline");
    let root = dir.join("ws");
    write_dirty_workspace(&root);
    let baseline = dir.join("baseline.json");
    let report = dir.join("report.json");

    let out = analyze(&[
        "--root",
        root.to_str().expect("utf-8 path"),
        "--report",
        report.to_str().expect("utf-8 path"),
        "--write-baseline",
        baseline.to_str().expect("utf-8 path"),
    ]);
    assert_eq!(code(&out), 1, "stderr: {}", stderr(&out));
    assert!(baseline.is_file(), "--write-baseline must write the archive");
    assert!(!dir.join("baseline.tmp").exists(), "atomic write leaves no temp file");
    assert_eq!(
        fs::read_to_string(&baseline).expect("read baseline"),
        fs::read_to_string(&report).expect("read report"),
        "--write-baseline archives the same JSON report as --report"
    );

    // The regenerated baseline immediately gates: same findings, exit 0.
    let out = analyze(&[
        "--root",
        root.to_str().expect("utf-8 path"),
        "--baseline",
        baseline.to_str().expect("utf-8 path"),
        "--fail-on-new",
    ]);
    assert_eq!(code(&out), 0, "stderr: {}", stderr(&out));
    assert!(stderr(&out).contains("baseline: 0 new, 1 known, 0 fixed"), "stderr: {}", stderr(&out));
}

#[test]
fn callgraph_flag_dumps_the_graph_artifact() {
    let dir = scratch("callgraph");
    let root = dir.join("ws");
    write_clean_workspace(&root);
    let graph = dir.join("callgraph.json");
    let out = analyze(&[
        "--root",
        root.to_str().expect("utf-8 path"),
        "--callgraph",
        graph.to_str().expect("utf-8 path"),
    ]);
    assert_eq!(code(&out), 0, "stderr: {}", stderr(&out));
    let dumped = fs::read_to_string(&graph).expect("read callgraph artifact");
    assert!(dumped.contains("\"schema\": \"hoga-analyze-callgraph v1\""), "dump: {dumped}");
    assert!(dumped.contains("\"name\": \"id\""), "the clean workspace's one fn: {dumped}");
    assert!(!dir.join("callgraph.tmp").exists(), "atomic write leaves no temp file");
}

#[test]
fn report_matches_stdout_json_byte_for_byte() {
    let dir = scratch("report-eq");
    let root = dir.join("ws");
    write_dirty_workspace(&root);
    let report = dir.join("findings.json");
    let out = analyze(&[
        "--root",
        root.to_str().expect("utf-8 path"),
        "--format",
        "json",
        "--report",
        report.to_str().expect("utf-8 path"),
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    let archived = fs::read_to_string(&report).expect("read report");
    assert_eq!(stdout, archived, "--report must archive exactly what --format json prints");
}
