//! A hand-rolled Rust lexer, sufficient for static analysis.
//!
//! The analyzer must never report a `panic!` that only occurs inside a
//! string literal, or miss a suppression because it sits in an unusual
//! comment form, so the lexer handles the full surface syntax that affects
//! token boundaries: nested block comments, all string literal flavors
//! (plain, raw with arbitrary `#` fences, byte, C, and their raw variants),
//! char literals vs. lifetimes, raw identifiers, and numeric literals.
//!
//! It does **not** attempt full fidelity for numeric literals (a float like
//! `1.0` lexes as number–dot–number); no rule inspects numbers, so the
//! simplification is harmless and keeps range expressions like `0..n`
//! unambiguous.

/// The classification of one lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (raw identifiers lex as the bare name).
    Ident,
    /// A lifetime such as `'a` (including the quote).
    Lifetime,
    /// Numeric literal (integer part only; see module docs).
    Number,
    /// String literal of any flavor, char literal, or byte literal.
    /// The span covers the quotes/fences; rules never look inside.
    Str,
    /// `// ...` comment. `doc` is true for `///` and `//!`.
    LineComment {
        /// Whether this is a doc comment (`///` or `//!`).
        doc: bool,
    },
    /// `/* ... */` comment (nesting handled). `doc` is true for `/**`, `/*!`.
    BlockComment {
        /// Whether this is a doc comment (`/**` or `/*!`).
        doc: bool,
    },
    /// Any other single character (operators, braces, punctuation).
    Punct(char),
}

/// One token: classification plus byte span and 1-based position.
#[derive(Debug, Clone)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokKind,
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
    /// 1-based line of the first character.
    pub line: u32,
    /// 1-based column (in characters) of the first character.
    pub col: u32,
}

impl Token {
    /// The token's source text within `src` (the string it was lexed from).
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }
}

/// Lexes `src` into a token stream. Never fails: unterminated constructs
/// simply consume the rest of the input as their final token.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
    tokens: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Self { src, bytes: src.as_bytes(), pos: 0, line: 1, col: 1, tokens: Vec::new() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek_at(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    /// Advances one char (multi-byte UTF-8 sequences count as one column).
    fn bump(&mut self) {
        let b = self.bytes[self.pos];
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
            self.pos += 1;
        } else {
            let ch_len = self.src[self.pos..].chars().next().map_or(1, char::len_utf8);
            self.col += 1;
            self.pos += ch_len;
        }
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(b) = self.peek() {
            let (start, line, col) = (self.pos, self.line, self.col);
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => self.bump(),
                b'/' if self.peek_at(1) == Some(b'/') => {
                    self.lex_line_comment(start, line, col);
                }
                b'/' if self.peek_at(1) == Some(b'*') => {
                    self.lex_block_comment(start, line, col);
                }
                b'"' => self.lex_string(start, line, col),
                b'\'' => self.lex_quote(start, line, col),
                b'r' | b'b' | b'c' => self.lex_maybe_prefixed(start, line, col),
                b'0'..=b'9' => self.lex_number(start, line, col),
                _ if is_ident_start(b) => self.lex_ident(start, line, col),
                _ => {
                    let ch = self.src[self.pos..].chars().next().unwrap_or('\u{FFFD}');
                    self.bump();
                    self.push(TokKind::Punct(ch), start, line, col);
                }
            }
        }
        self.tokens
    }

    fn push(&mut self, kind: TokKind, start: usize, line: u32, col: u32) {
        self.tokens.push(Token { kind, start, end: self.pos, line, col });
    }

    fn lex_line_comment(&mut self, start: usize, line: u32, col: u32) {
        // Consume `//`, classify `///` and `//!` as doc (but `////` is not).
        self.bump();
        self.bump();
        let doc = match self.peek() {
            Some(b'/') => self.peek_at(1) != Some(b'/'),
            Some(b'!') => true,
            _ => false,
        };
        while let Some(b) = self.peek() {
            if b == b'\n' {
                break;
            }
            self.bump();
        }
        self.push(TokKind::LineComment { doc }, start, line, col);
    }

    fn lex_block_comment(&mut self, start: usize, line: u32, col: u32) {
        // Consume `/*`; `/**` (not `/***` or the degenerate `/**/`) and
        // `/*!` are doc comments. Nesting increments on `/*`, decrements
        // on `*/`, and the comment ends when the depth returns to zero.
        self.bump();
        self.bump();
        let doc = match self.peek() {
            Some(b'*') => self.peek_at(1) != Some(b'*') && self.peek_at(1) != Some(b'/'),
            Some(b'!') => true,
            _ => false,
        };
        let mut depth = 1u32;
        while let Some(b) = self.peek() {
            if b == b'/' && self.peek_at(1) == Some(b'*') {
                depth += 1;
                self.bump();
                self.bump();
            } else if b == b'*' && self.peek_at(1) == Some(b'/') {
                depth -= 1;
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                self.bump();
            }
        }
        self.push(TokKind::BlockComment { doc }, start, line, col);
    }

    /// Lexes a plain (escaped) string body after the opening quote has NOT
    /// yet been consumed.
    fn lex_string(&mut self, start: usize, line: u32, col: u32) {
        self.bump(); // opening quote
        while let Some(b) = self.peek() {
            match b {
                b'\\' => {
                    self.bump();
                    if self.peek().is_some() {
                        self.bump();
                    }
                }
                b'"' => {
                    self.bump();
                    break;
                }
                _ => self.bump(),
            }
        }
        self.push(TokKind::Str, start, line, col);
    }

    /// `'` starts either a char literal or a lifetime.
    fn lex_quote(&mut self, start: usize, line: u32, col: u32) {
        self.bump(); // the quote
        match self.peek() {
            Some(b'\\') => {
                // Escaped char literal: consume escape then scan to close.
                self.bump();
                if self.peek().is_some() {
                    self.bump();
                }
                while let Some(b) = self.peek() {
                    self.bump();
                    if b == b'\'' {
                        break;
                    }
                }
                self.push(TokKind::Str, start, line, col);
            }
            Some(b) if is_ident_continue(b) => {
                // `'a'` is a char literal; `'a` followed by anything other
                // than a closing quote is a lifetime. Identifier-like runs
                // of length > 1 (`'static`) are always lifetimes.
                let mut len = 0usize;
                while let Some(nb) = self.peek() {
                    if is_ident_continue(nb) {
                        len += 1;
                        self.bump();
                    } else {
                        break;
                    }
                }
                if len == 1 && self.peek() == Some(b'\'') {
                    self.bump();
                    self.push(TokKind::Str, start, line, col);
                } else {
                    self.push(TokKind::Lifetime, start, line, col);
                }
            }
            Some(_) => {
                // Punctuation char literal like `'('`.
                self.bump();
                if self.peek() == Some(b'\'') {
                    self.bump();
                }
                self.push(TokKind::Str, start, line, col);
            }
            None => self.push(TokKind::Punct('\''), start, line, col),
        }
    }

    /// `r`, `b`, or `c` may open a prefixed string (`r"`, `r#"`, `b"`,
    /// `b'`, `br#"`, `c"`, ...) or a raw identifier (`r#match`) or just an
    /// ordinary identifier (`rows`).
    fn lex_maybe_prefixed(&mut self, start: usize, line: u32, col: u32) {
        let first = self.bytes[self.pos];
        // How many prefix chars beyond the first? (`br`, `cr`)
        let second_raw = (first == b'b' || first == b'c') && self.peek_at(1) == Some(b'r');
        let after_prefix = if second_raw { 2 } else { 1 };
        match self.peek_at(after_prefix) {
            Some(b'"') => {
                for _ in 0..after_prefix {
                    self.bump();
                }
                self.lex_string(start, line, col);
            }
            Some(b'\'') if first == b'b' && !second_raw => {
                self.bump();
                self.lex_quote(start, line, col);
                // Re-tag: byte char is a literal even if lex_quote saw a
                // lifetime-like shape (e.g. `b'x'` always closes).
                if let Some(last) = self.tokens.last_mut() {
                    last.start = start;
                    last.kind = TokKind::Str;
                }
            }
            Some(b'#') => {
                // Count the fence. `r#"` opens a raw string; `r#ident` is a
                // raw identifier; `br##"`/`cr#"` open raw byte/C strings.
                let mut hashes = 0usize;
                while self.peek_at(after_prefix + hashes) == Some(b'#') {
                    hashes += 1;
                }
                match self.peek_at(after_prefix + hashes) {
                    Some(b'"') => {
                        for _ in 0..after_prefix + hashes + 1 {
                            self.bump();
                        }
                        self.lex_raw_string_body(hashes, start, line, col);
                    }
                    Some(nb)
                        if !second_raw && first == b'r' && hashes == 1 && is_ident_start(nb) =>
                    {
                        // Raw identifier `r#ident`.
                        self.bump(); // r
                        self.bump(); // #
                        self.lex_ident(start, line, col);
                    }
                    _ => self.lex_ident(start, line, col),
                }
            }
            _ => self.lex_ident(start, line, col),
        }
    }

    /// Scans a raw string body after the opening quote; ends at `"` followed
    /// by `hashes` `#` characters.
    fn lex_raw_string_body(&mut self, hashes: usize, start: usize, line: u32, col: u32) {
        while let Some(b) = self.peek() {
            if b == b'"' {
                let mut ok = true;
                for k in 0..hashes {
                    if self.peek_at(1 + k) != Some(b'#') {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    for _ in 0..hashes + 1 {
                        self.bump();
                    }
                    break;
                }
            }
            self.bump();
        }
        self.push(TokKind::Str, start, line, col);
    }

    fn lex_number(&mut self, start: usize, line: u32, col: u32) {
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || b == b'_' {
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokKind::Number, start, line, col);
    }

    fn lex_ident(&mut self, start: usize, line: u32, col: u32) {
        while let Some(b) = self.peek() {
            if is_ident_continue(b) {
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokKind::Ident, start, line, col);
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text(src).to_string())).collect()
    }

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text(src).to_string())
            .collect()
    }

    #[test]
    fn nested_block_comments_are_one_token() {
        let src = "a /* outer /* inner */ still outer */ b";
        let ks = kinds(src);
        assert_eq!(ks.len(), 3);
        assert_eq!(ks[0].1, "a");
        assert_eq!(ks[1].0, TokKind::BlockComment { doc: false });
        assert_eq!(ks[1].1, "/* outer /* inner */ still outer */");
        assert_eq!(ks[2].1, "b");
    }

    #[test]
    fn deeply_nested_block_comment() {
        let src = "/* 1 /* 2 /* 3 */ 2 */ 1 */ x";
        let ks = kinds(src);
        assert_eq!(ks.len(), 2);
        assert_eq!(ks[1].1, "x");
    }

    #[test]
    fn raw_string_containing_unwrap_is_a_single_literal() {
        let src = r####"let s = r#"x.unwrap() and panic!"#;"####;
        let ks = kinds(src);
        let strs: Vec<_> = ks.iter().filter(|(k, _)| *k == TokKind::Str).collect();
        assert_eq!(strs.len(), 1);
        assert!(strs[0].1.contains("unwrap"));
        // No identifier token `unwrap` or `panic` leaks out of the literal.
        assert!(!idents(src).iter().any(|i| i == "unwrap" || i == "panic"));
    }

    #[test]
    fn raw_string_with_double_fence() {
        let src = r#####"r##"contains "# inside"## ; tail"#####;
        let ks = kinds(src);
        assert_eq!(ks[0].0, TokKind::Str);
        assert!(ks[0].1.ends_with("\"##"));
        assert_eq!(ks.last().unwrap().1, "tail");
    }

    #[test]
    fn plain_string_containing_panic_is_opaque() {
        let src = "let msg = \"do not panic!(now)\"; after";
        assert!(!idents(src).iter().any(|i| i == "panic"));
        assert!(idents(src).iter().any(|i| i == "after"));
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        let src = r#"let s = "a \" b unwrap() \" c"; done"#;
        assert!(!idents(src).iter().any(|i| i == "unwrap"));
        assert!(idents(src).iter().any(|i| i == "done"));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let src = "fn f<'a>(x: &'a str) { let c = 'x'; let q = '\\''; let p = '('; }";
        let ks = kinds(src);
        let lifetimes: Vec<_> = ks.iter().filter(|(k, _)| *k == TokKind::Lifetime).collect();
        assert_eq!(lifetimes.len(), 2, "{lifetimes:?}");
        let chars: Vec<_> = ks.iter().filter(|(k, _)| *k == TokKind::Str).collect();
        assert_eq!(chars.len(), 3, "{chars:?}");
    }

    #[test]
    fn static_lifetime_is_not_a_char() {
        let src = "&'static str";
        let ks = kinds(src);
        assert!(ks.iter().any(|(k, t)| *k == TokKind::Lifetime && t == "'static"));
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let src = "let a = b\"panic!\"; let c = b'x'; let r = br#\"unwrap()\"#; end";
        assert!(!idents(src).iter().any(|i| i == "panic" || i == "unwrap"));
        assert!(idents(src).iter().any(|i| i == "end"));
        let strs = kinds(src).iter().filter(|(k, _)| *k == TokKind::Str).count();
        assert_eq!(strs, 3);
    }

    #[test]
    fn raw_identifiers_lex_as_idents() {
        let src = "let r#match = 1; r#fn();";
        let ids = idents(src);
        assert!(ids.iter().any(|i| i == "r#match"));
        assert!(ids.iter().any(|i| i == "r#fn"));
    }

    #[test]
    fn line_comment_classification() {
        let ks = kinds("// plain\n/// doc\n//! inner\n//// not doc\ncode");
        let docs: Vec<_> =
            ks.iter().filter(|(k, _)| matches!(k, TokKind::LineComment { doc: true })).collect();
        assert_eq!(docs.len(), 2, "{ks:?}");
        assert_eq!(ks.last().unwrap().1, "code");
    }

    #[test]
    fn positions_are_one_based_lines_and_cols() {
        let src = "ab\n  cd";
        let toks = lex(src);
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn ranges_lex_cleanly_after_numbers() {
        let src = "for i in 0..n_items { }";
        let ks = kinds(src);
        assert!(ks.iter().any(|(k, t)| *k == TokKind::Number && t == "0"));
        assert!(ks.iter().any(|(k, t)| *k == TokKind::Ident && t == "n_items"));
        assert_eq!(ks.iter().filter(|(k, _)| *k == TokKind::Punct('.')).count(), 2);
    }

    #[test]
    fn unterminated_string_consumes_rest() {
        let src = "let s = \"never closed panic!";
        assert!(!idents(src).iter().any(|i| i == "panic"));
    }

    #[test]
    fn hex_and_suffixed_numbers() {
        let ks = kinds("0xFFu32 + 1_000i64");
        let nums: Vec<_> = ks.iter().filter(|(k, _)| *k == TokKind::Number).collect();
        assert_eq!(nums.len(), 2);
        assert_eq!(nums[0].1, "0xFFu32");
    }
}
