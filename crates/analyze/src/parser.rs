//! Item-level parsing on top of [`crate::lexer`] — layer (a) of the
//! analyzer.
//!
//! This is *not* a Rust grammar: it is a single linear pass over the code
//! tokens that recognizes item *headers* (`pub(crate) fn name`,
//! `struct Name`, `impl Trait for Name`, ...) wherever an item is
//! syntactically possible (after `;`, `{`, `}`, `]` or at the start of the
//! file). That is enough to recover every definition with its span,
//! visibility and enclosing `impl` subject, which is what the
//! [`crate::symbols`] graph needs. Bodies are scanned through, so nested
//! items (a `static` inside a `fn`, methods inside an `impl`) are found
//! too.

use crate::lexer::{TokKind, Token};

/// Item visibility as written in the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Visibility {
    /// No `pub` at all.
    Private,
    /// `pub(crate)` / `pub(super)` / `pub(in ...)` — restricted, never part
    /// of the crate's external API.
    Restricted,
    /// Plain `pub`.
    Public,
}

/// Kinds of item headers the parser recognizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    /// `fn` (free functions, methods, and trait-method declarations).
    Fn,
    /// `struct` / `union`.
    Struct,
    /// `enum`.
    Enum,
    /// `trait`.
    Trait,
    /// `const` (not `const fn`, which is [`ItemKind::Fn`]).
    Const,
    /// `static`.
    Static,
    /// `type` alias (including associated types).
    TypeAlias,
    /// `mod`.
    Mod,
    /// `use` declaration (re-exports included).
    Use,
    /// `impl` block; [`Item::name`] is the subject type.
    Impl,
    /// `macro_rules!` definition.
    MacroRules,
}

impl ItemKind {
    /// Lower-case label for diagnostics (`"fn"`, `"struct"`, ...).
    pub fn label(self) -> &'static str {
        match self {
            ItemKind::Fn => "fn",
            ItemKind::Struct => "struct",
            ItemKind::Enum => "enum",
            ItemKind::Trait => "trait",
            ItemKind::Const => "const",
            ItemKind::Static => "static",
            ItemKind::TypeAlias => "type",
            ItemKind::Mod => "mod",
            ItemKind::Use => "use",
            ItemKind::Impl => "impl",
            ItemKind::MacroRules => "macro_rules",
        }
    }
}

/// One recognized item header.
#[derive(Debug, Clone)]
pub struct Item {
    /// What kind of item this is.
    pub kind: ItemKind,
    /// The declared name (`r#` stripped); `None` for `use` declarations and
    /// anonymous `const _`.
    pub name: Option<String>,
    /// Visibility as written.
    pub vis: Visibility,
    /// Byte offset of the first token of the header (`pub` or the keyword).
    pub start: usize,
    /// 1-based line of the name token (or the keyword when unnamed).
    pub line: u32,
    /// 1-based column of the name token (or the keyword when unnamed).
    pub col: u32,
    /// Identifiers appearing in the item's *type positions*: a `fn`'s
    /// signature (not its body), a `struct`/`enum`/`trait` body, a
    /// `const`/`static`/`type` declaration. These are the names a consumer
    /// of this item is forced to touch, so liveness propagates through
    /// them (a used `pub fn` keeps its return type's `pub` justified).
    pub dep_names: Vec<String>,
    /// For `fn` items inside an `impl` block: the impl subject, so a used
    /// method keeps its type alive.
    pub owner: Option<String>,
}

/// Parses item headers out of a lexed file. `tokens` must come from
/// [`crate::lexer::lex`] over the same `src`.
pub(crate) fn parse_items(tokens: &[Token], src: &str) -> Vec<Item> {
    let code: Vec<&Token> = tokens
        .iter()
        .filter(|t| !matches!(t.kind, TokKind::LineComment { .. } | TokKind::BlockComment { .. }))
        .collect();
    let mut items = Vec::new();
    // Spans of `impl` bodies seen so far, innermost lookup by containment.
    let mut impl_spans: Vec<(usize, usize, Option<String>)> = Vec::new();
    let mut i = 0;
    while i < code.len() {
        if !at_item_position(&code, i) {
            i += 1;
            continue;
        }
        let header_start = code[i].start;
        let mut j = i;
        let mut vis = Visibility::Private;
        if ident_is(&code, j, src, "pub") {
            j += 1;
            if punct_is(&code, j, '(') {
                vis = Visibility::Restricted;
                j = skip_delimited(&code, j, '(', ')');
            } else {
                vis = Visibility::Public;
            }
        }
        // Modifiers that may precede `fn` (or `trait`, for `unsafe trait`).
        loop {
            if ident_any(&code, j, src, &["unsafe", "async", "default"])
                || ((ident_is(&code, j, src, "const") || ident_is(&code, j, src, "extern"))
                    && ident_is(&code, j + 1, src, "fn"))
            {
                j += 1;
            } else if ident_is(&code, j, src, "extern")
                && matches!(code.get(j + 1).map(|t| t.kind), Some(TokKind::Str))
                && ident_is(&code, j + 2, src, "fn")
            {
                j += 2;
            } else {
                break;
            }
        }
        let Some(kw) = code.get(j) else { break };
        if kw.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        let parsed = match kw.text(src) {
            "fn" => {
                let name = name_at(&code, j + 1, src);
                let sig_end = find_at_depth0(&code, j + 1, &['{', ';']);
                let deps = idents_between(&code, j + 2, sig_end, src);
                let owner = impl_spans
                    .iter()
                    .rev()
                    .find(|(s, e, _)| *s < header_start && header_start < *e)
                    .and_then(|(_, _, subj)| subj.clone());
                Some((ItemKind::Fn, name, deps, owner, j + 2))
            }
            k @ ("struct" | "union" | "enum" | "trait") => {
                let kind = match k {
                    "enum" => ItemKind::Enum,
                    "trait" => ItemKind::Trait,
                    _ => ItemKind::Struct,
                };
                let name = name_at(&code, j + 1, src);
                let end = item_end(&code, j + 1, src);
                let deps = idents_between(&code, j + 2, end, src);
                Some((kind, name, deps, None, j + 2))
            }
            "const" => {
                let name = name_at(&code, j + 1, src).filter(|n| n != "_");
                let end = find_at_depth0(&code, j + 1, &[';', '{']);
                let deps = idents_between(&code, j + 2, end, src);
                Some((ItemKind::Const, name, deps, None, j + 2))
            }
            "static" => {
                let n = j + 1 + usize::from(ident_is(&code, j + 1, src, "mut"));
                let name = name_at(&code, n, src);
                let end = find_at_depth0(&code, n, &[';', '{']);
                let deps = idents_between(&code, n + 1, end, src);
                Some((ItemKind::Static, name, deps, None, n + 1))
            }
            "type" => {
                let name = name_at(&code, j + 1, src);
                let end = find_at_depth0(&code, j + 1, &[';', '{']);
                let deps = idents_between(&code, j + 2, end, src);
                Some((ItemKind::TypeAlias, name, deps, None, j + 2))
            }
            "mod" => {
                let name = name_at(&code, j + 1, src);
                Some((ItemKind::Mod, name, Vec::new(), None, j + 2))
            }
            "use" => {
                let end = find_at_depth0(&code, j + 1, &[';']);
                Some((ItemKind::Use, None, Vec::new(), None, end))
            }
            "impl" => {
                let (subject, body_open) = impl_subject(&code, j + 1, src);
                if let Some(open) = body_open {
                    let end = brace_end_offset(&code, open, src);
                    impl_spans.push((code[open].start, end, subject.clone()));
                    Some((ItemKind::Impl, subject, Vec::new(), None, open + 1))
                } else {
                    Some((ItemKind::Impl, subject, Vec::new(), None, j + 1))
                }
            }
            "macro_rules" if punct_is(&code, j + 1, '!') => {
                let name = name_at(&code, j + 2, src);
                Some((ItemKind::MacroRules, name, Vec::new(), None, j + 3))
            }
            _ => None,
        };
        match parsed {
            Some((kind, name, dep_names, owner, resume)) => {
                let pos = if name.is_some() { name_token(&code, kind, j, src) } else { None };
                let pos = pos.unwrap_or(kw);
                items.push(Item {
                    kind,
                    name,
                    vis,
                    start: header_start,
                    line: pos.line,
                    col: pos.col,
                    dep_names,
                    owner,
                });
                i = resume.max(i + 1);
            }
            None => i += 1,
        }
    }
    items
}

/// The token whose position labels the item (its name token).
fn name_token<'a>(code: &[&'a Token], kind: ItemKind, kw: usize, src: &str) -> Option<&'a Token> {
    let at = match kind {
        ItemKind::Static if ident_is(code, kw + 1, src, "mut") => kw + 2,
        ItemKind::MacroRules => kw + 2,
        _ => kw + 1,
    };
    code.get(at).copied().filter(|t| t.kind == TokKind::Ident)
}

/// Is `code[i]` a place where an item header may start?
fn at_item_position(code: &[&Token], i: usize) -> bool {
    match i.checked_sub(1).and_then(|p| code.get(p)) {
        None => true,
        Some(prev) => matches!(prev.kind, TokKind::Punct(';' | '{' | '}' | ']')),
    }
}

fn ident_is(code: &[&Token], i: usize, src: &str, word: &str) -> bool {
    code.get(i).is_some_and(|t| t.kind == TokKind::Ident && t.text(src) == word)
}

fn ident_any(code: &[&Token], i: usize, src: &str, words: &[&str]) -> bool {
    code.get(i).is_some_and(|t| t.kind == TokKind::Ident && words.contains(&t.text(src)))
}

fn punct_is(code: &[&Token], i: usize, ch: char) -> bool {
    code.get(i).is_some_and(|t| matches!(t.kind, TokKind::Punct(c) if c == ch))
}

/// The declared name at `code[i]`, with any `r#` prefix stripped.
fn name_at(code: &[&Token], i: usize, src: &str) -> Option<String> {
    code.get(i).filter(|t| t.kind == TokKind::Ident).map(|t| {
        let text = t.text(src);
        text.strip_prefix("r#").unwrap_or(text).to_string()
    })
}

/// Given `code[open]` == `o`, the index just past its matching `c`.
fn skip_delimited(code: &[&Token], open: usize, o: char, c: char) -> usize {
    let mut depth = 0i64;
    let mut j = open;
    while j < code.len() {
        match code[j].kind {
            TokKind::Punct(p) if p == o => depth += 1,
            TokKind::Punct(p) if p == c => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    code.len()
}

/// Index of the first of `stops` at paren/bracket depth 0, scanning from
/// `from` (exclusive of nested `(...)` / `[...]` contents).
fn find_at_depth0(code: &[&Token], from: usize, stops: &[char]) -> usize {
    let mut depth = 0i64;
    let mut j = from;
    while j < code.len() {
        if let TokKind::Punct(c) = code[j].kind {
            match c {
                '(' | '[' => depth += 1,
                ')' | ']' => depth -= 1,
                c if depth <= 0 && stops.contains(&c) => return j,
                _ => {}
            }
        }
        j += 1;
    }
    code.len()
}

/// End index of a `struct`/`enum`/`trait` item starting after its keyword:
/// the matching `}` of its first depth-0 `{`, or its terminating `;`.
fn item_end(code: &[&Token], from: usize, _src: &str) -> usize {
    let at = find_at_depth0(code, from, &['{', ';']);
    if punct_is(code, at, '{') {
        brace_end_index(code, at)
    } else {
        at
    }
}

/// Index of the `}` matching `code[open]` (`{`), or `code.len()`.
fn brace_end_index(code: &[&Token], open: usize) -> usize {
    let mut depth = 0i64;
    for (j, t) in code.iter().enumerate().skip(open) {
        match t.kind {
            TokKind::Punct('{') => depth += 1,
            TokKind::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
    }
    code.len()
}

/// Byte offset just past the `}` matching `code[open]` (`{`).
fn brace_end_offset(code: &[&Token], open: usize, src: &str) -> usize {
    let at = brace_end_index(code, open);
    code.get(at).map_or(src.len(), |t| t.end)
}

/// All identifier texts in `code[from..to]` (r# stripped).
fn idents_between(code: &[&Token], from: usize, to: usize, src: &str) -> Vec<String> {
    let to = to.min(code.len());
    if from >= to {
        return Vec::new();
    }
    code[from..to]
        .iter()
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| {
            let text = t.text(src);
            text.strip_prefix("r#").unwrap_or(text).to_string()
        })
        .collect()
}

/// Resolves an `impl` header starting at `code[from]` (just past `impl`):
/// returns the subject type name and the index of the body `{` (if any).
///
/// Heuristic: skip leading generic parameters, then take the *last*
/// identifier at angle-depth 0 before the body / `where` clause; a `for`
/// resets the collection so `impl Trait for Type` resolves to `Type`.
fn impl_subject(code: &[&Token], from: usize, src: &str) -> (Option<String>, Option<usize>) {
    let mut j = from;
    if punct_is(code, j, '<') {
        j = skip_angles(code, j);
    }
    let mut subject: Option<String> = None;
    let mut angle = 0i64;
    while j < code.len() {
        let t = code[j];
        match t.kind {
            TokKind::Punct('<') => angle += 1,
            // `->` inside bounds like `Fn() -> T` must not close an angle.
            TokKind::Punct('>') if !punct_is(code, j.wrapping_sub(1), '-') => {
                angle = (angle - 1).max(0)
            }
            TokKind::Punct('{') if angle == 0 => return (subject, Some(j)),
            TokKind::Punct(';') if angle == 0 => return (subject, None),
            TokKind::Ident if angle == 0 => {
                let text = t.text(src);
                match text {
                    "for" => subject = None,
                    "where" => {
                        return (
                            subject,
                            code[j..]
                                .iter()
                                .position(|t| matches!(t.kind, TokKind::Punct('{')))
                                .map(|k| j + k),
                        )
                    }
                    "dyn" | "mut" | "const" | "unsafe" => {}
                    _ => subject = Some(text.strip_prefix("r#").unwrap_or(text).to_string()),
                }
            }
            _ => {}
        }
        j += 1;
    }
    (subject, None)
}

/// Given `code[open]` == `<`, the index just past its matching `>`.
fn skip_angles(code: &[&Token], open: usize) -> usize {
    let mut depth = 0i64;
    let mut j = open;
    while j < code.len() {
        match code[j].kind {
            TokKind::Punct('<') => depth += 1,
            TokKind::Punct('>') if !punct_is(code, j.wrapping_sub(1), '-') => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    code.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> Vec<Item> {
        parse_items(&lex(src), src)
    }

    fn named(items: &[Item], kind: ItemKind) -> Vec<(String, Visibility)> {
        items
            .iter()
            .filter(|i| i.kind == kind)
            .filter_map(|i| i.name.clone().map(|n| (n, i.vis)))
            .collect()
    }

    #[test]
    fn finds_fns_with_visibility() {
        let src = "pub fn a() {}\nfn b() {}\npub(crate) fn c() {}\npub(in crate::x) fn d() {}\n";
        let fns = named(&parse(src), ItemKind::Fn);
        assert_eq!(
            fns,
            [
                ("a".to_string(), Visibility::Public),
                ("b".to_string(), Visibility::Private),
                ("c".to_string(), Visibility::Restricted),
                ("d".to_string(), Visibility::Restricted),
            ]
        );
    }

    #[test]
    fn const_fn_is_a_fn_and_const_is_a_const() {
        let src = "pub const fn table() -> u8 { 0 }\npub const LIMIT: usize = 4;\n";
        let items = parse(src);
        assert_eq!(named(&items, ItemKind::Fn), [("table".to_string(), Visibility::Public)]);
        assert_eq!(named(&items, ItemKind::Const), [("LIMIT".to_string(), Visibility::Public)]);
    }

    #[test]
    fn structs_enums_traits_types_mods() {
        let src = "pub struct S { x: u8 }\nenum E { A, B }\npub trait T { fn m(&self); }\n\
                   type Alias = u8;\npub mod sub;\nstatic COUNT: u8 = 0;\n";
        let items = parse(src);
        assert_eq!(named(&items, ItemKind::Struct), [("S".to_string(), Visibility::Public)]);
        assert_eq!(named(&items, ItemKind::Enum), [("E".to_string(), Visibility::Private)]);
        assert_eq!(named(&items, ItemKind::Trait), [("T".to_string(), Visibility::Public)]);
        assert_eq!(
            named(&items, ItemKind::TypeAlias),
            [("Alias".to_string(), Visibility::Private)]
        );
        assert_eq!(named(&items, ItemKind::Mod), [("sub".to_string(), Visibility::Public)]);
        assert_eq!(named(&items, ItemKind::Static), [("COUNT".to_string(), Visibility::Private)]);
        // The trait method declaration is found as a (private) fn.
        assert_eq!(named(&items, ItemKind::Fn), [("m".to_string(), Visibility::Private)]);
    }

    #[test]
    fn methods_get_their_impl_subject_as_owner() {
        let src = "struct S;\nimpl S {\n    pub fn new() -> Self { S }\n}\n\
                   impl std::fmt::Display for S {\n    fn fmt(&self) {}\n}\n";
        let items = parse(src);
        let fns: Vec<(Option<String>, Option<String>)> = items
            .iter()
            .filter(|i| i.kind == ItemKind::Fn)
            .map(|i| (i.name.clone(), i.owner.clone()))
            .collect();
        assert_eq!(
            fns,
            [
                (Some("new".to_string()), Some("S".to_string())),
                (Some("fmt".to_string()), Some("S".to_string())),
            ]
        );
    }

    #[test]
    fn generic_impl_subject_is_resolved() {
        let src = "impl<G: Rng> Walker<G> {\n    fn step(&mut self) {}\n}\n\
                   impl<T> Iterator for Walks<'_, T> where T: Clone {\n    fn next(&mut self) {}\n}\n";
        let impls = named(&parse(src), ItemKind::Impl);
        assert_eq!(
            impls,
            [
                ("Walker".to_string(), Visibility::Private),
                ("Walks".to_string(), Visibility::Private),
            ]
        );
    }

    #[test]
    fn fn_signature_idents_become_deps_but_body_idents_do_not() {
        let src = "pub fn run(cfg: &Config) -> Report { helper(cfg) }\n";
        let items = parse(src);
        let f = &items[0];
        assert!(f.dep_names.contains(&"Config".to_string()));
        assert!(f.dep_names.contains(&"Report".to_string()));
        assert!(!f.dep_names.contains(&"helper".to_string()), "body idents are not deps");
    }

    #[test]
    fn struct_field_types_become_deps() {
        let src = "pub struct Report { pub events: Vec<Event>, n: usize }\n";
        let items = parse(src);
        assert!(items[0].dep_names.contains(&"Event".to_string()));
    }

    #[test]
    fn items_nested_in_fn_bodies_are_found() {
        let src = "fn outer() {\n    static CACHE: u8 = 0;\n    let x = CACHE;\n}\n";
        let items = parse(src);
        assert_eq!(named(&items, ItemKind::Static), [("CACHE".to_string(), Visibility::Private)]);
    }

    #[test]
    fn expression_code_is_not_misparsed_as_items() {
        let src = "fn f(v: &[u8]) -> usize {\n    let a = v[0];\n    let use_it = a as usize;\n    use_it\n}\n";
        let items = parse(src);
        assert_eq!(items.len(), 1, "only the fn itself: {items:?}");
    }

    #[test]
    fn raw_identifiers_are_stripped() {
        let src = "pub fn r#match() {}\n";
        assert_eq!(named(&parse(src), ItemKind::Fn), [("match".to_string(), Visibility::Public)]);
    }
}
