//! Interprocedural layer: the workspace call graph and the three rules
//! built on it (R13 panic-reachability, R14 lock-order, R15
//! blocking-under-lock).
//!
//! The layer is split the same way the rest of the analyzer is:
//!
//! * **Per-file extraction** ([`extract`]) walks each function CFG and
//!   records *facts* — panic seeds, blocking-operation sites, call sites,
//!   lock-order edges, and calls made while a lock is must-held. Facts are
//!   plain data ([`CgFacts`]) that persist in the incremental cache, so a
//!   warm run never re-lexes a file to rebuild the graph.
//! * **Cross-file resolution** ([`build_graph`] + [`resolve_rules`]) is a
//!   pure function of the per-file facts: it merges definitions by name
//!   (the same conservative heuristic `det.rs` uses for its one-hop
//!   summaries), condenses the graph with an iterative Tarjan SCC pass,
//!   propagates may-panic/may-block over the condensation in reverse
//!   topological order, and renders shortest witness paths via BFS.
//!
//! Seed policy for R13: panic seeds are only harvested from files that are
//! *not* themselves panic-free-hardened — R1 already polices local panic
//! sites in hardened modules (and justified suppressions there mean the
//! site was audited). R13 closes the other loophole: a hardened public API
//! calling out into a panicky helper elsewhere in the workspace.
//!
//! Lockset for R14/R15 is a *must*-analysis encoded as two grow-only sets
//! so it runs on the existing may-join worklist engine: `may` holds guard
//! records seen on some path, `unheld` holds lock names released (or never
//! acquired) on some path; a lock is must-held iff it is in `may` and not
//! in `unheld`. Both components only grow under join, which keeps
//! [`crate::dataflow::forward_fixpoint`]'s monotonicity contract.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::ops::Range;

use crate::cfg::{function_cfgs, BlockId, Cfg};
use crate::dataflow::{forward_fixpoint, Analysis};
use crate::lexer::{lex, TokKind, Token};
use crate::parser::{parse_items, ItemKind, Visibility};
use crate::rules::{
    cfg_test_spans, in_spans, lock_acquisition, FileProfile, Finding, Suppression, LOCK_ORDER,
};

// ---------------------------------------------------------------------------
// Per-file fact types (cached in the incremental artifacts)
// ---------------------------------------------------------------------------

/// One extracted site: a panic seed, a blocking operation, or a call,
/// attributed to the enclosing function.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct CgSite {
    /// 1-based line of the site.
    pub line: u32,
    /// 1-based column of the site.
    pub col: u32,
    /// Name of the enclosing function.
    pub func: String,
    /// Panic/blocking sites: a human-readable description of the hazard.
    /// Call sites: the callee name.
    pub what: String,
}

/// One lock-order edge: `to` was acquired while `from` was must-held.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct LockEdge {
    /// 1-based line of the acquisition of `to`.
    pub line: u32,
    /// 1-based column of the acquisition of `to`.
    pub col: u32,
    /// Name of the enclosing function.
    pub func: String,
    /// The lock already held.
    pub from: String,
    /// The lock being acquired.
    pub to: String,
}

/// A call made while at least one lock was must-held (resolved cross-file
/// against the callee's may-block fact).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct UnderLockCall {
    /// 1-based line of the call.
    pub line: u32,
    /// 1-based column of the call.
    pub col: u32,
    /// Name of the enclosing function.
    pub func: String,
    /// The callee name.
    pub callee: String,
    /// The must-held lock names at the call, sorted.
    pub held: Vec<String>,
}

/// Every interprocedural fact extracted from one file. Persisted in the
/// cache artifact so the cross-file stage never re-parses a warm file.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CgFacts {
    /// Panic seeds (empty for panic-free-hardened files by policy).
    pub panics: Vec<CgSite>,
    /// Blocking-operation sites (`what` describes the operation).
    pub blocking: Vec<CgSite>,
    /// Call sites, deduplicated per `(func, callee)` keeping the earliest.
    pub calls: Vec<CgSite>,
    /// Lock-order edges observed under the must-lockset dataflow.
    pub lock_edges: Vec<LockEdge>,
    /// Calls made while a lock was must-held.
    pub under_lock: Vec<UnderLockCall>,
}

/// One function definition contributed by a file.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CgDef {
    /// Function name (methods by bare name, like `det.rs` summaries).
    pub name: String,
    /// 1-based line of the definition.
    pub line: u32,
    /// 1-based column of the definition.
    pub col: u32,
    /// `pub` (unrestricted) visibility — the R13 API surface.
    pub public: bool,
}

/// A file's contribution to the workspace call graph.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CgFileInput {
    /// Workspace-relative path.
    pub rel: String,
    /// Whether the file is panic-free-hardened (R13 audits its public API).
    pub hardened: bool,
    /// Non-test `fn` definitions in the file.
    pub defs: Vec<CgDef>,
    /// Extracted facts.
    pub facts: CgFacts,
}

// ---------------------------------------------------------------------------
// Extraction: per-file CFG walk
// ---------------------------------------------------------------------------

/// Idents whose presence in a statement marks every ident in it as
/// bounds-audited (the soft-seed gate borrows R11's philosophy).
const GUARD_CALLS: &[&str] = &[
    "min",
    "max",
    "clamp",
    "get",
    "get_mut",
    "saturating_sub",
    "checked_sub",
    "checked_div",
    "checked_rem",
    "checked_add",
    "checked_mul",
];

const ASSERT_MACROS: &[&str] =
    &["assert", "assert_eq", "assert_ne", "debug_assert", "debug_assert_eq", "debug_assert_ne"];

/// Walks every non-test function CFG in a file and extracts the
/// interprocedural facts, pushing any flow-local R14/R15 findings
/// (declared-order violations, direct blocking under a held lock) into
/// `raw` so they ride the normal per-file suppression machinery.
///
/// Seeds honour suppressions at the *seed site*: an
/// `// analyze: allow(panic-reachability)` on (or above) a panic site
/// stops the site from seeding the graph — the downstream findings would
/// otherwise land in distant files where no annotation could reach them.
/// The matched suppression is marked used so it does not read as stale.
pub(crate) fn extract(
    rel_path: &str,
    code: &[&Token],
    src: &str,
    test_spans: &[Range<usize>],
    profile: FileProfile,
    sups: &mut [Suppression],
    raw: &mut Vec<Finding>,
) -> CgFacts {
    let mut facts = CgFacts::default();
    for cfg in function_cfgs(code, src) {
        if in_spans(cfg.header_start, test_spans) {
            continue;
        }
        extract_fn(rel_path, code, src, &cfg, profile, &mut facts, sups, raw);
    }
    facts
}

/// Marks every valid suppression for `rule` covering `line` as used and
/// reports whether any matched.
fn seed_allowed(sups: &mut [Suppression], rule: &str, line: u32) -> bool {
    let mut hit = false;
    for s in sups.iter_mut() {
        if s.error.is_none() && s.rule == rule && (s.line == line || s.line + 1 == line) {
            s.used = true;
            hit = true;
        }
    }
    hit
}

#[allow(clippy::too_many_arguments)]
fn extract_fn(
    rel_path: &str,
    code: &[&Token],
    src: &str,
    cfg: &Cfg,
    profile: FileProfile,
    facts: &mut CgFacts,
    sups: &mut [Suppression],
    raw: &mut Vec<Finding>,
) {
    let stmts: Vec<Range<usize>> =
        cfg.blocks.iter().flat_map(|b| b.stmts.iter().cloned()).collect();
    let bounded = bounded_idents(code, src, &stmts);

    let mut seen_calls: BTreeSet<String> = BTreeSet::new();
    for stmt in &stmts {
        let guarded = stmt_is_guarded(code, src, stmt);
        for i in stmt.clone() {
            let t = code[i];
            if !profile.panic_free {
                if let Some(what) = panic_seed_at(code, src, i, &bounded, guarded) {
                    if !seed_allowed(sups, "panic-reachability", t.line) {
                        facts.panics.push(site(t, &cfg.name, what));
                    }
                }
            }
            if let Some(what) = blocking_op_at(code, src, i) {
                if !seed_allowed(sups, "blocking-under-lock", t.line) {
                    facts.blocking.push(site(t, &cfg.name, what.to_string()));
                }
            }
            if let Some(callee) = call_at(code, src, i) {
                if seen_calls.insert(callee.to_string()) {
                    facts.calls.push(site(t, &cfg.name, callee.to_string()));
                }
            }
        }
    }

    lockset_fn(rel_path, code, src, cfg, facts, raw);
}

fn site(t: &Token, func: &str, what: String) -> CgSite {
    CgSite { line: t.line, col: t.col, func: func.to_string(), what }
}

/// Idents appearing in any statement that carries a bounds guard
/// (assert-family macro, relational comparison, `%`, or a bounding call),
/// plus `for`-loop pattern variables — these never gate a soft panic seed.
fn bounded_idents(code: &[&Token], src: &str, stmts: &[Range<usize>]) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for stmt in stmts {
        if stmt_is_guarded(code, src, stmt) {
            for i in stmt.clone() {
                if code[i].kind == TokKind::Ident {
                    out.insert(code[i].text(src).to_string());
                }
            }
        }
        // `for pat in iter` bounds the pattern idents by construction.
        let mut j = stmt.start;
        while j < stmt.end {
            if code[j].kind == TokKind::Ident && code[j].text(src) == "for" {
                let mut k = j + 1;
                while k < stmt.end && !ident_is(code, k, src, "in") {
                    if code[k].kind == TokKind::Ident {
                        out.insert(code[k].text(src).to_string());
                    }
                    k += 1;
                }
            }
            j += 1;
        }
    }
    out
}

fn ident_is(code: &[&Token], i: usize, src: &str, name: &str) -> bool {
    code.get(i).is_some_and(|t| t.kind == TokKind::Ident && t.text(src) == name)
}

fn punct_at(code: &[&Token], i: usize, c: char) -> bool {
    code.get(i).is_some_and(|t| t.kind == TokKind::Punct(c))
}

/// Whether a statement carries any bounds evidence: an assert-family
/// macro, a relational `<`/`>` (excluding shifts, `->`, and turbofish),
/// a `%`, or a bounding call like `.min(..)`/`.get(..)`.
fn stmt_is_guarded(code: &[&Token], src: &str, stmt: &Range<usize>) -> bool {
    for i in stmt.clone() {
        let t = code[i];
        match t.kind {
            TokKind::Ident => {
                let text = t.text(src);
                if ASSERT_MACROS.contains(&text) && punct_at(code, i + 1, '!') {
                    return true;
                }
                if GUARD_CALLS.contains(&text)
                    && i >= 1
                    && punct_at(code, i - 1, '.')
                    && punct_at(code, i + 1, '(')
                {
                    return true;
                }
            }
            TokKind::Punct('%') => return true,
            TokKind::Punct(c @ ('<' | '>')) => {
                let same_next = code.get(i + 1).is_some_and(|n| n.kind == TokKind::Punct(c));
                let same_prev = i >= 1 && code[i - 1].kind == TokKind::Punct(c);
                let arrow = c == '>' && i >= 1 && code[i - 1].kind == TokKind::Punct('-');
                let turbofish = c == '<' && i >= 1 && code[i - 1].kind == TokKind::Punct(':');
                if !(same_next || same_prev || arrow || turbofish) {
                    return true;
                }
            }
            _ => {}
        }
    }
    false
}

/// A panic seed at `code[i]`, if any. Hard seeds (panicking macros,
/// `.unwrap()`, `.expect(`) always count; soft seeds (arithmetic indexing,
/// division/modulo by a variable) only when nothing bounds them.
fn panic_seed_at(
    code: &[&Token],
    src: &str,
    i: usize,
    bounded: &BTreeSet<String>,
    stmt_guarded: bool,
) -> Option<String> {
    let t = code[i];
    match t.kind {
        TokKind::Ident => {
            let text = t.text(src);
            if matches!(text, "panic" | "unreachable" | "todo" | "unimplemented")
                && punct_at(code, i + 1, '!')
            {
                return Some(format!("`{text}!`"));
            }
            let dotted = i >= 1 && punct_at(code, i - 1, '.');
            if dotted
                && text == "unwrap"
                && punct_at(code, i + 1, '(')
                && punct_at(code, i + 2, ')')
            {
                return Some("`.unwrap()`".to_string());
            }
            if dotted && text == "expect" && punct_at(code, i + 1, '(') {
                return Some("`.expect(..)`".to_string());
            }
            None
        }
        TokKind::Punct('[') if !stmt_guarded => {
            // Indexing with arithmetic in the index and no bounded
            // participant: `v[a + b]` where neither `a` nor `b` is audited.
            let indexable = i >= 1
                && (code[i - 1].kind == TokKind::Ident
                    || code[i - 1].kind == TokKind::Punct(')')
                    || code[i - 1].kind == TokKind::Punct(']'));
            if !indexable {
                return None;
            }
            let close = matching_square(code, i)?;
            let mut has_arith = false;
            let mut idents: Vec<&str> = Vec::new();
            for t in &code[i + 1..close] {
                match t.kind {
                    TokKind::Punct('+' | '*') => has_arith = true,
                    TokKind::Ident => idents.push(t.text(src)),
                    _ => {}
                }
            }
            if has_arith && !idents.is_empty() && idents.iter().all(|id| !bounded.contains(*id)) {
                return Some("arithmetic slice indexing".to_string());
            }
            None
        }
        TokKind::Punct(op @ ('/' | '%')) => {
            // Division/modulo by a bare, unbounded variable.
            let binary = i >= 1
                && matches!(
                    code[i - 1].kind,
                    TokKind::Ident | TokKind::Number | TokKind::Punct(')') | TokKind::Punct(']')
                );
            if !binary || punct_at(code, i + 1, '=') {
                return None;
            }
            let d = code.get(i + 1)?;
            if d.kind != TokKind::Ident || punct_at(code, i + 2, '(') || punct_at(code, i + 2, '.')
            {
                return None;
            }
            let name = d.text(src);
            let all_caps = name.chars().all(|c| c.is_ascii_uppercase() || c == '_');
            if all_caps || bounded.contains(name) || divisor_guarded(code, src, i) {
                return None;
            }
            Some(format!("`{op} {name}` with an unchecked divisor"))
        }
        _ => None,
    }
}

/// Whether the statement containing the divisor at `code[i]` carries an
/// assert/relational/bounding-call guard (the `%`-as-guard shortcut in
/// [`stmt_is_guarded`] must not whitelist the `%` hazard itself).
fn divisor_guarded(code: &[&Token], src: &str, i: usize) -> bool {
    let mut j = i;
    while j > 0 && !matches!(code[j - 1].kind, TokKind::Punct(';' | '{' | '}')) {
        j -= 1;
    }
    let mut k = j;
    while k < code.len() && !matches!(code[k].kind, TokKind::Punct(';' | '{' | '}')) {
        let t = code[k];
        if t.kind == TokKind::Ident {
            let text = t.text(src);
            if (ASSERT_MACROS.contains(&text) && punct_at(code, k + 1, '!'))
                || (GUARD_CALLS.contains(&text)
                    && k >= 1
                    && punct_at(code, k - 1, '.')
                    && punct_at(code, k + 1, '('))
            {
                return true;
            }
        }
        k += 1;
    }
    false
}

fn matching_square(code: &[&Token], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    let mut k = open;
    while k < code.len() {
        match code[k].kind {
            TokKind::Punct('[') => depth += 1,
            TokKind::Punct(']') => {
                depth = depth.checked_sub(1)?;
                if depth == 0 {
                    return Some(k);
                }
            }
            _ => {}
        }
        k += 1;
    }
    None
}

/// A blocking operation at `code[i]`: thread join, channel receive,
/// sleeps, condvar waits, file/stream I/O, or the bounded SAT arbiter.
fn blocking_op_at(code: &[&Token], src: &str, i: usize) -> Option<&'static str> {
    let t = code.get(i)?;
    if t.kind != TokKind::Ident {
        return None;
    }
    let name = t.text(src);
    let dotted = i >= 1 && punct_at(code, i - 1, '.');
    let open = punct_at(code, i + 1, '(');
    let zero_arg = open && punct_at(code, i + 2, ')');
    let has_arg = open && !punct_at(code, i + 2, ')');
    let pathed = |prefix: &str| {
        i >= 3
            && punct_at(code, i - 1, ':')
            && punct_at(code, i - 2, ':')
            && ident_is(code, i - 3, src, prefix)
    };
    match name {
        "join" if dotted && zero_arg => Some("`.join()` (thread join)"),
        "recv" if dotted && zero_arg => Some("`.recv()` (channel receive)"),
        "recv_timeout" if dotted && open => Some("`.recv_timeout(..)` (channel receive)"),
        "sleep" if open && (pathed("thread") || !dotted) => Some("`thread::sleep` (timed sleep)"),
        "wait" | "wait_timeout" if dotted && open => Some("`.wait(..)` (condvar wait)"),
        "read_to_string" | "read_to_end" | "read_exact" | "write_all" | "sync_all" | "flush"
            if dotted && open =>
        {
            Some("file/stream I/O")
        }
        "read" | "write" if dotted && has_arg => Some("file/stream I/O"),
        "open" | "create" if pathed("File") && open => Some("file open"),
        "read" | "write" | "read_to_string" | "copy" if pathed("fs") && open => Some("file I/O"),
        "check_equivalence" if open => Some("bounded SAT equivalence check"),
        _ => None,
    }
}

/// A call site at `code[i]`: `name(` that is not a definition, a macro,
/// or a control keyword. Method calls match by bare name, same as
/// `det.rs` summaries.
fn call_at<'a>(code: &[&Token], src: &'a str, i: usize) -> Option<&'a str> {
    let t = code.get(i)?;
    if t.kind != TokKind::Ident || !punct_at(code, i + 1, '(') {
        return None;
    }
    if i >= 1 && (ident_is(code, i - 1, src, "fn") || code[i - 1].kind == TokKind::Punct('!')) {
        return None;
    }
    let name = t.text(src);
    if matches!(name, "if" | "while" | "for" | "match" | "return" | "loop" | "let" | "drop") {
        return None;
    }
    // Tuple-struct / enum-variant constructors are not calls into fns.
    if name.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
        return None;
    }
    Some(name)
}

// ---------------------------------------------------------------------------
// Must-lockset dataflow (R14/R15 flow facts)
// ---------------------------------------------------------------------------

/// A guard record: the lock name, the byte offset where its lexical scope
/// ends, and the variable it is bound to (if any).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct Guard {
    name: String,
    scope_end: usize,
    var: Option<String>,
}

/// The two-set encoding of the must-lockset (see module docs): both
/// components only grow under join; must-held = names(may) − unheld.
#[derive(Debug, Clone, PartialEq, Default)]
struct LockFact {
    may: BTreeSet<Guard>,
    unheld: BTreeSet<String>,
}

impl LockFact {
    fn must_held(&self) -> Vec<String> {
        let mut out: Vec<String> =
            self.may.iter().map(|g| g.name.clone()).filter(|n| !self.unheld.contains(n)).collect();
        out.dedup();
        out
    }
}

struct LockPass<'a> {
    code: &'a [&'a Token],
    src: &'a str,
    universe: BTreeSet<String>,
}

impl Analysis for LockPass<'_> {
    type Fact = LockFact;

    fn bottom(&self) -> LockFact {
        LockFact::default()
    }

    fn entry(&self) -> LockFact {
        LockFact { may: BTreeSet::new(), unheld: self.universe.clone() }
    }

    fn join(&self, into: &mut LockFact, other: &LockFact) {
        into.may.extend(other.may.iter().cloned());
        into.unheld.extend(other.unheld.iter().cloned());
    }

    fn transfer(&mut self, cfg: &Cfg, id: BlockId, fact: &mut LockFact) {
        for stmt in &cfg.blocks[id].stmts {
            apply_lock_stmt(self.code, self.src, stmt, fact, &mut None);
        }
    }
}

/// Everything the post-fixpoint reporting walk collects.
struct LockReport {
    func: String,
    edges: Vec<LockEdge>,
    blocking: Vec<(u32, u32, &'static str, Vec<String>)>,
    under_lock: Vec<UnderLockCall>,
}

/// Applies one statement to the lockset fact; when `report` is set, also
/// records lock-order edges, direct blocking ops, and under-lock calls.
fn apply_lock_stmt(
    code: &[&Token],
    src: &str,
    stmt: &Range<usize>,
    fact: &mut LockFact,
    report: &mut Option<&mut LockReport>,
) {
    if stmt.start >= stmt.end {
        return;
    }
    for i in stmt.clone() {
        let t = code[i];
        // Scope exits at or before this token release their guards. The
        // check is per-token because the CFG can pack an inner `{ .. }`
        // block and the statements after it into one stmt range.
        let dead: Vec<Guard> =
            fact.may.iter().filter(|g| g.scope_end <= t.start).cloned().collect();
        for g in dead {
            fact.unheld.insert(g.name.clone());
            fact.may.remove(&g);
        }
        // `drop(guard)` releases early.
        if t.kind == TokKind::Ident && t.text(src) == "drop" && punct_at(code, i + 1, '(') {
            if let Some(arg) = code.get(i + 2).filter(|a| a.kind == TokKind::Ident) {
                let arg = arg.text(src);
                let dropped: Vec<Guard> =
                    fact.may.iter().filter(|g| g.var.as_deref() == Some(arg)).cloned().collect();
                for g in dropped {
                    fact.unheld.insert(g.name.clone());
                    fact.may.remove(&g);
                }
            }
            continue;
        }
        if let Some(name) = lock_acquisition(code, i, src) {
            let held = fact.must_held();
            if let Some(r) = report.as_deref_mut() {
                for from in &held {
                    r.edges.push(LockEdge {
                        line: t.line,
                        col: t.col,
                        func: r.func.clone(),
                        from: from.clone(),
                        to: name.to_string(),
                    });
                }
            }
            let (var, bound) = crate::rules::binding_of(code, i, src).unwrap_or((None, false));
            let scope_end = if bound {
                enclosing_scope_end(code, i)
            } else {
                // A guard temporary lives to the end of its own expression
                // statement — not the (possibly much coarser) CFG stmt
                // range, which can pack a whole `if`/`else` chain into one
                // range and would keep the guard "held" across exclusive
                // branches.
                expr_stmt_end(code, i)
            };
            fact.may.insert(Guard { name: name.to_string(), scope_end, var });
            fact.unheld.remove(name);
            continue;
        }
        if let Some(r) = report.as_deref_mut() {
            let held = fact.must_held();
            if held.is_empty() {
                continue;
            }
            if let Some(what) = blocking_op_at(code, src, i) {
                r.blocking.push((t.line, t.col, what, held));
            } else if let Some(callee) = call_at(code, src, i) {
                r.under_lock.push(UnderLockCall {
                    line: t.line,
                    col: t.col,
                    func: r.func.clone(),
                    callee: callee.to_string(),
                    held,
                });
            }
        }
    }
}

/// Byte offset where the expression statement containing `code[i]` ends:
/// the first `;` at brace depth zero (inclusive), or the start of the `}`
/// / `{` that closes or opens a block at depth zero first (a temporary in
/// an `if` condition does not outlive the condition).
fn expr_stmt_end(code: &[&Token], i: usize) -> usize {
    for t in &code[i..] {
        match t.kind {
            TokKind::Punct(';') => return t.end,
            TokKind::Punct('{') | TokKind::Punct('}') => return t.start,
            _ => {}
        }
    }
    code.last().map(|t| t.end).unwrap_or(usize::MAX)
}

/// Byte offset of the `}` closing the block that contains `code[i]` (the
/// end of a bound guard's lexical scope).
fn enclosing_scope_end(code: &[&Token], i: usize) -> usize {
    let mut depth = 0usize;
    let mut k = i;
    while k < code.len() {
        match code[k].kind {
            TokKind::Punct('{') => depth += 1,
            TokKind::Punct('}') => {
                if depth == 0 {
                    return code[k].start;
                }
                depth -= 1;
            }
            _ => {}
        }
        k += 1;
    }
    code.last().map(|t| t.end).unwrap_or(usize::MAX)
}

/// Runs the must-lockset pass over one function: fixpoint, then a
/// deterministic reporting walk from the stabilized entry facts.
fn lockset_fn(
    rel_path: &str,
    code: &[&Token],
    src: &str,
    cfg: &Cfg,
    facts: &mut CgFacts,
    raw: &mut Vec<Finding>,
) {
    let mut universe = BTreeSet::new();
    for b in &cfg.blocks {
        for stmt in &b.stmts {
            for i in stmt.clone() {
                if let Some(name) = lock_acquisition(code, i, src) {
                    universe.insert(name.to_string());
                }
            }
        }
    }
    if universe.is_empty() {
        return;
    }
    let mut pass = LockPass { code, src, universe };
    let fx = forward_fixpoint(cfg, &mut pass);
    let mut report = LockReport {
        func: cfg.name.clone(),
        edges: Vec::new(),
        blocking: Vec::new(),
        under_lock: Vec::new(),
    };
    for (id, b) in cfg.blocks.iter().enumerate() {
        let mut fact = fx.entry_facts[id].clone();
        for stmt in &b.stmts {
            apply_lock_stmt(code, src, stmt, &mut fact, &mut Some(&mut report));
        }
    }

    for e in &report.edges {
        if let Some(f) = declared_order_finding(rel_path, e) {
            raw.push(f);
        }
    }
    for (line, col, what, held) in &report.blocking {
        raw.push(Finding {
            file: rel_path.to_string(),
            line: *line,
            col: *col,
            rule: "blocking-under-lock",
            message: format!(
                "{what} while guard(s) `{}` are held; blocking under a held lock stalls every \
                 contender — release the guard first (or justify with \
                 `// analyze: allow(blocking-under-lock) — <why>`)",
                held.join("`, `")
            ),
            symbol: Some(report.func.clone()),
            severity_override: None,
        });
    }
    facts.lock_edges.append(&mut report.edges);
    facts.under_lock.append(&mut report.under_lock);
}

/// The flow-local R14 check against the declared [`LOCK_ORDER`]:
/// re-acquisitions of any lock, and inversions of the declared order.
fn declared_order_finding(rel_path: &str, e: &LockEdge) -> Option<Finding> {
    let message = if e.from == e.to {
        format!(
            "acquiring `{}` while a guard for it is still held re-acquires a non-reentrant \
             lock and deadlocks; release the first guard (or justify with \
             `// analyze: allow(lock-order) — <why>`)",
            e.to
        )
    } else {
        let pos_from = LOCK_ORDER.iter().position(|n| *n == e.from)?;
        let pos_to = LOCK_ORDER.iter().position(|n| *n == e.to)?;
        if pos_from < pos_to {
            return None;
        }
        format!(
            "acquiring `{}` while `{}` is held inverts the declared workspace lock order ({}); \
             acquire in declared order or release the guard first (or justify with \
             `// analyze: allow(lock-order) — <why>`)",
            e.to,
            e.from,
            LOCK_ORDER.join(" -> ")
        )
    };
    Some(Finding {
        file: rel_path.to_string(),
        line: e.line,
        col: e.col,
        rule: "lock-order",
        message,
        symbol: Some(e.to.clone()),
        severity_override: None,
    })
}

// ---------------------------------------------------------------------------
// The workspace call graph
// ---------------------------------------------------------------------------

/// A merged seed site, kept per function name (earliest wins).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct Seed {
    file: String,
    line: u32,
    col: u32,
    what: String,
}

/// The deterministic workspace call graph: one node per `(file, name)`
/// definition pair, condensed with Tarjan SCCs, carrying may-panic /
/// may-block facts.
///
/// Call sites resolve conservatively: a callee name defined in the same
/// file binds to that definition; otherwise it binds only when exactly
/// one file in the workspace defines the name. Ambiguous names (`new`,
/// `run`, `forward`, …) produce no edge — the graph under-approximates
/// rather than merging unrelated functions into one node.
#[derive(Debug, Clone, Default)]
pub struct CallGraph {
    names: Vec<String>,
    files: Vec<String>,
    /// file → name → node.
    index: BTreeMap<String, BTreeMap<String, usize>>,
    /// name → every node defining it (for the uniqueness rule).
    by_name: BTreeMap<String, Vec<usize>>,
    succs: Vec<Vec<usize>>,
    scc_of: Vec<usize>,
    scc_count: usize,
    panic_seed: Vec<Option<Seed>>,
    block_seed: Vec<Option<Seed>>,
    may_panic: Vec<bool>,
    may_block: Vec<bool>,
    edge_total: u64,
}

impl CallGraph {
    /// Number of function nodes.
    pub fn nodes(&self) -> u64 {
        self.names.len() as u64
    }

    /// Number of call edges (after name-level dedup).
    pub fn edges(&self) -> u64 {
        self.edge_total
    }

    /// Number of strongly connected components.
    pub fn sccs(&self) -> u64 {
        self.scc_count as u64
    }

    /// The node defined as `func` in `file`, if any.
    fn node(&self, file: &str, func: &str) -> Option<usize> {
        self.index.get(file).and_then(|m| m.get(func)).copied()
    }

    /// Resolves a call to `callee` made from code in `file`: the same-file
    /// definition wins; otherwise the name must be workspace-unique.
    fn resolve(&self, file: &str, callee: &str) -> Option<usize> {
        if let Some(v) = self.node(file, callee) {
            return Some(v);
        }
        match self.by_name.get(callee) {
            Some(vs) if vs.len() == 1 => Some(vs[0]),
            _ => None,
        }
    }

    /// Whether `func` (defined in `file`) may transitively reach a panic
    /// seed.
    pub fn may_panic(&self, file: &str, func: &str) -> bool {
        self.node(file, func).is_some_and(|i| self.may_panic[i])
    }

    /// Whether `func` (defined in `file`) may transitively reach a
    /// blocking operation.
    pub fn may_block(&self, file: &str, func: &str) -> bool {
        self.node(file, func).is_some_and(|i| self.may_block[i])
    }

    /// Propagates may-panic/may-block over the SCC condensation in
    /// reverse topological order. Returns the number of edge visits (the
    /// unit the bench harness reports as propagation throughput).
    pub fn propagate(&mut self) -> u64 {
        let n = self.names.len();
        self.may_panic = vec![false; n];
        self.may_block = vec![false; n];
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); self.scc_count];
        for v in 0..n {
            members[self.scc_of[v]].push(v);
        }
        let mut steps = 0u64;
        // Tarjan emits SCCs with callees before callers, so a single pass
        // in emission order reaches the fixpoint.
        for group in &members {
            let mut panics = false;
            let mut blocks = false;
            for &v in group {
                panics = panics || self.panic_seed[v].is_some();
                blocks = blocks || self.block_seed[v].is_some();
                for &w in &self.succs[v] {
                    steps += 1;
                    panics = panics || self.may_panic[w];
                    blocks = blocks || self.may_block[w];
                }
            }
            for &v in group {
                self.may_panic[v] = panics;
                self.may_block[v] = blocks;
            }
        }
        steps
    }

    /// Shortest path (BFS over sorted successor lists) from `from` to the
    /// nearest node carrying a seed, excluding `from`'s own seed. Returns
    /// the node path `from → … → seeded`.
    fn witness(&self, from: usize, seeds: &[Option<Seed>]) -> Option<Vec<usize>> {
        let n = self.names.len();
        let mut parent = vec![usize::MAX; n];
        parent[from] = from;
        let mut queue = VecDeque::new();
        queue.push_back(from);
        while let Some(v) = queue.pop_front() {
            for &w in &self.succs[v] {
                if parent[w] != usize::MAX {
                    continue;
                }
                parent[w] = v;
                if seeds[w].is_some() {
                    let mut path = vec![w];
                    let mut cur = w;
                    while cur != from {
                        cur = parent[cur];
                        path.push(cur);
                    }
                    path.reverse();
                    return Some(path);
                }
                queue.push_back(w);
            }
        }
        None
    }

    /// Renders `a -> b -> c; <kind> site <file>:<line>:<col> (<what>)`.
    fn render_witness(&self, path: &[usize], seeds: &[Option<Seed>], kind: &str) -> String {
        let names: Vec<&str> = path.iter().map(|&v| self.names[v].as_str()).collect();
        let tail = path.last().and_then(|&v| seeds[v].as_ref());
        match tail {
            Some(s) => format!(
                "{}; {kind} site {}:{}:{} ({})",
                names.join(" -> "),
                s.file,
                s.line,
                s.col,
                s.what
            ),
            None => names.join(" -> "),
        }
    }

    /// The graph as a deterministic JSON document (the `--callgraph` CI
    /// artifact).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"schema\": \"hoga-analyze-callgraph v1\",\n");
        out.push_str(&format!(
            "  \"nodes\": {},\n  \"edges\": {},\n  \"sccs\": {},\n  \"functions\": [\n",
            self.nodes(),
            self.edges(),
            self.sccs()
        ));
        for (v, name) in self.names.iter().enumerate() {
            let calls: Vec<String> = self.succs[v]
                .iter()
                .map(|&w| crate::json_string(&format!("{}::{}", self.files[w], self.names[w])))
                .collect();
            out.push_str(&format!(
                "    {{\"name\": {}, \"file\": {}, \"scc\": {}, \"may_panic\": {}, \
                 \"may_block\": {}, \"calls\": [{}]}}{}\n",
                crate::json_string(name),
                crate::json_string(&self.files[v]),
                self.scc_of[v],
                self.may_panic[v],
                self.may_block[v],
                calls.join(", "),
                if v + 1 == self.names.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Builds the call graph from per-file inputs: nodes are defined function
/// names, edges are call sites whose callee resolves to a defined name.
/// Pure and deterministic: inputs are consumed in the given order, every
/// collection is a BTree, and Tarjan's visit order is the sorted name
/// order.
pub fn build_graph(inputs: &[CgFileInput]) -> CallGraph {
    // Node order: sorted (file, name) pairs. Two same-name defs in one
    // file (e.g. `new` on two types) merge into one node — the per-file
    // grain is the same conservative merge `det.rs` applies.
    let mut keys: BTreeSet<(String, String)> = BTreeSet::new();
    for input in inputs {
        for d in &input.defs {
            keys.insert((input.rel.clone(), d.name.clone()));
        }
    }
    let n = keys.len();
    let mut names = Vec::with_capacity(n);
    let mut files = Vec::with_capacity(n);
    let mut index: BTreeMap<String, BTreeMap<String, usize>> = BTreeMap::new();
    let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for (v, (file, name)) in keys.into_iter().enumerate() {
        index.entry(file.clone()).or_default().insert(name.clone(), v);
        by_name.entry(name.clone()).or_default().push(v);
        names.push(name);
        files.push(file);
    }

    let mut graph = CallGraph {
        names,
        files,
        index,
        by_name,
        succs: vec![Vec::new(); n],
        scc_of: Vec::new(),
        scc_count: 0,
        panic_seed: vec![None; n],
        block_seed: vec![None; n],
        may_panic: vec![false; n],
        may_block: vec![false; n],
        edge_total: 0,
    };

    let mut succ_sets: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
    for input in inputs {
        for c in &input.facts.calls {
            let (Some(from), Some(to)) =
                (graph.node(&input.rel, &c.func), graph.resolve(&input.rel, &c.what))
            else {
                continue;
            };
            succ_sets[from].insert(to);
        }
        for s in &input.facts.panics {
            if let Some(v) = graph.node(&input.rel, &s.func) {
                let seed = Seed {
                    file: input.rel.clone(),
                    line: s.line,
                    col: s.col,
                    what: s.what.clone(),
                };
                merge_seed(&mut graph.panic_seed[v], seed);
            }
        }
        for s in &input.facts.blocking {
            if let Some(v) = graph.node(&input.rel, &s.func) {
                let seed = Seed {
                    file: input.rel.clone(),
                    line: s.line,
                    col: s.col,
                    what: s.what.clone(),
                };
                merge_seed(&mut graph.block_seed[v], seed);
            }
        }
    }
    graph.succs = succ_sets.into_iter().map(|s| s.into_iter().collect()).collect();
    graph.edge_total = graph.succs.iter().map(|s| s.len() as u64).sum();
    let (scc_of, scc_count) = tarjan(&graph.succs);
    graph.scc_of = scc_of;
    graph.scc_count = scc_count;
    graph
}

/// Keeps the earliest (by `Ord`) seed per node.
fn merge_seed(slot: &mut Option<Seed>, candidate: Seed) {
    match slot {
        Some(existing) if *existing <= candidate => {}
        _ => *slot = Some(candidate),
    }
}

/// Iterative Tarjan SCC. Returns `(scc_of, scc_count)`; components are
/// numbered in emission order, which for Tarjan is reverse topological
/// (callees before callers).
fn tarjan(succs: &[Vec<usize>]) -> (Vec<usize>, usize) {
    let n = succs.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut scc_of = vec![0usize; n];
    let mut scc_count = 0usize;
    let mut next_index = 0usize;
    let mut call: Vec<(usize, usize)> = Vec::new();
    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        index[root] = next_index;
        low[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;
        call.push((root, 0));
        while let Some(&(v, ci)) = call.last() {
            if ci < succs[v].len() {
                let w = succs[v][ci];
                if let Some(top) = call.last_mut() {
                    top.1 = ci + 1;
                }
                if index[w] == usize::MAX {
                    index[w] = next_index;
                    low[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    call.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                call.pop();
                if let Some(&(p, _)) = call.last() {
                    low[p] = low[p].min(low[v]);
                }
                if low[v] == index[v] {
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        scc_of[w] = scc_count;
                        if w == v {
                            break;
                        }
                    }
                    scc_count += 1;
                }
            }
        }
    }
    (scc_of, scc_count)
}

// ---------------------------------------------------------------------------
// Cross-file resolution: R13 / R14-cycles / R15
// ---------------------------------------------------------------------------

/// Resolves the cross-file rules against a propagated graph. Returns
/// findings grouped by workspace-relative path, ready to be pushed through
/// each file's suppression machinery (like R6's dead-API findings).
pub(crate) fn resolve_rules(
    graph: &CallGraph,
    inputs: &[CgFileInput],
) -> BTreeMap<String, Vec<Finding>> {
    let mut out: BTreeMap<String, Vec<Finding>> = BTreeMap::new();

    // R13: hardened public APIs that can transitively reach a panic.
    for input in inputs {
        if !input.hardened {
            continue;
        }
        for d in &input.defs {
            if !d.public {
                continue;
            }
            let Some(v) = graph.node(&input.rel, &d.name) else { continue };
            if !graph.may_panic[v] {
                continue;
            }
            let Some(path) = graph.witness(v, &graph.panic_seed) else { continue };
            out.entry(input.rel.clone()).or_default().push(Finding {
                file: input.rel.clone(),
                line: d.line,
                col: d.col,
                rule: "panic-reachability",
                message: format!(
                    "public API `{}` in a hardened module can transitively reach a panic: {}; \
                     handle the failure on the path or justify with \
                     `// analyze: allow(panic-reachability) — <why>`",
                    d.name,
                    graph.render_witness(&path, &graph.panic_seed, "panic")
                ),
                symbol: Some(d.name.clone()),
                severity_override: None,
            });
        }
    }

    // R15 (cross-file): calls under a must-held lock whose callee may
    // transitively block.
    for input in inputs {
        for u in &input.facts.under_lock {
            let Some(v) = graph.resolve(&input.rel, &u.callee) else { continue };
            if !graph.may_block[v] {
                continue;
            }
            let path = if graph.block_seed[v].is_some() {
                vec![v]
            } else {
                match graph.witness(v, &graph.block_seed) {
                    Some(p) => p,
                    None => continue,
                }
            };
            out.entry(input.rel.clone()).or_default().push(Finding {
                file: input.rel.clone(),
                line: u.line,
                col: u.col,
                rule: "blocking-under-lock",
                message: format!(
                    "call to `{}` while guard(s) `{}` are held may block: {}; release the guard \
                     before calling out (or justify with \
                     `// analyze: allow(blocking-under-lock) — <why>`)",
                    u.callee,
                    u.held.join("`, `"),
                    graph.render_witness(&path, &graph.block_seed, "blocking")
                ),
                symbol: Some(u.func.clone()),
                severity_override: None,
            });
        }
    }

    // R14 (cross-file): cycles in the workspace lock-order graph that the
    // flow-local declared-order check did not already flag.
    for f in lock_cycle_findings(inputs) {
        out.entry(f.file.clone()).or_default().push(f);
    }
    out
}

/// Builds the workspace lock-order graph (lock names as nodes, observed
/// held→acquired pairs as edges) and reports every cycle not already
/// covered by the flow-local declared-order/re-acquire findings.
fn lock_cycle_findings(inputs: &[CgFileInput]) -> Vec<Finding> {
    // (from, to) -> earliest site, skipping self-edges (flagged per-file)
    // and declared-order inversions (ditto).
    let mut edges: BTreeMap<(String, String), (String, u32, u32)> = BTreeMap::new();
    for input in inputs {
        for e in &input.facts.lock_edges {
            if e.from == e.to {
                continue;
            }
            let declared_inversion = match (
                LOCK_ORDER.iter().position(|n| *n == e.from),
                LOCK_ORDER.iter().position(|n| *n == e.to),
            ) {
                (Some(f), Some(t)) => f >= t,
                _ => false,
            };
            if declared_inversion {
                continue;
            }
            let site = (input.rel.clone(), e.line, e.col);
            let key = (e.from.clone(), e.to.clone());
            match edges.get(&key) {
                Some(existing) if *existing <= site => {}
                _ => {
                    edges.insert(key, site);
                }
            }
        }
    }
    let mut locks: BTreeSet<String> = BTreeSet::new();
    for (from, to) in edges.keys() {
        locks.insert(from.clone());
        locks.insert(to.clone());
    }
    let locks: Vec<String> = locks.into_iter().collect();
    let index: BTreeMap<&str, usize> =
        locks.iter().enumerate().map(|(i, n)| (n.as_str(), i)).collect();
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); locks.len()];
    for (from, to) in edges.keys() {
        if let (Some(&f), Some(&t)) = (index.get(from.as_str()), index.get(to.as_str())) {
            succs[f].push(t);
        }
    }
    let (scc_of, scc_count) = tarjan(&succs);
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); scc_count];
    for v in 0..locks.len() {
        members[scc_of[v]].push(v);
    }
    let mut out = Vec::new();
    for group in &members {
        if group.len() < 2 {
            continue;
        }
        // Render the cycle through the component's smallest lock name.
        let rep = group[0];
        let cycle = cycle_through(&succs, &scc_of, rep);
        let mut parts: Vec<String> = Vec::new();
        let mut anchor: Option<(String, u32, u32)> = None;
        for pair in cycle.windows(2) {
            let (a, b) = (&locks[pair[0]], &locks[pair[1]]);
            let site = edges.get(&(a.clone(), b.clone()));
            let rendered = match site {
                Some((f, l, c)) => {
                    if anchor.as_ref().map(|s| s > &(f.clone(), *l, *c)).unwrap_or(true) {
                        anchor = Some((f.clone(), *l, *c));
                    }
                    format!("{a} -> {b} ({f}:{l}:{c})")
                }
                None => format!("{a} -> {b}"),
            };
            parts.push(rendered);
        }
        let Some((file, line, col)) = anchor else { continue };
        out.push(Finding {
            file,
            line,
            col,
            rule: "lock-order",
            message: format!(
                "workspace lock-order cycle: {}; impose a single acquisition order (or justify \
                 with `// analyze: allow(lock-order) — <why>`)",
                parts.join(", ")
            ),
            symbol: Some(locks[rep].clone()),
            severity_override: None,
        });
    }
    out
}

/// A cycle `rep → … → rep` through SCC-internal edges (BFS, deterministic
/// because successor lists are in insertion order over sorted edge keys).
fn cycle_through(succs: &[Vec<usize>], scc_of: &[usize], rep: usize) -> Vec<usize> {
    let n = succs.len();
    let mut parent = vec![usize::MAX; n];
    let mut queue = VecDeque::new();
    queue.push_back(rep);
    while let Some(v) = queue.pop_front() {
        for &w in &succs[v] {
            if scc_of[w] != scc_of[rep] {
                continue;
            }
            if w == rep {
                let mut path = vec![rep];
                let mut cur = v;
                while cur != rep {
                    path.push(cur);
                    cur = parent[cur];
                }
                path.push(rep);
                path.reverse();
                return path;
            }
            if parent[w] != usize::MAX {
                continue;
            }
            parent[w] = v;
            queue.push_back(w);
        }
    }
    vec![rep, rep]
}

// ---------------------------------------------------------------------------
// Single-file helpers (analyze_source, bench)
// ---------------------------------------------------------------------------

/// Non-test `fn` definitions of a source file, as call-graph defs.
pub fn file_defs(src: &str) -> Vec<CgDef> {
    let tokens = lex(src);
    let test_spans = cfg_test_spans(&tokens, src);
    let mut out = Vec::new();
    for item in parse_items(&tokens, src) {
        if item.kind != ItemKind::Fn || in_spans(item.start, &test_spans) {
            continue;
        }
        let Some(name) = item.name else { continue };
        out.push(CgDef {
            name,
            line: item.line,
            col: item.col,
            public: item.vis == Visibility::Public,
        });
    }
    out
}

/// Builds a full per-file call-graph input from source (used by the bench
/// harness; the analyzer proper assembles inputs from cached artifacts).
pub fn file_input(rel: &str, src: &str, profile: FileProfile) -> CgFileInput {
    let tokens = lex(src);
    let test_spans: Vec<Range<usize>> = if profile.all_test {
        std::iter::once(0..src.len()).collect()
    } else {
        cfg_test_spans(&tokens, src)
    };
    let code: Vec<&Token> = tokens
        .iter()
        .filter(|t| !matches!(t.kind, TokKind::LineComment { .. } | TokKind::BlockComment { .. }))
        .collect();
    let mut sups = crate::rules::collect_suppressions(rel, &tokens, src);
    let mut sink = Vec::new();
    let facts = if profile.all_test {
        CgFacts::default()
    } else {
        extract(rel, &code, src, &test_spans, profile, &mut sups, &mut sink)
    };
    CgFileInput { rel: rel.to_string(), hardened: profile.panic_free, defs: file_defs(src), facts }
}
