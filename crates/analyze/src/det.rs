//! Determinism dataflow: rules R10 (`determinism-taint`), R11
//! (`unchecked-index`), and R12 (`swallowed-result`).
//!
//! The pass runs a forward may-analysis ([`crate::dataflow`]) over each
//! function's CFG ([`crate::cfg`]). The fact tracks, per variable:
//!
//! * **taint labels** — which nondeterminism sources may influence the
//!   variable's value. Direct sources are the declared lattice in
//!   [`crate::rules::DET_SOURCES`] (clock reads, env reads, hash-seed
//!   randomization, thread identity) plus two structural kinds: iteration
//!   over an unordered container (`HashMap`/`HashSet`) and a reassociated
//!   float reduction (`sum`/`fold`/`product` over such an iteration);
//! * **unordered containers** — variables bound to `HashMap`/`HashSet`
//!   values (by constructor or type annotation), whose iteration order is
//!   a source;
//! * **arith offsets** (R11) — variables derived from `+`/`*`/`<<`
//!   arithmetic that have not passed a bounds check.
//!
//! When a tainted value reaches a declared persisted sink
//! ([`crate::rules::DET_SINKS`]: checkpoint/param encoding, manifest
//! records, atomic artifact writes, the job event stream), R10 fires —
//! error severity in hardened modules, warning elsewhere.
//!
//! **Interprocedural, one call deep.** Each function gets a summary:
//! does it return tainted data (`let x = g(); sink(x)` in a caller), and
//! does it pass a parameter into a sink (`g(tainted)` in a caller)?
//! Callers record *conditional* findings naming the callee; the workspace
//! layer resolves them against the summary map (built from every file via
//! the symbol graph's name-level linkage) after all files are analyzed.
//! Resolution follows at most one `returns_calls` hop, so the flow depth
//! is exactly one call as specified.

use std::collections::{BTreeMap, BTreeSet};
use std::ops::Range;

use crate::cfg::{function_cfgs, Cfg};
use crate::dataflow::{forward_fixpoint, Analysis, Fixpoint};
use crate::lexer::{TokKind, Token};
use crate::rules::{in_spans, FileProfile, Finding, DET_SINKS, DET_SOURCES};

/// Structural source kind: iteration over an unordered container.
pub(crate) const SRC_UNORDERED: &str = "unordered container iteration";
/// Structural source kind: float reduction whose order follows an
/// unordered iteration (reassociation changes the rounded result).
pub(crate) const SRC_REASSOC: &str = "reassociated float reduction";

/// One taint label on a variable.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum Label {
    /// Influenced by a declared nondeterminism source.
    Direct(String),
    /// Value returned by a call to `name` — tainted iff the callee's
    /// summary says so (resolved cross-file).
    FromCall(String),
    /// Derived from a function parameter (used only to compute the
    /// param-reaches-sink half of the function's summary).
    Param,
}

/// The dataflow fact: per-variable taint state at a block entry.
#[derive(Debug, Clone, PartialEq, Default)]
struct Fact {
    /// Variable → labels that may influence it.
    vars: BTreeMap<String, BTreeSet<Label>>,
    /// Variables bound to `HashMap`/`HashSet` values.
    unordered: BTreeSet<String>,
    /// Variables holding unchecked `+`/`*`/`<<` arithmetic (R11).
    arith: BTreeSet<String>,
}

/// Per-function summary for the one-call-deep interprocedural step.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) struct FnSummary {
    /// Function name (merged by name across the workspace, conservatively).
    pub(crate) name: String,
    /// Direct source kinds the return value may carry.
    pub(crate) returns: BTreeSet<String>,
    /// Callees whose return value may flow into this function's return
    /// (resolved one hop at lookup time).
    pub(crate) returns_calls: BTreeSet<String>,
    /// Does some parameter flow into a declared sink in the body?
    pub(crate) param_to_sink: bool,
}

/// Which interprocedural condition a [`CondFinding`] is waiting on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum CondKind {
    /// `let x = callee(); ...; sink(x)` — fires iff the callee returns
    /// taint. Carries the sink's name and its persisted-what description.
    ReturnsTaint { sink: String, what: String },
    /// `callee(tainted)` — fires iff some callee parameter reaches a sink.
    /// Carries the labels the argument was tainted with.
    ParamToSink { labels: BTreeSet<String> },
}

/// A finding that depends on another function's summary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct CondFinding {
    pub(crate) file: String,
    pub(crate) line: u32,
    pub(crate) col: u32,
    /// `Some("error")` in hardened modules (R10 severity policy).
    pub(crate) severity_override: Option<&'static str>,
    pub(crate) callee: String,
    /// Name of the enclosing function — the symbol a resolved finding is
    /// attributed to, matching the intraprocedural findings.
    pub(crate) symbol: String,
    pub(crate) kind: CondKind,
}

/// Aggregate dataflow statistics for the bench harness and `--stats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DetStats {
    /// Function CFGs built.
    pub cfgs: u64,
    /// Basic blocks across all CFGs.
    pub blocks: u64,
    /// CFG edges across all CFGs.
    pub edges: u64,
    /// Total worklist transfers executed across all fixpoints.
    pub fixpoint_iterations: u64,
}

/// Everything the det pass produces for one file.
#[derive(Debug, Default)]
pub(crate) struct DetOutput {
    pub(crate) findings: Vec<Finding>,
    pub(crate) conds: Vec<CondFinding>,
    pub(crate) summaries: Vec<FnSummary>,
    pub(crate) stats: DetStats,
}

/// Runs R10/R11/R12 over one file's comment-free token stream. Findings
/// inside `test_spans` are dropped (bench writers and test fixtures
/// persist measurement data by design).
pub(crate) fn run_det(
    rel_path: &str,
    code: &[&Token],
    src: &str,
    profile: FileProfile,
    test_spans: &[Range<usize>],
) -> DetOutput {
    let mut out = DetOutput::default();
    let sev = if profile.panic_free { Some("error") } else { None };
    rule_swallowed_result(rel_path, code, src, test_spans, &mut out.findings);
    for cfg in function_cfgs(code, src) {
        if in_spans(cfg.header_start, test_spans) {
            continue;
        }
        out.stats.cfgs += 1;
        out.stats.blocks += cfg.blocks.len() as u64;
        out.stats.edges += cfg.edge_count() as u64;
        let mut pass = DetPass {
            code,
            src,
            entry: entry_fact(&cfg, code, src),
            check_index: profile.lossy_cast,
        };
        let fixpoint: Fixpoint<Fact> = forward_fixpoint(&cfg, &mut pass);
        out.stats.fixpoint_iterations += fixpoint.iterations;
        report_cfg(rel_path, &cfg, &pass, &fixpoint, sev, test_spans, &mut out);
    }
    out
}

/// The entry fact of a function: every parameter carries [`Label::Param`],
/// and `HashMap`/`HashSet`-typed parameters are unordered containers.
fn entry_fact(cfg: &Cfg, code: &[&Token], src: &str) -> Fact {
    let mut fact = Fact::default();
    let sig = &code[cfg.sig.clone()];
    // Parameters live in the first paren group of the signature: scan for
    // `name :` pairs at paren depth 1 and inspect the type tokens after.
    let mut depth = 0i64;
    let mut i = 0;
    while i < sig.len() {
        match sig[i].kind {
            TokKind::Punct('(') => depth += 1,
            TokKind::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            TokKind::Ident
                if depth == 1
                    && matches!(sig.get(i + 1).map(|t| t.kind), Some(TokKind::Punct(':')))
                    && !matches!(sig.get(i + 2).map(|t| t.kind), Some(TokKind::Punct(':'))) =>
            {
                let name = sig[i].text(src);
                if name != "self" && is_binding_ident(name) {
                    fact.vars.insert(name.to_string(), [Label::Param].into_iter().collect());
                    // Type tokens: up to the `,` or `)` at this depth.
                    let mut j = i + 2;
                    let mut d2 = 0i64;
                    while j < sig.len() {
                        match sig[j].kind {
                            TokKind::Punct('(' | '[') => d2 += 1,
                            TokKind::Punct(')' | ']') if d2 > 0 => d2 -= 1,
                            TokKind::Punct(')' | ',') if d2 == 0 => break,
                            TokKind::Ident if matches!(sig[j].text(src), "HashMap" | "HashSet") => {
                                fact.unordered.insert(name.to_string());
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
    fact
}

/// `true` for names a `let`/`for` pattern can bind (snake_case values, not
/// `CamelCase` constructors, keywords, or `_`).
fn is_binding_ident(name: &str) -> bool {
    !name.is_empty()
        && name != "_"
        && !name.chars().next().is_some_and(|c| c.is_ascii_uppercase())
        && !matches!(name, "mut" | "ref" | "let" | "in" | "if" | "else" | "box")
}

struct DetPass<'a> {
    code: &'a [&'a Token],
    src: &'a str,
    entry: Fact,
    /// R11 applies (decode-path profile).
    check_index: bool,
}

impl Analysis for DetPass<'_> {
    type Fact = Fact;

    fn bottom(&self) -> Fact {
        Fact::default()
    }

    fn entry(&self) -> Fact {
        self.entry.clone()
    }

    fn join(&self, into: &mut Fact, other: &Fact) {
        for (var, labels) in &other.vars {
            into.vars.entry(var.clone()).or_default().extend(labels.iter().cloned());
        }
        into.unordered.extend(other.unordered.iter().cloned());
        into.arith.extend(other.arith.iter().cloned());
    }

    fn transfer(&mut self, cfg: &Cfg, id: crate::cfg::BlockId, fact: &mut Fact) {
        for stmt in &cfg.blocks[id].stmts {
            apply_stmt(self.code, self.src, stmt.clone(), fact, self.check_index, None);
        }
    }
}

/// Findings and summary signals collected during the reporting pass.
#[derive(Default)]
struct StmtReport {
    /// `(token index of the sink/index site, rule, message, labels)`.
    sites: Vec<(usize, &'static str, String)>,
    /// Direct labels that may reach a `return`.
    returns: BTreeSet<String>,
    /// Callees whose return value may reach a `return`.
    returns_calls: BTreeSet<String>,
    /// A `Param`-labeled value reached a sink.
    param_to_sink: bool,
    /// Conditional findings (token index, callee, kind).
    conds: Vec<(usize, String, CondKind)>,
}

/// Second pass over a solved CFG: re-applies every block's transfer from
/// its entry fact, this time recording sink hits and summary signals.
fn report_cfg(
    rel_path: &str,
    cfg: &Cfg,
    pass: &DetPass<'_>,
    fixpoint: &Fixpoint<Fact>,
    severity_override: Option<&'static str>,
    test_spans: &[Range<usize>],
    out: &mut DetOutput,
) {
    let mut report = StmtReport::default();
    for (id, block) in cfg.blocks.iter().enumerate() {
        let mut fact = fixpoint.entry_facts[id].clone();
        let exits = block.succs.iter().any(|(t, _)| *t == cfg.exit);
        for (si, stmt) in block.stmts.iter().enumerate() {
            apply_stmt(
                pass.code,
                pass.src,
                stmt.clone(),
                &mut fact,
                pass.check_index,
                Some(&mut report),
            );
            // Tail expression: the last statement of an exit-bound block
            // with no trailing `;` is the function's return value.
            let last = si + 1 == block.stmts.len();
            if exits && last && stmt.start < stmt.end {
                let ends_semi = pass
                    .code
                    .get(stmt.end - 1)
                    .is_some_and(|t| matches!(t.kind, TokKind::Punct(';')));
                if !ends_semi {
                    let labels = expr_labels(pass.code, pass.src, stmt.clone(), &fact);
                    absorb_return(&labels, &mut report);
                }
            }
        }
    }
    for (tok, rule, message) in report.sites {
        let t = pass.code[tok];
        if in_spans(t.start, test_spans) {
            continue;
        }
        out.findings.push(Finding {
            file: rel_path.to_string(),
            line: t.line,
            col: t.col,
            rule,
            message,
            symbol: Some(cfg.name.clone()),
            severity_override: if rule == "determinism-taint" { severity_override } else { None },
        });
    }
    for (tok, callee, kind) in report.conds {
        let t = pass.code[tok];
        if in_spans(t.start, test_spans) {
            continue;
        }
        out.conds.push(CondFinding {
            file: rel_path.to_string(),
            line: t.line,
            col: t.col,
            severity_override,
            callee,
            symbol: cfg.name.clone(),
            kind,
        });
    }
    out.summaries.push(FnSummary {
        name: cfg.name.clone(),
        returns: report.returns,
        returns_calls: report.returns_calls,
        param_to_sink: report.param_to_sink,
    });
}

fn absorb_return(labels: &BTreeSet<Label>, report: &mut StmtReport) {
    for l in labels {
        match l {
            Label::Direct(s) => {
                report.returns.insert(s.clone());
            }
            Label::FromCall(c) => {
                report.returns_calls.insert(c.clone());
            }
            Label::Param => {}
        }
    }
}

/// The taint labels an expression (token range) may carry: labels of every
/// tainted variable it mentions, declared direct sources, and unordered
/// iteration / reassociated reduction kinds.
fn expr_labels(code: &[&Token], src: &str, range: Range<usize>, fact: &Fact) -> BTreeSet<Label> {
    let mut labels = BTreeSet::new();
    let mut saw_unordered_iter = false;
    let mut saw_reduce = false;
    for i in range.clone() {
        let t = code[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let name = t.text(src);
        if let Some(var_labels) = fact.vars.get(name) {
            labels.extend(var_labels.iter().cloned());
        }
        if let Some(kind) = direct_source_at(code, i, src) {
            labels.insert(Label::Direct(kind.to_string()));
        }
        if fact.unordered.contains(name) && unordered_iteration_at(code, i, range.end, src) {
            saw_unordered_iter = true;
        }
        if matches!(name, "sum" | "fold" | "product")
            && i > 0
            && matches!(code[i - 1].kind, TokKind::Punct('.'))
        {
            saw_reduce = true;
        }
    }
    if saw_unordered_iter {
        labels.insert(Label::Direct(SRC_UNORDERED.to_string()));
        if saw_reduce {
            labels.insert(Label::Direct(SRC_REASSOC.to_string()));
        }
    }
    labels
}

/// Is `code[i]` (an unordered-container variable) being iterated —
/// `.iter()`, `.keys()`, `.values()`, `.into_iter()`, `.drain()`, or the
/// whole expression being a `for`-loop iterable (checked by the caller via
/// the for-header path)?
fn unordered_iteration_at(code: &[&Token], i: usize, end: usize, src: &str) -> bool {
    i + 2 < end
        && matches!(code[i + 1].kind, TokKind::Punct('.'))
        && code[i + 2].kind == TokKind::Ident
        && matches!(
            code[i + 2].text(src),
            "iter" | "keys" | "values" | "into_iter" | "drain" | "iter_mut" | "values_mut"
        )
}

/// Does the declared source table match at `code[i]`? Path patterns like
/// `Instant::now` match the final segment plus its `::`-qualified prefix;
/// single-segment patterns match the bare identifier.
fn direct_source_at(code: &[&Token], i: usize, src: &str) -> Option<&'static str> {
    let name = code[i].text(src);
    for (pattern, kind) in DET_SOURCES {
        match pattern.rsplit_once("::") {
            None => {
                if *pattern == name {
                    return Some(kind);
                }
            }
            Some((prefix, last)) => {
                if last == name
                    && i >= 3
                    && matches!(code[i - 1].kind, TokKind::Punct(':'))
                    && matches!(code[i - 2].kind, TokKind::Punct(':'))
                    && code[i - 3].kind == TokKind::Ident
                    && code[i - 3].text(src) == prefix
                {
                    return Some(kind);
                }
            }
        }
    }
    None
}

/// Applies one statement to the fact; when `report` is present, records
/// sink hits, R11 index sites, conditionals, and return taint.
fn apply_stmt(
    code: &[&Token],
    src: &str,
    range: Range<usize>,
    fact: &mut Fact,
    check_index: bool,
    mut report: Option<&mut StmtReport>,
) {
    if range.start >= range.end {
        return;
    }
    let first = code[range.start];

    // Bounds guards kill R11 arithmetic taint before any index check in
    // the same statement (`if off < buf.len() { buf[off] }` style guards
    // usually precede the use in a separate statement anyway).
    kill_guarded_arith(code, src, range.clone(), fact);

    // `for pat in iterable { ... }` headers bind the pattern.
    if first.kind == TokKind::Ident && first.text(src) == "for" {
        if let Some(in_idx) = find_ident_depth0(code, src, range.clone(), "in") {
            let iter_range = in_idx + 1..range.end;
            let mut labels = expr_labels(code, src, iter_range.clone(), fact);
            // Iterating the container itself (`for (k, v) in &map`).
            let direct_container = (iter_range.clone()).any(|j| {
                code[j].kind == TokKind::Ident && fact.unordered.contains(code[j].text(src))
            });
            if direct_container {
                labels.insert(Label::Direct(SRC_UNORDERED.to_string()));
            }
            scan_calls(code, src, iter_range, fact, check_index, report.as_deref_mut());
            for t in &code[range.start + 1..in_idx] {
                if t.kind == TokKind::Ident && is_binding_ident(t.text(src)) {
                    bind(fact, t.text(src), &labels, false);
                }
            }
            return;
        }
    }

    // `let <pat>[: <ty>] = <rhs>;` and `x = rhs;` / `x op= rhs;`.
    let (bound, ty_range, rhs_range, weak) = split_binding(code, src, range.clone());

    // Scan the whole statement (or just the RHS scan happens implicitly —
    // sinks can appear anywhere) for sink calls, conditionals, and R11.
    scan_calls(code, src, range.clone(), fact, check_index, report.as_deref_mut());

    // `return <expr>` routes labels into the summary.
    if let Some(ret_idx) = find_ident_depth0(code, src, range.clone(), "return") {
        if let Some(report) = report {
            let labels = expr_labels(code, src, ret_idx + 1..range.end, fact);
            absorb_return(&labels, report);
        }
    }

    // `recv.method(args)` mutates the receiver: conservatively union the
    // argument labels into it, so accumulation like `blob.push(tainted)`
    // taints `blob`.
    if bound.is_empty()
        && first.kind == TokKind::Ident
        && is_binding_ident(first.text(src))
        && range.start + 1 < range.end
        && matches!(code[range.start + 1].kind, TokKind::Punct('.'))
    {
        if let Some(open) = (range.clone()).find(|&j| matches!(code[j].kind, TokKind::Punct('('))) {
            let labels = expr_labels(code, src, open..range.end, fact);
            if !labels.is_empty() {
                bind(fact, first.text(src), &labels, true);
            }
        }
    }

    let Some(rhs) = rhs_range else { return };
    let mut labels = expr_labels(code, src, rhs.clone(), fact);
    // A single-call RHS (`let x = g(...);`) marks x as from-call so a later
    // sink use can be resolved against g's summary.
    if let Some(callee) = single_call_callee(code, src, rhs.clone()) {
        if !DET_SINKS.iter().any(|(s, _)| *s == callee) {
            labels.insert(Label::FromCall(callee));
        }
    }
    let rhs_unordered = (rhs.clone()).any(|j| {
        code[j].kind == TokKind::Ident
            && (matches!(code[j].text(src), "HashMap" | "HashSet")
                || fact.unordered.contains(code[j].text(src)))
    }) || (ty_range.clone()).is_some_and(|ty| {
        ty.clone().any(|j| {
            code[j].kind == TokKind::Ident && matches!(code[j].text(src), "HashMap" | "HashSet")
        })
    });
    // An RHS that bounds its own result (`% len`, `.min(n)`, `.clamp(..)`)
    // produces a safe index no matter what arithmetic fed it.
    let rhs_bounded = (rhs.clone()).any(|j| {
        matches!(code[j].kind, TokKind::Punct('%'))
            || (code[j].kind == TokKind::Ident
                && matches!(code[j].text(src), "min" | "clamp")
                && j > 0
                && matches!(code[j - 1].kind, TokKind::Punct('.')))
    });
    let rhs_arith = check_index
        && !rhs_bounded
        && ((rhs.clone()).any(|j| matches!(code[j].kind, TokKind::Punct('+' | '*')))
            || (rhs.clone())
                .any(|j| code[j].kind == TokKind::Ident && fact.arith.contains(code[j].text(src)))
            || weak_is_arith(code, range.clone()));

    for var in &bound {
        bind(fact, var, &labels, weak);
        if rhs_unordered {
            fact.unordered.insert(var.clone());
        } else if !weak {
            fact.unordered.remove(var);
        }
        if rhs_arith {
            fact.arith.insert(var.clone());
        } else if !weak {
            fact.arith.remove(var);
        }
    }
}

/// Binds `var` to `labels`: strong update for `=`, union for `op=`.
fn bind(fact: &mut Fact, var: &str, labels: &BTreeSet<Label>, weak: bool) {
    if weak {
        if !labels.is_empty() {
            fact.vars.entry(var.to_string()).or_default().extend(labels.iter().cloned());
        }
    } else if labels.is_empty() {
        fact.vars.remove(var);
    } else {
        fact.vars.insert(var.to_string(), labels.clone());
    }
}

/// Was this statement a compound assignment (`x += ...`)? Those are
/// arithmetic by definition for R11.
fn weak_is_arith(code: &[&Token], range: Range<usize>) -> bool {
    range.start + 1 < range.end
        && matches!(code[range.start + 1].kind, TokKind::Punct('+' | '-' | '*'))
        && code.get(range.start + 2).is_some_and(|t| matches!(t.kind, TokKind::Punct('=')))
}

/// Splits a statement into `(bound vars, type annotation range, rhs range,
/// weak update?)`. Returns empty bindings for non-assignment statements.
type Binding = (Vec<String>, Option<Range<usize>>, Option<Range<usize>>, bool);

fn split_binding(code: &[&Token], src: &str, range: Range<usize>) -> Binding {
    let first = code[range.start];
    if first.kind == TokKind::Ident && first.text(src) == "let" {
        // Pattern up to a depth-0 `:` or `=`.
        let mut depth = 0i64;
        let mut colon = None;
        let mut eq = None;
        for j in range.start + 1..range.end {
            match code[j].kind {
                TokKind::Punct('(' | '[' | '{') => depth += 1,
                TokKind::Punct(')' | ']' | '}') => depth -= 1,
                TokKind::Punct(':') if depth == 0 && colon.is_none() && eq.is_none() => {
                    // `::` paths are not the type separator.
                    let double =
                        matches!(code.get(j + 1).map(|t| t.kind), Some(TokKind::Punct(':')))
                            || matches!(
                                code.get(j.wrapping_sub(1)).map(|t| t.kind),
                                Some(TokKind::Punct(':'))
                            );
                    if !double {
                        colon = Some(j);
                    }
                }
                // Not `==`.
                TokKind::Punct('=')
                    if depth == 0
                        && eq.is_none()
                        && !matches!(
                            code.get(j + 1).map(|t| t.kind),
                            Some(TokKind::Punct('='))
                        ) =>
                {
                    eq = Some(j);
                    break;
                }
                _ => {}
            }
        }
        let Some(eq) = eq else { return (Vec::new(), None, None, false) };
        let pat_end = colon.unwrap_or(eq);
        let mut bound = Vec::new();
        for t in &code[range.start + 1..pat_end] {
            if t.kind == TokKind::Ident && is_binding_ident(t.text(src)) {
                bound.push(t.text(src).to_string());
            }
        }
        let ty = colon.map(|c| c + 1..eq);
        return (bound, ty, Some(eq + 1..range.end), false);
    }
    // `x = rhs;` / `x op= rhs;`.
    if first.kind == TokKind::Ident && range.start + 1 < range.end {
        let second = code[range.start + 1];
        let (eq_at, weak) = match second.kind {
            TokKind::Punct('=')
                if !matches!(
                    code.get(range.start + 2).map(|t| t.kind),
                    Some(TokKind::Punct('='))
                ) =>
            {
                (range.start + 1, false)
            }
            TokKind::Punct('+' | '-' | '*' | '/' | '%' | '|' | '&' | '^')
                if matches!(
                    code.get(range.start + 2).map(|t| t.kind),
                    Some(TokKind::Punct('='))
                ) =>
            {
                (range.start + 2, true)
            }
            _ => return (Vec::new(), None, None, false),
        };
        if is_binding_ident(first.text(src)) {
            return (vec![first.text(src).to_string()], None, Some(eq_at + 1..range.end), weak);
        }
    }
    (Vec::new(), None, None, false)
}

/// If the range is exactly one call — `path::to::g(args)` with optional
/// trailing `?`/`;` — returns the callee's final-segment name.
fn single_call_callee(code: &[&Token], src: &str, range: Range<usize>) -> Option<String> {
    let mut end = range.end;
    while end > range.start && matches!(code[end - 1].kind, TokKind::Punct(';' | '?')) {
        end -= 1;
    }
    // Walk the leading path: idents separated by `::`.
    let mut j = range.start;
    let mut last_ident = None;
    while j < end {
        match code[j].kind {
            TokKind::Ident => last_ident = Some(j),
            TokKind::Punct(':') => {}
            TokKind::Punct('(') => break,
            _ => return None,
        }
        j += 1;
    }
    let open = j;
    let callee = last_ident.filter(|l| l + 1 == open)?;
    // The call's parens must close exactly at the expression end.
    let mut depth = 0i64;
    for k in open..end {
        match code[k].kind {
            TokKind::Punct('(' | '[' | '{') => depth += 1,
            TokKind::Punct(')' | ']' | '}') => {
                depth -= 1;
                if depth == 0 {
                    if k + 1 != end {
                        return None;
                    }
                    return code.get(callee).map(|t| t.text(src).to_string());
                }
            }
            _ => {}
        }
    }
    None
}

/// Scans a range for sink calls (R10), conditional call findings, and R11
/// index sites. Also mutates nothing in `fact` — pure inspection.
fn scan_calls(
    code: &[&Token],
    src: &str,
    range: Range<usize>,
    fact: &Fact,
    check_index: bool,
    mut report: Option<&mut StmtReport>,
) {
    for i in range.clone() {
        let t = code[i];
        // R11: `<recv> [ <expr with arith var> ]`.
        if check_index
            && matches!(t.kind, TokKind::Punct('['))
            && i > range.start
            && matches!(code[i - 1].kind, TokKind::Ident | TokKind::Punct(')' | ']'))
        {
            let close = matching_square(code, i, range.end);
            let mut hit: Option<&str> = None;
            for t in &code[i + 1..close] {
                if t.kind == TokKind::Ident && fact.arith.contains(t.text(src)) {
                    hit = Some(t.text(src));
                    break;
                }
            }
            if let (Some(var), Some(report)) = (hit, report.as_deref_mut()) {
                report.sites.push((
                    i,
                    "unchecked-index",
                    format!(
                        "`{var}` carries unchecked offset arithmetic into slice indexing; bound \
                         it first (compare against `.len()`, use `.get(...)`, or assert) or \
                         justify with `// analyze: allow(unchecked-index) — <why>`"
                    ),
                ));
            }
        }
        if t.kind != TokKind::Ident {
            continue;
        }
        // Calls: `name (` that is not a definition (`fn name(`) or macro
        // (`name!(`).
        let is_call = matches!(code.get(i + 1).map(|t| t.kind), Some(TokKind::Punct('(')))
            && !(i > 0 && code[i - 1].kind == TokKind::Ident && code[i - 1].text(src) == "fn")
            && !matches!(code.get(i.wrapping_sub(1)).map(|t| t.kind), Some(TokKind::Punct('!')));
        if !is_call {
            continue;
        }
        let name = t.text(src);
        let close = matching_paren(code, i + 1, range.end);
        let sink = DET_SINKS.iter().find(|(s, _)| *s == name);
        // Taint scan covers the arguments plus the receiver chain
        // (`sample.encode()` persists `sample` itself).
        let mut labels = expr_labels(code, src, i + 2..close, fact);
        let mut k = i;
        while k >= 2 && matches!(code[k - 1].kind, TokKind::Punct('.' | ':')) {
            if code[k - 2].kind == TokKind::Ident {
                let recv = code[k - 2].text(src);
                if let Some(var_labels) = fact.vars.get(recv) {
                    labels.extend(var_labels.iter().cloned());
                }
            }
            k -= 2;
        }
        let Some(report) = report.as_deref_mut() else { continue };
        if let Some((sink_name, what)) = sink {
            let mut direct: BTreeSet<String> = BTreeSet::new();
            let mut calls: BTreeSet<String> = BTreeSet::new();
            for l in &labels {
                match l {
                    Label::Direct(s) => {
                        direct.insert(s.clone());
                    }
                    Label::FromCall(c) => {
                        calls.insert(c.clone());
                    }
                    Label::Param => report.param_to_sink = true,
                }
            }
            if !direct.is_empty() {
                let kinds: Vec<&str> = direct.iter().map(|s| s.as_str()).collect();
                report.sites.push((
                    i,
                    "determinism-taint",
                    format!(
                        "value influenced by {} reaches persisted sink `{sink_name}` ({what}); \
                         persisted bytes must be a pure function of the inputs — sort/seed the \
                         source or justify with \
                         `// analyze: allow(determinism-taint) — <why>`",
                        kinds.join(" + ")
                    ),
                ));
            }
            for callee in calls {
                report.conds.push((
                    i,
                    callee,
                    CondKind::ReturnsTaint { sink: sink_name.to_string(), what: what.to_string() },
                ));
            }
        } else {
            // Non-sink call with directly tainted arguments: fires iff the
            // callee's summary says a parameter reaches a sink.
            let direct: BTreeSet<String> = labels
                .iter()
                .filter_map(|l| match l {
                    Label::Direct(s) => Some(s.clone()),
                    _ => None,
                })
                .collect();
            if !direct.is_empty() {
                report.conds.push((i, name.to_string(), CondKind::ParamToSink { labels: direct }));
            }
        }
    }
}

/// Removes variables from the arith set when the statement bounds them:
/// a `<`/`<=`/`>`/`>=` comparison, an `assert!`-family macro, `%`, or a
/// `.min(`/`.clamp(`/`.get(` call mentioning them.
fn kill_guarded_arith(code: &[&Token], src: &str, range: Range<usize>, fact: &mut Fact) {
    if fact.arith.is_empty() {
        return;
    }
    let has_assert = (range.clone()).any(|j| {
        code[j].kind == TokKind::Ident
            && code[j].text(src).starts_with("assert")
            && matches!(code.get(j + 1).map(|t| t.kind), Some(TokKind::Punct('!')))
    });
    let has_bounding_call = (range.clone()).any(|j| {
        code[j].kind == TokKind::Ident
            && matches!(code[j].text(src), "min" | "clamp" | "get" | "get_mut")
            && j > 0
            && matches!(code[j - 1].kind, TokKind::Punct('.'))
    });
    let has_mod = (range.clone()).any(|j| matches!(code[j].kind, TokKind::Punct('%')));
    if has_assert || has_bounding_call || has_mod {
        for j in range.clone() {
            if code[j].kind == TokKind::Ident {
                fact.arith.remove(code[j].text(src));
            }
        }
        return;
    }
    // Comparison guards: a statement containing a relational operator is
    // a bound check (`while i + 1 < close`, `if at >= len`, ...), so it
    // absolves every identifier it mentions. A missed guard here would be
    // a false *positive* elsewhere, so erring toward the kill is the
    // conservative direction for a linter.
    let has_rel = (range.clone()).any(|j| match code[j].kind {
        TokKind::Punct('<') | TokKind::Punct('>') => {
            // Not `<<`, `>>`, `->`, `::<`, generics-ish `<T>`.
            !matches!(
                code.get(j.wrapping_sub(1)).map(|t| t.kind),
                Some(TokKind::Punct('<' | '>' | '-' | ':'))
            ) && !matches!(code.get(j + 1).map(|t| t.kind), Some(TokKind::Punct('<' | '>')))
        }
        _ => false,
    });
    if has_rel {
        for j in range {
            if code[j].kind == TokKind::Ident {
                fact.arith.remove(code[j].text(src));
            }
        }
    }
}

fn find_ident_depth0(code: &[&Token], src: &str, range: Range<usize>, word: &str) -> Option<usize> {
    let mut depth = 0i64;
    for j in range {
        match code[j].kind {
            TokKind::Punct('(' | '[' | '{') => depth += 1,
            TokKind::Punct(')' | ']' | '}') => depth -= 1,
            TokKind::Ident if depth == 0 && code[j].text(src) == word => return Some(j),
            _ => {}
        }
    }
    None
}

fn matching_paren(code: &[&Token], open: usize, end: usize) -> usize {
    let mut depth = 0i64;
    for (j, t) in code.iter().enumerate().take(end).skip(open) {
        match t.kind {
            TokKind::Punct('(') => depth += 1,
            TokKind::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
    }
    end
}

fn matching_square(code: &[&Token], open: usize, end: usize) -> usize {
    let mut depth = 0i64;
    for (j, t) in code.iter().enumerate().take(end).skip(open) {
        match t.kind {
            TokKind::Punct('[') => depth += 1,
            TokKind::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
    }
    end
}

// ---------------------------------------------------------------------------
// R12: swallowed-result
// ---------------------------------------------------------------------------

/// R12: a discarded `Result` on a persisted-artifact path. `let _ = <sink
/// call>;` or `<sink call>.ok()` silently drops an I/O failure on the one
/// path where a missing artifact corrupts a resume or a CI report.
fn rule_swallowed_result(
    rel_path: &str,
    code: &[&Token],
    src: &str,
    test_spans: &[Range<usize>],
    out: &mut Vec<Finding>,
) {
    for i in 0..code.len() {
        let t = code[i];
        if t.kind != TokKind::Ident || in_spans(t.start, test_spans) {
            continue;
        }
        let name = t.text(src);
        let Some((sink, what)) = DET_SINKS.iter().find(|(s, _)| *s == name) else { continue };
        if !matches!(code.get(i + 1).map(|t| t.kind), Some(TokKind::Punct('('))) {
            continue;
        }
        // Not a definition site.
        if i > 0 && code[i - 1].kind == TokKind::Ident && code[i - 1].text(src) == "fn" {
            continue;
        }
        let close = matching_paren(code, i + 1, code.len());
        let flag = |shape: &str, out: &mut Vec<Finding>| {
            out.push(Finding {
                file: rel_path.to_string(),
                line: t.line,
                col: t.col,
                rule: "swallowed-result",
                message: format!(
                    "{shape} discards the `Result` of persisted-artifact write `{sink}` ({what}); \
                     propagate the error or handle it explicitly (or justify with \
                     `// analyze: allow(swallowed-result) — <why>`)"
                ),
                symbol: None,
                severity_override: None,
            });
        };
        // `<call>.ok();` — swallowed.
        if matches!(code.get(close + 1).map(|t| t.kind), Some(TokKind::Punct('.')))
            && code.get(close + 2).is_some_and(|n| n.kind == TokKind::Ident && n.text(src) == "ok")
            && matches!(code.get(close + 3).map(|t| t.kind), Some(TokKind::Punct('(')))
        {
            flag(&format!("`{name}(...).ok()`"), out);
            continue;
        }
        // `let _ = <chain containing the sink call>;` with no `?`.
        if !matches!(code.get(close + 1).map(|t| t.kind), Some(TokKind::Punct(';' | '.'))) {
            continue;
        }
        let mut j = i;
        while j > 0 && !matches!(code[j - 1].kind, TokKind::Punct(';' | '{' | '}')) {
            j -= 1;
        }
        let let_discard =
            code.get(j).is_some_and(|t| t.kind == TokKind::Ident && t.text(src) == "let")
                && code.get(j + 1).is_some_and(|t| t.kind == TokKind::Ident && t.text(src) == "_")
                && matches!(code.get(j + 2).map(|t| t.kind), Some(TokKind::Punct('=')));
        let has_question = (j..close + 2)
            .any(|k| code.get(k).is_some_and(|t| matches!(t.kind, TokKind::Punct('?'))));
        if let_discard && !has_question {
            flag(&format!("`let _ = ... {name}(...)`"), out);
        }
    }
}

// ---------------------------------------------------------------------------
// Cross-file resolution
// ---------------------------------------------------------------------------

/// Summaries merged by function name (name collisions union — the same
/// conservative may-semantics the symbol graph uses).
pub(crate) fn merge_summaries<'a, I: IntoIterator<Item = &'a FnSummary>>(
    iter: I,
) -> BTreeMap<String, FnSummary> {
    let mut map: BTreeMap<String, FnSummary> = BTreeMap::new();
    for s in iter {
        let entry = map
            .entry(s.name.clone())
            .or_insert_with(|| FnSummary { name: s.name.clone(), ..FnSummary::default() });
        entry.returns.extend(s.returns.iter().cloned());
        entry.returns_calls.extend(s.returns_calls.iter().cloned());
        entry.param_to_sink |= s.param_to_sink;
    }
    map
}

/// Resolves conditional findings against the merged summary map. The
/// callee lookup follows one `returns_calls` hop, so taint flows exactly
/// one call deep as documented.
pub(crate) fn resolve_conditionals(
    conds: &[CondFinding],
    summaries: &BTreeMap<String, FnSummary>,
) -> Vec<Finding> {
    let mut out = Vec::new();
    for c in conds {
        match &c.kind {
            CondKind::ReturnsTaint { sink, what } => {
                let mut labels: BTreeSet<String> = BTreeSet::new();
                if let Some(s) = summaries.get(&c.callee) {
                    labels.extend(s.returns.iter().cloned());
                    for hop in &s.returns_calls {
                        if let Some(h) = summaries.get(hop) {
                            labels.extend(h.returns.iter().cloned());
                        }
                    }
                }
                if !labels.is_empty() {
                    let kinds: Vec<&str> = labels.iter().map(|s| s.as_str()).collect();
                    out.push(Finding {
                        file: c.file.clone(),
                        line: c.line,
                        col: c.col,
                        rule: "determinism-taint",
                        message: format!(
                            "value returned by `{}` carries {} and reaches persisted sink \
                             `{sink}` ({what}); make the callee deterministic or justify with \
                             `// analyze: allow(determinism-taint) — <why>`",
                            c.callee,
                            kinds.join(" + ")
                        ),
                        symbol: Some(c.symbol.clone()),
                        severity_override: c.severity_override,
                    });
                }
            }
            CondKind::ParamToSink { labels } => {
                let reaches = summaries.get(&c.callee).is_some_and(|s| s.param_to_sink);
                if reaches {
                    let kinds: Vec<&str> = labels.iter().map(|s| s.as_str()).collect();
                    out.push(Finding {
                        file: c.file.clone(),
                        line: c.line,
                        col: c.col,
                        rule: "determinism-taint",
                        message: format!(
                            "argument influenced by {} is passed to `{}`, which writes its \
                             parameter to a persisted sink; make the input deterministic or \
                             justify with `// analyze: allow(determinism-taint) — <why>`",
                            kinds.join(" + "),
                            c.callee
                        ),
                        symbol: Some(c.symbol.clone()),
                        severity_override: c.severity_override,
                    });
                }
            }
        }
    }
    out
}
