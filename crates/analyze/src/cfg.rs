//! Intraprocedural control-flow graphs over the token stream — the
//! substrate for the dataflow rules (R10–R12).
//!
//! [`function_cfgs`] finds every `fn` body in a lexed file (via
//! [`crate::parser::parse_items`]) and lowers it to basic blocks. The
//! lowering recognizes the statement-level control constructs that matter
//! for a may-analysis: `if`/`else if`/`else`, `match` arms, `loop`,
//! `while`, `for`, `return`, `break`, `continue`, and the `?` operator
//! (an early edge to the exit block). Everything else — closures, struct
//! literals, nested braces in expression position — is scanned through as
//! straight-line statement content, which is sound for the forward
//! may-analyses built on top: they see every token of every statement, in
//! an order that over-approximates the real control flow.
//!
//! Construction guarantees, relied on by the property tests:
//!
//! * block 0 is the entry; the last block is the dedicated exit block;
//! * every block is reachable from the entry (unreachable blocks — code
//!   after a `return`, the continuation of a break-less `loop` — are
//!   pruned and their edges dropped);
//! * every edge carries the byte position of the token that induced it,
//!   and that position lies inside the function body's span.

use std::ops::Range;

use crate::lexer::{TokKind, Token};
use crate::parser::{parse_items, ItemKind};

/// Index of a basic block within its [`Cfg`].
pub type BlockId = usize;

/// One basic block: the statement spans it covers plus its successors.
#[derive(Debug, Clone, Default)]
pub struct Block {
    /// Token-index ranges (into the CFG's code-token slice) of the
    /// statements executed in this block, in order. Control headers keep
    /// their condition/scrutinee tokens as a statement of the branching
    /// block, so taint in a condition is still observed.
    pub stmts: Vec<Range<usize>>,
    /// Successor edges as `(target block, byte position of the inducing
    /// token)` — the `if`/`match`/`?`/... token, or the end of the block
    /// for fall-through.
    pub succs: Vec<(BlockId, usize)>,
}

/// The control-flow graph of one function body.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Function name (`<anon>` for unnamed items, which do not occur for
    /// `fn`).
    pub name: String,
    /// 1-based line of the function's name token.
    pub line: u32,
    /// 1-based column of the function's name token.
    pub col: u32,
    /// Byte span of the function body (from its `{` to just past its `}`).
    pub span: Range<usize>,
    /// Basic blocks; index 0 is the entry, `exit` is the dedicated exit.
    pub blocks: Vec<Block>,
    /// The exit block (every `return`/`?`/fall-through edge targets it).
    pub exit: BlockId,
    /// Token-index range of the function signature (between `fn name` and
    /// the body `{`), for parameter scanning.
    pub sig: Range<usize>,
    /// Byte offset where the function header starts (the `pub`/`fn`
    /// token), used to match `#[cfg(test)]` spans.
    pub header_start: usize,
}

impl Cfg {
    /// Total number of edges.
    pub fn edge_count(&self) -> usize {
        self.blocks.iter().map(|b| b.succs.len()).sum()
    }

    /// Renders the CFG as stable text for the golden tests:
    /// one line per block, `b<i>: stmts=<n> succ=[b<j>@<tok>, ...]`.
    pub fn render(&self, code: &[&Token], src: &str) -> String {
        let mut out = format!("fn {} exit=b{}\n", self.name, self.exit);
        for (i, b) in self.blocks.iter().enumerate() {
            let succs: Vec<String> = b
                .succs
                .iter()
                .map(|(t, pos)| format!("b{}@{}", t, edge_label(code, src, *pos)))
                .collect();
            out.push_str(&format!("b{}: stmts={} succ=[{}]\n", i, b.stmts.len(), succs.join(", ")));
        }
        out
    }
}

/// The token text at byte position `pos` (for golden-test edge labels).
fn edge_label<'a>(code: &[&Token], src: &'a str, pos: usize) -> &'a str {
    code.iter()
        .find(|t| t.start == pos)
        .map(|t| {
            let text = t.text(src);
            if text.len() > 8 {
                &text[..8]
            } else {
                text
            }
        })
        .unwrap_or("end")
}

/// Builds a CFG for every `fn` body in a file. `tokens` must come from
/// [`crate::lexer::lex`] over `src`; `code` is the comment-free view the
/// caller already holds (same filtering as the rule engine).
pub fn function_cfgs(code: &[&Token], src: &str) -> Vec<Cfg> {
    let owned: Vec<Token> = code.iter().map(|t| (*t).clone()).collect();
    let items = parse_items(&owned, src);
    let mut cfgs = Vec::new();
    for item in &items {
        if item.kind != ItemKind::Fn {
            continue;
        }
        // Find the token index of the header start, then the signature end:
        // the first `{` or `;` at paren/bracket depth 0 after the name.
        let Some(header_idx) = code.iter().position(|t| t.start == item.start) else { continue };
        let mut j = header_idx;
        // Skip to the `fn` keyword, then past the name and generics to the
        // body `{` (or `;` for trait-method declarations, which have no
        // body and therefore no CFG).
        while j < code.len() && !(code[j].kind == TokKind::Ident && code[j].text(src) == "fn") {
            j += 1;
        }
        let sig_start = j;
        let mut depth = 0i64;
        let mut angle = 0i64;
        let mut body_open = None;
        while j < code.len() {
            match code[j].kind {
                TokKind::Punct('(') | TokKind::Punct('[') => depth += 1,
                TokKind::Punct(')') | TokKind::Punct(']') => depth -= 1,
                TokKind::Punct('<') if depth == 0 => angle += 1,
                TokKind::Punct('>')
                    if depth == 0
                        && angle > 0
                        && !matches!(
                            j.checked_sub(1).map(|p| code[p].kind),
                            Some(TokKind::Punct('-'))
                        ) =>
                {
                    angle -= 1
                }
                TokKind::Punct('{') if depth == 0 => {
                    body_open = Some(j);
                    break;
                }
                TokKind::Punct(';') if depth == 0 => break,
                _ => {}
            }
            j += 1;
        }
        let Some(open) = body_open else { continue };
        let close = matching_brace(code, open);
        let name = item.name.clone().unwrap_or_else(|| "<anon>".to_string());
        let mut b = Builder {
            code,
            src,
            blocks: vec![Block::default()],
            loops: Vec::new(),
            exit: usize::MAX,
        };
        let last = b.lower(open + 1, close, 0);
        // Dedicated exit block: fall-through from the last live block.
        let exit = b.blocks.len();
        b.blocks.push(Block::default());
        let end_pos = code.get(close).map_or(src.len(), |t| t.start);
        // analyze: allow(unchecked-index) — lower() returns the index of a block it pushed, so it is always in bounds
        b.blocks[last].succs.push((exit, end_pos));
        // Retarget the provisional exit marker.
        for blk in &mut b.blocks {
            for s in &mut blk.succs {
                if s.0 == usize::MAX {
                    s.0 = exit;
                }
            }
        }
        let span_end = code.get(close).map_or(src.len(), |t| t.end);
        let mut cfg = Cfg {
            name,
            line: item.line,
            col: item.col,
            span: code[open].start..span_end,
            blocks: b.blocks,
            exit,
            sig: sig_start..open,
            header_start: item.start,
        };
        prune_unreachable(&mut cfg);
        cfgs.push(cfg);
    }
    cfgs
}

/// Drops blocks unreachable from the entry and remaps edges. The exit
/// block is always kept (it is reachable: the final fall-through edge
/// targets it).
fn prune_unreachable(cfg: &mut Cfg) {
    let n = cfg.blocks.len();
    let mut seen = vec![false; n];
    let mut stack = vec![0usize];
    seen[0] = true;
    while let Some(i) = stack.pop() {
        for &(t, _) in &cfg.blocks[i].succs {
            if !seen[t] {
                seen[t] = true;
                stack.push(t);
            }
        }
    }
    seen[cfg.exit] = true;
    let mut remap = vec![usize::MAX; n];
    let mut next = 0usize;
    for (i, &s) in seen.iter().enumerate() {
        if s {
            remap[i] = next;
            next += 1;
        }
    }
    let old = std::mem::take(&mut cfg.blocks);
    for (i, mut b) in old.into_iter().enumerate() {
        if !seen[i] {
            continue;
        }
        b.succs.retain(|(t, _)| seen[*t]);
        for s in &mut b.succs {
            s.0 = remap[s.0];
        }
        cfg.blocks.push(b);
    }
    cfg.exit = remap[cfg.exit];
}

/// Index of the `}` matching `code[open]` (`{`), or `code.len()`.
fn matching_brace(code: &[&Token], open: usize) -> usize {
    let mut depth = 0i64;
    for (j, t) in code.iter().enumerate().skip(open) {
        match t.kind {
            TokKind::Punct('{') => depth += 1,
            TokKind::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
    }
    code.len()
}

struct Builder<'a> {
    code: &'a [&'a Token],
    src: &'a str,
    blocks: Vec<Block>,
    /// `(continue target, break target)` per enclosing loop.
    loops: Vec<(BlockId, BlockId)>,
    /// Placeholder id for the exit block (patched after lowering).
    exit: BlockId,
}

impl<'a> Builder<'a> {
    fn new_block(&mut self) -> BlockId {
        self.blocks.push(Block::default());
        self.blocks.len() - 1
    }

    fn push_stmt(&mut self, block: BlockId, span: Range<usize>) {
        if span.start < span.end {
            self.blocks[block].stmts.push(span);
        }
    }

    fn edge(&mut self, from: BlockId, to: BlockId, at: usize) {
        let pos = self.code.get(at).map_or_else(|| self.src.len(), |t| t.start);
        self.blocks[from].succs.push((to, pos));
    }

    fn ident_at(&self, i: usize) -> Option<&'a str> {
        self.code.get(i).filter(|t| t.kind == TokKind::Ident).map(|t| t.text(self.src))
    }

    fn punct_at(&self, i: usize, ch: char) -> bool {
        self.code.get(i).is_some_and(|t| matches!(t.kind, TokKind::Punct(c) if c == ch))
    }

    /// Lowers statements in `code[i..end]` starting in block `cur`;
    /// returns the block where control continues afterwards.
    fn lower(&mut self, mut i: usize, end: usize, mut cur: BlockId) -> BlockId {
        let mut stmt_start = i;
        let mut depth = 0i64;
        while i < end {
            let t = self.code[i];
            if depth == 0 {
                if let Some(word) = self.ident_at(i) {
                    match word {
                        "if" | "match" | "loop" | "while" | "for" if self.is_control(i, word) => {
                            self.push_stmt(cur, stmt_start..i);
                            let (next_i, join) = self.lower_control(i, end, cur, word);
                            i = next_i;
                            stmt_start = i;
                            cur = join;
                            continue;
                        }
                        "return" => {
                            // Consume to the `;` (or block end) and route to exit.
                            let stop = self.stmt_end(i, end);
                            self.push_stmt(cur, stmt_start..stop);
                            self.edge(cur, self.exit, i);
                            cur = self.new_block();
                            i = stop;
                            stmt_start = i;
                            continue;
                        }
                        "break" | "continue" => {
                            let stop = self.stmt_end(i, end);
                            self.push_stmt(cur, stmt_start..stop);
                            if let Some(&(cont, brk)) = self.loops.last() {
                                let target = if word == "break" { brk } else { cont };
                                self.edge(cur, target, i);
                            } else {
                                // `break` outside a loop (malformed or a
                                // label we do not model): treat as exit.
                                self.edge(cur, self.exit, i);
                            }
                            cur = self.new_block();
                            i = stop;
                            stmt_start = i;
                            continue;
                        }
                        _ => {}
                    }
                }
            }
            match t.kind {
                TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('{') => depth += 1,
                TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('}') => depth -= 1,
                // `?` at any depth is a may-exit edge; the statement keeps
                // flowing (both outcomes are possible).
                TokKind::Punct('?') => self.edge(cur, self.exit, i),
                TokKind::Punct(';') if depth == 0 => {
                    self.push_stmt(cur, stmt_start..i + 1);
                    stmt_start = i + 1;
                }
                _ => {}
            }
            i += 1;
        }
        self.push_stmt(cur, stmt_start..end);
        cur
    }

    /// Is the keyword at `i` a control construct (vs. e.g. `match` used as
    /// a variable name, which the lexer cannot produce, or an `if` inside
    /// a pattern guard that a caller already consumed)? Token-level
    /// heuristic: control keywords are always control when they appear at
    /// depth 0 of a statement scan.
    fn is_control(&self, i: usize, word: &str) -> bool {
        if word == "if" {
            // `else if` is consumed by lower_if via its own path; a
            // leading `if` here is genuine.
            return true;
        }
        if word == "while" || word == "for" || word == "loop" || word == "match" {
            // `for` also appears in `impl Trait for Type` — impossible
            // inside a fn body statement scan. `while`/`loop`/`match` have
            // no non-control use at statement depth.
            return !matches!(
                i.checked_sub(1).map(|p| self.code[p].kind),
                Some(TokKind::Punct('&'))
            );
        }
        true
    }

    /// First index past the statement starting at `i` (its depth-0 `;`,
    /// inclusive), capped at `end`.
    fn stmt_end(&self, mut i: usize, end: usize) -> usize {
        let mut depth = 0i64;
        while i < end {
            match self.code[i].kind {
                TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('{') => depth += 1,
                TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('}') => depth -= 1,
                TokKind::Punct(';') if depth <= 0 => return i + 1,
                _ => {}
            }
            i += 1;
        }
        end
    }

    /// Lowers the control construct whose keyword sits at `kw`; returns
    /// `(index past the construct, join block)`.
    fn lower_control(
        &mut self,
        kw: usize,
        end: usize,
        cur: BlockId,
        word: &str,
    ) -> (usize, BlockId) {
        match word {
            "if" => self.lower_if(kw, end, cur),
            "match" => self.lower_match(kw, end, cur),
            "loop" => self.lower_loop(kw, end, cur),
            "while" | "for" => self.lower_while_for(kw, end, cur),
            _ => (kw + 1, cur),
        }
    }

    /// `if cond { then } [else if ... | else { else }]`.
    fn lower_if(&mut self, kw: usize, end: usize, cur: BlockId) -> (usize, BlockId) {
        let Some(open) = self.body_open(kw + 1, end) else { return (kw + 1, cur) };
        // Condition tokens live in the branching block.
        self.push_stmt(cur, kw..open);
        let close = matching_brace(self.code, open).min(end);
        let then_block = self.new_block();
        self.edge(cur, then_block, kw);
        let then_end = self.lower(open + 1, close, then_block);
        let join = self.new_block();
        let mut i = (close + 1).min(end);
        if self.ident_at(i) == Some("else") {
            if self.ident_at(i + 1) == Some("if") {
                let else_block = self.new_block();
                self.edge(cur, else_block, i);
                let (next_i, nested_join) = self.lower_if(i + 1, end, else_block);
                self.edge(nested_join, join, next_i.saturating_sub(1).min(self.code.len() - 1));
                i = next_i;
            } else if let Some(eopen) = self.body_open(i + 1, end) {
                let close_e = matching_brace(self.code, eopen).min(end);
                let else_block = self.new_block();
                self.edge(cur, else_block, i);
                let else_end = self.lower(eopen + 1, close_e, else_block);
                self.edge(else_end, join, close_e.min(self.code.len().saturating_sub(1)));
                i = (close_e + 1).min(end);
            } else {
                self.edge(cur, join, kw);
                i += 1;
            }
        } else {
            // No else: condition may fall through.
            self.edge(cur, join, kw);
        }
        self.edge(then_end, join, close.min(self.code.len().saturating_sub(1)));
        (i, join)
    }

    /// `match scrutinee { pat [if guard] => body, ... }`.
    fn lower_match(&mut self, kw: usize, end: usize, cur: BlockId) -> (usize, BlockId) {
        let Some(open) = self.body_open(kw + 1, end) else { return (kw + 1, cur) };
        self.push_stmt(cur, kw..open);
        let close = matching_brace(self.code, open).min(end);
        let join = self.new_block();
        let mut i = open + 1;
        while i < close {
            // Arm: tokens up to `=>` at depth 0 are the pattern/guard.
            let arrow = self.find_arrow(i, close);
            let Some(arrow) = arrow else { break };
            let arm = self.new_block();
            self.edge(cur, arm, i);
            // Pattern + guard tokens belong to the arm block (a guard can
            // read tainted state).
            self.push_stmt(arm, i..arrow);
            let body_start = arrow + 2; // past `=` `>`
            let body_end = self.arm_end(body_start, close);
            let arm_out = self.lower(body_start, body_end, arm);
            self.edge(arm_out, join, body_end.min(self.code.len().saturating_sub(1)));
            i = body_end;
            if self.punct_at(i, ',') {
                i += 1;
            }
        }
        // A match with no parsed arms still flows onward.
        if self.blocks[join].stmts.is_empty()
            && !self.blocks.iter().any(|b| b.succs.iter().any(|(t, _)| *t == join))
        {
            self.edge(cur, join, kw);
        }
        ((close + 1).min(end), join)
    }

    /// `loop { body }` — body loops back to its own head; `break` exits.
    fn lower_loop(&mut self, kw: usize, end: usize, cur: BlockId) -> (usize, BlockId) {
        let Some(open) = self.body_open(kw + 1, end) else { return (kw + 1, cur) };
        let close = matching_brace(self.code, open).min(end);
        let head = self.new_block();
        let after = self.new_block();
        self.edge(cur, head, kw);
        self.loops.push((head, after));
        let body_end = self.lower(open + 1, close, head);
        self.loops.pop();
        self.edge(body_end, head, close.min(self.code.len().saturating_sub(1)));
        ((close + 1).min(end), after)
    }

    /// `while cond { body }` / `for pat in iter { body }` — the header
    /// holds the condition/iterator tokens and branches to body or after.
    fn lower_while_for(&mut self, kw: usize, end: usize, cur: BlockId) -> (usize, BlockId) {
        let Some(open) = self.body_open(kw + 1, end) else { return (kw + 1, cur) };
        let close = matching_brace(self.code, open).min(end);
        let head = self.new_block();
        let after = self.new_block();
        self.edge(cur, head, kw);
        // Header tokens (incl. `for pat in iter` / `while cond`).
        self.push_stmt(head, kw..open);
        let body = self.new_block();
        self.edge(head, body, kw);
        self.edge(head, after, kw);
        self.loops.push((head, after));
        let body_end = self.lower(open + 1, close, body);
        self.loops.pop();
        self.edge(body_end, head, close.min(self.code.len().saturating_sub(1)));
        ((close + 1).min(end), after)
    }

    /// Index of the body `{` for a construct whose header starts at `from`:
    /// the first `{` at paren/bracket depth 0 that is not a struct-literal
    /// brace inside parentheses. Token-level approximation: depth-0 `{`.
    fn body_open(&self, from: usize, end: usize) -> Option<usize> {
        let mut depth = 0i64;
        let mut j = from;
        while j < end {
            match self.code[j].kind {
                TokKind::Punct('(') | TokKind::Punct('[') => depth += 1,
                TokKind::Punct(')') | TokKind::Punct(']') => depth -= 1,
                TokKind::Punct('{') if depth == 0 => return Some(j),
                TokKind::Punct(';') if depth == 0 => return None,
                _ => {}
            }
            j += 1;
        }
        None
    }

    /// Index of the `=` of the next `=>` at brace/paren depth 0 in
    /// `code[i..close]`.
    fn find_arrow(&self, mut i: usize, close: usize) -> Option<usize> {
        let mut depth = 0i64;
        while i + 1 < close {
            match self.code[i].kind {
                TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('{') => depth += 1,
                TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('}') => depth -= 1,
                TokKind::Punct('=')
                    if depth == 0
                        && matches!(self.code[i + 1].kind, TokKind::Punct('>'))
                        && self.code[i].end == self.code[i + 1].start =>
                {
                    return Some(i)
                }
                _ => {}
            }
            i += 1;
        }
        None
    }

    /// End of a match arm body starting at `i`: a block arm ends after its
    /// matching `}`; an expression arm ends at the next depth-0 `,` (or
    /// the match close).
    fn arm_end(&self, i: usize, close: usize) -> usize {
        if self.punct_at(i, '{') {
            return (matching_brace(self.code, i) + 1).min(close);
        }
        let mut depth = 0i64;
        let mut j = i;
        while j < close {
            match self.code[j].kind {
                TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('{') => depth += 1,
                TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('}') => depth -= 1,
                TokKind::Punct(',') if depth == 0 => return j,
                _ => {}
            }
            j += 1;
        }
        close
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn cfgs(src: &str) -> Vec<Cfg> {
        let tokens = lex(src);
        let code: Vec<&Token> = tokens
            .iter()
            .filter(|t| {
                !matches!(t.kind, TokKind::LineComment { .. } | TokKind::BlockComment { .. })
            })
            .collect();
        function_cfgs(&code, src)
    }

    fn reachable_from_entry(cfg: &Cfg) -> usize {
        let mut seen = vec![false; cfg.blocks.len()];
        let mut stack = vec![0usize];
        seen[0] = true;
        while let Some(i) = stack.pop() {
            for &(t, _) in &cfg.blocks[i].succs {
                if !seen[t] {
                    seen[t] = true;
                    stack.push(t);
                }
            }
        }
        seen.iter().filter(|s| **s).count()
    }

    #[test]
    fn straight_line_fn_is_two_blocks() {
        let c = cfgs("fn f() { let a = 1; let b = a; }\n");
        assert_eq!(c.len(), 1);
        let cfg = &c[0];
        assert_eq!(cfg.name, "f");
        assert_eq!(cfg.blocks.len(), 2, "entry + exit: {cfg:?}");
        assert_eq!(cfg.blocks[0].stmts.len(), 2);
        assert_eq!(cfg.blocks[0].succs, vec![(cfg.exit, cfg.span.end - 1)]);
    }

    #[test]
    fn if_else_forks_and_joins() {
        let c = cfgs("fn f(c: bool) -> u8 { if c { 1 } else { 2 } }\n");
        let cfg = &c[0];
        // entry, then, else, join, exit.
        assert_eq!(cfg.blocks.len(), 5, "{}", cfg.render(&[], ""));
        assert_eq!(cfg.blocks[0].succs.len(), 2);
        assert_eq!(reachable_from_entry(cfg), cfg.blocks.len());
    }

    #[test]
    fn if_without_else_has_fallthrough_edge() {
        let c = cfgs("fn f(c: bool) { let mut x = 0; if c { x = 1; } let _ = x; }\n");
        let cfg = &c[0];
        // entry -> {then, join}; then -> join; join -> exit.
        assert_eq!(cfg.blocks[0].succs.len(), 2);
        assert_eq!(reachable_from_entry(cfg), cfg.blocks.len());
    }

    #[test]
    fn match_gets_one_block_per_arm() {
        let src = "fn f(x: u8) -> u8 { match x { 0 => 1, 1 => { 2 } _ => 3, } }\n";
        let cfg = &cfgs(src)[0];
        // entry + 3 arms + join + exit.
        assert_eq!(cfg.blocks.len(), 6);
        assert_eq!(cfg.blocks[0].succs.len(), 3);
        assert_eq!(reachable_from_entry(cfg), cfg.blocks.len());
    }

    #[test]
    fn loop_with_break_reaches_after_block() {
        let src = "fn f() { let mut i = 0; loop { i += 1; if i > 3 { break; } } let _ = i; }\n";
        let cfg = &cfgs(src)[0];
        assert_eq!(reachable_from_entry(cfg), cfg.blocks.len());
        // A back edge exists: some block's successor has a lower id.
        assert!(
            cfg.blocks.iter().enumerate().any(|(i, b)| b.succs.iter().any(|(t, _)| *t < i)),
            "no back edge in {cfg:?}"
        );
    }

    #[test]
    fn while_and_for_loop_back() {
        for src in [
            "fn f(n: usize) { let mut i = 0; while i < n { i += 1; } }\n",
            "fn f(v: &[u8]) { for x in v { let _ = x; } }\n",
        ] {
            let cfg = &cfgs(src)[0];
            assert!(
                cfg.blocks.iter().enumerate().any(|(i, b)| b.succs.iter().any(|(t, _)| *t <= i)),
                "no back edge for {src}: {cfg:?}"
            );
            assert_eq!(reachable_from_entry(cfg), cfg.blocks.len(), "{src}");
        }
    }

    #[test]
    fn code_after_return_is_pruned() {
        let src = "fn f(c: bool) -> u8 { if c { return 1; } 2 }\n";
        let cfg = &cfgs(src)[0];
        assert_eq!(reachable_from_entry(cfg), cfg.blocks.len());
        // The then-branch routes to exit, not to the join.
        let then_like = cfg
            .blocks
            .iter()
            .any(|b| b.succs.iter().any(|(t, _)| *t == cfg.exit) && !b.stmts.is_empty());
        assert!(then_like, "{cfg:?}");
    }

    #[test]
    fn question_mark_adds_exit_edge_and_continues() {
        let src = "fn f(x: Option<u8>) -> Option<u8> { let v = x?; Some(v + 1) }\n";
        let cfg = &cfgs(src)[0];
        // Entry has two paths to exit: the `?` edge and the fall-through.
        let exit_edges: usize =
            cfg.blocks.iter().map(|b| b.succs.iter().filter(|(t, _)| *t == cfg.exit).count()).sum();
        assert!(exit_edges >= 2, "{cfg:?}");
    }

    #[test]
    fn edge_positions_are_inside_the_function_span() {
        let src = "fn outer() { if a { b(); } }\nfn inner(n: usize) { for i in 0..n { x(i); } }\n";
        for cfg in cfgs(src) {
            for b in &cfg.blocks {
                for &(_, pos) in &b.succs {
                    assert!(
                        pos >= cfg.span.start && pos <= cfg.span.end,
                        "edge pos {pos} outside {:?} in {}",
                        cfg.span,
                        cfg.name
                    );
                }
            }
        }
    }

    #[test]
    fn trait_method_declarations_have_no_cfg() {
        let src = "trait T { fn decl(&self); fn with_default(&self) { let _ = 1; } }\n";
        let c = cfgs(src);
        assert_eq!(c.len(), 1, "only the defaulted method has a body: {c:?}");
        assert_eq!(c[0].name, "with_default");
    }

    #[test]
    fn nested_fns_each_get_a_cfg() {
        let src = "fn a() { fn b() { let _ = 2; } b(); }\n";
        let names: Vec<String> = cfgs(src).into_iter().map(|c| c.name).collect();
        assert_eq!(names, ["a", "b"]);
    }

    #[test]
    fn closures_are_opaque_statements() {
        let src = "fn f() { let g = |x: u8| { x + 1 }; g(2); }\n";
        let cfg = &cfgs(src)[0];
        assert_eq!(cfg.blocks.len(), 2, "closure body stays in-line: {cfg:?}");
    }
}
