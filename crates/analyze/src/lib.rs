#![forbid(unsafe_code)]
//! `hoga-analyze`: a self-contained workspace linter and invariant auditor.
//!
//! A hand-rolled Rust [`lexer`] feeds a [`rules`] engine that walks every
//! `.rs` file in the workspace (see [`workspace`]) and emits
//! `file:line:col` diagnostics with stable rule ids. Because matching
//! happens on tokens, occurrences inside string literals and comments are
//! never flagged.
//!
//! Three layers run over the workspace: token-level rules; graph-aware
//! rules on a [`symbols::SymbolGraph`] assembled from the item-level
//! [`parser`] (defs, refs and liveness edges across all crates); and
//! flow-aware rules on per-function [`cfg`] lowerings driven to fixpoint
//! by the [`dataflow`] worklist engine ([`det`]). Per-file results are
//! cacheable as content-hash-keyed artifacts ([`cache`]), and reports
//! can be gated against an archived [`baseline`].
//!
//! Rule catalogue (details in `docs/STATIC_ANALYSIS.md`):
//!
//! * `panic-free-paths` — no `panic!`/`.unwrap()`/`.expect(`/`unreachable!`
//!   in hardened modules.
//! * `lossy-cast` — no bare `as u32`/`as usize`/`as i64` in decode paths.
//! * `unsafe-forbidden` — every crate root carries `#![forbid(unsafe_code)]`
//!   (a root owning an audited unsafe module instead carries the `cfg_attr`
//!   pair: feature-off `forbid`, feature-on `deny`), and the `unsafe`
//!   keyword itself may appear **only** in the audited allowlist
//!   ([`workspace::UNSAFE_ALLOWLIST`] — currently the AVX2 kernel backend).
//! * `todo-tracker` — `TODO`/`FIXME`/`HACK` must cite an issue: `TODO(#123)`.
//! * `test-panic-ok` — not a diagnostic: `panic-free-paths` and
//!   `lossy-cast` auto-relax inside `#[cfg(test)]` items and `tests/`
//!   directories.
//! * `dead-public-api` — a `pub` item the workspace symbol graph proves is
//!   never used outside its defining crate.
//! * `float-equality` — `==`/`!=` against float literals on numeric paths;
//!   use `hoga_tensor::approx_eq`.
//! * `lock-discipline` — `.lock().unwrap()` is a poisoning hazard;
//!   recover with `PoisonError::into_inner` or propagate a typed error.
//! * `thread-hygiene` — every `spawn` handle is joined; no bare
//!   `std::thread::spawn` in `eval`.
//! * `determinism-taint` — values influenced by clocks, env reads, or
//!   unordered-container iteration must not reach persisted sinks
//!   (checkpoints, manifests, the job event stream); error severity in
//!   hardened modules.
//! * `unchecked-index` — arithmetic-derived indices in decode paths must
//!   be bounds-checked (or `.get`/modulo/`min`/`clamp` bounded) before
//!   `[...]`.
//! * `swallowed-result` — a persisted-sink call's `Result` must be
//!   propagated or handled, never `let _ =` / `.ok()`-discarded.
//! * `panic-reachability` — a `pub` API in a hardened module must not
//!   *transitively* reach a panic site elsewhere in the workspace; each
//!   finding renders a shortest call-graph witness path ([`callgraph`]).
//! * `lock-order` — the flow-aware must-lockset pass checks every
//!   acquisition against the declared order (`rules::LOCK_ORDER`),
//!   flags re-acquisition of a held lock, and reports any cycle in the
//!   discovered workspace lock-order graph.
//! * `blocking-under-lock` — no thread join, channel receive, sleep,
//!   file I/O, or bounded SAT check (directly or through a call chain)
//!   while a lock guard is must-held.
//!
//! Findings are suppressed inline with a justified directive:
//!
//! ```text
//! // analyze: allow(panic-free-paths) — documented panicking wrapper
//! ```
//!
//! The justification is mandatory and suppressions that match nothing are
//! themselves errors (`unused-suppression`), so stale allows cannot
//! accumulate.

pub mod baseline;
pub mod cache;
pub mod callgraph;
pub mod cfg;
pub mod dataflow;
pub mod det;
pub mod lexer;
pub mod parser;
pub mod rules;
pub mod symbols;
pub mod workspace;

pub use callgraph::CallGraph;
pub use rules::{analyze_source, FileProfile, Finding};
pub use symbols::SymbolGraph;
pub use workspace::{
    analyze_workspace, analyze_workspace_graph, analyze_workspace_with, AnalysisStats,
    AnalyzeOptions,
};

/// Renders findings one per line as `file:line:col: [rule] message`.
pub fn render_text(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&f.to_string());
        out.push('\n');
    }
    out
}

/// Renders findings as a JSON array of objects with `file`, `line`,
/// `col`, `rule`, `severity`, `symbol` (string or `null`), and `message`
/// fields — the schema CI archives as an artifact.
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let symbol = match &f.symbol {
            Some(s) => json_string(s),
            None => "null".to_string(),
        };
        out.push_str(&format!(
            "\n  {{\"file\": {}, \"line\": {}, \"col\": {}, \"rule\": {}, \"severity\": {}, \
             \"symbol\": {}, \"message\": {}}}",
            json_string(&f.file),
            f.line,
            f.col,
            json_string(f.rule),
            json_string(f.severity()),
            symbol,
            json_string(&f.message)
        ));
    }
    if !findings.is_empty() {
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

/// Renders findings as a SARIF 2.1.0 log (one run, the full rule
/// catalogue in the tool driver, one result per finding) so reports
/// surface in GitHub code scanning.
pub fn render_sarif(findings: &[Finding]) -> String {
    let mut out = String::from("{\n");
    out.push_str(
        "  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/\
         Schemata/sarif-schema-2.1.0.json\",\n",
    );
    out.push_str("  \"version\": \"2.1.0\",\n  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"hoga-analyze\",\n");
    out.push_str("          \"rules\": [\n");
    for (i, id) in rules::RULE_IDS.iter().enumerate() {
        let level = match rules::severity_of(id) {
            "warning" => "warning",
            _ => "error",
        };
        out.push_str(&format!(
            "            {{\"id\": {}, \"defaultConfiguration\": {{\"level\": \"{level}\"}}}}{}\n",
            json_string(id),
            if i + 1 == rules::RULE_IDS.len() { "" } else { "," }
        ));
    }
    out.push_str("          ]\n        }\n      },\n");
    out.push_str("      \"results\": [\n");
    for (i, f) in findings.iter().enumerate() {
        out.push_str(&format!(
            "        {{\"ruleId\": {}, \"level\": {}, \"message\": {{\"text\": {}}}, \
             \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": {}}}, \
             \"region\": {{\"startLine\": {}, \"startColumn\": {}}}}}}}]}}{}\n",
            json_string(f.rule),
            json_string(f.severity()),
            json_string(&f.message),
            json_string(&f.file),
            f.line,
            f.col,
            if i + 1 == findings.len() { "" } else { "," }
        ));
    }
    out.push_str("      ]\n    }\n  ]\n}\n");
    out
}

pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if u32::from(c) < 0x20 => out.push_str(&format!("\\u{:04x}", u32::from(c))),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// CI gate: the workspace this crate lives in must be clean. Run with
/// `cargo test -p hoga-analyze`; the same check is exposed as a binary
/// for humans (`cargo run -p hoga-analyze`).
#[cfg(test)]
mod gate {
    use std::path::Path;

    #[test]
    fn workspace_is_clean() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
        let findings = crate::analyze_workspace(&root).expect("workspace walk failed");
        assert!(
            findings.is_empty(),
            "hoga-analyze found {} violation(s):\n{}",
            findings.len(),
            crate::render_text(&findings)
        );
    }
}

#[cfg(test)]
mod render_tests {
    use super::*;

    fn sample() -> Vec<Finding> {
        vec![Finding {
            file: "crates/x/src/lib.rs".to_string(),
            line: 3,
            col: 9,
            rule: "panic-free-paths",
            message: "say \"no\"\tto panics".to_string(),
            symbol: None,
            severity_override: None,
        }]
    }

    #[test]
    fn text_format_is_one_line_per_finding() {
        let text = render_text(&sample());
        assert_eq!(text, "crates/x/src/lib.rs:3:9: [panic-free-paths] say \"no\"\tto panics\n");
    }

    #[test]
    fn json_escapes_quotes_and_control_chars() {
        let json = render_json(&sample());
        assert!(json.contains("\\\"no\\\""), "quotes escaped: {json}");
        assert!(json.contains("\\t"), "tab escaped: {json}");
        assert!(json.starts_with('[') && json.trim_end().ends_with(']'));
    }

    #[test]
    fn json_empty_is_empty_array() {
        assert_eq!(render_json(&[]), "[]\n");
    }

    #[test]
    fn json_has_severity_and_symbol_fields() {
        let mut findings = sample();
        findings[0].symbol = Some("dead_fn".to_string());
        let json = render_json(&findings);
        assert!(json.contains("\"severity\": \"error\""), "severity present: {json}");
        assert!(json.contains("\"symbol\": \"dead_fn\""), "symbol present: {json}");
        let none = render_json(&sample());
        assert!(none.contains("\"symbol\": null"), "null symbol: {none}");
    }

    #[test]
    fn severity_splits_warnings_from_errors() {
        assert_eq!(rules::severity_of("dead-public-api"), "warning");
        assert_eq!(rules::severity_of("todo-tracker"), "warning");
        assert_eq!(rules::severity_of("lock-discipline"), "error");
        assert_eq!(rules::severity_of("float-equality"), "error");
        assert_eq!(rules::severity_of("panic-reachability"), "error");
        assert_eq!(rules::severity_of("lock-order"), "error");
        assert_eq!(rules::severity_of("blocking-under-lock"), "error");
    }

    #[test]
    fn sarif_has_required_toplevel_shape() {
        let sarif = render_sarif(&sample());
        for key in [
            "\"$schema\"",
            "sarif-schema-2.1.0.json",
            "\"version\": \"2.1.0\"",
            "\"runs\"",
            "\"tool\"",
            "\"driver\"",
            "\"name\": \"hoga-analyze\"",
            "\"rules\"",
            "\"results\"",
        ] {
            assert!(sarif.contains(key), "missing {key}: {sarif}");
        }
        // Balanced braces/brackets — a cheap structural validity check for
        // a renderer that never emits braces inside strings unescaped.
        let opens = sarif.matches('{').count();
        let closes = sarif.matches('}').count();
        assert_eq!(opens, closes, "unbalanced braces: {sarif}");
        assert_eq!(sarif.matches('[').count(), sarif.matches(']').count());
    }

    #[test]
    fn sarif_result_carries_rule_level_message_and_location() {
        let sarif = render_sarif(&sample());
        assert!(sarif.contains("\"ruleId\": \"panic-free-paths\""), "{sarif}");
        assert!(sarif.contains("\"level\": \"error\""), "{sarif}");
        assert!(sarif.contains("\"uri\": \"crates/x/src/lib.rs\""), "{sarif}");
        assert!(sarif.contains("\"startLine\": 3"), "{sarif}");
        assert!(sarif.contains("\"startColumn\": 9"), "{sarif}");
        assert!(sarif.contains("say \\\"no\\\""), "message escaped: {sarif}");
    }

    #[test]
    fn sarif_declares_every_rule_in_the_driver() {
        let sarif = render_sarif(&[]);
        for id in ["panic-reachability", "lock-order", "blocking-under-lock", "lossy-cast"] {
            assert!(sarif.contains(&format!("\"id\": \"{id}\"")), "missing rule {id}: {sarif}");
        }
    }
}
