#![forbid(unsafe_code)]
//! Command-line front end for the workspace linter.
//!
//! ```text
//! cargo run -p hoga-analyze [--root PATH] [--format text|json] [--report PATH]
//! ```
//!
//! `--report` additionally writes the JSON findings report to a file (the
//! artifact CI archives) regardless of the console `--format`.
//!
//! Exit status: 0 = clean, 1 = findings reported, 2 = usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use hoga_analyze::rules::Finding;
use hoga_analyze::{analyze_workspace, render_json, render_text};

enum Format {
    Text,
    Json,
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut format = Format::Text;
    let mut report: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage("--root needs a path"),
            },
            "--report" => match args.next() {
                Some(p) => report = Some(PathBuf::from(p)),
                None => return usage("--report needs a path"),
            },
            "--format" => match args.next().as_deref() {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                Some(other) => return usage(&format!("unknown format `{other}`")),
                None => return usage("--format needs `text` or `json`"),
            },
            "--help" | "-h" => {
                println!(
                    "hoga-analyze: workspace linter + invariant auditor\n\n\
                     USAGE: hoga-analyze [--root PATH] [--format text|json] [--report PATH]\n\n\
                     Walks every .rs file under the workspace root and reports\n\
                     rule violations as file:line:col diagnostics. --report\n\
                     writes the JSON findings report to PATH for CI archiving.\n\
                     Exits 0 when clean, 1 when findings exist, 2 on error. See\n\
                     docs/STATIC_ANALYSIS.md for the rule catalogue."
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    // Default to the workspace that this binary was built from, so plain
    // `cargo run -p hoga-analyze` does the right thing from any cwd.
    let root =
        root.unwrap_or_else(|| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("..").join(".."));

    let findings = match analyze_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("hoga-analyze: error: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(path) = report {
        if let Err(e) = std::fs::write(&path, render_json(&findings)) {
            eprintln!("hoga-analyze: error writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    match format {
        Format::Text => {
            print!("{}", render_text(&findings));
            if findings.is_empty() {
                eprintln!("hoga-analyze: workspace clean");
            } else {
                eprintln!("hoga-analyze: {}", severity_summary(&findings));
            }
        }
        Format::Json => print!("{}", render_json(&findings)),
    }

    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn severity_summary(findings: &[Finding]) -> String {
    let errors = findings.iter().filter(|f| f.severity() == "error").count();
    let warnings = findings.len() - errors;
    format!("{} violation(s): {errors} error(s), {warnings} warning(s)", findings.len())
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("hoga-analyze: {msg}\nUSAGE: hoga-analyze [--root PATH] [--format text|json]");
    ExitCode::from(2)
}
