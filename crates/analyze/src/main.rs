#![forbid(unsafe_code)]
//! Command-line front end for the workspace linter.
//!
//! ```text
//! cargo run -p hoga-analyze [--root PATH] [--format text|json|sarif]
//!     [--report PATH] [--cache DIR] [--baseline PATH] [--fail-on-new]
//!     [--write-baseline PATH] [--callgraph PATH] [--stats]
//! ```
//!
//! `--report` additionally writes the JSON findings report to a file (the
//! artifact CI archives) regardless of the console `--format`; the write
//! is atomic (temp file + rename) so a killed run never leaves a torn
//! report. `--cache DIR` keeps per-file analysis artifacts between runs —
//! unchanged files are not reparsed. `--baseline PATH` compares against an
//! archived findings report; with `--fail-on-new` the exit code gates on
//! *new* findings only, so a known inventory can be burned down while CI
//! still blocks regressions. `--write-baseline PATH` atomically
//! regenerates the baseline from the current run (replacing hand-edits
//! when a finding is intentionally accepted). `--callgraph PATH`
//! atomically dumps the workspace call graph as JSON. `--format sarif`
//! emits a SARIF 2.1.0 log for GitHub code scanning.
//!
//! Exit status: 0 = clean (or baseline-only findings under
//! `--fail-on-new`), 1 = findings reported (new findings under
//! `--fail-on-new`), 2 = usage or I/O error.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use hoga_analyze::baseline::{diff_against_baseline, parse_baseline};
use hoga_analyze::rules::Finding;
use hoga_analyze::{
    analyze_workspace_graph, render_json, render_sarif, render_text, AnalyzeOptions,
};

enum Format {
    Text,
    Json,
    Sarif,
}

/// Every flag the binary accepts, with its metavar (if any) and help
/// line. The `--help` output and the usage string are generated from this
/// table, and the CLI test asserts every entry appears in `--help` — a
/// new flag cannot be added without documenting it.
const FLAGS: &[(&str, &str, &str)] = &[
    ("--root", "PATH", "workspace root to analyze (default: this binary's workspace)"),
    ("--format", "text|json|sarif", "console output format (default: text)"),
    ("--report", "PATH", "also write the JSON findings report atomically to PATH"),
    ("--cache", "DIR", "reuse per-file analysis artifacts keyed by content hash"),
    ("--baseline", "PATH", "diff findings against an archived JSON report"),
    ("--fail-on-new", "", "exit 1 only on findings absent from --baseline"),
    ("--write-baseline", "PATH", "atomically regenerate the baseline from this run"),
    ("--callgraph", "PATH", "atomically dump the workspace call graph as JSON"),
    ("--stats", "", "print analysis statistics to stderr"),
    ("--help", "", "show this help"),
];

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut format = Format::Text;
    let mut report: Option<PathBuf> = None;
    let mut cache_dir: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut write_baseline: Option<PathBuf> = None;
    let mut callgraph_path: Option<PathBuf> = None;
    let mut fail_on_new = false;
    let mut show_stats = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage("--root needs a path"),
            },
            "--report" => match args.next() {
                Some(p) => report = Some(PathBuf::from(p)),
                None => return usage("--report needs a path"),
            },
            "--cache" => match args.next() {
                Some(p) => cache_dir = Some(PathBuf::from(p)),
                None => return usage("--cache needs a directory"),
            },
            "--baseline" => match args.next() {
                Some(p) => baseline_path = Some(PathBuf::from(p)),
                None => return usage("--baseline needs a path"),
            },
            "--write-baseline" => match args.next() {
                Some(p) => write_baseline = Some(PathBuf::from(p)),
                None => return usage("--write-baseline needs a path"),
            },
            "--callgraph" => match args.next() {
                Some(p) => callgraph_path = Some(PathBuf::from(p)),
                None => return usage("--callgraph needs a path"),
            },
            "--fail-on-new" => fail_on_new = true,
            "--stats" => show_stats = true,
            "--format" => match args.next().as_deref() {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                Some("sarif") => format = Format::Sarif,
                Some(other) => return usage(&format!("unknown format `{other}`")),
                None => return usage("--format needs `text`, `json`, or `sarif`"),
            },
            "--help" | "-h" => {
                print!("{}", help_text());
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    if fail_on_new && baseline_path.is_none() {
        return usage("--fail-on-new needs --baseline PATH");
    }

    // Default to the workspace that this binary was built from, so plain
    // `cargo run -p hoga-analyze` does the right thing from any cwd.
    let root =
        root.unwrap_or_else(|| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("..").join(".."));

    let opts = AnalyzeOptions { cache_dir };
    let (findings, stats, graph) = match analyze_workspace_graph(&root, &opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("hoga-analyze: error: {e}");
            return ExitCode::from(2);
        }
    };

    for (path, contents) in [
        (&report, render_json(&findings)),
        (&write_baseline, render_json(&findings)),
        (&callgraph_path, graph.to_json()),
    ] {
        let Some(path) = path else { continue };
        if let Err(e) = write_atomic(path, &contents) {
            eprintln!("hoga-analyze: error writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    let diff = match &baseline_path {
        None => None,
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("hoga-analyze: error reading {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            };
            match parse_baseline(&text) {
                Ok(entries) => Some(diff_against_baseline(&findings, &entries)),
                Err(e) => {
                    eprintln!("hoga-analyze: {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            }
        }
    };

    match format {
        Format::Text => {
            print!("{}", render_text(&findings));
            if findings.is_empty() {
                eprintln!("hoga-analyze: workspace clean");
            } else {
                eprintln!("hoga-analyze: {}", severity_summary(&findings));
            }
            if let Some(diff) = &diff {
                eprintln!(
                    "hoga-analyze: baseline: {} new, {} known, {} fixed",
                    diff.new.len(),
                    findings.len() - diff.new.len(),
                    diff.fixed
                );
                for &i in &diff.new {
                    eprintln!("hoga-analyze: new: {}", findings[i]);
                }
            }
        }
        Format::Json => print!("{}", render_json(&findings)),
        Format::Sarif => print!("{}", render_sarif(&findings)),
    }

    if show_stats {
        eprintln!(
            "hoga-analyze: stats: {} file(s), {} cache hit(s), {} miss(es); \
             {} cfg(s), {} block(s), {} edge(s), {} fixpoint transfer(s); \
             call graph: {} node(s), {} edge(s), {} scc(s)",
            stats.files,
            stats.cache_hits,
            stats.cache_misses,
            stats.cfgs,
            stats.blocks,
            stats.edges,
            stats.fixpoint_iterations,
            stats.call_nodes,
            stats.call_edges,
            stats.call_sccs
        );
    }

    let failing = match (&diff, fail_on_new) {
        (Some(d), true) => !d.new.is_empty(),
        _ => !findings.is_empty(),
    };
    if failing {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

fn help_text() -> String {
    let mut out =
        String::from("hoga-analyze: workspace linter + invariant auditor\n\nUSAGE: hoga-analyze");
    for (flag, metavar, _) in FLAGS {
        if *flag == "--help" {
            continue;
        }
        if metavar.is_empty() {
            out.push_str(&format!(" [{flag}]"));
        } else {
            out.push_str(&format!(" [{flag} {metavar}]"));
        }
    }
    out.push_str("\n\nOPTIONS:\n");
    for (flag, metavar, help) in FLAGS {
        let left =
            if metavar.is_empty() { (*flag).to_string() } else { format!("{flag} {metavar}") };
        out.push_str(&format!("  {left:<32} {help}\n"));
    }
    out.push_str(
        "\nWalks every .rs file under the workspace root and reports rule\n\
         violations as file:line:col diagnostics. Exits 0 when clean (or when\n\
         all findings are in the --baseline under --fail-on-new), 1 when\n\
         findings exist, 2 on a usage or I/O error. See docs/STATIC_ANALYSIS.md\n\
         for the rule catalogue.\n",
    );
    out
}

/// Writes through a sibling temp file + rename so readers never observe a
/// partial report.
fn write_atomic(path: &Path, contents: &str) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, contents)?;
    std::fs::rename(&tmp, path)
}

fn severity_summary(findings: &[Finding]) -> String {
    let errors = findings.iter().filter(|f| f.severity() == "error").count();
    let warnings = findings.len() - errors;
    format!("{} violation(s): {errors} error(s), {warnings} warning(s)", findings.len())
}

fn usage(msg: &str) -> ExitCode {
    eprintln!(
        "hoga-analyze: {msg}\nUSAGE: hoga-analyze [--root PATH] [--format text|json|sarif] \
         [--report PATH] [--cache DIR] [--baseline PATH] [--fail-on-new] \
         [--write-baseline PATH] [--callgraph PATH] [--stats]"
    );
    ExitCode::from(2)
}
