#![forbid(unsafe_code)]
//! Command-line front end for the workspace linter.
//!
//! ```text
//! cargo run -p hoga-analyze [--root PATH] [--format text|json] [--report PATH]
//!     [--cache DIR] [--baseline PATH] [--fail-on-new] [--stats]
//! ```
//!
//! `--report` additionally writes the JSON findings report to a file (the
//! artifact CI archives) regardless of the console `--format`; the write
//! is atomic (temp file + rename) so a killed run never leaves a torn
//! report. `--cache DIR` keeps per-file analysis artifacts between runs —
//! unchanged files are not reparsed. `--baseline PATH` compares against an
//! archived findings report; with `--fail-on-new` the exit code gates on
//! *new* findings only, so a known inventory can be burned down while CI
//! still blocks regressions.
//!
//! Exit status: 0 = clean (or baseline-only findings under
//! `--fail-on-new`), 1 = findings reported (new findings under
//! `--fail-on-new`), 2 = usage or I/O error.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use hoga_analyze::baseline::{diff_against_baseline, parse_baseline};
use hoga_analyze::rules::Finding;
use hoga_analyze::{analyze_workspace_with, render_json, render_text, AnalyzeOptions};

enum Format {
    Text,
    Json,
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut format = Format::Text;
    let mut report: Option<PathBuf> = None;
    let mut cache_dir: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut fail_on_new = false;
    let mut show_stats = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage("--root needs a path"),
            },
            "--report" => match args.next() {
                Some(p) => report = Some(PathBuf::from(p)),
                None => return usage("--report needs a path"),
            },
            "--cache" => match args.next() {
                Some(p) => cache_dir = Some(PathBuf::from(p)),
                None => return usage("--cache needs a directory"),
            },
            "--baseline" => match args.next() {
                Some(p) => baseline_path = Some(PathBuf::from(p)),
                None => return usage("--baseline needs a path"),
            },
            "--fail-on-new" => fail_on_new = true,
            "--stats" => show_stats = true,
            "--format" => match args.next().as_deref() {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                Some(other) => return usage(&format!("unknown format `{other}`")),
                None => return usage("--format needs `text` or `json`"),
            },
            "--help" | "-h" => {
                println!(
                    "hoga-analyze: workspace linter + invariant auditor\n\n\
                     USAGE: hoga-analyze [--root PATH] [--format text|json] [--report PATH]\n\
                            [--cache DIR] [--baseline PATH] [--fail-on-new] [--stats]\n\n\
                     Walks every .rs file under the workspace root and reports\n\
                     rule violations as file:line:col diagnostics. --report\n\
                     writes the JSON findings report to PATH (atomically) for CI\n\
                     archiving. --cache DIR reuses per-file analysis artifacts\n\
                     so unchanged files are not reparsed. --baseline PATH\n\
                     diffs against an archived report; with --fail-on-new the\n\
                     exit code turns on new findings only.\n\
                     Exits 0 when clean, 1 when findings exist, 2 on error. See\n\
                     docs/STATIC_ANALYSIS.md for the rule catalogue."
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    if fail_on_new && baseline_path.is_none() {
        return usage("--fail-on-new needs --baseline PATH");
    }

    // Default to the workspace that this binary was built from, so plain
    // `cargo run -p hoga-analyze` does the right thing from any cwd.
    let root =
        root.unwrap_or_else(|| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("..").join(".."));

    let opts = AnalyzeOptions { cache_dir };
    let (findings, stats) = match analyze_workspace_with(&root, &opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("hoga-analyze: error: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(path) = report {
        if let Err(e) = write_atomic(&path, &render_json(&findings)) {
            eprintln!("hoga-analyze: error writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    let diff = match &baseline_path {
        None => None,
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("hoga-analyze: error reading {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            };
            match parse_baseline(&text) {
                Ok(entries) => Some(diff_against_baseline(&findings, &entries)),
                Err(e) => {
                    eprintln!("hoga-analyze: {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            }
        }
    };

    match format {
        Format::Text => {
            print!("{}", render_text(&findings));
            if findings.is_empty() {
                eprintln!("hoga-analyze: workspace clean");
            } else {
                eprintln!("hoga-analyze: {}", severity_summary(&findings));
            }
            if let Some(diff) = &diff {
                eprintln!(
                    "hoga-analyze: baseline: {} new, {} known, {} fixed",
                    diff.new.len(),
                    findings.len() - diff.new.len(),
                    diff.fixed
                );
                for &i in &diff.new {
                    eprintln!("hoga-analyze: new: {}", findings[i]);
                }
            }
        }
        Format::Json => print!("{}", render_json(&findings)),
    }

    if show_stats {
        eprintln!(
            "hoga-analyze: stats: {} file(s), {} cache hit(s), {} miss(es); \
             {} cfg(s), {} block(s), {} edge(s), {} fixpoint transfer(s)",
            stats.files,
            stats.cache_hits,
            stats.cache_misses,
            stats.cfgs,
            stats.blocks,
            stats.edges,
            stats.fixpoint_iterations
        );
    }

    let failing = match (&diff, fail_on_new) {
        (Some(d), true) => !d.new.is_empty(),
        _ => !findings.is_empty(),
    };
    if failing {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

/// Writes through a sibling temp file + rename so readers never observe a
/// partial report.
fn write_atomic(path: &Path, contents: &str) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, contents)?;
    std::fs::rename(&tmp, path)
}

fn severity_summary(findings: &[Finding]) -> String {
    let errors = findings.iter().filter(|f| f.severity() == "error").count();
    let warnings = findings.len() - errors;
    format!("{} violation(s): {errors} error(s), {warnings} warning(s)", findings.len())
}

fn usage(msg: &str) -> ExitCode {
    eprintln!(
        "hoga-analyze: {msg}\nUSAGE: hoga-analyze [--root PATH] [--format text|json] \
         [--report PATH] [--cache DIR] [--baseline PATH] [--fail-on-new] [--stats]"
    );
    ExitCode::from(2)
}
