//! The workspace symbol graph — definitions, references and liveness.
//!
//! Built from every `.rs` file at once: [`crate::parser`] supplies the
//! definitions, a second pass counts every identifier occurrence as a
//! (name, unit) reference, and a worklist propagates liveness along two
//! kinds of edges:
//!
//! * **type edges** — a live item keeps every workspace definition named in
//!   its type positions alive (a caller of `pub fn stats() -> RunStats`
//!   uses `RunStats` even if it never writes the name);
//! * **owner edges** — a live method keeps its `impl` subject alive.
//!
//! Roots are definitions referenced from *outside* their source unit
//! (another crate, or a `tests/`/`benches/`/`examples/` target — those are
//! separate linked crates, so demoting an item they name would not
//! compile). A `pub` definition in a library source unit that never
//! becomes live is dead public API (rule R6).
//!
//! Resolution is by name, not by path: two definitions sharing a name
//! shadow each other, which can only *under*-report dead API. That is the
//! right failure mode for a lint that demands action on every finding.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{lex, TokKind};
use crate::parser::{parse_items, ItemKind, Visibility};
use crate::rules::cfg_test_spans;

/// One definition in the workspace.
#[derive(Debug, Clone)]
pub struct SymbolDef {
    /// Declared name.
    pub name: String,
    /// Source unit that owns it (see [`source_unit`]).
    pub unit: String,
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line of the name token.
    pub line: u32,
    /// 1-based column of the name token.
    pub col: u32,
    /// Item kind.
    pub kind: ItemKind,
    /// Visibility as written.
    pub vis: Visibility,
    /// Defined inside a `#[cfg(test)]` item (never part of the API).
    pub in_test_item: bool,
    /// Names this definition's type positions mention (liveness edges).
    pub(crate) dep_names: Vec<String>,
    /// `impl` subject for methods (owner edge).
    pub(crate) owner: Option<String>,
}

/// The assembled graph plus its liveness fixpoint.
#[derive(Debug)]
pub struct SymbolGraph {
    defs: Vec<SymbolDef>,
    live: Vec<bool>,
    /// name → unit → identifier occurrences.
    refs: BTreeMap<String, BTreeMap<String, usize>>,
    /// Type/owner edges actually traversed, as (from def, to def) indices.
    edge_count: usize,
}

/// The source unit a workspace-relative path belongs to.
///
/// A unit is a separately compiled target: `crates/X/src` is the library
/// `crates/X`; `crates/X/tests` (or `benches`, `examples`) are distinct
/// units because each file there links against the *public* API of the
/// library. Root-package paths map to `root`, `tests`, `examples`, ...
pub(crate) fn source_unit(rel: &str) -> String {
    let parts: Vec<&str> = rel.split('/').collect();
    // Binary targets (`src/main.rs`, `src/bin/*`) consume the sibling
    // library's *public* API, so they form their own unit.
    let is_bin = |tail: &[&str]| tail.last() == Some(&"main.rs") || tail.first() == Some(&"bin");
    if parts.first() == Some(&"crates") && parts.len() >= 3 {
        if parts[2] == "src" {
            if is_bin(&parts[3..]) {
                format!("crates/{}/main", parts[1])
            } else {
                format!("crates/{}", parts[1])
            }
        } else {
            format!("crates/{}/{}", parts[1], parts[2])
        }
    } else if parts.first() == Some(&"src") {
        if is_bin(&parts[1..]) {
            "root/main".to_string()
        } else {
            "root".to_string()
        }
    } else {
        parts.first().unwrap_or(&"root").to_string()
    }
}

/// Is `unit` a library/binary source unit (whose `pub` items are API)?
pub(crate) fn is_src_unit(unit: &str) -> bool {
    unit == "root" || (unit.starts_with("crates/") && unit.matches('/').count() == 1)
}

impl SymbolGraph {
    /// Builds the graph over `(workspace-relative path, source)` pairs and
    /// runs the liveness fixpoint.
    pub fn build(files: &[(String, String)]) -> SymbolGraph {
        let mut defs: Vec<SymbolDef> = Vec::new();
        let mut lexed = Vec::with_capacity(files.len());
        for (rel, src) in files {
            let tokens = lex(src);
            let unit = source_unit(rel);
            let test_spans = cfg_test_spans(&tokens, src);
            for item in parse_items(&tokens, src) {
                if matches!(item.kind, ItemKind::Use | ItemKind::Impl) {
                    continue;
                }
                let Some(name) = item.name else { continue };
                defs.push(SymbolDef {
                    name,
                    unit: unit.clone(),
                    file: rel.clone(),
                    line: item.line,
                    col: item.col,
                    kind: item.kind,
                    vis: item.vis,
                    in_test_item: test_spans.iter().any(|s| s.contains(&item.start)),
                    dep_names: item.dep_names,
                    owner: item.owner,
                });
            }
            lexed.push((rel, src, tokens));
        }

        let names: BTreeSet<&str> = defs.iter().map(|d| d.name.as_str()).collect();
        let mut refs: BTreeMap<String, BTreeMap<String, usize>> = BTreeMap::new();
        for (rel, src, tokens) in &lexed {
            let unit = source_unit(rel);
            for t in tokens.iter().filter(|t| t.kind == TokKind::Ident) {
                let text = t.text(src);
                let text = text.strip_prefix("r#").unwrap_or(text);
                if names.contains(text) {
                    *refs.entry(text.to_string()).or_default().entry(unit.clone()).or_insert(0) +=
                        1;
                }
            }
        }

        SymbolGraph::from_parts(defs, refs)
    }

    /// Assembles a graph from pre-extracted definitions and reference
    /// counts and runs the liveness fixpoint. This is the path the
    /// incremental cache uses: per-file artifacts store defs and raw ident
    /// counts, and the cross-file stage rebuilds the graph without
    /// re-lexing anything. Reference entries for names that define nothing
    /// are dropped, matching what [`SymbolGraph::build`] collects.
    pub(crate) fn from_parts(
        defs: Vec<SymbolDef>,
        mut refs: BTreeMap<String, BTreeMap<String, usize>>,
    ) -> SymbolGraph {
        let names: BTreeSet<&str> = defs.iter().map(|d| d.name.as_str()).collect();
        refs.retain(|name, _| names.contains(name.as_str()));
        let mut graph = SymbolGraph { live: vec![false; defs.len()], defs, refs, edge_count: 0 };
        graph.propagate();
        graph
    }

    /// Worklist liveness: roots are externally referenced defs, edges are
    /// type deps and method owners.
    fn propagate(&mut self) {
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (i, d) in self.defs.iter().enumerate() {
            by_name.entry(d.name.as_str()).or_default().push(i);
        }
        let mut work: Vec<usize> =
            (0..self.defs.len()).filter(|&i| self.external_refs(&self.defs[i]) > 0).collect();
        for &i in &work {
            self.live[i] = true;
        }
        let mut edges = 0usize;
        while let Some(i) = work.pop() {
            let mut reached: Vec<usize> = Vec::new();
            for dep in &self.defs[i].dep_names {
                if let Some(targets) = by_name.get(dep.as_str()) {
                    reached.extend_from_slice(targets);
                }
            }
            if let Some(owner) = &self.defs[i].owner {
                if let Some(targets) = by_name.get(owner.as_str()) {
                    reached.extend_from_slice(targets);
                }
            }
            for j in reached {
                edges += 1;
                if !self.live[j] {
                    self.live[j] = true;
                    work.push(j);
                }
            }
        }
        self.edge_count = edges;
    }

    /// Identifier occurrences of `def.name` outside `def.unit`.
    pub(crate) fn external_refs(&self, def: &SymbolDef) -> usize {
        self.refs
            .get(&def.name)
            .map(|per_unit| per_unit.iter().filter(|(u, _)| **u != def.unit).map(|(_, n)| *n).sum())
            .unwrap_or(0)
    }

    /// All definitions.
    pub fn defs(&self) -> &[SymbolDef] {
        &self.defs
    }

    /// Did the fixpoint reach this definition?
    pub fn is_live(&self, idx: usize) -> bool {
        self.live[idx]
    }

    /// Liveness edges traversed (for the bench report).
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Total (name, unit) reference entries (for the bench report).
    pub fn ref_entries(&self) -> usize {
        self.refs.values().map(|m| m.len()).sum()
    }

    /// Dead public API: `pub` definitions in library source units that the
    /// liveness fixpoint never reached. `main`/`mod` definitions and items
    /// inside `#[cfg(test)]` are exempt.
    pub(crate) fn dead_public(&self) -> Vec<&SymbolDef> {
        self.defs
            .iter()
            .enumerate()
            .filter(|(i, d)| {
                !self.live[*i]
                    && d.vis == Visibility::Public
                    && is_src_unit(&d.unit)
                    && !d.in_test_item
                    && d.name != "main"
                    && d.kind != ItemKind::Mod
            })
            .map(|(_, d)| d)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn files(list: &[(&str, &str)]) -> Vec<(String, String)> {
        list.iter().map(|(a, b)| (a.to_string(), b.to_string())).collect()
    }

    #[test]
    fn source_units_split_library_from_test_targets() {
        assert_eq!(source_unit("crates/tensor/src/matrix.rs"), "crates/tensor");
        assert_eq!(source_unit("crates/tensor/tests/it.rs"), "crates/tensor/tests");
        assert_eq!(source_unit("crates/bench/benches/fig5.rs"), "crates/bench/benches");
        assert_eq!(source_unit("crates/analyze/src/main.rs"), "crates/analyze/main");
        assert_eq!(source_unit("crates/x/src/bin/tool.rs"), "crates/x/main");
        assert_eq!(source_unit("src/main.rs"), "root/main");
        assert_eq!(source_unit("src/lib.rs"), "root");
        assert_eq!(source_unit("examples/demo.rs"), "examples");
        assert!(is_src_unit("crates/tensor"));
        assert!(!is_src_unit("crates/tensor/tests"));
        assert!(!is_src_unit("crates/analyze/main"));
        assert!(is_src_unit("root"));
    }

    #[test]
    fn bin_target_use_counts_as_external() {
        let g = SymbolGraph::build(&files(&[
            ("crates/a/src/lib.rs", "pub fn run() {}\n"),
            ("crates/a/src/main.rs", "fn main() { a::run(); }\n"),
        ]));
        assert!(g.dead_public().is_empty(), "dead: {:?}", g.dead_public());
    }

    #[test]
    fn externally_used_pub_fn_is_live_and_unused_one_is_dead() {
        let g = SymbolGraph::build(&files(&[
            ("crates/a/src/lib.rs", "pub fn used() {}\npub fn unused() {}\n"),
            ("crates/b/src/lib.rs", "fn f() { a::used(); }\n"),
        ]));
        let dead: Vec<&str> = g.dead_public().iter().map(|d| d.name.as_str()).collect();
        assert_eq!(dead, ["unused"]);
    }

    #[test]
    fn use_from_own_tests_dir_counts_as_external() {
        // tests/ is a separate linked crate: demoting the item would break it.
        let g = SymbolGraph::build(&files(&[
            ("crates/a/src/lib.rs", "pub fn helper() {}\n"),
            ("crates/a/tests/it.rs", "#[test]\nfn t() { a::helper(); }\n"),
        ]));
        assert!(g.dead_public().is_empty());
    }

    #[test]
    fn return_type_of_live_fn_is_kept_alive() {
        // `Stats` is never written outside crates/a, but `stats()` is used
        // and returns it — the type edge keeps it alive.
        let g = SymbolGraph::build(&files(&[
            (
                "crates/a/src/lib.rs",
                "pub struct Stats { pub n: usize }\npub fn stats() -> Stats { Stats { n: 0 } }\n",
            ),
            ("crates/b/src/lib.rs", "fn f() { let s = a::stats(); let _ = s.n; }\n"),
        ]));
        assert!(g.dead_public().is_empty(), "dead: {:?}", g.dead_public());
    }

    #[test]
    fn live_method_keeps_its_impl_subject_alive() {
        let g = SymbolGraph::build(&files(&[
            (
                "crates/a/src/lib.rs",
                "pub struct Acc;\nimpl Acc {\n    pub fn push(&mut self) {}\n}\n\
                 pub fn acc() -> Acc { Acc }\n",
            ),
            ("crates/b/src/lib.rs", "fn f() { a::acc().push(); }\n"),
        ]));
        assert!(g.dead_public().is_empty(), "dead: {:?}", g.dead_public());
    }

    #[test]
    fn cfg_test_items_and_main_are_exempt() {
        let g = SymbolGraph::build(&files(&[(
            "crates/a/src/main.rs",
            "fn main() {}\n#[cfg(test)]\nmod tests {\n    pub fn fixture() {}\n}\n",
        )]));
        assert!(g.dead_public().is_empty(), "dead: {:?}", g.dead_public());
    }

    #[test]
    fn pub_crate_items_are_never_dead_api() {
        let g = SymbolGraph::build(&files(&[(
            "crates/a/src/lib.rs",
            "pub(crate) fn internal() {}\nfn private() {}\n",
        )]));
        assert!(g.dead_public().is_empty());
    }

    #[test]
    fn dead_chain_is_not_kept_alive_by_itself() {
        // `only_dead_caller` mentions `Lost` in its signature, but is dead
        // itself — liveness must not leak from dead definitions.
        let g = SymbolGraph::build(&files(&[(
            "crates/a/src/lib.rs",
            "pub struct Lost;\npub fn only_dead_caller() -> Lost { Lost }\n",
        )]));
        let dead: Vec<&str> = g.dead_public().iter().map(|d| d.name.as_str()).collect();
        assert_eq!(dead, ["Lost", "only_dead_caller"]);
    }
}
